// son-trace: dump / filter / summarize flight-recorder trace files.
//
//   son-trace summary TRACE              per-category and per-code counts
//   son-trace dump TRACE [--category C] [--node N] [--limit K]
//   son-trace path TRACE ORIGIN_ID       hop timeline of one sampled message
//
// Traces are written by obs::Recorder::write (bench `--record` flag, or any
// test/scenario that installs a recorder). The file is a flat array of the
// 32-byte EventRecord wire format behind a small header, so this tool stays
// trivially forward-compatible with new category codes: unknown codes print
// numerically.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "obs/record.hpp"
#include "obs/recorder.hpp"

namespace {

using son::obs::Category;
using son::obs::EventRecord;
using son::obs::HopKind;
using son::obs::LinkEvent;
using son::obs::RouteEvent;

const char* code_name(std::uint8_t category, std::uint8_t code) {
  switch (static_cast<Category>(category)) {
    case Category::kLink:
      return to_string(static_cast<LinkEvent>(code));
    case Category::kRoute:
      return to_string(static_cast<RouteEvent>(code));
    case Category::kPath:
      return to_string(static_cast<HopKind>(code));
    default:
      return nullptr;
  }
}

void print_record(const EventRecord& e) {
  const Category cat = static_cast<Category>(e.category);
  const char* code = code_name(e.category, e.code);
  std::printf("%14.6fms node=%-5u %-6s ", static_cast<double>(e.t_ns) / 1e6,
              e.node, to_string(cat));
  if (code != nullptr) {
    std::printf("%-18s", code);
  } else {
    std::printf("code=%-13u", e.code);
  }
  std::printf(" a=%" PRIu64 " b=%" PRIu64 "\n", e.a, e.b);
}

int cmd_summary(const std::vector<EventRecord>& records) {
  // code histogram per category; map keys give a stable print order.
  std::map<std::pair<std::uint8_t, std::uint8_t>, std::uint64_t> by_code;
  std::map<std::uint16_t, std::uint64_t> by_node;
  std::int64_t t_min = 0, t_max = 0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const EventRecord& e = records[i];
    ++by_code[{e.category, e.code}];
    ++by_node[e.node];
    if (i == 0 || e.t_ns < t_min) t_min = e.t_ns;
    if (i == 0 || e.t_ns > t_max) t_max = e.t_ns;
  }
  std::printf("records: %zu\n", records.size());
  if (!records.empty()) {
    std::printf("span: %.6fms .. %.6fms\n", static_cast<double>(t_min) / 1e6,
                static_cast<double>(t_max) / 1e6);
  }
  std::printf("\nby category/code:\n");
  for (const auto& [key, count] : by_code) {
    const char* code = code_name(key.first, key.second);
    if (code != nullptr) {
      std::printf("  %-6s %-18s %" PRIu64 "\n",
                  to_string(static_cast<Category>(key.first)), code, count);
    } else {
      std::printf("  %-6s code=%-13u %" PRIu64 "\n",
                  to_string(static_cast<Category>(key.first)), key.second, count);
    }
  }
  std::printf("\nby node (top 10):\n");
  std::vector<std::pair<std::uint64_t, std::uint16_t>> nodes;
  for (const auto& [node, count] : by_node) nodes.emplace_back(count, node);
  std::sort(nodes.rbegin(), nodes.rend());
  for (std::size_t i = 0; i < nodes.size() && i < 10; ++i) {
    if (nodes[i].second == son::obs::kSystemNode) {
      std::printf("  system %" PRIu64 "\n", nodes[i].first);
    } else {
      std::printf("  %-6u %" PRIu64 "\n", nodes[i].second, nodes[i].first);
    }
  }
  return 0;
}

int cmd_dump(const std::vector<EventRecord>& records, int argc, char** argv) {
  int category = -1;
  long node = -1;
  std::uint64_t limit = UINT64_MAX;
  for (int i = 0; i < argc; ++i) {
    const auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (std::strcmp(argv[i], "--category") == 0) {
      const std::string want = value();
      for (std::uint8_t c = 0; c < son::obs::kNumCategories; ++c) {
        if (want == to_string(static_cast<Category>(c))) category = c;
      }
      if (category < 0) {
        std::fprintf(stderr, "unknown category '%s'\n", want.c_str());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--node") == 0) {
      node = std::strtol(value(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--limit") == 0) {
      limit = std::strtoull(value(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown dump option '%s'\n", argv[i]);
      return 2;
    }
  }
  std::uint64_t shown = 0;
  for (const EventRecord& e : records) {
    if (category >= 0 && e.category != category) continue;
    if (node >= 0 && e.node != node) continue;
    if (shown++ >= limit) break;
    print_record(e);
  }
  return 0;
}

int cmd_path(const std::vector<EventRecord>& records, std::uint64_t origin_id) {
  std::uint64_t hops = 0;
  for (const EventRecord& e : records) {
    if (e.category != static_cast<std::uint8_t>(Category::kPath) || e.a != origin_id) continue;
    ++hops;
    const auto kind = static_cast<HopKind>(e.code);
    const std::uint8_t link = son::obs::unpack3_hi(e.b);
    std::printf("%14.6fms node=%-5u %-18s", static_cast<double>(e.t_ns) / 1e6, e.node,
                to_string(kind));
    if (link != 0xFF) std::printf(" link=%u", link);
    std::printf("\n");
  }
  if (hops == 0) {
    std::fprintf(stderr, "no path records for origin_id %" PRIu64
                         " (was it sampled when recording?)\n", origin_id);
    return 1;
  }
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: son-trace summary TRACE\n"
               "       son-trace dump TRACE [--category C] [--node N] [--limit K]\n"
               "       son-trace path TRACE ORIGIN_ID\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  const auto records = son::obs::Recorder::read(argv[2]);
  if (!records) {
    std::fprintf(stderr, "son-trace: cannot read trace file '%s'\n", argv[2]);
    return 1;
  }
  if (cmd == "summary") return cmd_summary(*records);
  if (cmd == "dump") return cmd_dump(*records, argc - 3, argv + 3);
  if (cmd == "path") {
    if (argc < 4) return usage();
    return cmd_path(*records, std::strtoull(argv[3], nullptr, 0));
  }
  return usage();
}
