// son-analyze fixture: NEGATIVE cases for shard-confinement — partition code
// using only sanctioned mechanisms. Run with --partition-glob
// "*confinement_ok.cpp"; nothing here may fire.

namespace sim {
using TimePoint = long;
struct Callback {};
struct Simulator {
  unsigned long long schedule(long delay, Callback cb);
};
struct ShardChannel {
  void push(TimePoint when, Callback cb);
};
}  // namespace sim

// Scheduling onto the partition's OWN simulator is the normal case.
void handler_local_timer(sim::Simulator& own) { own.schedule(5, sim::Callback{}); }

// Cross-partition effects ride the ShardChannel — the sanctioned carrier.
void handler_cross_partition(sim::ShardChannel& out, sim::TimePoint when) {
  out.push(when, sim::Callback{});
}

// Immutable file-scope data is not a confinement hazard.
constexpr int kFanout = 4;
const long kQuietPeriod = 250;

int handler_reads_constants() { return kFanout + static_cast<int>(kQuietPeriod); }
