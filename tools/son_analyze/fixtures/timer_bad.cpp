// son-analyze fixture: POSITIVE cases for timer-lifecycle.
// Parsed structurally, never compiled.
#include <vector>

namespace sim {
using EventId = unsigned long long;
struct Simulator {
  EventId schedule(long delay, void* cb);
  EventId schedule_at(long when, void* cb);
  bool cancel(EventId id);
};
}  // namespace sim

// Case 1: member EventId scheduled, class has no destructor at all.
struct LeakyTimer {
  sim::Simulator& sim_;
  sim::EventId tick_ = 0;
  void arm() { tick_ = sim_.schedule(5, nullptr); }
};

// Case 2: destructor exists but cancels only one of two scheduled members.
struct HalfCancelled {
  sim::Simulator& sim_;
  sim::EventId a_ = 0;
  sim::EventId b_ = 0;
  void arm() {
    a_ = sim_.schedule(1, nullptr);
    b_ = sim_.schedule(2, nullptr);
  }
  ~HalfCancelled() { (void)sim_.cancel(a_); }
};

// Case 3: this-capturing callback with the EventId discarded outright.
struct FireAndForget {
  sim::Simulator& sim_;
  int hits_ = 0;
  void go() {
    sim_.schedule(1, [this]() { ++hits_; });
  }
};
