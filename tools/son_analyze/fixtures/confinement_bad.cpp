// son-analyze fixture: POSITIVE cases for shard-confinement. The self-test
// passes --partition-glob "*confinement_bad.cpp" so every function here is a
// partition entry point.

namespace sim {
struct Simulator {
  unsigned long long schedule(long delay, void* cb);
};
struct ShardedKernel {
  Simulator& shard_sim(unsigned p);
  Simulator& control_sim();
  void schedule_global(long when, void* cb);
};
}  // namespace sim

// Mutable file-scope state shared across shard workers.
int g_shared_hits = 0;

// Sink 1: direct control-plane scheduling from partition context.
void handler_schedules_global(sim::ShardedKernel& k) { k.schedule_global(10, nullptr); }

// Sink 2: reached transitively across files — root -> helper -> control_sim.
// The helper lives in confinement_helper.cpp, which the partition glob does
// NOT match, so the finding must come from the call-graph walk alone.
void helper_touches_control(sim::ShardedKernel& k);
void handler_via_helper(sim::ShardedKernel& k) { helper_touches_control(k); }

// Sink 3: direct cross-shard schedule (son-lint rule 9, transitive form).
void handler_cross_shard(sim::ShardedKernel& kernel, unsigned other) {
  kernel.shard_sim(other).schedule(0, nullptr);
}

// Sink 4: partition-reachable code touching mutable file-scope state.
void handler_touches_static() { ++g_shared_hits; }
