// son-analyze fixture: POSITIVE cases for hot-path-alloc — a SON_HOT root
// reaching allocation through a call chain, plus direct sinks.
#include <string>
#include <vector>

#define SON_HOT

namespace fix {

int* deep_allocates() { return new int(42); }

int* middle() { return deep_allocates(); }

struct HotTicker {
  std::vector<int> buf_;
  SON_HOT void tick();
  SON_HOT void label(int v);
  SON_HOT void grow(int v);
};

// Transitive new-expression: tick -> middle -> deep_allocates.
void HotTicker::tick() { delete middle(); }

// Direct allocating call.
void HotTicker::label(int v) { std::string s = std::to_string(v); (void)s; }

// Container growth on the hot path.
void HotTicker::grow(int v) { buf_.push_back(v); }

}  // namespace fix
