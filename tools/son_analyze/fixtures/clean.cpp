// son-analyze fixture: fully clean translation unit — no rule may fire.
#include <vector>

#include "include_helper.hpp"

namespace fix {

struct Accumulator {
  std::vector<int> values_;
  long total_ = 0;

  void add(int v) {
    values_.push_back(v);
    total_ += v;
  }
  [[nodiscard]] long total() const { return total_; }
};

constexpr int kWindow = 16;

long windowed_sum(const Accumulator& acc) { return acc.total() / kWindow; }

}  // namespace fix
