// son-analyze fixture: POSITIVE cases for mutable-static — one per kind.

// Plain mutable global.
int g_counter = 0;

// thread_local is still shared across trial replications on the same thread.
thread_local int g_per_thread_scratch = 0;

// Pointer-to-const is a MUTABLE pointer: top-level constness is what counts.
const char* g_label = "initial";

// Function-local static.
int cached_value() {
  static int cache = -1;
  if (cache < 0) cache = 42;
  return cache;
}
