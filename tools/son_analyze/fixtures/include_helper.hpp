// son-analyze fixture header: pulled in via the compile_commands.json header
// closure test. Contains one mutable static so the test can verify that
// headers reached only through #include "..." are analyzed.
#pragma once

inline int g_header_static = 0;
