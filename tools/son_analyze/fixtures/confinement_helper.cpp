// son-analyze fixture: helper translation unit for the cross-file transitive
// shard-confinement case. This file is NOT matched by the partition glob, so
// none of its functions are entry points — `helper_touches_control` may only
// be flagged because a partition root (handler_via_helper in
// confinement_bad.cpp) reaches it through the call graph.

namespace sim {
struct Simulator;
struct ShardedKernel {
  Simulator& control_sim();
};
}  // namespace sim

void helper_touches_control(sim::ShardedKernel& k) { (void)k.control_sim(); }
