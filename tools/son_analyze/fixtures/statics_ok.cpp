// son-analyze fixture: NEGATIVE cases for mutable-static — immutable data
// and a justified suppression. Nothing here may produce a finding.

// Immutable: constexpr / top-level const.
constexpr int kMaxNodes = 1024;
const double kAlpha = 0.125;
const char* const kName = "son";  // const pointer to const: fully immutable

// Function-local constants are fine too.
long scaled(long x) {
  static constexpr long kScale = 1000;
  static const long kBias = 7;
  return x * kScale + kBias;
}

// A mutable static with a written justification is accepted.
// son-analyze: allow(mutable-static) "single-writer: set once in main before any worker starts"
int g_configured_level = 0;
