// son-analyze fixture: suppression-grammar failures. Each bad suppression is
// itself a finding (rule bad-suppression), so this file must exit 1 even
// though the suppressed sites would otherwise be legitimate.

// Missing justification string entirely.
// son-analyze: allow(mutable-static)
int g_unjustified = 0;

// Empty justification.
// son-analyze: allow(mutable-static) ""
int g_empty_reason = 0;

// Unknown rule name.
// son-analyze: allow(definitely-not-a-rule) "this rule does not exist"
int g_unknown_rule = 0;
