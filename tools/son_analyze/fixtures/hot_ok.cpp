// son-analyze fixture: NEGATIVE cases for hot-path-alloc — allocation-free
// hot code, placement new, cold allocating code, and a justified suppression.
#include <vector>

#define SON_HOT

namespace fix {

struct Slot {
  int value;
};

struct HotPool {
  std::vector<Slot> slots_;
  unsigned head_ = 0;
  SON_HOT int pop();
  SON_HOT void reuse(Slot* where);
  SON_HOT void bounded_push(int v);
  void cold_setup();
};

// Pure index arithmetic: nothing to flag.
int HotPool::pop() {
  const unsigned i = head_;
  head_ = (head_ + 1) % 8u;
  return slots_[i].value;
}

// Placement new re-initializes storage in place; it does not allocate.
void HotPool::reuse(Slot* where) { ::new (where) Slot{0}; }

// Growth into pre-reserved capacity, suppressed with a justification.
void HotPool::bounded_push(int v) {
  // son-analyze: allow(hot-path-alloc) "capacity reserved in cold_setup; never exceeded by construction"
  slots_.push_back(Slot{v});
}

// Allocates freely — but it is not SON_HOT and nothing hot calls it.
void HotPool::cold_setup() {
  slots_.reserve(64);
  int* scratch = new int[16];
  delete[] scratch;
}

}  // namespace fix
