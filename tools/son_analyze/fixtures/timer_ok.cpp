// son-analyze fixture: NEGATIVE cases for timer-lifecycle — every pattern
// here is a sanctioned way to own a timer, so the rule must stay silent.
#include <vector>

namespace sim {
using EventId = unsigned long long;
struct Simulator {
  EventId schedule(long delay, void* cb);
  bool cancel(EventId id);
};
struct TimerGuard {
  template <typename Fn>
  Fn wrap(Fn fn) const;
};
}  // namespace sim

// Stored member EventId, cancelled directly in the destructor.
struct Cancelled {
  sim::Simulator& sim_;
  sim::EventId tick_ = 0;
  void arm() { tick_ = sim_.schedule(5, nullptr); }
  ~Cancelled() { (void)sim_.cancel(tick_); }
};

// Cancelled via a helper method the destructor calls.
struct CancelledViaHelper {
  sim::Simulator& sim_;
  sim::EventId tick_ = 0;
  void arm() { tick_ = sim_.schedule(5, nullptr); }
  void stop() { (void)sim_.cancel(tick_); }
  ~CancelledViaHelper() { stop(); }
};

// Container of EventIds, drained in the destructor.
struct StoredInContainer {
  sim::Simulator& sim_;
  std::vector<sim::EventId> timers_;
  void arm() {
    timers_.push_back(sim_.schedule(1, [this]() { arm(); }));
  }
  ~StoredInContainer() {
    for (sim::EventId t : timers_) (void)sim_.cancel(t);
  }
};

// Generation-guarded fire-and-forget: inert once the guard dies.
struct Guarded {
  sim::Simulator& sim_;
  sim::TimerGuard guard_;
  int hits_ = 0;
  void go() {
    sim_.schedule(1, guard_.wrap([this]() { ++hits_; }));
  }
};

// Callback that does not capture `this` owes nothing to the owner.
struct NoCapture {
  sim::Simulator& sim_;
  void go(int* counter) {
    sim_.schedule(1, [counter]() { ++*counter; });
  }
};
