"""cpp_model — a pragmatic structural C++ model for son-analyze.

son-analyze needs *whole-program* facts that the token-level son-lint cannot
see: who calls whom (reachability from SON_HOT roots and partition entry
points), which classes own `sim::EventId` members and whether their
destructors cancel them, and where mutable namespace-scope state lives.

This module builds that model with a dependency-free structural parser:
comments and strings are blanked by a real tokenizer (same approach as
son-lint), then each file is scanned with an explicit scope stack that
recognizes namespaces, classes, enums and function definitions — including
out-of-line `Class::method` definitions, constructor member-init lists,
`operator()`, and `= default/delete` declarations. Function bodies are kept
as opaque text from which call sites and per-body facts (new-expressions,
container-growth calls, schedule patterns) are extracted.

The model is deliberately an over-approximation: call edges are resolved by
name (method calls resolve to any class method of that name; bare calls to
free functions and same-class methods). That is the right trade for a
linter — a spurious edge costs a justified suppression, a missed edge costs
a shipped bug. The optional libclang engine (engine_clang.py) builds the
same Model shape with AST-accurate edges when `clang.cindex` is importable.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

SOURCE_EXTS = {".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h", ".ipp"}

# ---------------------------------------------------------------------------
# Tokenizer: blank comments / string literals, collect suppression comments.
# Generalized from son-lint's strip_code: the suppression tag is a parameter
# so both tools share one comment grammar:  // <tag>: allow(rule) "reason"
# ---------------------------------------------------------------------------


def _suppress_re(tag: str) -> re.Pattern:
    return re.compile(re.escape(tag) + r":\s*allow\(([\w\-, ]+)\)\s*(\"([^\"]*)\")?")


def strip_code(text: str, tag: str = "son-analyze", known_rules: set[str] | None = None):
    """Returns (code, suppressions, bad_suppression_lines).

    `code` mirrors `text` with comment and string-literal contents replaced
    by spaces. `suppressions` maps line -> set of allowed rule ids (a comment
    suppresses its own line and the next). A suppression without a reason
    string, or naming an unknown rule, lands in bad_suppression_lines.
    """
    sup_re = _suppress_re(tag)
    out = []
    suppressions: dict[int, set[str]] = {}
    bad_lines: list[int] = []
    i, n = 0, len(text)
    line = 1
    state = "code"
    comment_start_line = 0
    comment_buf: list[str] = []
    raw_delim = ""

    def register_comment(comment: str, at_line: int):
        m = sup_re.search(comment)
        if not m:
            return
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        reason = m.group(3)
        if not reason or not reason.strip():
            bad_lines.append(at_line)
            return
        if known_rules is not None and rules - known_rules:
            bad_lines.append(at_line)
        for ln in (at_line, at_line + 1):
            suppressions.setdefault(ln, set()).update(rules)

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                comment_start_line = line
                comment_buf = []
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                comment_start_line = line
                comment_buf = []
                out.append("  ")
                i += 2
                continue
            if c == '"':
                if i >= 1 and text[i - 1] == "R" and (i < 2 or not text[i - 2].isalnum()):
                    m = re.match(r'"([^ ()\\\t\n]*)\(', text[i:])
                    if m:
                        raw_delim = ")" + m.group(1) + '"'
                        state = "raw_string"
                        out.append('"')
                        i += 1
                        continue
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
            if c == "\n":
                line += 1
            i += 1
        elif state == "line_comment":
            if c == "\n":
                register_comment("".join(comment_buf), comment_start_line)
                state = "code"
                out.append("\n")
                line += 1
            else:
                comment_buf.append(c)
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                register_comment("".join(comment_buf), comment_start_line)
                state = "code"
                out.append("  ")
                i += 2
                continue
            comment_buf.append(c)
            if c == "\n":
                out.append("\n")
                line += 1
            else:
                out.append(" ")
            i += 1
        elif state == "string":
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
                out.append('"')
            elif c == "\n":
                state = "code"
                out.append("\n")
                line += 1
            else:
                out.append(" ")
            i += 1
        elif state == "char":
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
                out.append("'")
            elif c == "\n":
                state = "code"
                out.append("\n")
                line += 1
            else:
                out.append(" ")
            i += 1
        elif state == "raw_string":
            if text.startswith(raw_delim, i):
                out.append(" " * (len(raw_delim) - 1) + '"')
                i += len(raw_delim)
                state = "code"
                continue
            out.append("\n" if c == "\n" else " ")
            if c == "\n":
                line += 1
            i += 1
    if state == "line_comment":
        register_comment("".join(comment_buf), comment_start_line)
    return "".join(out), suppressions, bad_lines


# ---------------------------------------------------------------------------
# Matching helpers
# ---------------------------------------------------------------------------


def match_paren(code: str, i: int, open_ch: str = "(", close_ch: str = ")") -> int:
    """`i` points at open_ch; returns index of the matching close (or len)."""
    depth = 0
    n = len(code)
    while i < n:
        c = code[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return n


def match_brace(code: str, i: int) -> int:
    return match_paren(code, i, "{", "}")


def line_of(code: str, idx: int) -> int:
    return code.count("\n", 0, idx) + 1


def _skip_ws(code: str, i: int) -> int:
    n = len(code)
    while i < n and code[i] in " \t\n\r":
        i += 1
    return i


# ---------------------------------------------------------------------------
# Model dataclasses
# ---------------------------------------------------------------------------


@dataclass
class CallSite:
    name: str
    qualifier: str | None  # "Class" / "ns::Class" when written qualified
    is_method: bool  # written as obj.name(...) / obj->name(...)
    line: int


@dataclass
class Fact:
    """A per-body observation a rule can turn into a finding."""

    kind: str  # new-expr | alloc-call | growth-call | shard-sched | global-sched
    line: int
    detail: str = ""


@dataclass
class FunctionDef:
    qname: str  # Ns::Class::name as written (best effort)
    name: str
    cls: str | None
    file: str
    line: int
    body: str = ""
    body_line: int = 0
    hot: bool = False
    is_decl: bool = False  # declaration only (no body)
    calls: list[CallSite] = field(default_factory=list)
    facts: list[Fact] = field(default_factory=list)

    @property
    def is_dtor(self) -> bool:
        return self.name.startswith("~")


@dataclass
class MemberVar:
    cls: str
    name: str
    type_text: str
    file: str
    line: int


@dataclass
class StaticVar:
    name: str
    file: str
    line: int
    kind: str  # global | thread-local | static-local
    decl: str


@dataclass
class ClassInfo:
    name: str
    file: str
    line: int
    members: list[MemberVar] = field(default_factory=list)


@dataclass
class FileModel:
    rel: str
    raw_lines: list[str]
    suppressions: dict[int, set[str]]
    bad_suppression_lines: list[int]
    functions: list[FunctionDef] = field(default_factory=list)
    classes: list[ClassInfo] = field(default_factory=list)
    statics: list[StaticVar] = field(default_factory=list)


@dataclass
class Model:
    files: dict[str, FileModel] = field(default_factory=dict)

    def functions(self):
        for fm in self.files.values():
            yield from fm.functions

    def classes(self):
        for fm in self.files.values():
            yield from fm.classes


# ---------------------------------------------------------------------------
# Structural parser
# ---------------------------------------------------------------------------

_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof", "alignas",
    "decltype", "noexcept", "static_assert", "catch", "new", "delete", "throw",
    "case", "do", "else", "goto", "co_await", "co_return", "co_yield",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast", "assert",
    "defined", "requires", "typeid", "and", "or", "not",
}

_NAME_BEFORE_PAREN_RE = re.compile(
    r"(~?[A-Za-z_]\w*(?:\s*::\s*~?[A-Za-z_]\w*)*|operator\s*(?:\(\s*\)|\[\s*\]|[^\s(]{1,3}))\s*$"
)
_CLASS_HEAD_RE = re.compile(r"\b(class|struct|union)\b(?!.*\benum\b)")
_CLASS_NAME_RE = re.compile(
    r"\b(?:class|struct|union)\b(?:\s*(?:alignas\s*\([^)]*\)|\[\[[^\]]*\]\]))*\s*"
    r"([A-Za-z_]\w*)?"
)
_NS_RE = re.compile(r"\bnamespace\s+((?:[A-Za-z_]\w*)(?:\s*::\s*[A-Za-z_]\w*)*)?\s*$")

_CALL_RE = re.compile(
    r"(?:\b((?:[A-Za-z_]\w*\s*::\s*)+))?([A-Za-z_]\w*)\s*\("
)

_GROWTH_METHODS = {
    "push_back", "emplace_back", "emplace", "insert", "resize", "reserve",
    "append", "assign", "try_emplace", "emplace_hint", "push", "push_front",
    "emplace_front",
}
_ALLOC_CALLS = {
    "make_shared", "make_unique", "to_string", "malloc", "calloc", "realloc",
    "strdup", "aligned_alloc",
}

_SHARD_SCHED_RE = re.compile(r"\bshard_sim\s*\([^)]*\)\s*(?:\.|->)\s*schedule")
_STATIC_LOCAL_RE = re.compile(
    r"\bstatic\s+(?!constexpr\b|const\b|_assert\b|assert\b|cast\b)"
    r"((?:[\w:<>,*&\s]|\[\[[^\]]*\]\])+?)\b([A-Za-z_]\w*)\s*(?:[;={]|\()"
)


def _last_toplevel_paren_group(head: str) -> tuple[int, int] | None:
    """Finds the parameter-list paren group of a plausible function signature
    in `head`: the last top-level `(...)` group whose preceding token is a
    valid function name (not a keyword / control construct)."""
    groups = []
    depth = 0
    start = -1
    angle = 0
    for i, c in enumerate(head):
        if c == "(":
            if depth == 0:
                start = i
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0 and start >= 0:
                groups.append((start, i))
        elif depth == 0:
            if c == "<":
                angle += 1
            elif c == ">":
                angle = max(0, angle - 1)
    for s, e in reversed(groups):
        m = _NAME_BEFORE_PAREN_RE.search(head[:s])
        if not m:
            continue
        name = re.sub(r"\s+", "", m.group(1))
        last = name.split("::")[-1]
        if last in _KEYWORDS or last.lstrip("~") in _KEYWORDS:
            continue
        # `requires(...)` / `noexcept(...)` / `alignas(...)` clauses.
        if last in ("requires", "noexcept", "alignas", "decltype", "__attribute__"):
            continue
        return s, e
    return None


def _sig_name(head: str, paren_start: int) -> str | None:
    m = _NAME_BEFORE_PAREN_RE.search(head[:paren_start])
    if not m:
        return None
    name = re.sub(r"\s+", "", m.group(1))
    if name.startswith("operator") and head[paren_start] == "(" and name == "operator":
        name = "operator()"
    return name


def _qualifier_tail_ok(tail: str) -> bool:
    """True if `tail` (text between the param-list ')' and the body '{')
    contains only function qualifiers / trailing-return tokens."""
    t = tail.strip()
    t = re.sub(r"noexcept\s*\([^)]*\)", "", t)
    t = re.sub(r"->\s*[\w:<>,*&\s()\[\]]+$", "", t)
    for tok in t.split():
        if tok not in ("const", "noexcept", "override", "final", "mutable",
                       "volatile", "&", "&&", "try", "->"):
            return False
    return True


def _extract_calls(body: str, body_line: int) -> list[CallSite]:
    calls = []
    for m in _CALL_RE.finditer(body):
        name = m.group(2)
        if name in _KEYWORDS:
            continue
        qual = m.group(1)
        if qual:
            qual = re.sub(r"\s*::\s*$", "", qual).replace(" ", "")
        j = m.start() - 1 if not qual else body.rfind(qual, 0, m.start()) - 1
        while j >= 0 and body[j] in " \t\n":
            j -= 1
        is_method = j >= 0 and (body[j] == "." or (body[j] == ">" and j >= 1 and body[j - 1] == "-"))
        calls.append(CallSite(name, qual, is_method, body_line + line_of(body, m.start()) - 1))
    return calls


def _extract_facts(body: str, body_line: int) -> list[Fact]:
    facts = []
    for m in re.finditer(r"\bnew\b", body):
        before = body[max(0, m.start() - 12):m.start()]
        if re.search(r"operator\s*$", before):
            continue  # operator-new declaration/definition, not a new-expression
        j = _skip_ws(body, m.end())
        if j < len(body) and body[j] == "(":
            continue  # placement-new syntax (non-allocating in this codebase)
        facts.append(Fact("new-expr", body_line + line_of(body, m.start()) - 1, "new-expression"))
    for m in _SHARD_SCHED_RE.finditer(body):
        facts.append(Fact("shard-sched", body_line + line_of(body, m.start()) - 1,
                          "schedules directly onto shard_sim()"))
    return facts


@dataclass
class _Scope:
    kind: str  # ns | class | enum
    name: str


def parse_file(path: Path, rel: str, tag: str = "son-analyze",
               known_rules: set[str] | None = None) -> FileModel:
    text = path.read_text(encoding="utf-8", errors="replace")
    code, suppressions, bad_lines = strip_code(text, tag, known_rules)
    fm = FileModel(rel=rel, raw_lines=text.splitlines(),
                   suppressions=suppressions, bad_suppression_lines=list(bad_lines))

    scopes: list[_Scope] = []
    class_by_name: dict[str, ClassInfo] = {}
    i, n = 0, len(code)
    stmt_start = 0  # start of the current element (after last ; } {)

    def cur_class() -> str | None:
        for sc in reversed(scopes):
            if sc.kind == "class":
                return sc.name
        return None

    def ns_path() -> str:
        return "::".join(sc.name for sc in scopes if sc.kind == "ns" and sc.name)

    def register_function(name: str, head: str, body: str, head_idx: int,
                          body_idx: int, is_decl: bool):
        cls = cur_class()
        short = name.split("::")[-1]
        if "::" in name:
            cls = name.split("::")[-2]
        qparts = [p for p in (ns_path(), cls, short) if p]
        fn = FunctionDef(
            qname="::".join(dict.fromkeys(qparts)), name=short, cls=cls,
            file=rel, line=line_of(code, _skip_ws(code, head_idx)),
            hot="SON_HOT" in head, is_decl=is_decl)
        if not is_decl:
            fn.body = body
            fn.body_line = line_of(code, body_idx)
            fn.calls = _extract_calls(body, fn.body_line)
            fn.facts = _extract_facts(body, fn.body_line)
            for sm in _STATIC_LOCAL_RE.finditer(body):
                if "constexpr" in sm.group(1) or sm.group(1).strip().startswith("const "):
                    continue
                fm.statics.append(StaticVar(
                    name=sm.group(2), file=rel,
                    line=fn.body_line + line_of(body, sm.start()) - 1,
                    kind="static-local",
                    decl=(sm.group(1).strip() + " " + sm.group(2))[:120]))
        fm.functions.append(fn)

    def register_variable(head: str, head_idx: int):
        """Namespace-scope variable (global) or class member."""
        h = head
        # Drop default-member-initializer / initializer tail.
        eq = -1
        depth = 0
        for k, c in enumerate(h):
            if c in "(<[{":
                depth += 1
            elif c in ")>]}":
                depth -= 1
            elif c == "=" and depth == 0 and (k == 0 or h[k - 1] not in "=<>!+-*/&|%^") \
                    and (k + 1 >= len(h) or h[k + 1] != "="):
                eq = k
                break
        if eq >= 0:
            h = h[:eq]
        h = h.strip().rstrip("{").strip()
        if not h or h.endswith((")", ">", "]")):
            return
        m = re.search(r"([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?\s*$", h)
        if not m:
            return
        name = m.group(1)
        type_text = h[:m.start()].strip()
        if not type_text or type_text in ("return", "using", "typedef", "goto"):
            return
        # `class Foo;` / `struct Bar;` / `enum class Baz;` are forward
        # declarations, not variables.
        if type_text in ("class", "struct", "union", "enum", "enum class",
                         "enum struct"):
            return
        first_tok = type_text.split()[0] if type_text.split() else ""
        if first_tok in ("using", "typedef", "friend", "extern", "template"):
            return
        line = line_of(code, _skip_ws(code, head_idx))
        cls = cur_class()
        if cls is not None:
            class_by_name[cls].members.append(MemberVar(cls, name, type_text, rel, line))
            return
        # Top-level const only: `const T* p` is a MUTABLE pointer to const.
        immutable = ("constexpr" in type_text
                     or type_text.rstrip().endswith("const")
                     or (re.search(r"\bconst\b", type_text)
                         and "*" not in type_text and "&" not in type_text))
        if not immutable:
            kind = "thread-local" if "thread_local" in type_text else "global"
            if "static_assert" in type_text:
                return
            fm.statics.append(StaticVar(name, rel, line, kind,
                                        (type_text + " " + name)[:120]))

    while i < n:
        c = code[i]
        if c in " \t\n\r":
            i += 1
            continue
        if c == "}":
            if scopes:
                scopes.pop()
            i += 1
            stmt_start = i
            # swallow a trailing ';' after a class/enum body
            j = _skip_ws(code, i)
            if j < n and code[j] == ";":
                i = j + 1
                stmt_start = i
            continue
        if c == "#":  # preprocessor line (handles simple line continuation)
            j = code.find("\n", i)
            while j > 0 and code[j - 1] == "\\":
                j = code.find("\n", j + 1)
            i = n if j < 0 else j + 1
            stmt_start = i
            continue
        if c == ";":
            head = code[stmt_start:i]
            sig = _last_toplevel_paren_group(head)
            if sig is not None:
                name = _sig_name(head, sig[0])
                if name:
                    register_function(name, head, "", stmt_start, 0, is_decl=True)
            elif "=" in head or re.search(r"[A-Za-z_]\w*\s*$", head):
                register_variable(head, stmt_start)
            i += 1
            stmt_start = i
            continue
        if c != "{":
            i += 1
            continue

        # --- classify this '{' --------------------------------------------
        head = code[stmt_start:i]
        nsm = _NS_RE.search(head)
        if nsm is not None or head.strip() == "namespace":
            names = (nsm.group(1) if nsm and nsm.group(1) else "(anon)").replace(" ", "")
            for part in names.split("::"):
                scopes.append(_Scope("ns", part))
                break  # nested-namespace shorthand: one brace closes all; keep 1 scope
            i += 1
            stmt_start = i
            continue
        if re.search(r"\benum\b", head):
            i = match_brace(code, i) + 1
            j = _skip_ws(code, i)
            if j < n and code[j] == ";":
                i = j + 1
            stmt_start = i
            continue
        if _CLASS_HEAD_RE.search(head) and not _last_toplevel_paren_group(
                head.split(":")[0] if ":" in head and "::" not in head.split(":")[0][-1:] else head):
            cm = _CLASS_NAME_RE.search(head)
            cname = cm.group(1) if cm and cm.group(1) else "(anon-class)"
            scopes.append(_Scope("class", cname))
            if cname not in class_by_name:
                ci = ClassInfo(cname, rel, line_of(code, stmt_start))
                class_by_name[cname] = ci
                fm.classes.append(ci)
            i += 1
            stmt_start = i
            continue

        sig = _last_toplevel_paren_group(head)
        if sig is not None:
            pstart, pend = sig
            name = _sig_name(head, pstart)
            tail = head[pend + 1:]
            body_open = i
            t = tail.strip()
            if name and (t.startswith(":") and not t.startswith("::")):
                # Constructor member-init list: consume `ident{...}`/`ident(...)`
                # items until the body '{'.
                j = i
                while True:
                    j = match_paren(code, j, "{", "}") + 1 if code[j] == "{" else \
                        match_paren(code, j) + 1
                    j = _skip_ws(code, j)
                    if j >= n or code[j] != ",":
                        break
                    j = _skip_ws(code, j + 1)
                    m2 = re.match(r"[A-Za-z_]\w*(?:\s*<)?", code[j:])
                    if not m2:
                        break
                    j += m2.end()
                    if code[j - 1] == "<":
                        j = match_paren(code, j - 1, "<", ">") + 1
                    j = _skip_ws(code, j)
                    if j >= n or code[j] not in "({":
                        break
                if j < n and code[j] == "{":
                    body_open = j
                    body_close = match_brace(code, body_open)
                    register_function(name, head, code[body_open + 1:body_close],
                                      stmt_start, body_open, is_decl=False)
                    i = body_close + 1
                    stmt_start = i
                    continue
                # init list ended unexpectedly; treat as opaque
                i = match_brace(code, i) + 1
                stmt_start = i
                continue
            if name and _qualifier_tail_ok(tail):
                body_close = match_brace(code, body_open)
                register_function(name, head, code[body_open + 1:body_close],
                                  stmt_start, body_open, is_decl=False)
                i = body_close + 1
                stmt_start = i
                continue

        # Brace initializer (`Foo x{...}` / array init / lambda init):
        # consume the group, then scan on to the terminating ';'.
        close = match_brace(code, i)
        head_idx = stmt_start
        j = _skip_ws(code, close + 1)
        if j < n and code[j] == ";":
            register_variable(head + "{", head_idx)
            i = j + 1
        else:
            i = close + 1
        stmt_start = i

    return fm


def build_model(files: list[tuple[Path, str]], tag: str = "son-analyze",
                known_rules: set[str] | None = None) -> Model:
    model = Model()
    for path, rel in files:
        model.files[rel] = parse_file(path, rel, tag, known_rules)
    return model
