"""Minimal SARIF 2.1.0 writer for son-analyze findings.

Emits the subset GitHub code scanning and most SARIF viewers consume: one
run, one tool.driver with the rule catalog, one result per finding with a
physical location and (for reachability rules) the call path rendered into
the message and as related locations on the sink file.
"""

from __future__ import annotations

import json

SARIF_SCHEMA = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

_LEVELS = {
    "bad-suppression": "error",
    "shard-confinement": "error",
    "timer-lifecycle": "error",
    "hot-path-alloc": "warning",
    "mutable-static": "warning",
}


def to_sarif(findings, rules: dict[str, str], *, tool_version: str,
             engine: str) -> dict:
    rule_ids = sorted(rules)
    rule_index = {r: i for i, r in enumerate(rule_ids)}
    results = []
    for f in findings:
        message = f.message
        if f.path:
            message += "  [call path: " + " -> ".join(f.path) + "]"
        results.append({
            "ruleId": f.rule,
            "ruleIndex": rule_index[f.rule],
            "level": _LEVELS.get(f.rule, "warning"),
            "message": {"text": message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.file, "uriBaseId": "SRCROOT"},
                    "region": {"startLine": max(1, f.line),
                               "snippet": {"text": f.snippet}},
                }
            }],
            "partialFingerprints": {
                "sonAnalyze/v1": f"{f.rule}:{f.file}:{f.snippet[:80]}",
            },
        })
    return {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "son-analyze",
                    "version": tool_version,
                    "informationUri": "https://example.invalid/son-analyze",
                    "properties": {"engine": engine},
                    "rules": [{
                        "id": r,
                        "shortDescription": {"text": rules[r].split(";")[0][:200]},
                        "fullDescription": {"text": rules[r]},
                        "defaultConfiguration": {"level": _LEVELS.get(r, "warning")},
                    } for r in rule_ids],
                }
            },
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "results": results,
        }],
    }


def write_sarif(path, findings, rules, *, tool_version, engine):
    doc = to_sarif(findings, rules, tool_version=tool_version, engine=engine)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
