"""Optional libclang engine for son-analyze.

When `clang.cindex` is importable (CI installs python3-clang + libclang; dev
boxes may not have it), this module sharpens the structural model with
AST-accurate information:

  * call edges: CALL_EXPR referenced-decl spelling replaces the name-based
    over-approximation for every function the AST can attribute, shrinking
    false paths in the reachability rules;
  * new-expressions: CXX_NEW_EXPR cursors confirm/extend the textual
    new-expression facts (placement new is already excluded structurally;
    the AST pass re-adds any new-expr hidden behind macros).

The structural model remains the substrate — suppressions, statics, members,
and file bookkeeping all come from cpp_model; only per-function `calls` and
`facts` are refined. Any TU that fails to parse keeps its structural facts
(per-TU fallback), so a partially-broken compile never loses coverage, it
only loses precision.

Returns None from build_model_clang when the binding or a usable libclang
shared object is missing — the caller falls back to the pure structural
engine, mirroring son-lint's engine gate.
"""

from __future__ import annotations

import cpp_model


def _try_index():
    try:
        from clang import cindex
    except ImportError:
        return None
    try:
        return cindex, cindex.Index.create()
    except Exception:
        # Binding importable but no libclang.so resolvable.
        for name in ("libclang-14.so.1", "libclang.so.14", "libclang-15.so.1",
                     "libclang.so.15", "libclang.so.1", "libclang.so"):
            try:
                cindex.Config.set_library_file(name)
                return cindex, cindex.Index.create()
            except Exception:
                cindex.Config.loaded = False
                continue
        return None


_ARGS = ["-std=c++20", "-xc++", "-Isrc", "-I."]


def build_model_clang(rel_files, known_rules):
    """rel_files: list of (abs Path, repo-relative str). Returns a Model or
    None when libclang is unusable."""
    found = _try_index()
    if found is None:
        return None
    cindex, index = found

    model = cpp_model.build_model(rel_files, "son-analyze", known_rules)

    # Index structural functions by (rel file, body start line) so AST
    # cursors can be attributed to them.
    fn_by_file: dict[str, list] = {}
    for fm in model.files.values():
        for fn in fm.functions:
            if not fn.is_decl:
                fn_by_file.setdefault(fn.file, []).append(fn)
    for fns in fn_by_file.values():
        fns.sort(key=lambda f: f.line)

    abs_to_rel = {str(p.resolve()): rel for p, rel in rel_files}

    def owner_of(rel: str, line: int):
        best = None
        for fn in fn_by_file.get(rel, ()):
            if fn.line <= line:
                best = fn
            else:
                break
        return best

    tus = [p for p, rel in rel_files if p.suffix in {".cpp", ".cc", ".cxx"}]
    parsed_any = False
    refined: dict[int, tuple[list, list]] = {}  # id(fn) -> (calls, facts)

    for src in tus:
        try:
            tu = index.parse(str(src), args=_ARGS)
        except Exception:
            continue
        fatal = any(d.severity >= cindex.Diagnostic.Fatal for d in tu.diagnostics)
        if fatal:
            continue  # per-TU fallback: keep structural facts
        parsed_any = True
        for cur in tu.cursor.walk_preorder():
            loc = cur.location
            if loc.file is None:
                continue
            rel = abs_to_rel.get(str(loc.file))
            if rel is None:
                continue
            fn = owner_of(rel, loc.line)
            if fn is None:
                continue
            calls, facts = refined.setdefault(id(fn), ([], []))
            if cur.kind == cindex.CursorKind.CALL_EXPR:
                ref = cur.referenced
                name = (ref.spelling if ref is not None else cur.spelling) or ""
                if not name:
                    continue
                cls = ""
                if ref is not None and ref.semantic_parent is not None and \
                        ref.semantic_parent.kind in (
                            cindex.CursorKind.CLASS_DECL,
                            cindex.CursorKind.STRUCT_DECL,
                            cindex.CursorKind.CLASS_TEMPLATE):
                    cls = ref.semantic_parent.spelling
                calls.append(cpp_model.CallSite(
                    name=name, qualifier=cls, is_method=bool(cls), line=loc.line))
            elif cur.kind == cindex.CursorKind.CXX_NEW_EXPR:
                facts.append(cpp_model.Fact("new-expr", loc.line, "CXX_NEW_EXPR"))

    if not parsed_any:
        return None  # nothing usable came out of libclang; stay structural

    for fm in model.files.values():
        for fn in fm.functions:
            got = refined.get(id(fn))
            if got is None:
                continue
            calls, facts = got
            if calls:
                fn.calls = calls
            # Keep structural non-new facts (shard-sched pattern), merge
            # AST-confirmed new-exprs.
            keep = [f for f in fn.facts if f.kind != "new-expr"]
            seen_lines = {f.line for f in facts}
            keep += facts
            keep += [f for f in fn.facts
                     if f.kind == "new-expr" and f.line not in seen_lines]
            fn.facts = keep
    return model
