#!/usr/bin/env python3
"""Self-test for son-analyze: every rule fires on its positive fixture and
stays silent on its negative twin, the suppression grammar rejects bare
suppressions, the baseline loader rejects entries without justifications,
and the JSON/SARIF reports round-trip. Run directly or via ctest
(registered as `son_analyze_selftest`).

Runs with --engine tokens so the result is identical on machines with and
without libclang; CI runs an additional advisory clang-engine pass.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

HERE = Path(__file__).resolve().parent
TOOL = HERE / "son_analyze.py"
FIX = HERE / "fixtures"


def run(*args: str):
    return subprocess.run(
        [sys.executable, str(TOOL), "--engine", "tokens", "--root", str(HERE), *args],
        capture_output=True, text=True, check=False)


def fail(msg: str):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def findings_of(report: Path) -> list[dict]:
    return json.loads(report.read_text())["findings"]


def expect_rule(name: str, extra: list[str], rule: str, min_count: int,
                forbid_other_rules: bool = False):
    with tempfile.TemporaryDirectory() as td:
        report = Path(td) / "report.json"
        r = run("--baseline", "none", "--json", str(report),
                *extra, str(FIX / name))
        if r.returncode != 1:
            fail(f"{name}: expected exit 1, got {r.returncode}\n{r.stdout}{r.stderr}")
        fs = findings_of(report)
        hits = [f for f in fs if f["rule"] == rule]
        if len(hits) < min_count:
            fail(f"{name}: expected >= {min_count} {rule} findings, got "
                 f"{len(hits)}\n{r.stdout}")
        if forbid_other_rules and len(hits) != len(fs):
            others = sorted({f['rule'] for f in fs} - {rule})
            fail(f"{name}: unexpected extra rules fired: {others}\n{r.stdout}")
        for f in fs:
            if f["line"] <= 0 or not f["file"].endswith(".cpp"):
                fail(f"{name}: finding with bad location: {f}")
        return fs


def expect_clean(name: str, extra: list[str]):
    r = run("--baseline", "none", *extra, str(FIX / name))
    if r.returncode != 0:
        fail(f"{name}: expected exit 0, got {r.returncode}\n{r.stdout}{r.stderr}")


def main():
    # --- per-rule positive/negative pairs ---------------------------------
    timer = expect_rule("timer_bad.cpp", [], "timer-lifecycle", 3,
                        forbid_other_rules=True)
    msgs = " ".join(f["message"] for f in timer)
    if "LeakyTimer::tick_" not in msgs or "HalfCancelled::b_" not in msgs:
        fail(f"timer_bad.cpp: expected member findings for LeakyTimer::tick_ "
             f"and HalfCancelled::b_\n{msgs}")
    if "HalfCancelled::a_" in msgs:
        fail("timer_bad.cpp: HalfCancelled::a_ is cancelled and must not fire")
    expect_clean("timer_ok.cpp", [])

    hot = expect_rule("hot_bad.cpp", [], "hot-path-alloc", 3,
                      forbid_other_rules=True)
    kinds = " ".join(f["message"] for f in hot)
    for needle in ("new-expression", "to_string", "push_back"):
        if needle not in kinds:
            fail(f"hot_bad.cpp: no finding mentions {needle}\n{kinds}")
    transitive = [f for f in hot if len(f.get("path", [])) >= 3]
    if not transitive:
        fail("hot_bad.cpp: expected a transitive finding with a call path "
             "of depth >= 3 (tick -> middle -> deep_allocates)")
    expect_clean("hot_ok.cpp", [])

    glob_bad = ["--partition-glob", "*confinement_bad.cpp",
                str(FIX / "confinement_helper.cpp")]
    conf = expect_rule("confinement_bad.cpp", glob_bad, "shard-confinement", 4)
    msgs = " ".join(f["message"] for f in conf)
    for needle in ("schedule_global", "control_sim", "shard simulator",
                   "g_shared_hits"):
        if needle not in msgs:
            fail(f"confinement_bad.cpp: no finding mentions {needle}\n{msgs}")
    via_helper = [f for f in conf if "handler_via_helper" in " ".join(f.get("path", []))]
    if not via_helper or not via_helper[0]["file"].endswith("confinement_helper.cpp"):
        fail("confinement_bad.cpp: cross-file transitive control_sim reach "
             "(handler_via_helper -> helper_touches_control) not reported "
             f"in confinement_helper.cpp: {via_helper}")
    expect_clean("confinement_ok.cpp", ["--partition-glob", "*confinement_ok.cpp"])

    stat = expect_rule("statics_bad.cpp", [], "mutable-static", 4,
                       forbid_other_rules=True)
    kinds = {f["message"].split("mutable ")[1].split(" ")[0] for f in stat}
    if kinds != {"global", "thread-local", "static-local"}:
        fail(f"statics_bad.cpp: expected all three kinds, got {sorted(kinds)}")
    expect_clean("statics_ok.cpp", [])

    sup = expect_rule("suppression_bad.cpp", [], "bad-suppression", 3)

    expect_clean("clean.cpp", [])

    # --- baseline contract ------------------------------------------------
    with tempfile.TemporaryDirectory() as td:
        bad_bl = Path(td) / "bl.json"
        bad_bl.write_text(json.dumps({
            "version": 1,
            "suppressions": [{"rule": "mutable-static", "path": "*"}],
        }))
        r = run("--baseline", str(bad_bl), str(FIX / "statics_bad.cpp"))
        if r.returncode != 2:
            fail(f"baseline without justification: expected exit 2, got "
                 f"{r.returncode}\n{r.stdout}{r.stderr}")

        good_bl = Path(td) / "bl2.json"
        good_bl.write_text(json.dumps({
            "version": 1,
            "suppressions": [{
                "rule": "mutable-static", "path": "*statics_bad.cpp",
                "justification": "fixture: accepted for the suppression test",
            }],
        }))
        r = run("--baseline", str(good_bl), str(FIX / "statics_bad.cpp"))
        if r.returncode != 0:
            fail(f"justified baseline: expected exit 0, got {r.returncode}\n"
                 f"{r.stdout}{r.stderr}")

        unknown_rule_bl = Path(td) / "bl3.json"
        unknown_rule_bl.write_text(json.dumps({
            "version": 1,
            "suppressions": [{
                "rule": "not-a-rule", "path": "*",
                "justification": "long enough but names an unknown rule",
            }],
        }))
        r = run("--baseline", str(unknown_rule_bl), str(FIX / "clean.cpp"))
        if r.returncode != 2:
            fail(f"baseline with unknown rule: expected exit 2, got {r.returncode}")

    # --- control-plane entries narrow the confinement entry set -----------
    with tempfile.TemporaryDirectory() as td:
        cp_bl = Path(td) / "bl.json"
        cp_bl.write_text(json.dumps({
            "version": 1,
            "suppressions": [
                {"rule": "mutable-static", "path": "*confinement_bad.cpp",
                 "justification": "fixture: static census not under test here"},
            ],
            "control_plane": [
                {"path": "*confinement_bad.cpp", "symbol": "handler_schedules_global",
                 "justification": "fixture: reclassified as a control-plane root"},
                {"path": "*confinement_bad.cpp", "symbol": "handler_cross_shard",
                 "justification": "fixture: reclassified as a control-plane root"},
                {"path": "*confinement_bad.cpp", "symbol": "handler_touches_static",
                 "justification": "fixture: reclassified as a control-plane root"},
            ],
        }))
        # With three of the four roots reclassified as control-plane, only
        # handler_via_helper remains an entry point — so exactly one finding
        # survives: the helper's control_sim call, reached cross-file.
        report = Path(td) / "r.json"
        r = run("--baseline", str(cp_bl), "--json", str(report),
                "--partition-glob", "*confinement_bad.cpp",
                str(FIX / "confinement_bad.cpp"),
                str(FIX / "confinement_helper.cpp"))
        if r.returncode != 1:
            fail(f"control-plane narrowing: expected exit 1, got {r.returncode}\n"
                 f"{r.stdout}{r.stderr}")
        fs = findings_of(report)
        if len(fs) != 1 or "helper_touches_control" not in fs[0]["message"] \
                or fs[0].get("path") != ["handler_via_helper", "helper_touches_control"]:
            fail(f"control-plane narrowing: expected exactly the helper's "
                 f"control_sim finding via handler_via_helper, got {fs}")

    # --- compile_commands.json drives the file set (incl. header closure) --
    with tempfile.TemporaryDirectory() as td:
        compdb = Path(td) / "compile_commands.json"
        compdb.write_text(json.dumps([{
            "directory": str(FIX),
            "file": str(FIX / "clean.cpp"),
            "command": "c++ -c clean.cpp",
        }]))
        report = Path(td) / "r.json"
        r = run("--baseline", "none", "--compdb", str(compdb),
                "--json", str(report))
        if r.returncode != 1:
            fail(f"compdb run: expected exit 1 (header static), got "
                 f"{r.returncode}\n{r.stdout}{r.stderr}")
        fs = findings_of(report)
        if not any(f["file"].endswith("include_helper.hpp")
                   and f["rule"] == "mutable-static" for f in fs):
            fail(f"compdb run: include_helper.hpp static not found via the "
                 f"header closure: {fs}")

    # --- SARIF shape -------------------------------------------------------
    with tempfile.TemporaryDirectory() as td:
        sarif = Path(td) / "out.sarif"
        r = run("--baseline", "none", "--sarif", str(sarif),
                str(FIX / "hot_bad.cpp"))
        if r.returncode != 1:
            fail(f"sarif run: expected exit 1, got {r.returncode}")
        doc = json.loads(sarif.read_text())
        if doc["version"] != "2.1.0":
            fail("sarif: wrong version")
        run0 = doc["runs"][0]
        rule_ids = {rr["id"] for rr in run0["tool"]["driver"]["rules"]}
        if "hot-path-alloc" not in rule_ids or len(rule_ids) != 5:
            fail(f"sarif: rule catalog wrong: {sorted(rule_ids)}")
        if not run0["results"]:
            fail("sarif: no results emitted")
        res = run0["results"][0]
        for key in ("ruleId", "level", "message", "locations", "partialFingerprints"):
            if key not in res:
                fail(f"sarif: result missing {key}")
        loc = res["locations"][0]["physicalLocation"]
        if loc["region"]["startLine"] <= 0 or not loc["artifactLocation"]["uri"]:
            fail(f"sarif: bad physical location: {loc}")

    # --- seeded regression: what the CI gate demonstrates ------------------
    with tempfile.TemporaryDirectory() as td:
        seeded = Path(td) / "seeded.cpp"
        seeded.write_text((FIX / "clean.cpp").read_text()
                          + "\nint g_seeded_regression = 1;\n")
        r = run("--baseline", "none", str(seeded))
        if r.returncode != 1:
            fail(f"seeded regression: expected exit 1, got {r.returncode}\n"
                 f"{r.stdout}{r.stderr}")
        if "g_seeded_regression" not in r.stdout:
            fail(f"seeded regression: finding does not name the seed\n{r.stdout}")

    # --- misc CLI ----------------------------------------------------------
    r = run("--list-rules")
    if r.returncode != 0 or len([ln for ln in r.stdout.splitlines() if ln.strip()]) != 5:
        fail(f"--list-rules: expected 5 rules, got:\n{r.stdout}")
    r = run("--baseline", "none", str(FIX / "no_such_file.cpp"))
    if r.returncode != 2:
        fail(f"missing input: expected exit 2, got {r.returncode}")

    print("son-analyze self-test: all checks passed")


if __name__ == "__main__":
    main()
