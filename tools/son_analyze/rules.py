"""son-analyze rules: whole-program analyses over the cpp_model.Model.

Four rules, each the static complement of a runtime contract:

  shard-confinement   code reachable from partition entry points must not
                      schedule onto the control plane (schedule_global /
                      control_sim), schedule directly onto another shard's
                      simulator (generalizing son-lint rule 9 from the inline
                      pattern to full call-graph reachability), or touch
                      mutable namespace-scope state. ShardChannel::push is
                      the only legal cross-partition carrier. Complements the
                      SON_DCHECKs in ShardedKernel / Internet::enable_sharding.
                      (Per-object cross-partition writes stay runtime-checked:
                      name-based analysis cannot see object ownership.)

  timer-lifecycle     every member sim::EventId (or container of them) that is
                      ever assigned from schedule()/schedule_at() must be
                      cancelled in the owning class's destructor (directly or
                      via a same-class method the destructor calls), and every
                      schedule() whose callback captures `this` must either
                      store the EventId, route through sim::TimerGuard::wrap
                      (generation-guarded), or carry a justification. Catches
                      statically the dangling-timer use-after-free class that
                      PR 5 fixed dynamically.

  hot-path-alloc      functions annotated SON_HOT must not reach a known
                      allocating construct (new-expressions, make_shared/
                      make_unique/to_string/malloc, or amortized container
                      growth like push_back/resize) on any call path. The
                      static complement of the runtime alloc_probe: the probe
                      proves a measured window allocation-free, this proves
                      the property over every path the call graph admits.
                      Reserve-backed growth is sound — suppress with the
                      justification saying why the capacity is pre-reserved.

  mutable-static      census of mutable namespace-scope / thread_local /
                      function-local-static state, enforced against justified
                      suppressions. Mutable statics are shared across shard
                      workers and across trial replications: each one is a
                      determinism hazard unless single-writer or inert.

Plus `bad-suppression` (a suppression without a justification), shared with
son-lint's grammar.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from cpp_model import Fact, FunctionDef, Model, _ALLOC_CALLS, _GROWTH_METHODS

RULES = {
    "shard-confinement": "partition-reachable code schedules onto the control plane, another "
    "shard's simulator, or touches mutable global state; cross-partition effects must ride a "
    "ShardChannel so the conservative lookahead bound holds",
    "timer-lifecycle": "a scheduled timer can outlive its owner: member EventIds must be "
    "cancelled in the destructor, and this-capturing callbacks must store their EventId or be "
    "generation-guarded (sim::TimerGuard::wrap) — a fire after destruction is a use-after-free",
    "hot-path-alloc": "a SON_HOT function reaches an allocating construct; hot paths promise "
    "zero steady-state heap allocation (runtime-pinned by alloc_probe, statically by this rule)",
    "mutable-static": "mutable namespace-scope/static state; shared across shard workers and "
    "trial replications, so every instance needs a written single-writer/inertness argument",
    "bad-suppression": "son-analyze suppression without a justification string",
}


@dataclass
class Finding:
    file: str
    line: int
    rule: str
    message: str
    snippet: str = ""
    path: list[str] = field(default_factory=list)  # call chain, for reach rules

    def sort_key(self):
        return (self.file, self.line, self.rule, self.message)

    def to_json(self):
        d = {"file": self.file, "line": self.line, "rule": self.rule,
             "message": self.message, "snippet": self.snippet}
        if self.path:
            d["path"] = self.path
        return d

    def __str__(self):
        s = f"{self.file}:{self.line}: [{self.rule}] {self.message}"
        if self.path:
            s += f"\n    path: {' -> '.join(self.path)}"
        return s


# ---------------------------------------------------------------------------
# Call graph
# ---------------------------------------------------------------------------


class CallGraph:
    """Name-resolved call graph over every FunctionDef with a body.

    Resolution is deliberately over-approximate (see cpp_model docstring):
      obj.m(...) / p->m(...)   -> every class method named m
      Cls::m(...) / ns::f(...) -> functions named m whose class/qname matches
      f(...)                   -> free functions named f, plus methods named f
                                  of the *caller's own* class (implicit this->)
    """

    def __init__(self, model: Model):
        self.defs: list[FunctionDef] = [f for f in model.functions() if not f.is_decl]
        self.by_name: dict[str, list[FunctionDef]] = {}
        self.methods_by_name: dict[str, list[FunctionDef]] = {}
        self.free_by_name: dict[str, list[FunctionDef]] = {}
        for f in self.defs:
            self.by_name.setdefault(f.name, []).append(f)
            (self.methods_by_name if f.cls else self.free_by_name).setdefault(
                f.name, []).append(f)
        # SON_HOT can live on the declaration (header) or the definition:
        # merge by (cls, name).
        hot_keys = {(f.cls, f.name) for f in model.functions() if f.hot}
        for f in self.defs:
            if (f.cls, f.name) in hot_keys:
                f.hot = True
        self._succ: dict[int, list[FunctionDef]] = {}

    def successors(self, fn: FunctionDef) -> list[FunctionDef]:
        cached = self._succ.get(id(fn))
        if cached is not None:
            return cached
        out: list[FunctionDef] = []
        seen: set[int] = set()
        for call in fn.calls:
            if call.is_method and call.name in _GROWTH_METHODS:
                # Growth-named method calls (push_back, insert, ...) are
                # overwhelmingly std-container calls; resolving them to
                # same-named project methods cascades false paths. They are
                # terminal sinks for hot-path-alloc instead of edges.
                continue
            if call.qualifier:
                qlast = call.qualifier.split("::")[-1]
                cands = [g for g in self.by_name.get(call.name, ())
                         if g.cls == qlast or qlast in g.qname.split("::")]
            elif call.is_method:
                cands = self.methods_by_name.get(call.name, ())
            else:
                cands = list(self.free_by_name.get(call.name, ()))
                if fn.cls:
                    cands += [g for g in self.methods_by_name.get(call.name, ())
                              if g.cls == fn.cls]
            for g in cands:
                if id(g) not in seen:
                    seen.add(id(g))
                    out.append(g)
        self._succ[id(fn)] = out
        return out

    def reach(self, roots: list[FunctionDef]):
        """BFS yielding (fn, path_of_qnames) in deterministic order."""
        seen: set[int] = set()
        q: deque[tuple[FunctionDef, tuple[str, ...]]] = deque()
        for r in sorted(roots, key=lambda f: (f.file, f.line)):
            if id(r) not in seen:
                seen.add(id(r))
                q.append((r, (r.qname,)))
        while q:
            fn, path = q.popleft()
            yield fn, path
            if len(path) >= 24:  # depth bound; over-approx graphs can cycle wide
                continue
            for g in self.successors(fn):
                if id(g) not in seen:
                    seen.add(id(g))
                    q.append((g, path + (g.qname,)))


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


class Emitter:
    def __init__(self, model: Model, baseline):
        self.model = model
        self.baseline = baseline
        self.findings: list[Finding] = []
        self.suppressed_count = 0

    def snippet(self, file: str, line: int) -> str:
        fm = self.model.files.get(file)
        if fm and 0 < line <= len(fm.raw_lines):
            return fm.raw_lines[line - 1].strip()[:160]
        return ""

    def emit(self, file: str, line: int, rule: str, message: str,
             path: list[str] | None = None, symbol: str = ""):
        fm = self.model.files.get(file)
        if fm and rule in fm.suppressions.get(line, ()):
            self.suppressed_count += 1
            return False
        if self.baseline is not None and self.baseline.allows(rule, file, symbol):
            self.suppressed_count += 1
            return False
        self.findings.append(Finding(file, line, rule, message,
                                     self.snippet(file, line), path or []))
        return True

    def is_suppressed_at(self, file: str, line: int, rule: str) -> bool:
        fm = self.model.files.get(file)
        if fm and rule in fm.suppressions.get(line, ()):
            return True
        return self.baseline is not None and self.baseline.allows(rule, file, "")


# ---------------------------------------------------------------------------
# Rule: mutable-static (census first: confinement consumes the survivors)
# ---------------------------------------------------------------------------


def check_mutable_statics(model: Model, em: Emitter) -> list:
    """Emits findings; returns the unsuppressed file-local referenceable
    statics (globals / thread-locals) for the confinement rule's sink set."""
    live = []
    for fm in model.files.values():
        for sv in fm.statics:
            kept = em.emit(
                sv.file, sv.line, "mutable-static",
                f"mutable {sv.kind} `{sv.decl}` — "
                + RULES["mutable-static"].split("; ", 1)[1],
                symbol=sv.name)
            if sv.kind != "static-local":
                if kept or not em.is_suppressed_at(sv.file, sv.line, "shard-confinement"):
                    # A static whose definition carries a shard-confinement
                    # suppression is also dropped from the confinement sink
                    # set: one justification covers both views of the hazard.
                    if not em.is_suppressed_at(sv.file, sv.line, "shard-confinement"):
                        live.append(sv)
    return live


# ---------------------------------------------------------------------------
# Rule: shard-confinement
# ---------------------------------------------------------------------------

_CONTROL_CALLS = {"schedule_global", "control_sim"}


def check_shard_confinement(model: Model, graph: CallGraph, em: Emitter,
                            partition_globs: list[str], live_statics: list,
                            roots_filter=None):
    import fnmatch

    import re as _re

    roots = [f for f in graph.defs
             if any(fnmatch.fnmatch(f.file, g) for g in partition_globs)
             and (roots_filter is None or roots_filter(f))]
    # Pre-index static references per function (file-local identifier match:
    # the census statics in this tree live in anonymous namespaces).
    statics_by_file: dict[str, list] = {}
    for sv in live_statics:
        statics_by_file.setdefault(sv.file, []).append(sv)

    reported: set[tuple] = set()

    def report(file, line, key, msg, path, symbol):
        if key in reported:
            return
        em.emit(file, line, "shard-confinement", msg, list(path), symbol=symbol)
        reported.add(key)  # even if suppressed: don't re-litigate via other paths

    for fn, path in graph.reach(roots):
        for call in fn.calls:
            if call.name in _CONTROL_CALLS:
                report(fn.file, call.line, ("ctl", fn.qname, call.name),
                       f"`{fn.qname}` (partition-reachable) calls `{call.name}` — "
                       "control-plane scheduling from partition context breaks the "
                       "lookahead contract (runtime: SON_DCHECK in ShardedKernel)",
                       path, fn.qname)
        for fact in fn.facts:
            if fact.kind == "shard-sched":
                report(fn.file, fact.line, ("ss", fn.file, fact.line),
                       f"`{fn.qname}` (partition-reachable) schedules directly onto a "
                       "shard simulator; cross-partition events must ride a "
                       "ShardChannel (son-lint rule 9, here transitively enforced)",
                       path, fn.qname)
        for sv in statics_by_file.get(fn.file, ()):
            if fn.body and _re.search(r"\b" + _re.escape(sv.name) + r"\b", fn.body):
                report(fn.file, sv.line, ("st", fn.qname, sv.name),
                       f"`{fn.qname}` (partition-reachable) touches mutable "
                       f"{sv.kind} `{sv.name}` — shared across shard workers",
                       path, fn.qname)


# ---------------------------------------------------------------------------
# Rule: timer-lifecycle
# ---------------------------------------------------------------------------

import re as _re2

_EVENTID_TYPE_RE = _re2.compile(r"(?:^|[^\w])(?:sim\s*::\s*)?EventId\s*$")
_EVENTID_CONTAINER_RE = _re2.compile(
    r"(?:vector|array|deque)\s*<\s*(?:sim\s*::\s*)?EventId\s*(?:,[^>]*)?>")
_GUARD_TYPE_RE = _re2.compile(r"(?:sim\s*::\s*)?TimerGuard\b")
_SCHED_CALL_RE = _re2.compile(r"\bschedule(?:_at)?\s*\(")


def _statement_around(body: str, idx: int) -> tuple[str, int]:
    start = max(body.rfind(";", 0, idx), body.rfind("{", 0, idx), body.rfind("}", 0, idx))
    start = start + 1 if start >= 0 else 0
    return body[start:idx], start


def check_timer_lifecycle(model: Model, graph: CallGraph, em: Emitter):
    methods_by_class: dict[str, list[FunctionDef]] = {}
    for f in graph.defs:
        if f.cls:
            methods_by_class.setdefault(f.cls, []).append(f)

    for ci in model.classes():
        methods = methods_by_class.get(ci.name, [])
        if not methods:
            continue
        event_members = []
        guard_names = []
        for mv in ci.members:
            if _GUARD_TYPE_RE.search(mv.type_text):
                guard_names.append(mv.name)
            elif _EVENTID_TYPE_RE.search(mv.type_text) or \
                    _EVENTID_CONTAINER_RE.search(mv.type_text):
                event_members.append(mv)

        # (a) member EventIds: scheduled somewhere => cancelled in the dtor
        # (directly, or in a same-class method the destructor calls).
        dtors = [m for m in methods if m.is_dtor]
        dtor_reachable: list[FunctionDef] = []
        seen = set()
        work = list(dtors)
        while work:
            m = work.pop()
            if id(m) in seen:
                continue
            seen.add(id(m))
            dtor_reachable.append(m)
            for call in m.calls:
                for g in methods:
                    if g.name == call.name and id(g) not in seen:
                        work.append(g)
        for mv in event_members:
            sched_re = _re2.compile(
                r"\b" + _re2.escape(mv.name) +
                r"\b\s*(?:=\s*[^;]*\bschedule|\.\s*(?:push_back|emplace_back)\s*\([^;]*\bschedule)")
            scheduled = any(m.body and sched_re.search(m.body) for m in methods)
            if not scheduled:
                continue
            cancelled = any(
                m.body and _re2.search(r"\b" + _re2.escape(mv.name) + r"\b", m.body)
                and "cancel" in m.body for m in dtor_reachable)
            if not cancelled:
                where = "no destructor is defined" if not dtors else \
                    f"`~{ci.name}` never cancels it"
                em.emit(mv.file, mv.line, "timer-lifecycle",
                        f"member EventId `{ci.name}::{mv.name}` is scheduled but {where}; "
                        "a fire after destruction is a use-after-free",
                        symbol=f"{ci.name}::{mv.name}")

        # (b) this-capturing schedule whose EventId is discarded and whose
        # callback is not routed through a TimerGuard.
        guard_wrap_re = None
        if guard_names:
            guard_wrap_re = _re2.compile(
                r"\b(?:" + "|".join(map(_re2.escape, guard_names)) + r")\s*\.\s*wrap\s*\(")
        for m in methods:
            if not m.body:
                continue
            for sm in _SCHED_CALL_RE.finditer(m.body):
                open_paren = m.body.index("(", sm.start())
                from cpp_model import match_paren
                close = match_paren(m.body, open_paren)
                args = m.body[open_paren:close + 1]
                if not _re2.search(r"\[\s*(?:this\b|=|&[\s,\]])", args):
                    continue  # callback does not capture this
                stmt, _ = _statement_around(m.body, sm.start())
                if _re2.search(r"=|\breturn\b|\b(?:push_back|emplace_back|"
                               r"insert|emplace)\s*\(", stmt):
                    continue  # EventId stored / returned
                if guard_wrap_re and guard_wrap_re.search(args):
                    continue  # generation-guarded: inert after guard destruction
                line = m.body_line + m.body.count("\n", 0, sm.start())
                em.emit(m.file, line, "timer-lifecycle",
                        f"`{m.qname}` schedules a this-capturing callback and discards "
                        "the EventId; store it and cancel in the destructor, or wrap "
                        "with sim::TimerGuard so destruction makes it inert",
                        symbol=m.qname)


# ---------------------------------------------------------------------------
# Rule: hot-path-alloc
# ---------------------------------------------------------------------------


def check_hot_path_alloc(model: Model, graph: CallGraph, em: Emitter):
    roots = [f for f in graph.defs if f.hot]
    reported: set[tuple] = set()

    def report(file, line, key, msg, path, symbol):
        if key in reported:
            return
        em.emit(file, line, "hot-path-alloc", msg, list(path), symbol=symbol)
        reported.add(key)

    for fn, path in graph.reach(roots):
        root = path[0]
        for fact in fn.facts:
            if fact.kind == "new-expr":
                report(fn.file, fact.line, (fn.file, fact.line),
                       f"new-expression reachable from SON_HOT `{root}` "
                       f"(in `{fn.qname}`)", path, fn.qname)
        for call in fn.calls:
            if call.name in _ALLOC_CALLS:
                report(fn.file, call.line, (fn.file, call.line),
                       f"allocating call `{call.name}` reachable from SON_HOT "
                       f"`{root}` (in `{fn.qname}`)", path, fn.qname)
            elif call.is_method and call.name in _GROWTH_METHODS:
                report(fn.file, call.line, (fn.file, call.line),
                       f"container growth `{call.name}` reachable from SON_HOT "
                       f"`{root}` (in `{fn.qname}`); sound only if capacity is "
                       "pre-reserved — suppress with the reservation argument",
                       path, fn.qname)


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def run_all(model: Model, baseline, partition_globs: list[str],
            roots_filter=None) -> tuple[list[Finding], int]:
    """roots_filter(fn) -> bool narrows the shard-confinement entry set
    (the baseline's control_plane section routes through it)."""
    em = Emitter(model, baseline)
    for fm in model.files.values():
        for ln in fm.bad_suppression_lines:
            em.findings.append(Finding(fm.rel, ln, "bad-suppression",
                                       RULES["bad-suppression"],
                                       em.snippet(fm.rel, ln)))
    graph = CallGraph(model)
    live_statics = check_mutable_statics(model, em)
    check_shard_confinement(model, graph, em, partition_globs, live_statics,
                            roots_filter)
    check_timer_lifecycle(model, graph, em)
    check_hot_path_alloc(model, graph, em)
    em.findings.sort(key=Finding.sort_key)
    return em.findings, em.suppressed_count
