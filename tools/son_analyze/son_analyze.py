#!/usr/bin/env python3
"""son-analyze — whole-program shard-confinement / timer-lifecycle / hot-path
analyzer for the son tree.

son-lint rejects banned *constructs* line by line; son-analyze checks the
*flow* invariants PR 6-7 introduced that no single line can witness:

  shard-confinement   nothing reachable from partition code schedules onto
                      the control plane or another shard, or touches mutable
                      global state (full call-graph generalization of
                      son-lint rule 9)
  timer-lifecycle     scheduled member EventIds are cancelled in their
                      owner's destructor; this-capturing callbacks store
                      their id or are TimerGuard-generation-guarded
  hot-path-alloc      SON_HOT functions reach no allocating construct on any
                      call path (static complement of sim::alloc_probe)
  mutable-static      census of mutable statics, every one justified

Engines (same contract as son-lint):
  * libclang (`clang.cindex`), when importable — AST-accurate call edges.
  * structural (default everywhere the binding is missing, including CI boxes
    without clang headers): a dependency-free scope/function parser; see
    cpp_model.py. Over-approximate by design.

File set: `--compdb build/compile_commands.json` analyzes every listed TU
plus the project headers it includes; positional paths work like son-lint.

Suppressions — BOTH require a justification (enforced; a bare suppression is
itself a finding / config error):
  * inline:    // son-analyze: allow(rule-id) "why this is sound"
               (applies to its own line and the next)
  * baseline:  tools/son_analyze/baseline.json — entries
               {"rule", "path" glob, optional "symbol" substring,
                "justification"}. The control_plane section marks
               coordinator-context code excluded from the partition entry
               set (construction-time builders etc.), also justified.

Exit codes: 0 clean, 1 findings, 2 usage/config/internal error.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import cpp_model  # noqa: E402
import rules as rules_mod  # noqa: E402
import sarif as sarif_mod  # noqa: E402

TOOL_VERSION = "1.0.0"

# Partition entry set: every function defined in these trees is assumed
# runnable inside a shard round (timer callbacks, delivery handlers, and
# everything they construct), unless the baseline marks it control-plane.
DEFAULT_PARTITION_GLOBS = ["src/overlay/*", "src/client/*", "src/net/*"]


class Baseline:
    def __init__(self):
        self.suppressions: list[dict] = []
        self.control_plane: list[dict] = []

    @staticmethod
    def load(path: Path) -> "Baseline":
        b = Baseline()
        doc = json.loads(path.read_text())
        if doc.get("version") != 1:
            raise ValueError(f"{path}: unsupported baseline version {doc.get('version')!r}")
        for section, target in (("suppressions", b.suppressions),
                                ("control_plane", b.control_plane)):
            for i, entry in enumerate(doc.get(section, [])):
                just = entry.get("justification", "")
                if not isinstance(just, str) or len(just.strip()) < 10:
                    raise ValueError(
                        f"{path}: {section}[{i}] needs a real justification "
                        f"(>= 10 chars), got {just!r}")
                if section == "suppressions" and entry.get("rule") not in rules_mod.RULES:
                    raise ValueError(
                        f"{path}: {section}[{i}] names unknown rule {entry.get('rule')!r}")
                if not entry.get("path"):
                    raise ValueError(f"{path}: {section}[{i}] needs a 'path' glob")
                target.append(entry)
        return b

    def allows(self, rule: str, file: str, symbol: str) -> bool:
        for e in self.suppressions:
            if e["rule"] != rule or not fnmatch.fnmatch(file, e["path"]):
                continue
            sym = e.get("symbol")
            if sym and sym not in (symbol or ""):
                continue
            return True
        return False

    def is_control_plane(self, file: str, qname: str) -> bool:
        for e in self.control_plane:
            if not fnmatch.fnmatch(file, e["path"]):
                continue
            sym = e.get("symbol")
            if sym and sym not in qname:
                continue
            return True
        return False


# ---------------------------------------------------------------------------
# File collection
# ---------------------------------------------------------------------------

_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.M)


def files_from_compdb(compdb: Path, root: Path) -> list[Path]:
    """TUs listed in compile_commands.json plus the project headers they
    (transitively) include via #include "..." resolved against the repo.

    Only TUs inside the gated subtrees (src/, bench/) are kept when those
    exist under the root — test and generated TUs compile against the same
    headers but are not governed by the analyzer baseline.  For fixture
    roots without a src/ layout, every in-root TU qualifies."""
    entries = json.loads(compdb.read_text())
    gated = [d for d in (root / "src", root / "bench") if d.is_dir()]

    def in_scope(f: Path) -> bool:
        if root not in f.parents:
            return False
        return not gated or any(d == f or d in f.parents for d in gated)

    files: set[Path] = set()
    for e in entries:
        f = Path(e["file"])
        if not f.is_absolute():
            f = Path(e.get("directory", ".")) / f
        f = f.resolve()
        if f.suffix in cpp_model.SOURCE_EXTS and in_scope(f):
            files.add(f)
    # Transitive project-header closure. Quoted includes in this tree are
    # repo-relative ("sim/event_queue.hpp") or sibling-relative.
    work = list(files)
    while work:
        f = work.pop()
        try:
            text = f.read_text(encoding="utf-8", errors="replace")
        except OSError:
            continue
        for inc in _INCLUDE_RE.findall(text):
            for base in (root / "src", root / "bench", root, f.parent):
                cand = (base / inc).resolve()
                if cand.exists() and root in cand.parents and cand not in files:
                    files.add(cand)
                    work.append(cand)
                    break
    return sorted(files)


def collect_files(paths, root: Path) -> list[Path]:
    files: set[Path] = set()
    for p in paths:
        pp = Path(p)
        if not pp.is_absolute():
            pp = root / pp
        if pp.is_dir():
            files.update(f for f in pp.rglob("*") if f.suffix in cpp_model.SOURCE_EXTS)
        elif pp.is_file():
            files.add(pp)
        else:
            print(f"son-analyze: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return sorted(files)


# ---------------------------------------------------------------------------
# Main
# ---------------------------------------------------------------------------


def build_model(files: list[Path], root: Path, engine: str):
    """Returns (model, engine_used)."""
    rel_files = []
    for f in files:
        try:
            rel = f.resolve().relative_to(root).as_posix()
        except ValueError:
            rel = f.as_posix()
        rel_files.append((f, rel))

    known = set(rules_mod.RULES)
    if engine in ("auto", "clang"):
        try:
            import engine_clang  # noqa: F401
            model = engine_clang.build_model_clang(rel_files, known)
            if model is not None:
                return model, "clang+structural"
            if engine == "clang":
                print("son-analyze: clang.cindex unavailable; falling back to "
                      "the structural engine", file=sys.stderr)
        except Exception as e:  # pragma: no cover - defensive per-run fallback
            if engine == "clang":
                print(f"son-analyze: clang engine failed ({e}); falling back to "
                      "the structural engine", file=sys.stderr)
    return cpp_model.build_model(rel_files, "son-analyze", known), "structural"


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="son-analyze", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*",
                    help="files or directories (default: src bench, or --compdb)")
    ap.add_argument("--root", default=None, help="repo root (default: this script's repo)")
    ap.add_argument("--compdb", default=None,
                    help="compile_commands.json driving the TU + header file set")
    ap.add_argument("--baseline", default=None,
                    help="baseline JSON (default: baseline.json next to the script; "
                         "'none' disables)")
    ap.add_argument("--engine", choices=["auto", "clang", "structural", "tokens"],
                    default="auto",
                    help="'tokens' is accepted as an alias of 'structural' for "
                         "symmetry with son-lint")
    ap.add_argument("--json", dest="json_out", default=None)
    ap.add_argument("--sarif", dest="sarif_out", default=None)
    ap.add_argument("--partition-glob", action="append", default=None,
                    help="glob(s) defining the partition entry set "
                         f"(default: {' '.join(DEFAULT_PARTITION_GLOBS)})")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule, desc in sorted(rules_mod.RULES.items()):
            print(f"{rule:18} {desc}")
        return 0

    script_dir = Path(__file__).resolve().parent
    root = Path(args.root).resolve() if args.root else script_dir.parents[1]

    baseline = None
    bl_path = None
    if args.baseline != "none":
        bl_path = Path(args.baseline) if args.baseline else script_dir / "baseline.json"
        if bl_path.exists():
            try:
                baseline = Baseline.load(bl_path)
            except (ValueError, json.JSONDecodeError) as e:
                print(f"son-analyze: bad baseline: {e}", file=sys.stderr)
                return 2
        elif args.baseline:
            print(f"son-analyze: baseline not found: {bl_path}", file=sys.stderr)
            return 2

    if args.compdb:
        compdb = Path(args.compdb)
        if not compdb.exists():
            print(f"son-analyze: no such compile_commands: {compdb}", file=sys.stderr)
            return 2
        files = files_from_compdb(compdb, root)
        if args.paths:  # restrict the compdb closure to the requested subtrees
            pats = [(root / p).resolve() for p in args.paths]
            files = [f for f in files
                     if any(pp == f or pp in f.parents for pp in pats)]
    else:
        files = collect_files(args.paths or ["src", "bench"], root)
    if not files:
        print("son-analyze: no input files", file=sys.stderr)
        return 2

    engine = "structural" if args.engine == "tokens" else args.engine
    model, engine_used = build_model(files, root, engine)

    partition_globs = args.partition_glob or DEFAULT_PARTITION_GLOBS
    # The baseline's control_plane section narrows the shard-confinement
    # entry set: coordinator-context functions (scenario builders, sharding
    # setup) stay in the graph as callees but are not roots.
    roots_filter = None
    if baseline is not None and baseline.control_plane:
        roots_filter = lambda f: not baseline.is_control_plane(f.file, f.qname)

    findings, suppressed = rules_mod.run_all(model, baseline, partition_globs,
                                             roots_filter)

    for fd in findings:
        print(fd)
        if fd.snippet:
            print(f"    | {fd.snippet}")

    if args.json_out:
        report = {
            "version": 1,
            "engine": engine_used,
            "files_scanned": len(files),
            "suppressed": suppressed,
            "findings": [fd.to_json() for fd in findings],
        }
        Path(args.json_out).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    if args.sarif_out:
        sarif_mod.write_sarif(args.sarif_out, findings, rules_mod.RULES,
                              tool_version=TOOL_VERSION, engine=engine_used)

    if findings:
        print(f"son-analyze: {len(findings)} finding(s) in {len(files)} files "
              f"({suppressed} suppressed with justification, engine={engine_used})",
              file=sys.stderr)
        return 1
    print(f"son-analyze: clean ({len(files)} files, {suppressed} suppression(s) "
          f"in effect, engine={engine_used})", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
