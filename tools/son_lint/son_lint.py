#!/usr/bin/env python3
"""son-lint — determinism & ordering linter for the son simulator tree.

The repo's headline guarantee is that every result-affecting computation is a
pure function of (topology, seeds, schedule order): aggregates are
bit-identical at any --jobs count and the golden-run delivery hash is pinned
across releases.  Runtime tests catch violations only on the paths they
exercise; this linter rejects the *constructs* that break the guarantee, at
lint time, anywhere in src/ and bench/:

  wall-clock      reading real time (system_clock/steady_clock/time()/...)
  raw-rand        std::rand, srand, drand48, arc4random, std::random_device
  std-rng         std library RNG engines (use sim::Rng, seeded + forkable)
  env-read        getenv/setenv — results must not depend on the environment
  unordered-iter  iterating an unordered container with an effectful body
                  (emits events, sends packets, accumulates, prints, ...)
  ptr-key-order   containers ordered by raw pointer keys (address-dependent)
  float-accum     ad-hoc float/double accumulation over trial results outside
                  the established merge() path

Engines:
  * libclang (python `clang.cindex`), when importable — AST-accurate for the
    call-based rules.
  * token/regex fallback (default everywhere the binding is missing, so CI
    never needs clang headers): comments and string literals are stripped
    with a real tokenizer first, so the rules match code, not prose.

Suppressions (both require a justification):
  * inline:  // son-lint: allow(rule-id) "why this use is sound"
    applies to the same line and the next line.
  * allowlist file (son_lint.conf):  allow <rule-id> <path-glob> -- <reason>

Exit codes: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import re
import sys
from pathlib import Path

RULES = {
    "wall-clock": "reads real (wall/monotonic) time; sim code must derive time from sim::Simulator::now()",
    "raw-rand": "non-deterministic randomness source; use a seeded sim::Rng (fork() per component)",
    "std-rng": "std library RNG engine; use sim::Rng so streams are seeded and forkable per component",
    "env-read": "environment read; results must be a pure function of (topology, seeds, schedule)",
    "unordered-iter": "iterates an unordered container with an effectful body; iteration order is "
    "hash/layout-dependent — use sorted iteration, std::map, or a stable vector",
    "ptr-key-order": "container ordered or keyed by a raw pointer; ordering depends on allocation "
    "addresses, which vary run to run",
    "float-accum": "ad-hoc floating-point accumulation over trial results; fold through "
    "sim::OnlineStats/SampleSet/Histogram merge() in trial-index order instead",
    "bad-suppression": "son-lint suppression without a justification string",
    "cross-shard": "schedules directly onto a shard simulator fetched inline; cross-partition "
    "events must go through a ShardChannel (flushed at round boundaries) so lookahead holds",
}

SOURCE_EXTS = {".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h", ".ipp"}


class Finding:
    __slots__ = ("file", "line", "rule", "message", "snippet")

    def __init__(self, file: str, line: int, rule: str, message: str, snippet: str = ""):
        self.file = file
        self.line = line
        self.rule = rule
        self.message = message
        self.snippet = snippet.strip()[:160]

    def to_json(self):
        return {
            "file": self.file,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "snippet": self.snippet,
        }

    def __str__(self):
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Tokenizer: blank out comments and string/char literals, preserving line
# structure, and collect suppression comments.
# --------------------------------------------------------------------------

_SUPPRESS_RE = re.compile(r"son-lint:\s*allow\(([\w\-, ]+)\)\s*(\"([^\"]*)\")?")


def strip_code(text: str):
    """Returns (code, suppressions, bad_suppression_lines).

    `code` mirrors `text` with comment and string-literal contents replaced by
    spaces.  `suppressions` maps line number -> set of rule ids allowed on
    that line (a comment suppresses its own line and the next).
    """
    out = []
    suppressions: dict[int, set[str]] = {}
    bad_lines: list[int] = []
    i, n = 0, len(text)
    line = 1
    state = "code"
    comment_start_line = 0
    comment_buf: list[str] = []
    raw_delim = ""

    def register_comment(comment: str, at_line: int):
        m = _SUPPRESS_RE.search(comment)
        if not m:
            return
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        reason = m.group(3)
        if not reason or not reason.strip():
            bad_lines.append(at_line)
            return
        unknown = rules - set(RULES)
        if unknown:
            bad_lines.append(at_line)
        for ln in (at_line, at_line + 1):
            suppressions.setdefault(ln, set()).update(rules)

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                comment_start_line = line
                comment_buf = []
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                comment_start_line = line
                comment_buf = []
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw string literal?  R"delim( ... )delim"
                if i >= 1 and text[i - 1] == "R" and (i < 2 or not text[i - 2].isalnum()):
                    m = re.match(r'"([^ ()\\\t\n]*)\(', text[i:])
                    if m:
                        raw_delim = ")" + m.group(1) + '"'
                        state = "raw_string"
                        out.append('"')
                        i += 1
                        continue
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
            if c == "\n":
                line += 1
            i += 1
        elif state == "line_comment":
            if c == "\n":
                register_comment("".join(comment_buf), comment_start_line)
                state = "code"
                out.append("\n")
                line += 1
            else:
                comment_buf.append(c)
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                register_comment("".join(comment_buf), comment_start_line)
                state = "code"
                out.append("  ")
                i += 2
                continue
            comment_buf.append(c)
            if c == "\n":
                out.append("\n")
                line += 1
            else:
                out.append(" ")
            i += 1
        elif state == "string":
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
                out.append('"')
            elif c == "\n":  # unterminated; be forgiving
                state = "code"
                out.append("\n")
                line += 1
            else:
                out.append(" ")
            i += 1
        elif state == "char":
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
                out.append("'")
            elif c == "\n":
                state = "code"
                out.append("\n")
                line += 1
            else:
                out.append(" ")
            i += 1
        elif state == "raw_string":
            if text.startswith(raw_delim, i):
                out.append(" " * (len(raw_delim) - 1) + '"')
                i += len(raw_delim)
                state = "code"
                continue
            out.append("\n" if c == "\n" else " ")
            if c == "\n":
                line += 1
            i += 1
    if state == "line_comment":
        register_comment("".join(comment_buf), comment_start_line)
    return "".join(out), suppressions, bad_lines


# --------------------------------------------------------------------------
# Token-engine rules
# --------------------------------------------------------------------------

_SIMPLE_RULES = [
    (
        "wall-clock",
        re.compile(
            r"\b(?:std::)?chrono::(?:system_clock|steady_clock|high_resolution_clock)\b"
            r"|\bclock_gettime\b|\bgettimeofday\b|\bstd::time\s*\("
            r"|(?<![\w:.>])time\s*\(\s*(?:nullptr|NULL|0)?\s*\)"
        ),
    ),
    (
        "raw-rand",
        re.compile(
            r"\bstd::rand\b|(?<![\w:.>])s?rand\s*\(|\bdrand48\b|\barc4random\w*\b"
            r"|\brandom_device\b"
        ),
    ),
    (
        "std-rng",
        re.compile(
            r"\b(?:std::)?(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine"
            r"|ranlux24(?:_base)?|ranlux48(?:_base)?|knuth_b)\b"
        ),
    ),
    (
        "env-read",
        re.compile(r"\b(?:std::)?(?:getenv|secure_getenv|setenv|putenv|unsetenv)\s*\("),
    ),
    (
        "ptr-key-order",
        re.compile(
            r"\b(?:std::)?(?:map|set|multimap|multiset|priority_queue)\s*<\s*"
            r"(?:const\s+)?[\w:]+(?:\s*<[^<>]*>)?\s*\*"
        ),
    ),
    (
        "cross-shard",
        re.compile(r"\bshard_sim\s*\([^)]*\)\s*(?:\.|->)\s*schedule"),
    ),
]

_UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")
_USING_ALIAS_RE = re.compile(
    r"\busing\s+(\w+)\s*=\s*[^;]*\bunordered_(?:map|set|multimap|multiset)\s*<"
)
_IDENT_RE = re.compile(r"[A-Za-z_]\w*")

# Statements inside an unordered-container loop body that make iteration order
# observable: scheduling events, sending packets, tracing/printing, appending
# to ordered output, or floating/stat accumulation.
_EFFECT_RE = re.compile(
    r"\bschedule(?:_at)?\s*\(|\bsend\s*\(|\bemit\s*\(|\btrace\s*\(|\bprintf\s*\(|"
    r"\bfprintf\s*\(|\bcout\b|\bcerr\b|<<|\bpush_back\s*\(|\bemplace_back\s*\(|"
    r"\babsorb\s*\(|\brecord\s*\(|\bmix\s*\(|\+=|\bhash\b|\bwrite\s*\(|\bappend\s*\("
)

_FLOAT_DECL_RE = re.compile(r"\b(?:double|float)\s+(\w+)\s*[;=({]")
_RESULTS_NAME_RE = re.compile(r"\b(?:results|metrics|trials|samples|reports)\b")
_FLOATISH_ACCUM_RE = re.compile(
    r"([\w.\[\]()->]+)\s*\+=\s*[^;]*(?:\.mean\(\)|\.sum\b|\.count\b|latency|seconds|"
    r"_s\b|\.to_seconds)"
)


def _skip_angle(code: str, i: int) -> int:
    """`i` points just past a '<'; returns index just past the matching '>'."""
    depth = 1
    n = len(code)
    while i < n and depth:
        c = code[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
        elif c in ";{}":  # not a template argument list after all
            return i
        i += 1
    return i


def _match_paren(code: str, i: int) -> int:
    """`i` points at '('; returns index of the matching ')' (or len)."""
    depth = 0
    n = len(code)
    while i < n:
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return n


def _match_brace(code: str, i: int) -> int:
    """`i` points at '{'; returns index of the matching '}' (or len)."""
    depth = 0
    n = len(code)
    while i < n:
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return n


def _unordered_names(code: str) -> set[str]:
    """Identifiers declared with an unordered container type (incl. aliases)."""
    names: set[str] = set()
    alias_names = {m.group(1) for m in _USING_ALIAS_RE.finditer(code)}
    decl_res = [_UNORDERED_DECL_RE]
    if alias_names:
        decl_res.append(re.compile(r"\b(?:" + "|".join(map(re.escape, sorted(alias_names))) + r")\s+"))
    for decl_re in decl_res:
        for m in decl_re.finditer(code):
            i = m.end()
            if m.re is _UNORDERED_DECL_RE:
                i = _skip_angle(code, i)
            tail = code[i : i + 120]
            dm = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*(?:[;={(,)]|$)", tail)
            if dm:
                names.add(dm.group(1))
    return names


def _line_of(code: str, idx: int) -> int:
    return code.count("\n", 0, idx) + 1


def _iter_range_fors(code: str):
    """Yields (line, range_expr, body) for every range-based for loop."""
    for m in re.finditer(r"\bfor\s*\(", code):
        open_paren = m.end() - 1
        close = _match_paren(code, open_paren)
        header = code[open_paren + 1 : close]
        # Top-level ':' that is not part of '::' marks a range-for.
        depth = 0
        colon = -1
        j = 0
        while j < len(header):
            c = header[j]
            if c in "([{<":
                depth += 1
            elif c in ")]}>":
                depth -= 1
            elif c == ":" and depth == 0:
                if j + 1 < len(header) and header[j + 1] == ":":
                    j += 2
                    continue
                if j > 0 and header[j - 1] == ":":
                    j += 1
                    continue
                colon = j
                break
            j += 1
        if colon < 0:
            continue
        range_expr = header[colon + 1 :]
        k = close + 1
        while k < len(code) and code[k] in " \t\n":
            k += 1
        if k < len(code) and code[k] == "{":
            body = code[k : _match_brace(code, k) + 1]
        else:
            end = code.find(";", k)
            body = code[k : end + 1 if end >= 0 else len(code)]
        yield _line_of(code, m.start()), range_expr, body


def check_file_tokens(path: Path, rel: str, conf) -> list[Finding]:
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        return [Finding(rel, 0, "env-read", f"unreadable file: {e}")]
    code, suppressions, bad_lines = strip_code(text)
    raw_lines = text.splitlines()
    findings = [
        Finding(rel, ln, "bad-suppression", RULES["bad-suppression"],
                raw_lines[ln - 1] if 0 < ln <= len(raw_lines) else "")
        for ln in bad_lines
    ]

    def emit(line: int, rule: str, extra: str = ""):
        if rule in suppressions.get(line, ()):  # inline suppression
            return
        if conf.allows(rule, rel):
            return
        msg = RULES[rule] + (f" ({extra})" if extra else "")
        snippet = raw_lines[line - 1] if 0 < line <= len(raw_lines) else ""
        findings.append(Finding(rel, line, rule, msg, snippet))

    # Simple pattern rules, line by line.
    for ln, line_text in enumerate(code.splitlines(), start=1):
        for rule, rx in _SIMPLE_RULES:
            if rx.search(line_text):
                emit(ln, rule)

    # Unordered-container iteration with an effectful body.
    unames = _unordered_names(code)
    for line, range_expr, body in _iter_range_fors(code):
        over_unordered = "unordered_" in range_expr or any(
            ident in unames for ident in _IDENT_RE.findall(range_expr)
        )
        if over_unordered and _EFFECT_RE.search(body):
            emit(line, "unordered-iter", f"range-for over '{range_expr.strip()}'")

    # Iterator-style loops over unordered containers: for (auto it = x.begin();...
    if unames:
        it_re = re.compile(
            r"\bfor\s*\(\s*auto\s+\w+\s*=\s*(" + "|".join(map(re.escape, sorted(unames))) + r")\s*\.\s*(?:c?begin)\s*\("
        )
        for m in it_re.finditer(code):
            open_paren = code.index("(", m.start())
            close = _match_paren(code, open_paren)
            k = close + 1
            while k < len(code) and code[k] in " \t\n":
                k += 1
            body = code[k : _match_brace(code, k) + 1] if k < len(code) and code[k] == "{" else ""
            if _EFFECT_RE.search(body):
                emit(_line_of(code, m.start()), "unordered-iter", f"iterator loop over '{m.group(1)}'")

    # Ad-hoc float accumulation over trial results.
    float_vars = {m.group(1) for m in _FLOAT_DECL_RE.finditer(code)}
    for line, range_expr, body in _iter_range_fors(code):
        if not _RESULTS_NAME_RE.search(range_expr):
            continue
        for am in re.finditer(r"([\w.\[\]]+)\s*\+=", body):
            lhs_tail = am.group(1).split(".")[-1].split("[")[0]
            if lhs_tail in float_vars or _FLOATISH_ACCUM_RE.search(body[am.start() : am.start() + 160]):
                emit(line + _line_of(body, am.start()) - 1, "float-accum",
                     f"'{am.group(1)} +=' over '{range_expr.strip()}'")
                break

    return findings


# --------------------------------------------------------------------------
# Optional libclang engine (AST-accurate for call-based rules). Falls back to
# the token engine per file on any parse problem.
# --------------------------------------------------------------------------

_CLANG_BANNED_CALLS = {
    "rand": "raw-rand", "srand": "raw-rand", "drand48": "raw-rand",
    "arc4random": "raw-rand", "arc4random_uniform": "raw-rand",
    "getenv": "env-read", "secure_getenv": "env-read", "setenv": "env-read",
    "putenv": "env-read", "unsetenv": "env-read",
    "time": "wall-clock", "clock_gettime": "wall-clock", "gettimeofday": "wall-clock",
}
_CLANG_BANNED_TYPES = {
    "std::random_device": "raw-rand",
    "std::mt19937": "std-rng", "std::mt19937_64": "std-rng",
    "std::default_random_engine": "std-rng", "std::minstd_rand": "std-rng",
    "std::chrono::system_clock": "wall-clock",
    "std::chrono::steady_clock": "wall-clock",
    "std::chrono::high_resolution_clock": "wall-clock",
}


def check_file_clang(path: Path, rel: str, conf, cindex) -> list[Finding] | None:
    try:
        index = cindex.Index.create()
        tu = index.parse(str(path), args=["-std=c++20", "-I", str(path.parents[1])])
    except Exception:
        return None
    if not tu:
        return None
    text = path.read_text(encoding="utf-8", errors="replace")
    _, suppressions, _ = strip_code(text)
    raw_lines = text.splitlines()
    findings: list[Finding] = []

    def emit(line: int, rule: str):
        if rule in suppressions.get(line, ()) or conf.allows(rule, rel):
            return
        snippet = raw_lines[line - 1] if 0 < line <= len(raw_lines) else ""
        findings.append(Finding(rel, line, rule, RULES[rule], snippet))

    def visit(node):
        try:
            if node.location.file and Path(str(node.location.file)) != path:
                return
        except Exception:
            return
        kind = node.kind
        if kind == cindex.CursorKind.CALL_EXPR and node.spelling in _CLANG_BANNED_CALLS:
            emit(node.location.line, _CLANG_BANNED_CALLS[node.spelling])
        if kind in (cindex.CursorKind.DECL_REF_EXPR, cindex.CursorKind.TYPE_REF):
            for qual, rule in _CLANG_BANNED_TYPES.items():
                if qual.split("::")[-1] == node.spelling:
                    emit(node.location.line, rule)
        for child in node.get_children():
            visit(child)

    visit(tu.cursor)
    # The structural rules (unordered-iter / ptr-key-order / float-accum) stay
    # on the token engine even in clang mode — merge both result sets.
    token = check_file_tokens(path, rel, conf)
    call_rules = {"raw-rand", "std-rng", "env-read", "wall-clock"}
    merged = {(f.file, f.line, f.rule): f for f in token if f.rule not in call_rules}
    for f in findings:
        merged[(f.file, f.line, f.rule)] = f
    return sorted(merged.values(), key=lambda f: (f.file, f.line, f.rule))


# --------------------------------------------------------------------------
# Config / driver
# --------------------------------------------------------------------------


class Conf:
    def __init__(self):
        self.allow: list[tuple[str, str]] = []  # (rule, glob)

    def load(self, path: Path):
        for ln, line in enumerate(path.read_text().splitlines(), start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            body = line.split("--", 1)
            parts = body[0].split()
            if len(parts) != 3 or parts[0] != "allow" or parts[1] not in RULES:
                raise ValueError(f"{path}:{ln}: bad allowlist line: {line!r}")
            if len(body) < 2 or not body[1].strip():
                raise ValueError(f"{path}:{ln}: allowlist entry needs a '-- reason'")
            self.allow.append((parts[1], parts[2]))

    def allows(self, rule: str, rel: str) -> bool:
        return any(r == rule and fnmatch.fnmatch(rel, g) for r, g in self.allow)


def collect_files(paths, root: Path) -> list[Path]:
    files: set[Path] = set()
    for p in paths:
        pp = Path(p)
        if not pp.is_absolute():
            pp = root / pp
        if pp.is_dir():
            files.update(f for f in pp.rglob("*") if f.suffix in SOURCE_EXTS)
        elif pp.is_file():
            files.add(pp)
        else:
            print(f"son-lint: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return sorted(files)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="son-lint", description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*", help="files or directories (default: src bench)")
    ap.add_argument("--root", default=None, help="repo root (default: this script's repo)")
    ap.add_argument("--config", default=None, help="allowlist file (default: son_lint.conf next to the script)")
    ap.add_argument("--engine", choices=["auto", "clang", "tokens"], default="auto")
    ap.add_argument("--json", dest="json_out", default=None, help="write a JSON findings report")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule, desc in sorted(RULES.items()):
            print(f"{rule:16} {desc}")
        return 0

    script_dir = Path(__file__).resolve().parent
    root = Path(args.root).resolve() if args.root else script_dir.parents[1]
    conf = Conf()
    conf_path = Path(args.config) if args.config else script_dir / "son_lint.conf"
    if conf_path.exists():
        try:
            conf.load(conf_path)
        except ValueError as e:
            print(f"son-lint: {e}", file=sys.stderr)
            return 2

    paths = args.paths or ["src", "bench"]
    files = collect_files(paths, root)

    cindex = None
    if args.engine in ("auto", "clang"):
        try:
            from clang import cindex as _cindex  # type: ignore

            cindex = _cindex
        except Exception:
            if args.engine == "clang":
                print("son-lint: clang.cindex unavailable; falling back to token engine",
                      file=sys.stderr)

    findings: list[Finding] = []
    for f in files:
        try:
            rel = f.resolve().relative_to(root).as_posix()
        except ValueError:
            rel = f.as_posix()
        result = None
        if cindex is not None:
            result = check_file_clang(f, rel, conf, cindex)
        if result is None:
            result = check_file_tokens(f, rel, conf)
        findings.extend(result)

    findings.sort(key=lambda x: (x.file, x.line, x.rule))
    for fd in findings:
        print(fd)
        if fd.snippet:
            print(f"    | {fd.snippet}")

    if args.json_out:
        report = {
            "version": 1,
            "engine": "clang+tokens" if cindex is not None else "tokens",
            "files_scanned": len(files),
            "findings": [fd.to_json() for fd in findings],
        }
        Path(args.json_out).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    if findings:
        print(f"son-lint: {len(findings)} finding(s) in {len(files)} files", file=sys.stderr)
        return 1
    print(f"son-lint: clean ({len(files)} files)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
