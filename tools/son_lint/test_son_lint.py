#!/usr/bin/env python3
"""Self-test for son-lint: every rule fires on fixtures/violations.cpp, no
rule fires on fixtures/clean.cpp, and the JSON report round-trips. Run
directly or via ctest (registered as `son_lint_selftest`)."""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

HERE = Path(__file__).resolve().parent
LINT = HERE / "son_lint.py"
EXPECTED_RULES = {
    "wall-clock",
    "raw-rand",
    "std-rng",
    "env-read",
    "unordered-iter",
    "ptr-key-order",
    "float-accum",
    "bad-suppression",
    "cross-shard",
}


def run_lint(*args: str):
    return subprocess.run(
        [sys.executable, str(LINT), "--engine", "tokens", *args],
        capture_output=True,
        text=True,
        check=False,
    )


def fail(msg: str):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    with tempfile.TemporaryDirectory() as td:
        report = Path(td) / "report.json"
        # No allowlist: fixtures must stand on their own inline suppressions.
        empty_conf = Path(td) / "empty.conf"
        empty_conf.write_text("# empty\n")

        r = run_lint("--config", str(empty_conf), "--json", str(report),
                     str(HERE / "fixtures" / "violations.cpp"))
        if r.returncode != 1:
            fail(f"violations.cpp: expected exit 1, got {r.returncode}\n{r.stdout}{r.stderr}")
        doc = json.loads(report.read_text())
        fired = {f["rule"] for f in doc["findings"]}
        missing = EXPECTED_RULES - fired
        if missing:
            fail(f"rules never fired on violations.cpp: {sorted(missing)}\n{r.stdout}")
        for f in doc["findings"]:
            if not (f["file"].endswith("violations.cpp") and f["line"] > 0):
                fail(f"finding without file:line: {f}")

        r = run_lint("--config", str(empty_conf), str(HERE / "fixtures" / "clean.cpp"))
        if r.returncode != 0:
            fail(f"clean.cpp: expected exit 0, got {r.returncode}\n{r.stdout}")

        # Dedicated rule-9 (cross-shard) coverage: both receiver spellings
        # fire, a justified suppression silences its site, and a bare
        # suppression both fails and leaves its site firing.
        report9 = Path(td) / "report9.json"
        r = run_lint("--config", str(empty_conf), "--json", str(report9),
                     str(HERE / "fixtures" / "cross_shard.cpp"))
        if r.returncode != 1:
            fail(f"cross_shard.cpp: expected exit 1, got {r.returncode}\n{r.stdout}{r.stderr}")
        doc = json.loads(report9.read_text())
        by_rule: dict[str, list[int]] = {}
        for f in doc["findings"]:
            by_rule.setdefault(f["rule"], []).append(f["line"])
        if set(by_rule) != {"cross-shard", "bad-suppression"}:
            fail(f"cross_shard.cpp: unexpected rule set {sorted(by_rule)}\n{r.stdout}")
        text9 = (HERE / "fixtures" / "cross_shard.cpp").read_text().splitlines()
        fired_fns = {next(ln for ln in range(hit, 0, -1) if "void " in text9[ln - 1])
                     for hit in by_rule["cross-shard"]}
        names = {text9[ln - 1].split("void ")[1].split("(")[0] for ln in fired_fns}
        if names != {"dot_receiver", "arrow_receiver", "unjustified_setup"}:
            fail(f"cross_shard.cpp: cross-shard fired in wrong functions: {sorted(names)}")
        if len(by_rule["bad-suppression"]) != 1:
            fail(f"cross_shard.cpp: expected 1 bad-suppression, got {by_rule}")

        # The shipped allowlist must parse, and --list-rules must cover
        # every rule the fixtures exercise.
        r = run_lint("--list-rules")
        if r.returncode != 0:
            fail("--list-rules failed")
        for rule in EXPECTED_RULES:
            if rule not in r.stdout:
                fail(f"--list-rules missing {rule}")

    print("son-lint self-test: OK")


if __name__ == "__main__":
    main()
