// son-lint fixture: dedicated rule-9 (cross-shard) coverage. Exercises both
// receiver spellings, the justified-suppression path, and the
// suppression-without-justification path. Parsed by the linter, never
// compiled.

struct Sim {
  unsigned long long schedule(long delay, void* cb);
};
struct Kernel {
  Sim& shard_sim(unsigned p);
};
struct KernelPtr {
  Sim* shard_sim(unsigned p);
};

// Reference receiver, `.schedule` spelling: fires.
void dot_receiver(Kernel& kernel, unsigned other) {
  kernel.shard_sim(other).schedule(0, nullptr);  // cross-shard
}

// Pointer receiver, `->schedule` spelling: fires.
void arrow_receiver(KernelPtr& kernel, unsigned other) {
  kernel.shard_sim(other)->schedule(0, nullptr);  // cross-shard
}

// Justified inline suppression: silent.
void justified_setup(Kernel& kernel, unsigned p) {
  // son-lint: allow(cross-shard) "deterministic bootstrap: runs before round 0 opens"
  kernel.shard_sim(p).schedule(0, nullptr);
}

// Suppression without a reason: does NOT suppress — the site still fires,
// plus a bad-suppression finding for the comment itself.
void unjustified_setup(Kernel& kernel, unsigned other) {
  // son-lint: allow(cross-shard)
  kernel.shard_sim(other).schedule(0, nullptr);
}

// Same-partition schedule with no shard_sim() receiver: silent.
void own_queue(Sim& sim) { sim.schedule(5, nullptr); }
