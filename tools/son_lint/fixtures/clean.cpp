// son-lint self-test fixture: constructs that LOOK like violations but are
// sound — the linter must report nothing here. NOT compiled.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

// Identifiers that merely contain banned substrings are not calls.
struct Clock {
  long next_time(int) { return 0; }   // not ::time()
  long runtime(long t) { return t; }  // not ::time()
};

void words_in_strings_and_comments() {
  // std::rand() in a comment is fine; so is system_clock.
  std::string s = "call std::rand() and std::chrono::system_clock::now()";
  std::string raw = R"(getenv("HOME") inside a raw string; unordered_map too)";
  (void)s, (void)raw;
}

// Membership lookups and insertions never observe iteration order.
bool dedup(std::unordered_set<unsigned long>& seen, unsigned long id) {
  if (seen.contains(id)) return true;
  seen.insert(id);
  return false;
}

// Iterating an unordered container with an order-independent body (pure
// lookup/erase bookkeeping, no events/output/accumulation) is allowed.
void prune(std::unordered_map<int, int>& cache) {
  for (auto& [k, v] : cache) {
    v = k;
  }
}

// A justified inline suppression silences the rule.
void suppressed_timing() {
  // son-lint: allow(wall-clock) "self-test: harness-side timing, outside any result path"
  auto t0 = __builtin_ia32_rdtsc();  // stand-in; real code would read steady_clock here
  (void)t0;
}

// Cross-partition traffic through a channel (lookahead-checked, flushed at
// round boundaries) is the sanctioned path; binding the shard sim to a
// reference for same-partition work is also fine.
struct Chan {
  void push(long when, void (*cb)());
};
void cross_shard_clean(Chan& out, long now) {
  out.push(now + 1'000'000, nullptr);
}

// Range-for over ordered containers with effects is fine.
void ordered_iteration(const std::vector<int>& results_list) {
  long total = 0;
  for (int v : results_list) total += v;
  (void)total;
}
