// son-lint self-test fixture: every rule must fire at least once in this
// file. Line numbers are not asserted — rule ids are. NOT compiled.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <map>
#include <random>
#include <unordered_map>
#include <vector>

struct Sim {
  void schedule(int, void (*)());
};

void wall_clock_violations() {
  auto a = std::chrono::system_clock::now();       // wall-clock
  auto b = std::chrono::steady_clock::now();       // wall-clock
  auto c = std::chrono::high_resolution_clock::now();  // wall-clock
  auto d = time(nullptr);                          // wall-clock
  (void)a, (void)b, (void)c, (void)d;
}

void raw_rand_violations() {
  int a = std::rand();       // raw-rand
  srand(42);                 // raw-rand
  std::random_device rd;     // raw-rand
  (void)a, (void)rd;
}

void std_rng_violations() {
  std::mt19937 gen;                  // std-rng (also unseeded)
  std::mt19937_64 gen64{12345};      // std-rng (seeded is still banned: use sim::Rng)
  std::default_random_engine eng;    // std-rng
  (void)gen, (void)gen64, (void)eng;
}

void env_read_violations() {
  const char* home = std::getenv("HOME");  // env-read
  (void)home;
}

void unordered_iter_violations(Sim& sim) {
  std::unordered_map<int, int> pending;
  for (const auto& [k, v] : pending) {  // unordered-iter: body emits an event
    sim.schedule(k + v, nullptr);
  }
  std::vector<int> out;
  for (auto it = pending.begin(); it != pending.end(); ++it) {  // unordered-iter
    out.push_back(it->first);
  }
}

void ptr_key_order_violations() {
  std::map<int*, int> by_address;  // ptr-key-order
  (void)by_address;
}

struct Metrics {
  double mean() const { return 0.0; }
};

double float_accum_violations(const std::vector<Metrics>& results) {
  double total_latency = 0.0;
  for (const auto& m : results) {
    total_latency += m.mean();  // float-accum: fold through merge() instead
  }
  return total_latency;
}

struct Kernel {
  Sim& shard_sim(unsigned p);
};

void cross_shard_violations(Kernel& kernel, unsigned other) {
  // Scheduling straight onto another partition's queue bypasses the channel
  // lookahead bound; the event could land inside an already-committed round.
  kernel.shard_sim(other).schedule(0, nullptr);  // cross-shard
}

void bad_suppression_violation() {
  // son-lint: allow(wall-clock)
  auto t = std::chrono::steady_clock::now();  // bad-suppression (no reason) + wall-clock
  (void)t;
}
