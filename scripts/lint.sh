#!/usr/bin/env bash
# One-shot static-analysis driver: son-lint (always), clang-tidy and cppcheck
# (when installed). Invoked by `cmake --build <build> --target lint` with
# BUILD_DIR set, or directly: scripts/lint.sh [build-dir].
#
# Exit code is non-zero if ANY enabled leg reports findings; legs whose tool
# is missing are skipped with a notice so the son-lint determinism rules stay
# enforceable on boxes without clang tooling.
set -u -o pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-${1:-$ROOT/build}}"
JOBS="$(nproc 2>/dev/null || echo 4)"
status=0

echo "== son-lint (determinism rules) =="
if command -v python3 >/dev/null 2>&1; then
  mkdir -p "$BUILD_DIR"
  python3 "$ROOT/tools/son_lint/son_lint.py" --root "$ROOT" \
    --json "$BUILD_DIR/son_lint_report.json" src bench || status=1
else
  echo "python3 not found — cannot run son-lint" >&2
  status=1
fi

echo "== son-analyze (whole-program: shard confinement, timers, hot paths) =="
if command -v python3 >/dev/null 2>&1; then
  mkdir -p "$BUILD_DIR"
  analyze_args=(--root "$ROOT"
                --json "$BUILD_DIR/son_analyze_report.json"
                --sarif "$BUILD_DIR/son_analyze.sarif")
  # A configured build narrows the file set to what actually compiles (and
  # pulls in headers via the include closure); without one, fall back to the
  # src/ + bench/ tree walk.
  if [ -f "$BUILD_DIR/compile_commands.json" ]; then
    analyze_args+=(--compdb "$BUILD_DIR/compile_commands.json")
  else
    analyze_args+=(src bench)
  fi
  python3 "$ROOT/tools/son_analyze/son_analyze.py" "${analyze_args[@]}" || status=1
else
  echo "python3 not found — cannot run son-analyze" >&2
  status=1
fi

echo "== clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
  if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "no $BUILD_DIR/compile_commands.json — configure with CMake first" >&2
    status=1
  else
    # Lint our sources only (src/ + bench/), not generated/test scaffolding.
    mapfile -t files < <(cd "$ROOT" && find src bench -name '*.cpp' | sort)
    if command -v run-clang-tidy >/dev/null 2>&1; then
      (cd "$ROOT" && run-clang-tidy -quiet -p "$BUILD_DIR" -j "$JOBS" "${files[@]}") || status=1
    else
      (cd "$ROOT" && printf '%s\n' "${files[@]}" \
        | xargs -P "$JOBS" -n 8 clang-tidy -quiet -p "$BUILD_DIR") || status=1
    fi
  fi
else
  echo "clang-tidy not installed — skipping (CI runs it)"
fi

echo "== cppcheck =="
if command -v cppcheck >/dev/null 2>&1; then
  cppcheck --std=c++20 --language=c++ --enable=warning,performance,portability \
    --inline-suppr --suppressions-list="$ROOT/tools/cppcheck-suppressions.txt" \
    --error-exitcode=1 --quiet -j "$JOBS" \
    -I "$ROOT/src" -I "$ROOT/bench" "$ROOT/src" "$ROOT/bench" || status=1
else
  echo "cppcheck not installed — skipping (CI runs it)"
fi

if [ "$status" -ne 0 ]; then
  echo "lint: FAILED" >&2
else
  echo "lint: OK"
fi
exit "$status"
