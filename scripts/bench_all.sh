#!/usr/bin/env bash
# Runs every benchmark binary in --quick mode and collects the BENCH_*.json
# reports into one directory (for CI to archive as the perf trajectory).
#
# Env:
#   BENCH_BIN_DIR  directory holding the bench binaries (default build/bench)
#   OUT_DIR        where reports land (default build/bench_reports)
#   JOBS           worker threads per bench (default: all cores)
#   EXTRA_ARGS     appended to every bench invocation
set -euo pipefail

BENCH_BIN_DIR="${BENCH_BIN_DIR:-build/bench}"
OUT_DIR="${OUT_DIR:-build/bench_reports}"
mkdir -p "$OUT_DIR"

status=0
for bin in "$BENCH_BIN_DIR"/bench_*; do
  [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  short="${name#bench_}"
  echo "=== $name (--quick) ==="
  args=(--quick --json-out "$OUT_DIR/BENCH_${short}.json")
  [ -n "${JOBS:-}" ] && args+=(--jobs "$JOBS")
  # shellcheck disable=SC2086
  if ! "$bin" "${args[@]}" ${EXTRA_ARGS:-} > "$OUT_DIR/${name}.txt" 2>&1; then
    echo "FAILED: $name (see $OUT_DIR/${name}.txt)"
    status=1
  fi
done

echo
echo "Reports in $OUT_DIR:"
ls -l "$OUT_DIR"
exit $status
