#!/usr/bin/env bash
# One-shot developer entrypoint: configure + build + tests + lint + quick
# benches — everything CI gates on, minus the sanitizer matrix. Run it before
# pushing:
#
#   scripts/check.sh [build-dir]     (default: build)
#
# Fails fast on the first broken stage.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== configure + build ($BUILD_DIR) =="
cmake -B "$BUILD_DIR" -S "$ROOT"
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "== lint (son-lint + clang-tidy/cppcheck when installed) =="
BUILD_DIR="$BUILD_DIR" bash "$ROOT/scripts/lint.sh"

echo "== quick benches =="
"$BUILD_DIR/bench/bench_simcore" --quick --json-out "$BUILD_DIR/BENCH_simcore.json"
"$BUILD_DIR/bench/bench_fig3_hopbyhop" --quick --jobs 1 --json-out "$BUILD_DIR/j1.json" > /dev/null
"$BUILD_DIR/bench/bench_fig3_hopbyhop" --quick --jobs 8 --json-out "$BUILD_DIR/j8.json" > /dev/null
python3 - "$BUILD_DIR/j1.json" "$BUILD_DIR/j8.json" <<'EOF'
import json, sys
a, b = (json.load(open(p)) for p in sys.argv[1:3])
assert a["results"] == b["results"] and a["options"] == b["options"], \
    "aggregate results differ between --jobs 1 and --jobs 8"
print("deterministic across thread counts")
EOF

echo "check.sh: all stages OK"
