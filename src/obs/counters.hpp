// Named counter registry for protocol/overlay/underlay instrumentation.
//
// A CounterRegistry owns a sorted map of name → uint64 slot. Instrumented
// code asks once for a Counter handle (a raw slot pointer — std::map node
// addresses are stable) and bumps it with relaxed atomic adds on the hot
// path; a handle obtained while no registry is installed is null and add()
// is a no-op. Slots are atomic because one registry may be shared by every
// partition worker of a sharded-kernel run: components constructed on the
// coordinator thread keep their handles when their events execute on
// workers, and {add} is commutative, so folded totals are independent of
// both thread interleaving and worker count. Snapshots iterate the map in
// name order, so exported JSON and cross-trial merges are deterministic by
// construction.
//
// Like the Recorder, installation is scoped and thread-local: one registry
// per experiment trial, nothing fed back into the simulation (counters are
// write-only observation — the inertness contract). The sharded kernel
// propagates the coordinator's installed registry into its workers via
// obs::bind_worker_observability.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace son::obs {

class CounterRegistry {
 public:
  using Slot = std::atomic<std::uint64_t>;

  /// The registry installed on this thread, or nullptr.
  [[nodiscard]] static CounterRegistry* current();
  /// Installs `reg` (may be nullptr) on this thread; returns the previous
  /// installation. Prefer ScopedCounterRegistry; this exists for the sharded
  /// kernel's worker-context propagation.
  static CounterRegistry* swap_current(CounterRegistry* reg);

  /// Returns the slot for `name`, creating it at zero on first use. The
  /// returned pointer stays valid for the registry's lifetime (map node
  /// addresses are stable under insertion). Creation is mutex-guarded: link
  /// protocol endpoints are constructed lazily on first send, which in a
  /// sharded run can happen on any worker thread — only the slot lookup
  /// locks, never the hot-path atomic bumps.
  [[nodiscard]] Slot* slot(const std::string& name) {
    const std::lock_guard<std::mutex> lock{mu_};
    return &counters_[name];
  }

  /// All counters in name order (deterministic snapshot order).
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> entries() const {
    const std::lock_guard<std::mutex> lock{mu_};
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto& [name, v] : counters_) {
      out.emplace_back(name, v.load(std::memory_order_relaxed));
    }
    return out;
  }

  [[nodiscard]] std::uint64_t value(const std::string& name) const {
    const std::lock_guard<std::mutex> lock{mu_};
    auto it = counters_.find(name);
    return it != counters_.end() ? it->second.load(std::memory_order_relaxed) : 0;
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock{mu_};
    return counters_.size();
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, Slot> counters_;
};

/// Null-safe handle over one registry slot. Cheap to copy; add() on a
/// default-constructed (or registry-less) handle is a no-op.
class Counter {
 public:
  Counter() = default;
  explicit Counter(CounterRegistry::Slot* slot) : slot_(slot) {}

  void add(std::uint64_t delta = 1) {
    if (slot_ != nullptr) slot_->fetch_add(delta, std::memory_order_relaxed);
  }
  /// Gauge-style overwrite (e.g. high-water marks snapshotted at run end).
  void set(std::uint64_t value) {
    if (slot_ != nullptr) slot_->store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] bool live() const { return slot_ != nullptr; }

 private:
  CounterRegistry::Slot* slot_ = nullptr;
};

/// Handle for `name` in this thread's current registry; null handle if no
/// registry is installed. Call at component construction time, not per event.
[[nodiscard]] Counter counter(const std::string& name);

/// Installs a registry as this thread's current one for the scope's
/// lifetime; restores the previous one on destruction.
class ScopedCounterRegistry {
 public:
  explicit ScopedCounterRegistry(CounterRegistry& reg);
  ~ScopedCounterRegistry();
  ScopedCounterRegistry(const ScopedCounterRegistry&) = delete;
  ScopedCounterRegistry& operator=(const ScopedCounterRegistry&) = delete;

 private:
  CounterRegistry* previous_;
};

}  // namespace son::obs
