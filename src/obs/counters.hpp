// Named counter registry for protocol/overlay/underlay instrumentation.
//
// A CounterRegistry owns a sorted map of name → uint64 slot. Instrumented
// code asks once for a Counter handle (a raw slot pointer — std::map node
// addresses are stable) and bumps it with plain integer adds on the hot
// path; a handle obtained while no registry is installed is null and add()
// is a no-op. Snapshots iterate the map in name order, so exported JSON and
// cross-trial merges are deterministic by construction.
//
// Like the Recorder, installation is scoped and thread-local: one registry
// per experiment trial, no cross-thread sharing, nothing fed back into the
// simulation (counters are write-only observation — the inertness contract).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace son::obs {

class CounterRegistry {
 public:
  /// The registry installed on this thread, or nullptr.
  [[nodiscard]] static CounterRegistry* current();

  /// Returns the slot for `name`, creating it at zero on first use. The
  /// returned pointer stays valid for the registry's lifetime.
  [[nodiscard]] std::uint64_t* slot(const std::string& name) { return &counters_[name]; }

  /// All counters in name order (deterministic snapshot order).
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> entries() const {
    return {counters_.begin(), counters_.end()};
  }

  [[nodiscard]] std::uint64_t value(const std::string& name) const {
    auto it = counters_.find(name);
    return it != counters_.end() ? it->second : 0;
  }

  [[nodiscard]] std::size_t size() const { return counters_.size(); }

 private:
  std::map<std::string, std::uint64_t> counters_;
};

/// Null-safe handle over one registry slot. Cheap to copy; add() on a
/// default-constructed (or registry-less) handle is a no-op.
class Counter {
 public:
  Counter() = default;
  explicit Counter(std::uint64_t* slot) : slot_(slot) {}

  void add(std::uint64_t delta = 1) {
    if (slot_ != nullptr) *slot_ += delta;
  }
  /// Gauge-style overwrite (e.g. high-water marks snapshotted at run end).
  void set(std::uint64_t value) {
    if (slot_ != nullptr) *slot_ = value;
  }
  [[nodiscard]] bool live() const { return slot_ != nullptr; }

 private:
  std::uint64_t* slot_ = nullptr;
};

/// Handle for `name` in this thread's current registry; null handle if no
/// registry is installed. Call at component construction time, not per event.
[[nodiscard]] Counter counter(const std::string& name);

/// Installs a registry as this thread's current one for the scope's
/// lifetime; restores the previous one on destruction.
class ScopedCounterRegistry {
 public:
  explicit ScopedCounterRegistry(CounterRegistry& reg);
  ~ScopedCounterRegistry();
  ScopedCounterRegistry(const ScopedCounterRegistry&) = delete;
  ScopedCounterRegistry& operator=(const ScopedCounterRegistry&) = delete;

 private:
  CounterRegistry* previous_;
};

}  // namespace son::obs
