// Deterministic flight recorder: per-node ring buffers of POD EventRecords.
//
// Memory model: the constructor preallocates one fixed-size ring per overlay
// node plus one shared "system" ring; record() writes in place and never
// allocates, so enabling the recorder cannot perturb the simulation (no
// events, no RNG draws, no heap traffic on the hot path). When a ring fills,
// the oldest records are overwritten (a flight recorder keeps the recent
// past; `overwritten()` reports how much history was lost).
//
// Installation is scoped and thread-local: each experiment trial runs on one
// worker thread and installs its own recorder via ScopedRecorder, so
// parallel trials never share state. Code records through the SON_OBS /
// SON_OBS_PATH macros, which compile to a single thread-local load + branch
// when no recorder is installed.
//
// Sharded runs: one recorder CAN serve every partition of a sharded-kernel
// run, because each ring stays single-writer — a node's events all execute
// on whichever worker runs that node's partition in a round, and code that
// runs outside any node (the underlay's drop path) records to the per-
// partition system ring `kSystemNode - partition`. Construct the recorder
// with system_rings >= the partition count, and call
// bind_worker_observability(kernel) so workers inherit the coordinator's
// installation and records are stamped with the executing partition's clock.
//
// Inertness contract: recording is write-only observation. Nothing in this
// class schedules events, draws randomness, or feeds values back into the
// simulation — GoldenRun.TracingIsInert pins this (identical delivery hash
// with the recorder on and off).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "obs/record.hpp"
#include "sim/simulator.hpp"

namespace son::obs {

/// One overlay hop of a sampled message, decoded from a kPath record.
struct PathHop {
  sim::TimePoint time;
  std::uint16_t node = 0;
  HopKind kind = HopKind::kOrigin;
  std::uint8_t link = 0xFF;    // overlay LinkBit (0xFF = none)
  std::uint8_t proto = 0;      // overlay LinkProtocol
  std::uint8_t detail = 0;     // per-kind extra (drop reason, ...)
};

/// The hop timeline of one sampled origin_id, in record order.
struct PathTrace {
  std::uint64_t origin_id = 0;
  std::vector<PathHop> hops;

  [[nodiscard]] bool empty() const { return hops.empty(); }
};

class Recorder {
 public:
  /// Preallocates `num_nodes` + `system_rings` rings of `ring_capacity`
  /// records each. One system ring suffices for single-threaded runs; a
  /// sharded run needs one per partition (see the header comment).
  Recorder(std::size_t num_nodes, std::size_t ring_capacity, std::size_t system_rings = 1);

  /// The recorder installed on this thread, or nullptr. This is THE hot-path
  /// check: SON_OBS is one thread-local load and branch when disabled.
  [[nodiscard]] static Recorder* current();
  /// Installs `rec` (may be nullptr) on this thread; returns the previous
  /// installation. Prefer ScopedRecorder; this exists for the sharded
  /// kernel's worker-context propagation.
  static Recorder* swap_current(Recorder* rec);

  /// Thread-local clock override: while set, records made from this thread
  /// are stamped from `clock` instead of the attached simulator. The sharded
  /// kernel sets it to the executing partition's simulator around each round
  /// slice (via bind_worker_observability). Returns the previous override.
  static const sim::Simulator* swap_thread_clock(const sim::Simulator* clock);
  [[nodiscard]] static const sim::Simulator* thread_clock();

  /// Time source for records. Until attached, records carry t_ns = 0 (unless
  /// a thread clock override is in effect).
  void attach(const sim::Simulator& sim) { sim_ = &sim; }

  /// Appends one record to `node`'s ring. node >= num_nodes selects a system
  /// ring: `kSystemNode - s` maps to system ring s (anything out of range
  /// falls back to system ring 0). Never allocates.
  void record(std::uint16_t node, Category cat, std::uint8_t code, std::uint64_t a,
              std::uint64_t b) {
    Ring& r = rings_[ring_index(node)];
    EventRecord& e = r.buf[static_cast<std::size_t>(r.written % capacity_)];
    const sim::Simulator* clk = thread_clock();
    if (clk == nullptr) clk = sim_;
    e.t_ns = clk != nullptr ? clk->now().ns() : 0;
    e.a = a;
    e.b = b;
    e.node = node;
    e.category = static_cast<std::uint8_t>(cat);
    e.code = code;
    e.reserved = 0;
    ++r.written;
  }

  /// Path-hop record for a sampled message; no-op unless `origin_id` is
  /// sampled (see sample_origin / set_sample_all).
  void record_path(std::uint64_t origin_id, std::uint16_t node, HopKind kind,
                   std::uint64_t packed) {
    if (!sampled(origin_id)) return;
    record(node, Category::kPath, static_cast<std::uint8_t>(kind), origin_id, packed);
  }

  // ---- Path sampling ----------------------------------------------------
  /// Adds one origin_id to the sampled set. Allocates (call at setup time,
  /// not from simulation callbacks).
  void sample_origin(std::uint64_t origin_id) { sampled_.insert(origin_id); }
  void set_sample_all(bool all) { sample_all_ = all; }
  [[nodiscard]] bool sampled(std::uint64_t origin_id) const {
    return sample_all_ || sampled_.contains(origin_id);
  }

  // ---- Post-hoc queries (run end; allocation is fine here) --------------
  /// All rings merged into one chronological stream: sorted by time, ties
  /// broken by node index (system ring last), then by per-ring write order.
  /// Deterministic for a deterministic run.
  [[nodiscard]] std::vector<EventRecord> merged() const;

  /// Hop timeline of one sampled message, extracted from merged().
  [[nodiscard]] PathTrace path(std::uint64_t origin_id) const;

  [[nodiscard]] std::uint64_t total_recorded() const;
  /// Records lost to ring wrap-around (oldest history overwritten).
  [[nodiscard]] std::uint64_t overwritten() const;
  [[nodiscard]] std::size_t num_nodes() const { return num_nodes_; }
  [[nodiscard]] std::size_t system_rings() const { return system_rings_; }
  [[nodiscard]] std::size_t ring_capacity() const { return capacity_; }

  /// Writes merged() as a binary trace file (magic + version + records).
  /// Returns false on I/O failure.
  [[nodiscard]] bool write(const std::string& path) const;
  /// Reads a trace file written by write(); nullopt on open/format errors.
  [[nodiscard]] static std::optional<std::vector<EventRecord>> read(const std::string& path);

 private:
  friend class ScopedRecorder;

  struct Ring {
    std::vector<EventRecord> buf;
    std::uint64_t written = 0;  // total records ever written to this ring
  };

  [[nodiscard]] std::size_t ring_index(std::uint16_t node) const {
    if (node < num_nodes_) return node;
    const std::size_t s = static_cast<std::size_t>(kSystemNode - node);
    return num_nodes_ + (s < system_rings_ ? s : 0);
  }

  const sim::Simulator* sim_ = nullptr;
  std::size_t num_nodes_;
  std::size_t capacity_;
  std::size_t system_rings_;
  std::vector<Ring> rings_;  // [0..num_nodes_) per node, then the system rings
  std::unordered_set<std::uint64_t> sampled_;
  bool sample_all_ = false;
};

/// Installs a recorder as this thread's current one for the scope's lifetime;
/// restores the previous recorder (usually nullptr) on destruction.
class ScopedRecorder {
 public:
  explicit ScopedRecorder(Recorder& rec);
  ~ScopedRecorder();
  ScopedRecorder(const ScopedRecorder&) = delete;
  ScopedRecorder& operator=(const ScopedRecorder&) = delete;

 private:
  Recorder* previous_;
};

}  // namespace son::obs

namespace son::sim {
class ShardedKernel;
}  // namespace son::sim

namespace son::obs {

/// Propagates observability into a sharded kernel's workers: at each run the
/// kernel snapshots the calling thread's installed Recorder/CounterRegistry
/// and re-installs them on whichever thread executes a partition slice, with
/// the recorder's thread clock set to that partition's simulator (so records
/// carry partition time). Call once per kernel, any time before a run; later
/// ScopedRecorder installs are picked up because the snapshot happens per
/// run, not at bind time. Inert as always: binding never perturbs results.
void bind_worker_observability(sim::ShardedKernel& kernel);

}  // namespace son::obs

/// Record an event iff a recorder is installed on this thread. Arguments are
/// NOT evaluated when recording is off — the disabled cost is one
/// thread-local load and a branch.
#define SON_OBS(node, cat, code, a, b)                                          \
  do {                                                                          \
    if (::son::obs::Recorder* son_obs_r_ = ::son::obs::Recorder::current()) {   \
      son_obs_r_->record((node), (cat), static_cast<std::uint8_t>(code), (a),   \
                         (b));                                                  \
    }                                                                           \
  } while (0)

/// Record one overlay hop of a sampled message (no-op for unsampled ids).
#define SON_OBS_PATH(origin_id, node, hop, packed)                              \
  do {                                                                          \
    if (::son::obs::Recorder* son_obs_r_ = ::son::obs::Recorder::current()) {   \
      son_obs_r_->record_path((origin_id), (node), (hop), (packed));            \
    }                                                                           \
  } while (0)
