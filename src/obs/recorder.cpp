#include "obs/recorder.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "obs/counters.hpp"
#include "sim/shard.hpp"

namespace son::obs {
namespace {

// Thread-local so each experiment trial (one trial per worker thread) can
// install its own recorder without any cross-thread coordination.
// son-analyze: allow(mutable-static) "one trial per worker thread; thread_local pointer is single-writer by construction"
thread_local Recorder* g_current = nullptr;
// Per-thread clock override for sharded runs (see Recorder::swap_thread_clock).
// son-analyze: allow(mutable-static) "per-thread clock override written only by the owning shard worker"
thread_local const sim::Simulator* g_thread_clock = nullptr;

constexpr char kMagic[8] = {'S', 'O', 'N', 'T', 'R', 'A', 'C', 'E'};
constexpr std::uint32_t kVersion = 1;

struct TraceHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t record_size;
  std::uint64_t count;
};
static_assert(std::is_trivially_copyable_v<TraceHeader>);
static_assert(sizeof(TraceHeader) == 24);

}  // namespace

Recorder::Recorder(std::size_t num_nodes, std::size_t ring_capacity, std::size_t system_rings)
    : num_nodes_(num_nodes),
      capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      system_rings_(system_rings == 0 ? 1 : system_rings) {
  rings_.resize(num_nodes_ + system_rings_);
  for (Ring& r : rings_) r.buf.resize(capacity_);
}

Recorder* Recorder::current() { return g_current; }

Recorder* Recorder::swap_current(Recorder* rec) {
  Recorder* previous = g_current;
  g_current = rec;
  return previous;
}

const sim::Simulator* Recorder::swap_thread_clock(const sim::Simulator* clock) {
  const sim::Simulator* previous = g_thread_clock;
  g_thread_clock = clock;
  return previous;
}

const sim::Simulator* Recorder::thread_clock() { return g_thread_clock; }

std::vector<EventRecord> Recorder::merged() const {
  // Collect each ring's live records in write order (oldest first), then
  // stable-sort by time. Stability preserves per-ring order, and seeding the
  // input in ring-index order makes time ties resolve by node index — fully
  // deterministic for a deterministic run.
  std::vector<EventRecord> out;
  out.reserve(static_cast<std::size_t>(total_recorded() - overwritten()));
  for (const Ring& r : rings_) {
    const std::uint64_t live = std::min<std::uint64_t>(r.written, capacity_);
    const std::uint64_t start = r.written - live;
    for (std::uint64_t i = 0; i < live; ++i) {
      out.push_back(r.buf[static_cast<std::size_t>((start + i) % capacity_)]);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const EventRecord& x, const EventRecord& y) { return x.t_ns < y.t_ns; });
  return out;
}

PathTrace Recorder::path(std::uint64_t origin_id) const {
  PathTrace trace;
  trace.origin_id = origin_id;
  for (const EventRecord& e : merged()) {
    if (e.category != static_cast<std::uint8_t>(Category::kPath) || e.a != origin_id) continue;
    PathHop hop;
    hop.time = sim::TimePoint::from_ns(e.t_ns);
    hop.node = e.node;
    hop.kind = static_cast<HopKind>(e.code);
    hop.link = unpack3_hi(e.b);
    hop.proto = unpack3_mid(e.b);
    hop.detail = unpack3_lo(e.b);
    trace.hops.push_back(hop);
  }
  return trace;
}

std::uint64_t Recorder::total_recorded() const {
  std::uint64_t total = 0;
  for (const Ring& r : rings_) total += r.written;
  return total;
}

std::uint64_t Recorder::overwritten() const {
  std::uint64_t lost = 0;
  for (const Ring& r : rings_) {
    if (r.written > capacity_) lost += r.written - capacity_;
  }
  return lost;
}

bool Recorder::write(const std::string& path) const {
  const std::vector<EventRecord> records = merged();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  TraceHeader hdr{};
  std::memcpy(hdr.magic, kMagic, sizeof(kMagic));
  hdr.version = kVersion;
  hdr.record_size = sizeof(EventRecord);
  hdr.count = records.size();
  out.write(reinterpret_cast<const char*>(&hdr), sizeof(hdr));
  if (!records.empty()) {
    out.write(reinterpret_cast<const char*>(records.data()),
              static_cast<std::streamsize>(records.size() * sizeof(EventRecord)));
  }
  return static_cast<bool>(out);
}

std::optional<std::vector<EventRecord>> Recorder::read(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  TraceHeader hdr{};
  in.read(reinterpret_cast<char*>(&hdr), sizeof(hdr));
  if (!in || std::memcmp(hdr.magic, kMagic, sizeof(kMagic)) != 0 || hdr.version != kVersion ||
      hdr.record_size != sizeof(EventRecord)) {
    return std::nullopt;
  }
  std::vector<EventRecord> records(static_cast<std::size_t>(hdr.count));
  if (hdr.count != 0) {
    in.read(reinterpret_cast<char*>(records.data()),
            static_cast<std::streamsize>(records.size() * sizeof(EventRecord)));
    if (!in) return std::nullopt;
  }
  return records;
}

ScopedRecorder::ScopedRecorder(Recorder& rec) : previous_(g_current) { g_current = &rec; }

ScopedRecorder::~ScopedRecorder() { g_current = previous_; }

void bind_worker_observability(sim::ShardedKernel& kernel) {
  kernel.set_worker_context_factory([]() -> sim::ShardedKernel::WorkerContext {
    // Snapshot the coordinator thread's installation at run entry...
    Recorder* rec = Recorder::current();
    CounterRegistry* reg = CounterRegistry::current();
    // ...and mirror it onto whichever thread executes a slice. Entering a
    // slice (focus != nullptr) installs the sinks and points the record
    // clock at the executing simulator; leaving clears only the clock — the
    // sink installation is idempotent on the coordinator (same values) and
    // harmless on workers, which do nothing between slices.
    return [rec, reg](sim::Simulator* focus) {
      if (focus != nullptr) {
        (void)Recorder::swap_current(rec);
        (void)CounterRegistry::swap_current(reg);
      }
      (void)Recorder::swap_thread_clock(focus);
    };
  });
}

}  // namespace son::obs
