// Flight-recorder event records.
//
// One record is 32 bytes of POD: the recorder writes them into preallocated
// per-node rings, so recording never allocates and a record is just a time
// stamp plus four small operands. The category/code pair gives every record a
// stable machine-readable meaning; `a`/`b` carry the operands (message ids,
// sequence numbers, packed link/protocol/reason triples).
#pragma once

#include <cstdint>
#include <type_traits>

namespace son::obs {

/// Top-level record categories. Keep stable: recorded trace files carry the
/// numeric values, and tools/son-trace names them for humans.
enum class Category : std::uint8_t {
  kDrop = 0,   // underlay drop; code = net::DropReason, a = packet id
  kLink = 1,   // link-protocol event; code = LinkEvent, a/b per event
  kRoute = 2,  // routing-level event; code = RouteEvent
  kPath = 3,   // sampled message hop; code = HopKind, a = origin_id
  kMark = 4,   // free-form scenario marks emitted by tests/benches

  kCount_,  // sentinel — keep last
};
inline constexpr std::size_t kNumCategories = static_cast<std::size_t>(Category::kCount_);

/// Codes for Category::kLink.
enum class LinkEvent : std::uint8_t {
  kRetransmit = 0,   // a = link seq, b = send count for the entry
  kNackBatch = 1,    // a = nacks in the ack frame, b = cumulative ack
  kFailover = 2,     // a = link bit, b = new active channel
  kRtoBackoff = 3,   // a = link seq, b = new RTO in ns
};

/// Codes for Category::kRoute.
enum class RouteEvent : std::uint8_t {
  kNoRoute = 0,      // a = destination node
  kTtlExpired = 1,   // a = origin_id
};

/// Codes for Category::kPath — one per overlay hop of a sampled message.
/// `a` is always the message's origin_id; `b` packs (link, protocol, detail)
/// via pack3(). `detail` is a per-kind extra (drop reason, etc.).
enum class HopKind : std::uint8_t {
  kOrigin = 0,       // message entered the overlay at `node`
  kForward = 1,      // egress onto overlay link `link` with `protocol`
  kDeliver = 2,      // delivered to the session level at `node`
  kDropTtl = 3,      // overlay TTL expired at `node`
  kDropNoRoute = 4,  // no next hop at `node`
  kDropDedup = 5,    // redundant copy suppressed at `node` (expected end)
  kDropCompromised = 6,  // swallowed by a compromised node
  kDropProtocol = 7,     // link protocol shed it (window/buffer full)
};

/// Packs three bytes into a record operand (link, protocol, detail).
[[nodiscard]] constexpr std::uint64_t pack3(std::uint8_t hi, std::uint8_t mid,
                                            std::uint8_t lo) {
  return (std::uint64_t{hi} << 16) | (std::uint64_t{mid} << 8) | lo;
}
[[nodiscard]] constexpr std::uint8_t unpack3_hi(std::uint64_t v) {
  return static_cast<std::uint8_t>(v >> 16);
}
[[nodiscard]] constexpr std::uint8_t unpack3_mid(std::uint64_t v) {
  return static_cast<std::uint8_t>(v >> 8);
}
[[nodiscard]] constexpr std::uint8_t unpack3_lo(std::uint64_t v) {
  return static_cast<std::uint8_t>(v);
}

/// The fixed-size POD record the rings hold and trace files carry.
struct EventRecord {
  std::int64_t t_ns = 0;       // sim time of the record
  std::uint64_t a = 0;         // first operand (category-specific)
  std::uint64_t b = 0;         // second operand (category-specific)
  std::uint16_t node = 0;      // recording node (kSystemNode for non-node code)
  std::uint8_t category = 0;   // Category
  std::uint8_t code = 0;       // per-category code enum
  std::uint32_t reserved = 0;  // padding; keeps the record 32 bytes, wire-stable
};
static_assert(std::is_trivially_copyable_v<EventRecord>);
static_assert(sizeof(EventRecord) == 32, "EventRecord is the trace-file wire format");

/// Ring index used by code that runs outside any overlay node (the underlay,
/// experiment harnesses). The recorder maps any node id >= its node count to
/// its shared system ring.
inline constexpr std::uint16_t kSystemNode = 0xFFFF;

[[nodiscard]] const char* to_string(Category c);
[[nodiscard]] const char* to_string(HopKind k);
[[nodiscard]] const char* to_string(LinkEvent e);
[[nodiscard]] const char* to_string(RouteEvent e);

}  // namespace son::obs
