#include "obs/record.hpp"

namespace son::obs {

const char* to_string(Category c) {
  switch (c) {
    case Category::kDrop: return "drop";
    case Category::kLink: return "link";
    case Category::kRoute: return "route";
    case Category::kPath: return "path";
    case Category::kMark: return "mark";
    case Category::kCount_: break;
  }
  return "unknown";
}

const char* to_string(HopKind k) {
  switch (k) {
    case HopKind::kOrigin: return "origin";
    case HopKind::kForward: return "forward";
    case HopKind::kDeliver: return "deliver";
    case HopKind::kDropTtl: return "drop_ttl";
    case HopKind::kDropNoRoute: return "drop_no_route";
    case HopKind::kDropDedup: return "drop_dedup";
    case HopKind::kDropCompromised: return "drop_compromised";
    case HopKind::kDropProtocol: return "drop_protocol";
  }
  return "unknown";
}

const char* to_string(LinkEvent e) {
  switch (e) {
    case LinkEvent::kRetransmit: return "retransmit";
    case LinkEvent::kNackBatch: return "nack_batch";
    case LinkEvent::kFailover: return "failover";
    case LinkEvent::kRtoBackoff: return "rto_backoff";
  }
  return "unknown";
}

const char* to_string(RouteEvent e) {
  switch (e) {
    case RouteEvent::kNoRoute: return "no_route";
    case RouteEvent::kTtlExpired: return "ttl_expired";
  }
  return "unknown";
}

}  // namespace son::obs
