#include "obs/counters.hpp"

namespace son::obs {
namespace {

// son-analyze: allow(mutable-static) "per-thread install pointer scoped by CounterScope; single-writer by construction"
thread_local CounterRegistry* g_current = nullptr;

}  // namespace

CounterRegistry* CounterRegistry::current() { return g_current; }

CounterRegistry* CounterRegistry::swap_current(CounterRegistry* reg) {
  CounterRegistry* previous = g_current;
  g_current = reg;
  return previous;
}

Counter counter(const std::string& name) {
  CounterRegistry* reg = CounterRegistry::current();
  return reg != nullptr ? Counter(reg->slot(name)) : Counter();
}

ScopedCounterRegistry::ScopedCounterRegistry(CounterRegistry& reg) : previous_(g_current) {
  g_current = &reg;
}

ScopedCounterRegistry::~ScopedCounterRegistry() { g_current = previous_; }

}  // namespace son::obs
