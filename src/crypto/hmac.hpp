// HMAC-SHA256 (RFC 2104) with constant-time tag comparison.
//
// Two call styles, producing bit-identical results:
//   * hmac_sha256 / hmac_tag — stateless reference: recomputes both key-pad
//     block compressions (k^ipad, k^opad) on every call. 4 SHA-256
//     compressions for a short message. The seed implementation, kept as the
//     ablation baseline and the equivalence-test oracle.
//   * HmacKey — midstate-cached: captures the SHA-256 states after absorbing
//     k^ipad and k^opad ONCE at construction; each subsequent tag resumes
//     those states, so a short-message tag costs 2 compressions instead of
//     4. Equivalence holds because the key pads are a whole 64-byte block
//     and SHA-256 chains state block-by-block: resuming the captured state
//     is exactly the computation the stateless path performs.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "crypto/sha256.hpp"
#include "sim/hot.hpp"

namespace son::crypto {

/// 16-byte truncated HMAC tag — ample for per-link packet authentication.
using Tag = std::array<std::uint8_t, 16>;

[[nodiscard]] Digest hmac_sha256(std::span<const std::uint8_t> key,
                                 std::span<const std::uint8_t> message);

/// Streaming variant over the logical message head||body (no concatenation
/// buffer). Identical to hmac_sha256(key, head||body).
[[nodiscard]] Digest hmac_sha256(std::span<const std::uint8_t> key,
                                 std::span<const std::uint8_t> head,
                                 std::span<const std::uint8_t> body);
/// Kernel-pinned variant (digests do not depend on the kernel). Lets bench
/// ablations reconstruct the pre-dispatch cost without touching the
/// process-wide default mid-run.
[[nodiscard]] Digest hmac_sha256(std::span<const std::uint8_t> key,
                                 std::span<const std::uint8_t> head,
                                 std::span<const std::uint8_t> body, Sha256Kernel kernel);

[[nodiscard]] Tag hmac_tag(std::span<const std::uint8_t> key,
                           std::span<const std::uint8_t> message);
[[nodiscard]] Tag hmac_tag(std::span<const std::uint8_t> key,
                           std::span<const std::uint8_t> message, Sha256Kernel kernel);

/// Constant-time comparison (no early exit on mismatch).
[[nodiscard]] bool verify_tag(const Tag& expected, const Tag& actual);

namespace detail {
/// FIPS 180-4 digest serialization of the first `words` state words
/// (big-endian). `out` must hold 4 * words bytes.
inline void sha256_state_bytes(const Sha256State& s, std::uint8_t* out,
                               std::size_t words) {
  for (std::size_t i = 0; i < words; ++i) {
    out[4 * i + 0] = static_cast<std::uint8_t>(s[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(s[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(s[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(s[i]);
  }
}
}  // namespace detail

/// Precomputed HMAC key: the midstate cache. Construction absorbs the two
/// key-pad blocks; mac()/tag() then resume the captured states and feed the
/// message as head||body spans (zero-allocation, no concatenation copy).
class HmacKey {
 public:
  HmacKey() = default;
  explicit HmacKey(std::span<const std::uint8_t> key) : HmacKey(key, sha256_kernel()) {}
  /// Kernel-pinned variant for ablation cells; digests do not depend on it.
  HmacKey(std::span<const std::uint8_t> key, Sha256Kernel kernel);

  SON_HOT [[nodiscard]] Digest mac(std::span<const std::uint8_t> head,
                                   std::span<const std::uint8_t> body = {}) const;
  /// Truncated tag. Short messages (message + 0x80 terminator + 64-bit
  /// length within one padded block — every per-hop auth head) stay inline:
  /// two direct compressions, and only the 4 state words a 16-byte tag needs
  /// are serialized.
  SON_HOT [[nodiscard]] Tag tag(std::span<const std::uint8_t> head,
                                std::span<const std::uint8_t> body = {}) const {
    if (compress_ != nullptr && head.size() + body.size() <= 55) {
      return tag_one_block(head, body);
    }
    return tag_general(head, body);
  }
  SON_HOT [[nodiscard]] bool check(std::span<const std::uint8_t> head,
                                   std::span<const std::uint8_t> body, const Tag& t) const;

 private:
  SON_HOT [[nodiscard]] Tag tag_one_block(std::span<const std::uint8_t> head,
                                          std::span<const std::uint8_t> body) const {
    // Inner hash: resume the k^ipad midstate over the single padded block.
    // Identical bytes to what Sha256::update/finish would feed the kernel.
    const std::size_t len = head.size() + body.size();
    std::array<std::uint8_t, 64> block{};
    if (!head.empty()) __builtin_memcpy(block.data(), head.data(), head.size());
    if (!body.empty()) __builtin_memcpy(block.data() + head.size(), body.data(), body.size());
    block[len] = 0x80;
    const std::uint64_t bits = (64 + len) * 8;  // key-pad block + message
    for (std::size_t i = 0; i < 8; ++i) {
      block[56 + i] = static_cast<std::uint8_t>(bits >> (8 * (7 - i)));
    }
    Sha256State st = inner_;
    compress_(st, block.data(), 1);

    // Outer hash: the 32-byte inner digest padded to one block
    // ((k^opad block + 32 bytes) * 8 = 768 bits).
    std::array<std::uint8_t, 64> oblock{};
    detail::sha256_state_bytes(st, oblock.data(), 8);
    oblock[32] = 0x80;
    oblock[62] = 0x03;  // 768 = 0x0300
    st = outer_;
    compress_(st, oblock.data(), 1);
    Tag t;
    detail::sha256_state_bytes(st, t.data(), 4);
    return t;
  }
  [[nodiscard]] Tag tag_general(std::span<const std::uint8_t> head,
                                std::span<const std::uint8_t> body) const;

  Sha256State inner_{};  // state after the k^ipad block
  Sha256State outer_{};  // state after the k^opad block
  Sha256Kernel kernel_ = Sha256Kernel::kScalar;
  detail::CompressFn compress_ = nullptr;  // resolved once; avoids per-tag dispatch
};

}  // namespace son::crypto
