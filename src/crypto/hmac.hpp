// HMAC-SHA256 (RFC 2104) with constant-time tag comparison.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "crypto/sha256.hpp"

namespace son::crypto {

/// 16-byte truncated HMAC tag — ample for per-link packet authentication.
using Tag = std::array<std::uint8_t, 16>;

[[nodiscard]] Digest hmac_sha256(std::span<const std::uint8_t> key,
                                 std::span<const std::uint8_t> message);

[[nodiscard]] Tag hmac_tag(std::span<const std::uint8_t> key,
                           std::span<const std::uint8_t> message);

/// Constant-time comparison (no early exit on mismatch).
[[nodiscard]] bool verify_tag(const Tag& expected, const Tag& actual);

}  // namespace son::crypto
