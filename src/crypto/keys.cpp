#include "crypto/keys.hpp"

#include <algorithm>

namespace son::crypto {

Key derive_pair_key(const Key& master, std::uint32_t a, std::uint32_t b) {
  if (a > b) std::swap(a, b);
  std::array<std::uint8_t, 8> pair_bytes{};
  for (int i = 0; i < 4; ++i) {
    pair_bytes[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(a >> (8 * i));
    pair_bytes[static_cast<std::size_t>(4 + i)] = static_cast<std::uint8_t>(b >> (8 * i));
  }
  const Digest d = hmac_sha256(std::span<const std::uint8_t>{master},
                               std::span<const std::uint8_t>{pair_bytes});
  Key k;
  std::copy_n(d.begin(), k.size(), k.begin());
  return k;
}

KeyTable::KeyTable(const Key& master, std::uint32_t self, std::uint32_t num_nodes)
    : self_{self} {
  keys_.reserve(num_nodes);
  macs_.reserve(num_nodes);
  for (std::uint32_t peer = 0; peer < num_nodes; ++peer) {
    keys_.push_back(derive_pair_key(master, self, peer));
    macs_.emplace_back(std::span<const std::uint8_t>{keys_.back()});
  }
}

Tag KeyTable::sign(std::uint32_t peer, std::span<const std::uint8_t> message) const {
  return sign(peer, message, {});
}

bool KeyTable::verify(std::uint32_t peer, std::span<const std::uint8_t> message,
                      const Tag& tag) const {
  return verify(peer, message, {}, tag);
}

Tag KeyTable::sign(std::uint32_t peer, std::span<const std::uint8_t> head,
                   std::span<const std::uint8_t> body) const {
  return context(peer).sign(head, body);
}

bool KeyTable::verify(std::uint32_t peer, std::span<const std::uint8_t> head,
                      std::span<const std::uint8_t> body, const Tag& tag) const {
  return context(peer).verify(head, body, tag);
}

}  // namespace son::crypto
