#include "crypto/sha256.hpp"

#include <bit>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SON_SHA256_HAVE_SHANI 1
#include <immintrin.h>
#endif

namespace son::crypto {

namespace {

constexpr std::array<std::uint32_t, 64> kK = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
    0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
    0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
    0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
    0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
    0xc67178f2};

constexpr std::uint32_t rotr(std::uint32_t x, unsigned n) { return std::rotr(x, static_cast<int>(n)); }

void compress_scalar(Sha256State& state, const std::uint8_t* p, std::size_t nblocks) {
  while (nblocks-- > 0) {
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (std::uint32_t{p[4 * i]} << 24) | (std::uint32_t{p[4 * i + 1]} << 16) |
             (std::uint32_t{p[4 * i + 2]} << 8) | std::uint32_t{p[4 * i + 3]};
    }
    for (int i = 16; i < 64; ++i) {
      const std::uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    auto [a, b, c, d, e, f, g, h] = state;
    for (int i = 0; i < 64; ++i) {
      const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t t1 = h + s1 + ch + kK[static_cast<std::size_t>(i)] + w[i];
      const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t t2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
    p += 64;
  }
}

#if SON_SHA256_HAVE_SHANI

// SHA-NI kernel: two rounds per sha256rnds2, message schedule via
// sha256msg1/msg2 (the canonical Intel scheduling; state packed as ABEF/CDGH
// across two xmm registers for the whole multi-block run).
__attribute__((target("sha,sse4.1,ssse3"))) void compress_shani(Sha256State& state,
                                                                const std::uint8_t* data,
                                                                std::size_t nblocks) {
  const __m128i kShuf = _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));    // DCBA
  __m128i st1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));    // HGFE
  tmp = _mm_shuffle_epi32(tmp, 0xB1);                                            // CDAB
  st1 = _mm_shuffle_epi32(st1, 0x1B);                                            // EFGH
  __m128i st0 = _mm_alignr_epi8(tmp, st1, 8);                                    // ABEF
  st1 = _mm_blend_epi16(st1, tmp, 0xF0);                                         // CDGH

  while (nblocks-- > 0) {
    const __m128i abef_save = st0;
    const __m128i cdgh_save = st1;
    __m128i msg, msgtmp;

    // Rounds 0-3.
    __m128i m0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0)), kShuf);
    msg = _mm_add_epi32(m0, _mm_set_epi64x(0xE9B5DBA5B5C0FBCFULL, 0x71374491428A2F98ULL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);

    // Rounds 4-7.
    __m128i m1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16)), kShuf);
    msg = _mm_add_epi32(m1, _mm_set_epi64x(0xAB1C5ED5923F82A4ULL, 0x59F111F13956C25BULL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    m0 = _mm_sha256msg1_epu32(m0, m1);

    // Rounds 8-11.
    __m128i m2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32)), kShuf);
    msg = _mm_add_epi32(m2, _mm_set_epi64x(0x550C7DC3243185BEULL, 0x12835B01D807AA98ULL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    m1 = _mm_sha256msg1_epu32(m1, m2);

    // Rounds 12-15.
    __m128i m3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48)), kShuf);
    msg = _mm_add_epi32(m3, _mm_set_epi64x(0xC19BF1749BDC06A7ULL, 0x80DEB1FE72BE5D74ULL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msgtmp = _mm_alignr_epi8(m3, m2, 4);
    m0 = _mm_add_epi32(m0, msgtmp);
    m0 = _mm_sha256msg2_epu32(m0, m3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    m2 = _mm_sha256msg1_epu32(m2, m3);

    // Rounds 16-19.
    msg = _mm_add_epi32(m0, _mm_set_epi64x(0x240CA1CC0FC19DC6ULL, 0xEFBE4786E49B69C1ULL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msgtmp = _mm_alignr_epi8(m0, m3, 4);
    m1 = _mm_add_epi32(m1, msgtmp);
    m1 = _mm_sha256msg2_epu32(m1, m0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    m3 = _mm_sha256msg1_epu32(m3, m0);

    // Rounds 20-23.
    msg = _mm_add_epi32(m1, _mm_set_epi64x(0x76F988DA5CB0A9DCULL, 0x4A7484AA2DE92C6FULL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msgtmp = _mm_alignr_epi8(m1, m0, 4);
    m2 = _mm_add_epi32(m2, msgtmp);
    m2 = _mm_sha256msg2_epu32(m2, m1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    m0 = _mm_sha256msg1_epu32(m0, m1);

    // Rounds 24-27.
    msg = _mm_add_epi32(m2, _mm_set_epi64x(0xBF597FC7B00327C8ULL, 0xA831C66D983E5152ULL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msgtmp = _mm_alignr_epi8(m2, m1, 4);
    m3 = _mm_add_epi32(m3, msgtmp);
    m3 = _mm_sha256msg2_epu32(m3, m2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    m1 = _mm_sha256msg1_epu32(m1, m2);

    // Rounds 28-31.
    msg = _mm_add_epi32(m3, _mm_set_epi64x(0x1429296706CA6351ULL, 0xD5A79147C6E00BF3ULL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msgtmp = _mm_alignr_epi8(m3, m2, 4);
    m0 = _mm_add_epi32(m0, msgtmp);
    m0 = _mm_sha256msg2_epu32(m0, m3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    m2 = _mm_sha256msg1_epu32(m2, m3);

    // Rounds 32-35.
    msg = _mm_add_epi32(m0, _mm_set_epi64x(0x53380D134D2C6DFCULL, 0x2E1B213827B70A85ULL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msgtmp = _mm_alignr_epi8(m0, m3, 4);
    m1 = _mm_add_epi32(m1, msgtmp);
    m1 = _mm_sha256msg2_epu32(m1, m0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    m3 = _mm_sha256msg1_epu32(m3, m0);

    // Rounds 36-39.
    msg = _mm_add_epi32(m1, _mm_set_epi64x(0x92722C8581C2C92EULL, 0x766A0ABB650A7354ULL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msgtmp = _mm_alignr_epi8(m1, m0, 4);
    m2 = _mm_add_epi32(m2, msgtmp);
    m2 = _mm_sha256msg2_epu32(m2, m1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    m0 = _mm_sha256msg1_epu32(m0, m1);

    // Rounds 40-43.
    msg = _mm_add_epi32(m2, _mm_set_epi64x(0xC76C51A3C24B8B70ULL, 0xA81A664BA2BFE8A1ULL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msgtmp = _mm_alignr_epi8(m2, m1, 4);
    m3 = _mm_add_epi32(m3, msgtmp);
    m3 = _mm_sha256msg2_epu32(m3, m2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    m1 = _mm_sha256msg1_epu32(m1, m2);

    // Rounds 44-47.
    msg = _mm_add_epi32(m3, _mm_set_epi64x(0x106AA070F40E3585ULL, 0xD6990624D192E819ULL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msgtmp = _mm_alignr_epi8(m3, m2, 4);
    m0 = _mm_add_epi32(m0, msgtmp);
    m0 = _mm_sha256msg2_epu32(m0, m3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    m2 = _mm_sha256msg1_epu32(m2, m3);

    // Rounds 48-51.
    msg = _mm_add_epi32(m0, _mm_set_epi64x(0x34B0BCB52748774CULL, 0x1E376C0819A4C116ULL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msgtmp = _mm_alignr_epi8(m0, m3, 4);
    m1 = _mm_add_epi32(m1, msgtmp);
    m1 = _mm_sha256msg2_epu32(m1, m0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    m3 = _mm_sha256msg1_epu32(m3, m0);

    // Rounds 52-55.
    msg = _mm_add_epi32(m1, _mm_set_epi64x(0x682E6FF35B9CCA4FULL, 0x4ED8AA4A391C0CB3ULL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msgtmp = _mm_alignr_epi8(m1, m0, 4);
    m2 = _mm_add_epi32(m2, msgtmp);
    m2 = _mm_sha256msg2_epu32(m2, m1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);

    // Rounds 56-59.
    msg = _mm_add_epi32(m2, _mm_set_epi64x(0x8CC7020884C87814ULL, 0x78A5636F748F82EEULL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msgtmp = _mm_alignr_epi8(m2, m1, 4);
    m3 = _mm_add_epi32(m3, msgtmp);
    m3 = _mm_sha256msg2_epu32(m3, m2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);

    // Rounds 60-63.
    msg = _mm_add_epi32(m3, _mm_set_epi64x(0xC67178F2BEF9A3F7ULL, 0xA4506CEB90BEFFFAULL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);

    st0 = _mm_add_epi32(st0, abef_save);
    st1 = _mm_add_epi32(st1, cdgh_save);
    data += 64;
  }

  tmp = _mm_shuffle_epi32(st0, 0x1B);       // FEBA
  st1 = _mm_shuffle_epi32(st1, 0xB1);       // DCHG
  st0 = _mm_blend_epi16(tmp, st1, 0xF0);    // DCBA
  st1 = _mm_alignr_epi8(st1, tmp, 8);       // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), st0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), st1);
}

#endif  // SON_SHA256_HAVE_SHANI

bool detect_shani() {
#if SON_SHA256_HAVE_SHANI
  return __builtin_cpu_supports("sha") != 0;
#else
  return false;
#endif
}

// Dispatch state. Initialized by a dynamic initializer (single-threaded,
// before main), then only rewritten by set_sha256_kernel during
// single-threaded setup phases — concurrent hashing only ever reads it.
// son-analyze: allow(mutable-static) "written once before main by the dispatch initializer; set_sha256_kernel is documented setup-phase-only, so worker threads exclusively read"
Sha256Kernel g_kernel = detect_shani() ? Sha256Kernel::kShaNi : Sha256Kernel::kScalar;

}  // namespace

bool sha256_shani_supported() { return detect_shani(); }

Sha256Kernel sha256_kernel() { return g_kernel; }

const char* to_string(Sha256Kernel k) {
  return k == Sha256Kernel::kShaNi ? "sha-ni" : "scalar";
}

const char* sha256_kernel_name() { return to_string(g_kernel); }

Sha256Kernel set_sha256_kernel(Sha256Kernel k) {
  if (k == Sha256Kernel::kShaNi && !detect_shani()) k = Sha256Kernel::kScalar;
  g_kernel = k;
  return g_kernel;
}

namespace detail {
CompressFn compress_fn(Sha256Kernel k) {
#if SON_SHA256_HAVE_SHANI
  if (k == Sha256Kernel::kShaNi && detect_shani()) return &compress_shani;
#else
  (void)k;
#endif
  return &compress_scalar;
}
}  // namespace detail

void sha256_compress(Sha256State& state, const std::uint8_t* blocks, std::size_t nblocks) {
  detail::compress_fn(g_kernel)(state, blocks, nblocks);
}

void Sha256::reset() {
  state_ = kSha256Iv;
  buffer_len_ = 0;
  total_bytes_ = 0;
}

void Sha256::reset_from(const Sha256State& state, std::uint64_t blocks_absorbed) {
  state_ = state;
  buffer_len_ = 0;
  total_bytes_ = blocks_absorbed * 64;
}

void Sha256::update(std::span<const std::uint8_t> data) {
  total_bytes_ += data.size();
  std::size_t off = 0;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(data.size(), buffer_.size() - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    off += take;
    if (buffer_len_ == 64) {
      compress_(state_, buffer_.data(), 1);
      buffer_len_ = 0;
    }
  }
  if (const std::size_t whole = (data.size() - off) / 64; whole > 0) {
    compress_(state_, data.data() + off, whole);
    off += whole * 64;
  }
  if (off < data.size()) {
    std::memcpy(buffer_.data(), data.data() + off, data.size() - off);
    buffer_len_ = data.size() - off;
  }
}

Digest Sha256::finish() {
  const std::uint64_t bit_len = total_bytes_ * 8;
  buffer_[buffer_len_++] = 0x80;
  if (buffer_len_ > 56) {
    std::memset(buffer_.data() + buffer_len_, 0, 64 - buffer_len_);
    compress_(state_, buffer_.data(), 1);
    buffer_len_ = 0;
  }
  std::memset(buffer_.data() + buffer_len_, 0, 56 - buffer_len_);
  for (int i = 0; i < 8; ++i) {
    buffer_[static_cast<std::size_t>(56 + i)] =
        static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  compress_(state_, buffer_.data(), 1);

  Digest out{};
  for (int i = 0; i < 8; ++i) {
    out[static_cast<std::size_t>(4 * i)] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 24);
    out[static_cast<std::size_t>(4 * i + 1)] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 16);
    out[static_cast<std::size_t>(4 * i + 2)] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 8);
    out[static_cast<std::size_t>(4 * i + 3)] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)]);
  }
  return out;
}

Digest Sha256::hash(std::span<const std::uint8_t> data) {
  Sha256 h;
  h.update(data);
  return h.finish();
}

Digest Sha256::hash(std::string_view s) {
  Sha256 h;
  h.update(s);
  return h.finish();
}

std::string to_hex(const Digest& d) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (const std::uint8_t b : d) {
    out += kHex[b >> 4];
    out += kHex[b & 0xf];
  }
  return out;
}

}  // namespace son::crypto
