// Node identities and the pairwise symmetric key table used by the
// intrusion-tolerant overlay protocols (§IV-B): "Because the number of
// overlay nodes is small, each overlay node can know the identities of all
// valid overlay nodes in the system, and can use cryptography to
// authenticate messages and ensure that they originate from authorized
// overlay nodes."
//
// The table precomputes one HmacKey midstate per peer at construction, so
// per-frame sign/verify skips both key-pad compressions. Endpoints resolve a
// MacContext handle once per link (context(peer)) instead of indexing the
// table per frame. set_midstate(false) is the ablation knob reconstructing
// the seed path (from-scratch HMAC per tag); tags are bit-identical either
// way.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/hmac.hpp"
#include "sim/hot.hpp"

namespace son::crypto {

using Key = std::array<std::uint8_t, 32>;

/// Deterministically derives the shared key for the unordered node pair
/// (a, b) from a deployment-wide master secret. In a real deployment keys
/// come from provisioning; derivation keeps simulated deployments of any
/// size self-consistent.
[[nodiscard]] Key derive_pair_key(const Key& master, std::uint32_t a, std::uint32_t b);

/// Per-link signing handle: the result of resolving one peer in a KeyTable.
/// Holds the peer's precomputed midstate (fast path) and raw key (ablation
/// fallback); sign/verify stream the message as head||body spans. Invalidated
/// if the owning table is destroyed or its midstate knob is toggled — resolve
/// at (endpoint) setup time, after knobs are set.
class MacContext {
 public:
  MacContext() = default;

  [[nodiscard]] bool valid() const { return raw_ != nullptr; }

  SON_HOT [[nodiscard]] Tag sign(std::span<const std::uint8_t> head,
                                 std::span<const std::uint8_t> body = {}) const {
    if (mac_ != nullptr) return mac_->tag(head, body);
    const Digest d = hmac_sha256(std::span<const std::uint8_t>{*raw_}, head, body);
    Tag t;
    for (std::size_t i = 0; i < t.size(); ++i) t[i] = d[i];
    return t;
  }
  SON_HOT [[nodiscard]] bool verify(std::span<const std::uint8_t> head,
                                    std::span<const std::uint8_t> body,
                                    const Tag& tag) const {
    return verify_tag(sign(head, body), tag);
  }

 private:
  friend class KeyTable;
  MacContext(const HmacKey* mac, const Key* raw) : mac_{mac}, raw_{raw} {}

  const HmacKey* mac_ = nullptr;  // null when the table's midstate knob is off
  const Key* raw_ = nullptr;
};

/// Per-node view of the full pairwise key table for n overlay nodes.
class KeyTable {
 public:
  KeyTable(const Key& master, std::uint32_t self, std::uint32_t num_nodes);

  [[nodiscard]] const Key& key_for(std::uint32_t peer) const { return keys_.at(peer); }
  [[nodiscard]] std::uint32_t self() const { return self_; }
  [[nodiscard]] std::uint32_t size() const { return static_cast<std::uint32_t>(keys_.size()); }

  /// Resolves the signing handle for the channel self<->peer. Endpoints call
  /// this once per link, not per frame.
  [[nodiscard]] MacContext context(std::uint32_t peer) const {
    return MacContext{midstate_ ? &macs_.at(peer) : nullptr, &keys_.at(peer)};
  }

  /// Ablation knob: false reconstructs the seed path (both key-pad
  /// compressions recomputed per tag). Set before resolving contexts.
  void set_midstate(bool on) { midstate_ = on; }
  [[nodiscard]] bool midstate() const { return midstate_; }

  /// Tags `message` for the channel self<->peer.
  SON_HOT [[nodiscard]] Tag sign(std::uint32_t peer,
                                 std::span<const std::uint8_t> message) const;
  SON_HOT [[nodiscard]] bool verify(std::uint32_t peer,
                                    std::span<const std::uint8_t> message,
                                    const Tag& tag) const;
  /// Streaming variants over head||body (zero-copy two-span form).
  SON_HOT [[nodiscard]] Tag sign(std::uint32_t peer, std::span<const std::uint8_t> head,
                                 std::span<const std::uint8_t> body) const;
  SON_HOT [[nodiscard]] bool verify(std::uint32_t peer, std::span<const std::uint8_t> head,
                                    std::span<const std::uint8_t> body, const Tag& tag) const;

 private:
  std::uint32_t self_;
  std::vector<Key> keys_;      // indexed by peer id
  std::vector<HmacKey> macs_;  // midstates, same index
  bool midstate_ = true;
};

}  // namespace son::crypto
