// Node identities and the pairwise symmetric key table used by the
// intrusion-tolerant overlay protocols (§IV-B): "Because the number of
// overlay nodes is small, each overlay node can know the identities of all
// valid overlay nodes in the system, and can use cryptography to
// authenticate messages and ensure that they originate from authorized
// overlay nodes."
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/hmac.hpp"

namespace son::crypto {

using Key = std::array<std::uint8_t, 32>;

/// Deterministically derives the shared key for the unordered node pair
/// (a, b) from a deployment-wide master secret. In a real deployment keys
/// come from provisioning; derivation keeps simulated deployments of any
/// size self-consistent.
[[nodiscard]] Key derive_pair_key(const Key& master, std::uint32_t a, std::uint32_t b);

/// Per-node view of the full pairwise key table for n overlay nodes.
class KeyTable {
 public:
  KeyTable(const Key& master, std::uint32_t self, std::uint32_t num_nodes);

  [[nodiscard]] const Key& key_for(std::uint32_t peer) const { return keys_.at(peer); }
  [[nodiscard]] std::uint32_t self() const { return self_; }
  [[nodiscard]] std::uint32_t size() const { return static_cast<std::uint32_t>(keys_.size()); }

  /// Tags `message` for the channel self<->peer.
  [[nodiscard]] Tag sign(std::uint32_t peer, std::span<const std::uint8_t> message) const;
  [[nodiscard]] bool verify(std::uint32_t peer, std::span<const std::uint8_t> message,
                            const Tag& tag) const;

 private:
  std::uint32_t self_;
  std::vector<Key> keys_;  // indexed by peer id
};

}  // namespace son::crypto
