// SHA-256 (FIPS 180-4), incremental API. Self-contained so the overlay's
// intrusion-tolerant protocols carry real, verifiable authentication tags
// with measurable per-hop cost (bench_overhead) without external deps.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace son::crypto {

using Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view s) {
    update(std::span{reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  }
  /// Finalizes and returns the digest. The object must be reset() before
  /// further use.
  [[nodiscard]] Digest finish();

  /// One-shot convenience.
  [[nodiscard]] static Digest hash(std::span<const std::uint8_t> data);
  [[nodiscard]] static Digest hash(std::string_view s);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bytes_ = 0;
};

[[nodiscard]] std::string to_hex(const Digest& d);

}  // namespace son::crypto
