// SHA-256 (FIPS 180-4), incremental API. Self-contained so the overlay's
// intrusion-tolerant protocols carry real, verifiable authentication tags
// with measurable per-hop cost (bench_overhead) without external deps.
//
// The compression function is runtime-dispatched: on x86-64 with the SHA
// extensions (SHA-NI) a hardware kernel is selected once at process startup
// (a namespace-scope dynamic initializer, i.e. before main() and before any
// sharded worker threads exist, so the dispatch itself is race-free); the
// portable scalar loop remains the fallback and the reference. Both kernels
// compute the identical FIPS 180-4 function, so digests — and therefore
// HMAC tags, delivery hashes and golden-run traces — are bit-identical
// regardless of which kernel runs.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "sim/hot.hpp"

namespace son::crypto {

using Digest = std::array<std::uint8_t, 32>;

/// The eight 32-bit working variables of SHA-256 — either the initial vector
/// or a captured midstate after some whole number of 64-byte blocks.
using Sha256State = std::array<std::uint32_t, 8>;

/// FIPS 180-4 initial hash value H(0).
inline constexpr Sha256State kSha256Iv = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                          0xa54ff53a, 0x510e527f, 0x9b05688c,
                                          0x1f83d9ab, 0x5be0cd19};

enum class Sha256Kernel : std::uint8_t {
  kScalar = 0,  // portable reference loop
  kShaNi = 1,   // x86-64 SHA extensions
};

/// True when this CPU can run the SHA-NI kernel.
[[nodiscard]] bool sha256_shani_supported();

/// Kernel new Sha256 instances pick up by default (best available unless
/// overridden). Thread-safe to read; see set_sha256_kernel for writes.
[[nodiscard]] Sha256Kernel sha256_kernel();
[[nodiscard]] const char* sha256_kernel_name();
[[nodiscard]] const char* to_string(Sha256Kernel k);

/// Overrides the process-wide default kernel (bench ablation / tests).
/// Returns the kernel actually installed — a request for an unsupported
/// kernel falls back to scalar. NOT thread-safe against concurrent hashing:
/// call during single-threaded setup, before parallel trial workers start.
/// Per-instance selection (Sha256{kernel}, HmacKey{key, kernel}) is the
/// race-free way to mix kernels inside one run.
Sha256Kernel set_sha256_kernel(Sha256Kernel k);

namespace detail {
/// Compresses `nblocks` consecutive 64-byte blocks into `state`. Multi-block
/// so the SHA-NI kernel keeps the state in registers across a long input.
using CompressFn = void (*)(Sha256State& state, const std::uint8_t* blocks,
                            std::size_t nblocks);
[[nodiscard]] CompressFn compress_fn(Sha256Kernel k);
}  // namespace detail

/// Raw block compression with the process-default kernel; building block for
/// HMAC midstate capture (crypto::HmacKey).
void sha256_compress(Sha256State& state, const std::uint8_t* blocks,
                     std::size_t nblocks);

class Sha256 {
 public:
  Sha256() : compress_{detail::compress_fn(sha256_kernel())} { reset(); }
  /// Pins this instance to one kernel (ablation cells that must not depend
  /// on — or mutate — the process-wide default).
  explicit Sha256(Sha256Kernel k) : compress_{detail::compress_fn(k)} { reset(); }

  void reset();
  /// Seeds the hash from a captured midstate: `state` is the compression
  /// state after absorbing exactly `blocks_absorbed` whole 64-byte blocks.
  /// Continuing from a midstate is bit-identical to rehashing the absorbed
  /// prefix, because SHA-256 is a pure block chain and the length padding
  /// covers total bytes (tracked here as blocks_absorbed * 64).
  void reset_from(const Sha256State& state, std::uint64_t blocks_absorbed);
  SON_HOT void update(std::span<const std::uint8_t> data);
  void update(std::string_view s) {
    update(std::span{reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  }
  /// Finalizes and returns the digest. The object must be reset() before
  /// further use.
  SON_HOT [[nodiscard]] Digest finish();

  /// One-shot convenience.
  [[nodiscard]] static Digest hash(std::span<const std::uint8_t> data);
  [[nodiscard]] static Digest hash(std::string_view s);

 private:
  detail::CompressFn compress_;
  Sha256State state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bytes_ = 0;
};

[[nodiscard]] std::string to_hex(const Digest& d);

}  // namespace son::crypto
