#include "crypto/hmac.hpp"

#include <algorithm>
#include <cstring>

namespace son::crypto {

namespace {
void key_pads(std::span<const std::uint8_t> key, std::array<std::uint8_t, 64>& ipad,
              std::array<std::uint8_t, 64>& opad, Sha256Kernel kernel) {
  std::array<std::uint8_t, 64> k_block{};
  if (key.size() > 64) {
    Sha256 kh{kernel};
    kh.update(key);
    const Digest kd = kh.finish();
    std::memcpy(k_block.data(), kd.data(), kd.size());
  } else {
    std::memcpy(k_block.data(), key.data(), key.size());
  }
  for (std::size_t i = 0; i < 64; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k_block[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k_block[i] ^ 0x5c);
  }
}
}  // namespace

Digest hmac_sha256(std::span<const std::uint8_t> key, std::span<const std::uint8_t> head,
                   std::span<const std::uint8_t> body, Sha256Kernel kernel) {
  std::array<std::uint8_t, 64> ipad{};
  std::array<std::uint8_t, 64> opad{};
  key_pads(key, ipad, opad, kernel);

  Sha256 inner{kernel};
  inner.update(std::span<const std::uint8_t>{ipad});
  inner.update(head);
  inner.update(body);
  const Digest inner_digest = inner.finish();

  Sha256 outer{kernel};
  outer.update(std::span<const std::uint8_t>{opad});
  outer.update(std::span<const std::uint8_t>{inner_digest});
  return outer.finish();
}

Digest hmac_sha256(std::span<const std::uint8_t> key, std::span<const std::uint8_t> head,
                   std::span<const std::uint8_t> body) {
  return hmac_sha256(key, head, body, sha256_kernel());
}

Digest hmac_sha256(std::span<const std::uint8_t> key, std::span<const std::uint8_t> message) {
  return hmac_sha256(key, message, {}, sha256_kernel());
}

Tag hmac_tag(std::span<const std::uint8_t> key, std::span<const std::uint8_t> message,
             Sha256Kernel kernel) {
  const Digest d = hmac_sha256(key, message, {}, kernel);
  Tag t;
  std::copy_n(d.begin(), t.size(), t.begin());
  return t;
}

Tag hmac_tag(std::span<const std::uint8_t> key, std::span<const std::uint8_t> message) {
  return hmac_tag(key, message, sha256_kernel());
}

bool verify_tag(const Tag& expected, const Tag& actual) {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < expected.size(); ++i) diff |= expected[i] ^ actual[i];
  return diff == 0;
}

HmacKey::HmacKey(std::span<const std::uint8_t> key, Sha256Kernel kernel) : kernel_{kernel} {
  std::array<std::uint8_t, 64> ipad{};
  std::array<std::uint8_t, 64> opad{};
  key_pads(key, ipad, opad, kernel_);
  inner_ = kSha256Iv;
  outer_ = kSha256Iv;
  compress_ = detail::compress_fn(kernel_);
  compress_(inner_, ipad.data(), 1);
  compress_(outer_, opad.data(), 1);
}

Digest HmacKey::mac(std::span<const std::uint8_t> head,
                    std::span<const std::uint8_t> body) const {
  // Default-constructed keys fall back to per-call dispatch.
  const detail::CompressFn compress =
      compress_ != nullptr ? compress_ : detail::compress_fn(kernel_);
  const std::size_t len = head.size() + body.size();

  // Inner hash: resume the k^ipad midstate. Short messages (the per-hop tag
  // hot path: 23B control heads, sub-block data heads) fit message + 0x80
  // terminator + 64-bit length in ONE padded block, so the block is built on
  // the stack and compressed directly — no streaming-buffer machinery.
  // Identical bytes to what Sha256::update/finish would feed the kernel.
  // Either way the inner digest is serialized straight into the outer block,
  // which is always exactly one block: the 32-byte digest padded to
  // (k^opad block + 32 bytes) * 8 = 768 bits.
  std::array<std::uint8_t, 64> oblock{};
  if (len <= 55) {
    std::array<std::uint8_t, 64> block{};
    if (!head.empty()) std::memcpy(block.data(), head.data(), head.size());
    if (!body.empty()) std::memcpy(block.data() + head.size(), body.data(), body.size());
    block[len] = 0x80;
    const std::uint64_t bits = (64 + len) * 8;  // key-pad block + message
    for (std::size_t i = 0; i < 8; ++i) {
      block[56 + i] = static_cast<std::uint8_t>(bits >> (8 * (7 - i)));
    }
    Sha256State inner = inner_;
    compress(inner, block.data(), 1);
    detail::sha256_state_bytes(inner, oblock.data(), 8);
  } else {
    Sha256 h{kernel_};
    h.reset_from(inner_, 1);
    h.update(head);
    h.update(body);
    const Digest inner_digest = h.finish();
    std::memcpy(oblock.data(), inner_digest.data(), inner_digest.size());
  }
  oblock[32] = 0x80;
  oblock[62] = 0x03;  // 768 = 0x0300
  Sha256State outer = outer_;
  compress(outer, oblock.data(), 1);
  Digest out;
  detail::sha256_state_bytes(outer, out.data(), 8);
  return out;
}

Tag HmacKey::tag_general(std::span<const std::uint8_t> head,
                         std::span<const std::uint8_t> body) const {
  const Digest d = mac(head, body);
  Tag t;
  std::copy_n(d.begin(), t.size(), t.begin());
  return t;
}

bool HmacKey::check(std::span<const std::uint8_t> head, std::span<const std::uint8_t> body,
                    const Tag& t) const {
  return verify_tag(tag(head, body), t);
}

}  // namespace son::crypto
