#include "crypto/hmac.hpp"

#include <algorithm>
#include <cstring>

namespace son::crypto {

Digest hmac_sha256(std::span<const std::uint8_t> key, std::span<const std::uint8_t> message) {
  std::array<std::uint8_t, 64> k_block{};
  if (key.size() > 64) {
    const Digest kd = Sha256::hash(key);
    std::memcpy(k_block.data(), kd.data(), kd.size());
  } else {
    std::memcpy(k_block.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, 64> ipad{};
  std::array<std::uint8_t, 64> opad{};
  for (std::size_t i = 0; i < 64; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k_block[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k_block[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(std::span<const std::uint8_t>{ipad});
  inner.update(message);
  const Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(std::span<const std::uint8_t>{opad});
  outer.update(std::span<const std::uint8_t>{inner_digest});
  return outer.finish();
}

Tag hmac_tag(std::span<const std::uint8_t> key, std::span<const std::uint8_t> message) {
  const Digest d = hmac_sha256(key, message);
  Tag t;
  std::copy_n(d.begin(), t.size(), t.begin());
  return t;
}

bool verify_tag(const Tag& expected, const Tag& actual) {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < expected.size(); ++i) diff |= expected[i] ^ actual[i];
  return diff == 0;
}

}  // namespace son::crypto
