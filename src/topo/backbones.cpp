#include "topo/backbones.hpp"

#include <algorithm>

namespace son::topo {

BackboneMap continental_us() {
  BackboneMap m;
  m.cities = {
      {"NYC", 40.71, -74.01}, {"WDC", 38.91, -77.04}, {"ATL", 33.75, -84.39},
      {"MIA", 25.76, -80.19}, {"CHI", 41.88, -87.63}, {"DFW", 32.78, -96.80},
      {"HOU", 29.76, -95.37}, {"DEN", 39.74, -104.99}, {"PHX", 33.45, -112.07},
      {"LAX", 34.05, -118.24}, {"SFO", 37.77, -122.42}, {"SEA", 47.61, -122.33},
  };
  // Index shorthands match the order above.
  enum : NodeIndex { NYC, WDC, ATL, MIA, CHI, DFW, HOU, DEN, PHX, LAX, SFO, SEA };
  m.edges = {
      {NYC, WDC}, {NYC, CHI}, {WDC, ATL}, {WDC, CHI}, {ATL, MIA}, {ATL, DFW}, {ATL, HOU},
      {MIA, HOU}, {CHI, DEN}, {CHI, DFW}, {DFW, HOU}, {DFW, DEN}, {DFW, PHX}, {DEN, PHX},
      {DEN, SFO}, {PHX, LAX}, {LAX, SFO}, {SFO, SEA}, {SEA, DEN},
  };
  return m;
}

BackboneMap global_sites() {
  BackboneMap m;
  m.cities = {
      {"NYC", 40.71, -74.01}, {"SEA", 47.61, -122.33}, {"LAX", 34.05, -118.24},
      {"LON", 51.51, -0.13},  {"FRA", 50.11, 8.68},    {"TYO", 35.68, 139.69},
      {"HKG", 22.32, 114.17}, {"SIN", 1.35, 103.82},   {"SYD", -33.87, 151.21},
      {"SAO", -23.55, -46.63},
  };
  enum : NodeIndex { NYC, SEA, LAX, LON, FRA, TYO, HKG, SIN, SYD, SAO };
  m.edges = {
      {NYC, SEA}, {NYC, LAX}, {SEA, LAX}, {NYC, LON}, {NYC, SAO}, {LON, FRA},
      {LON, SAO}, {FRA, SIN}, {SEA, TYO}, {LAX, TYO}, {LAX, SYD}, {TYO, HKG},
      {HKG, SIN}, {SIN, SYD}, {TYO, SIN}, {LAX, SAO},
  };
  return m;
}

Graph overlay_graph(const BackboneMap& map, double route_inflation) {
  Graph g(map.cities.size());
  for (const auto& [u, v] : map.edges) {
    g.add_edge(u, v,
               fiber_latency(map.cities[u], map.cities[v], route_inflation).to_millis_f());
  }
  return g;
}

BuiltUnderlay build_dual_isp(net::Internet& internet, const BackboneMap& map,
                             const DualIspOptions& opts) {
  BuiltUnderlay out;
  out.isp_a = internet.add_isp("isp-a");
  out.isp_b = internet.add_isp("isp-b");

  for (const auto& city : map.cities) {
    out.routers_a.push_back(internet.add_router(out.isp_a, city.name + "/a"));
    out.routers_b.push_back(internet.add_router(out.isp_b, city.name + "/b"));
  }

  const auto skipped = [](const std::vector<std::size_t>& skips, std::size_t e) {
    return std::find(skips.begin(), skips.end(), e) != skips.end();
  };

  out.links_a.assign(map.edges.size(), net::kInvalidLink);
  out.links_b.assign(map.edges.size(), net::kInvalidLink);
  for (std::size_t e = 0; e < map.edges.size(); ++e) {
    const auto [u, v] = map.edges[e];
    net::LinkConfig cfg;
    cfg.prop_delay = fiber_latency(map.cities[u], map.cities[v], opts.route_inflation);
    cfg.bandwidth_bps = opts.bandwidth_bps;
    cfg.max_queue_delay = opts.max_queue_delay;
    cfg.loss_rate = opts.backbone_loss;
    if (!skipped(opts.skip_in_isp_a, e)) {
      out.links_a[e] = internet.add_link(out.routers_a[u], out.routers_a[v], cfg);
    }
    if (!skipped(opts.skip_in_isp_b, e)) {
      out.links_b[e] = internet.add_link(out.routers_b[u], out.routers_b[v], cfg);
    }
  }

  // Peering: a short same-city cross-connect between the two providers.
  for (const NodeIndex c : opts.peering_cities) {
    net::LinkConfig cfg;
    cfg.prop_delay = sim::Duration::microseconds(200);
    cfg.bandwidth_bps = opts.bandwidth_bps;
    cfg.max_queue_delay = opts.max_queue_delay;
    internet.add_link(out.routers_a[c], out.routers_b[c], cfg);
  }

  for (std::size_t c = 0; c < map.cities.size(); ++c) {
    const net::HostId h = internet.add_host(map.cities[c].name);
    net::LinkConfig access;
    access.prop_delay = opts.access_delay;
    access.bandwidth_bps = opts.bandwidth_bps;
    access.max_queue_delay = opts.max_queue_delay;
    internet.attach_host(h, out.routers_a[c], access);
    internet.attach_host(h, out.routers_b[c], access);
    out.hosts.push_back(h);
  }
  return out;
}

}  // namespace son::topo
