#include "topo/designer.hpp"

#include <algorithm>
#include <limits>

namespace son::topo {

namespace {

/// All-pairs shortest-path distances of a weighted graph (Dijkstra per node;
/// the designer's graphs are tiny).
std::vector<std::vector<double>> all_pairs(const Graph& g) {
  std::vector<std::vector<double>> d;
  d.reserve(g.num_nodes());
  for (NodeIndex u = 0; u < g.num_nodes(); ++u) {
    d.push_back(dijkstra(g, u).dist);
  }
  return d;
}

/// Worst pairwise stretch of `g` relative to baseline distances; infinity if
/// any baseline-reachable pair became unreachable.
double worst_stretch(const Graph& g, const std::vector<std::vector<double>>& base) {
  const auto cur = all_pairs(g);
  double worst = 1.0;
  for (NodeIndex a = 0; a < g.num_nodes(); ++a) {
    for (NodeIndex b = a + 1; b < g.num_nodes(); ++b) {
      if (base[a][b] == std::numeric_limits<double>::infinity()) continue;
      if (cur[a][b] == std::numeric_limits<double>::infinity()) {
        return std::numeric_limits<double>::infinity();
      }
      worst = std::max(worst, cur[a][b] / base[a][b]);
    }
  }
  return worst;
}

Graph build_graph(std::size_t n, const std::vector<std::pair<NodeIndex, NodeIndex>>& edges,
                  const std::vector<double>& weights) {
  Graph g(n);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    g.add_edge(edges[i].first, edges[i].second, weights[i]);
  }
  return g;
}

}  // namespace

std::optional<DesignResult> design_overlay(
    const std::vector<City>& cities, const DesignOptions& opts,
    const std::vector<std::pair<NodeIndex, NodeIndex>>* fiber_routes) {
  const auto n = static_cast<NodeIndex>(cities.size());

  // Candidate links: provided fiber routes, or every short-enough pair.
  std::vector<std::pair<NodeIndex, NodeIndex>> cand;
  std::vector<double> lat;
  const auto consider = [&](NodeIndex a, NodeIndex b) {
    const double ms = fiber_latency(cities[a], cities[b], opts.route_inflation).to_millis_f();
    if (ms <= opts.max_link_ms) {
      cand.emplace_back(a, b);
      lat.push_back(ms);
    }
  };
  if (fiber_routes != nullptr) {
    for (const auto& [a, b] : *fiber_routes) consider(a, b);
  } else {
    for (NodeIndex a = 0; a < n; ++a) {
      for (NodeIndex b = a + 1; b < n; ++b) consider(a, b);
    }
  }

  Graph dense = build_graph(n, cand, lat);
  if (!is_biconnected(dense)) return std::nullopt;  // sites too sparse to design for
  const auto base = all_pairs(dense);

  // Greedy pruning: repeatedly drop the LONGEST remaining link whose removal
  // keeps the topology biconnected, every degree >= min_degree, and all
  // stretches within bound. Longest-first removes the links that violate the
  // "short overlay links" principle hardest while the chords that provide
  // disjointness survive.
  std::vector<bool> alive(cand.size(), true);
  std::vector<std::size_t> order(cand.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return lat[a] > lat[b]; });

  const auto rebuild = [&]() {
    std::vector<std::pair<NodeIndex, NodeIndex>> edges;
    std::vector<double> weights;
    for (std::size_t i = 0; i < cand.size(); ++i) {
      if (alive[i]) {
        edges.push_back(cand[i]);
        weights.push_back(lat[i]);
      }
    }
    return build_graph(n, edges, weights);
  };

  bool changed = true;
  std::size_t live = cand.size();
  while (changed) {
    changed = false;
    for (const std::size_t i : order) {
      if (!alive[i]) continue;
      alive[i] = false;
      const Graph trial = rebuild();
      bool ok = is_biconnected(trial) && worst_stretch(trial, base) <= opts.max_stretch;
      if (ok) {
        for (NodeIndex u = 0; u < n && ok; ++u) {
          ok = trial.neighbors(u).size() >= opts.min_degree;
        }
      }
      if (ok) {
        --live;
        changed = true;
      } else {
        alive[i] = true;
      }
    }
  }
  if (live > opts.max_links) return std::nullopt;  // cannot fit the mask cap

  DesignResult out{.edges = {}, .graph = Graph{n}, .achieved_stretch = 1.0};
  std::vector<double> weights;
  for (std::size_t i = 0; i < cand.size(); ++i) {
    if (alive[i]) {
      out.edges.push_back(cand[i]);
      weights.push_back(lat[i]);
    }
  }
  out.graph = build_graph(n, out.edges, weights);
  out.achieved_stretch = worst_stretch(out.graph, base);
  return out;
}

}  // namespace son::topo
