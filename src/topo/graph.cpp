#include "topo/graph.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>
#include <queue>

namespace son::topo {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

EdgeIndex Graph::add_edge(NodeIndex u, NodeIndex v, double weight) {
  assert(u < adj_.size() && v < adj_.size() && u != v);
  assert(weight >= 0.0);
  const auto id = static_cast<EdgeIndex>(edges_.size());
  edges_.push_back(Edge{u, v, weight});
  adj_[u].emplace_back(v, id);
  adj_[v].emplace_back(u, id);
  return id;
}

EdgeIndex Graph::find_edge(NodeIndex u, NodeIndex v) const {
  for (const auto& [n, e] : adj_.at(u)) {
    if (n == v) return e;
  }
  return kNoEdge;
}

NodeIndex Graph::other_end(EdgeIndex e, NodeIndex from) const {
  const Edge& ed = edges_.at(e);
  assert(ed.u == from || ed.v == from);
  return ed.u == from ? ed.v : ed.u;
}

ShortestPaths dijkstra(const Graph& g, NodeIndex src, const std::vector<bool>& disabled) {
  const std::size_t n = g.num_nodes();
  ShortestPaths sp{std::vector<double>(n, kInf), std::vector<NodeIndex>(n, kNoNode),
                   std::vector<EdgeIndex>(n, kNoEdge)};
  const auto is_disabled = [&](NodeIndex x) { return x < disabled.size() && disabled[x]; };
  if (is_disabled(src)) return sp;

  using QE = std::pair<double, NodeIndex>;
  std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
  sp.dist[src] = 0.0;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > sp.dist[u]) continue;
    for (const auto& [v, e] : g.neighbors(u)) {
      if (is_disabled(v)) continue;
      const double nd = d + g.edge(e).weight;
      if (nd < sp.dist[v]) {
        sp.dist[v] = nd;
        sp.parent[v] = u;
        sp.parent_edge[v] = e;
        pq.emplace(nd, v);
      }
    }
  }
  return sp;
}

// ---- SptEngine (iSPF) ------------------------------------------------------

namespace {
constexpr std::uint32_t kNotInHeap = static_cast<std::uint32_t>(-1);
}

bool SptEngine::heap_less(NodeIndex a, NodeIndex b) const {
  // Tie-break on the node index so settle order — and therefore parent
  // selection — is a pure function of the labels, never of heap history.
  return dist_[a] < dist_[b] || (dist_[a] == dist_[b] && a < b);
}

void SptEngine::heap_sift_up(std::size_t i) {
  const NodeIndex v = heap_[i];
  while (i > 0) {
    const std::size_t p = (i - 1) / 4;
    if (!heap_less(v, heap_[p])) break;
    heap_[i] = heap_[p];
    heap_pos_[heap_[i]] = static_cast<std::uint32_t>(i);
    i = p;
  }
  heap_[i] = v;
  heap_pos_[v] = static_cast<std::uint32_t>(i);
}

void SptEngine::heap_sift_down(std::size_t i) {
  const NodeIndex v = heap_[i];
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (heap_less(heap_[c], heap_[best])) best = c;
    }
    if (!heap_less(heap_[best], v)) break;
    heap_[i] = heap_[best];
    heap_pos_[heap_[i]] = static_cast<std::uint32_t>(i);
    i = best;
  }
  heap_[i] = v;
  heap_pos_[v] = static_cast<std::uint32_t>(i);
}

void SptEngine::heap_push_or_decrease(NodeIndex v) {
  if (heap_pos_[v] == kNotInHeap) {
    heap_.push_back(v);
    heap_sift_up(heap_.size() - 1);
  } else {
    heap_sift_up(heap_pos_[v]);  // keys only ever decrease
  }
}

NodeIndex SptEngine::heap_pop() {
  const NodeIndex top = heap_.front();
  heap_pos_[top] = kNotInHeap;
  const NodeIndex tail = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = tail;
    heap_pos_[tail] = 0;
    heap_sift_down(0);
  }
  return top;
}

/// True if (dist_[u], u, e) precedes v's current parent label — the
/// canonical tie order. Callers guarantee dist_[u] + weight(e) == dist_[v].
bool SptEngine::tie_better(NodeIndex u, EdgeIndex e, NodeIndex v) const {
  const NodeIndex p = parent_[v];
  if (p == kNoNode) return true;
  const double du = dist_[u];
  const double dp = dist_[p];
  return du < dp || (du == dp && (u < p || (u == p && e < parent_edge_[v])));
}

/// The settled Dijkstra main loop: pops (dist, node)-minimal entries and
/// relaxes. A strict improvement re-labels and (re)queues; an exactly equal
/// offer from a canonically smaller (dist, node, edge) switches the parent
/// only — dist is unchanged, so nothing downstream moves, but the parent
/// arrays stay bit-identical to a full recompute even through ties.
/// Every popped node lands in touched_.
void SptEngine::run_heap(const Graph& g) {
  while (!heap_.empty()) {
    const NodeIndex u = heap_pop();
    touched_.push_back(u);
    const double du = dist_[u];
    for (const auto& [v, e] : g.neighbors(u)) {
      const double nd = du + g.edge(e).weight;
      if (nd < dist_[v]) {
        dist_[v] = nd;
        parent_[v] = u;
        parent_edge_[v] = e;
        heap_push_or_decrease(v);
      } else if (nd == dist_[v] && nd != kInf && v != src_ && tie_better(u, e, v)) {
        parent_[v] = u;
        parent_edge_[v] = e;
      }
    }
  }
}

/// Canonical parent: among all neighbors whose label plus the connecting
/// edge's weight equals dist[v] exactly, the (dist, node, edge)-minimal one.
/// For positive weights this is precisely the neighbor a full Dijkstra run
/// would have relaxed v from, so repaired regions stay bit-identical to a
/// fresh full compute.
void SptEngine::canonicalize_parent(const Graph& g, NodeIndex v) {
  if (v == src_ || dist_[v] == kInf) return;
  NodeIndex best_u = parent_[v];
  EdgeIndex best_e = parent_edge_[v];
  double best_d = dist_[best_u];
  for (const auto& [u, e] : g.neighbors(v)) {
    const double du = dist_[u];
    if (du == kInf) continue;
    if (du + g.edge(e).weight != dist_[v]) continue;
    if (du < best_d || (du == best_d && (u < best_u || (u == best_u && e < best_e)))) {
      best_u = u;
      best_e = e;
      best_d = du;
    }
  }
  parent_[v] = best_u;
  parent_edge_[v] = best_e;
}

void SptEngine::adopt(const Graph& g, NodeIndex src, ShortestPaths sp) {
  const std::size_t n = g.num_nodes();
  src_ = src;
  dist_ = std::move(sp.dist);
  parent_ = std::move(sp.parent);
  parent_edge_ = std::move(sp.parent_edge);
  heap_.clear();
  heap_pos_.assign(n, kNotInHeap);
  detached_.assign(n, false);
  touched_.clear();
}

void SptEngine::full_compute(const Graph& g, NodeIndex src) {
  const std::size_t n = g.num_nodes();
  src_ = src;
  dist_.assign(n, kInf);
  parent_.assign(n, kNoNode);
  parent_edge_.assign(n, kNoEdge);
  heap_.clear();
  heap_.reserve(n);
  heap_pos_.assign(n, kNotInHeap);
  detached_.assign(n, false);
  touched_.clear();
  touched_.reserve(n);
  dist_[src] = 0.0;
  heap_push_or_decrease(src);
  run_heap(g);
}

void SptEngine::update(const Graph& g, const EdgeSet& changed) {
  touched_.clear();
  detach_roots_.clear();
  detached_list_.clear();

  // Phase 1 — find the tree edges whose cost went up: the subtree below each
  // is suspect (every node in it routed through the dearer edge).
  for (const EdgeIndex e : changed) {
    const auto& ed = g.edge(e);
    NodeIndex child = kNoNode;
    if (parent_edge_[ed.v] == e) {
      child = ed.v;
    } else if (parent_edge_[ed.u] == e) {
      child = ed.u;
    }
    if (child == kNoNode) continue;
    const NodeIndex par = parent_[child];
    if (dist_[par] + ed.weight > dist_[child]) detach_roots_.push_back(child);
  }

  // Phase 2 — detach those subtrees (children are graph neighbors whose
  // parent_edge is the connecting edge), then reset their labels.
  for (const NodeIndex r : detach_roots_) {
    if (detached_[r]) continue;  // nested under an earlier root
    detached_[r] = true;
    detached_list_.push_back(r);
    for (std::size_t i = detached_list_.size() - 1; i < detached_list_.size(); ++i) {
      const NodeIndex x = detached_list_[i];
      for (const auto& [c, e] : g.neighbors(x)) {
        if (!detached_[c] && parent_[c] == x && parent_edge_[c] == e) {
          detached_[c] = true;
          detached_list_.push_back(c);
        }
      }
    }
  }
  // Phase 3 — seed the repair frontier: each detached node's best offer from
  // the still-attached region (argmin computed before the single heap push),
  // plus both directions of every changed edge (covers decreases; increases
  // fail the strict < and cost nothing).
  for (const NodeIndex x : detached_list_) {
    double best_d = kInf;
    NodeIndex best_u = kNoNode;
    EdgeIndex best_e = kNoEdge;
    for (const auto& [y, e] : g.neighbors(x)) {
      if (detached_[y]) continue;
      const double nd = dist_[y] + g.edge(e).weight;
      if (nd < best_d) {
        best_d = nd;
        best_u = y;
        best_e = e;
      }
    }
    dist_[x] = best_d;
    parent_[x] = best_u;
    parent_edge_[x] = best_e;
    if (best_d != kInf) heap_push_or_decrease(x);
  }
  for (const EdgeIndex e : changed) {
    const auto& ed = g.edge(e);
    const double w = ed.weight;
    const double via_u = dist_[ed.u] + w;
    if (via_u < dist_[ed.v]) {
      dist_[ed.v] = via_u;
      parent_[ed.v] = ed.u;
      parent_edge_[ed.v] = e;
      heap_push_or_decrease(ed.v);
    } else if (via_u == dist_[ed.v] && via_u != kInf && ed.v != src_ &&
               tie_better(ed.u, e, ed.v)) {
      // The change made this edge an exactly-equal-cost alternative that the
      // canonical order prefers: a fresh full run would route through it.
      parent_[ed.v] = ed.u;
      parent_edge_[ed.v] = e;
    }
    const double via_v = dist_[ed.v] + w;
    if (via_v < dist_[ed.u]) {
      dist_[ed.u] = via_v;
      parent_[ed.u] = ed.v;
      parent_edge_[ed.u] = e;
      heap_push_or_decrease(ed.u);
    } else if (via_v == dist_[ed.u] && via_v != kInf && ed.u != src_ &&
               tie_better(ed.v, e, ed.u)) {
      parent_[ed.u] = ed.v;
      parent_edge_[ed.u] = e;
    }
  }
  for (const NodeIndex x : detached_list_) detached_[x] = false;

  // Phase 4 — settle, then pin canonical parents for everything repaired.
  run_heap(g);
  for (const NodeIndex t : touched_) canonicalize_parent(g, t);
}

std::optional<Path> extract_path(const ShortestPaths& sp, NodeIndex src, NodeIndex dst) {
  if (sp.dist[dst] == kInf) return std::nullopt;
  Path p;
  for (NodeIndex v = dst; v != kNoNode; v = sp.parent[v]) p.push_back(v);
  std::reverse(p.begin(), p.end());
  if (p.front() != src) return std::nullopt;
  return p;
}

std::optional<Path> shortest_path(const Graph& g, NodeIndex src, NodeIndex dst,
                                  const std::vector<bool>& disabled) {
  if (src == dst) return Path{src};
  return extract_path(dijkstra(g, src, disabled), src, dst);
}

double path_cost(const Graph& g, const Path& p) {
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    const EdgeIndex e = g.find_edge(p[i], p[i + 1]);
    assert(e != kNoEdge);
    total += g.edge(e).weight;
  }
  return total;
}

// ---- k node-disjoint paths via min-cost unit flow --------------------------
//
// Node splitting: node x becomes x_in (2x) and x_out (2x+1) joined by a
// unit-capacity zero-cost arc (infinite capacity for src/dst so k paths may
// share the endpoints). Each undirected edge becomes two unit-capacity arcs.
// We push one unit of flow at a time along a Bellman-Ford shortest path in
// the residual graph (costs can go negative in residuals).

namespace {

struct Arc {
  std::uint32_t to;
  std::uint32_t rev;  // index of reverse arc in arcs[to]
  std::int32_t cap;
  double cost;
  bool forward;  // true for original arcs, false for residual reverses
};

class FlowNet {
 public:
  explicit FlowNet(std::size_t n) : arcs_(n) {}

  void add_arc(std::uint32_t from, std::uint32_t to, std::int32_t cap, double cost) {
    arcs_[from].push_back(
        Arc{to, static_cast<std::uint32_t>(arcs_[to].size()), cap, cost, true});
    arcs_[to].push_back(
        Arc{from, static_cast<std::uint32_t>(arcs_[from].size() - 1), 0, -cost, false});
  }

  /// One augmentation src→dst along a min-cost residual path. Returns false
  /// when no augmenting path exists.
  bool augment(std::uint32_t src, std::uint32_t dst) {
    const std::size_t n = arcs_.size();
    std::vector<double> dist(n, kInf);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> prev(n, {0, 0});  // (node, arc idx)
    std::vector<bool> in_queue(n, false);
    std::deque<std::uint32_t> q;
    dist[src] = 0.0;
    q.push_back(src);
    in_queue[src] = true;
    while (!q.empty()) {
      const auto u = q.front();
      q.pop_front();
      in_queue[u] = false;
      for (std::uint32_t i = 0; i < arcs_[u].size(); ++i) {
        const Arc& a = arcs_[u][i];
        if (a.cap <= 0) continue;
        if (dist[u] + a.cost < dist[a.to] - 1e-12) {
          dist[a.to] = dist[u] + a.cost;
          prev[a.to] = {u, i};
          if (!in_queue[a.to]) {
            q.push_back(a.to);
            in_queue[a.to] = true;
          }
        }
      }
    }
    if (dist[dst] == kInf) return false;
    for (std::uint32_t v = dst; v != src;) {
      const auto [u, i] = prev[v];
      Arc& a = arcs_[u][i];
      a.cap -= 1;
      arcs_[a.to][a.rev].cap += 1;
      v = u;
    }
    return true;
  }

  [[nodiscard]] const std::vector<std::vector<Arc>>& arcs() const { return arcs_; }

 private:
  std::vector<std::vector<Arc>> arcs_;
};

}  // namespace

std::vector<Path> k_node_disjoint_paths(const Graph& g, NodeIndex src, NodeIndex dst,
                                        std::size_t k) {
  assert(src != dst);
  const std::size_t n = g.num_nodes();
  const auto in_of = [](NodeIndex x) { return 2 * x; };
  const auto out_of = [](NodeIndex x) { return 2 * x + 1; };

  FlowNet fn(2 * n);
  for (NodeIndex x = 0; x < n; ++x) {
    const std::int32_t cap = (x == src || x == dst) ? static_cast<std::int32_t>(k) : 1;
    fn.add_arc(in_of(x), out_of(x), cap, 0.0);
  }
  for (EdgeIndex e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    fn.add_arc(out_of(ed.u), in_of(ed.v), 1, ed.weight);
    fn.add_arc(out_of(ed.v), in_of(ed.u), 1, ed.weight);
  }

  std::size_t found = 0;
  while (found < k && fn.augment(out_of(src), in_of(dst))) ++found;

  // Decompose the flow into paths by walking it from src. Flow pushed over a
  // forward arc shows up as capacity on its reverse arc, so "remaining flow"
  // on forward arc i out of u is reverse_cap - used[u][i]. Intermediate
  // nodes carry at most one unit (their split arc has capacity 1), so each
  // walk through a node is unique; only edge arcs need used[] tracking
  // because src/dst fan out up to k arcs.
  std::vector<std::vector<std::int32_t>> used(2 * n);
  for (std::uint32_t u = 0; u < 2 * n; ++u) {
    used[u].assign(fn.arcs()[u].size(), 0);
  }
  std::vector<Path> paths;
  for (std::size_t p = 0; p < found; ++p) {
    Path path{src};
    std::uint32_t cur = out_of(src);
    while (cur != in_of(dst)) {
      bool advanced = false;
      auto& arcs_cur = fn.arcs()[cur];
      for (std::uint32_t i = 0; i < arcs_cur.size(); ++i) {
        const Arc& a = arcs_cur[i];
        // Consumed flow on a forward arc appears as capacity on its
        // residual reverse arc at a.to.
        if (!a.forward) continue;
        const Arc& rev = fn.arcs()[a.to][a.rev];
        std::int32_t flow = rev.cap - used[cur][i];
        if (flow <= 0) continue;
        used[cur][i] += 1;
        cur = a.to;
        advanced = true;
        break;
      }
      assert(advanced && "flow decomposition got stuck");
      if (!advanced) return paths;
      if (cur % 2 == 0) {  // arrived at some x_in
        const NodeIndex x = cur / 2;
        if (x != dst) {
          path.push_back(x);
          cur = out_of(x);
        }
      }
    }
    path.push_back(dst);
    paths.push_back(std::move(path));
  }
  return paths;
}

EdgeSet multicast_tree(const Graph& g, NodeIndex src, const std::vector<NodeIndex>& terminals) {
  const auto sp = dijkstra(g, src);
  EdgeSet edges;
  std::vector<bool> in_tree(g.num_nodes(), false);
  in_tree[src] = true;
  for (const NodeIndex t : terminals) {
    if (sp.dist[t] == kInf) continue;  // unreachable terminal: skip
    for (NodeIndex v = t; !in_tree[v]; v = sp.parent[v]) {
      in_tree[v] = true;
      edges.push_back(sp.parent_edge[v]);
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

EdgeSet path_edges(const Graph& g, const Path& p) {
  EdgeSet out;
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    const EdgeIndex e = g.find_edge(p[i], p[i + 1]);
    assert(e != kNoEdge);
    out.push_back(e);
  }
  return out;
}

EdgeSet union_edges(const EdgeSet& a, const EdgeSet& b) {
  EdgeSet out = a;
  out.insert(out.end(), b.begin(), b.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() == 0) return true;
  std::vector<bool> seen(g.num_nodes(), false);
  std::queue<NodeIndex> q;
  q.push(0);
  seen[0] = true;
  std::size_t visited = 1;
  while (!q.empty()) {
    const NodeIndex u = q.front();
    q.pop();
    for (const auto& [v, e] : g.neighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        ++visited;
        q.push(v);
      }
    }
  }
  return visited == g.num_nodes();
}

namespace {

struct ArticulationState {
  const Graph& g;
  std::vector<int> disc;
  std::vector<int> low;
  std::vector<bool> is_cut;
  int timer = 0;

  explicit ArticulationState(const Graph& graph)
      : g{graph},
        disc(graph.num_nodes(), -1),
        low(graph.num_nodes(), 0),
        is_cut(graph.num_nodes(), false) {}

  void dfs(NodeIndex u, NodeIndex parent) {
    disc[u] = low[u] = timer++;
    int children = 0;
    for (const auto& [v, e] : g.neighbors(u)) {
      if (v == parent) continue;
      if (disc[v] != -1) {
        low[u] = std::min(low[u], disc[v]);
        continue;
      }
      ++children;
      dfs(v, u);
      low[u] = std::min(low[u], low[v]);
      if (parent != kNoNode && low[v] >= disc[u]) is_cut[u] = true;
    }
    if (parent == kNoNode && children > 1) is_cut[u] = true;
  }
};

}  // namespace

std::vector<NodeIndex> articulation_points(const Graph& g) {
  ArticulationState st{g};
  for (NodeIndex u = 0; u < g.num_nodes(); ++u) {
    if (st.disc[u] == -1) st.dfs(u, kNoNode);
  }
  std::vector<NodeIndex> out;
  for (NodeIndex u = 0; u < g.num_nodes(); ++u) {
    if (st.is_cut[u]) out.push_back(u);
  }
  return out;
}

bool is_biconnected(const Graph& g) {
  return g.num_nodes() >= 2 && is_connected(g) && articulation_points(g).empty();
}

bool reachable_in_subgraph(const Graph& g, const EdgeSet& edges, NodeIndex src, NodeIndex dst,
                           const std::vector<bool>& disabled) {
  std::vector<std::vector<NodeIndex>> adj(g.num_nodes());
  for (const EdgeIndex e : edges) {
    const auto& ed = g.edge(e);
    adj[ed.u].push_back(ed.v);
    adj[ed.v].push_back(ed.u);
  }
  const auto is_disabled = [&](NodeIndex x) { return x < disabled.size() && disabled[x]; };
  if (is_disabled(src) || is_disabled(dst)) return false;
  std::vector<bool> seen(g.num_nodes(), false);
  std::queue<NodeIndex> q;
  q.push(src);
  seen[src] = true;
  while (!q.empty()) {
    const NodeIndex u = q.front();
    q.pop();
    if (u == dst) return true;
    for (const NodeIndex v : adj[u]) {
      if (!seen[v] && !is_disabled(v)) {
        seen[v] = true;
        q.push(v);
      }
    }
  }
  return false;
}

}  // namespace son::topo
