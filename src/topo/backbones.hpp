// Built-in backbone maps and the dual-ISP underlay builder.
//
// Realizes the paper's Fig. 1 "Resilient Network Architecture": overlay
// nodes in well-provisioned data centers, each multihomed to two ISP
// backbones whose fiber follows the same city-to-city geography but is
// physically independent (a fiber cut in one provider never affects the
// other). Overlay links are designed short (~10 ms) per §II-A.
#pragma once

#include <utility>
#include <vector>

#include "net/internet.hpp"
#include "topo/geo.hpp"
#include "topo/graph.hpp"

namespace son::topo {

struct BackboneMap {
  std::vector<City> cities;
  /// Designed overlay links (index pairs into `cities`). Chosen so hops are
  /// short (~10 ms or less for the continental map).
  std::vector<std::pair<NodeIndex, NodeIndex>> edges;
};

/// 12 US data-center cities, 19 overlay links, ~2-11 ms per link.
[[nodiscard]] BackboneMap continental_us();

/// 10 global sites; transoceanic links are necessarily longer (the paper:
/// "about 150ms is sufficient to reach nearly any point on the globe").
[[nodiscard]] BackboneMap global_sites();

/// The overlay topology as a weighted graph; weights are one-way propagation
/// latency in milliseconds derived from geography.
[[nodiscard]] Graph overlay_graph(const BackboneMap& map, double route_inflation = 1.3);

struct DualIspOptions {
  double bandwidth_bps = 10e9;
  sim::Duration access_delay = sim::Duration::microseconds(250);
  sim::Duration max_queue_delay = sim::Duration::milliseconds(100);
  /// Steady Bernoulli loss applied to every backbone link direction.
  double backbone_loss = 0.0;
  double route_inflation = 1.3;
  /// Edges (by index into map.edges) each ISP does NOT build, to make the
  /// two backbones less-than-identical as in real deployments.
  std::vector<std::size_t> skip_in_isp_a;
  std::vector<std::size_t> skip_in_isp_b;
  /// Cities (by index) where the two ISPs peer. Empty = no peering (strict
  /// provider separation).
  std::vector<NodeIndex> peering_cities;
};

struct BuiltUnderlay {
  net::IspId isp_a = net::kInvalidIsp;
  net::IspId isp_b = net::kInvalidIsp;
  /// One host per city (the machine an overlay node runs on), multihomed to
  /// both ISPs: attachment 0 = ISP A, attachment 1 = ISP B (when present).
  std::vector<net::HostId> hosts;
  std::vector<net::RouterId> routers_a;
  std::vector<net::RouterId> routers_b;
  /// Backbone link ids per map edge; kInvalidLink where an ISP skipped it.
  std::vector<net::LinkId> links_a;
  std::vector<net::LinkId> links_b;
};

/// Instantiates the map as two parallel ISP backbones in `internet`, with one
/// multihomed host per city.
BuiltUnderlay build_dual_isp(net::Internet& internet, const BackboneMap& map,
                             const DualIspOptions& opts);

}  // namespace son::topo
