// Overlay topology design (§II-A).
//
// "To exploit physical disjointness available in the underlying networks,
// the overlay node locations and connections are selected strategically...
// The overlay topology can then be designed in accordance with the
// underlying network topology, based on available ISP backbone maps.
// Overlay links are designed to be short (on the order of 10ms)...
// Because short overlay links are preferred, it is not normally advised to
// build a continent- or global-sized overlay as a clique."
//
// design_overlay() starts from the candidate fiber routes the providers
// offer, keeps only short links, and prunes toward a sparse topology that
// stays biconnected (no single site can partition it) and keeps every
// pair's path within a latency-stretch bound of the dense graph — i.e. it
// produces exactly the kind of map the built-in continental_us() hand-made.
#pragma once

#include <optional>

#include "topo/geo.hpp"
#include "topo/graph.hpp"

namespace son::topo {

struct DesignOptions {
  /// Links longer than this are not built (the ~10 ms rule; a little slack
  /// for geography). Ignored for candidates explicitly provided.
  double max_link_ms = 12.0;
  /// Abort pruning before any node drops below this degree.
  std::size_t min_degree = 2;
  /// Hard cap from the 64-bit source-routing mask.
  std::size_t max_links = 64;
  /// A pruned topology may not stretch any pair's shortest path beyond this
  /// factor of the dense candidate graph's distance.
  double max_stretch = 1.35;
  double route_inflation = 1.3;
};

struct DesignResult {
  /// Selected overlay links as city-index pairs, with one-way latencies.
  std::vector<std::pair<NodeIndex, NodeIndex>> edges;
  Graph graph;  // the same edges as a weighted graph (ms)
  /// Worst pairwise stretch of the result vs the dense candidate graph.
  double achieved_stretch = 1.0;
};

/// Designs an overlay topology over `cities`. Candidates default to every
/// pair within max_link_ms; pass `fiber_routes` to restrict to city pairs
/// the providers actually have fiber between (§II-A: "based on available
/// ISP backbone maps").
[[nodiscard]] std::optional<DesignResult> design_overlay(
    const std::vector<City>& cities, const DesignOptions& opts,
    const std::vector<std::pair<NodeIndex, NodeIndex>>* fiber_routes = nullptr);

}  // namespace son::topo
