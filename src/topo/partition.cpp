#include "topo/partition.hpp"

#include "sim/check.hpp"

namespace son::topo {

net::Internet::ShardPlan partition_by_site(const net::Internet& internet,
                                           const BuiltUnderlay& u) {
  net::Internet::ShardPlan plan;
  plan.num_partitions = u.hosts.size();
  plan.router_partition.assign(internet.num_routers(), 0);
  plan.host_partition.assign(internet.num_hosts(), 0);
  for (std::uint32_t c = 0; c < u.hosts.size(); ++c) {
    SON_DCHECK(u.hosts[c] < plan.host_partition.size() &&
                   u.routers_a[c] < plan.router_partition.size() &&
                   u.routers_b[c] < plan.router_partition.size(),
               "underlay ids out of range for this internet");
    plan.host_partition[u.hosts[c]] = c;
    plan.router_partition[u.routers_a[c]] = c;
    plan.router_partition[u.routers_b[c]] = c;
  }
  return plan;
}

}  // namespace son::topo
