// Partition-by-site assignment for the sharded kernel.
//
// The natural cut for the paper's deployment model: each city (data center
// site) becomes one partition, holding its overlay host and its router in
// each ISP backbone. Every access link is then partition-internal, only
// city-to-city fiber crosses partitions, and the crossing delay (>= ~2 ms on
// the continental map) becomes the conservative lookahead — orders of
// magnitude above the event granularity, which is what makes the parallelism
// pay off.
#pragma once

#include "net/internet.hpp"
#include "topo/backbones.hpp"

namespace son::topo {

/// One partition per city: hosts[c], routers_a[c], routers_b[c] → partition c.
/// The plan is a pure function of the built topology — feeding it to
/// Internet::enable_sharding gives results independent of the worker count.
[[nodiscard]] net::Internet::ShardPlan partition_by_site(const net::Internet& internet,
                                                         const BuiltUnderlay& u);

}  // namespace son::topo
