// Geography helpers: city coordinates and fiber propagation latency.
//
// The paper's latency arithmetic ("overlay links on the order of 10ms",
// "propagation delay to cross a continent is on the order of 35-40ms") is
// grounded in real geography; we derive link latencies from great-circle
// distances with a route-inflation factor, matching those figures.
#pragma once

#include <string>

#include "sim/time.hpp"

namespace son::topo {

struct City {
  std::string name;
  double lat_deg = 0.0;
  double lon_deg = 0.0;
};

/// Great-circle distance (haversine), kilometers.
[[nodiscard]] double great_circle_km(const City& a, const City& b);

/// One-way propagation latency over fiber following a realistic (non-
/// geodesic) route. Light in fiber travels ~200 km/ms; `route_inflation`
/// accounts for fiber paths not following great circles (1.0 = ideal).
[[nodiscard]] sim::Duration fiber_latency(const City& a, const City& b,
                                          double route_inflation = 1.3);

}  // namespace son::topo
