#include "topo/dissemination.hpp"

#include <algorithm>

namespace son::topo {

EdgeSet k_disjoint_edges(const Graph& g, NodeIndex src, NodeIndex dst, std::size_t k) {
  EdgeSet out;
  for (const Path& p : k_node_disjoint_paths(g, src, dst, k)) {
    out = union_edges(out, path_edges(g, p));
  }
  return out;
}

EdgeSet all_edges(const Graph& g) {
  EdgeSet out(g.num_edges());
  for (EdgeIndex e = 0; e < g.num_edges(); ++e) out[e] = e;
  return out;
}

namespace {

/// Adds up to `extra` additional adjacent edges of `pivot` to `edges`,
/// connecting each new attachment node back toward `anchor` by a shortest
/// path that avoids `pivot` (so the added redundancy does not just re-merge
/// at the node it is meant to protect).
void add_fan(const Graph& g, NodeIndex pivot, NodeIndex anchor, std::size_t extra,
             EdgeSet& edges) {
  if (extra == 0) return;
  std::vector<bool> edge_in(g.num_edges(), false);
  for (const EdgeIndex e : edges) edge_in[e] = true;

  // Candidate fan edges at the pivot, cheapest neighbors first.
  auto nbrs = g.neighbors(pivot);
  std::sort(nbrs.begin(), nbrs.end(), [&](const auto& a, const auto& b) {
    return g.edge(a.second).weight < g.edge(b.second).weight;
  });

  std::vector<bool> avoid(g.num_nodes(), false);
  avoid[pivot] = true;
  std::size_t added = 0;
  for (const auto& [nbr, e] : nbrs) {
    if (added >= extra) break;
    if (edge_in[e]) continue;
    const auto connect = shortest_path(g, anchor, nbr, avoid);
    if (!connect) continue;
    edges.push_back(e);
    edge_in[e] = true;
    for (const EdgeIndex ce : path_edges(g, *connect)) {
      if (!edge_in[ce]) {
        edges.push_back(ce);
        edge_in[ce] = true;
      }
    }
    ++added;
  }
}

}  // namespace

EdgeSet dissemination_graph(const Graph& g, NodeIndex src, NodeIndex dst,
                            const DissemOptions& opts) {
  EdgeSet edges = k_disjoint_edges(g, src, dst, 2);
  add_fan(g, dst, src, opts.dst_fanin, edges);
  add_fan(g, src, dst, opts.src_fanout, edges);
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

}  // namespace son::topo
