#include "topo/geo.hpp"

#include <cmath>

namespace son::topo {

namespace {
constexpr double kEarthRadiusKm = 6371.0;
constexpr double kDegToRad = 3.14159265358979323846 / 180.0;
// Speed of light in fiber (refractive index ~1.47): ~204 km per ms.
constexpr double kFiberKmPerMs = 204.0;
}  // namespace

double great_circle_km(const City& a, const City& b) {
  const double lat1 = a.lat_deg * kDegToRad;
  const double lat2 = b.lat_deg * kDegToRad;
  const double dlat = (b.lat_deg - a.lat_deg) * kDegToRad;
  const double dlon = (b.lon_deg - a.lon_deg) * kDegToRad;
  const double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) * std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::sqrt(h));
}

sim::Duration fiber_latency(const City& a, const City& b, double route_inflation) {
  const double km = great_circle_km(a, b) * route_inflation;
  return sim::Duration::from_millis_f(km / kFiberKmPerMs);
}

}  // namespace son::topo
