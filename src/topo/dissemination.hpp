// Dissemination-graph construction (paper §V-A, reference [2]).
//
// A dissemination graph is an arbitrary subgraph of the overlay topology over
// which every packet of a flow is flooded (with de-duplication at each node).
// "In contrast to disjoint paths, which add redundancy uniformly throughout
// the network, dissemination graphs can be tailored based on current network
// conditions to add targeted redundancy in problematic areas of the network."
//
// Following reference [2]'s finding that most packet loss clusters around the
// source or destination, the tailored graphs here are *source-problem* and
// *destination-problem* graphs: two node-disjoint paths plus extra fan-out at
// the source / fan-in at the destination.
#pragma once

#include "topo/graph.hpp"

namespace son::topo {

/// Union of edges of up to k min-cost node-disjoint paths.
[[nodiscard]] EdgeSet k_disjoint_edges(const Graph& g, NodeIndex src, NodeIndex dst,
                                       std::size_t k);

/// All edges of the graph (constrained flooding).
[[nodiscard]] EdgeSet all_edges(const Graph& g);

struct DissemOptions {
  /// Extra neighbors of the source to fan out through (beyond the 2 disjoint
  /// paths already leaving the source).
  std::size_t src_fanout = 0;
  /// Extra neighbors of the destination to fan in from.
  std::size_t dst_fanin = 2;
};

/// Builds a targeted dissemination graph: 2 node-disjoint paths, plus up to
/// `dst_fanin` additional last-hop edges into the destination (each connected
/// back to the source by a shortest path avoiding the destination), plus up
/// to `src_fanout` additional first-hop edges out of the source (each
/// connected on to the destination by a shortest path avoiding the source).
[[nodiscard]] EdgeSet dissemination_graph(const Graph& g, NodeIndex src, NodeIndex dst,
                                          const DissemOptions& opts);

}  // namespace son::topo
