// Small undirected weighted graph plus the routing algorithms the overlay
// needs: shortest paths, k node-disjoint paths, and multicast trees.
//
// Overlay topologies are tiny (the paper: "a few tens of well situated
// overlay nodes"), so everything here optimizes for clarity and determinism
// over asymptotics.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/hot.hpp"

namespace son::topo {

using NodeIndex = std::uint32_t;
using EdgeIndex = std::uint32_t;
inline constexpr NodeIndex kNoNode = static_cast<NodeIndex>(-1);
inline constexpr EdgeIndex kNoEdge = static_cast<EdgeIndex>(-1);

class Graph {
 public:
  struct Edge {
    NodeIndex u;
    NodeIndex v;
    double weight;
  };

  explicit Graph(std::size_t num_nodes) : adj_(num_nodes) {}

  /// Adds an undirected edge; returns its index. Weight must be >= 0.
  EdgeIndex add_edge(NodeIndex u, NodeIndex v, double weight);
  void set_weight(EdgeIndex e, double weight) { edges_.at(e).weight = weight; }

  [[nodiscard]] std::size_t num_nodes() const { return adj_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }
  [[nodiscard]] const Edge& edge(EdgeIndex e) const { return edges_.at(e); }
  /// (neighbor, edge) pairs for node u.
  [[nodiscard]] const std::vector<std::pair<NodeIndex, EdgeIndex>>& neighbors(
      NodeIndex u) const {
    return adj_.at(u);
  }
  [[nodiscard]] EdgeIndex find_edge(NodeIndex u, NodeIndex v) const;
  [[nodiscard]] NodeIndex other_end(EdgeIndex e, NodeIndex from) const;

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<std::pair<NodeIndex, EdgeIndex>>> adj_;
};

/// A path as a node sequence (front() == src, back() == dst).
using Path = std::vector<NodeIndex>;
/// A set of edges forming a subgraph (e.g. a dissemination graph).
using EdgeSet = std::vector<EdgeIndex>;

struct ShortestPaths {
  std::vector<double> dist;        // infinity if unreachable
  std::vector<NodeIndex> parent;   // kNoNode for src / unreachable
  std::vector<EdgeIndex> parent_edge;
};

/// Single-source Dijkstra. `disabled_nodes` (optional, may be empty) are
/// treated as absent — used for routing around failed/compromised nodes.
[[nodiscard]] ShortestPaths dijkstra(const Graph& g, NodeIndex src,
                                     const std::vector<bool>& disabled_nodes = {});

/// Incremental single-source shortest paths (iSPF, as in production
/// link-state routers): maintains dist/parent/parent_edge from a fixed
/// source across edge *weight* changes (the structure is fixed; a +infinity
/// weight models an absent/down link, which is how the overlay's TopologyDb
/// encodes failures). update() repairs only the affected part of the tree —
/// subtrees hanging off increased tree edges are detached and re-attached by
/// a Dijkstra seeded at the detach frontier plus the decreased edges — so an
/// LSA that changes one link costs work proportional to the affected
/// subtree, not to the graph. The 4-ary heap and every scratch vector are
/// reused across calls: steady-state updates allocate nothing.
///
/// Determinism contract: after any sequence of update() calls the three
/// result arrays are bit-identical to a fresh dijkstra() on the same
/// weights (graphs with strictly positive finite weights; pinned by the
/// randomized-churn property tests). Equal-cost ties resolve to the parent
/// minimizing (dist[parent], parent, edge) — provably the relaxation winner
/// of a full run when weights are positive.
class SptEngine {
 public:
  /// Full rebuild — plain Dijkstra from `src` into the reused buffers.
  void full_compute(const Graph& g, NodeIndex src);

  /// Installs an externally computed dijkstra() result as the current tree
  /// (used by the pre-incremental baseline emulation in Router).
  void adopt(const Graph& g, NodeIndex src, ShortestPaths sp);

  /// Repairs the tree after the weights of `changed` (deduplicated) were
  /// already updated in `g`. Requires a prior full_compute() against a
  /// graph with the same structure and source.
  SON_HOT void update(const Graph& g, const EdgeSet& changed);

  [[nodiscard]] bool built() const { return src_ != kNoNode; }
  [[nodiscard]] NodeIndex source() const { return src_; }
  [[nodiscard]] const std::vector<double>& dist() const { return dist_; }
  [[nodiscard]] const std::vector<NodeIndex>& parent() const { return parent_; }
  [[nodiscard]] const std::vector<EdgeIndex>& parent_edge() const { return parent_edge_; }
  /// Nodes re-settled by the last update() (diagnostics / benchmarks).
  [[nodiscard]] std::size_t last_update_touched() const { return touched_.size(); }

 private:
  [[nodiscard]] bool heap_less(NodeIndex a, NodeIndex b) const;
  [[nodiscard]] bool tie_better(NodeIndex u, EdgeIndex e, NodeIndex v) const;
  void heap_sift_up(std::size_t i);
  void heap_sift_down(std::size_t i);
  void heap_push_or_decrease(NodeIndex v);
  NodeIndex heap_pop();
  void run_heap(const Graph& g);
  void canonicalize_parent(const Graph& g, NodeIndex v);

  NodeIndex src_ = kNoNode;
  std::vector<double> dist_;
  std::vector<NodeIndex> parent_;
  std::vector<EdgeIndex> parent_edge_;

  // Reused scratch: 4-ary min-heap on (dist_, node) with position tracking
  // for decrease-key, the subtree-detach worklist, and the touched set.
  std::vector<NodeIndex> heap_;
  std::vector<std::uint32_t> heap_pos_;
  std::vector<NodeIndex> detach_roots_;
  std::vector<NodeIndex> detached_list_;
  std::vector<std::uint8_t> detached_;  // byte flags: no bit-RMW in the hot BFS
  std::vector<NodeIndex> touched_;
};

/// Extracts src→dst path from a Dijkstra result; nullopt if unreachable.
[[nodiscard]] std::optional<Path> extract_path(const ShortestPaths& sp, NodeIndex src,
                                               NodeIndex dst);

[[nodiscard]] std::optional<Path> shortest_path(const Graph& g, NodeIndex src, NodeIndex dst,
                                                const std::vector<bool>& disabled_nodes = {});

[[nodiscard]] double path_cost(const Graph& g, const Path& p);

/// Up to k mutually node-disjoint (except endpoints) src→dst paths with
/// minimum total weight, via min-cost unit-capacity flow on the node-split
/// graph (Suurballe generalized to k and node-disjointness). Returns fewer
/// than k paths if the graph's connectivity is lower.
[[nodiscard]] std::vector<Path> k_node_disjoint_paths(const Graph& g, NodeIndex src,
                                                      NodeIndex dst, std::size_t k);

/// Edges of the shortest-path tree from `src` pruned to reach `terminals`.
/// This is the overlay's multicast dissemination tree.
[[nodiscard]] EdgeSet multicast_tree(const Graph& g, NodeIndex src,
                                     const std::vector<NodeIndex>& terminals);

/// Converts a node path to the edge set it traverses.
[[nodiscard]] EdgeSet path_edges(const Graph& g, const Path& p);

/// Union of edge sets, deduplicated, sorted.
[[nodiscard]] EdgeSet union_edges(const EdgeSet& a, const EdgeSet& b);

/// True if dst is reachable from src using only `edges`, with
/// `disabled_nodes` removed (endpoints may not be disabled).
[[nodiscard]] bool reachable_in_subgraph(const Graph& g, const EdgeSet& edges, NodeIndex src,
                                         NodeIndex dst, const std::vector<bool>& disabled_nodes);

/// True if every node can reach every other (ignoring edge weights).
[[nodiscard]] bool is_connected(const Graph& g);

/// Articulation points (cut vertices) via Tarjan's low-link algorithm.
/// A graph with none (and connected, n >= 3) is biconnected: no single node
/// failure can partition it — the resilience bar for overlay topologies.
[[nodiscard]] std::vector<NodeIndex> articulation_points(const Graph& g);

[[nodiscard]] bool is_biconnected(const Graph& g);

}  // namespace son::topo
