// Small undirected weighted graph plus the routing algorithms the overlay
// needs: shortest paths, k node-disjoint paths, and multicast trees.
//
// Overlay topologies are tiny (the paper: "a few tens of well situated
// overlay nodes"), so everything here optimizes for clarity and determinism
// over asymptotics.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace son::topo {

using NodeIndex = std::uint32_t;
using EdgeIndex = std::uint32_t;
inline constexpr NodeIndex kNoNode = static_cast<NodeIndex>(-1);
inline constexpr EdgeIndex kNoEdge = static_cast<EdgeIndex>(-1);

class Graph {
 public:
  struct Edge {
    NodeIndex u;
    NodeIndex v;
    double weight;
  };

  explicit Graph(std::size_t num_nodes) : adj_(num_nodes) {}

  /// Adds an undirected edge; returns its index. Weight must be >= 0.
  EdgeIndex add_edge(NodeIndex u, NodeIndex v, double weight);
  void set_weight(EdgeIndex e, double weight) { edges_.at(e).weight = weight; }

  [[nodiscard]] std::size_t num_nodes() const { return adj_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }
  [[nodiscard]] const Edge& edge(EdgeIndex e) const { return edges_.at(e); }
  /// (neighbor, edge) pairs for node u.
  [[nodiscard]] const std::vector<std::pair<NodeIndex, EdgeIndex>>& neighbors(
      NodeIndex u) const {
    return adj_.at(u);
  }
  [[nodiscard]] EdgeIndex find_edge(NodeIndex u, NodeIndex v) const;
  [[nodiscard]] NodeIndex other_end(EdgeIndex e, NodeIndex from) const;

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<std::pair<NodeIndex, EdgeIndex>>> adj_;
};

/// A path as a node sequence (front() == src, back() == dst).
using Path = std::vector<NodeIndex>;
/// A set of edges forming a subgraph (e.g. a dissemination graph).
using EdgeSet = std::vector<EdgeIndex>;

struct ShortestPaths {
  std::vector<double> dist;        // infinity if unreachable
  std::vector<NodeIndex> parent;   // kNoNode for src / unreachable
  std::vector<EdgeIndex> parent_edge;
};

/// Single-source Dijkstra. `disabled_nodes` (optional, may be empty) are
/// treated as absent — used for routing around failed/compromised nodes.
[[nodiscard]] ShortestPaths dijkstra(const Graph& g, NodeIndex src,
                                     const std::vector<bool>& disabled_nodes = {});

/// Extracts src→dst path from a Dijkstra result; nullopt if unreachable.
[[nodiscard]] std::optional<Path> extract_path(const ShortestPaths& sp, NodeIndex src,
                                               NodeIndex dst);

[[nodiscard]] std::optional<Path> shortest_path(const Graph& g, NodeIndex src, NodeIndex dst,
                                                const std::vector<bool>& disabled_nodes = {});

[[nodiscard]] double path_cost(const Graph& g, const Path& p);

/// Up to k mutually node-disjoint (except endpoints) src→dst paths with
/// minimum total weight, via min-cost unit-capacity flow on the node-split
/// graph (Suurballe generalized to k and node-disjointness). Returns fewer
/// than k paths if the graph's connectivity is lower.
[[nodiscard]] std::vector<Path> k_node_disjoint_paths(const Graph& g, NodeIndex src,
                                                      NodeIndex dst, std::size_t k);

/// Edges of the shortest-path tree from `src` pruned to reach `terminals`.
/// This is the overlay's multicast dissemination tree.
[[nodiscard]] EdgeSet multicast_tree(const Graph& g, NodeIndex src,
                                     const std::vector<NodeIndex>& terminals);

/// Converts a node path to the edge set it traverses.
[[nodiscard]] EdgeSet path_edges(const Graph& g, const Path& p);

/// Union of edge sets, deduplicated, sorted.
[[nodiscard]] EdgeSet union_edges(const EdgeSet& a, const EdgeSet& b);

/// True if dst is reachable from src using only `edges`, with
/// `disabled_nodes` removed (endpoints may not be disabled).
[[nodiscard]] bool reachable_in_subgraph(const Graph& g, const EdgeSet& edges, NodeIndex src,
                                         NodeIndex dst, const std::vector<bool>& disabled_nodes);

/// True if every node can reach every other (ignoring edge weights).
[[nodiscard]] bool is_connected(const Graph& g);

/// Articulation points (cut vertices) via Tarjan's low-link algorithm.
/// A graph with none (and connected, n >= 3) is biconnected: no single node
/// failure can partition it — the resilience bar for overlay topologies.
[[nodiscard]] std::vector<NodeIndex> articulation_points(const Graph& g);

[[nodiscard]] bool is_biconnected(const Graph& g);

}  // namespace son::topo
