#include "client/traffic.hpp"

namespace son::client {

CbrSender::CbrSender(sim::Simulator& sim, overlay::ClientEndpoint& client, Options opts)
    : sim_{sim},
      client_{client},
      opts_{opts},
      payload_{overlay::make_payload(opts.payload_bytes)} {
  timer_ = sim_.schedule_at(opts_.start, [this]() { tick(); });
}

CbrSender::~CbrSender() { sim_.cancel(timer_); }

void CbrSender::tick() {
  timer_ = sim::kInvalidEventId;
  // Stop contract (pinned by the boundary tests): no packets at or after
  // `stop` — a tick landing exactly on the boundary must not send.
  if (sim_.now() >= opts_.stop) return;
  if (client_.send(opts_.dest, payload_, opts_.spec)) {
    ++sent_;
  } else {
    ++blocked_;
  }
  const auto interval = sim::Duration::from_seconds_f(1.0 / opts_.rate_pps);
  // Don't re-arm for a tick that could only hit the refusal above: output-
  // equivalent, and the simulator never carries a dead wake-up past `stop`.
  if (sim_.now() + interval < opts_.stop) {
    timer_ = sim_.schedule(interval, [this]() { tick(); });
  }
}

PoissonSender::PoissonSender(sim::Simulator& sim, overlay::ClientEndpoint& client,
                             Options opts, sim::Rng rng)
    : sim_{sim},
      client_{client},
      opts_{opts},
      rng_{rng},
      payload_{overlay::make_payload(opts.payload_bytes)} {
  timer_ = sim_.schedule_at(opts_.start, [this]() { tick(); });
}

PoissonSender::~PoissonSender() { sim_.cancel(timer_); }

void PoissonSender::tick() {
  timer_ = sim::kInvalidEventId;
  // Same stop contract as CbrSender: no packets at/after `stop`. The gap is
  // still drawn unconditionally so the RNG stream is identical either way.
  if (sim_.now() >= opts_.stop) return;
  if (client_.send(opts_.dest, payload_, opts_.spec)) {
    ++sent_;
  } else {
    ++blocked_;
  }
  const auto gap = sim::Duration::from_seconds_f(rng_.exponential(1.0 / opts_.rate_pps));
  if (sim_.now() + gap < opts_.stop) {
    timer_ = sim_.schedule(gap, [this]() { tick(); });
  }
}

MeasuringSink::MeasuringSink(overlay::ClientEndpoint& client) {
  client.set_handler([this](const overlay::Message& m, sim::Duration latency) {
    if (!seen_.insert(m.hdr.origin_id).second) {
      ++duplicates_;
      return;
    }
    ++received_;
    highest_seq_ = std::max(highest_seq_, m.hdr.flow_seq);
    latencies_ms_.add(latency.to_millis_f());
    if (extra_) extra_(m, latency);
  });
}

double MeasuringSink::delivered_within(std::uint64_t sent, sim::Duration deadline) const {
  if (sent == 0) return 0.0;
  const double frac_of_received = latencies_ms_.fraction_at_most(deadline.to_millis_f());
  return frac_of_received * static_cast<double>(received_) / static_cast<double>(sent);
}

double MeasuringSink::delivery_ratio(std::uint64_t sent) const {
  if (sent == 0) return 0.0;
  return static_cast<double>(received_) / static_cast<double>(sent);
}

}  // namespace son::client
