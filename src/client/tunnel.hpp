// Packet interception / tunneling gateway.
//
// §II-B: applications can "use seamless packet interception techniques that
// allow unmodified applications to take advantage of overlay services", and
// "a client may run on the same physical machine as the overlay node
// software or on a remote machine."
//
// A TunnelGateway runs next to an overlay node. Unmodified applications on
// remote hosts send plain underlay datagrams at the gateway (in a real
// deployment a transparent redirect/divert rule delivers them there); the
// gateway classifies each datagram into a configured intercept rule, wraps
// the bytes into an overlay flow with the rule's services, and the egress
// gateway re-emits a plain datagram to the real destination host. The
// application never knows the overlay exists.
#pragma once

#include <map>

#include "overlay/node.hpp"

namespace son::client {

class TunnelGateway {
 public:
  /// An intercept rule, keyed by the application's service port (the way a
  /// transparent proxy port-map is provisioned): datagrams redirected to
  /// this gateway with dst_port == service_port are carried over the overlay
  /// to `egress_node`, whose gateway re-emits them at the true destination.
  struct Rule {
    std::uint16_t service_port = 0;
    net::HostId app_dst_host = net::kInvalidHost;
    std::uint16_t app_dst_port = 0;
    overlay::NodeId egress_node = overlay::kInvalidNode;
    overlay::ServiceSpec service;
  };

  /// The gateway uses overlay virtual port `tunnel_port` for gateway-to-
  /// gateway flows (all gateways of one deployment share it). Each add_rule
  /// provisions the intercept: the rule's service port is bound on this
  /// node's host, so redirected app datagrams land in the gateway.
  TunnelGateway(net::Internet& internet, overlay::OverlayNode& node,
                overlay::VirtualPort tunnel_port = 9001);

  void add_rule(const Rule& rule);

  struct Stats {
    std::uint64_t intercepted = 0;
    std::uint64_t no_rule = 0;
    std::uint64_t tunneled_in = 0;   // arrived over the overlay
    std::uint64_t reemitted = 0;     // handed back to the underlay
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct TunnelHeader {
    net::HostId app_src = net::kInvalidHost;
    std::uint16_t app_src_port = 0;
    net::HostId app_dst = net::kInvalidHost;
    std::uint16_t app_dst_port = 0;
  };
  static constexpr std::size_t kHeaderBytes = 12;

  void on_app_datagram(const net::Datagram& d);
  void on_tunnel_message(const overlay::Message& m);

  net::Internet& internet_;
  overlay::OverlayNode& node_;
  overlay::ClientEndpoint& endpoint_;
  std::map<std::uint16_t, Rule> rules_;  // by service port
  Stats stats_;
};

}  // namespace son::client
