#include "client/tunnel.hpp"

namespace son::client {

TunnelGateway::TunnelGateway(net::Internet& internet, overlay::OverlayNode& node,
                             overlay::VirtualPort tunnel_port)
    : internet_{internet}, node_{node}, endpoint_{node.connect(tunnel_port)} {
  endpoint_.set_handler(
      [this](const overlay::Message& m, sim::Duration) { on_tunnel_message(m); });
}

void TunnelGateway::add_rule(const Rule& rule) {
  rules_[rule.service_port] = rule;
  internet_.bind(node_.host(), rule.service_port,
                 [this](const net::Datagram& d) { on_app_datagram(d); });
}

void TunnelGateway::on_app_datagram(const net::Datagram& d) {
  // The redirect delivered the app's datagram here with its service port in
  // dst_port; the rule supplies the true destination and overlay services.
  const auto it = rules_.find(d.dst_port);
  if (it == rules_.end()) {
    ++stats_.no_rule;
    return;
  }
  const Rule& rule = it->second;
  ++stats_.intercepted;

  TunnelHeader h;
  h.app_src = d.src;
  h.app_src_port = d.src_port;
  h.app_dst = rule.app_dst_host;
  h.app_dst_port = rule.app_dst_port;

  std::vector<std::uint8_t> bytes;
  bytes.reserve(kHeaderBytes + 64);
  const auto put32 = [&bytes](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  const auto put16 = [&bytes](std::uint16_t v) {
    for (int i = 0; i < 2; ++i) bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  put32(h.app_src);
  put16(h.app_src_port);
  put32(h.app_dst);
  put16(h.app_dst_port);
  if (const auto* body = d.payload.get<std::vector<std::uint8_t>>()) {
    bytes.insert(bytes.end(), body->begin(), body->end());
  }
  endpoint_.send(overlay::Destination::unicast(rule.egress_node, endpoint_.port()),
                 overlay::make_payload(std::move(bytes)), rule.service);
}

void TunnelGateway::on_tunnel_message(const overlay::Message& m) {
  if (!m.payload || m.payload->size() < kHeaderBytes) return;
  ++stats_.tunneled_in;
  const auto& b = *m.payload;
  const auto get32 = [&b](std::size_t off) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{b[off + static_cast<std::size_t>(i)]} << (8 * i);
    return v;
  };
  const auto get16 = [&b](std::size_t off) {
    return static_cast<std::uint16_t>(b[off] | (std::uint16_t{b[off + 1]} << 8));
  };
  TunnelHeader h;
  h.app_src = get32(0);
  h.app_src_port = get16(4);
  h.app_dst = get32(6);
  h.app_dst_port = get16(10);

  net::Datagram out;
  out.src = node_.host();  // the egress gateway re-emits locally
  out.dst = h.app_dst;
  out.src_port = h.app_src_port;
  out.dst_port = h.app_dst_port;
  out.size_bytes = static_cast<std::uint32_t>(b.size());
  out.payload = std::vector<std::uint8_t>(b.begin() + kHeaderBytes, b.end());
  internet_.send(std::move(out));
  ++stats_.reemitted;
}

}  // namespace son::client
