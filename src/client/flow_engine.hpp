// Flyweight aggregate client model: millions of concurrent flows per trial.
//
// The per-object senders in traffic.hpp carry one heap object and one
// simulator timer per flow — structurally wrong past ~10^4 flows. FlowEngine
// replaces them with per-edge-site flow TABLES in SoA layout (parallel
// arrays of next-fire time, inter-packet gap, remaining packet budget,
// service class and destination index; no per-flow allocation, no per-flow
// sim::EventId) driven by ONE calendar/bucket-wheel timer per engine. Flow
// populations are either built explicitly (add_flow) or drawn as batched
// arrivals from a configurable arrival-rate curve (constant, diurnal wave,
// flash-crowd spike) with exponential flow lifetimes.
//
// Sends are injected through the existing overlay::ClientEndpoint, so every
// service class (reliable / timely / intrusion-tolerant), the routing
// schemes, and the sharded kernel work unchanged — deploy one engine per
// partition, scheduled on that partition's simulator, with RNG from
// sim::component_stream.
//
// Determinism contract: with `legacy_identity` set and an explicit flow
// population, an engine is BIT-IDENTICAL to the equivalent set of
// client::CbrSender / PoissonSender objects (same send instants, same send
// order at shared instants, same flow identities) — pinned by the
// FlowEngine golden-run test. The wheel's scheduling-order stamps reproduce
// the event queue's (time, seq) tie-breaking exactly.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "obs/counters.hpp"
#include "overlay/node.hpp"
#include "sim/hot.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace son::client {

/// Arrival-rate curve shaping flow activations over the engine's lifetime.
struct LoadCurve {
  enum class Kind : std::uint8_t { kConstant = 0, kDiurnal, kFlashCrowd };
  Kind kind = Kind::kConstant;

  /// kDiurnal: arrival rate swings base * (1 + amplitude * sin(2πt/period)).
  sim::Duration period = sim::Duration::seconds(60);
  double amplitude = 0.5;

  /// kFlashCrowd: rate is base outside the spike and base * spike_factor
  /// inside [start + spike_after, start + spike_after + spike_width).
  sim::Duration spike_after = sim::Duration::seconds(1);
  sim::Duration spike_width = sim::Duration::seconds(1);
  double spike_factor = 10.0;

  /// Curve by CLI name ("const", "diurnal", "flash") with the default shape
  /// parameters above; nullopt for unknown names. The exp::Options
  /// --load-curve validation accepts exactly these names.
  [[nodiscard]] static std::optional<LoadCurve> from_name(const std::string& name);

  /// Arrival-rate multiplier at `t` for an engine started at `start`.
  [[nodiscard]] double scale_at(sim::TimePoint t, sim::TimePoint start) const;
};

/// One service-class row shared by many flows (flyweight intrinsic state).
struct FlowClass {
  std::string name = "cbr";
  overlay::ServiceSpec spec;
  std::size_t payload_bytes = 200;
  double rate_pps = 1.0;  // per-flow packet rate
  bool poisson = false;   // exponential inter-packet gaps vs fixed (CBR)
  /// Retire the flow after this many packets; 0 = live until its stop time.
  std::uint32_t packet_budget = 0;
  /// Share of curve-driven activations landing in this class.
  double weight = 1.0;
};

struct FlowEngineOptions {
  std::vector<FlowClass> classes;           // >= 1
  std::vector<overlay::Destination> dests;  // >= 1; drawn uniformly per activation
  /// Steady-state population target for curve-driven activation. 0 = the
  /// population is built explicitly with add_flow().
  std::size_t flows = 0;
  LoadCurve curve;
  sim::TimePoint start;
  sim::TimePoint stop;  // no packets and no activations at/after this time
  /// Mean flow lifetime (exponential) for curve-driven churn. zero() = the
  /// initial population lives until `stop` and no later arrivals occur
  /// (only valid with a constant curve — DCHECKed at start()).
  sim::Duration mean_lifetime = sim::Duration::zero();
  /// Batched-arrival cadence: activations are drawn per batch as
  /// Poisson(rate(t) * arrival_batch).
  sim::Duration arrival_batch = sim::Duration::milliseconds(10);
  /// Bucket-wheel geometry; the wheel covers bucket_width * buckets of
  /// lookahead, gaps beyond it spill into the overflow list.
  sim::Duration bucket_width = sim::Duration::milliseconds(1);
  std::size_t buckets = 1024;
  /// Extra flow-slot capacity reserved beyond `flows` so bursty curves do
  /// not grow the tables mid-run. 0 = flows / 2 + 1024.
  std::size_t capacity_headroom = 0;
  /// Send through ClientEndpoint::send() — per-endpoint flow identity and
  /// sequence numbers, bit-compatible with the one-object-per-flow senders.
  /// Default (false) uses the flyweight send_flow() path, which keeps zero
  /// per-flow state in the endpoint: every flow gets a distinct tag and the
  /// engine holds its sequence numbers in the SoA tables.
  bool legacy_identity = false;
};

class FlowEngine {
 public:
  /// `sim` must be the simulator `client`'s node runs on (in a sharded
  /// deployment: the partition simulator — fixture.node_sim(id)). `rng`
  /// drives activation draws and per-flow gap streams; shard deployments
  /// derive it via sim::component_stream for layout independence.
  FlowEngine(sim::Simulator& sim, overlay::ClientEndpoint& client, FlowEngineOptions opts,
             sim::Rng rng);
  ~FlowEngine();
  FlowEngine(const FlowEngine&) = delete;
  FlowEngine& operator=(const FlowEngine&) = delete;

  /// Explicitly adds one flow: first packet at `first` (clamped to now),
  /// last strictly before `stop`. `rng` seeds the flow's own gap stream
  /// (poisson classes); pass the same fork the equivalent PoissonSender
  /// would get for bit-identical draws. Returns the flow's slot index.
  std::uint32_t add_flow(std::size_t cls, std::size_t dest, sim::TimePoint first,
                         sim::TimePoint stop, sim::Rng rng);

  /// Arms the engine. With opts.flows > 0 the initial population activates
  /// as one batch at opts.start (first fires phase-staggered across one
  /// inter-packet gap per flow) and curve-driven arrival batches follow.
  void start();

  struct Totals {
    std::uint64_t sent = 0;
    std::uint64_t blocked = 0;   // ClientEndpoint refused (backpressure/no route)
    std::uint64_t activated = 0;
    std::uint64_t retired = 0;
  };
  [[nodiscard]] const Totals& totals() const { return totals_; }
  [[nodiscard]] std::uint64_t sent_by_class(std::size_t cls) const {
    return sent_by_class_.at(cls);
  }
  [[nodiscard]] std::uint64_t blocked_by_class(std::size_t cls) const {
    return blocked_by_class_.at(cls);
  }
  [[nodiscard]] std::size_t active_flows() const { return active_; }
  [[nodiscard]] std::size_t peak_active_flows() const { return peak_active_; }

  /// Bytes reserved by the SoA tables, wheel, heap, overflow and free list
  /// (capacities, not sizes): the engine's actual memory-per-flow footprint.
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Test/bench instrumentation: when set, packet emissions call the hook
  /// instead of the endpoint (return value = "admitted", mirroring send()).
  /// Lets tests assert the ticking machinery itself allocates nothing.
  using SendHook = bool (*)(void* ctx, std::size_t cls, const overlay::Destination& dest,
                            sim::TimePoint now);
  void set_send_hook(SendHook hook, void* ctx) {
    hook_ = hook;
    hook_ctx_ = ctx;
  }

 private:
  static constexpr std::uint32_t kNoBudget = 0xffffffffu;
  static constexpr std::int64_t kNever = std::numeric_limits<std::int64_t>::max();

  struct HeapEntry {
    std::int64_t fire_ns;
    std::uint64_t order;  // ties in fire_ns resolve in scheduling order
    std::uint32_t idx;
  };

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx);
  void insert(std::uint32_t idx);           // route to heap / wheel / overflow
  void insert_heap(std::uint32_t idx);
  void advance_to(std::int64_t now_ns);     // collect due buckets into the heap
  void redistribute_overflow();
  [[nodiscard]] std::int64_t peek_next_fire() const;
  void arm();
  SON_HOT void on_timer();
  SON_HOT void process_due();
  SON_HOT void fire_flow(std::uint32_t idx, std::int64_t now_ns);
  void retire(std::uint32_t idx);
  void on_start();
  void on_arrival_tick();
  void activate_batch(std::uint64_t count);
  [[nodiscard]] std::uint64_t poisson_draw(double lam);

  sim::Simulator& sim_;
  overlay::ClientEndpoint& client_;
  FlowEngineOptions opts_;
  sim::Rng rng_;
  std::vector<overlay::Payload> payloads_;  // one per class, shared across sends
  std::vector<double> cum_weights_;

  // --- SoA flow tables (parallel arrays; index = flow slot) ---
  std::vector<std::int64_t> fire_ns_;
  std::vector<std::int64_t> stop_ns_;
  std::vector<std::int64_t> interval_ns_;  // CBR gap; 0 = poisson (mean_gap_s_)
  std::vector<double> mean_gap_s_;
  std::vector<sim::Rng> flow_rng_;
  std::vector<std::uint64_t> order_;  // scheduling-order stamp of fire_ns_
  std::vector<std::uint32_t> seq_;    // next flow_seq - 1 (tagged identity)
  std::vector<std::uint32_t> budget_;
  std::vector<std::uint32_t> tag_;
  std::vector<std::uint8_t> cls_;
  std::vector<std::uint16_t> dest_;

  // --- Calendar queue: heap over collected buckets + wheel + overflow ---
  std::vector<HeapEntry> heap_;              // (fire, order) min-heap
  std::vector<std::vector<std::uint32_t>> wheel_;
  std::vector<std::uint32_t> overflow_;      // fire beyond the wheel horizon
  std::vector<std::uint32_t> free_list_;
  std::int64_t bucket_width_ns_ = 1;
  std::int64_t next_bucket_ = 0;             // absolute bucket number (fire / width)
  std::size_t wheel_count_ = 0;
  std::int64_t overflow_min_ = kNever;
  std::uint64_t order_counter_ = 0;
  std::uint32_t tag_counter_ = 0;

  sim::EventId timer_ = sim::kInvalidEventId;
  std::int64_t armed_at_ = kNever;
  sim::EventId start_timer_ = sim::kInvalidEventId;
  sim::EventId arrival_timer_ = sim::kInvalidEventId;
  bool started_ = false;

  std::size_t active_ = 0;
  std::size_t peak_active_ = 0;
  Totals totals_;
  std::vector<std::uint64_t> sent_by_class_;
  std::vector<std::uint64_t> blocked_by_class_;
  SendHook hook_ = nullptr;
  void* hook_ctx_ = nullptr;
  obs::Counter obs_active_;   // gauge: current live flow count
  obs::Counter obs_blocked_;  // monotonic: sends refused at the endpoint
};

}  // namespace son::client
