// Unix-socket-style veneer over the overlay session interface.
//
// §II-B: "Applications can either connect to the overlay via an API similar
// to the Unix sockets interface or use seamless packet interception
// techniques... Clients are identified by the IP address of the overlay node
// to which they connect and a virtual port, mimicking the IP address plus
// port addressing scheme of the Internet. Anycast and multicast are
// implemented similarly as part of the IP space, just like in IP."
//
// Overlay addresses are 32-bit, with class-D-like ranges for groups:
//   [0x00000000, 0xE0000000)  unicast: the overlay node id
//   [0xE0000000, 0xF0000000)  multicast group
//   [0xF0000000, 0xFFFFFFFF]  anycast group
#pragma once

#include <deque>
#include <optional>
#include <span>

#include "overlay/node.hpp"

namespace son::client {

using OverlayAddress = std::uint32_t;

inline constexpr OverlayAddress kMulticastBase = 0xE0000000;
inline constexpr OverlayAddress kAnycastBase = 0xF0000000;

[[nodiscard]] constexpr OverlayAddress unicast_address(overlay::NodeId node) { return node; }
[[nodiscard]] constexpr OverlayAddress multicast_address(std::uint32_t group) {
  return kMulticastBase | (group & 0x0FFFFFFF);
}
[[nodiscard]] constexpr OverlayAddress anycast_address(std::uint32_t group) {
  return kAnycastBase | (group & 0x0FFFFFFF);
}
[[nodiscard]] constexpr bool is_multicast(OverlayAddress a) {
  return a >= kMulticastBase && a < kAnycastBase;
}
[[nodiscard]] constexpr bool is_anycast(OverlayAddress a) { return a >= kAnycastBase; }

/// Resolves an (address, port) pair to an overlay Destination.
[[nodiscard]] overlay::Destination resolve(OverlayAddress addr, overlay::VirtualPort port);

/// A datagram socket bound to (node, port). Received messages queue in the
/// socket buffer until read — the familiar non-blocking recvfrom() shape.
class OverlaySocket {
 public:
  OverlaySocket(overlay::OverlayNode& node, overlay::VirtualPort port);

  /// Default per-flow services used by sendto (like setsockopt).
  void set_service(const overlay::ServiceSpec& spec) { spec_ = spec; }
  /// Bounded receive buffer; oldest datagrams drop when full (like SO_RCVBUF).
  void set_receive_buffer(std::size_t msgs) { rcvbuf_ = msgs; }

  /// Returns bytes queued for transmission, or -1 if the overlay refused
  /// (no route / backpressure) — errno-style.
  int sendto(std::span<const std::uint8_t> data, OverlayAddress to,
             overlay::VirtualPort to_port);
  int sendto(std::string_view data, OverlayAddress to, overlay::VirtualPort to_port);

  struct Received {
    std::vector<std::uint8_t> data;
    OverlayAddress from;  // unicast address of the origin node
    overlay::VirtualPort from_port;
    sim::Duration latency;
  };
  /// Non-blocking: nullopt when the buffer is empty.
  std::optional<Received> recvfrom();
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t dropped_full() const { return dropped_full_; }

  /// IGMP-ish group management (multicast AND anycast addresses).
  void join(OverlayAddress group_address);
  void leave(OverlayAddress group_address);

  [[nodiscard]] OverlayAddress local_address() const;
  [[nodiscard]] overlay::VirtualPort local_port() const { return endpoint_.port(); }

 private:
  overlay::ClientEndpoint& endpoint_;
  overlay::ServiceSpec spec_;
  std::deque<Received> queue_;
  std::size_t rcvbuf_ = 1024;
  std::uint64_t dropped_full_ = 0;
};

}  // namespace son::client
