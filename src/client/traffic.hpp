// Client-side workload generators and measurement sinks used by the example
// applications and every benchmark harness.
#pragma once

#include <functional>
#include <unordered_set>
#include <string>

#include "overlay/node.hpp"
#include "sim/stats.hpp"

namespace son::client {

/// Constant-bit-rate sender (video frames, telemetry ticks).
class CbrSender {
 public:
  struct Options {
    overlay::Destination dest;
    overlay::ServiceSpec spec;
    double rate_pps = 1000;        // packets per second
    std::size_t payload_bytes = 1200;
    sim::TimePoint start;
    /// No packets at/after this time: a tick landing exactly on `stop` does
    /// not send (pinned by the traffic boundary tests; FlowEngine matches).
    sim::TimePoint stop;
  };

  CbrSender(sim::Simulator& sim, overlay::ClientEndpoint& client, Options opts);
  ~CbrSender();
  CbrSender(const CbrSender&) = delete;
  CbrSender& operator=(const CbrSender&) = delete;

  [[nodiscard]] std::uint64_t sent() const { return sent_; }
  [[nodiscard]] std::uint64_t blocked() const { return blocked_; }

 private:
  void tick();

  sim::Simulator& sim_;
  overlay::ClientEndpoint& client_;
  Options opts_;
  overlay::Payload payload_;  // shared across sends
  std::uint64_t sent_ = 0;
  std::uint64_t blocked_ = 0;
  sim::EventId timer_ = sim::kInvalidEventId;
};

/// Poisson-arrival sender (monitoring events, control commands).
class PoissonSender {
 public:
  struct Options {
    overlay::Destination dest;
    overlay::ServiceSpec spec;
    double rate_pps = 100;
    std::size_t payload_bytes = 400;
    sim::TimePoint start;
    sim::TimePoint stop;  // same stop contract as CbrSender::Options
  };

  PoissonSender(sim::Simulator& sim, overlay::ClientEndpoint& client, Options opts,
                sim::Rng rng);
  ~PoissonSender();
  PoissonSender(const PoissonSender&) = delete;
  PoissonSender& operator=(const PoissonSender&) = delete;

  [[nodiscard]] std::uint64_t sent() const { return sent_; }
  [[nodiscard]] std::uint64_t blocked() const { return blocked_; }

 private:
  void tick();

  sim::Simulator& sim_;
  overlay::ClientEndpoint& client_;
  Options opts_;
  sim::Rng rng_;
  overlay::Payload payload_;
  std::uint64_t sent_ = 0;
  std::uint64_t blocked_ = 0;
  sim::EventId timer_ = sim::kInvalidEventId;
};

/// Receiver that records per-message one-way latency and, given the sender's
/// flow sequence numbers, detects gaps/duplicates.
class MeasuringSink {
 public:
  explicit MeasuringSink(overlay::ClientEndpoint& client);

  [[nodiscard]] std::uint64_t received() const { return received_; }
  [[nodiscard]] std::uint64_t duplicates() const { return duplicates_; }
  [[nodiscard]] const sim::SampleSet& latencies_ms() const { return latencies_ms_; }
  [[nodiscard]] std::uint64_t highest_seq() const { return highest_seq_; }

  /// Fraction of messages (out of `sent`) delivered within `deadline`.
  [[nodiscard]] double delivered_within(std::uint64_t sent, sim::Duration deadline) const;
  /// Delivery ratio out of `sent`.
  [[nodiscard]] double delivery_ratio(std::uint64_t sent) const;

  /// Optional extra callback per delivery.
  void on_message(std::function<void(const overlay::Message&, sim::Duration)> fn) {
    extra_ = std::move(fn);
  }

 private:
  std::uint64_t received_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t highest_seq_ = 0;
  std::unordered_set<std::uint64_t> seen_;
  sim::SampleSet latencies_ms_;
  std::function<void(const overlay::Message&, sim::Duration)> extra_;
};

}  // namespace son::client
