#include "client/socket.hpp"

namespace son::client {

overlay::Destination resolve(OverlayAddress addr, overlay::VirtualPort port) {
  if (is_anycast(addr)) return overlay::Destination::anycast(addr);
  if (is_multicast(addr)) return overlay::Destination::multicast(addr);
  return overlay::Destination::unicast(static_cast<overlay::NodeId>(addr), port);
}

OverlaySocket::OverlaySocket(overlay::OverlayNode& node, overlay::VirtualPort port)
    : endpoint_{node.connect(port)} {
  endpoint_.set_handler([this](const overlay::Message& m, sim::Duration latency) {
    if (queue_.size() >= rcvbuf_) {
      queue_.pop_front();
      ++dropped_full_;
    }
    Received r;
    if (m.payload) r.data.assign(m.payload->begin(), m.payload->end());
    r.from = unicast_address(m.hdr.origin);
    r.from_port = m.hdr.src_port;
    r.latency = latency;
    queue_.push_back(std::move(r));
  });
}

int OverlaySocket::sendto(std::span<const std::uint8_t> data, OverlayAddress to,
                          overlay::VirtualPort to_port) {
  const bool ok = endpoint_.send(resolve(to, to_port),
                                 overlay::make_payload({data.begin(), data.end()}), spec_);
  return ok ? static_cast<int>(data.size()) : -1;
}

int OverlaySocket::sendto(std::string_view data, OverlayAddress to,
                          overlay::VirtualPort to_port) {
  return sendto(
      std::span{reinterpret_cast<const std::uint8_t*>(data.data()), data.size()}, to,
      to_port);
}

std::optional<OverlaySocket::Received> OverlaySocket::recvfrom() {
  if (queue_.empty()) return std::nullopt;
  Received r = std::move(queue_.front());
  queue_.pop_front();
  return r;
}

void OverlaySocket::join(OverlayAddress group_address) { endpoint_.join(group_address); }
void OverlaySocket::leave(OverlayAddress group_address) { endpoint_.leave(group_address); }

OverlayAddress OverlaySocket::local_address() const {
  return unicast_address(endpoint_.node());
}

}  // namespace son::client
