#include "client/flow_engine.hpp"

#include <algorithm>
#include <cmath>

#include "sim/check.hpp"

namespace son::client {

std::optional<LoadCurve> LoadCurve::from_name(const std::string& name) {
  LoadCurve c;
  if (name == "const") {
    c.kind = Kind::kConstant;
    return c;
  }
  if (name == "diurnal") {
    c.kind = Kind::kDiurnal;
    return c;
  }
  if (name == "flash") {
    c.kind = Kind::kFlashCrowd;
    return c;
  }
  return std::nullopt;
}

double LoadCurve::scale_at(sim::TimePoint t, sim::TimePoint start) const {
  const sim::Duration rel = t - start;
  switch (kind) {
    case Kind::kConstant:
      return 1.0;
    case Kind::kDiurnal: {
      const double phase = 6.283185307179586 * (rel / period);
      return std::max(0.0, 1.0 + amplitude * std::sin(phase));
    }
    case Kind::kFlashCrowd:
      return (rel >= spike_after && rel < spike_after + spike_width) ? spike_factor : 1.0;
  }
  return 1.0;
}

FlowEngine::FlowEngine(sim::Simulator& sim, overlay::ClientEndpoint& client,
                       FlowEngineOptions opts, sim::Rng rng)
    : sim_{sim},
      client_{client},
      opts_{std::move(opts)},
      rng_{rng},
      obs_active_{obs::counter("client.flows_active")},
      obs_blocked_{obs::counter("client.flows_blocked")} {
  SON_DCHECK(!opts_.classes.empty(), "FlowEngine needs at least one FlowClass");
  SON_DCHECK(!opts_.dests.empty(), "FlowEngine needs at least one destination");
  SON_DCHECK(opts_.buckets > 0 && opts_.bucket_width > sim::Duration::zero(),
             "degenerate bucket wheel");
  bucket_width_ns_ = opts_.bucket_width.ns();
  wheel_.resize(opts_.buckets);

  payloads_.reserve(opts_.classes.size());
  double total_weight = 0.0;
  for (const FlowClass& c : opts_.classes) {
    SON_DCHECK(c.rate_pps > 0.0, "flow class needs a positive rate");
    payloads_.push_back(overlay::make_payload(c.payload_bytes));
    total_weight += c.weight;
    cum_weights_.push_back(total_weight);
  }
  SON_DCHECK(total_weight > 0.0, "flow class weights sum to zero");
  sent_by_class_.assign(opts_.classes.size(), 0);
  blocked_by_class_.assign(opts_.classes.size(), 0);

  // Reserve every per-flow table up front: steady-state ticking then never
  // touches the allocator, which the alloc-probe test asserts.
  const std::size_t headroom =
      opts_.capacity_headroom != 0 ? opts_.capacity_headroom : opts_.flows / 2 + 1024;
  const std::size_t cap = opts_.flows + headroom;
  fire_ns_.reserve(cap);
  stop_ns_.reserve(cap);
  interval_ns_.reserve(cap);
  mean_gap_s_.reserve(cap);
  flow_rng_.reserve(cap);
  order_.reserve(cap);
  seq_.reserve(cap);
  budget_.reserve(cap);
  tag_.reserve(cap);
  cls_.reserve(cap);
  dest_.reserve(cap);
  heap_.reserve(cap + 1);
  free_list_.reserve(cap);
}

FlowEngine::~FlowEngine() {
  if (timer_ != sim::kInvalidEventId) (void)sim_.cancel(timer_);
  if (start_timer_ != sim::kInvalidEventId) (void)sim_.cancel(start_timer_);
  if (arrival_timer_ != sim::kInvalidEventId) (void)sim_.cancel(arrival_timer_);
}

std::uint32_t FlowEngine::acquire_slot() {
  if (!free_list_.empty()) {
    const std::uint32_t idx = free_list_.back();
    free_list_.pop_back();
    return idx;
  }
  const auto idx = static_cast<std::uint32_t>(fire_ns_.size());
  fire_ns_.push_back(0);
  stop_ns_.push_back(0);
  interval_ns_.push_back(0);
  mean_gap_s_.push_back(0.0);
  flow_rng_.push_back(sim::Rng{});
  order_.push_back(0);
  seq_.push_back(0);
  budget_.push_back(kNoBudget);
  tag_.push_back(0);
  cls_.push_back(0);
  dest_.push_back(0);
  return idx;
}

void FlowEngine::release_slot(std::uint32_t idx) { free_list_.push_back(idx); }

void FlowEngine::insert_heap(std::uint32_t idx) {
  heap_.push_back(HeapEntry{fire_ns_[idx], order_[idx], idx});
  std::push_heap(heap_.begin(), heap_.end(), [](const HeapEntry& a, const HeapEntry& b) {
    return a.fire_ns > b.fire_ns || (a.fire_ns == b.fire_ns && a.order > b.order);
  });
}

void FlowEngine::insert(std::uint32_t idx) {
  const std::int64_t b = fire_ns_[idx] / bucket_width_ns_;
  if (b < next_bucket_) {
    insert_heap(idx);
  } else if (b < next_bucket_ + static_cast<std::int64_t>(wheel_.size())) {
    wheel_[static_cast<std::size_t>(b % static_cast<std::int64_t>(wheel_.size()))].push_back(idx);
    ++wheel_count_;
  } else {
    overflow_.push_back(idx);
    overflow_min_ = std::min(overflow_min_, fire_ns_[idx]);
  }
}

void FlowEngine::redistribute_overflow() {
  // Compact in place: entries now inside the wheel horizon move to the wheel
  // (or straight to the heap); the rest stay, with the min re-tracked.
  const auto buckets = static_cast<std::int64_t>(wheel_.size());
  std::size_t keep = 0;
  overflow_min_ = kNever;
  for (std::size_t i = 0; i < overflow_.size(); ++i) {
    const std::uint32_t idx = overflow_[i];
    const std::int64_t b = fire_ns_[idx] / bucket_width_ns_;
    if (b < next_bucket_ + buckets) {
      if (b < next_bucket_) {
        insert_heap(idx);
      } else {
        wheel_[static_cast<std::size_t>(b % buckets)].push_back(idx);
        ++wheel_count_;
      }
    } else {
      overflow_[keep++] = idx;
      overflow_min_ = std::min(overflow_min_, fire_ns_[idx]);
    }
  }
  overflow_.resize(keep);
}

void FlowEngine::advance_to(std::int64_t now_ns) {
  const auto buckets = static_cast<std::int64_t>(wheel_.size());
  const std::int64_t target = now_ns / bucket_width_ns_;  // bucket containing `now`
  while (next_bucket_ <= target) {
    if (wheel_count_ == 0) {
      // Nothing queued inside the horizon: fast-forward instead of walking
      // empty buckets one by one (sparse engines, long idle gaps).
      next_bucket_ = target + 1;
      redistribute_overflow();
      break;
    }
    auto& bkt = wheel_[static_cast<std::size_t>(next_bucket_ % buckets)];
    for (const std::uint32_t idx : bkt) insert_heap(idx);
    wheel_count_ -= bkt.size();
    bkt.clear();
    ++next_bucket_;
    if (next_bucket_ % buckets == 0) redistribute_overflow();
  }
  // A due overflow entry must not wait for the next revolution boundary.
  if (overflow_min_ <= now_ns) redistribute_overflow();
}

std::int64_t FlowEngine::peek_next_fire() const {
  std::int64_t best = heap_.empty() ? kNever : heap_.front().fire_ns;
  if (wheel_count_ > 0 && best > next_bucket_ * bucket_width_ns_) {
    // Earliest possible wheel fire is the first non-empty bucket's start —
    // conservative: the wake there collects the bucket and re-arms exactly.
    const auto buckets = static_cast<std::int64_t>(wheel_.size());
    for (std::int64_t b = next_bucket_; b < next_bucket_ + buckets; ++b) {
      const std::int64_t bucket_start = b * bucket_width_ns_;
      if (bucket_start >= best) break;
      if (!wheel_[static_cast<std::size_t>(b % buckets)].empty()) {
        best = bucket_start;
        break;
      }
    }
  }
  if (!overflow_.empty()) best = std::min(best, overflow_min_);
  return best;
}

void FlowEngine::arm() {
  const std::int64_t next = peek_next_fire();
  if (next == kNever) return;  // idle; a later add_flow / arrival re-arms
  if (timer_ != sim::kInvalidEventId) {
    if (armed_at_ <= next) return;  // existing wake is early enough
    (void)sim_.cancel(timer_);
  }
  armed_at_ = next;
  timer_ = sim_.schedule_at(sim::TimePoint::from_ns(next), [this] { on_timer(); });
}

void FlowEngine::on_timer() {
  timer_ = sim::kInvalidEventId;
  armed_at_ = kNever;
  process_due();
  arm();
}

void FlowEngine::process_due() {
  const std::int64_t now_ns = sim_.now().ns();
  advance_to(now_ns);
  const auto cmp = [](const HeapEntry& a, const HeapEntry& b) {
    return a.fire_ns > b.fire_ns || (a.fire_ns == b.fire_ns && a.order > b.order);
  };
  while (!heap_.empty() && heap_.front().fire_ns <= now_ns) {
    std::pop_heap(heap_.begin(), heap_.end(), cmp);
    const std::uint32_t idx = heap_.back().idx;
    heap_.pop_back();
    fire_flow(idx, now_ns);
  }
}

void FlowEngine::fire_flow(std::uint32_t idx, std::int64_t now_ns) {
  // Stop contract (pinned by the traffic boundary tests): no packets at or
  // after the flow's stop time.
  if (now_ns >= stop_ns_[idx]) {
    retire(idx);
    return;
  }
  const std::size_t c = cls_[idx];
  const overlay::Destination& dest = opts_.dests[dest_[idx]];
  bool admitted;
  if (hook_ != nullptr) {
    admitted = hook_(hook_ctx_, c, dest, sim::TimePoint::from_ns(now_ns));
  } else if (opts_.legacy_identity) {
    admitted = client_.send(dest, payloads_[c], opts_.classes[c].spec);
  } else {
    admitted = client_.send_flow(dest, payloads_[c], opts_.classes[c].spec, tag_[idx],
                                 ++seq_[idx]);
  }
  if (admitted) {
    ++totals_.sent;
    ++sent_by_class_[c];
  } else {
    ++totals_.blocked;
    ++blocked_by_class_[c];
    obs_blocked_.add();
  }
  if (budget_[idx] != kNoBudget && --budget_[idx] == 0) {
    retire(idx);
    return;
  }
  std::int64_t next;
  if (interval_ns_[idx] > 0) {
    next = fire_ns_[idx] + interval_ns_[idx];  // CBR: exact grid, no drift
  } else {
    next = now_ns +
           sim::Duration::from_seconds_f(flow_rng_[idx].exponential(mean_gap_s_[idx])).ns();
  }
  if (next >= stop_ns_[idx]) {
    // Equivalent to the per-object senders' "tick past stop does nothing",
    // minus the dead wake-up.
    retire(idx);
    return;
  }
  fire_ns_[idx] = next;
  order_[idx] = ++order_counter_;
  insert(idx);
}

void FlowEngine::retire(std::uint32_t idx) {
  release_slot(idx);
  --active_;
  ++totals_.retired;
  obs_active_.set(active_);
}

std::uint32_t FlowEngine::add_flow(std::size_t cls, std::size_t dest, sim::TimePoint first,
                                   sim::TimePoint stop, sim::Rng rng) {
  SON_DCHECK(cls < opts_.classes.size(), "flow class out of range");
  SON_DCHECK(dest < opts_.dests.size(), "destination index out of range");
  const FlowClass& fc = opts_.classes[cls];
  const std::uint32_t idx = acquire_slot();
  fire_ns_[idx] = std::max(first.ns(), sim_.now().ns());
  stop_ns_[idx] = stop.ns();
  if (fc.poisson) {
    interval_ns_[idx] = 0;
    mean_gap_s_[idx] = 1.0 / fc.rate_pps;
  } else {
    interval_ns_[idx] = sim::Duration::from_seconds_f(1.0 / fc.rate_pps).ns();
    SON_DCHECK(interval_ns_[idx] > 0, "CBR inter-packet gap rounds to zero");
  }
  flow_rng_[idx] = rng;
  order_[idx] = ++order_counter_;
  seq_[idx] = 0;
  budget_[idx] = fc.packet_budget == 0 ? kNoBudget : fc.packet_budget;
  tag_[idx] = ++tag_counter_;
  cls_[idx] = static_cast<std::uint8_t>(cls);
  dest_[idx] = static_cast<std::uint16_t>(dest);
  insert(idx);
  ++active_;
  peak_active_ = std::max(peak_active_, active_);
  ++totals_.activated;
  obs_active_.set(active_);
  if (started_) arm();
  return idx;
}

void FlowEngine::start() {
  SON_DCHECK(!started_, "FlowEngine started twice");
  started_ = true;
  if (opts_.flows > 0) {
    SON_DCHECK(opts_.mean_lifetime > sim::Duration::zero() ||
                   opts_.curve.kind == LoadCurve::Kind::kConstant,
               "non-constant load curves need flow churn (mean_lifetime > 0)");
    start_timer_ = sim_.schedule_at(opts_.start, [this] { on_start(); });
  } else {
    arm();  // population was built with add_flow()
  }
}

void FlowEngine::on_start() {
  start_timer_ = sim::kInvalidEventId;
  activate_batch(opts_.flows);
  if (opts_.mean_lifetime > sim::Duration::zero()) {
    arrival_timer_ = sim_.schedule(opts_.arrival_batch, [this] { on_arrival_tick(); });
  }
  process_due();  // first packets go out at the start instant itself
  arm();
}

void FlowEngine::on_arrival_tick() {
  arrival_timer_ = sim::kInvalidEventId;
  const sim::TimePoint now = sim_.now();
  if (now >= opts_.stop) return;
  // Population target / mean lifetime = steady-state arrival rate (Little's
  // law); the curve modulates it over time.
  const double base_rate =
      static_cast<double>(opts_.flows) / opts_.mean_lifetime.to_seconds_f();
  const double lam = base_rate * opts_.curve.scale_at(now, opts_.start) *
                     opts_.arrival_batch.to_seconds_f();
  const std::uint64_t k = poisson_draw(lam);
  if (k > 0) activate_batch(k);
  arrival_timer_ = sim_.schedule(opts_.arrival_batch, [this] { on_arrival_tick(); });
  if (k > 0) {
    process_due();
    arm();
  }
}

void FlowEngine::activate_batch(std::uint64_t count) {
  const sim::TimePoint now = sim_.now();
  for (std::uint64_t i = 0; i < count; ++i) {
    // Weighted class pick, uniform destination, exponential lifetime — all
    // drawn from the engine stream so the population is layout-independent.
    const double u = rng_.uniform() * cum_weights_.back();
    std::size_t c = 0;
    while (c + 1 < cum_weights_.size() && u >= cum_weights_[c]) ++c;
    const std::size_t d = rng_.index(opts_.dests.size());
    sim::TimePoint stop = opts_.stop;
    if (opts_.mean_lifetime > sim::Duration::zero()) {
      const double life_s = rng_.exponential(opts_.mean_lifetime.to_seconds_f());
      stop = std::min(stop, now + sim::Duration::from_seconds_f(life_s));
    }
    // First fires are phase-staggered across one inter-packet gap: a 10^6-flow
    // initial batch must not stampede the network at the activation instant.
    const sim::TimePoint first =
        now + sim::Duration::from_seconds_f(rng_.uniform() / opts_.classes[c].rate_pps);
    (void)add_flow(c, d, first, stop, rng_.fork(0xF10E00000000ULL + tag_counter_ + 1));
  }
}

std::uint64_t FlowEngine::poisson_draw(double lam) {
  if (lam <= 0.0) return 0;
  if (lam < 32.0) {
    // Knuth's product method — exact for small rates.
    const double limit = std::exp(-lam);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= rng_.uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation for large rates (batch arrivals at 1M-flow scale).
  const double v = rng_.normal(lam, std::sqrt(lam));
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(v));
}

std::size_t FlowEngine::memory_bytes() const {
  std::size_t total = 0;
  total += fire_ns_.capacity() * sizeof(std::int64_t);
  total += stop_ns_.capacity() * sizeof(std::int64_t);
  total += interval_ns_.capacity() * sizeof(std::int64_t);
  total += mean_gap_s_.capacity() * sizeof(double);
  total += flow_rng_.capacity() * sizeof(sim::Rng);
  total += order_.capacity() * sizeof(std::uint64_t);
  total += seq_.capacity() * sizeof(std::uint32_t);
  total += budget_.capacity() * sizeof(std::uint32_t);
  total += tag_.capacity() * sizeof(std::uint32_t);
  total += cls_.capacity() * sizeof(std::uint8_t);
  total += dest_.capacity() * sizeof(std::uint16_t);
  total += heap_.capacity() * sizeof(HeapEntry);
  total += overflow_.capacity() * sizeof(std::uint32_t);
  total += free_list_.capacity() * sizeof(std::uint32_t);
  total += wheel_.capacity() * sizeof(std::vector<std::uint32_t>);
  for (const auto& bkt : wheel_) total += bkt.capacity() * sizeof(std::uint32_t);
  return total;
}

}  // namespace son::client
