// Scenario definition and report generation.
//
// An Experiment is a list of parameter cells; each cell is a pure function
// (seed) -> Metrics run `reps` times with seeds from the shared Options.
// run() fans every (cell, replication) pair out over the ParallelRunner,
// folds results per cell in replication order, and returns a Report that can
// drive both the human tables and the machine-readable BENCH_<name>.json.
//
// Report JSON layout (schema_version 1):
//   {
//     "bench": "<name>", "schema_version": 1,
//     "options": {"reps", "quick", "seed_base", "seeds": [...]},
//     "results": {"cells": [
//        {"label", "params": {...}, "reps", "seeds": [...],
//         "metrics": {"scalars": {...}, "samples": {...}, "histograms": {...}}}
//     ]},
//     "run": {"jobs", "wall_clock_s", "trials", "hardware_concurrency",
//             "timings": {"<cell label>": {...}}}          // machine-dependent
//   }
// Everything outside "run" is bit-identical for a fixed seed set regardless
// of --jobs (results_json() returns exactly that deterministic part).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exp/json.hpp"
#include "exp/metrics.hpp"
#include "exp/options.hpp"

namespace son::exp {

using TrialFn = std::function<Metrics(std::uint64_t seed)>;

class Report {
 public:
  struct Cell {
    std::string label;
    Json params;
    std::vector<std::uint64_t> seeds;
    CellAggregate aggregate;
  };

  [[nodiscard]] std::size_t size() const { return cells_.size(); }
  [[nodiscard]] const Cell& cell(std::size_t i) const { return cells_.at(i); }
  /// Aborts if the label is unknown — a typo'd lookup is a bench bug.
  [[nodiscard]] const CellAggregate& cell(const std::string& label) const;

  [[nodiscard]] double wall_clock_s() const { return wall_clock_s_; }
  [[nodiscard]] unsigned jobs() const { return jobs_; }
  [[nodiscard]] std::size_t total_trials() const { return total_trials_; }

  /// The deterministic document: bench + options + per-cell aggregates.
  [[nodiscard]] std::string results_json() const;
  /// The full report (deterministic part + the "run" section).
  [[nodiscard]] std::string full_json() const;
  /// Writes full_json() to `path`; returns false on I/O failure — callers
  /// must surface it (a silently missing BENCH_*.json corrupts CI artifacts).
  [[nodiscard]] bool write(const std::string& path) const;

 private:
  friend class Experiment;
  [[nodiscard]] Json results_doc() const;

  std::string bench_;
  Json options_;
  std::vector<Cell> cells_;
  double wall_clock_s_ = 0.0;
  unsigned jobs_ = 1;
  std::size_t total_trials_ = 0;
};

class Experiment {
 public:
  explicit Experiment(Options opts) : opts_{std::move(opts)} {}

  /// Declares one parameter cell. `params` lands verbatim in the report.
  /// `reps_override` > 0 pins this cell's replication count (e.g. a cell
  /// that is itself deterministic needs only one trial); 0 uses the shared
  /// --reps / --seeds setting.
  void add_cell(std::string label, Json params, TrialFn fn, int reps_override = 0);

  [[nodiscard]] const Options& options() const { return opts_; }

  /// Runs all trials (reps x cells) through the ParallelRunner and
  /// aggregates. Prints a progress line to stderr when it is a terminal.
  [[nodiscard]] Report run() const;

 private:
  struct CellDef {
    std::string label;
    Json params;
    TrialFn fn;
    int reps;
  };

  Options opts_;
  std::vector<CellDef> cells_;
};

}  // namespace son::exp
