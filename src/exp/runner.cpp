#include "exp/runner.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace son::exp {

ParallelRunner::ParallelRunner(unsigned jobs) : jobs_{jobs} {
  if (jobs_ == 0) jobs_ = std::max(1u, std::thread::hardware_concurrency());
}

std::vector<Metrics> ParallelRunner::run(const std::vector<Trial>& trials) const {
  std::vector<Metrics> results(trials.size());
  if (trials.empty()) return results;

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex mu;  // guards first_error + progress callback
  std::exception_ptr first_error;

  const auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= trials.size()) return;
      try {
        results[i] = trials[i].fn();
      } catch (...) {
        const std::scoped_lock lock{mu};
        if (!first_error) first_error = std::current_exception();
      }
      const std::size_t d = done.fetch_add(1) + 1;
      if (progress_) {
        const std::scoped_lock lock{mu};
        progress_(d, trials.size(), trials[i].label);
      }
    }
  };

  const auto n_threads = static_cast<std::size_t>(jobs_) < trials.size()
                             ? static_cast<std::size_t>(jobs_)
                             : trials.size();
  std::vector<std::thread> pool;
  pool.reserve(n_threads - 1);
  for (std::size_t t = 1; t < n_threads; ++t) pool.emplace_back(worker);
  worker();  // the caller's thread is pool member #0
  for (auto& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace son::exp
