#include "exp/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace son::exp {

Json::Json(bool b) : kind_{Kind::kBool}, bool_{b} {}
Json::Json(double d) : kind_{Kind::kNumber}, num_{d} {}
Json::Json(int i) : kind_{Kind::kSigned}, int_{i} {}
Json::Json(std::int64_t i) : kind_{Kind::kSigned}, int_{i} {}
Json::Json(std::uint64_t u) : kind_{Kind::kUnsigned}, uint_{u} {}
Json::Json(const char* s) : kind_{Kind::kString}, str_{s} {}
Json::Json(std::string s) : kind_{Kind::kString}, str_{std::move(s)} {}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json& Json::operator[](const std::string& key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  for (auto& [k, v] : members_) {
    if (k == key) return v;
  }
  members_.emplace_back(key, Json{});
  return members_.back().second;
}

void Json::push_back(Json v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  items_.push_back(std::move(v));
}

std::string Json::number_to_string(double d) {
  if (!std::isfinite(d)) return "null";  // JSON has no inf/nan
  char buf[40];
  for (const int prec : {15, 16, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  return buf;
}

namespace {

void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void indent(std::string& out, int depth) { out.append(static_cast<std::size_t>(depth) * 2, ' '); }

}  // namespace

void Json::write(std::string& out, int depth) const {
  char buf[32];
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: out += number_to_string(num_); break;
    case Kind::kUnsigned:
      std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(uint_));
      out += buf;
      break;
    case Kind::kSigned:
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(int_));
      out += buf;
      break;
    case Kind::kString: write_escaped(out, str_); break;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < items_.size(); ++i) {
        indent(out, depth + 1);
        items_[i].write(out, depth + 1);
        if (i + 1 < items_.size()) out += ',';
        out += '\n';
      }
      indent(out, depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        indent(out, depth + 1);
        write_escaped(out, members_[i].first);
        out += ": ";
        members_[i].second.write(out, depth + 1);
        if (i + 1 < members_.size()) out += ',';
        out += '\n';
      }
      indent(out, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  write(out, 0);
  out += '\n';
  return out;
}

}  // namespace son::exp
