#include "exp/experiment.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "exp/runner.hpp"
#include "obs/counters.hpp"

namespace son::exp {

const CellAggregate& Report::cell(const std::string& label) const {
  for (const auto& c : cells_) {
    if (c.label == label) return c.aggregate;
  }
  std::fprintf(stderr, "Report: no cell labelled '%s'\n", label.c_str());
  std::abort();
}

Json Report::results_doc() const {
  Json doc = Json::object();
  doc["bench"] = bench_;
  doc["schema_version"] = 1;
  doc["options"] = options_;
  Json cells = Json::array();
  for (const auto& c : cells_) {
    Json jc = Json::object();
    jc["label"] = c.label;
    jc["params"] = c.params;
    jc["reps"] = c.aggregate.trials();
    Json seeds = Json::array();
    for (const auto s : c.seeds) seeds.push_back(s);
    jc["seeds"] = std::move(seeds);
    jc["metrics"] = c.aggregate.metrics_json();
    cells.push_back(std::move(jc));
  }
  doc["results"]["cells"] = std::move(cells);
  return doc;
}

std::string Report::results_json() const { return results_doc().dump(); }

std::string Report::full_json() const {
  Json doc = results_doc();
  Json& run = doc["run"];
  run["jobs"] = static_cast<std::uint64_t>(jobs_);
  run["hardware_concurrency"] =
      static_cast<std::uint64_t>(std::thread::hardware_concurrency());
  run["trials"] = total_trials_;
  run["wall_clock_s"] = wall_clock_s_;
  for (const auto& c : cells_) {
    Json t = c.aggregate.timings_json();
    if (!t.is_null()) run["timings"][c.label] = std::move(t);
  }
  return doc.dump();
}

bool Report::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = full_json();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

void Experiment::add_cell(std::string label, Json params, TrialFn fn, int reps_override) {
  cells_.push_back(CellDef{std::move(label), std::move(params), std::move(fn),
                           reps_override > 0 ? reps_override : 0});
}

Report Experiment::run() const {
  std::vector<Trial> trials;
  std::vector<std::size_t> cell_of_trial;
  Report report;
  report.bench_ = opts_.bench;

  Json jopts = Json::object();
  jopts["reps"] = static_cast<std::int64_t>(opts_.effective_reps());
  jopts["quick"] = opts_.quick;
  jopts["shards"] = static_cast<std::int64_t>(opts_.shards);
  jopts["flows"] = opts_.flows;
  jopts["load_curve"] = opts_.load_curve;
  jopts["seed_base"] = opts_.seed_base;
  Json jseeds = Json::array();
  for (const auto s : opts_.seeds) jseeds.push_back(s);
  jopts["seeds"] = std::move(jseeds);
  report.options_ = std::move(jopts);

  for (std::size_t ci = 0; ci < cells_.size(); ++ci) {
    const auto& def = cells_[ci];
    const int reps = def.reps > 0 ? def.reps : opts_.effective_reps();
    Report::Cell cell;
    cell.label = def.label;
    cell.params = def.params;
    for (int rep = 0; rep < reps; ++rep) {
      const std::uint64_t seed = opts_.seed_for(rep);
      cell.seeds.push_back(seed);
      // Every trial runs under its own counter registry (thread-local, so
      // parallel trials never share slots); the snapshot is folded into the
      // Metrics in name order, which keeps reports identical at any --jobs.
      trials.push_back(Trial{def.label, [fn = def.fn, seed]() {
                               obs::CounterRegistry registry;
                               obs::ScopedCounterRegistry scope{registry};
                               Metrics m = fn(seed);
                               for (const auto& [name, v] : registry.entries()) {
                                 m.counter(name, v);
                               }
                               return m;
                             }});
      cell_of_trial.push_back(ci);
    }
    report.cells_.push_back(std::move(cell));
  }

  ParallelRunner runner{opts_.jobs};
  if (isatty(2) != 0) {
    runner.set_progress([](std::size_t done, std::size_t total, const std::string& label) {
      std::fprintf(stderr, "\r  [%zu/%zu] %-40.40s", done, total, label.c_str());
      if (done == total) std::fprintf(stderr, "\n");
    });
  }

  // son-lint: allow(wall-clock) "wall_clock_s lands in the report's machine-dependent run section, never in results"
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<Metrics> results = runner.run(trials);
  // son-lint: allow(wall-clock) "see above; timing the runner, not simulated time"
  const auto t1 = std::chrono::steady_clock::now();

  for (std::size_t i = 0; i < results.size(); ++i) {
    report.cells_[cell_of_trial[i]].aggregate.absorb(results[i]);
  }
  report.wall_clock_s_ = std::chrono::duration<double>(t1 - t0).count();
  report.jobs_ = runner.jobs();
  report.total_trials_ = trials.size();
  return report;
}

}  // namespace son::exp
