#include "exp/metrics.hpp"

#include <algorithm>

namespace son::exp {

void CellAggregate::absorb(const Metrics& m) {
  ++trials_;
  for (const auto& [name, v] : m.scalars()) scalars_[name].add(v);
  for (const auto& [name, s] : m.sample_sets()) samples_[name].merge(s);
  for (const auto& [name, h] : m.hists()) {
    const auto it = hists_.find(name);
    if (it == hists_.end()) {
      hists_.emplace(name, h);
    } else {
      it->second.merge(h);
    }
  }
  for (const auto& [name, v] : m.timings()) timings_[name].add(v);
  for (const auto& [name, v] : m.counters()) {
    auto [it, inserted] = counters_.try_emplace(name, CounterAgg{1, v, v, v});
    if (inserted) continue;
    CounterAgg& agg = it->second;
    ++agg.n;
    agg.sum += v;
    agg.min = std::min(agg.min, v);
    agg.max = std::max(agg.max, v);
  }
}

const sim::OnlineStats& CellAggregate::scalar(const std::string& name) const {
  static const sim::OnlineStats kEmpty;
  const auto it = scalars_.find(name);
  return it == scalars_.end() ? kEmpty : it->second;
}

const sim::OnlineStats& CellAggregate::timing(const std::string& name) const {
  static const sim::OnlineStats kEmpty;
  const auto it = timings_.find(name);
  return it == timings_.end() ? kEmpty : it->second;
}

const sim::SampleSet& CellAggregate::samples(const std::string& name) const {
  static const sim::SampleSet kEmpty;
  const auto it = samples_.find(name);
  return it == samples_.end() ? kEmpty : it->second;
}

const sim::Histogram* CellAggregate::hist(const std::string& name) const {
  const auto it = hists_.find(name);
  return it == hists_.end() ? nullptr : &it->second;
}

CellAggregate::CounterAgg CellAggregate::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? CounterAgg{} : it->second;
}

namespace {

Json stats_json(const sim::OnlineStats& s) {
  Json j = Json::object();
  j["n"] = s.count();
  j["mean"] = s.mean();
  j["stddev"] = s.stddev();
  j["min"] = s.min();
  j["max"] = s.max();
  j["sum"] = s.sum();
  return j;
}

Json samples_json(const sim::SampleSet& s) {
  Json j = Json::object();
  j["n"] = s.size();
  j["mean"] = s.mean();
  j["min"] = s.min();
  j["p50"] = s.quantile(0.5);
  j["p90"] = s.quantile(0.9);
  j["p99"] = s.quantile(0.99);
  j["p999"] = s.quantile(0.999);
  j["max"] = s.max();
  return j;
}

Json hist_json(const sim::Histogram& h) {
  Json j = Json::object();
  j["lo"] = h.lo();
  j["bin_width"] = h.bin_width();
  j["total"] = h.total();
  Json counts = Json::array();
  for (std::size_t i = 0; i < h.bins(); ++i) counts.push_back(h.bin_count(i));
  j["counts"] = std::move(counts);
  return j;
}

}  // namespace

Json CellAggregate::metrics_json() const {
  Json j = Json::object();
  if (!scalars_.empty()) {
    Json& s = j["scalars"];
    for (const auto& [name, st] : scalars_) s[name] = stats_json(st);
  }
  if (!samples_.empty()) {
    Json& s = j["samples"];
    for (const auto& [name, ss] : samples_) s[name] = samples_json(ss);
  }
  if (!hists_.empty()) {
    Json& s = j["histograms"];
    for (const auto& [name, h] : hists_) s[name] = hist_json(h);
  }
  if (!counters_.empty()) {
    Json& s = j["counters"];
    for (const auto& [name, c] : counters_) {
      Json jc = Json::object();
      jc["n"] = c.n;
      jc["sum"] = c.sum;
      jc["min"] = c.min;
      jc["max"] = c.max;
      s[name] = std::move(jc);
    }
  }
  return j;
}

Json CellAggregate::timings_json() const {
  if (timings_.empty()) return Json{};
  Json j = Json::object();
  for (const auto& [name, st] : timings_) j[name] = stats_json(st);
  return j;
}

}  // namespace son::exp
