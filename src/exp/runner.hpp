// Thread-pooled trial execution.
//
// Replications are embarrassingly parallel: each owns its sim::Simulator and
// sim::Rng and touches no global mutable state, so the runner just fans the
// trial closures out over a std::thread pool. Results come back indexed by
// trial position, and all aggregation happens on the caller's thread in that
// order — aggregate output is bit-identical at any --jobs value.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "exp/metrics.hpp"

namespace son::exp {

struct Trial {
  std::string label;  // for progress display only
  std::function<Metrics()> fn;
};

class ParallelRunner {
 public:
  /// jobs == 0 selects std::thread::hardware_concurrency().
  explicit ParallelRunner(unsigned jobs = 0);

  [[nodiscard]] unsigned jobs() const { return jobs_; }

  /// Called after each trial completes with (done, total, label); invoked
  /// under a lock, possibly from worker threads.
  using Progress = std::function<void(std::size_t, std::size_t, const std::string&)>;
  void set_progress(Progress p) { progress_ = std::move(p); }

  /// Runs every trial, using up to jobs() threads, and returns results in
  /// trial order. The first exception thrown by a trial is rethrown here
  /// after all workers have stopped.
  [[nodiscard]] std::vector<Metrics> run(const std::vector<Trial>& trials) const;

 private:
  unsigned jobs_;
  Progress progress_;
};

}  // namespace son::exp
