// Per-trial metric bags and their cross-trial aggregates.
//
// A Trial produces one Metrics; the runner hands all of a cell's Metrics to a
// CellAggregate, which folds them together in trial-index order via the
// merge() support on sim::OnlineStats / sim::SampleSet / sim::Histogram, so
// the aggregate is independent of which thread ran which trial.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "exp/json.hpp"
#include "sim/stats.hpp"

namespace son::exp {

class Metrics {
 public:
  /// One value per trial; aggregated as OnlineStats across trials.
  void scalar(const std::string& name, double v) { scalars_[name] = v; }

  /// Raw per-event samples (e.g. per-packet latency); pooled across trials.
  sim::SampleSet& samples(const std::string& name) { return samples_[name]; }

  /// Fixed-geometry histogram; bin counts summed across trials.
  sim::Histogram& hist(const std::string& name, double lo, double hi, std::size_t bins) {
    return hists_.try_emplace(name, lo, hi, bins).first->second;
  }

  /// Machine-dependent measurement (real CPU/wall time). Kept out of the
  /// deterministic results section of the report.
  void timing(const std::string& name, double v) { timings_[name] = v; }

  /// One observability-counter value for this trial (monotonic; exact
  /// integers). Experiment::run snapshots the trial's obs::CounterRegistry
  /// in here automatically, so benches rarely call this directly.
  void counter(const std::string& name, std::uint64_t v) { counters_[name] = v; }

  [[nodiscard]] const std::map<std::string, double>& scalars() const { return scalars_; }
  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, sim::SampleSet>& sample_sets() const {
    return samples_;
  }
  [[nodiscard]] const std::map<std::string, sim::Histogram>& hists() const { return hists_; }
  [[nodiscard]] const std::map<std::string, double>& timings() const { return timings_; }

 private:
  std::map<std::string, double> scalars_;
  std::map<std::string, sim::SampleSet> samples_;
  std::map<std::string, sim::Histogram> hists_;
  std::map<std::string, double> timings_;
  std::map<std::string, std::uint64_t> counters_;
};

/// All trials of one parameter cell, folded together.
class CellAggregate {
 public:
  void absorb(const Metrics& m);

  [[nodiscard]] std::uint64_t trials() const { return trials_; }

  /// Cross-trial stats of a scalar; zero-valued stats if never recorded.
  [[nodiscard]] const sim::OnlineStats& scalar(const std::string& name) const;
  [[nodiscard]] double scalar_mean(const std::string& name) const { return scalar(name).mean(); }

  /// Cross-trial stats of a timing; zero-valued stats if never recorded.
  [[nodiscard]] const sim::OnlineStats& timing(const std::string& name) const;
  [[nodiscard]] double timing_mean(const std::string& name) const { return timing(name).mean(); }

  /// Pooled samples; an empty set if never recorded.
  [[nodiscard]] const sim::SampleSet& samples(const std::string& name) const;

  /// Merged histogram, or nullptr if never recorded.
  [[nodiscard]] const sim::Histogram* hist(const std::string& name) const;

  /// Exact-integer cross-trial fold of one counter (sum/min/max are computed
  /// in uint64, never through floating point — counter sums stay exact and
  /// order-independent).
  struct CounterAgg {
    std::uint64_t n = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
  };
  /// Aggregate of a counter; zero-valued if never recorded.
  [[nodiscard]] CounterAgg counter(const std::string& name) const;
  [[nodiscard]] std::uint64_t counter_sum(const std::string& name) const {
    return counter(name).sum;
  }
  [[nodiscard]] const std::map<std::string, CounterAgg>& counter_map() const {
    return counters_;
  }

  /// Deterministic part of the aggregate (scalars + samples + histograms).
  [[nodiscard]] Json metrics_json() const;
  /// Machine-dependent part (timings), or a null Json if there are none.
  [[nodiscard]] Json timings_json() const;

 private:
  std::uint64_t trials_ = 0;
  std::map<std::string, sim::OnlineStats> scalars_;
  std::map<std::string, sim::SampleSet> samples_;
  std::map<std::string, sim::Histogram> hists_;
  std::map<std::string, sim::OnlineStats> timings_;
  std::map<std::string, CounterAgg> counters_;
};

}  // namespace son::exp
