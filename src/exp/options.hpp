// Shared command-line interface for every benchmark binary.
//
// Replaces the per-bench hardcoded replication counts and seeds:
//   --reps N        replications per cell (default is per-bench)
//   --seeds a,b,c   explicit seed list (overrides --reps/--seed-base)
//   --seed-base S   seed for replication 0; replication i uses S+i
//   --jobs N        worker threads (default: hardware_concurrency)
//   --shards N      sharded-kernel worker threads (0 = hardware_concurrency)
//   --flows N       concurrent flows via the flyweight FlowEngine (0 = legacy
//                   per-object senders)
//   --load-curve C  arrival-rate curve for --flows: const | diurnal | flash
//   --churn R[,M]   node crash-recover churn at R cycles/sec, spacing model
//                   M: poisson | periodic (0 = no churn)
//   --json-out P    report path (default BENCH_<name>.json in the cwd)
//   --no-json       skip writing the report
//   --quick         reduced durations/replications for CI smoke runs
//   --record P      write a flight-recorder trace of one trial to P
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace son::exp {

struct Options {
  std::string bench;  // short name; default report path is BENCH_<bench>.json
  int reps = 1;
  unsigned jobs = 0;  // 0 = hardware_concurrency
  /// Sharded-kernel worker threads per trial (the --shards flag). 1 = run the
  /// sharded kernel single-threaded; 0 = one worker per hardware thread.
  /// Results are worker-count-invariant — this is purely a wall-clock knob.
  int shards = 1;
  /// Concurrent flows per trial, driven by client::FlowEngine flow tables
  /// (the --flows flag). 0 = the bench's legacy per-object senders.
  std::int64_t flows = 0;
  /// Arrival-rate curve for FlowEngine workloads (the --load-curve flag):
  /// "const", "diurnal" or "flash". Validated at parse time.
  std::string load_curve = "const";
  /// Node crash-recover cycles per second (the --churn flag). 0 = the
  /// bench's own churn defaults (static membership for most benches).
  double churn_rate = 0.0;
  /// Inter-event spacing model for --churn: "poisson" or "periodic".
  /// Validated at parse time; overlay::churn_model_from_string decodes it.
  std::string churn_model = "poisson";
  std::uint64_t seed_base = 1;
  std::vector<std::uint64_t> seeds;  // explicit --seeds list, if given
  bool quick = false;
  bool write_json = true;
  std::string json_out;  // empty = default path
  /// Non-empty: the bench should record one representative trial with the
  /// flight recorder and write the trace here (inspect with tools/son-trace).
  std::string record_out;

  /// Parses and REMOVES recognized flags from argv (unrecognized arguments
  /// stay, so google-benchmark flags etc. pass through). Prints usage and
  /// exits on --help or malformed values.
  [[nodiscard]] static Options parse(int& argc, char** argv, std::string bench_name,
                                     int default_reps, std::uint64_t default_seed_base);

  /// Seed for replication `rep`: the explicit list if given (extended from
  /// seed_base past its end), else seed_base + rep.
  [[nodiscard]] std::uint64_t seed_for(int rep) const;

  /// Replications per cell: the explicit seed list's size if given, else reps.
  [[nodiscard]] int effective_reps() const;

  /// `shards` with 0 resolved to hardware_concurrency (min 1).
  [[nodiscard]] unsigned resolved_shards() const;

  [[nodiscard]] std::string json_path() const;
};

}  // namespace son::exp
