#include "exp/options.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace son::exp {

namespace {

[[noreturn]] void usage(const Options& defaults, int code) {
  std::printf(
      "Usage: bench_%s [options]\n"
      "  --reps N        replications per cell (default %d)\n"
      "  --seeds a,b,c   explicit comma-separated seed list\n"
      "  --seed-base S   seed for replication 0 (default %llu); rep i uses S+i\n"
      "  --jobs N        worker threads (default: hardware concurrency)\n"
      "  --shards N      sharded-kernel workers per trial (default 1;\n"
      "                  0 = hardware concurrency; results never depend on N)\n"
      "  --flows N       concurrent flows per trial via the flyweight flow\n"
      "                  engine (default 0 = legacy per-object senders)\n"
      "  --load-curve C  arrival-rate curve for --flows workloads:\n"
      "                  const | diurnal | flash (default const)\n"
      "  --churn R[,M]   node crash-recover churn: R cycles/sec with spacing\n"
      "                  model M: poisson | periodic (default 0 = bench's\n"
      "                  own churn defaults)\n"
      "  --json-out P    write the JSON report to P (default BENCH_%s.json)\n"
      "  --no-json       do not write a JSON report\n"
      "  --quick         reduced durations/replications (CI smoke mode)\n"
      "  --record P      write a flight-recorder trace of one trial to P\n"
      "  --help          this message\n",
      defaults.bench.c_str(), defaults.reps,
      static_cast<unsigned long long>(defaults.seed_base), defaults.bench.c_str());
  std::exit(code);
}

std::uint64_t parse_u64(const char* s, const Options& defaults) {
  char* end = nullptr;
  const auto v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') {
    std::fprintf(stderr, "bad numeric argument: '%s'\n", s);
    usage(defaults, 2);
  }
  return v;
}

std::vector<std::uint64_t> parse_seed_list(const char* s, const Options& defaults) {
  std::vector<std::uint64_t> out;
  const char* p = s;
  while (*p != '\0') {
    char* end = nullptr;
    const auto v = std::strtoull(p, &end, 10);
    if (end == p) {
      std::fprintf(stderr, "bad seed list: '%s'\n", s);
      usage(defaults, 2);
    }
    out.push_back(v);
    p = end;
    if (*p == ',') ++p;
  }
  if (out.empty()) {
    std::fprintf(stderr, "empty seed list\n");
    usage(defaults, 2);
  }
  return out;
}

}  // namespace

Options Options::parse(int& argc, char** argv, std::string bench_name, int default_reps,
                       std::uint64_t default_seed_base) {
  Options o;
  o.bench = std::move(bench_name);
  o.reps = default_reps;
  o.seed_base = default_seed_base;

  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg);
        usage(o, 2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage(o, 0);
    } else if (std::strcmp(arg, "--reps") == 0) {
      o.reps = static_cast<int>(parse_u64(value(), o));
      if (o.reps < 1) o.reps = 1;
    } else if (std::strcmp(arg, "--jobs") == 0) {
      o.jobs = static_cast<unsigned>(parse_u64(value(), o));
    } else if (std::strcmp(arg, "--shards") == 0) {
      const char* v = value();
      // parse_u64 would accept "-1" (strtoull wraps negatives); reject any
      // sign explicitly — a negative worker count is always a user error.
      if (v[0] == '-' || v[0] == '+') {
        std::fprintf(stderr, "--shards must be a non-negative integer, got '%s'\n", v);
        usage(o, 2);
      }
      const std::uint64_t n = parse_u64(v, o);
      if (n > 1024) {
        std::fprintf(stderr, "--shards %llu: too many shards\n",
                     static_cast<unsigned long long>(n));
        usage(o, 2);
      }
      o.shards = static_cast<int>(n);
    } else if (std::strcmp(arg, "--flows") == 0) {
      const char* v = value();
      // Same sign discipline as --shards: strtoull would wrap "-1" silently.
      if (v[0] == '-' || v[0] == '+') {
        std::fprintf(stderr, "--flows must be a non-negative integer, got '%s'\n", v);
        usage(o, 2);
      }
      const std::uint64_t n = parse_u64(v, o);
      if (n > 100'000'000) {
        std::fprintf(stderr, "--flows %llu: too many flows\n",
                     static_cast<unsigned long long>(n));
        usage(o, 2);
      }
      o.flows = static_cast<std::int64_t>(n);
    } else if (std::strcmp(arg, "--load-curve") == 0) {
      const char* v = value();
      if (std::strcmp(v, "const") != 0 && std::strcmp(v, "diurnal") != 0 &&
          std::strcmp(v, "flash") != 0) {
        std::fprintf(stderr, "--load-curve must be const, diurnal or flash, got '%s'\n", v);
        usage(o, 2);
      }
      o.load_curve = v;
    } else if (std::strcmp(arg, "--churn") == 0) {
      const char* v = value();
      char* end = nullptr;
      const double rate = std::strtod(v, &end);
      if (end == v || rate < 0.0 || !(rate == rate) ||
          (*end != '\0' && *end != ',')) {
        std::fprintf(stderr, "--churn needs RATE[,MODEL] with RATE >= 0, got '%s'\n", v);
        usage(o, 2);
      }
      o.churn_rate = rate;
      if (*end == ',') {
        const char* model = end + 1;
        if (std::strcmp(model, "poisson") != 0 && std::strcmp(model, "periodic") != 0) {
          std::fprintf(stderr, "--churn model must be poisson or periodic, got '%s'\n",
                       model);
          usage(o, 2);
        }
        o.churn_model = model;
      }
    } else if (std::strcmp(arg, "--seed-base") == 0) {
      o.seed_base = parse_u64(value(), o);
    } else if (std::strcmp(arg, "--seeds") == 0) {
      o.seeds = parse_seed_list(value(), o);
    } else if (std::strcmp(arg, "--json-out") == 0) {
      o.json_out = value();
    } else if (std::strcmp(arg, "--record") == 0) {
      o.record_out = value();
    } else if (std::strcmp(arg, "--no-json") == 0) {
      o.write_json = false;
    } else if (std::strcmp(arg, "--quick") == 0) {
      o.quick = true;
    } else {
      argv[out++] = argv[i];  // not ours; leave for the caller
    }
  }
  // Null-terminate only when args were removed: slot `out` is then inside the
  // original array. An untouched argv is already terminated by the runtime.
  if (out < argc) argv[out] = nullptr;
  argc = out;
  return o;
}

std::uint64_t Options::seed_for(int rep) const {
  const auto i = static_cast<std::size_t>(rep);
  if (i < seeds.size()) return seeds[i];
  return seed_base + static_cast<std::uint64_t>(rep);
}

int Options::effective_reps() const {
  return seeds.empty() ? reps : static_cast<int>(seeds.size());
}

unsigned Options::resolved_shards() const {
  if (shards > 0) return static_cast<unsigned>(shards);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::string Options::json_path() const {
  return json_out.empty() ? "BENCH_" + bench + ".json" : json_out;
}

}  // namespace son::exp
