// Minimal JSON document builder for experiment reports.
//
// Insertion-ordered objects and shortest-round-trip number formatting make
// dump() byte-deterministic for a given build sequence — the property the
// runner's "identical JSON at any thread count" guarantee rests on.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace son::exp {

class Json {
 public:
  Json() = default;  // null
  Json(bool b);
  Json(double d);
  Json(int i);
  Json(std::int64_t i);
  Json(std::uint64_t u);
  Json(unsigned u) : Json{static_cast<std::uint64_t>(u)} {}
  Json(const char* s);
  Json(std::string s);

  [[nodiscard]] static Json object();
  [[nodiscard]] static Json array();

  /// Object access; inserts a null member on first use, preserving insertion
  /// order. Converts a null value into an object.
  Json& operator[](const std::string& key);

  /// Array append. Converts a null value into an array.
  void push_back(Json v);

  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }

  /// Pretty-prints with 2-space indentation and '\n' line ends.
  [[nodiscard]] std::string dump() const;

  /// Shortest decimal string that round-trips the double (deterministic).
  [[nodiscard]] static std::string number_to_string(double d);

 private:
  enum class Kind { kNull, kBool, kNumber, kUnsigned, kSigned, kString, kArray, kObject };

  void write(std::string& out, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::uint64_t uint_ = 0;
  std::int64_t int_ = 0;
  std::string str_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace son::exp
