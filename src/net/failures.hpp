// Scripted failure injection for experiments.
//
// Wraps an Internet with schedule-at-time failure/repair primitives so that
// benchmarks read as scenario scripts ("cut the Chicago–Denver fiber at
// t=10s, restore at t=70s").
#pragma once

#include "net/internet.hpp"
#include "sim/simulator.hpp"

namespace son::net {

class FailureScript {
 public:
  FailureScript(sim::Simulator& sim, Internet& internet) : sim_{sim}, net_{internet} {}

  /// Link goes down at `at`; comes back at `restore` if restore > at.
  void cut_link(sim::TimePoint at, LinkId link,
                sim::TimePoint restore = sim::TimePoint::zero());
  void cut_router(sim::TimePoint at, RouterId router,
                  sim::TimePoint restore = sim::TimePoint::zero());
  void isp_outage(sim::TimePoint at, IspId isp,
                  sim::TimePoint restore = sim::TimePoint::zero());

  /// Forces `rate` loss on both directions of `link` during [from, until).
  void loss_burst(sim::TimePoint from, sim::TimePoint until, LinkId link, double rate);

 private:
  sim::Simulator& sim_;
  Internet& net_;
};

}  // namespace son::net
