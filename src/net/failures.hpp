// Scripted failure injection for experiments.
//
// Wraps an Internet with schedule-at-time failure/repair primitives so that
// benchmarks read as scenario scripts ("cut the Chicago–Denver fiber at
// t=10s, restore at t=70s").
#pragma once

#include <functional>

#include "net/internet.hpp"
#include "sim/simulator.hpp"

namespace son::net {

class FailureScript {
 public:
  FailureScript(sim::Simulator& sim, Internet& internet) : sim_{sim}, net_{internet} {}

  /// Link goes down at `at`; comes back at `restore` if restore > at.
  void cut_link(sim::TimePoint at, LinkId link,
                sim::TimePoint restore = sim::TimePoint::zero());
  void cut_router(sim::TimePoint at, RouterId router,
                  sim::TimePoint restore = sim::TimePoint::zero());
  void isp_outage(sim::TimePoint at, IspId isp,
                  sim::TimePoint restore = sim::TimePoint::zero());

  /// Forces `rate` loss on both directions of `link` during [from, until).
  void loss_burst(sim::TimePoint from, sim::TimePoint until, LinkId link, double rate);

  /// Host-level outage: every access link of `host` drops all traffic in
  /// both directions during [from, until). To the rest of the internet the
  /// host is unreachable without any believed-topology change — the way a
  /// crashed or partitioned machine actually looks from outside.
  void host_outage(sim::TimePoint from, sim::TimePoint until, HostId host);

  /// Arbitrary scripted action, for scenario steps the fixed primitives
  /// don't cover (e.g. overlay-level node crash/recover churn events).
  void at(sim::TimePoint t, std::function<void()> fn);

 private:
  sim::Simulator& sim_;
  Internet& net_;
};

}  // namespace son::net
