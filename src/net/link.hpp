// Directed transmission model for one direction of a fiber link.
//
// Combines propagation delay, serialization at a finite rate, a FIFO queue
// bounded by maximum queueing delay (tail drop), a stochastic loss model,
// and operator-scripted forced-loss windows for targeted experiments.
#pragma once

#include <memory>
#include <vector>

#include "net/loss_model.hpp"
#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace son::net {

struct LinkConfig {
  sim::Duration prop_delay = sim::Duration::milliseconds(5);
  /// Bits per second; 0 means infinite (no serialization or queueing).
  double bandwidth_bps = 10e9;
  /// Tail-drop threshold: a packet whose queue wait would exceed this is lost.
  sim::Duration max_queue_delay = sim::Duration::milliseconds(100);
  /// Steady random loss (Bernoulli). For bursty loss, install a model with
  /// set_loss_model() instead.
  double loss_rate = 0.0;
};

class LinkDirection {
 public:
  LinkDirection(LinkConfig cfg, sim::Rng rng);

  /// Replaces the stochastic loss model (e.g. with Gilbert–Elliott).
  void set_loss_model(std::unique_ptr<LossModel> model);

  /// Forces `rate` loss during [from, until) on top of the stochastic model.
  void add_forced_loss_window(sim::TimePoint from, sim::TimePoint until, double rate);

  struct Outcome {
    bool delivered = false;
    sim::TimePoint arrival;  // valid iff delivered
    DropReason reason = DropReason::kNone;
  };

  /// Simulates handing `size_bytes` to this link direction at `now`.
  Outcome transmit(sim::TimePoint now, std::uint32_t size_bytes);

  [[nodiscard]] const LinkConfig& config() const { return cfg_; }
  [[nodiscard]] double average_loss_rate() const { return loss_->average_loss_rate(); }

  /// Queue backlog still draining at `now` (0 when idle).
  [[nodiscard]] sim::Duration queue_delay(sim::TimePoint now) const;

  struct Counters {
    std::uint64_t offered = 0;
    std::uint64_t delivered = 0;
    std::uint64_t lost_random = 0;
    std::uint64_t lost_queue = 0;
    std::uint64_t bytes_delivered = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  struct ForcedWindow {
    sim::TimePoint from;
    sim::TimePoint until;
    double rate;
  };

  bool forced_loss(sim::TimePoint now);

  LinkConfig cfg_;
  sim::Rng rng_;
  std::unique_ptr<LossModel> loss_;
  std::vector<ForcedWindow> forced_;
  sim::TimePoint busy_until_;  // when the serializer frees up
  Counters counters_;
};

}  // namespace son::net
