#include "net/loss_model.hpp"

namespace son::net {

GilbertElliottLoss::GilbertElliottLoss(Params params, sim::Rng rng)
    : params_{params}, state_rng_{rng} {
  state_until_ = sim::TimePoint::zero() +
                 sim::Duration::from_seconds_f(
                     state_rng_.exponential(params_.mean_good_time.to_seconds_f()));
}

void GilbertElliottLoss::advance_to(sim::TimePoint now) {
  while (state_until_ <= now) {
    bad_ = !bad_;
    const double mean = bad_ ? params_.mean_bad_time.to_seconds_f()
                             : params_.mean_good_time.to_seconds_f();
    state_until_ += sim::Duration::from_seconds_f(state_rng_.exponential(mean));
  }
}

bool GilbertElliottLoss::in_bad_state(sim::TimePoint now) {
  advance_to(now);
  return bad_;
}

bool GilbertElliottLoss::lose(sim::TimePoint now, sim::Rng& rng) {
  advance_to(now);
  return rng.bernoulli(bad_ ? params_.loss_bad : params_.loss_good);
}

double GilbertElliottLoss::average_loss_rate() const {
  const double tg = params_.mean_good_time.to_seconds_f();
  const double tb = params_.mean_bad_time.to_seconds_f();
  return (tg * params_.loss_good + tb * params_.loss_bad) / (tg + tb);
}

std::unique_ptr<LossModel> make_no_loss() { return std::make_unique<NoLoss>(); }

std::unique_ptr<LossModel> make_bernoulli(double p) {
  return std::make_unique<BernoulliLoss>(p);
}

std::unique_ptr<LossModel> make_gilbert_elliott(GilbertElliottLoss::Params p, sim::Rng rng) {
  return std::make_unique<GilbertElliottLoss>(p, rng);
}

}  // namespace son::net
