#include "net/cross_traffic.hpp"

namespace son::net {

CrossTraffic::CrossTraffic(sim::Simulator& sim, Internet& internet, const Options& opts,
                           sim::Rng rng)
    : sim_{sim}, internet_{internet}, opts_{opts}, rng_{rng} {
  const auto [a, b] = internet_.link_endpoints(opts_.link);
  const RouterId to = (opts_.from == a) ? b : a;
  // Fat, loss-free access links: the congested resource is the backbone link
  // itself, not the stubs' attachments.
  LinkConfig access;
  access.prop_delay = sim::Duration::microseconds(10);
  access.bandwidth_bps = 0;  // infinite
  src_ = internet_.add_host("xtraffic-src");
  dst_ = internet_.add_host("xtraffic-dst");
  internet_.attach_host(src_, opts_.from, access);
  internet_.attach_host(dst_, to, access);
  internet_.bind(dst_, [this](const Datagram&) { ++received_; });
  timer_ = sim_.schedule_at(opts_.start, [this]() { tick(); });
}

CrossTraffic::~CrossTraffic() { sim_.cancel(timer_); }

void CrossTraffic::tick() {
  timer_ = sim::kInvalidEventId;
  if (sim_.now() >= opts_.stop) return;
  Datagram d;
  d.src = src_;
  d.dst = dst_;
  d.size_bytes = opts_.packet_bytes;
  internet_.send(std::move(d));
  ++sent_;
  // Poisson arrivals at the configured bit rate.
  const double pps = opts_.rate_bps / (8.0 * opts_.packet_bytes);
  timer_ = sim_.schedule(sim::Duration::from_seconds_f(rng_.exponential(1.0 / pps)),
                         [this]() { tick(); });
}

}  // namespace son::net
