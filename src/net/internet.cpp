#include "net/internet.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <string>

#include "obs/recorder.hpp"
#include "sim/check.hpp"
#include "sim/shard.hpp"

namespace son::net {

Internet::Internet(sim::Simulator& sim, sim::Rng rng, Config cfg)
    : sim_{sim}, rng_{rng}, cfg_{cfg} {
  parts_.resize(1);
  parts_[0].sim = &sim_;
  obs_sent_ = obs::counter("net.sent");
  obs_delivered_ = obs::counter("net.delivered");
  for (std::size_t r = 0; r < kNumDropReasons; ++r) {
    obs_dropped_[r] =
        obs::counter(std::string("net.drop.") + to_string(static_cast<DropReason>(r)));
  }
}

Internet::Internet(sim::Simulator& sim, sim::Rng rng) : Internet{sim, rng, Config{}} {}

IspId Internet::add_isp(std::string name) {
  isps_.push_back(std::move(name));
  return static_cast<IspId>(isps_.size() - 1);
}

RouterId Internet::add_router(IspId isp, std::string name) {
  assert(isp < isps_.size());
  routers_.push_back(Router{isp, std::move(name), true, true, {}});
  return static_cast<RouterId>(routers_.size() - 1);
}

LinkId Internet::add_link(RouterId a, RouterId b, const LinkConfig& cfg) {
  assert(a < routers_.size() && b < routers_.size() && a != b);
  SON_DCHECK(!sharded(), "topology is frozen once enable_sharding has run");
  const auto id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{a, b, true, true,
                        LinkDirection{cfg, rng_.fork(0x11000 + id)},
                        LinkDirection{cfg, rng_.fork(0x12000 + id)}});
  routers_[a].adj.emplace_back(b, id);
  routers_[b].adj.emplace_back(a, id);
  for (PartState& ps : parts_) ps.route_cache.clear();
  return id;
}

HostId Internet::add_host(std::string name) {
  hosts_.push_back(Host{std::move(name), {}, nullptr, {}});
  return static_cast<HostId>(hosts_.size() - 1);
}

AttachIndex Internet::attach_host(HostId host, RouterId router, const LinkConfig& access) {
  assert(host < hosts_.size() && router < routers_.size());
  SON_DCHECK(!sharded(), "topology is frozen once enable_sharding has run");
  auto& h = hosts_[host];
  const auto idx = static_cast<AttachIndex>(h.attaches.size());
  h.attaches.push_back(
      Attachment{router, LinkDirection{access, rng_.fork(0x21000 + host * 8u + idx)},
                 LinkDirection{access, rng_.fork(0x22000 + host * 8u + idx)}});
  return idx;
}

void Internet::bind(HostId host, Handler handler) {
  assert(host < hosts_.size());
  hosts_[host].handler = std::move(handler);
}

void Internet::bind(HostId host, std::uint16_t port, Handler handler) {
  assert(host < hosts_.size());
  hosts_[host].port_handlers[port] = std::move(handler);
}

std::size_t Internet::attachments(HostId host) const { return hosts_.at(host).attaches.size(); }
IspId Internet::router_isp(RouterId r) const { return routers_.at(r).isp; }
const std::string& Internet::router_name(RouterId r) const { return routers_.at(r).name; }

// ---- Routing (believed topology) -----------------------------------------

std::optional<std::vector<Internet::Step>> Internet::compute_route(RouterId from, RouterId to,
                                                                   IspId isp) const {
  if (from == to) return std::vector<Step>{};
  if (!routers_[from].believed_up || !routers_[to].believed_up) return std::nullopt;

  const auto n = routers_.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n, kInf);
  std::vector<Step> prev(n, Step{kInvalidLink, kInvalidRouter});
  using QE = std::pair<double, RouterId>;
  std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
  dist[from] = 0.0;
  pq.emplace(0.0, from);

  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    if (u == to) break;
    for (const auto& [v, lid] : routers_[u].adj) {
      const Link& l = links_[lid];
      if (!l.believed_up || !routers_[v].believed_up) continue;
      if (isp != kInvalidIsp && (routers_[u].isp != isp || routers_[v].isp != isp)) continue;
      const double w = l.ab.config().prop_delay.to_seconds_f() +
                       cfg_.router_latency.to_seconds_f();
      if (dist[u] + w < dist[v]) {
        dist[v] = dist[u] + w;
        prev[v] = Step{lid, u};  // `next` field reused to hold predecessor here
        pq.emplace(dist[v], v);
      }
    }
  }
  if (dist[to] == kInf) return std::nullopt;

  std::vector<Step> path;
  for (RouterId v = to; v != from; v = prev[v].next) {
    path.push_back(Step{prev[v].link, v});
  }
  std::reverse(path.begin(), path.end());
  return path;
}

const Internet::CachedRoute& Internet::route_entry(const PartState& ps, RouterId from,
                                                   RouterId to, IspId isp) const {
  SON_DCHECK(from < (1u << 24) && to < (1u << 24),
             "route_key packs router ids into 24 bits");
  const std::uint64_t key = route_key(from, to, isp);
  auto it = ps.route_cache.find(key);
  if (it == ps.route_cache.end()) {
    CachedRoute entry;
    if (auto path = compute_route(from, to, isp)) {
      for (const auto& step : *path) {
        entry.latency += links_[step.link].ab.config().prop_delay + cfg_.router_latency;
      }
      entry.path = std::make_shared<const std::vector<Step>>(std::move(*path));
    }
    it = ps.route_cache.emplace(key, std::move(entry)).first;
  }
  // Cache invariant: an entry either has no path (negative cache) or a path
  // whose recomputed latency matches the cached one — a mismatch means a
  // topology change slipped past the convergence-time cache clear.
  SON_DCHECK(it->second.path != nullptr || it->second.latency == sim::Duration::zero(),
             "negative route-cache entry carries a latency");
  return it->second;
}

std::optional<sim::Duration> Internet::route_latency(const PartState& ps, RouterId from,
                                                     RouterId to, IspId isp) const {
  const CachedRoute& entry = route_entry(ps, from, to, isp);
  if (!entry.path) return std::nullopt;
  return entry.latency;
}

bool Internet::resolve_attachments(const PartState& ps, HostId src, HostId dst,
                                   const SendOptions& opts, AttachIndex& si, AttachIndex& di,
                                   IspId& constraint) const {
  const auto& hs = hosts_[src];
  const auto& hd = hosts_[dst];
  double best = std::numeric_limits<double>::infinity();
  bool found = false;

  const auto try_combo = [&](AttachIndex i, AttachIndex j) {
    const RouterId ra = hs.attaches[i].router;
    const RouterId rb = hd.attaches[j].router;
    // Prefer staying on a single provider ("on-net") when both attachments
    // share an ISP and an on-net route exists.
    IspId mode = kInvalidIsp;
    std::optional<sim::Duration> lat;
    if (routers_[ra].isp == routers_[rb].isp) {
      mode = routers_[ra].isp;
      lat = route_latency(ps, ra, rb, mode);
    }
    if (!lat) {
      mode = kInvalidIsp;
      lat = route_latency(ps, ra, rb, kInvalidIsp);
    }
    if (!lat) return;
    const double cost = lat->to_seconds_f() +
                        hs.attaches[i].up_link.config().prop_delay.to_seconds_f() +
                        hd.attaches[j].down_link.config().prop_delay.to_seconds_f();
    if (cost < best) {
      best = cost;
      si = i;
      di = j;
      constraint = mode;
      found = true;
    }
  };

  const auto src_range = opts.src_attach == kAnyAttach
                             ? std::pair<AttachIndex, AttachIndex>{0, static_cast<AttachIndex>(
                                                                          hs.attaches.size())}
                             : std::pair<AttachIndex, AttachIndex>{
                                   opts.src_attach, static_cast<AttachIndex>(opts.src_attach + 1)};
  const auto dst_range = opts.dst_attach == kAnyAttach
                             ? std::pair<AttachIndex, AttachIndex>{0, static_cast<AttachIndex>(
                                                                          hd.attaches.size())}
                             : std::pair<AttachIndex, AttachIndex>{
                                   opts.dst_attach, static_cast<AttachIndex>(opts.dst_attach + 1)};
  for (AttachIndex i = src_range.first; i < src_range.second; ++i) {
    for (AttachIndex j = dst_range.first; j < dst_range.second; ++j) {
      try_combo(i, j);
    }
  }
  return found;
}

// ---- Data plane ------------------------------------------------------------

std::uint64_t Internet::send(Datagram d, const SendOptions& opts) {
  assert(d.src < hosts_.size() && d.dst < hosts_.size());
  // Everything send() touches — packet ids, counters, route cache, the access
  // link, the clock — belongs to the source host's partition, so in a sharded
  // run the caller must invoke send() from an event on host_sim(d.src).
  PartState& ps = parts_[host_partition(d.src)];
  SON_DCHECK(ps.next_packet_id < (1ULL << 48), "per-partition packet-id space exhausted");
  d.id = ps.id_tag | ps.next_packet_id++;
  ++ps.counters.sent;
  obs_sent_.add();

  AttachIndex si = 0, di = 0;
  IspId constraint = kInvalidIsp;
  if (!resolve_attachments(ps, d.src, d.dst, opts, si, di, constraint)) {
    drop(ps, d, DropReason::kNoRoute);
    return d.id;
  }
  auto& src_attach = hosts_[d.src].attaches[si];
  const RouterId first_router = src_attach.router;
  const RouterId last_router = hosts_[d.dst].attaches[di].router;

  const CachedRoute& entry = route_entry(ps, first_router, last_router, constraint);
  if (!entry.path) {
    drop(ps, d, DropReason::kNoRoute);
    return d.id;
  }

  const auto out = src_attach.up_link.transmit(ps.sim->now(), d.size_bytes);
  if (!out.delivered) {
    drop(ps, d, out.reason);
    return d.id;
  }
  // Share the path: in-flight packets hold a reference to the immutable
  // route, so it survives cache clears without ever being copied.
  const std::uint64_t id = d.id;
  ps.sim->schedule_at(out.arrival, [this, d = std::move(d), first_router, path = entry.path, di,
                                    ttl = cfg_.default_ttl]() mutable {
    forward(std::move(d), first_router, std::move(path), 0, di, ttl);
  });
  return id;
}

void Internet::forward(Datagram d, RouterId at, RoutePtr path, std::size_t idx,
                       AttachIndex dst_attach, std::uint8_t ttl) {
  // Runs inside `at`'s partition. Each LinkDirection stays single-writer:
  // direction a→b is only ever transmitted on from a's partition.
  PartState& ps = parts_[router_partition(at)];
  if (!routers_[at].actually_up) {
    drop(ps, d, DropReason::kRouterDown);
    return;
  }
  if (ttl == 0) {
    drop(ps, d, DropReason::kTtlExpired);
    return;
  }

  if (idx == path->size()) {
    // Final router: deliver over the destination's access link. The host is
    // co-located with this router (enable_sharding enforces it), so the
    // delivery stays inside this partition.
    auto& attach = hosts_[d.dst].attaches[dst_attach];
    const auto out = attach.down_link.transmit(ps.sim->now(), d.size_bytes);
    if (!out.delivered) {
      drop(ps, d, out.reason);
      return;
    }
    ps.sim->schedule_at(out.arrival,
                        [this, d = std::move(d), dst_attach]() { deliver(d, dst_attach); });
    return;
  }

  const Step step = (*path)[idx];
  Link& l = links_[step.link];
  if (!l.actually_up) {
    drop(ps, d, l.believed_up ? DropReason::kStaleRoute : DropReason::kLinkDown);
    return;
  }
  LinkDirection& dir = (l.a == at) ? l.ab : l.ba;
  const auto out = dir.transmit(ps.sim->now(), d.size_bytes);
  if (!out.delivered) {
    drop(ps, d, out.reason);
    return;
  }
  const sim::TimePoint when = out.arrival + cfg_.router_latency;
  auto cont = [this, d = std::move(d), step, path = std::move(path), idx, dst_attach,
               ttl]() mutable {
    forward(std::move(d), step.next, std::move(path), idx + 1, dst_attach,
            static_cast<std::uint8_t>(ttl - 1));
  };
  const std::uint32_t pn = router_partition(step.next);
  if (pn == ps.index) {
    ps.sim->schedule_at(when, std::move(cont));
  } else {
    // Cross-partition hop: hand the continuation to the channel. The
    // lookahead bound holds because arrival >= now + prop_delay >= round
    // floor + min crossing prop_delay, and `when` adds the router latency.
    sim::ShardChannel* ch = ps.out[pn];
    SON_DCHECK(ch != nullptr, "cross-partition hop with no registered channel");
    // son-analyze: allow(hot-path-alloc) "ShardChannel::push is the sanctioned cross-partition carrier (see shard.hpp)"
    ch->push(when, std::move(cont));
  }
}

void Internet::deliver(const Datagram& d, AttachIndex) {
  PartState& ps = parts_[host_partition(d.dst)];
  const auto& h = hosts_[d.dst];
  const auto it = h.port_handlers.find(d.dst_port);
  if (it != h.port_handlers.end()) {
    ++ps.counters.delivered;
    obs_delivered_.add();
    it->second(d);
    return;
  }
  if (!h.handler) {
    drop(ps, d, DropReason::kNoHandler);
    return;
  }
  ++ps.counters.delivered;
  obs_delivered_.add();
  h.handler(d);
}

void Internet::drop(PartState& ps, const Datagram& d, DropReason reason) {
  ++ps.counters.dropped[static_cast<std::size_t>(reason)];
  obs_dropped_[static_cast<std::size_t>(reason)].add();
  // Partition p records to its own system ring (kSystemNode - p) so rings
  // stay single-writer under parallel execution.
  SON_OBS(static_cast<std::uint16_t>(obs::kSystemNode - ps.index), obs::Category::kDrop, reason,
          d.id, (static_cast<std::uint64_t>(d.src) << 32) | d.dst);
  if (tracer_.enabled(sim::TraceLevel::kDebug)) {
    trace(sim::TraceLevel::kDebug, "drop pkt " + std::to_string(d.id) + " " +
                                       hosts_[d.src].name + "->" + hosts_[d.dst].name + ": " +
                                       to_string(reason));
  }
}

// ---- Failures / control ----------------------------------------------------

void Internet::schedule_convergence(std::function<void()> apply_belief) {
  // Coalesce: N topology changes converging at the same instant share one
  // event applying all beliefs (in change order) and one route-cache clear.
  const sim::TimePoint when = sim_.now() + cfg_.convergence_delay;
  const auto [it, inserted] = pending_convergence_.try_emplace(when);
  it->second.push_back(std::move(apply_belief));
  if (!inserted) return;
  sim_.schedule_at(when, [this, when]() {
    const auto batch = pending_convergence_.extract(when);
    for (const auto& apply : batch.mapped()) apply();
    for (PartState& ps : parts_) ps.route_cache.clear();
  });
}

void Internet::set_link_up(LinkId link, bool up) {
  // Topology mutations touch shared state: in a sharded run they must come
  // from global events (kernel.schedule_global), which execute with every
  // partition quiesced at a round barrier.
  SON_DCHECK(kernel_ == nullptr || !kernel_->in_round(),
             "set_link_up from a partition event — use schedule_global");
  links_.at(link).actually_up = up;
  schedule_convergence([this, link, up]() { links_[link].believed_up = up; });
}

void Internet::set_router_up(RouterId router, bool up) {
  SON_DCHECK(kernel_ == nullptr || !kernel_->in_round(),
             "set_router_up from a partition event — use schedule_global");
  routers_.at(router).actually_up = up;
  schedule_convergence([this, router, up]() { routers_[router].believed_up = up; });
}

void Internet::set_isp_up(IspId isp, bool up) {
  for (RouterId r = 0; r < routers_.size(); ++r) {
    if (routers_[r].isp == isp) set_router_up(r, up);
  }
}

LinkDirection& Internet::link_dir(LinkId link, RouterId from) {
  Link& l = links_.at(link);
  assert(l.a == from || l.b == from);
  return l.a == from ? l.ab : l.ba;
}

LinkDirection& Internet::access_dir(HostId host, AttachIndex attach, bool up) {
  Attachment& at = hosts_.at(host).attaches.at(attach);
  return up ? at.up_link : at.down_link;
}

std::pair<RouterId, RouterId> Internet::link_endpoints(LinkId link) const {
  const Link& l = links_.at(link);
  return {l.a, l.b};
}

LinkId Internet::find_link(RouterId a, RouterId b) const {
  for (const auto& [v, lid] : routers_.at(a).adj) {
    if (v == b) return lid;
  }
  return kInvalidLink;
}

std::optional<sim::Duration> Internet::path_latency(HostId a, AttachIndex ai, HostId b,
                                                    AttachIndex bi) const {
  SendOptions opts{ai, bi};
  AttachIndex si = 0, di = 0;
  IspId constraint = kInvalidIsp;
  const PartState& ps = parts_[host_partition(a)];
  if (!resolve_attachments(ps, a, b, opts, si, di, constraint)) return std::nullopt;
  const RouterId ra = hosts_[a].attaches[si].router;
  const RouterId rb = hosts_[b].attaches[di].router;
  auto lat = route_latency(ps, ra, rb, constraint);
  if (!lat) return std::nullopt;
  return *lat + hosts_[a].attaches[si].up_link.config().prop_delay +
         hosts_[b].attaches[di].down_link.config().prop_delay;
}

std::optional<std::vector<RouterId>> Internet::path_routers(HostId a, AttachIndex ai, HostId b,
                                                            AttachIndex bi) const {
  SendOptions opts{ai, bi};
  AttachIndex si = 0, di = 0;
  IspId constraint = kInvalidIsp;
  const PartState& ps = parts_[host_partition(a)];
  if (!resolve_attachments(ps, a, b, opts, si, di, constraint)) return std::nullopt;
  const RouterId ra = hosts_[a].attaches[si].router;
  const RouterId rb = hosts_[b].attaches[di].router;
  const CachedRoute& entry = route_entry(ps, ra, rb, constraint);
  if (!entry.path) return std::nullopt;
  std::vector<RouterId> out{ra};
  for (const auto& s : *entry.path) out.push_back(s.next);
  return out;
}

const Internet::Counters& Internet::counters() const {
  if (parts_.size() == 1) return parts_[0].counters;
  folded_ = Counters{};
  for (const PartState& ps : parts_) {
    folded_.sent += ps.counters.sent;
    folded_.delivered += ps.counters.delivered;
    for (std::size_t r = 0; r < kNumDropReasons; ++r) {
      folded_.dropped[r] += ps.counters.dropped[r];
    }
  }
  return folded_;
}

// ---- Sharded execution -----------------------------------------------------

void Internet::enable_sharding(sim::ShardedKernel& kernel, ShardPlan plan) {
  SON_DCHECK(kernel_ == nullptr, "enable_sharding may only run once");
  SON_DCHECK(&kernel.control_sim() == &sim_,
             "a sharded Internet must be constructed over kernel.control_sim()");
  SON_DCHECK(plan.num_partitions >= 1 && plan.num_partitions == kernel.num_partitions(),
             "plan partition count must match the kernel");
  SON_DCHECK(plan.router_partition.size() == routers_.size(), "plan must cover every router");
  SON_DCHECK(plan.host_partition.size() == hosts_.size(), "plan must cover every host");

  kernel_ = &kernel;
  plan_ = std::move(plan);
  const std::size_t np = plan_.num_partitions;
  parts_.clear();
  parts_.resize(np);
  for (std::uint32_t p = 0; p < np; ++p) {
    parts_[p].sim = &kernel.shard_sim(p);
    parts_[p].index = p;
    parts_[p].id_tag = static_cast<std::uint64_t>(p) << 48;
    parts_[p].out.assign(np, nullptr);
  }

  // A host must be co-located with every router it attaches to: the access
  // links and the delivery path are partition-local state.
  for (HostId h = 0; h < hosts_.size(); ++h) {
    for (const Attachment& a : hosts_[h].attaches) {
      SON_DCHECK(plan_.router_partition[a.router] == plan_.host_partition[h],
                 "host attached to a router in another partition");
      (void)a;
    }
  }

  // One channel per ordered partition pair joined by at least one link;
  // lookahead = min crossing propagation delay + the per-hop router latency
  // (the continuation for a crossing hop is scheduled at arrival + latency).
  std::vector<std::int64_t> min_prop_ns(np * np, -1);
  for (const Link& l : links_) {
    const std::uint32_t pa = plan_.router_partition[l.a];
    const std::uint32_t pb = plan_.router_partition[l.b];
    if (pa == pb) continue;
    const std::int64_t prop = l.ab.config().prop_delay.ns();
    for (const std::size_t k : {pa * np + pb, pb * np + pa}) {
      if (min_prop_ns[k] < 0 || prop < min_prop_ns[k]) min_prop_ns[k] = prop;
    }
  }
  for (std::uint32_t src = 0; src < np; ++src) {
    for (std::uint32_t dst = 0; dst < np; ++dst) {
      const std::int64_t prop = min_prop_ns[src * np + dst];
      if (prop < 0) continue;
      parts_[src].out[dst] = &kernel.add_channel(
          src, dst, sim::Duration::nanoseconds(prop) + cfg_.router_latency);
    }
  }
}

std::uint64_t Internet::backbone_bytes_carried() const {
  std::uint64_t total = 0;
  for (const auto& l : links_) {
    total += l.ab.counters().bytes_delivered + l.ba.counters().bytes_delivered;
  }
  return total;
}

}  // namespace son::net
