// Identifier types for the underlay network model.
#pragma once

#include <cstdint>
#include <limits>

namespace son::net {

/// Router (POP) in some ISP's backbone.
using RouterId = std::uint32_t;
/// Internet service provider (backbone network).
using IspId = std::uint16_t;
/// End host (an overlay node machine or a client machine).
using HostId = std::uint32_t;
/// Bidirectional fiber link between two routers, or a host access link.
using LinkId = std::uint32_t;
/// Index into a host's list of ISP attachments (multihoming).
using AttachIndex = std::uint8_t;

inline constexpr RouterId kInvalidRouter = std::numeric_limits<RouterId>::max();
inline constexpr HostId kInvalidHost = std::numeric_limits<HostId>::max();
inline constexpr LinkId kInvalidLink = std::numeric_limits<LinkId>::max();
inline constexpr IspId kInvalidIsp = std::numeric_limits<IspId>::max();
/// "Any attachment": let the internet pick the best ISP combination.
inline constexpr AttachIndex kAnyAttach = std::numeric_limits<AttachIndex>::max();

}  // namespace son::net
