// The underlay datagram: what the simulated Internet carries between hosts.
//
// The payload is opaque to the underlay (std::any), exactly as the paper
// requires: "to the underlying network, an overlay looks like a normal
// user-level application". Overlay messages keep their bodies in shared
// buffers, so copying a Datagram is cheap.
#pragma once

#include <any>
#include <cstdint>

#include "net/types.hpp"

namespace son::net {

struct Datagram {
  HostId src = kInvalidHost;
  HostId dst = kInvalidHost;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  /// Wire size used for serialization/queueing computations.
  std::uint32_t size_bytes = 1200;
  /// Unique per send() call; assigned by the Internet. For tracing.
  std::uint64_t id = 0;
  std::any payload;
};

enum class DropReason : std::uint8_t {
  kNone = 0,
  kRandomLoss,     // loss model fired
  kLinkDown,       // traversed link was down
  kRouterDown,     // next router was down
  kQueueOverflow,  // link queue full
  kNoRoute,        // no path existed at route-computation time
  kStaleRoute,     // route pointed into a failure and routing hasn't converged
  kTtlExpired,
  kNoHandler,  // destination host has no receive handler bound
};

[[nodiscard]] const char* to_string(DropReason r);

}  // namespace son::net
