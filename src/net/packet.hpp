// The underlay datagram: what the simulated Internet carries between hosts.
//
// The payload is opaque to the underlay, exactly as the paper requires: "to
// the underlying network, an overlay looks like a normal user-level
// application". Unlike std::any, PayloadRef is a *shared immutable* handle:
// a datagram traversing k hops (one forwarding continuation per hop, plus
// per-hop copies of the datagram itself) shares one payload allocation
// instead of deep-copying the payload at every copy point.
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>

#include "net/types.hpp"

namespace son::net {

namespace detail {
/// One tag object per payload type; its address identifies the type without
/// paying for RTTI lookups on the data path.
template <typename T>
inline constexpr char payload_tag = 0;
}  // namespace detail

/// Type-erased shared handle to an immutable payload. Copying a PayloadRef
/// (and therefore a Datagram) bumps a refcount; the payload itself is
/// allocated once, when the sender constructs it.
class PayloadRef {
 public:
  PayloadRef() = default;

  /// Wraps a value, like std::any's converting constructor — so call sites
  /// keep writing `d.payload = frame;`. The value is moved into a single
  /// shared allocation.
  template <typename T>
    requires(!std::is_same_v<std::remove_cvref_t<T>, PayloadRef>)
  PayloadRef(T&& value)  // NOLINT(google-explicit-constructor)
      : ptr_{std::make_shared<const std::remove_cvref_t<T>>(std::forward<T>(value))},
        tag_{&detail::payload_tag<std::remove_cvref_t<T>>} {}

  /// In-place construction without an intermediate move.
  template <typename T, typename... Args>
  [[nodiscard]] static PayloadRef make(Args&&... args) {
    PayloadRef p;
    p.ptr_ = std::make_shared<const T>(std::forward<Args>(args)...);
    p.tag_ = &detail::payload_tag<T>;
    return p;
  }

  /// Typed view of the payload; nullptr when empty or a different type
  /// (mirrors std::any_cast<T>(&payload)).
  template <typename T>
  [[nodiscard]] const T* get() const {
    return tag_ == &detail::payload_tag<T> ? static_cast<const T*>(ptr_.get()) : nullptr;
  }

  [[nodiscard]] explicit operator bool() const { return ptr_ != nullptr; }
  void reset() {
    ptr_.reset();
    tag_ = nullptr;
  }

 private:
  std::shared_ptr<const void> ptr_;
  const void* tag_ = nullptr;
};

struct Datagram {
  HostId src = kInvalidHost;
  HostId dst = kInvalidHost;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  /// Wire size used for serialization/queueing computations.
  std::uint32_t size_bytes = 1200;
  /// Unique per send() call; assigned by the Internet. For tracing.
  std::uint64_t id = 0;
  PayloadRef payload;
};

enum class DropReason : std::uint8_t {
  kNone = 0,
  kRandomLoss,     // loss model fired
  kLinkDown,       // traversed link was down
  kRouterDown,     // next router was down
  kQueueOverflow,  // link queue full
  kNoRoute,        // no path existed at route-computation time
  kStaleRoute,     // route pointed into a failure and routing hasn't converged
  kTtlExpired,
  kNoHandler,  // destination host has no receive handler bound

  kCount_,  // sentinel — keep last; sizes the per-reason drop counters
};

/// Number of real DropReason enumerators (excludes the sentinel).
inline constexpr std::size_t kNumDropReasons = static_cast<std::size_t>(DropReason::kCount_);

[[nodiscard]] const char* to_string(DropReason r);

}  // namespace son::net
