// Packet loss models for underlay links.
//
// The paper's recovery protocols (hop-by-hop ARQ, NM-Strikes) are motivated
// by *bursty* Internet loss: "Because of the burstiness of loss on the
// Internet, the challenge is to bypass the window of correlation for loss
// within the allotted time" (§IV-A). The Gilbert–Elliott model here is
// continuous-time, so whether two probe packets share a loss burst depends on
// how far apart in *time* they are sent — exactly the property NM-Strikes'
// spaced retransmission requests exploit.
#pragma once

#include <memory>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace son::net {

/// Decides, per packet, whether the link drops it at time `now`.
class LossModel {
 public:
  virtual ~LossModel() = default;
  virtual bool lose(sim::TimePoint now, sim::Rng& rng) = 0;
  /// Long-run average loss fraction (for reporting / cost metrics).
  [[nodiscard]] virtual double average_loss_rate() const = 0;
};

/// Independent per-packet loss with fixed probability.
class BernoulliLoss final : public LossModel {
 public:
  explicit BernoulliLoss(double p) : p_{p} {}
  bool lose(sim::TimePoint, sim::Rng& rng) override { return rng.bernoulli(p_); }
  [[nodiscard]] double average_loss_rate() const override { return p_; }

 private:
  double p_;
};

/// Continuous-time two-state Gilbert–Elliott model.
///
/// The chain alternates GOOD/BAD states with exponential sojourn times
/// (mean_good_time / mean_bad_time); packets are dropped with loss_good in
/// GOOD and loss_bad in BAD. The state is advanced lazily to the query time,
/// so loss correlation is a function of real packet spacing.
class GilbertElliottLoss final : public LossModel {
 public:
  struct Params {
    sim::Duration mean_good_time = sim::Duration::seconds(10);
    sim::Duration mean_bad_time = sim::Duration::milliseconds(80);
    double loss_good = 0.0001;
    double loss_bad = 0.5;
  };

  GilbertElliottLoss(Params params, sim::Rng rng);

  bool lose(sim::TimePoint now, sim::Rng& rng) override;
  [[nodiscard]] double average_loss_rate() const override;

  /// True if the chain is in the BAD state at `now` (advances the chain).
  bool in_bad_state(sim::TimePoint now);

 private:
  void advance_to(sim::TimePoint now);

  Params params_;
  sim::Rng state_rng_;  // dedicated stream so state evolution is independent
                        // of how often the link is queried
  bool bad_ = false;
  sim::TimePoint state_until_;  // current sojourn ends here
};

/// No loss at all (ideal fiber).
class NoLoss final : public LossModel {
 public:
  bool lose(sim::TimePoint, sim::Rng&) override { return false; }
  [[nodiscard]] double average_loss_rate() const override { return 0.0; }
};

/// Convenience factories.
[[nodiscard]] std::unique_ptr<LossModel> make_no_loss();
[[nodiscard]] std::unique_ptr<LossModel> make_bernoulli(double p);
[[nodiscard]] std::unique_ptr<LossModel> make_gilbert_elliott(GilbertElliottLoss::Params p,
                                                              sim::Rng rng);

}  // namespace son::net
