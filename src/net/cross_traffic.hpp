// Background Internet cross-traffic.
//
// The paper's motivation for private networks — "Creating a private IP
// network eliminates contention with other applications on the Internet and
// therefore allows more predictable service" — implies the public Internet
// the overlay rides on IS contended. CrossTraffic drives third-party
// datagrams through a chosen backbone link so overlay frames compete in its
// FIFO queue for real: queueing delay rises and, past saturation, tail drops
// hit the overlay's hellos and data alike. The overlay's loss-aware routing
// then treats congestion exactly like loss and routes around it.
#pragma once

#include "net/internet.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace son::net {

class CrossTraffic {
 public:
  struct Options {
    /// The backbone link to congest and the direction (from -> other end).
    LinkId link = kInvalidLink;
    RouterId from = kInvalidRouter;
    /// Offered background load in bits per second.
    double rate_bps = 50e6;
    std::uint32_t packet_bytes = 1200;
    sim::TimePoint start;
    sim::TimePoint stop;
  };

  /// Attaches two stub hosts at the link's endpoints and schedules the load.
  CrossTraffic(sim::Simulator& sim, Internet& internet, const Options& opts, sim::Rng rng);
  ~CrossTraffic();
  CrossTraffic(const CrossTraffic&) = delete;
  CrossTraffic& operator=(const CrossTraffic&) = delete;

  [[nodiscard]] std::uint64_t sent() const { return sent_; }
  [[nodiscard]] std::uint64_t received() const { return received_; }

 private:
  void tick();

  sim::Simulator& sim_;
  Internet& internet_;
  Options opts_;
  sim::Rng rng_;
  HostId src_ = kInvalidHost;
  HostId dst_ = kInvalidHost;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  sim::EventId timer_ = sim::kInvalidEventId;
};

}  // namespace son::net
