#include "net/failures.hpp"

namespace son::net {

void FailureScript::cut_link(sim::TimePoint at, LinkId link, sim::TimePoint restore) {
  sim_.schedule_at(at, [this, link]() { net_.set_link_up(link, false); });
  if (restore > at) {
    sim_.schedule_at(restore, [this, link]() { net_.set_link_up(link, true); });
  }
}

void FailureScript::cut_router(sim::TimePoint at, RouterId router, sim::TimePoint restore) {
  sim_.schedule_at(at, [this, router]() { net_.set_router_up(router, false); });
  if (restore > at) {
    sim_.schedule_at(restore, [this, router]() { net_.set_router_up(router, true); });
  }
}

void FailureScript::isp_outage(sim::TimePoint at, IspId isp, sim::TimePoint restore) {
  sim_.schedule_at(at, [this, isp]() { net_.set_isp_up(isp, false); });
  if (restore > at) {
    sim_.schedule_at(restore, [this, isp]() { net_.set_isp_up(isp, true); });
  }
}

void FailureScript::loss_burst(sim::TimePoint from, sim::TimePoint until, LinkId link,
                               double rate) {
  const auto [a, b] = net_.link_endpoints(link);
  net_.link_dir(link, a).add_forced_loss_window(from, until, rate);
  net_.link_dir(link, b).add_forced_loss_window(from, until, rate);
}

void FailureScript::host_outage(sim::TimePoint from, sim::TimePoint until, HostId host) {
  for (AttachIndex a = 0; a < net_.attachments(host); ++a) {
    net_.access_dir(host, a, /*up=*/true).add_forced_loss_window(from, until, 1.0);
    net_.access_dir(host, a, /*up=*/false).add_forced_loss_window(from, until, 1.0);
  }
}

void FailureScript::at(sim::TimePoint t, std::function<void()> fn) {
  sim_.schedule_at(t, std::move(fn));
}

}  // namespace son::net
