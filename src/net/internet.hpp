// The simulated Internet: multiple ISP backbones, peering, multihomed hosts.
//
// Substitution for the paper's real multi-ISP deployment (see DESIGN.md §2).
// The model separates the *actual* topology state (data plane truth) from the
// *believed* state (what routing has converged on). A failure takes effect in
// the data plane immediately, but routes keep using the believed topology
// until a BGP-style convergence delay elapses — packets forwarded into the
// failure are dropped ("kStaleRoute"). This reproduces the paper's contrast
// between sub-second overlay rerouting and "the 40 seconds to minutes that
// BGP may take to converge".
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/types.hpp"
#include "obs/counters.hpp"
#include "sim/hot.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace son::sim {
class ShardedKernel;
class ShardChannel;
}  // namespace son::sim

namespace son::net {

class Internet {
 public:
  struct Config {
    /// How long routing keeps using stale paths after a topology change.
    sim::Duration convergence_delay = sim::Duration::seconds(40);
    /// Per-router forwarding latency (hardware routers are fast).
    sim::Duration router_latency = sim::Duration::microseconds(50);
    std::uint8_t default_ttl = 64;
  };

  Internet(sim::Simulator& sim, sim::Rng rng, Config cfg);
  Internet(sim::Simulator& sim, sim::Rng rng);

  // ---- Topology construction ------------------------------------------
  IspId add_isp(std::string name);
  RouterId add_router(IspId isp, std::string name);
  /// Adds a bidirectional link. Routers may be in different ISPs (peering).
  LinkId add_link(RouterId a, RouterId b, const LinkConfig& cfg);
  HostId add_host(std::string name);
  /// Attaches a host to a router over an access link; hosts may attach to
  /// several routers in different ISPs (multihoming). Returns the index of
  /// this attachment in the host's attachment list.
  AttachIndex attach_host(HostId host, RouterId router, const LinkConfig& access);

  // ---- Data plane -------------------------------------------------------
  using Handler = std::function<void(const Datagram&)>;
  /// Binds the host's default handler (any destination port).
  void bind(HostId host, Handler handler);
  /// Binds a handler for one destination port — several daemons (e.g.
  /// parallel overlays) can share a machine, each on its own port. Port
  /// handlers take precedence over the default handler.
  void bind(HostId host, std::uint16_t port, Handler handler);

  struct SendOptions {
    /// Which of the sender's / receiver's attachments to use; kAnyAttach
    /// lets the internet pick the lowest-believed-latency combination.
    AttachIndex src_attach = kAnyAttach;
    AttachIndex dst_attach = kAnyAttach;
  };
  /// Injects a datagram; delivery (or silent loss) happens via events.
  /// Returns the assigned packet id.
  std::uint64_t send(Datagram d, const SendOptions& opts);
  std::uint64_t send(Datagram d) { return send(std::move(d), SendOptions{}); }

  // ---- Sharded execution -------------------------------------------------
  /// Fixed assignment of every router and host to a partition. The plan is a
  /// property of the topology (one partition per site), NOT of the worker
  /// count — results depend only on the plan, so any worker count reproduces
  /// them bit-identically.
  struct ShardPlan {
    std::size_t num_partitions = 1;
    std::vector<std::uint32_t> router_partition;  // indexed by RouterId
    std::vector<std::uint32_t> host_partition;    // indexed by HostId
  };

  /// Switches the data plane to sharded execution on `kernel`. Call after
  /// topology construction and before any traffic. Requirements (checked):
  /// the Internet must have been constructed over kernel.control_sim() (so
  /// failure injection and convergence run as global events), every host
  /// must be co-located with all of its attachment routers, and the plan
  /// must cover every router and host. Registers one cross-shard channel per
  /// ordered partition pair joined by a link; the channel lookahead is the
  /// smallest crossing-link propagation delay plus the per-hop router
  /// latency — the minimum time any packet needs to cross the cut.
  void enable_sharding(sim::ShardedKernel& kernel, ShardPlan plan);
  [[nodiscard]] bool sharded() const { return kernel_ != nullptr; }
  [[nodiscard]] std::uint32_t host_partition(HostId h) const {
    return parts_.size() == 1 ? 0 : plan_.host_partition[h];
  }
  [[nodiscard]] std::uint32_t router_partition(RouterId r) const {
    return parts_.size() == 1 ? 0 : plan_.router_partition[r];
  }
  /// The simulator driving `host`'s partition (== simulator() when not
  /// sharded). Scenario code schedules traffic sources on it so a host's
  /// sends always execute inside the host's own partition.
  [[nodiscard]] sim::Simulator& host_sim(HostId h) { return *parts_[host_partition(h)].sim; }

  // ---- Failure injection / control --------------------------------------
  void set_link_up(LinkId link, bool up);
  void set_router_up(RouterId router, bool up);
  /// Takes every router and link of the ISP up or down.
  void set_isp_up(IspId isp, bool up);

  /// Direction accessor for loss injection: the direction from `from`.
  LinkDirection& link_dir(LinkId link, RouterId from);
  /// Access-link direction accessor for host-outage injection: the
  /// host -> router direction when `up` is true, router -> host otherwise.
  LinkDirection& access_dir(HostId host, AttachIndex attach, bool up);
  [[nodiscard]] LinkId find_link(RouterId a, RouterId b) const;
  [[nodiscard]] std::pair<RouterId, RouterId> link_endpoints(LinkId link) const;

  // ---- Introspection -----------------------------------------------------
  /// Believed one-way latency (propagation + router hops) between two host
  /// attachments, or nullopt if no believed route exists.
  [[nodiscard]] std::optional<sim::Duration> path_latency(HostId a, AttachIndex ai,
                                                          HostId b, AttachIndex bi) const;
  /// Believed router path (for tests / topology design).
  [[nodiscard]] std::optional<std::vector<RouterId>> path_routers(HostId a, AttachIndex ai,
                                                                  HostId b,
                                                                  AttachIndex bi) const;

  [[nodiscard]] std::size_t num_hosts() const { return hosts_.size(); }
  [[nodiscard]] std::size_t num_routers() const { return routers_.size(); }
  [[nodiscard]] std::size_t num_links() const { return links_.size(); }
  [[nodiscard]] std::size_t attachments(HostId host) const;
  [[nodiscard]] IspId router_isp(RouterId r) const;
  [[nodiscard]] const std::string& router_name(RouterId r) const;

  struct Counters {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped[16] = {};  // indexed by DropReason
  };
  static_assert(kNumDropReasons <= sizeof(Counters::dropped) / sizeof(std::uint64_t),
                "Counters::dropped[] is too small for DropReason — grow the array");
  /// Totals folded across partitions (deterministic: plain per-partition
  /// sums, added in partition order).
  [[nodiscard]] const Counters& counters() const;

  /// Sum of bytes carried over all backbone link directions (both ways),
  /// excluding access links. Used by the multicast-efficiency benchmark.
  [[nodiscard]] std::uint64_t backbone_bytes_carried() const;

  void set_tracer(sim::Tracer tracer) { tracer_ = std::move(tracer); }

  /// Testing hook: rehashes the route caches to at least `buckets` buckets.
  /// Results must be invariant under any hash-table layout — the golden-run
  /// suite re-runs scenarios with different bucket counts (including a
  /// mid-run rehash) to prove nothing observes unordered iteration order.
  void rehash_route_cache(std::size_t buckets) const {
    for (const PartState& ps : parts_) ps.route_cache.rehash(buckets);
  }

  sim::Simulator& simulator() { return sim_; }

 private:
  struct Link {
    RouterId a;
    RouterId b;
    bool actually_up = true;
    bool believed_up = true;
    LinkDirection ab;  // direction a -> b
    LinkDirection ba;  // direction b -> a
  };
  struct Router {
    IspId isp;
    std::string name;
    bool actually_up = true;
    bool believed_up = true;
    std::vector<std::pair<RouterId, LinkId>> adj;
  };
  struct Attachment {
    RouterId router;
    LinkDirection up_link;    // host -> router
    LinkDirection down_link;  // router -> host
  };
  struct Host {
    std::string name;
    std::vector<Attachment> attaches;
    Handler handler;  // default (any port)
    std::map<std::uint16_t, Handler> port_handlers;
  };

  struct Step {
    LinkId link;
    RouterId next;
  };
  /// In-flight packets and the cache share one immutable path allocation, so
  /// send()/forward() never copy routes and cache clears never strand them.
  using RoutePtr = std::shared_ptr<const std::vector<Step>>;
  struct CachedRoute {
    RoutePtr path;  // null = no believed route
    sim::Duration latency = sim::Duration::zero();
  };
  // Cache key: (src router, dst router, isp constraint or kInvalidIsp for
  // global), packed into 64 bits (24 + 24 + 16).
  static constexpr std::uint64_t route_key(RouterId from, RouterId to, IspId isp) {
    return (static_cast<std::uint64_t>(from) << 40) | (static_cast<std::uint64_t>(to) << 16) |
           isp;
  }

  /// Per-partition execution state. A monolithic Internet has exactly one
  /// (index 0, sim == &sim_); enable_sharding() rebuilds the vector with one
  /// entry per partition. Everything a packet touches while in flight lives
  /// here, so two partitions never write the same memory inside a round.
  struct PartState {
    sim::Simulator* sim = nullptr;
    std::uint32_t index = 0;
    /// High bits of packet ids minted by this partition (partition << 48).
    /// Partition 0 tags with 0, so monolithic runs keep their historical
    /// plain ids — and the pinned golden delivery hashes.
    std::uint64_t id_tag = 0;
    std::uint64_t next_packet_id = 1;
    // Mutable: lookups from const introspection paths fill the cache too.
    mutable std::unordered_map<std::uint64_t, CachedRoute> route_cache;
    Counters counters;
    /// Outgoing cross-shard channels, indexed by destination partition
    /// (nullptr on the diagonal and for pairs with no connecting link).
    std::vector<sim::ShardChannel*> out;
  };

  /// Believed-topology Dijkstra. isp == kInvalidIsp allows all links.
  [[nodiscard]] std::optional<std::vector<Step>> compute_route(RouterId from, RouterId to,
                                                               IspId isp) const;
  /// Cached route + its believed latency; computes on miss.
  const CachedRoute& route_entry(const PartState& ps, RouterId from, RouterId to,
                                 IspId isp) const;
  [[nodiscard]] std::optional<sim::Duration> route_latency(const PartState& ps, RouterId from,
                                                           RouterId to, IspId isp) const;

  /// Chooses attachment indices per SendOptions; returns false if no route.
  bool resolve_attachments(const PartState& ps, HostId src, HostId dst, const SendOptions& opts,
                           AttachIndex& si, AttachIndex& di, IspId& constraint) const;

  SON_HOT void forward(Datagram d, RouterId at, RoutePtr path, std::size_t idx,
                       AttachIndex dst_attach, std::uint8_t ttl);
  void deliver(const Datagram& d, AttachIndex dst_attach);
  void drop(PartState& ps, const Datagram& d, DropReason reason);
  /// Schedules control-plane convergence after a topology change. Changes
  /// landing at the same instant share one convergence event (and one route
  /// cache clear) instead of scheduling one each.
  void schedule_convergence(std::function<void()> apply_belief);

  void trace(sim::TraceLevel lvl, const std::string& msg) const {
    if (!tracer_.enabled(lvl)) return;
    tracer_.emit(sim_.now(), lvl, "internet", msg);
  }

  sim::Simulator& sim_;
  sim::Rng rng_;
  Config cfg_;
  sim::Tracer tracer_;

  std::vector<std::string> isps_;
  std::vector<Router> routers_;
  std::vector<Link> links_;
  std::vector<Host> hosts_;

  /// Belief updates batched per convergence instant (see schedule_convergence).
  std::map<sim::TimePoint, std::vector<std::function<void()>>> pending_convergence_;

  /// Partition states; size 1 until enable_sharding(). Indexed by partition.
  std::vector<PartState> parts_;
  sim::ShardedKernel* kernel_ = nullptr;
  ShardPlan plan_;
  /// Scratch for counters(): fold of parts_[*].counters, rebuilt per call.
  mutable Counters folded_;
  // Observability: null-safe handles into the thread's counter registry (if
  // one was installed when this Internet was constructed). Write-only — the
  // simulation never reads them back.
  obs::Counter obs_sent_;
  obs::Counter obs_delivered_;
  obs::Counter obs_dropped_[kNumDropReasons];
};

}  // namespace son::net
