#include "net/link.hpp"

#include <algorithm>

namespace son::net {

const char* to_string(DropReason r) {
  switch (r) {
    case DropReason::kNone: return "none";
    case DropReason::kRandomLoss: return "random-loss";
    case DropReason::kLinkDown: return "link-down";
    case DropReason::kRouterDown: return "router-down";
    case DropReason::kQueueOverflow: return "queue-overflow";
    case DropReason::kNoRoute: return "no-route";
    case DropReason::kStaleRoute: return "stale-route";
    case DropReason::kTtlExpired: return "ttl-expired";
    case DropReason::kNoHandler: return "no-handler";
    case DropReason::kCount_: break;
  }
  return "?";
}

LinkDirection::LinkDirection(LinkConfig cfg, sim::Rng rng)
    : cfg_{cfg}, rng_{rng}, loss_{make_bernoulli(cfg.loss_rate)} {}

void LinkDirection::set_loss_model(std::unique_ptr<LossModel> model) {
  loss_ = std::move(model);
}

void LinkDirection::add_forced_loss_window(sim::TimePoint from, sim::TimePoint until,
                                           double rate) {
  forced_.push_back(ForcedWindow{from, until, rate});
}

bool LinkDirection::forced_loss(sim::TimePoint now) {
  for (const auto& w : forced_) {
    if (now >= w.from && now < w.until && rng_.bernoulli(w.rate)) return true;
  }
  return false;
}

sim::Duration LinkDirection::queue_delay(sim::TimePoint now) const {
  return busy_until_ > now ? busy_until_ - now : sim::Duration::zero();
}

LinkDirection::Outcome LinkDirection::transmit(sim::TimePoint now, std::uint32_t size_bytes) {
  ++counters_.offered;

  if (loss_->lose(now, rng_) || forced_loss(now)) {
    ++counters_.lost_random;
    return Outcome{false, {}, DropReason::kRandomLoss};
  }

  sim::TimePoint start = now;
  sim::Duration tx = sim::Duration::zero();
  if (cfg_.bandwidth_bps > 0) {
    tx = sim::Duration::from_seconds_f(static_cast<double>(size_bytes) * 8.0 /
                                       cfg_.bandwidth_bps);
    start = std::max(now, busy_until_);
    if (start - now > cfg_.max_queue_delay) {
      ++counters_.lost_queue;
      return Outcome{false, {}, DropReason::kQueueOverflow};
    }
    busy_until_ = start + tx;
  }

  ++counters_.delivered;
  counters_.bytes_delivered += size_bytes;
  return Outcome{true, start + tx + cfg_.prop_delay, DropReason::kNone};
}

}  // namespace son::net
