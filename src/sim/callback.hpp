// Small-buffer-optimized, move-only void() callable for the event loop.
//
// Every event in a packet-level simulation carries a closure, and
// std::function heap-allocates for closures beyond ~2 words — which makes the
// allocator the hot path at millions of events per second. Callback stores
// closures up to kInlineBytes inline (sized to fit the internet's per-hop
// forwarding continuation and the overlay's message-carrying timers) and only
// falls back to the heap beyond that.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace son::sim {

class Callback {
 public:
  /// Inline capacity: a captured Datagram or Message plus a few words.
  static constexpr std::size_t kInlineBytes = 120;

  Callback() = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, Callback> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  Callback(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::ops;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &HeapOps<Fn>::ops;
    }
  }

  Callback(Callback&& o) noexcept { move_from(o); }
  Callback& operator=(Callback&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;
  ~Callback() { reset(); }

  /// Precondition: *this holds a callable.
  void operator()() { ops_->invoke(buf_); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  /// Destroys the held callable (if any); *this becomes empty.
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs dst's storage from src's and destroys src's.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static Fn* as(void* p) {
    return std::launder(reinterpret_cast<Fn*>(p));
  }

  template <typename Fn>
  struct InlineOps {
    static void invoke(void* p) { (*as<Fn>(p))(); }
    static void relocate(void* dst, void* src) {
      ::new (dst) Fn(std::move(*as<Fn>(src)));
      as<Fn>(src)->~Fn();
    }
    static void destroy(void* p) { as<Fn>(p)->~Fn(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  template <typename Fn>
  struct HeapOps {
    static void invoke(void* p) { (**as<Fn*>(p))(); }
    static void relocate(void* dst, void* src) { ::new (dst) Fn*(*as<Fn*>(src)); }
    static void destroy(void* p) { delete *as<Fn*>(p); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  void move_from(Callback& o) noexcept {
    ops_ = o.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, o.buf_);
      o.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace son::sim
