// Generation guard for fire-and-forget timers.
//
// The safe patterns for a this-capturing scheduled callback are (a) store
// the EventId and cancel it in the destructor, or (b) make the callback
// inert once the owner dies. TimerGuard implements (b) for callbacks whose
// ids are deliberately discarded — delayed forwards, processing-delay hops —
// where tracking every in-flight id would cost a container per object:
//
//   class Node {
//     sim::TimerGuard guard_;
//     void hop() {
//       sim_.schedule(delay, guard_.wrap([this] { deliver(); }));
//     }
//   };
//
// wrap() captures a weak reference to the guard's liveness token; when the
// owning object (and thus the guard) is destroyed, every wrapped callback
// still sitting in the event queue silently no-ops instead of touching a
// dead `this`. tools/son_analyze's `timer-lifecycle` rule recognizes
// `member.wrap(` on a TimerGuard member as proof of generation-guarding.
//
// Cost: one shared_ptr control block per guard (not per timer) and one
// weak_ptr::lock per fire. The weak_ptr enlarges the closure by 16 bytes,
// well inside sim::Callback's small-buffer size. Not a cancellation
// mechanism: the event still occupies its queue slot until it pops.
#pragma once

#include <memory>
#include <utility>

namespace son::sim {

class TimerGuard {
 public:
  TimerGuard() : alive_(std::make_shared<const bool>(true)) {}
  TimerGuard(const TimerGuard&) = delete;
  TimerGuard& operator=(const TimerGuard&) = delete;

  /// Wraps `fn` so it no-ops once this guard is destroyed.
  template <typename Fn>
  auto wrap(Fn&& fn) const {
    return [token = std::weak_ptr<const bool>(alive_),
            f = std::forward<Fn>(fn)]() mutable {
      if (token.lock()) f();
    };
  }

 private:
  std::shared_ptr<const bool> alive_;
};

}  // namespace son::sim
