#include "sim/simulator.hpp"

namespace son::sim {

std::uint64_t Simulator::run() {
  std::uint64_t n = 0;
  while (!queue_.empty()) {
    auto [time, cb] = queue_.pop();
    now_ = time;
    cb();
    ++n;
  }
  fired_ += n;
  return n;
}

std::uint64_t Simulator::run_before(TimePoint bound) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.next_time() < bound) {
    auto [time, cb] = queue_.pop();
    now_ = time;
    cb();
    ++n;
  }
  fired_ += n;
  return n;
}

std::uint64_t Simulator::run_until(TimePoint deadline) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    auto [time, cb] = queue_.pop();
    now_ = time;
    cb();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  fired_ += n;
  return n;
}

}  // namespace son::sim
