#include "sim/time.hpp"

#include <cstdio>

namespace son::sim {

std::string Duration::to_string() const {
  char buf[48];
  const std::int64_t abs_ns = ns_ < 0 ? -ns_ : ns_;
  if (abs_ns >= 1'000'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fs", static_cast<double>(ns_) * 1e-9);
  } else if (abs_ns >= 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fms", static_cast<double>(ns_) * 1e-6);
  } else if (abs_ns >= 1'000) {
    std::snprintf(buf, sizeof buf, "%.3fus", static_cast<double>(ns_) * 1e-3);
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(ns_));
  }
  return buf;
}

std::string TimePoint::to_string() const {
  char buf[48];
  std::snprintf(buf, sizeof buf, "t=%.6fs", static_cast<double>(ns_) * 1e-9);
  return buf;
}

}  // namespace son::sim
