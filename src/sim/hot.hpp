// SON_HOT: the zero-allocation hot-path annotation.
//
// Marking a function SON_HOT asserts a contract, not a hint: at steady state
// the function must not reach an allocating construct (new-expression,
// make_shared/make_unique, std::to_string, amortized container growth) on
// ANY call path. The contract is enforced twice:
//
//   * statically  — tools/son_analyze walks the call graph from every
//     SON_HOT function and reports reachable allocation sites
//     (rule `hot-path-alloc`); reserve-backed growth and cold diagnostic
//     branches are suppressed inline with a written justification;
//   * dynamically — sim::alloc_probe counts real allocations across a
//     warmed-up window in the tier-1 tests.
//
// The macro also carries [[gnu::hot]] so the optimizer groups the annotated
// bodies, but the annotation's primary consumer is the analyzer: it scans
// for the literal token SON_HOT in the declaration or definition head.
// Annotate the declaration (header) when the definition is out of line;
// annotating both is harmless.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define SON_HOT [[gnu::hot]]
#else
#define SON_HOT
#endif
