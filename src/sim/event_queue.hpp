// Priority event queue for the discrete-event simulator.
//
// Events are (time, sequence) ordered: ties in time fire in schedule order,
// which keeps runs fully deterministic. The heap holds 24-byte POD entries;
// callbacks live in a generation-tagged slot pool, so schedule/pop/cancel are
// O(log n) heap operations with zero hash-table traffic and zero per-event
// allocation at steady state (small closures are stored inline in the slot —
// see sim/callback.hpp). Cancellation is lazy: a cancelled event's callback
// is destroyed immediately, but its heap entry stays and is skipped when it
// surfaces; the slot is recycled at that point.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/callback.hpp"
#include "sim/hot.hpp"
#include "sim/time.hpp"

namespace son::sim {

/// Identifies a scheduled event; usable to cancel it. 0 is never a valid id.
/// Encoding: (slot generation << 32) | (slot index + 1). A slot's generation
/// bumps on every recycle, so an id held across slot reuse can never cancel
/// the slot's next occupant.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  using Callback = sim::Callback;

  /// Schedules `cb` to fire at `when`. Returns an id usable with cancel();
  /// discarding it forfeits the only handle to the event, so callers that
  /// never cancel must say so explicitly (assign to a discarded value).
  SON_HOT [[nodiscard]] EventId schedule(TimePoint when, Callback cb);

  /// Cancels a pending event. Cancelling an already-fired or already-
  /// cancelled event is a harmless no-op. Returns true if it was pending —
  /// callers must inspect it (a stale id silently doing nothing is exactly
  /// the bug class the generation tags exist to surface).
  SON_HOT [[nodiscard]] bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the earliest pending event. Precondition: !empty().
  SON_HOT [[nodiscard]] TimePoint next_time() const;

  /// Removes and returns the earliest pending event's callback and time.
  /// Precondition: !empty().
  struct Fired {
    TimePoint time;
    Callback cb;
  };
  SON_HOT Fired pop();

  /// Drops all pending events (their ids all become stale).
  void clear();

 private:
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;

  struct Entry {
    TimePoint time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  struct Slot {
    Callback cb;
    std::uint32_t gen = 1;
    bool armed = false;  // true while the event is pending (not fired/cancelled)
    std::uint32_t next_free = kNilSlot;
  };

  // Invariant: a slot is recycled only when its heap entry is removed, so
  // every entry in the heap satisfies slots_[e.slot].gen == e.gen, and
  // !armed means the entry was cancelled.
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx) const;
  void skip_cancelled() const;

  // Mutable so next_time() can retire cancelled heads lazily.
  mutable std::vector<Entry> heap_;
  mutable std::vector<Slot> slots_;
  mutable std::uint32_t free_head_ = kNilSlot;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 1;
};

}  // namespace son::sim
