// Priority event queue for the discrete-event simulator.
//
// Events are (time, sequence) ordered: ties in time fire in schedule order,
// which keeps runs fully deterministic. Cancellation is lazy: cancelled
// events stay in the heap and are skipped when popped.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace son::sim {

/// Identifies a scheduled event; usable to cancel it. 0 is never a valid id.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` to fire at `when`. Returns an id usable with cancel().
  EventId schedule(TimePoint when, Callback cb);

  /// Cancels a pending event. Cancelling an already-fired or already-
  /// cancelled event is a harmless no-op. Returns true if it was pending.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return pending_.empty(); }
  [[nodiscard]] std::size_t size() const { return pending_.size(); }

  /// Time of the earliest pending event. Precondition: !empty().
  [[nodiscard]] TimePoint next_time() const;

  /// Removes and returns the earliest pending event's callback and time.
  /// Precondition: !empty().
  struct Fired {
    TimePoint time;
    Callback cb;
  };
  Fired pop();

  /// Drops all pending events.
  void clear();

 private:
  struct Entry {
    TimePoint time;
    std::uint64_t seq;
    EventId id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void skip_cancelled() const;

  // Heap is mutable so next_time() can discard cancelled heads lazily.
  mutable std::vector<Entry> heap_;
  mutable std::unordered_set<EventId> cancelled_;
  std::unordered_set<EventId> pending_;
  std::uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
};

}  // namespace son::sim
