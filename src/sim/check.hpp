// SON_DCHECK — invariant assertions that are free in Release.
//
// Active when NDEBUG is unset (Debug builds) or when SON_ENABLE_DCHECK is
// defined (the SON_SANITIZE=thread CMake mode defines it, so TSan runs keep
// checking structural invariants even at -O2). In Release the condition is
// not evaluated at all; it is only parsed, so checks can be as expensive as
// they need to be without taxing the hot path.
//
//   SON_DCHECK(cond, "message");
//
// On failure: prints `file:line: SON_DCHECK failed: cond — message` to
// stderr and aborts, which every sanitizer and ctest surfaces as a hard
// failure with a stack.
#pragma once

#include <cstdio>
#include <cstdlib>

#if !defined(NDEBUG) || defined(SON_ENABLE_DCHECK)
#define SON_DCHECK_ENABLED 1
#else
#define SON_DCHECK_ENABLED 0
#endif

namespace son::sim::detail {
[[noreturn]] inline void dcheck_fail(const char* file, int line, const char* expr,
                                     const char* msg) {
  std::fprintf(stderr, "%s:%d: SON_DCHECK failed: %s — %s\n", file, line, expr, msg);
  std::abort();
}
}  // namespace son::sim::detail

#if SON_DCHECK_ENABLED
#define SON_DCHECK(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::son::sim::detail::dcheck_fail(__FILE__, __LINE__, #cond, (msg));   \
    }                                                                      \
  } while (false)
#else
#define SON_DCHECK(cond, msg)                          \
  do {                                                 \
    if (false) {                                       \
      static_cast<void>(cond);                         \
      static_cast<void>(msg);                          \
    }                                                  \
  } while (false)
#endif
