#include "sim/shard.hpp"

#include <algorithm>
#include <barrier>

namespace son::sim {

// Reusable two-phase rendezvous for the round protocol. A thin wrapper so the
// header does not drag <barrier> into every translation unit.
struct ShardedKernel::Gate {
  explicit Gate(std::ptrdiff_t n) : barrier(n) {}
  std::barrier<> barrier;
};

ShardedKernel::ShardedKernel(std::size_t num_partitions, unsigned workers)
    : parts_(num_partitions == 0 ? 1 : num_partitions),
      workers_{std::clamp<unsigned>(workers, 1u,
                                    static_cast<unsigned>(parts_.size()))} {
  if (workers_ > 1) {
    start_gate_ = std::make_unique<Gate>(static_cast<std::ptrdiff_t>(workers_));
    end_gate_ = std::make_unique<Gate>(static_cast<std::ptrdiff_t>(workers_));
    threads_.reserve(workers_ - 1);
    for (unsigned i = 1; i < workers_; ++i) {
      threads_.emplace_back([this]() { worker_main(); });
    }
  }
}

ShardedKernel::~ShardedKernel() {
  if (!threads_.empty()) {
    stop_ = true;
    start_gate_->barrier.arrive_and_wait();  // releases workers; they observe stop_
    for (std::thread& t : threads_) t.join();
  }
}

ShardChannel& ShardedKernel::add_channel(PartitionId src, PartitionId dst,
                                         Duration lookahead) {
  SON_DCHECK(src < parts_.size() && dst < parts_.size() && src != dst,
             "channel endpoints must be two distinct partitions");
  SON_DCHECK(lookahead > Duration::zero(),
             "a zero-lookahead cut admits no conservative parallelism");
  SON_DCHECK(channel(src, dst) == nullptr, "one channel per ordered partition pair");
  channels_.push_back(std::unique_ptr<ShardChannel>(new ShardChannel{src, dst, lookahead}));
  ShardChannel* ch = channels_.back().get();
  parts_[dst].in.push_back(ch);
  return *ch;
}

ShardChannel* ShardedKernel::channel(PartitionId src, PartitionId dst) {
  for (const auto& ch : channels_) {
    if (ch->src_ == src && ch->dst_ == dst) return ch.get();
  }
  return nullptr;
}

TimePoint ShardedKernel::now() const {
  TimePoint floor = TimePoint::max();
  for (const Part& p : parts_) floor = std::min(floor, p.committed);
  return floor;
}

std::uint64_t ShardedKernel::events_fired() const {
  std::uint64_t n = control_.events_fired();
  for (const Part& p : parts_) n += p.sim.events_fired();
  return n;
}

std::size_t ShardedKernel::pending_events() const {
  std::size_t n = control_.pending_events();
  for (const Part& p : parts_) n += p.sim.pending_events();
  return n;
}

Duration ShardedKernel::min_lookahead() const {
  Duration l = Duration::max();
  for (const auto& ch : channels_) l = std::min(l, ch->lookahead_);
  return l;
}

TimePoint ShardedKernel::horizon_of(PartitionId p, TimePoint cap) const {
  TimePoint h = cap;
  for (const ShardChannel* ch : parts_[p].in) {
    h = std::min(h, parts_[ch->src_].committed + ch->lookahead_);
  }
  return std::max(h, parts_[p].committed);
}

void ShardedKernel::run_slice(PartitionId p) {
  Part& part = parts_[p];
  if (context_) context_(&part.sim);
  if (inclusive_round_) {
    (void)part.sim.run_until(part.round_bound);
  } else {
    (void)part.sim.run_before(part.round_bound);
  }
  if (context_) context_(nullptr);
}

void ShardedKernel::run_control_until(TimePoint t) {
  if (context_) context_(&control_);
  (void)control_.run_until(t);
  if (context_) context_(nullptr);
}

void ShardedKernel::drain_work() {
  for (;;) {
    const std::size_t i = next_work_.fetch_add(1, std::memory_order_relaxed);
    if (i >= parts_.size()) return;
    run_slice(static_cast<PartitionId>(i));
  }
}

void ShardedKernel::worker_main() {
  for (;;) {
    start_gate_->barrier.arrive_and_wait();
    if (stop_) return;
    drain_work();
    end_gate_->barrier.arrive_and_wait();
  }
}

void ShardedKernel::execute_round(bool inclusive) {
  inclusive_round_ = inclusive;
  if (threads_.empty()) {
    for (PartitionId p = 0; p < parts_.size(); ++p) run_slice(p);
    return;
  }
  next_work_.store(0, std::memory_order_relaxed);
  in_round_.store(true, std::memory_order_release);
  start_gate_->barrier.arrive_and_wait();
  drain_work();  // the coordinator is one of the executors
  end_gate_->barrier.arrive_and_wait();
  in_round_.store(false, std::memory_order_release);
}

void ShardedKernel::flush_channels() {
  // Fixed drain order (channel creation order, FIFO within a channel) means
  // cross-shard arrivals get deterministic queue sequence numbers in the
  // destination — worker count never influences same-instant tie-breaks.
  for (const auto& ch : channels_) {
    Simulator& dst = parts_[ch->dst_].sim;
    for (ShardChannel::Pending& e : ch->buf_) {
      SON_DCHECK(e.when >= parts_[ch->dst_].committed,
                 "cross-shard event landed in the destination's past");
      (void)dst.schedule_at(e.when, std::move(e.cb));
    }
    ch->buf_.clear();
  }
}

std::uint64_t ShardedKernel::run_until(TimePoint deadline) {
  SON_DCHECK(deadline >= now(), "run_until deadline precedes the committed floor");
  const std::uint64_t fired_before = events_fired();
  context_ = context_factory_ ? context_factory_() : WorkerContext{};

  for (;;) {
    // Everything must rendezvous at the earliest pending global event, else
    // at the deadline.
    const TimePoint barrier = std::min(deadline, control_.next_event_time());

    bool closing = true;
    for (PartitionId p = 0; p < parts_.size(); ++p) {
      const TimePoint h = horizon_of(p, barrier);
      parts_[p].round_bound = h;
      closing = closing && h == barrier;
    }
    for (const auto& ch : channels_) ch->floor_ = parts_[ch->src_].committed;

    execute_round(/*inclusive=*/false);
    for (Part& p : parts_) p.committed = p.round_bound;
    flush_channels();
    ++rounds_;
    if (!closing) continue;

    // Every partition is quiesced at `barrier`: global events at that instant
    // run now, before any partition event at the same time.
    run_control_until(barrier);
    if (barrier < deadline) continue;

    // Final inclusive pass: events at exactly the deadline (including any a
    // global event just injected). Cross-shard pushes made here are due at
    // >= deadline + lookahead, so one pass suffices; the flush parks them in
    // the destination queues for a later run_until.
    for (Part& p : parts_) p.round_bound = deadline;
    for (const auto& ch : channels_) ch->floor_ = deadline;
    execute_round(/*inclusive=*/true);
    for (Part& p : parts_) p.committed = deadline;
    flush_channels();
    break;
  }

  context_ = WorkerContext{};
  return events_fired() - fired_before;
}

}  // namespace son::sim
