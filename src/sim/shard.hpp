// Sharded simulation kernel: conservative parallel discrete-event execution.
//
// The topology is partitioned (by site/city — topo:: supplies the
// assignment); each partition owns a private Simulator (event queue + clock)
// and partitions interact ONLY through typed ShardChannels. A channel from
// partition S to partition D carries a lookahead L > 0 — the minimum delay
// any event crossing S→D can add (for the underlay: the smallest propagation
// delay over the links that cross the cut, plus the per-hop router latency).
// That bound is what makes conservative synchronization work: while S is
// still executing events at time t, nothing it does can affect D before
// t + L, so D may safely run ahead to min over in-channels of
// (committed(S) + L) — its horizon — without ever receiving an event in its
// past (Chandy–Misra–Bryant, with a barrier per round instead of null
// messages).
//
// Execution proceeds in rounds:
//   1. (coordinator) compute every partition's horizon, capped at the next
//      global-event time;
//   2. (workers) run each partition's events with time < horizon — partitions
//      are claimed dynamically, so any worker may run any partition;
//   3. (coordinator) flush every channel, in channel-creation order, into the
//      destination queues;
//   4. when all partitions reach the cap, run the pending global events with
//      every worker quiesced, then continue.
//
// Determinism contract: the events a partition executes in a round, and the
// (time, seq) order the flush assigns to cross-shard arrivals, depend only on
// the horizons — which are a pure function of the partition structure, the
// channel lookaheads, and the event timeline. The worker count K only changes
// which OS thread runs a partition's round, never what the round contains:
// workers=1 and workers=K are bit-identical by construction (pinned by the
// sharded golden-run test).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "sim/check.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace son::sim {

using PartitionId = std::uint32_t;

class ShardedKernel;

/// The only legal carrier for cross-partition events. push() may only be
/// called from the source partition's executing round (or from the
/// coordinator thread while no round is running); the kernel drains the
/// buffer into the destination partition's queue at the next round boundary.
class ShardChannel {
 public:
  ShardChannel(const ShardChannel&) = delete;
  ShardChannel& operator=(const ShardChannel&) = delete;

  /// Enqueues `cb` for delivery into the destination partition at `when`.
  /// The lookahead contract requires when >= (source round start + lookahead);
  /// violating it would let an event land in the destination's past.
  void push(TimePoint when, Callback cb) {
    SON_DCHECK(when >= floor_ + lookahead_,
               "cross-shard event violates the channel's lookahead bound");
    // son-analyze: allow(hot-path-alloc) "staging buffer drains every round; capacity plateaus at the per-round burst size"
    buf_.push_back(Pending{when, std::move(cb)});
    ++total_pushed_;
  }

  [[nodiscard]] PartitionId source() const { return src_; }
  [[nodiscard]] PartitionId dest() const { return dst_; }
  [[nodiscard]] Duration lookahead() const { return lookahead_; }
  [[nodiscard]] std::uint64_t total_pushed() const { return total_pushed_; }

 private:
  friend class ShardedKernel;

  ShardChannel(PartitionId src, PartitionId dst, Duration lookahead)
      : src_{src}, dst_{dst}, lookahead_{lookahead} {}

  struct Pending {
    TimePoint when;
    Callback cb;
  };

  PartitionId src_;
  PartitionId dst_;
  Duration lookahead_;
  TimePoint floor_;  // source partition's current round start (kernel-maintained)
  std::vector<Pending> buf_;
  std::uint64_t total_pushed_ = 0;
};

class ShardedKernel {
 public:
  /// `workers` is the executor thread count (clamped to [1, num_partitions]);
  /// it affects wall-clock only, never results. workers=1 runs every round
  /// inline on the calling thread with no thread machinery at all.
  explicit ShardedKernel(std::size_t num_partitions, unsigned workers = 1);
  ~ShardedKernel();
  ShardedKernel(const ShardedKernel&) = delete;
  ShardedKernel& operator=(const ShardedKernel&) = delete;

  [[nodiscard]] std::size_t num_partitions() const { return parts_.size(); }
  [[nodiscard]] unsigned workers() const { return workers_; }

  /// A partition's private simulator. Schedule on it only from that
  /// partition's own events (or from the coordinator before/between runs) —
  /// cross-partition scheduling must go through a ShardChannel (son-lint's
  /// cross-shard rule flags direct violations).
  [[nodiscard]] Simulator& shard_sim(PartitionId p) { return parts_[p].sim; }

  /// The control-plane simulator for global events (failure injection,
  /// routing convergence). Its events run at round barriers with every
  /// partition quiesced at exactly the event time, BEFORE any partition event
  /// at that same instant.
  [[nodiscard]] Simulator& control_sim() { return control_; }

  /// Schedules a global event (see control_sim()).
  void schedule_global(TimePoint when, Callback cb) {
    SON_DCHECK(!in_round(), "schedule_global may not be called from a partition event");
    (void)control_.schedule_at(when, std::move(cb));
  }

  /// Registers the channel for src→dst cross-partition events. At most one
  /// channel per ordered pair; lookahead must be > 0 (a zero-lookahead cut
  /// admits no conservative parallelism).
  ShardChannel& add_channel(PartitionId src, PartitionId dst, Duration lookahead);
  /// The channel for src→dst, or nullptr if none was registered.
  [[nodiscard]] ShardChannel* channel(PartitionId src, PartitionId dst);

  /// Runs all partitions (and due global events) up to and including
  /// `deadline`; afterwards every partition clock reads `deadline`. Returns
  /// events fired across all partitions plus the control plane.
  std::uint64_t run_until(TimePoint deadline);
  std::uint64_t run_for(Duration d) { return run_until(now() + d); }

  /// The committed floor: every event strictly before this time has fired.
  [[nodiscard]] TimePoint now() const;

  [[nodiscard]] std::uint64_t events_fired() const;
  [[nodiscard]] std::size_t pending_events() const;
  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }
  /// True while worker threads may be executing partition events.
  [[nodiscard]] bool in_round() const { return in_round_.load(std::memory_order_acquire); }
  /// Smallest lookahead over all channels (Duration::max() if none) — the
  /// per-round progress guarantee.
  [[nodiscard]] Duration min_lookahead() const;

  // ---- Horizon introspection (tests) ------------------------------------
  /// The time partition p could advance to in the next round: the cap,
  /// tightened by committed(source) + lookahead over its in-channels, never
  /// below its own committed time.
  [[nodiscard]] TimePoint horizon_of(PartitionId p, TimePoint cap) const;
  /// All events strictly before this time have fired in partition p.
  [[nodiscard]] TimePoint committed(PartitionId p) const { return parts_[p].committed; }

  // ---- Worker-thread context propagation ---------------------------------
  /// Hook for thread-local context (the obs layer's recorder/registry — sim
  /// cannot depend on obs, so the coupling is inverted). The factory runs on
  /// the thread calling run_until, once per run, and may snapshot that
  /// thread's state; the returned context is invoked on the executing thread
  /// as ctx(&partition_sim) before a partition's (or the control plane's)
  /// slice and ctx(nullptr) after it. It may be invoked concurrently from
  /// several workers, so it must only touch thread-local state.
  using WorkerContext = std::function<void(Simulator*)>;
  using WorkerContextFactory = std::function<WorkerContext()>;
  void set_worker_context_factory(WorkerContextFactory factory) {
    SON_DCHECK(!in_round(), "set the context factory between runs, not during one");
    context_factory_ = std::move(factory);
  }

 private:
  struct alignas(64) Part {
    Simulator sim;
    TimePoint committed;          // all events < committed have fired
    TimePoint round_bound;        // this round's horizon (coordinator-set)
    std::vector<ShardChannel*> in;  // channels feeding this partition
  };

  void execute_round(bool inclusive);
  void run_slice(PartitionId p);
  void run_control_until(TimePoint t);
  void flush_channels();
  void worker_main();
  void drain_work();

  std::vector<Part> parts_;
  Simulator control_;
  std::vector<std::unique_ptr<ShardChannel>> channels_;  // creation order = flush order
  unsigned workers_;
  std::uint64_t rounds_ = 0;

  WorkerContextFactory context_factory_;
  WorkerContext context_;  // this run's context (see factory docs)

  // Thread pool (only when workers_ > 1): workers park on start_gate_ between
  // rounds; the coordinator participates in every round as one executor.
  struct Gate;  // a tiny reusable barrier (shard.cpp)
  std::vector<std::thread> threads_;
  std::unique_ptr<Gate> start_gate_;
  std::unique_ptr<Gate> end_gate_;
  std::atomic<std::size_t> next_work_{0};
  std::atomic<bool> in_round_{false};
  bool inclusive_round_ = false;
  bool stop_ = false;
};

}  // namespace son::sim
