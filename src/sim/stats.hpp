// Measurement helpers: online moments, exact percentile samples, and
// fixed-width histograms, used by every benchmark harness.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace son::sim {

/// Welford online mean/variance plus min/max.
class OnlineStats {
 public:
  void add(double x);

  /// Folds `other` in as if its samples had been add()ed here (Chan et al.
  /// parallel moments). Enables per-replication stats collected on worker
  /// threads to be combined into one aggregate.
  void merge(const OnlineStats& other);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores every sample; exact quantiles. Experiments here are small enough
/// (≤ a few million samples) that exactness beats sketching.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  void add(Duration d) { add(d.to_millis_f()); }

  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Quantile in [0,1], linear interpolation between order statistics.
  /// Returns 0 for an empty set.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double p99() const { return quantile(0.99); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Fraction of samples <= threshold.
  [[nodiscard]] double fraction_at_most(double threshold) const;

  void clear() { samples_.clear(); sorted_ = false; }

  /// Appends all of `other`'s samples; quantiles over the merged set equal
  /// those of a single stream that saw both sets.
  void merge(const SampleSet& other);

  /// All samples in ascending order.
  [[nodiscard]] const std::vector<double>& sorted_values() const;

  /// "n=…, mean=…, p50=…, p99=…, max=…" one-liner for reports.
  [[nodiscard]] std::string summary(const std::string& unit = "") const;

 private:
  void sort() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Fixed-width histogram over [lo, hi); out-of-range values clamp to the
/// edge bins. Useful for latency/jitter distribution plots.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  /// Adds `other`'s bin counts. Both histograms must have identical
  /// [lo, hi) x bins geometry (asserted).
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double bin_width() const { return width_; }
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double bin_lo(std::size_t i) const {
    return lo_ + width_ * static_cast<double>(i);
  }
  /// Multi-line ASCII rendering (for bench output).
  [[nodiscard]] std::string render(std::size_t max_width = 50) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace son::sim
