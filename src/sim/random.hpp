// Deterministic random number generation for simulations.
//
// PCG32 (O'Neill, pcg-random.org; permuted congruential generator) — small,
// fast, statistically strong, and trivially seedable per component so that
// adding a component never perturbs another component's stream.
#pragma once

#include <cstdint>
#include <cmath>

namespace son::sim {

class Rng {
 public:
  /// Seeds the generator. `stream` selects one of 2^63 independent sequences.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL, std::uint64_t stream = 1)
      : state_{0}, inc_{(stream << 1u) | 1u} {
    next_u32();
    state_ += seed;
    next_u32();
  }

  /// Derives an independent generator for a sub-component. Deterministic in
  /// (parent seed, label): the same label always yields the same stream.
  [[nodiscard]] Rng fork(std::uint64_t label) const {
    return Rng{RawTag{}, splitmix(state_ ^ splitmix(label)), splitmix(inc_ + label)};
  }

  std::uint32_t next_u32() {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  std::uint64_t next_u64() {
    return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  }

  /// Uniform in [0, 1).
  double uniform() { return static_cast<double>(next_u32()) * 0x1p-32; }

  /// Uniform in [lo, hi]; requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit range
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
    std::uint64_t v;
    do { v = next_u64(); } while (v >= limit);
    return lo + static_cast<std::int64_t>(v % range);
  }

  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  bool bernoulli(double p) { return uniform() < p; }

  /// Exponential with the given mean (> 0).
  double exponential(double mean) {
    double u;
    do { u = uniform(); } while (u <= 0.0);
    return -mean * std::log(u);
  }

  /// Standard normal via Box–Muller (one value per call; simple and adequate).
  double normal(double mean = 0.0, double stddev = 1.0) {
    double u1;
    do { u1 = uniform(); } while (u1 <= 0.0);
    const double u2 = uniform();
    const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    return mean + stddev * z;
  }

  /// Fisher–Yates shuffle of an indexable container.
  template <typename C>
  void shuffle(C& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      const std::size_t j = index(i);
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

 private:
  struct RawTag {};
  Rng(RawTag, std::uint64_t raw_state, std::uint64_t raw_inc)
      : state_{raw_state}, inc_{raw_inc | 1u} {}

  static constexpr std::uint64_t splitmix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  std::uint64_t state_;
  std::uint64_t inc_;
};

/// RNG stream for one simulated component, keyed by its FIXED coordinates:
/// (partition, component kind, node/instance). The key deliberately excludes
/// anything about the execution layout — worker-thread count, shard-to-worker
/// mapping, construction order — so a node draws the identical sequence
/// whether the run uses 1 worker or K. (Deriving streams by forking per shard
/// in shard order would leak the layout into the stream: the sharded-kernel
/// determinism contract forbids that, and the layout-regression test in
/// test_sim_shard.cpp demonstrates the failure mode.)
[[nodiscard]] inline Rng component_stream(std::uint64_t seed, std::uint32_t partition,
                                          std::uint32_t component, std::uint64_t node) {
  return Rng{seed, /*stream=*/0x50A7}
      .fork(0xC0DE000000000000ULL | partition)
      .fork(0xC07F000000000000ULL | component)
      .fork(node);
}

}  // namespace son::sim
