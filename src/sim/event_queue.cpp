#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace son::sim {

EventId EventQueue::schedule(TimePoint when, Callback cb) {
  assert(cb && "scheduling a null callback");
  const EventId id = next_id_++;
  heap_.push_back(Entry{when, next_seq_++, id, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  pending_.insert(id);
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (pending_.erase(id) == 0) return false;
  cancelled_.insert(id);
  return true;
}

void EventQueue::skip_cancelled() const {
  while (!heap_.empty() && cancelled_.contains(heap_.front().id)) {
    cancelled_.erase(heap_.front().id);
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

TimePoint EventQueue::next_time() const {
  skip_cancelled();
  assert(!heap_.empty() && "next_time() on empty queue");
  return heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  skip_cancelled();
  assert(!heap_.empty() && "pop() on empty queue");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  pending_.erase(e.id);
  return Fired{e.time, std::move(e.cb)};
}

void EventQueue::clear() {
  heap_.clear();
  cancelled_.clear();
  pending_.clear();
}

}  // namespace son::sim
