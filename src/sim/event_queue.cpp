#include "sim/event_queue.hpp"

#include <algorithm>

#include "sim/check.hpp"

namespace son::sim {

namespace {
constexpr EventId make_id(std::uint32_t slot, std::uint32_t gen) {
  return (static_cast<EventId>(gen) << 32) | (slot + 1u);
}
}  // namespace

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNilSlot) {
    const std::uint32_t idx = free_head_;
    SON_DCHECK(idx < slots_.size(), "free list points outside the slot pool");
    SON_DCHECK(!slots_[idx].armed && !slots_[idx].cb,
               "free-list slot still armed or holding a callback");
    free_head_ = slots_[idx].next_free;
    return idx;
  }
  // son-analyze: allow(hot-path-alloc) "slot pool grows to peak live-event count then stabilizes; pinned by alloc-probe test"
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t idx) const {
  SON_DCHECK(idx < slots_.size(), "releasing a slot outside the pool");
  Slot& s = slots_[idx];
  s.cb.reset();
  s.armed = false;
  ++s.gen;
  if (s.gen == 0) ++s.gen;  // generation 0 would collide with kInvalidEventId
  s.next_free = free_head_;
  free_head_ = idx;
}

EventId EventQueue::schedule(TimePoint when, Callback cb) {
  SON_DCHECK(static_cast<bool>(cb), "scheduling a null callback");
  const std::uint32_t idx = acquire_slot();
  Slot& s = slots_[idx];
  s.cb = std::move(cb);
  s.armed = true;
  // son-analyze: allow(hot-path-alloc) "heap capacity tracks the slot pool: growth stops once the pool stabilizes"
  heap_.push_back(Entry{when, next_seq_++, idx, s.gen});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_;
  return make_id(idx, s.gen);
}

bool EventQueue::cancel(EventId id) {
  const auto raw = static_cast<std::uint32_t>(id & 0xffffffffu);
  if (raw == 0) return false;
  const std::uint32_t idx = raw - 1;
  if (idx >= slots_.size()) return false;
  Slot& s = slots_[idx];
  if (!s.armed || s.gen != static_cast<std::uint32_t>(id >> 32)) return false;
  // Lazy removal: the heap entry stays until it surfaces; the callback's
  // captured state is released eagerly.
  s.armed = false;
  s.cb.reset();
  --live_;
  return true;
}

void EventQueue::skip_cancelled() const {
  while (!heap_.empty() && !slots_[heap_.front().slot].armed) {
    SON_DCHECK(slots_[heap_.front().slot].gen == heap_.front().gen,
               "cancelled heap entry's generation drifted from its slot");
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    release_slot(heap_.back().slot);
    heap_.pop_back();
  }
  SON_DCHECK(live_ <= heap_.size(), "live counter exceeds heap entries");
}

TimePoint EventQueue::next_time() const {
  skip_cancelled();
  SON_DCHECK(!heap_.empty(), "next_time() on empty queue");
  return heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  skip_cancelled();
  SON_DCHECK(!heap_.empty(), "pop() on empty queue");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Entry e = heap_.back();
  heap_.pop_back();
  Slot& s = slots_[e.slot];
  SON_DCHECK(s.armed && s.gen == e.gen,
             "popped entry does not own its slot (stale generation or disarmed)");
  Fired f{e.time, std::move(s.cb)};
  --live_;
  release_slot(e.slot);
  return f;
}

void EventQueue::clear() {
  heap_.clear();
  free_head_ = kNilSlot;
  for (std::uint32_t i = static_cast<std::uint32_t>(slots_.size()); i-- > 0;) {
    Slot& s = slots_[i];
    s.cb.reset();
    s.armed = false;
    ++s.gen;
    if (s.gen == 0) ++s.gen;
    s.next_free = free_head_;
    free_head_ = i;
  }
  live_ = 0;
}

}  // namespace son::sim
