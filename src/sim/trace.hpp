// Structured event tracing.
//
// Components format messages only when the level is enabled; the sink decides
// where records go (stderr by default, capture buffer in tests).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace son::sim {

enum class TraceLevel : std::uint8_t { kDebug = 0, kInfo, kWarn, kError, kOff };

[[nodiscard]] std::string_view to_string(TraceLevel lvl);

class Tracer {
 public:
  struct Record {
    TimePoint time;
    TraceLevel level;
    std::string component;
    std::string message;
  };
  using Sink = std::function<void(const Record&)>;

  /// Default tracer is off (benchmarks run silent by default).
  Tracer() = default;
  explicit Tracer(TraceLevel level, Sink sink = stderr_sink())
      : level_{level}, sink_{std::move(sink)} {}

  [[nodiscard]] bool enabled(TraceLevel lvl) const { return lvl >= level_ && sink_; }
  void set_level(TraceLevel lvl) { level_ = lvl; }
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  void emit(TimePoint now, TraceLevel lvl, std::string_view component, std::string message) const {
    if (!enabled(lvl)) return;
    sink_(Record{now, lvl, std::string{component}, std::move(message)});
  }

  [[nodiscard]] static Sink stderr_sink();

 private:
  TraceLevel level_ = TraceLevel::kOff;
  Sink sink_;
};

}  // namespace son::sim
