#include "sim/alloc_probe.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {
// son-analyze: allow(mutable-static) "monotonic relaxed counters owned by the counting allocator; diagnostics only"
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_deallocs{0};  // son-analyze: allow(mutable-static) "same argument as g_allocs above"

void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  // malloc(0) may return nullptr; operator new must return a unique pointer.
  return std::malloc(n == 0 ? 1 : n);
}

void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     n == 0 ? 1 : n) != 0) {
    return nullptr;
  }
  return p;
}

void counted_free(void* p) {
  if (p != nullptr) g_deallocs.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}
}  // namespace

namespace son::sim {
std::uint64_t alloc_count() { return g_allocs.load(std::memory_order_relaxed); }
std::uint64_t dealloc_count() { return g_deallocs.load(std::memory_order_relaxed); }
}  // namespace son::sim

// Global replacements. Strong definitions here override the (replaceable)
// library versions for any binary that links this TU. Every variant of new
// funnels through counted_alloc so the count is allocation-exact regardless
// of which form the container or sanitizer runtime picked.
void* operator new(std::size_t n) {
  void* p = counted_alloc(n);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}
void* operator new[](std::size_t n) {
  void* p = counted_alloc(n);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept { return counted_alloc(n); }
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  void* p = counted_aligned_alloc(n, static_cast<std::size_t>(a));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}
void* operator new[](std::size_t n, std::align_val_t a) {
  void* p = counted_aligned_alloc(n, static_cast<std::size_t>(a));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}
void* operator new(std::size_t n, std::align_val_t a, const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a, const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(n, static_cast<std::size_t>(a));
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { counted_free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  counted_free(p);
}
