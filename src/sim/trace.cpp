#include "sim/trace.hpp"

#include <cstdio>
#include <mutex>

namespace son::sim {

std::string_view to_string(TraceLevel lvl) {
  switch (lvl) {
    case TraceLevel::kDebug: return "DEBUG";
    case TraceLevel::kInfo: return "INFO";
    case TraceLevel::kWarn: return "WARN";
    case TraceLevel::kError: return "ERROR";
    case TraceLevel::kOff: return "OFF";
  }
  return "?";
}

Tracer::Sink Tracer::stderr_sink() {
  // One process-wide lock: replications may trace concurrently from the
  // experiment runner's worker threads, and a record must not interleave
  // with another thread's record mid-line.
  // son-analyze: allow(mutable-static) "serializes stderr sink output across worker threads; guards no simulation state"
  static std::mutex mu;
  return [](const Record& r) {
    const std::scoped_lock lock{mu};
    std::fprintf(stderr, "[%12.6f] %-5s %-20s %s\n", r.time.to_seconds_f(),
                 std::string{to_string(r.level)}.c_str(), r.component.c_str(),
                 r.message.c_str());
  };
}

}  // namespace son::sim
