#include "sim/trace.hpp"

#include <cstdio>

namespace son::sim {

std::string_view to_string(TraceLevel lvl) {
  switch (lvl) {
    case TraceLevel::kDebug: return "DEBUG";
    case TraceLevel::kInfo: return "INFO";
    case TraceLevel::kWarn: return "WARN";
    case TraceLevel::kError: return "ERROR";
    case TraceLevel::kOff: return "OFF";
  }
  return "?";
}

Tracer::Sink Tracer::stderr_sink() {
  return [](const Record& r) {
    std::fprintf(stderr, "[%12.6f] %-5s %-20s %s\n", r.time.to_seconds_f(),
                 std::string{to_string(r.level)}.c_str(), r.component.c_str(),
                 r.message.c_str());
  };
}

}  // namespace son::sim
