// Process-wide heap-allocation counters for no-allocation contracts.
//
// Several hot paths promise "zero per-flow heap allocations at steady state"
// (EventQueue slot pool, Router forwarding, client::FlowEngine ticking). The
// probe makes that promise testable: linking this translation unit replaces
// the global operator new/delete with counting wrappers, and alloc_count()
// reads the number of allocations performed so far. A test snapshots the
// counter around a warmed-up work window and asserts the delta is zero.
//
// The replacements live in the same TU as alloc_count(), so only binaries
// that actually reference the probe pull in the counting allocator; every
// other target keeps the toolchain default. Counting is one relaxed atomic
// increment per allocation and composes with ASan/TSan (the wrappers defer
// to malloc/free, which the sanitizers intercept as usual).
#pragma once

#include <cstdint>

namespace son::sim {

/// Heap allocations (operator new, scalar/array/nothrow/aligned) observed
/// process-wide since startup. Monotonic; only meaningful as a delta.
[[nodiscard]] std::uint64_t alloc_count();

/// Matching deallocation count (operator delete variants).
[[nodiscard]] std::uint64_t dealloc_count();

}  // namespace son::sim
