// Discrete-event simulator run loop.
//
// All simulated components hold a Simulator& and derive their notion of time
// exclusively from it: now() for reads, schedule()/cancel() for timers.
// Runs are deterministic given the same schedule order and RNG seeds.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace son::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `cb` to run `delay` from now. Negative delays are clamped to
  /// "immediately" (still FIFO-ordered after events already due now).
  EventId schedule(Duration delay, EventQueue::Callback cb) {
    const Duration d = delay < Duration::zero() ? Duration::zero() : delay;
    return queue_.schedule(now_ + d, std::move(cb));
  }

  EventId schedule_at(TimePoint when, EventQueue::Callback cb) {
    return queue_.schedule(when < now_ ? now_ : when, std::move(cb));
  }

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs events until the queue drains. Returns the number of events fired.
  std::uint64_t run();

  /// Runs events with time <= deadline; afterwards now() == deadline (unless
  /// the queue drained earlier with no event at/after deadline, in which case
  /// now() still advances to deadline). Returns events fired.
  std::uint64_t run_until(TimePoint deadline);

  /// Runs events with time strictly < bound and leaves now() at the last
  /// fired event (it does NOT advance to bound). The sharded kernel advances
  /// each partition in rounds whose right edge must stay open: an event at
  /// exactly the horizon may still be preceded by a same-instant cross-shard
  /// arrival, so it belongs to a later round. Returns events fired.
  std::uint64_t run_before(TimePoint bound);

  /// Convenience: run_until(now() + d).
  std::uint64_t run_for(Duration d) { return run_until(now_ + d); }

  /// Time of the earliest pending event, or TimePoint::max() if none.
  [[nodiscard]] TimePoint next_event_time() const {
    return queue_.empty() ? TimePoint::max() : queue_.next_time();
  }

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }

 private:
  EventQueue queue_;
  TimePoint now_;
  std::uint64_t fired_ = 0;
};

}  // namespace son::sim
