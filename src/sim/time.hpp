// Strong time types for the discrete-event simulator.
//
// All simulation time is integral nanoseconds. Strong types keep durations
// and absolute times from being mixed up and make unit mistakes (ms vs us)
// impossible to write silently.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace son::sim {

/// A span of simulated time. Internally whole nanoseconds.
class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration nanoseconds(std::int64_t ns) { return Duration{ns}; }
  [[nodiscard]] static constexpr Duration microseconds(std::int64_t us) { return Duration{us * 1000}; }
  [[nodiscard]] static constexpr Duration milliseconds(std::int64_t ms) { return Duration{ms * 1'000'000}; }
  [[nodiscard]] static constexpr Duration seconds(std::int64_t s) { return Duration{s * 1'000'000'000}; }
  /// Fractional construction (e.g. 0.25 ms); rounds toward zero.
  [[nodiscard]] static constexpr Duration from_seconds_f(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e9)};
  }
  [[nodiscard]] static constexpr Duration from_millis_f(double ms) {
    return Duration{static_cast<std::int64_t>(ms * 1e6)};
  }
  [[nodiscard]] static constexpr Duration zero() { return Duration{0}; }
  [[nodiscard]] static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr std::int64_t us() const { return ns_ / 1000; }
  [[nodiscard]] constexpr std::int64_t ms() const { return ns_ / 1'000'000; }
  [[nodiscard]] constexpr double to_seconds_f() const { return static_cast<double>(ns_) * 1e-9; }
  [[nodiscard]] constexpr double to_millis_f() const { return static_cast<double>(ns_) * 1e-6; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return Duration{ns_ + o.ns_}; }
  constexpr Duration operator-(Duration o) const { return Duration{ns_ - o.ns_}; }
  constexpr Duration operator*(std::int64_t k) const { return Duration{ns_ * k}; }
  constexpr Duration operator*(int k) const { return Duration{ns_ * k}; }
  constexpr Duration operator*(double k) const {
    return Duration{static_cast<std::int64_t>(static_cast<double>(ns_) * k)};
  }
  constexpr Duration operator/(std::int64_t k) const { return Duration{ns_ / k}; }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }
  constexpr Duration operator-() const { return Duration{-ns_}; }

  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_ = 0;
};

/// An absolute instant in simulated time (nanoseconds since simulation start).
class TimePoint {
 public:
  constexpr TimePoint() = default;

  [[nodiscard]] static constexpr TimePoint from_ns(std::int64_t ns) { return TimePoint{ns}; }
  [[nodiscard]] static constexpr TimePoint zero() { return TimePoint{0}; }
  [[nodiscard]] static constexpr TimePoint max() {
    return TimePoint{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds_f() const { return static_cast<double>(ns_) * 1e-9; }
  [[nodiscard]] constexpr double to_millis_f() const { return static_cast<double>(ns_) * 1e-6; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint operator+(Duration d) const { return TimePoint{ns_ + d.ns()}; }
  constexpr TimePoint operator-(Duration d) const { return TimePoint{ns_ - d.ns()}; }
  constexpr Duration operator-(TimePoint o) const { return Duration::nanoseconds(ns_ - o.ns_); }
  constexpr TimePoint& operator+=(Duration d) { ns_ += d.ns(); return *this; }

  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit TimePoint(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_ = 0;
};

constexpr TimePoint operator+(Duration d, TimePoint t) { return t + d; }

namespace literals {
constexpr Duration operator""_ns(unsigned long long v) {
  return Duration::nanoseconds(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_us(unsigned long long v) {
  return Duration::microseconds(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_ms(unsigned long long v) {
  return Duration::milliseconds(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_s(unsigned long long v) {
  return Duration::seconds(static_cast<std::int64_t>(v));
}
}  // namespace literals

}  // namespace son::sim
