#include "sim/stats.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace son::sim {

void OnlineStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void SampleSet::sort() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  sort();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto i = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(i);
  if (i + 1 >= samples_.size()) return samples_.back();
  return samples_[i] * (1.0 - frac) + samples_[i + 1] * frac;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::min() const {
  if (samples_.empty()) return 0.0;
  sort();
  return samples_.front();
}

double SampleSet::max() const {
  if (samples_.empty()) return 0.0;
  sort();
  return samples_.back();
}

double SampleSet::fraction_at_most(double threshold) const {
  if (samples_.empty()) return 0.0;
  sort();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), threshold);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

void SampleSet::merge(const SampleSet& other) {
  if (other.samples_.empty()) return;
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_ = false;
}

const std::vector<double>& SampleSet::sorted_values() const {
  sort();
  return samples_;
}

std::string SampleSet::summary(const std::string& unit) const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "n=%zu mean=%.3f%s p50=%.3f%s p90=%.3f%s p99=%.3f%s max=%.3f%s",
                size(), mean(), unit.c_str(), quantile(0.5), unit.c_str(),
                quantile(0.9), unit.c_str(), quantile(0.99), unit.c_str(), max(),
                unit.c_str());
  return buf;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, width_{(hi - lo) / static_cast<double>(bins)}, counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  auto idx = static_cast<std::int64_t>((x - lo_) / width_);
  idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

void Histogram::merge(const Histogram& other) {
  assert(lo_ == other.lo_ && width_ == other.width_ &&
         counts_.size() == other.counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

std::string Histogram::render(std::size_t max_width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar_len =
        static_cast<std::size_t>(static_cast<double>(counts_[i]) /
                                 static_cast<double>(peak) * static_cast<double>(max_width));
    std::snprintf(line, sizeof line, "%10.3f..%-10.3f %8llu |", bin_lo(i),
                  bin_lo(i + 1), static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar_len, '#');
    out += '\n';
  }
  return out;
}

}  // namespace son::sim
