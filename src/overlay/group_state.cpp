#include "overlay/group_state.hpp"

#include <algorithm>

namespace son::overlay {

bool GroupDb::apply(const GroupStateAd& ad) {
  if (ad.origin >= by_origin_.size()) return false;
  PerOrigin& po = by_origin_[ad.origin];
  if (ad.incarnation < po.incarnation) return false;  // a previous life's flood
  if (ad.incarnation == po.incarnation && ad.seq <= po.seq) return false;
  po.incarnation = ad.incarnation;
  po.seq = ad.seq;
  po.joined = ad.joined;
  ++version_;
  return true;
}

bool GroupDb::evict_origin(NodeId origin) {
  if (origin >= by_origin_.size()) return false;
  PerOrigin& po = by_origin_[origin];
  if (po.joined.empty()) return false;
  po.joined.clear();
  ++version_;
  return true;
}

std::uint64_t GroupDb::stored_seq(NodeId origin) const {
  return origin < by_origin_.size() ? by_origin_[origin].seq : 0;
}

std::uint32_t GroupDb::stored_incarnation(NodeId origin) const {
  return origin < by_origin_.size() ? by_origin_[origin].incarnation : 0;
}

std::vector<NodeId> GroupDb::members_of(GroupId g) const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < by_origin_.size(); ++n) {
    if (is_member(n, g)) out.push_back(n);
  }
  return out;
}

bool GroupDb::is_member(NodeId node, GroupId g) const {
  if (node >= by_origin_.size()) return false;
  const auto& joined = by_origin_[node].joined;
  return std::find(joined.begin(), joined.end(), g) != joined.end();
}

}  // namespace son::overlay
