#include "overlay/group_state.hpp"

#include <algorithm>

namespace son::overlay {

bool GroupDb::apply(const GroupStateAd& ad) {
  if (ad.origin >= by_origin_.size()) return false;
  PerOrigin& po = by_origin_[ad.origin];
  if (ad.seq <= po.seq) return false;
  po.seq = ad.seq;
  po.joined = ad.joined;
  ++version_;
  return true;
}

std::uint64_t GroupDb::stored_seq(NodeId origin) const {
  return origin < by_origin_.size() ? by_origin_[origin].seq : 0;
}

std::vector<NodeId> GroupDb::members_of(GroupId g) const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < by_origin_.size(); ++n) {
    if (is_member(n, g)) out.push_back(n);
  }
  return out;
}

bool GroupDb::is_member(NodeId node, GroupId g) const {
  if (node >= by_origin_.size()) return false;
  const auto& joined = by_origin_[node].joined;
  return std::find(joined.begin(), joined.end(), g) != joined.end();
}

}  // namespace son::overlay
