// Best-Effort and Reliable Data Link protocols.
//
// Reliable Data Link (§III-A, [4]): hop-by-hop ARQ on each overlay link.
// "By adding automatic repeat request (ARQ) mechanisms to each overlay link,
// the overlay can localize and recover losses much faster and with lower
// overhead than an end-to-end approach. To provide smoother packet delivery,
// intermediate nodes are permitted to forward packets out of order; the
// final destination is responsible for buffering received packets until
// they can be delivered in order."
#pragma once

#include <deque>
#include <map>
#include <set>

#include "obs/counters.hpp"
#include "overlay/link_protocols.hpp"

namespace son::overlay {

class BestEffortEndpoint final : public LinkProtocolEndpoint {
 public:
  using LinkProtocolEndpoint::LinkProtocolEndpoint;

  bool send(Message msg) override;
  void on_frame(const LinkFrame& f) override;
  [[nodiscard]] LinkProtocol protocol() const override { return LinkProtocol::kBestEffort; }
};

class ReliableLinkEndpoint final : public LinkProtocolEndpoint {
 public:
  ReliableLinkEndpoint(LinkContext& ctx, const LinkProtocolConfig& cfg)
      : LinkProtocolEndpoint(ctx, cfg),
        obs_retransmissions_{obs::counter("overlay.reliable.retransmissions")},
        obs_nack_batches_{obs::counter("overlay.reliable.nack_batches")},
        obs_rto_backoffs_{obs::counter("overlay.reliable.rto_backoffs")} {}
  ~ReliableLinkEndpoint() override;

  bool send(Message msg) override;
  void on_frame(const LinkFrame& f) override;
  [[nodiscard]] LinkProtocol protocol() const override { return LinkProtocol::kReliable; }

  struct Stats {
    std::uint64_t data_sent = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t duplicates_received = 0;
    std::uint64_t delivered_up = 0;
    /// Entries retired by SACK inference: the peer reported them received
    /// out of order, so they stopped being RTO candidates before the
    /// cumulative ack caught up.
    std::uint64_t sacked = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  // --- Sender role ---
  struct Unacked {
    Message msg;
    sim::TimePoint last_sent;
    std::uint32_t sends = 0;
    /// This entry's current timeout. Starts at rto() on first send and
    /// doubles per expiry up to cfg_.max_rto (exponential backoff).
    sim::Duration rto = sim::Duration::zero();
  };
  void transmit_data(std::uint64_t seq, const Message& msg, bool retrans);
  void arm_retransmit_timer();
  void on_retransmit_timer();
  void handle_ack(const LinkFrame& f);
  [[nodiscard]] sim::Duration rto() const;
  /// Earliest last_sent + rto across unacked_ (must be non-empty).
  [[nodiscard]] sim::TimePoint next_rto_deadline() const;

  std::uint64_t next_seq_ = 1;
  std::map<std::uint64_t, Unacked> unacked_;
  sim::EventId retransmit_timer_ = sim::kInvalidEventId;
  /// When the armed retransmit timer fires; lets a new send with an earlier
  /// deadline re-arm instead of waiting behind a backed-off entry.
  sim::TimePoint retransmit_deadline_;

  // --- Receiver role ---
  void handle_data(const LinkFrame& f);
  void schedule_ack();
  void send_ack();

  std::uint64_t recv_cum_ = 0;       // highest in-order seq received
  std::uint64_t recv_max_ = 0;       // highest seq seen at all
  std::set<std::uint64_t> recv_ooo_; // received out-of-order beyond recv_cum_
  /// Held messages when reliable_ooo_forwarding is off (in-order ablation).
  std::map<std::uint64_t, Message> held_;
  sim::EventId ack_timer_ = sim::kInvalidEventId;

  Stats stats_;
  obs::Counter obs_retransmissions_;
  obs::Counter obs_nack_batches_;
  obs::Counter obs_rto_backoffs_;
};

}  // namespace son::overlay
