#include "overlay/reliable_link.hpp"

#include <algorithm>

namespace son::overlay {

// ---- Best effort -----------------------------------------------------------

bool BestEffortEndpoint::send(Message msg) {
  LinkFrame f;
  f.link = ctx_.link();
  f.from = ctx_.self();
  f.to = ctx_.peer();
  f.proto = LinkProtocol::kBestEffort;
  f.type = FrameType::kData;
  f.msg = std::move(msg);
  ctx_.send_frame(std::move(f));
  return true;
}

void BestEffortEndpoint::on_frame(const LinkFrame& f) {
  if (f.type == FrameType::kData && f.msg) {
    ctx_.deliver_up(*f.msg, f.link);
  }
}

// ---- Reliable data link ----------------------------------------------------

ReliableLinkEndpoint::~ReliableLinkEndpoint() {
  ctx_.simulator().cancel(retransmit_timer_);
  ctx_.simulator().cancel(ack_timer_);
}

sim::Duration ReliableLinkEndpoint::rto() const {
  return std::max(cfg_.min_rto, ctx_.rtt_estimate() * cfg_.rto_multiplier);
}

bool ReliableLinkEndpoint::send(Message msg) {
  if (unacked_.size() >= cfg_.reliable_window) {
    // Window exhausted: the link is badly backlogged. Shedding here (with
    // accounting) keeps the simulation honest instead of growing unbounded.
    ctx_.count_protocol_drop(LinkProtocol::kReliable);
    return false;
  }
  const std::uint64_t seq = next_seq_++;
  unacked_.emplace(seq, Unacked{msg, ctx_.simulator().now(), 1});
  transmit_data(seq, msg, false);
  arm_retransmit_timer();
  return true;
}

void ReliableLinkEndpoint::transmit_data(std::uint64_t seq, const Message& msg, bool retrans) {
  LinkFrame f;
  f.link = ctx_.link();
  f.from = ctx_.self();
  f.to = ctx_.peer();
  f.proto = LinkProtocol::kReliable;
  f.type = retrans ? FrameType::kRetransmission : FrameType::kData;
  f.seq = seq;
  f.msg = msg;
  ctx_.send_frame(std::move(f));
  if (retrans) {
    ++stats_.retransmissions;
  } else {
    ++stats_.data_sent;
  }
}

void ReliableLinkEndpoint::arm_retransmit_timer() {
  if (retransmit_timer_ != sim::kInvalidEventId || unacked_.empty()) return;
  retransmit_timer_ = ctx_.simulator().schedule(rto(), [this]() {
    retransmit_timer_ = sim::kInvalidEventId;
    on_retransmit_timer();
  });
}

void ReliableLinkEndpoint::on_retransmit_timer() {
  const sim::TimePoint now = ctx_.simulator().now();
  const sim::Duration timeout = rto();
  for (auto& [seq, u] : unacked_) {
    if (now - u.last_sent >= timeout) {
      u.last_sent = now;
      ++u.sends;
      transmit_data(seq, u.msg, true);
    }
  }
  arm_retransmit_timer();
}

void ReliableLinkEndpoint::handle_ack(const LinkFrame& f) {
  // Cumulative ack.
  unacked_.erase(unacked_.begin(), unacked_.upper_bound(f.cum_ack));
  // Explicit nacks: retransmit immediately.
  const sim::TimePoint now = ctx_.simulator().now();
  for (const std::uint64_t seq : f.ids) {
    const auto it = unacked_.find(seq);
    if (it == unacked_.end()) continue;
    // Avoid re-sending something sent a moment ago (the nack may have
    // crossed our retransmission in flight).
    if (now - it->second.last_sent < ctx_.rtt_estimate() / 2) continue;
    it->second.last_sent = now;
    ++it->second.sends;
    transmit_data(seq, it->second.msg, true);
  }
  if (unacked_.empty() && retransmit_timer_ != sim::kInvalidEventId) {
    ctx_.simulator().cancel(retransmit_timer_);
    retransmit_timer_ = sim::kInvalidEventId;
  }
}

void ReliableLinkEndpoint::handle_data(const LinkFrame& f) {
  const std::uint64_t seq = f.seq;
  const bool duplicate = seq <= recv_cum_ || recv_ooo_.contains(seq);
  recv_max_ = std::max(recv_max_, seq);
  if (duplicate) {
    ++stats_.duplicates_received;
  } else {
    if (cfg_.reliable_ooo_forwarding) {
      // Out-of-order forwarding: hand the message up immediately; only the
      // final destination reorders (§III-A).
      if (f.msg) {
        ctx_.deliver_up(*f.msg, f.link);
        ++stats_.delivered_up;
      }
    } else if (f.msg) {
      // In-order ablation: hold gapped arrivals at this hop.
      held_.emplace(seq, *f.msg);
    }
    if (seq == recv_cum_ + 1) {
      ++recv_cum_;
      while (!recv_ooo_.empty() && *recv_ooo_.begin() == recv_cum_ + 1) {
        recv_ooo_.erase(recv_ooo_.begin());
        ++recv_cum_;
      }
    } else {
      recv_ooo_.insert(seq);
    }
    if (!cfg_.reliable_ooo_forwarding) {
      while (!held_.empty() && held_.begin()->first <= recv_cum_) {
        ctx_.deliver_up(held_.begin()->second, f.link);
        ++stats_.delivered_up;
        held_.erase(held_.begin());
      }
    }
  }
  schedule_ack();
}

void ReliableLinkEndpoint::schedule_ack() {
  if (ack_timer_ != sim::kInvalidEventId) return;
  ack_timer_ = ctx_.simulator().schedule(cfg_.ack_delay, [this]() {
    ack_timer_ = sim::kInvalidEventId;
    send_ack();
  });
}

void ReliableLinkEndpoint::send_ack() {
  LinkFrame f;
  f.link = ctx_.link();
  f.from = ctx_.self();
  f.to = ctx_.peer();
  f.proto = LinkProtocol::kReliable;
  f.type = FrameType::kAck;
  f.cum_ack = recv_cum_;
  // Nack every hole between the cumulative point and the highest seen.
  for (std::uint64_t s = recv_cum_ + 1; s <= recv_max_; ++s) {
    if (!recv_ooo_.contains(s)) f.ids.push_back(s);
  }
  ctx_.send_frame(std::move(f));
}

void ReliableLinkEndpoint::on_frame(const LinkFrame& f) {
  switch (f.type) {
    case FrameType::kData:
    case FrameType::kRetransmission:
      handle_data(f);
      break;
    case FrameType::kAck:
      handle_ack(f);
      break;
    default:
      break;
  }
}

}  // namespace son::overlay
