#include "overlay/reliable_link.hpp"

#include <algorithm>

#include "obs/recorder.hpp"

namespace son::overlay {

// ---- Best effort -----------------------------------------------------------

bool BestEffortEndpoint::send(Message msg) {
  LinkFrame f;
  f.link = ctx_.link();
  f.from = ctx_.self();
  f.to = ctx_.peer();
  f.proto = LinkProtocol::kBestEffort;
  f.type = FrameType::kData;
  f.msg = std::move(msg);
  ctx_.send_frame(std::move(f));
  return true;
}

void BestEffortEndpoint::on_frame(const LinkFrame& f) {
  if (f.type == FrameType::kData && f.msg) {
    ctx_.deliver_up(*f.msg, f.link);
  }
}

// ---- Reliable data link ----------------------------------------------------

ReliableLinkEndpoint::~ReliableLinkEndpoint() {
  ctx_.simulator().cancel(retransmit_timer_);
  ctx_.simulator().cancel(ack_timer_);
}

sim::Duration ReliableLinkEndpoint::rto() const {
  return std::max(cfg_.min_rto, ctx_.rtt_estimate() * cfg_.rto_multiplier);
}

bool ReliableLinkEndpoint::send(Message msg) {
  if (unacked_.size() >= cfg_.reliable_window) {
    // Window exhausted: the link is badly backlogged. Shedding here (with
    // accounting) keeps the simulation honest instead of growing unbounded.
    ctx_.count_protocol_drop(LinkProtocol::kReliable);
    return false;
  }
  const std::uint64_t seq = next_seq_++;
  unacked_.emplace(seq, Unacked{msg, ctx_.simulator().now(), 1, rto()});
  transmit_data(seq, msg, false);
  arm_retransmit_timer();
  return true;
}

void ReliableLinkEndpoint::transmit_data(std::uint64_t seq, const Message& msg, bool retrans) {
  LinkFrame f;
  f.link = ctx_.link();
  f.from = ctx_.self();
  f.to = ctx_.peer();
  f.proto = LinkProtocol::kReliable;
  f.type = retrans ? FrameType::kRetransmission : FrameType::kData;
  f.seq = seq;
  f.msg = msg;
  ctx_.send_frame(std::move(f));
  if (retrans) {
    ++stats_.retransmissions;
    obs_retransmissions_.add();
    SON_OBS(ctx_.self(), obs::Category::kLink, obs::LinkEvent::kRetransmit, seq, 0);
  } else {
    ++stats_.data_sent;
  }
}

sim::TimePoint ReliableLinkEndpoint::next_rto_deadline() const {
  sim::TimePoint earliest = sim::TimePoint::max();
  for (const auto& [seq, u] : unacked_) {
    earliest = std::min(earliest, u.last_sent + u.rto);
  }
  return earliest;
}

void ReliableLinkEndpoint::arm_retransmit_timer() {
  if (unacked_.empty()) return;
  // Arm for the EARLIEST per-entry deadline, not a full rto() from now: an
  // entry that just missed a sweep must wait only its own residual timeout,
  // not up to ~2x RTO behind a freshly re-armed timer.
  const sim::TimePoint due = next_rto_deadline();
  if (retransmit_timer_ != sim::kInvalidEventId) {
    if (retransmit_deadline_ <= due) return;  // early fire just re-arms
    ctx_.simulator().cancel(retransmit_timer_);
  }
  retransmit_deadline_ = due;
  retransmit_timer_ = ctx_.simulator().schedule_at(due, [this]() {
    retransmit_timer_ = sim::kInvalidEventId;
    on_retransmit_timer();
  });
}

void ReliableLinkEndpoint::on_retransmit_timer() {
  const sim::TimePoint now = ctx_.simulator().now();
  for (auto& [seq, u] : unacked_) {
    if (now - u.last_sent >= u.rto) {
      u.last_sent = now;
      ++u.sends;
      // Exponential backoff, capped: a blackholed peer is probed at a
      // bounded rate instead of a constant one forever.
      const sim::Duration next = std::min(u.rto * 2, cfg_.max_rto);
      if (next > u.rto) {
        obs_rto_backoffs_.add();
        SON_OBS(ctx_.self(), obs::Category::kLink, obs::LinkEvent::kRtoBackoff, seq,
                static_cast<std::uint64_t>(next.ns()));
      }
      u.rto = next;
      transmit_data(seq, u.msg, true);
    }
  }
  arm_retransmit_timer();
}

void ReliableLinkEndpoint::handle_ack(const LinkFrame& f) {
  // Cumulative ack.
  unacked_.erase(unacked_.begin(), unacked_.upper_bound(f.cum_ack));
  // SACK inference. The nack walk in send_ack() enumerates EVERY hole up to
  // its bound, so a seq in (cum_ack, bound] that is absent from f.ids was in
  // the peer's out-of-order set — received, just not yet covered by the
  // cumulative ack. Retire those entries: RTO-retransmitting a packet the
  // peer already holds is pure waste (it shows up as a duplicate), and a
  // burst loss below them would otherwise spuriously fire a whole run of
  // per-entry timers. The bound is f.seq (the peer's highest seq seen) when
  // the nack list was not truncated by the cap; otherwise only holes up to
  // the last listed nack are known exhaustively.
  const std::uint64_t sack_bound =
      f.ids.size() < cfg_.max_nacks_per_ack ? f.seq
                                            : (f.ids.empty() ? 0 : f.ids.back());
  if (sack_bound > f.cum_ack) {
    auto nack = f.ids.begin();
    for (auto it = unacked_.begin(); it != unacked_.end() && it->first <= sack_bound;) {
      while (nack != f.ids.end() && *nack < it->first) ++nack;
      if (nack != f.ids.end() && *nack == it->first) {
        ++it;  // still a hole at the peer: keep tracking
      } else {
        ++stats_.sacked;
        it = unacked_.erase(it);
      }
    }
  }
  // Explicit nacks: retransmit immediately.
  const sim::TimePoint now = ctx_.simulator().now();
  for (const std::uint64_t seq : f.ids) {
    const auto it = unacked_.find(seq);
    if (it == unacked_.end()) continue;
    // Avoid re-sending something sent a moment ago (the nack may have
    // crossed our retransmission in flight).
    if (now - it->second.last_sent < ctx_.rtt_estimate() / 2) continue;
    it->second.last_sent = now;
    ++it->second.sends;
    transmit_data(seq, it->second.msg, true);
  }
  if (unacked_.empty() && retransmit_timer_ != sim::kInvalidEventId) {
    ctx_.simulator().cancel(retransmit_timer_);
    retransmit_timer_ = sim::kInvalidEventId;
  }
}

void ReliableLinkEndpoint::handle_data(const LinkFrame& f) {
  const std::uint64_t seq = f.seq;
  const bool duplicate = seq <= recv_cum_ || recv_ooo_.contains(seq);
  recv_max_ = std::max(recv_max_, seq);
  if (duplicate) {
    ++stats_.duplicates_received;
  } else {
    if (cfg_.reliable_ooo_forwarding) {
      // Out-of-order forwarding: hand the message up immediately; only the
      // final destination reorders (§III-A).
      if (f.msg) {
        ctx_.deliver_up(*f.msg, f.link);
        ++stats_.delivered_up;
      }
    } else if (f.msg) {
      // In-order ablation: hold gapped arrivals at this hop.
      held_.emplace(seq, *f.msg);
    }
    if (seq == recv_cum_ + 1) {
      ++recv_cum_;
      while (!recv_ooo_.empty() && *recv_ooo_.begin() == recv_cum_ + 1) {
        recv_ooo_.erase(recv_ooo_.begin());
        ++recv_cum_;
      }
    } else {
      recv_ooo_.insert(seq);
    }
    if (!cfg_.reliable_ooo_forwarding) {
      while (!held_.empty() && held_.begin()->first <= recv_cum_) {
        ctx_.deliver_up(held_.begin()->second, f.link);
        ++stats_.delivered_up;
        held_.erase(held_.begin());
      }
    }
  }
  schedule_ack();
}

void ReliableLinkEndpoint::schedule_ack() {
  if (ack_timer_ != sim::kInvalidEventId) return;
  ack_timer_ = ctx_.simulator().schedule(cfg_.ack_delay, [this]() {
    ack_timer_ = sim::kInvalidEventId;
    send_ack();
  });
}

void ReliableLinkEndpoint::send_ack() {
  LinkFrame f;
  f.link = ctx_.link();
  f.from = ctx_.self();
  f.to = ctx_.peer();
  f.proto = LinkProtocol::kReliable;
  f.type = FrameType::kAck;
  f.cum_ack = recv_cum_;
  // Highest seq seen: together with the exhaustive nack list below this lets
  // the sender infer which out-of-order seqs we already hold (SACK).
  f.seq = recv_max_;
  // Nack the holes between the cumulative point and the highest seen by
  // walking the gaps of the out-of-order set — O(holes), not O(window).
  // (recv_max_ is always a member of recv_ooo_ whenever it exceeds
  // recv_cum_, so the gap walk covers exactly the old per-seq scan.)
  // Capped per frame: lower seqs first, later acks cover the rest.
  const std::size_t cap = cfg_.max_nacks_per_ack;
  std::uint64_t prev = recv_cum_;
  for (auto it = recv_ooo_.begin(); it != recv_ooo_.end() && f.ids.size() < cap; ++it) {
    for (std::uint64_t s = prev + 1; s < *it && f.ids.size() < cap; ++s) {
      f.ids.push_back(s);
    }
    prev = *it;
  }
  if (!f.ids.empty()) {
    obs_nack_batches_.add();
    SON_OBS(ctx_.self(), obs::Category::kLink, obs::LinkEvent::kNackBatch, f.ids.size(),
            recv_cum_);
  }
  ctx_.send_frame(std::move(f));
}

void ReliableLinkEndpoint::on_frame(const LinkFrame& f) {
  switch (f.type) {
    case FrameType::kData:
    case FrameType::kRetransmission:
      handle_data(f);
      break;
    case FrameType::kAck:
      handle_ack(f);
      break;
    default:
      break;
  }
}

}  // namespace son::overlay
