// The overlay node daemon: session interface, routing level, link level
// (Fig. 2), hello-based link monitoring with multi-ISP channel failover,
// link-state and group-state flooding — all running as "a normal user-level
// program" on one underlay host.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "crypto/keys.hpp"
#include "net/internet.hpp"
#include "obs/counters.hpp"
#include "overlay/compromise.hpp"
#include "overlay/dedup.hpp"
#include "overlay/frame.hpp"
#include "overlay/group_state.hpp"
#include "overlay/link_protocols.hpp"
#include "overlay/link_state.hpp"
#include "overlay/membership.hpp"
#include "overlay/reorder_buffer.hpp"
#include "overlay/routing.hpp"
#include "sim/random.hpp"
#include "sim/timer_guard.hpp"
#include "sim/trace.hpp"

namespace son::overlay {

struct NodeConfig {
  /// Hello cadence per underlay channel. With miss_threshold misses, a
  /// channel is declared dead; the link fails over to another ISP channel
  /// or, if none is alive, is advertised down (then: sub-second rerouting).
  sim::Duration hello_interval = sim::Duration::milliseconds(100);
  std::uint32_t hello_miss_threshold = 3;
  /// Liveness-prober up-hysteresis: consecutive hello replies needed before
  /// a dead channel is declared alive again. 1 = a single reply revives (the
  /// original behavior); churn deployments raise it so one lucky reply
  /// through a flapping path does not re-advertise the link up.
  std::uint32_t hello_up_threshold = 1;
  /// Sliding window (in hellos) for per-channel loss estimation.
  std::size_t hello_window = 50;

  /// Periodic re-advertisement of own link/group state (repairs lost floods).
  sim::Duration state_refresh = sim::Duration::seconds(1);
  /// Membership: an origin silent (no LSA/GSA/hello evidence) for this long
  /// is declared departed on the state-refresh tick and ALL its per-origin
  /// state is evicted — topology reports, group joins, and the router's
  /// cached trees/masks. Zero disables eviction (the static-membership
  /// behavior); churn deployments set ~3-4x state_refresh so a live origin's
  /// periodic re-floods comfortably outrun the timeout.
  sim::Duration dead_origin_timeout = sim::Duration::zero();
  /// Immediate floods are sent this many times, spaced, for robustness.
  std::uint32_t flood_copies = 2;
  sim::Duration flood_spacing = sim::Duration::milliseconds(15);

  /// Re-advertise when measured latency changes by this fraction or loss by
  /// this absolute amount (avoids LSA churn).
  double lsa_latency_rel_change = 0.25;
  double lsa_loss_abs_change = 0.01;

  /// Per-frame processing cost at this node (§II-D: "less than 1ms
  /// additional latency per intermediate overlay node").
  sim::Duration processing_delay = sim::Duration::microseconds(100);

  /// Hold time for destination reorder buffers (ordered flows without a
  /// deadline).
  sim::Duration reorder_hold = sim::Duration::milliseconds(200);

  /// Ablation knob: route on expected latency including loss penalty (the
  /// design) vs raw latency only.
  bool loss_aware_routing = true;

  /// Hop-by-hop HMAC authentication (intrusion-tolerant deployments).
  bool authenticate = false;
  crypto::Key master_key{};
  /// Ablation knob (forwarded to the KeyTable before any frame is signed):
  /// false reconstructs the seed crypto path — heap-serialized auth input and
  /// both HMAC key-pad compressions recomputed per tag. Tags are
  /// bit-identical either way.
  bool crypto_midstate = true;

  /// UDP-style port the daemon listens on. Parallel overlays on the same
  /// machines use distinct ports (§II-D: "multiple overlays can even be run
  /// in parallel").
  std::uint16_t daemon_port = 8100;

  /// Per-flow accounting at the terminating session interface
  /// (session_flows()). At millions of concurrent flows the per-flow map
  /// dominates node memory, so heavy aggregate workloads switch it off;
  /// delivery, client handlers and node-level counters are unaffected.
  bool session_flow_accounting = true;

  LinkProtocolConfig link_protocols;
};

/// Handle a client holds after connecting to an overlay node (two-level
/// client-daemon hierarchy; the client runs on the node's machine).
class ClientEndpoint {
 public:
  /// (message, one-way latency from origin client send).
  using Handler = std::function<void(const Message&, sim::Duration)>;

  void set_handler(Handler h) { handler_ = std::move(h); }
  /// Sends one message on this client's flow to `dest`. Returns false if the
  /// node could not accept it (e.g. IT-Reliable backpressure reached the
  /// source, or no route).
  bool send(const Destination& dest, Payload payload, const ServiceSpec& spec);
  /// Like send(), but stamps an explicit origin time — used by compound
  /// flows (§V-C) so deadlines and latency accounting span the WHOLE flow,
  /// transformation included.
  bool send_with_origin(const Destination& dest, Payload payload, const ServiceSpec& spec,
                        sim::TimePoint origin_time);
  /// Flyweight path used by client::FlowEngine. The caller supplies a
  /// per-flow tag (distinguishing concurrent flows that share this endpoint
  /// and destination) and carries the flow's sequence numbers itself, so the
  /// endpoint keeps NO per-flow state — one endpoint can originate millions
  /// of flows. Service selection and routing behave exactly like send().
  bool send_flow(const Destination& dest, Payload payload, const ServiceSpec& spec,
                 std::uint32_t flow_tag, std::uint64_t flow_seq);
  void join(GroupId g);
  void leave(GroupId g);

  [[nodiscard]] NodeId node() const;
  [[nodiscard]] VirtualPort port() const { return port_; }

 private:
  friend class OverlayNode;
  ClientEndpoint(class OverlayNode& node, VirtualPort port) : node_{node}, port_{port} {}

  OverlayNode& node_;
  VirtualPort port_;
  Handler handler_;
  std::vector<GroupId> joined_;
  std::map<std::uint64_t, std::uint64_t> flow_seq_;  // per flow_key
};

/// Per-flow state the session interface maintains for each flow it
/// terminates (§II-C flow-based processing: "a flow consists of a source,
/// one or more destinations, and the overlay services selected for that
/// flow").
struct FlowStats {
  NodeId origin = kInvalidNode;
  VirtualPort src_port = 0;
  Destination dest;
  LinkProtocol link_protocol = LinkProtocol::kBestEffort;
  RouteScheme scheme = RouteScheme::kLinkState;
  std::uint64_t delivered = 0;
  std::uint64_t bytes = 0;
  std::uint64_t highest_seq = 0;
  /// Sequence jumps observed at delivery (loss or reordering upstream).
  std::uint64_t gaps = 0;
  sim::Duration ewma_latency = sim::Duration::zero();
  sim::Duration max_latency = sim::Duration::zero();
  sim::TimePoint last_delivery;
};

struct NodeStats {
  std::uint64_t originated = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t delivered_local = 0;
  std::uint64_t dedup_dropped = 0;
  std::uint64_t no_route = 0;
  std::uint64_t compromised_dropped = 0;
  std::uint64_t protocol_drops = 0;
  std::uint64_t send_blocked = 0;  // IT backpressure refused at origin
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t link_failovers = 0;  // ISP channel switches
  std::uint64_t lsa_floods = 0;
  std::uint64_t control_auth_failures = 0;  // forged/tampered control frames
  std::uint64_t ttl_expired = 0;            // overlay-level loop protection
  std::uint64_t origin_evictions = 0;       // departed origins swept from the DBs
  std::uint64_t stale_incarnation_drops = 0;  // pre-crash ghost frames dropped
  std::uint64_t peer_restarts_seen = 0;       // neighbor incarnation bumps observed
};

class OverlayNode {
 public:
  /// An underlay path option for one overlay link (which ISP attachment to
  /// use on each side). A link with several channels can fail over between
  /// ISPs without any overlay-level rerouting.
  struct Channel {
    net::AttachIndex local = 0;
    net::AttachIndex remote = 0;
  };
  struct NeighborSpec {
    LinkBit link = kInvalidLinkBit;
    NodeId peer = kInvalidNode;
    net::HostId peer_host = net::kInvalidHost;
    std::vector<Channel> channels;
  };

  OverlayNode(sim::Simulator& sim, net::Internet& internet, net::HostId host, NodeId id,
              topo::Graph overlay_topology, std::vector<NeighborSpec> neighbors,
              NodeConfig cfg, sim::Rng rng);
  ~OverlayNode();
  OverlayNode(const OverlayNode&) = delete;
  OverlayNode& operator=(const OverlayNode&) = delete;

  /// Starts hellos and state refresh. Call after all nodes are constructed.
  void start();

  /// Session interface: connects a local client on a virtual port.
  ClientEndpoint& connect(VirtualPort port);

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] net::HostId host() const { return host_; }
  [[nodiscard]] const NodeStats& stats() const { return stats_; }
  /// Per-flow statistics for every flow this node's session has delivered
  /// locally, keyed by flow_key.
  [[nodiscard]] const std::map<std::uint64_t, FlowStats>& session_flows() const {
    return flow_stats_;
  }
  [[nodiscard]] const TopologyDb& topology() const { return topo_db_; }
  [[nodiscard]] const GroupDb& groups() const { return group_db_; }
  Router& router() { return router_; }

  /// Current health of an adjacent link as this node sees it.
  struct LinkHealth {
    bool up = false;
    int active_channel = -1;
    double loss_estimate = 0.0;
    sim::Duration srtt = sim::Duration::zero();
  };
  [[nodiscard]] LinkHealth link_health(LinkBit b) const;

  /// Link bits of this node's adjacent links (bench/test introspection).
  [[nodiscard]] std::vector<LinkBit> link_bits() const;

  void set_compromise(const CompromiseBehavior& b) { compromise_ = b; }
  [[nodiscard]] bool compromised() const { return compromise_.active; }

  /// Crash-stop failure: a crashed node sends nothing (hellos included — its
  /// neighbors detect the silence and advertise the links down) and ignores
  /// everything it receives. Restore with set_crashed(false); the node
  /// resumes with its pre-crash state (fail-recover model with stable
  /// storage). For a recovery that LOST volatile state, use restart().
  void set_crashed(bool crashed);
  [[nodiscard]] bool crashed() const { return crashed_; }

  /// Cold crash-recovery: the process comes back with its volatile state
  /// gone. Bumps the incarnation number (carried in every frame, LSA and
  /// GSA, and folded into origin ids), restarts the per-origin counters and
  /// sequence numbers at their initial values, resets every link's channel
  /// probers and protocol endpoints, forgets learned topology/group/
  /// membership state (relearned from floods within ~state_refresh), and
  /// immediately re-advertises under the new incarnation. Also clears the
  /// crashed flag, so crash(t) + restart(t') scripts a crash-recover cycle.
  void restart();
  /// This node's current incarnation number (0 until the first restart).
  [[nodiscard]] std::uint32_t incarnation() const { return incarnation_; }
  /// Membership view of the whole overlay as this node sees it.
  [[nodiscard]] const MembershipDb& membership() const { return membership_; }

  /// The protocol endpoint instance for (link, proto), if one has been
  /// created by traffic; nullptr otherwise. For stats inspection
  /// (dynamic_cast to the concrete endpoint type to read its Stats).
  [[nodiscard]] LinkProtocolEndpoint* find_endpoint(LinkBit b, LinkProtocol proto);

  void set_tracer(sim::Tracer t) { tracer_ = std::move(t); }

  /// Which crypto path the forwarding microbenchmark exercises.
  enum class BenchAuthPath : std::uint8_t {
    kFast,  // midstate MacContexts + zero-allocation two-span streaming
    kSeed,  // heap-serialized auth_bytes + from-scratch HMAC per tag
  };
  struct ForwardAuthResult {
    LinkBit egress = kInvalidLinkBit;  // routed outgoing link
    bool verified = false;
    crypto::Tag resigned{};
  };

  /// Forwarding hot path, exposed for the §II-D processing-cost
  /// microbenchmark: routing lookup + header handling for one message and,
  /// in IT mode, the per-hop HMAC verify + re-sign a transit node performs.
  /// The verify is keyed to the peer of `arrived_on` (the ingress link) and
  /// the re-sign to the peer of the routed egress link — two distinct
  /// pairwise keys, exactly as in real forwarding. Pass `in_auth` (built
  /// once with bench_make_arrival_tag, outside the timed loop) so the loop
  /// measures exactly verify + re-sign.
  ForwardAuthResult bench_forward_lookup(const Message& msg, LinkBit arrived_on,
                                         const crypto::Tag* in_auth = nullptr,
                                         BenchAuthPath path = BenchAuthPath::kFast);
  /// The tag `msg` carries when it arrives on `arrived_on` (i.e. what that
  /// link's peer signs toward this node — the pairwise key is symmetric).
  [[nodiscard]] crypto::Tag bench_make_arrival_tag(const Message& msg,
                                                   LinkBit arrived_on) const;

 private:
  struct ChannelState {
    Channel attach;
    /// Up/down hysteresis over hello outcomes (configured from
    /// hello_miss_threshold / hello_up_threshold).
    LivenessProber prober;
    std::uint64_t next_hello_seq = 1;
    std::map<std::uint64_t, sim::TimePoint> outstanding;  // hello seq -> sent
    std::deque<bool> window;                              // recent hello outcomes
    sim::Duration srtt = sim::Duration::milliseconds(10);
  };
  struct NeighborLink {
    NeighborSpec spec;
    std::vector<ChannelState> channels;
    int active_channel = 0;
    bool up = true;
    // Last values advertised in our LSA (change detection).
    bool adv_up = true;
    double adv_latency_ms = 0.0;
    double adv_loss = 0.0;
    /// Highest incarnation seen from the peer on this link. A frame carrying
    /// a higher one means the peer restarted: all per-link protocol state
    /// (receive windows, ack state) is void and the endpoints are reset.
    /// Frames from an older incarnation are dropped as pre-crash ghosts.
    std::uint32_t peer_incarnation = 0;
    // ctx must outlive the endpoints (their destructors cancel timers
    // through it), so it is declared first.
    std::unique_ptr<class NodeLinkContext> ctx;
    std::map<LinkProtocol, std::unique_ptr<LinkProtocolEndpoint>> endpoints;
    /// Pairwise signing handle toward spec.peer, resolved from the key table
    /// once (lazily, after the midstate knob is applied in the constructor).
    crypto::MacContext mac;
  };

  friend class NodeLinkContext;
  friend class ClientEndpoint;

  // --- Session level ---
  bool client_send(ClientEndpoint& client, const Destination& dest, Payload payload,
                   const ServiceSpec& spec, sim::TimePoint origin_time);
  /// Shared origination body: flow identity (key + seq) is supplied by the
  /// caller — client_send derives it from the endpoint's per-flow map,
  /// send_flow from the FlowEngine's tagged SoA tables.
  bool client_send_impl(ClientEndpoint& client, const Destination& dest, Payload payload,
                        const ServiceSpec& spec, sim::TimePoint origin_time,
                        std::uint64_t flow_key, std::uint64_t flow_seq,
                        std::uint32_t source_tag);
  /// Unique message id layout: (origin << 48) | (incarnation low byte << 40)
  /// | per-incarnation counter. Folding the incarnation in keeps a restarted
  /// origin's ids disjoint from its pre-crash ids, so dedup caches and
  /// receive windows keyed by origin_id are implicitly (origin, incarnation)
  /// keyed. Incarnation 0 reproduces the original layout bit-for-bit.
  [[nodiscard]] std::uint64_t make_origin_id() {
    return (std::uint64_t{id_} << 48) |
           (std::uint64_t{incarnation_ & 0xFF} << 40) |
           (next_origin_counter_++ & ((std::uint64_t{1} << 40) - 1));
  }
  void refresh_group_ad();
  void deliver_to_session(const Message& msg);
  void deliver_to_client(const Message& msg);

  // --- Routing level ---
  /// Handles a message arriving from a link (or locally originated with
  /// arrived_on == kInvalidLinkBit). Returns admission (for backpressure).
  bool route_message(Message msg, LinkBit arrived_on);
  bool route_message_impl(Message msg, LinkBit arrived_on, bool skip_compromise);
  bool forward_on(LinkBit link, const Message& msg);

  // --- Link level / underlay ---
  void on_datagram(const net::Datagram& d);
  void on_frame(LinkFrame f);
  [[nodiscard]] static bool is_control_frame(FrameType t);
  void send_frame_on_link(NeighborLink& nl, LinkFrame f);
  NeighborLink* link_by_bit(LinkBit b);
  LinkProtocolEndpoint& endpoint(NeighborLink& nl, LinkProtocol proto);

  // --- Membership & churn ---
  /// Frame-level incarnation discipline for a frame from `nl`'s peer:
  /// returns false (drop) for pre-crash ghosts, and resets the link's
  /// protocol endpoints when the peer restarted. Membership evidence is
  /// recorded either way.
  bool admit_peer_incarnation(NeighborLink& nl, const LinkFrame& f);
  /// Sweeps origins silent past dead_origin_timeout and evicts their state.
  void sweep_departed_origins();

  // --- Hello protocol & link health ---
  void hello_tick();
  void send_hello(NeighborLink& nl, std::size_t channel_idx);
  void handle_hello(const LinkFrame& f);
  void handle_hello_reply(const LinkFrame& f);
  void evaluate_link(NeighborLink& nl);
  [[nodiscard]] double channel_loss(const ChannelState& ch) const;

  // --- State flooding ---
  void refresh_link_ad(bool force_flood);
  void flood_control(FrameType type, std::any control, LinkBit arrived_on);
  /// Sign-side serialize-once cache for flooded advertisement bodies: the
  /// auth suffix of an LSA/GSA depends only on (type, origin, seq), so a
  /// K-link x flood_copies fan-out of one ad serializes it once and the
  /// remaining copies reuse the cached bytes (each still gets its own
  /// per-peer midstate HMAC). Sign-side only by design: caching on the
  /// VERIFY side would let an attacker poison the cache for an (origin, seq)
  /// it does not own. Hello frames have an empty suffix and bypass this.
  [[nodiscard]] std::span<const std::uint8_t> control_suffix_for_sign(const LinkFrame& f);
  void handle_lsa(const LinkFrame& f);
  void handle_group_state(const LinkFrame& f);
  void state_refresh_tick();

  void trace(sim::TraceLevel lvl, const std::string& msg) const {
    if (!tracer_.enabled(lvl)) return;  // skip the component-string format too
    tracer_.emit(sim_.now(), lvl, "node/" + std::to_string(id_), msg);
  }

  sim::Simulator& sim_;
  net::Internet& internet_;
  net::HostId host_;
  NodeId id_;
  NodeConfig cfg_;
  sim::Rng rng_;
  sim::Tracer tracer_;

  TopologyDb topo_db_;
  GroupDb group_db_;
  Router router_;
  DedupCache dedup_;
  MembershipDb membership_;
  std::vector<NeighborLink> links_;

  std::map<VirtualPort, std::unique_ptr<ClientEndpoint>> clients_;
  std::map<std::uint64_t, std::unique_ptr<ReorderBuffer>> reorder_;  // by flow_key
  std::map<std::uint64_t, FlowStats> flow_stats_;                    // by flow_key

  std::unique_ptr<crypto::KeyTable> keys_;
  CompromiseBehavior compromise_;
  bool crashed_ = false;

  // Control-plane auth scratch buffers: capacity grows monotonically, so the
  // steady state (after the first few ads) signs and verifies without heap
  // allocation. sign_suffix_ doubles as the flood serialize-once cache.
  std::vector<std::uint8_t> verify_suffix_scratch_;
  std::vector<std::uint8_t> sign_suffix_;
  FrameType sign_suffix_type_ = FrameType::kData;
  NodeId sign_suffix_origin_ = kInvalidNode;
  std::uint64_t sign_suffix_seq_ = 0;
  // Seq resets when an origin restarts, so (origin, seq) alone can recur
  // with different ad bytes; incarnation completes the cache key.
  std::uint32_t sign_suffix_incarnation_ = 0;
  bool sign_suffix_valid_ = false;

  std::uint64_t own_lsa_seq_ = 0;
  std::uint64_t own_group_seq_ = 0;
  std::uint64_t next_origin_counter_ = 1;
  std::uint32_t incarnation_ = 0;
  std::vector<NodeId> departed_scratch_;
  sim::EventId hello_timer_ = sim::kInvalidEventId;
  sim::EventId refresh_timer_ = sim::kInvalidEventId;
  std::vector<sim::EventId> flood_timers_;
  // Makes fire-and-forget delay hops (compromise delay, processing delay)
  // inert after this node is destroyed; their EventIds are not tracked.
  sim::TimerGuard timer_guard_;
  bool started_ = false;

  NodeStats stats_;
  // Observability: null-safe handles into the thread's counter registry.
  // Nodes share slots by name, so these aggregate across the whole overlay.
  obs::Counter obs_failovers_;
  obs::Counter obs_no_route_;
  obs::Counter obs_ttl_expired_;
  obs::Counter obs_dedup_dropped_;
  obs::Counter obs_compromised_dropped_;
  obs::Counter obs_protocol_drops_;
  obs::Counter obs_origin_evictions_;
  obs::Counter obs_cache_evictions_;
};

}  // namespace son::overlay
