// Core identifier and service-selection types for the structured overlay.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "sim/time.hpp"

namespace son::overlay {

/// Overlay node index. The paper: "a few tens of well situated overlay
/// nodes" — ids are small and dense.
using NodeId = std::uint16_t;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Virtual port, "mimicking the IP address plus port addressing scheme".
using VirtualPort = std::uint16_t;

/// Multicast/anycast group. "Anycast and multicast are implemented similarly
/// as part of the IP space, just like in IP."
using GroupId = std::uint32_t;

/// Bitmask over overlay links for unified source-based routing: "each packet
/// is stamped with a bitmask indicating exactly the set of overlay links it
/// should traverse (where each bit in the bitmask represents an overlay
/// link)" (§II-B). 64 bits caps the overlay at 64 links.
using LinkMask = std::uint64_t;
/// Bit index of an overlay link == topo::EdgeIndex of the overlay graph.
using LinkBit = std::uint8_t;
inline constexpr LinkBit kInvalidLinkBit = 255;
inline constexpr std::size_t kMaxOverlayLinks = 64;

[[nodiscard]] constexpr LinkMask bit_of(LinkBit b) { return LinkMask{1} << b; }
[[nodiscard]] constexpr bool has_bit(LinkMask m, LinkBit b) { return (m & bit_of(b)) != 0; }

/// Routing level service (Fig. 2): link-state destination-based forwarding,
/// or source-based subgraph forwarding.
enum class RouteScheme : std::uint8_t {
  kLinkState = 0,    // Dijkstra next-hop on the shared connectivity graph
  kDisjointPaths,    // source-based: k node-disjoint paths
  kDissemination,    // source-based: targeted dissemination graph
  kFlooding,         // source-based: constrained flooding on all links
};

/// Link level protocol (Fig. 2 boxes).
enum class LinkProtocol : std::uint8_t {
  kBestEffort = 0,
  kReliable,        // hop-by-hop ARQ, out-of-order forwarding (§III-A, [4])
  kRealtimeSimple,  // one request / one retransmission ([6], [7])
  kRealtimeNM,      // NM-Strikes (§IV-A, Fig. 4, [5])
  kITPriority,      // intrusion-tolerant priority messaging (§IV-B)
  kITReliable,      // intrusion-tolerant reliable messaging (§IV-B)
  kFec,             // proactive XOR-parity FEC (extension; cf. OverQoS [10])
};

[[nodiscard]] const char* to_string(RouteScheme s);
[[nodiscard]] const char* to_string(LinkProtocol p);

/// Per-flow service selection: "Each client specifies the particular overlay
/// services that should be used for its flow."
struct ServiceSpec {
  RouteScheme scheme = RouteScheme::kLinkState;
  LinkProtocol link_protocol = LinkProtocol::kBestEffort;
  /// k for kDisjointPaths.
  std::uint8_t num_paths = 2;
  /// Extra fan-in/out for kDissemination (see topo::DissemOptions).
  std::uint8_t dissem_dst_fanin = 2;
  std::uint8_t dissem_src_fanout = 0;
  /// End-to-end one-way deadline for the realtime protocols; zero = none
  /// (they then use a default recovery budget).
  sim::Duration deadline = sim::Duration::zero();
  /// NM-Strikes parameters: N requests, M retransmissions per request burst.
  std::uint8_t nm_requests = 3;
  std::uint8_t nm_retransmissions = 3;
  /// Priority for kITPriority (higher = kept longer under pressure).
  std::uint8_t priority = 5;
  /// Deliver to the client in sender order (destination reorder buffer).
  bool ordered = false;
  /// Explicit source-routing mask ("arbitrary subgraphs of the overlay
  /// topology", §II-B). When nonzero and the scheme is source-based, the
  /// message is stamped with exactly this link set instead of a computed one.
  LinkMask custom_mask = 0;
};

/// Destination of a flow: unicast (node, port), or a multicast/anycast group.
struct Destination {
  enum class Kind : std::uint8_t { kUnicast = 0, kMulticast, kAnycast };
  Kind kind = Kind::kUnicast;
  NodeId node = kInvalidNode;  // unicast only
  VirtualPort port = 0;        // unicast only
  GroupId group = 0;           // multicast/anycast only

  [[nodiscard]] static Destination unicast(NodeId n, VirtualPort p) {
    return Destination{Kind::kUnicast, n, p, 0};
  }
  [[nodiscard]] static Destination multicast(GroupId g) {
    return Destination{Kind::kMulticast, kInvalidNode, 0, g};
  }
  [[nodiscard]] static Destination anycast(GroupId g) {
    return Destination{Kind::kAnycast, kInvalidNode, 0, g};
  }
};

}  // namespace son::overlay
