#include "overlay/it_fair.hpp"

#include <algorithm>
#include <array>

namespace son::overlay {

// ---- Shared base -------------------------------------------------------------

namespace {
std::span<const std::uint8_t> payload_span(const Message& m) {
  if (!m.payload) return {};
  return std::span<const std::uint8_t>{m.payload->data(), m.payload->size()};
}
}  // namespace

ItEndpointBase::~ItEndpointBase() { ctx_.simulator().cancel(pump_timer_); }

sim::Duration ItEndpointBase::pump_interval() const {
  return sim::Duration::from_seconds_f(1.0 / cfg_.it_egress_msgs_per_sec);
}

const crypto::MacContext& ItEndpointBase::link_mac() {
  if (!mac_.valid()) mac_ = ctx_.keys()->context(ctx_.peer());
  return mac_;
}

void ItEndpointBase::sign_frame(LinkFrame& f) {
  if (!ctx_.authenticate() || ctx_.keys() == nullptr || !f.msg) return;
  obs_sign_ops_.add();
  if (ctx_.keys()->midstate()) {
    std::array<std::uint8_t, kAuthHeadBytes> head;
    const std::size_t n = auth_head_bytes(*f.msg, std::span{head});
    f.auth = link_mac().sign(std::span<const std::uint8_t>{head.data(), n},
                             payload_span(*f.msg));
  } else {
    // Seed-path reconstruction (midstate ablation): heap-serialize
    // head || payload and derive the HMAC pads from the raw key each call.
    // son-analyze: allow(hot-path-alloc) "ablation branch reconstructing the pre-fast-path behavior for A/B benchmarking; off in production runs"
    const auto bytes = auth_bytes(*f.msg);
    f.auth = ctx_.keys()->sign(ctx_.peer(), std::span<const std::uint8_t>{bytes});
  }
  f.authenticated = true;
}

bool ItEndpointBase::verify_frame(const LinkFrame& f) {
  if (!ctx_.authenticate() || ctx_.keys() == nullptr) return true;
  if (!f.msg) return true;  // control frames carry no authenticated body here
  if (!f.authenticated) {
    ++stats_.auth_failures;
    return false;
  }
  obs_verify_ops_.add();
  bool ok;
  if (ctx_.keys()->midstate()) {
    std::array<std::uint8_t, kAuthHeadBytes> head;
    const std::size_t n = auth_head_bytes(*f.msg, std::span{head});
    const std::span<const std::uint8_t> head_sp{head.data(), n};
    // Frames on a point-to-point link come from the peer; the cached link
    // context holds exactly that pairwise key.
    ok = (f.from == ctx_.peer())
             ? link_mac().verify(head_sp, payload_span(*f.msg), f.auth)
             : ctx_.keys()->verify(f.from, head_sp, payload_span(*f.msg), f.auth);
  } else {
    // son-analyze: allow(hot-path-alloc) "ablation branch reconstructing the pre-fast-path behavior for A/B benchmarking; off in production runs"
    const auto bytes = auth_bytes(*f.msg);
    ok = ctx_.keys()->verify(f.from, std::span<const std::uint8_t>{bytes}, f.auth);
  }
  if (!ok) ++stats_.auth_failures;
  return ok;
}

bool ItEndpointBase::enqueue(Message m) {
  const std::uint64_t key = key_of(m);
  Queue& q = queues_[key];
  const std::size_t cap = (protocol() == LinkProtocol::kITPriority)
                              ? cfg_.it_buffer_per_source
                              : cfg_.it_buffer_per_flow;
  bool admitted = true;
  if (q.msgs.size() >= cap) {
    admitted = handle_full_queue(q, std::move(m));
  } else {
    q.msgs.push_back(std::move(m));
  }
  if (admitted) ++stats_.admitted;
  arm_pump();
  return admitted;
}

void ItEndpointBase::arm_pump() {
  if (pump_timer_ != sim::kInvalidEventId) return;
  pump_timer_ = ctx_.simulator().schedule(pump_interval(), [this]() {
    pump_timer_ = sim::kInvalidEventId;
    pump();
  });
}

void ItEndpointBase::pump() {
  // Round-robin over active (non-empty, eligible) keys: take the first key
  // strictly greater than the last-served one, wrapping around.
  auto pick = [this]() -> std::map<std::uint64_t, Queue>::iterator {
    auto start = queues_.upper_bound(rr_last_key_);
    for (auto it = start; it != queues_.end(); ++it) {
      if (!it->second.msgs.empty() && eligible(it->first)) return it;
    }
    for (auto it = queues_.begin(); it != start; ++it) {
      if (!it->second.msgs.empty() && eligible(it->first)) return it;
    }
    return queues_.end();
  };

  const auto it = pick();
  if (it == queues_.end()) return;  // nothing to serve; re-armed on enqueue

  rr_last_key_ = it->first;
  Message m = std::move(it->second.msgs.front());
  it->second.msgs.pop_front();
  if (it->second.msgs.empty()) queues_.erase(it);
  transmit(std::move(m));
  arm_pump();
}

// ---- Intrusion-Tolerant Priority ----------------------------------------------

bool ItPriorityEndpoint::handle_full_queue(Queue& q, Message m) {
  // Evict the oldest lowest-priority message of this source, provided the
  // incoming message outranks (or ties) it; otherwise the new message is
  // itself the lowest and is dropped.
  auto lowest = q.msgs.begin();
  for (auto it = q.msgs.begin(); it != q.msgs.end(); ++it) {
    if (it->hdr.priority < lowest->hdr.priority) lowest = it;  // oldest wins ties
  }
  if (m.hdr.priority < lowest->hdr.priority) {
    ++stats_.evicted_low_priority;
    ctx_.count_protocol_drop(LinkProtocol::kITPriority);
    return false;
  }
  q.msgs.erase(lowest);
  ++stats_.evicted_low_priority;
  ctx_.count_protocol_drop(LinkProtocol::kITPriority);
  q.msgs.push_back(std::move(m));
  return true;
}

bool ItPriorityEndpoint::send(Message msg) { return enqueue(std::move(msg)); }

void ItPriorityEndpoint::transmit(Message m) {
  LinkFrame f;
  f.link = ctx_.link();
  f.from = ctx_.self();
  f.to = ctx_.peer();
  f.proto = LinkProtocol::kITPriority;
  f.type = FrameType::kData;
  f.seq = ++stats_.data_sent;
  f.msg = std::move(m);
  sign_frame(f);
  ctx_.send_frame(std::move(f));
}

void ItPriorityEndpoint::on_frame(const LinkFrame& f) {
  if (f.type != FrameType::kData || !f.msg) return;
  if (!verify_frame(f)) return;
  ctx_.deliver_up(*f.msg, f.link);
}

// ---- Intrusion-Tolerant Reliable ----------------------------------------------

ItReliableEndpoint::~ItReliableEndpoint() { ctx_.simulator().cancel(retransmit_timer_); }

bool ItReliableEndpoint::handle_full_queue(Queue&, Message) {
  // "It stops accepting new messages for that flow, creating backpressure."
  ++stats_.rejected_full;
  return false;
}

bool ItReliableEndpoint::send(Message msg) { return enqueue(std::move(msg)); }

void ItReliableEndpoint::transmit(Message m) {
  const std::uint64_t seq = next_seq_++;
  in_flight_.emplace(seq, InFlight{m, ctx_.simulator().now()});

  LinkFrame f;
  f.link = ctx_.link();
  f.from = ctx_.self();
  f.to = ctx_.peer();
  f.proto = LinkProtocol::kITReliable;
  f.type = FrameType::kData;
  f.seq = seq;
  f.msg = std::move(m);
  sign_frame(f);
  ctx_.send_frame(std::move(f));
  ++stats_.data_sent;
  arm_retransmit_timer();
}

bool ItReliableEndpoint::eligible(std::uint64_t key) const {
  const auto it = paused_flows_.find(key);
  return it == paused_flows_.end() || it->second <= ctx_.simulator().now();
}

void ItReliableEndpoint::arm_retransmit_timer() {
  if (retransmit_timer_ != sim::kInvalidEventId || in_flight_.empty()) return;
  const sim::Duration rto =
      std::max(cfg_.min_rto, ctx_.rtt_estimate() * cfg_.rto_multiplier);
  retransmit_timer_ = ctx_.simulator().schedule(rto, [this]() {
    retransmit_timer_ = sim::kInvalidEventId;
    on_retransmit_timer();
  });
}

void ItReliableEndpoint::on_retransmit_timer() {
  const sim::TimePoint now = ctx_.simulator().now();
  const sim::Duration rto =
      std::max(cfg_.min_rto, ctx_.rtt_estimate() * cfg_.rto_multiplier);
  for (auto& [seq, fl] : in_flight_) {
    if (now - fl.last_sent < rto) continue;
    if (!eligible(key_of(fl.msg))) continue;  // flow backpressured: wait
    fl.last_sent = now;
    LinkFrame f;
    f.link = ctx_.link();
    f.from = ctx_.self();
    f.to = ctx_.peer();
    f.proto = LinkProtocol::kITReliable;
    f.type = FrameType::kRetransmission;
    f.seq = seq;
    f.msg = fl.msg;
    sign_frame(f);
    ctx_.send_frame(std::move(f));
    ++stats_.retransmissions;
  }
  arm_retransmit_timer();
}

void ItReliableEndpoint::on_frame(const LinkFrame& f) {
  switch (f.type) {
    case FrameType::kData:
    case FrameType::kRetransmission: {
      if (!f.msg || !verify_frame(f)) return;
      const std::uint64_t seq = f.seq;
      const bool already = seq <= recv_cum_ || recv_ooo_.contains(seq);
      bool admitted = already;
      if (!already) {
        admitted = ctx_.deliver_up(*f.msg, f.link);
      }
      LinkFrame reply;
      reply.link = ctx_.link();
      reply.from = ctx_.self();
      reply.to = ctx_.peer();
      reply.proto = LinkProtocol::kITReliable;
      if (admitted) {
        if (!already) {
          if (seq == recv_cum_ + 1) {
            ++recv_cum_;
            while (!recv_ooo_.empty() && *recv_ooo_.begin() == recv_cum_ + 1) {
              recv_ooo_.erase(recv_ooo_.begin());
              ++recv_cum_;
            }
          } else {
            recv_ooo_.insert(seq);
          }
        }
        reply.type = FrameType::kAck;
        reply.seq = seq;
      } else {
        // Downstream buffer full: refuse, peer pauses this flow and retries.
        reply.type = FrameType::kBusy;
        reply.seq = seq;
      }
      ctx_.send_frame(std::move(reply));
      break;
    }
    case FrameType::kAck: {
      in_flight_.erase(f.seq);
      if (in_flight_.empty() && retransmit_timer_ != sim::kInvalidEventId) {
        ctx_.simulator().cancel(retransmit_timer_);
        retransmit_timer_ = sim::kInvalidEventId;
      }
      break;
    }
    case FrameType::kBusy: {
      const auto it = in_flight_.find(f.seq);
      if (it != in_flight_.end()) {
        const sim::Duration backoff = ctx_.rtt_estimate() * 4;
        paused_flows_[key_of(it->second.msg)] = ctx_.simulator().now() + backoff;
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace son::overlay
