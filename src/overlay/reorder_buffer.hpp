// Destination-side in-order delivery buffer.
//
// Intermediate overlay nodes forward out of order; "the final destination is
// responsible for buffering received packets until they can be delivered in
// order" (§III-A). For realtime flows, "if a recovered packet arrives after
// later packets were already delivered, it is discarded" (§IV-A) — modeled
// by the hold timeout: when a gap outlives `max_hold`, delivery skips past
// it and stragglers are dropped as late.
#pragma once

#include <functional>
#include <map>

#include "overlay/message.hpp"
#include "sim/simulator.hpp"

namespace son::overlay {

class ReorderBuffer {
 public:
  using DeliverFn = std::function<void(const Message&)>;

  ReorderBuffer(sim::Simulator& sim, sim::Duration max_hold, DeliverFn deliver)
      : sim_{sim}, max_hold_{max_hold}, deliver_{std::move(deliver)} {}
  ~ReorderBuffer() { sim_.cancel(timer_); }
  ReorderBuffer(const ReorderBuffer&) = delete;
  ReorderBuffer& operator=(const ReorderBuffer&) = delete;

  /// Offers a message with hdr.flow_seq; delivers everything that became
  /// in-order, holds gapped messages up to max_hold.
  void push(Message msg);

  struct Stats {
    std::uint64_t delivered = 0;
    std::uint64_t late_discarded = 0;   // arrived after the gap was skipped
    std::uint64_t skipped_missing = 0;  // gaps abandoned by the hold timeout
    std::uint64_t duplicates = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t held() const { return held_.size(); }

 private:
  struct Held {
    Message msg;
    sim::TimePoint arrived;
  };
  void drain();
  void arm_timer();
  void on_timer();

  sim::Simulator& sim_;
  sim::Duration max_hold_;
  DeliverFn deliver_;
  std::uint64_t next_seq_ = 1;
  std::map<std::uint64_t, Held> held_;
  sim::EventId timer_ = sim::kInvalidEventId;
  Stats stats_;
};

}  // namespace son::overlay
