// Destination-side in-order delivery buffer.
//
// Intermediate overlay nodes forward out of order; "the final destination is
// responsible for buffering received packets until they can be delivered in
// order" (§III-A). For realtime flows, "if a recovered packet arrives after
// later packets were already delivered, it is discarded" (§IV-A) — modeled
// by the hold timeout: when a gap outlives `max_hold`, delivery skips past
// it and stragglers are dropped as late.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <utility>

#include "obs/counters.hpp"
#include "overlay/message.hpp"
#include "sim/simulator.hpp"

namespace son::overlay {

class ReorderBuffer {
 public:
  using DeliverFn = std::function<void(const Message&)>;

  ReorderBuffer(sim::Simulator& sim, sim::Duration max_hold, DeliverFn deliver)
      : sim_{sim},
        max_hold_{max_hold},
        deliver_{std::move(deliver)},
        obs_held_{obs::counter("overlay.reorder.held")},
        obs_skipped_{obs::counter("overlay.reorder.skipped_missing")},
        obs_late_{obs::counter("overlay.reorder.late_discarded")} {}
  ~ReorderBuffer() { sim_.cancel(timer_); }
  ReorderBuffer(const ReorderBuffer&) = delete;
  ReorderBuffer& operator=(const ReorderBuffer&) = delete;

  /// Offers a message with hdr.flow_seq; delivers everything that became
  /// in-order, holds gapped messages up to max_hold.
  void push(Message msg);

  struct Stats {
    std::uint64_t delivered = 0;
    std::uint64_t late_discarded = 0;   // arrived after the gap was skipped
    std::uint64_t skipped_missing = 0;  // gaps abandoned by the hold timeout
    std::uint64_t duplicates = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t held() const { return held_.size(); }

 private:
  struct Held {
    Message msg;
    sim::TimePoint arrived;
  };
  void drain();
  void arm_timer();
  void on_timer();
  /// Drops front entries whose seq is no longer held (already delivered).
  void prune_arrivals();

  sim::Simulator& sim_;
  sim::Duration max_hold_;
  DeliverFn deliver_;
  std::uint64_t next_seq_ = 1;
  std::map<std::uint64_t, Held> held_;  // ordered by seq
  /// Hold deadlines in ARRIVAL order — held_ is ordered by seq, so its first
  /// entry is the lowest sequence, not the longest-waiting message. The skip
  /// timer must fire at oldest_arrival + max_hold; tracking arrivals
  /// separately keeps a late-arriving low-seq retransmission from resetting
  /// the effective deadline of older held messages. Arrival times are
  /// monotone and each seq is pushed at most once (duplicates and
  /// already-delivered seqs are rejected), so lazy front-pruning is exact.
  std::deque<std::pair<std::uint64_t, sim::TimePoint>> arrivals_;
  sim::EventId timer_ = sim::kInvalidEventId;
  Stats stats_;
  obs::Counter obs_held_;
  obs::Counter obs_skipped_;
  obs::Counter obs_late_;
};

}  // namespace son::overlay
