// Group State (Fig. 2): shared multicast/anycast membership.
//
// "All of the overlay nodes share information about whether they have
// clients interested in a particular multicast group... The two-level
// hierarchy makes this state sharing practical by allowing each overlay node
// to track only which of its own connected clients are members of a
// particular group and which other overlay nodes are relevant to that group;
// an overlay node does not need to maintain any information about clients
// connected to the other overlay nodes."
#pragma once

#include <cstdint>
#include <vector>

#include "overlay/types.hpp"

namespace son::overlay {

/// One node's advertisement of the groups it has local clients in.
struct GroupStateAd {
  NodeId origin = kInvalidNode;
  std::uint64_t seq = 0;
  std::vector<GroupId> joined;
  /// Origin's incarnation (see LinkStateAd): freshness is ordered by
  /// (incarnation, seq), so a crash-recovered origin's restarted seq counter
  /// still supersedes its previous life's state. Last field so
  /// {origin, seq, joined} aggregate init keeps meaning life 0.
  std::uint32_t incarnation = 0;
};

class GroupDb {
 public:
  explicit GroupDb(std::size_t num_nodes) : by_origin_(num_nodes) {}

  /// Returns true if newer by (incarnation, seq) (flood onward exactly then).
  bool apply(const GroupStateAd& ad);

  /// Membership eviction: forgets the groups a departed origin had joined
  /// (its clients are gone with it) while keeping its (incarnation, seq)
  /// floor against stale floods. Returns true if anything was dropped.
  bool evict_origin(NodeId origin);

  [[nodiscard]] std::uint64_t version() const { return version_; }
  [[nodiscard]] std::uint64_t stored_seq(NodeId origin) const;
  [[nodiscard]] std::uint32_t stored_incarnation(NodeId origin) const;

  /// Overlay nodes with at least one local client joined to `g`, ascending.
  [[nodiscard]] std::vector<NodeId> members_of(GroupId g) const;
  [[nodiscard]] bool is_member(NodeId node, GroupId g) const;

 private:
  struct PerOrigin {
    std::uint64_t seq = 0;
    std::uint32_t incarnation = 0;
    std::vector<GroupId> joined;
  };
  std::vector<PerOrigin> by_origin_;
  std::uint64_t version_ = 1;
};

}  // namespace son::overlay
