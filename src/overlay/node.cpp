#include "overlay/node.hpp"

#include <algorithm>
#include <array>
#include <cassert>

#include "obs/recorder.hpp"

namespace son::overlay {

namespace {
std::uint64_t hash_mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t flow_key_of(NodeId origin, VirtualPort port, const Destination& d) {
  std::uint64_t k = hash_mix((std::uint64_t{origin} << 32) | port);
  k = hash_mix(k ^ (std::uint64_t{static_cast<std::uint8_t>(d.kind)} << 56) ^
               (std::uint64_t{d.node} << 32) ^ (std::uint64_t{d.port} << 16) ^ d.group);
  return k;
}
}  // namespace

/// LinkContext implementation bridging a protocol endpoint to its node.
class NodeLinkContext final : public LinkContext {
 public:
  NodeLinkContext(OverlayNode& node, LinkBit bit) : node_{node}, bit_{bit} {}

  sim::Simulator& simulator() override { return node_.sim_; }
  sim::Rng& rng() override { return node_.rng_; }
  void send_frame(LinkFrame frame) override {
    auto* nl = node_.link_by_bit(bit_);
    assert(nl != nullptr);
    node_.send_frame_on_link(*nl, std::move(frame));
  }
  bool deliver_up(Message msg, LinkBit arrived_on) override {
    return node_.route_message(std::move(msg), arrived_on);
  }
  [[nodiscard]] sim::Duration rtt_estimate() const override {
    const auto health = node_.link_health(bit_);
    return health.srtt > sim::Duration::zero() ? health.srtt
                                               : sim::Duration::milliseconds(20);
  }
  [[nodiscard]] NodeId self() const override { return node_.id_; }
  [[nodiscard]] NodeId peer() const override {
    const auto* nl = const_cast<OverlayNode&>(node_).link_by_bit(bit_);
    return nl != nullptr ? nl->spec.peer : kInvalidNode;
  }
  [[nodiscard]] LinkBit link() const override { return bit_; }
  [[nodiscard]] bool authenticate() const override { return node_.cfg_.authenticate; }
  [[nodiscard]] const crypto::KeyTable* keys() const override { return node_.keys_.get(); }
  void count_protocol_drop(LinkProtocol) override {
    ++node_.stats_.protocol_drops;
    node_.obs_protocol_drops_.add();
  }

 private:
  OverlayNode& node_;
  LinkBit bit_;
};

// ---- Construction / startup --------------------------------------------------

OverlayNode::OverlayNode(sim::Simulator& sim, net::Internet& internet, net::HostId host,
                         NodeId id, topo::Graph overlay_topology,
                         std::vector<NeighborSpec> neighbors, NodeConfig cfg, sim::Rng rng)
    : sim_{sim},
      internet_{internet},
      host_{host},
      id_{id},
      cfg_{cfg},
      rng_{rng},
      topo_db_{std::move(overlay_topology)},
      group_db_{topo_db_.base_graph().num_nodes()},
      router_{id, topo_db_, group_db_},
      membership_{topo_db_.base_graph().num_nodes()} {
  const LivenessProber::Config prober_cfg{cfg_.hello_miss_threshold, cfg_.hello_up_threshold};
  for (auto& spec : neighbors) {
    NeighborLink nl;
    nl.spec = spec;
    assert(!spec.channels.empty());
    for (const Channel& ch : spec.channels) {
      nl.channels.push_back(ChannelState{ch, LivenessProber{prober_cfg}, 1, {}, {},
                                         sim::Duration::milliseconds(10)});
    }
    nl.ctx = std::make_unique<NodeLinkContext>(*this, spec.link);
    links_.push_back(std::move(nl));
  }
  topo_db_.set_loss_aware(cfg_.loss_aware_routing);
  if (cfg_.authenticate) {
    keys_ = std::make_unique<crypto::KeyTable>(
        cfg_.master_key, id_,
        static_cast<std::uint32_t>(topo_db_.base_graph().num_nodes()));
    // Apply the ablation knob before any MacContext is resolved (per-link
    // handles are resolved lazily, on the first signed frame).
    keys_->set_midstate(cfg_.crypto_midstate);
  }
  internet_.bind(host_, cfg_.daemon_port,
                 [this](const net::Datagram& d) { on_datagram(d); });
  obs_failovers_ = obs::counter("overlay.link.failovers");
  obs_no_route_ = obs::counter("overlay.route.no_route");
  obs_ttl_expired_ = obs::counter("overlay.route.ttl_expired");
  obs_dedup_dropped_ = obs::counter("overlay.dedup.dropped");
  obs_compromised_dropped_ = obs::counter("overlay.route.compromised_dropped");
  obs_protocol_drops_ = obs::counter("overlay.link.protocol_drops");
  obs_origin_evictions_ = obs::counter("overlay.membership.origin_evictions");
  obs_cache_evictions_ = obs::counter("overlay.membership.cache_evictions");
}

OverlayNode::~OverlayNode() {
  sim_.cancel(hello_timer_);
  sim_.cancel(refresh_timer_);
  for (const auto id : flood_timers_) sim_.cancel(id);
}

void OverlayNode::start() {
  if (started_) return;
  started_ = true;
  refresh_link_ad(/*force_flood=*/true);
  refresh_group_ad();
  // Deterministic per-node jitter de-synchronizes hello ticks across nodes.
  const auto jitter = sim::Duration::from_millis_f(
      rng_.uniform() * cfg_.hello_interval.to_millis_f());
  hello_timer_ = sim_.schedule(jitter, [this]() { hello_tick(); });
  refresh_timer_ = sim_.schedule(cfg_.state_refresh + jitter, [this]() {
    state_refresh_tick();
  });
}

// ---- Session level -------------------------------------------------------------

ClientEndpoint& OverlayNode::connect(VirtualPort port) {
  auto it = clients_.find(port);
  if (it == clients_.end()) {
    it = clients_.emplace(port, std::unique_ptr<ClientEndpoint>(new ClientEndpoint(*this, port)))
             .first;
  }
  return *it->second;
}

NodeId ClientEndpoint::node() const { return node_.id(); }

bool ClientEndpoint::send(const Destination& dest, Payload payload, const ServiceSpec& spec) {
  return node_.client_send(*this, dest, std::move(payload), spec, node_.sim_.now());
}

bool ClientEndpoint::send_with_origin(const Destination& dest, Payload payload,
                                      const ServiceSpec& spec, sim::TimePoint origin_time) {
  return node_.client_send(*this, dest, std::move(payload), spec, origin_time);
}

bool ClientEndpoint::send_flow(const Destination& dest, Payload payload, const ServiceSpec& spec,
                               std::uint32_t flow_tag, std::uint64_t flow_seq) {
  // Tagged flow identity: fold the engine's per-flow tag into the ordinary
  // (origin, port, dest) key so concurrent flows through one endpoint get
  // distinct keys without any per-flow endpoint state. The 0xF10E salt keeps
  // tagged keys out of the untagged keyspace.
  const std::uint64_t key = hash_mix(flow_key_of(node_.id(), port_, dest) ^
                                     (0xF10EULL << 48) ^ flow_tag);
  // The tag doubles as the fairness identity: the IT fair scheduler keys
  // per-source storage and round-robin on (origin, source_tag), so 100k
  // engine flows from distinct tags do not collapse into one source.
  return node_.client_send_impl(*this, dest, std::move(payload), spec, node_.sim_.now(), key,
                                flow_seq, flow_tag);
}

void ClientEndpoint::join(GroupId g) {
  if (std::find(joined_.begin(), joined_.end(), g) == joined_.end()) {
    joined_.push_back(g);
    node_.refresh_group_ad();
  }
}

void ClientEndpoint::leave(GroupId g) {
  const auto it = std::find(joined_.begin(), joined_.end(), g);
  if (it != joined_.end()) {
    joined_.erase(it);
    node_.refresh_group_ad();
  }
}

void OverlayNode::refresh_group_ad() {
  GroupStateAd ad;
  ad.origin = id_;
  ad.seq = ++own_group_seq_;
  ad.incarnation = incarnation_;
  for (const auto& [port, client] : clients_) {
    for (const GroupId g : client->joined_) {
      if (std::find(ad.joined.begin(), ad.joined.end(), g) == ad.joined.end()) {
        ad.joined.push_back(g);
      }
    }
  }
  group_db_.apply(ad);
  if (started_) flood_control(FrameType::kGroupState, ad, kInvalidLinkBit);
}

bool OverlayNode::client_send(ClientEndpoint& client, const Destination& dest, Payload payload,
                              const ServiceSpec& spec, sim::TimePoint origin_time) {
  const std::uint64_t flow_key = flow_key_of(id_, client.port_, dest);
  const std::uint64_t flow_seq = ++client.flow_seq_[flow_key];
  return client_send_impl(client, dest, std::move(payload), spec, origin_time, flow_key,
                          flow_seq, /*source_tag=*/0);
}

bool OverlayNode::client_send_impl(ClientEndpoint& client, const Destination& dest,
                                   Payload payload, const ServiceSpec& spec,
                                   sim::TimePoint origin_time, std::uint64_t flow_key,
                                   std::uint64_t flow_seq, std::uint32_t source_tag) {
  Message msg;
  msg.hdr.origin = id_;
  msg.hdr.src_port = client.port_;
  msg.hdr.dest = dest;
  msg.hdr.flow_key = flow_key;
  msg.hdr.flow_seq = flow_seq;
  msg.hdr.source_tag = source_tag;
  msg.hdr.origin_id = make_origin_id();
  msg.hdr.scheme = spec.scheme;
  msg.hdr.link_protocol = spec.link_protocol;
  msg.hdr.origin_time = origin_time;
  msg.hdr.deadline = spec.deadline;
  msg.hdr.priority = spec.priority;
  msg.hdr.nm_requests = spec.nm_requests;
  msg.hdr.nm_retransmissions = spec.nm_retransmissions;
  msg.hdr.ordered = spec.ordered;
  msg.payload = std::move(payload);

  // Resolve anycast at the origin: pick the nearest member node.
  if (dest.kind == Destination::Kind::kAnycast) {
    const NodeId target = router_.anycast_target(dest.group);
    if (target == kInvalidNode) {
      ++stats_.no_route;
      return false;
    }
    msg.hdr.dest.node = target;
  }

  // Source-based schemes: stamp the link bitmask once, at the origin.
  if (spec.scheme != RouteScheme::kLinkState) {
    if (spec.custom_mask != 0) {
      msg.hdr.mask = spec.custom_mask;
    } else {
      NodeId mask_dst = msg.hdr.dest.node;
      if (dest.kind == Destination::Kind::kMulticast) {
        // Only flooding supports point-to-multipoint source-based routing
        // (or an explicit custom_mask subgraph).
        if (spec.scheme != RouteScheme::kFlooding) {
          ++stats_.no_route;
          return false;
        }
        mask_dst = id_;  // irrelevant for flooding
      }
      msg.hdr.mask = router_.source_mask(spec, mask_dst);
      if (msg.hdr.mask == 0 && spec.scheme != RouteScheme::kFlooding) {
        ++stats_.no_route;
        return false;
      }
    }
  }

  ++stats_.originated;
  SON_OBS_PATH(msg.hdr.origin_id, id_, obs::HopKind::kOrigin,
               obs::pack3(0xFF, static_cast<std::uint8_t>(msg.hdr.link_protocol), 0));
  const bool admitted = route_message(std::move(msg), kInvalidLinkBit);
  if (!admitted) ++stats_.send_blocked;
  return admitted;
}

void OverlayNode::deliver_to_session(const Message& msg) {
  SON_OBS_PATH(msg.hdr.origin_id, id_, obs::HopKind::kDeliver,
               obs::pack3(0xFF, static_cast<std::uint8_t>(msg.hdr.link_protocol), 0));
  if (msg.hdr.ordered) {
    auto it = reorder_.find(msg.hdr.flow_key);
    if (it == reorder_.end()) {
      const sim::Duration hold = msg.hdr.deadline > sim::Duration::zero()
                                     ? msg.hdr.deadline
                                     : cfg_.reorder_hold;
      it = reorder_
               .emplace(msg.hdr.flow_key,
                        std::make_unique<ReorderBuffer>(
                            sim_, hold, [this](const Message& m) { deliver_to_client(m); }))
               .first;
    }
    it->second->push(msg);
  } else {
    deliver_to_client(msg);
  }
}

void OverlayNode::deliver_to_client(const Message& msg) {
  const sim::Duration latency = sim_.now() - msg.hdr.origin_time;
  ++stats_.delivered_local;

  // Flow-based accounting (§II-C): per-flow state at the terminating node.
  // Optional because the map grows with distinct flow keys — at 1M+ tagged
  // flows it would dominate node memory (cfg_.session_flow_accounting).
  if (cfg_.session_flow_accounting) {
    FlowStats& fs = flow_stats_[msg.hdr.flow_key];
    if (fs.delivered == 0) {
      fs.origin = msg.hdr.origin;
      fs.src_port = msg.hdr.src_port;
      fs.dest = msg.hdr.dest;
      fs.link_protocol = msg.hdr.link_protocol;
      fs.scheme = msg.hdr.scheme;
      fs.ewma_latency = latency;
    }
    ++fs.delivered;
    fs.bytes += msg.payload_size();
    if (msg.hdr.flow_seq > fs.highest_seq + 1 && fs.delivered > 1) ++fs.gaps;
    fs.highest_seq = std::max(fs.highest_seq, msg.hdr.flow_seq);
    fs.ewma_latency = fs.ewma_latency * 0.875 + latency * 0.125;
    fs.max_latency = std::max(fs.max_latency, latency);
    fs.last_delivery = sim_.now();
  }
  switch (msg.hdr.dest.kind) {
    case Destination::Kind::kUnicast: {
      const auto it = clients_.find(msg.hdr.dest.port);
      if (it != clients_.end() && it->second->handler_) {
        it->second->handler_(msg, latency);
      }
      break;
    }
    case Destination::Kind::kMulticast: {
      for (const auto& [port, client] : clients_) {
        if (std::find(client->joined_.begin(), client->joined_.end(), msg.hdr.dest.group) !=
                client->joined_.end() &&
            client->handler_) {
          client->handler_(msg, latency);
        }
      }
      break;
    }
    case Destination::Kind::kAnycast: {
      // "Anycast messages are delivered to exactly one member of the
      // relevant group" — one client, even if several joined on this node.
      for (const auto& [port, client] : clients_) {
        if (std::find(client->joined_.begin(), client->joined_.end(), msg.hdr.dest.group) !=
                client->joined_.end() &&
            client->handler_) {
          client->handler_(msg, latency);
          break;
        }
      }
      break;
    }
  }
}

// ---- Routing level ---------------------------------------------------------------

bool OverlayNode::route_message(Message msg, LinkBit arrived_on) {
  return route_message_impl(std::move(msg), arrived_on, /*skip_compromise=*/false);
}

bool OverlayNode::route_message_impl(Message msg, LinkBit arrived_on, bool skip_compromise) {
  const bool transit = arrived_on != kInvalidLinkBit;

  // Overlay TTL: transient link-state disagreement during convergence can
  // briefly loop a packet; bound the damage. 32 hops is far beyond any
  // legitimate path in a "few tens of nodes" overlay.
  if (transit) {
    if (msg.hdr.hops >= 32) {
      ++stats_.ttl_expired;
      obs_ttl_expired_.add();
      SON_OBS(id_, obs::Category::kRoute, obs::RouteEvent::kTtlExpired, msg.hdr.origin_id, 0);
      SON_OBS_PATH(msg.hdr.origin_id, id_, obs::HopKind::kDropTtl, obs::pack3(arrived_on, 0, 0));
      return true;
    }
    ++msg.hdr.hops;
  }

  // Compromised behaviour: disrupt transit data (control traffic and local
  // origination continue normally — the stealthy worst case).
  if (transit && compromise_.active && !skip_compromise) {
    const bool targeted = compromise_.target_origin == 0xFFFF ||
                          compromise_.target_origin == msg.hdr.origin;
    if (targeted) {
      if (compromise_.blackhole_transit ||
          (compromise_.drop_probability > 0 && rng_.bernoulli(compromise_.drop_probability))) {
        ++stats_.compromised_dropped;
        obs_compromised_dropped_.add();
        SON_OBS_PATH(msg.hdr.origin_id, id_, obs::HopKind::kDropCompromised,
                     obs::pack3(arrived_on, 0, 0));
        return true;  // silently swallowed
      }
      if (compromise_.added_delay > sim::Duration::zero()) {
        sim_.schedule(
            compromise_.added_delay,
            timer_guard_.wrap([this, msg = std::move(msg), arrived_on]() {
              route_message_impl(msg, arrived_on, /*skip_compromise=*/true);
            }));
        return true;
      }
    }
  }

  switch (msg.hdr.scheme) {
    case RouteScheme::kLinkState: {
      if (msg.hdr.dest.kind == Destination::Kind::kMulticast) {
        if (group_db_.is_member(id_, msg.hdr.dest.group)) deliver_to_session(msg);
        bool all_ok = true;
        for (const LinkBit b :
             router_.multicast_links(msg.hdr.origin, msg.hdr.dest.group, arrived_on)) {
          all_ok = forward_on(b, msg) && all_ok;
        }
        return all_ok;
      }
      // Unicast / resolved anycast.
      if (msg.hdr.dest.node == id_) {
        deliver_to_session(msg);
        return true;
      }
      const LinkBit nh = router_.next_hop(msg.hdr.dest.node);
      if (nh == kInvalidLinkBit) {
        ++stats_.no_route;
        obs_no_route_.add();
        SON_OBS(id_, obs::Category::kRoute, obs::RouteEvent::kNoRoute, msg.hdr.dest.node, 0);
        SON_OBS_PATH(msg.hdr.origin_id, id_, obs::HopKind::kDropNoRoute,
                     obs::pack3(arrived_on, 0, 0));
        return true;  // accepted but undeliverable right now
      }
      return forward_on(nh, msg);
    }

    case RouteScheme::kDisjointPaths:
    case RouteScheme::kDissemination:
    case RouteScheme::kFlooding: {
      if (dedup_.seen_or_insert(msg.hdr.origin_id)) {
        ++stats_.dedup_dropped;
        obs_dedup_dropped_.add();
        SON_OBS_PATH(msg.hdr.origin_id, id_, obs::HopKind::kDropDedup,
                     obs::pack3(arrived_on, 0, 0));
        return true;
      }
      const bool for_me =
          (msg.hdr.dest.kind == Destination::Kind::kUnicast && msg.hdr.dest.node == id_) ||
          (msg.hdr.dest.kind == Destination::Kind::kAnycast && msg.hdr.dest.node == id_) ||
          (msg.hdr.dest.kind == Destination::Kind::kMulticast &&
           group_db_.is_member(id_, msg.hdr.dest.group));
      if (for_me) deliver_to_session(msg);
      for (const LinkBit b : router_.adjacent_mask_links(msg.hdr.mask, arrived_on)) {
        forward_on(b, msg);
      }
      return true;
    }
  }
  return true;
}

bool OverlayNode::forward_on(LinkBit link, const Message& msg) {
  NeighborLink* nl = link_by_bit(link);
  if (nl == nullptr) return false;
  ++stats_.forwarded;
  SON_OBS_PATH(msg.hdr.origin_id, id_, obs::HopKind::kForward,
               obs::pack3(link, static_cast<std::uint8_t>(msg.hdr.link_protocol), 0));
  return endpoint(*nl, msg.hdr.link_protocol).send(msg);
}

// ---- Link level / underlay ----------------------------------------------------------

OverlayNode::NeighborLink* OverlayNode::link_by_bit(LinkBit b) {
  for (auto& nl : links_) {
    if (nl.spec.link == b) return &nl;
  }
  return nullptr;
}

LinkProtocolEndpoint& OverlayNode::endpoint(NeighborLink& nl, LinkProtocol proto) {
  auto it = nl.endpoints.find(proto);
  if (it == nl.endpoints.end()) {
    it = nl.endpoints.emplace(proto, make_link_endpoint(proto, *nl.ctx, cfg_.link_protocols))
             .first;
  }
  return *it->second;
}

bool OverlayNode::is_control_frame(FrameType t) {
  return t == FrameType::kHello || t == FrameType::kHelloReply || t == FrameType::kLsa ||
         t == FrameType::kGroupState;
}

void OverlayNode::send_frame_on_link(NeighborLink& nl, LinkFrame f) {
  if (crashed_) return;  // and says nothing
  f.incarnation = incarnation_;
  // Intrusion-tolerant deployments authenticate the control plane hop-by-hop
  // so outsiders cannot inject hellos or forge topology/membership state.
  if (cfg_.authenticate && keys_ != nullptr && is_control_frame(f.type)) {
    if (keys_->midstate()) {
      std::array<std::uint8_t, kControlAuthHeadBytes> head;
      const std::size_t n = control_auth_head_bytes(f, std::span{head});
      if (!nl.mac.valid()) nl.mac = keys_->context(nl.spec.peer);
      f.auth = nl.mac.sign(std::span<const std::uint8_t>{head.data(), n},
                           control_suffix_for_sign(f));
    } else {
      // Seed-path reconstruction (midstate ablation).
      // son-analyze: allow(hot-path-alloc) "ablation branch reconstructing the pre-fast-path behavior for A/B benchmarking; off in production runs"
      const auto bytes = control_auth_bytes(f);
      f.auth = keys_->sign(nl.spec.peer, std::span<const std::uint8_t>{bytes});
    }
    f.authenticated = true;
  }
  // Channel selection: hellos pin their channel; everything else uses the
  // current best (active) channel.
  std::size_t ch_idx = static_cast<std::size_t>(nl.active_channel);
  if (f.type == FrameType::kHello || f.type == FrameType::kHelloReply) {
    ch_idx = std::min<std::size_t>(f.channel, nl.channels.size() - 1);
  }
  const Channel attach = nl.channels[ch_idx].attach;

  net::Datagram d;
  d.src = host_;
  d.dst = nl.spec.peer_host;
  d.src_port = cfg_.daemon_port;
  d.dst_port = cfg_.daemon_port;
  d.size_bytes = frame_wire_size(f);
  d.payload = std::move(f);
  ++stats_.frames_sent;

  // The user-level stack traversal cost (§II-D): well under 1 ms per node.
  sim_.schedule(cfg_.processing_delay,
                timer_guard_.wrap([this, d = std::move(d), attach]() mutable {
                  net::Internet::SendOptions opts;
                  opts.src_attach = attach.local;
                  opts.dst_attach = attach.remote;
                  internet_.send(std::move(d), opts);
                }));
}

void OverlayNode::set_crashed(bool crashed) { crashed_ = crashed; }

void OverlayNode::restart() {
  ++incarnation_;
  crashed_ = false;
  // Volatile per-message state restarts at its initial values; the bumped
  // incarnation (in origin ids, frames and advertisements) is what keeps the
  // new life's identifiers disjoint from the old one's.
  next_origin_counter_ = 1;
  own_lsa_seq_ = 0;
  own_group_seq_ = 0;
  dedup_ = DedupCache{};
  reorder_.clear();
  flow_stats_.clear();
  sign_suffix_valid_ = false;
  const LivenessProber::Config prober_cfg{cfg_.hello_miss_threshold, cfg_.hello_up_threshold};
  for (auto& nl : links_) {
    nl.endpoints.clear();
    nl.active_channel = 0;
    nl.up = true;
    nl.adv_up = true;
    nl.adv_latency_ms = 0.0;
    nl.adv_loss = 0.0;
    nl.peer_incarnation = 0;  // relearned from the peer's next frame
    for (ChannelState& ch : nl.channels) {
      ch.prober = LivenessProber{prober_cfg};
      ch.next_hello_seq = 1;
      ch.outstanding.clear();
      ch.window.clear();
      ch.srtt = sim::Duration::milliseconds(10);
    }
  }
  // Learned remote state was volatile too. Evicting (rather than zeroing)
  // keeps each origin's (incarnation, seq) floor, so stale floods still in
  // flight cannot re-install a previous life's state; live origins re-flood
  // within ~state_refresh and repopulate everything.
  const auto n = static_cast<NodeId>(topo_db_.base_graph().num_nodes());
  for (NodeId o = 0; o < n; ++o) {
    if (o == id_) continue;
    topo_db_.evict_origin(o);
    group_db_.evict_origin(o);
    router_.evict_origin(o);
  }
  membership_ = MembershipDb{topo_db_.base_graph().num_nodes()};
  if (started_) {
    // Rejoin: advertise own state immediately under the new incarnation.
    refresh_link_ad(/*force_flood=*/true);
    refresh_group_ad();
  }
}

bool OverlayNode::admit_peer_incarnation(NeighborLink& nl, const LinkFrame& f) {
  membership_.heard_from(f.from, f.incarnation, sim_.now());
  if (f.incarnation < nl.peer_incarnation) {
    ++stats_.stale_incarnation_drops;
    return false;  // a pre-crash ghost still in flight
  }
  if (f.incarnation > nl.peer_incarnation) {
    nl.peer_incarnation = f.incarnation;
    ++stats_.peer_restarts_seen;
    // The peer restarted: its senders are at seq 1 again and its receivers
    // have empty windows, so every per-link protocol endpoint for this
    // neighbor is reset (both roles live in the same endpoint objects).
    nl.endpoints.clear();
    if (tracer_.enabled(sim::TraceLevel::kInfo)) {
      trace(sim::TraceLevel::kInfo,
            "peer " + std::to_string(nl.spec.peer) + " restarted (incarnation " +
                std::to_string(f.incarnation) + "); link state reset");
    }
  }
  return true;
}

void OverlayNode::sweep_departed_origins() {
  if (cfg_.dead_origin_timeout <= sim::Duration::zero()) return;
  const sim::TimePoint now = sim_.now();
  // Startup grace: nothing can be "silent for the timeout" before one
  // timeout has elapsed since t=0.
  if (now < sim::TimePoint::zero() + cfg_.dead_origin_timeout) return;
  departed_scratch_.clear();
  membership_.sweep(now - cfg_.dead_origin_timeout, departed_scratch_);
  for (const NodeId origin : departed_scratch_) {
    if (origin == id_) continue;
    topo_db_.evict_origin(origin);
    group_db_.evict_origin(origin);
    const std::size_t cache_entries = router_.evict_origin(origin);
    ++stats_.origin_evictions;
    obs_origin_evictions_.add();
    if (cache_entries > 0) obs_cache_evictions_.add(cache_entries);
    if (tracer_.enabled(sim::TraceLevel::kInfo)) {
      trace(sim::TraceLevel::kInfo,
            "origin " + std::to_string(origin) + " departed; state evicted");
    }
  }
}

void OverlayNode::on_datagram(const net::Datagram& d) {
  if (crashed_) return;  // a crashed node hears nothing
  const auto* f = d.payload.get<LinkFrame>();
  if (f == nullptr) return;
  ++stats_.frames_received;
  on_frame(*f);
}

void OverlayNode::on_frame(LinkFrame f) {
  if (cfg_.authenticate && keys_ != nullptr && is_control_frame(f.type)) {
    bool ok = f.authenticated && f.from < keys_->size();
    if (ok && keys_->midstate()) {
      // Re-serialize the claimed content into this node's own scratch (never
      // trust, and never cache, bytes keyed by a sender-chosen id).
      std::array<std::uint8_t, kControlAuthHeadBytes> head;
      const std::size_t n = control_auth_head_bytes(f, std::span{head});
      control_auth_suffix_into(f, verify_suffix_scratch_);
      ok = keys_->verify(f.from, std::span<const std::uint8_t>{head.data(), n},
                         std::span<const std::uint8_t>{verify_suffix_scratch_}, f.auth);
    } else if (ok) {
      // son-analyze: allow(hot-path-alloc) "ablation branch reconstructing the pre-fast-path behavior for A/B benchmarking; off in production runs"
      const auto bytes = control_auth_bytes(f);
      ok = keys_->verify(f.from, std::span<const std::uint8_t>{bytes}, f.auth);
    }
    if (!ok) {
      ++stats_.control_auth_failures;
      return;
    }
  }
  // Incarnation discipline runs after authentication (a forged frame must
  // not reset link state) and before any handler: ghosts from a neighbor's
  // previous life are dropped, and a bumped incarnation resets the link.
  if (NeighborLink* nl = link_by_bit(f.link);
      nl != nullptr && f.from == nl->spec.peer && !admit_peer_incarnation(*nl, f)) {
    return;
  }
  switch (f.type) {
    case FrameType::kHello:
      handle_hello(f);
      return;
    case FrameType::kHelloReply:
      handle_hello_reply(f);
      return;
    case FrameType::kLsa:
      handle_lsa(f);
      return;
    case FrameType::kGroupState:
      handle_group_state(f);
      return;
    default:
      break;
  }
  NeighborLink* nl = link_by_bit(f.link);
  if (nl == nullptr || f.from != nl->spec.peer) return;  // not one of our links
  endpoint(*nl, f.proto).on_frame(f);
}

// ---- Hello protocol & link health --------------------------------------------------

void OverlayNode::hello_tick() {
  for (auto& nl : links_) {
    for (std::size_t c = 0; c < nl.channels.size(); ++c) {
      ChannelState& ch = nl.channels[c];
      // Expire unanswered hellos. The timeout must exceed any overlay link's
      // RTT (a 50 ms link has a ~100 ms RTT; expiring after one interval
      // would count every reply as lost), so we allow miss_threshold
      // intervals before declaring a probe lost.
      const sim::TimePoint now = sim_.now();
      const sim::Duration hello_timeout =
          cfg_.hello_interval * static_cast<std::int64_t>(cfg_.hello_miss_threshold);
      for (auto it = ch.outstanding.begin(); it != ch.outstanding.end();) {
        if (now - it->second >= hello_timeout) {
          ch.window.push_back(false);
          if (ch.window.size() > cfg_.hello_window) ch.window.pop_front();
          ch.prober.on_miss();
          it = ch.outstanding.erase(it);
        } else {
          ++it;
        }
      }
      send_hello(nl, c);
    }
    evaluate_link(nl);
  }
  refresh_link_ad(/*force_flood=*/false);
  hello_timer_ = sim_.schedule(cfg_.hello_interval, [this]() { hello_tick(); });
}

void OverlayNode::send_hello(NeighborLink& nl, std::size_t channel_idx) {
  ChannelState& ch = nl.channels[channel_idx];
  LinkFrame f;
  f.link = nl.spec.link;
  f.from = id_;
  f.to = nl.spec.peer;
  f.type = FrameType::kHello;
  f.hello_seq = ch.next_hello_seq++;
  f.t_sent = sim_.now();
  f.channel = static_cast<std::uint8_t>(channel_idx);
  ch.outstanding.emplace(f.hello_seq, sim_.now());
  send_frame_on_link(nl, std::move(f));
}

void OverlayNode::handle_hello(const LinkFrame& f) {
  NeighborLink* nl = link_by_bit(f.link);
  if (nl == nullptr || f.from != nl->spec.peer) return;
  LinkFrame reply;
  reply.link = f.link;
  reply.from = id_;
  reply.to = f.from;
  reply.type = FrameType::kHelloReply;
  reply.hello_seq = f.hello_seq;
  reply.t_sent = f.t_sent;  // echo for RTT measurement
  reply.channel = f.channel;
  send_frame_on_link(*nl, std::move(reply));
}

void OverlayNode::handle_hello_reply(const LinkFrame& f) {
  NeighborLink* nl = link_by_bit(f.link);
  if (nl == nullptr || f.from != nl->spec.peer) return;
  if (f.channel >= nl->channels.size()) return;
  ChannelState& ch = nl->channels[f.channel];
  const auto it = ch.outstanding.find(f.hello_seq);
  if (it == ch.outstanding.end()) return;  // late reply past expiry
  ch.outstanding.erase(it);

  const sim::Duration rtt = sim_.now() - f.t_sent;
  ch.srtt = ch.srtt * 0.875 + rtt * 0.125;
  ch.window.push_back(true);
  if (ch.window.size() > cfg_.hello_window) ch.window.pop_front();
  if (ch.prober.on_success()) {
    evaluate_link(*nl);
    refresh_link_ad(/*force_flood=*/false);
  }
}

double OverlayNode::channel_loss(const ChannelState& ch) const {
  if (ch.window.empty()) return 0.0;
  const auto lost = static_cast<double>(
      std::count(ch.window.begin(), ch.window.end(), false));
  return lost / static_cast<double>(ch.window.size());
}

void OverlayNode::evaluate_link(NeighborLink& nl) {
  int best = -1;
  double best_score = 1e18;
  for (std::size_t c = 0; c < nl.channels.size(); ++c) {
    const ChannelState& ch = nl.channels[c];
    if (!ch.prober.up()) continue;
    // Loss dominates (bucketed so jitter does not flap channels); RTT breaks
    // ties.
    const double score = std::round(channel_loss(ch) * 50.0) * 1e6 + ch.srtt.to_millis_f();
    if (score < best_score) {
      best_score = score;
      best = static_cast<int>(c);
    }
  }
  if (best != -1 && best != nl.active_channel) {
    ++stats_.link_failovers;
    obs_failovers_.add();
    SON_OBS(id_, obs::Category::kLink, obs::LinkEvent::kFailover, nl.spec.link,
            static_cast<std::uint64_t>(best));
    if (tracer_.enabled(sim::TraceLevel::kInfo)) {
      trace(sim::TraceLevel::kInfo,
            "link " + std::to_string(nl.spec.link) + " failover to channel " +
                std::to_string(best));
    }
  }
  if (best != -1) nl.active_channel = best;
  nl.up = best != -1;
}

// ---- State flooding -------------------------------------------------------------------

void OverlayNode::refresh_link_ad(bool force_flood) {
  if (!started_ && !force_flood) return;
  // Detect change vs. what we last advertised.
  bool changed = false;
  for (auto& nl : links_) {
    const ChannelState& ch = nl.channels[static_cast<std::size_t>(nl.active_channel)];
    const double lat = ch.srtt.to_millis_f() / 2.0;
    const double loss = channel_loss(ch);
    if (nl.up != nl.adv_up ||
        std::abs(lat - nl.adv_latency_ms) >
            cfg_.lsa_latency_rel_change * std::max(nl.adv_latency_ms, 0.1) ||
        std::abs(loss - nl.adv_loss) > cfg_.lsa_loss_abs_change) {
      changed = true;
    }
  }
  if (!changed && !force_flood) return;

  LinkStateAd ad;
  ad.origin = id_;
  ad.seq = ++own_lsa_seq_;
  ad.incarnation = incarnation_;
  for (auto& nl : links_) {
    const ChannelState& ch = nl.channels[static_cast<std::size_t>(nl.active_channel)];
    LinkReport r;
    r.link = nl.spec.link;
    r.up = nl.up;
    r.latency_ms = ch.srtt.to_millis_f() / 2.0;
    r.loss_rate = channel_loss(ch);
    ad.links.push_back(r);
    nl.adv_up = nl.up;
    nl.adv_latency_ms = r.latency_ms;
    nl.adv_loss = r.loss_rate;
  }
  topo_db_.apply(ad);
  flood_control(FrameType::kLsa, ad, kInvalidLinkBit);
}

void OverlayNode::flood_control(FrameType type, std::any control, LinkBit arrived_on) {
  ++stats_.lsa_floods;
  if (flood_timers_.size() > 65536) flood_timers_.clear();  // long fired
  for (auto& nl : links_) {
    if (nl.spec.link == arrived_on) continue;
    for (std::uint32_t copy = 0; copy < cfg_.flood_copies; ++copy) {
      const sim::Duration at = cfg_.flood_spacing * static_cast<std::int64_t>(copy);
      const LinkBit bit = nl.spec.link;
      flood_timers_.push_back(sim_.schedule(at, [this, bit, type, control]() {
        NeighborLink* nl2 = link_by_bit(bit);
        if (nl2 == nullptr) return;
        LinkFrame f;
        f.link = bit;
        f.from = id_;
        f.to = nl2->spec.peer;
        f.type = type;
        f.control = control;
        send_frame_on_link(*nl2, std::move(f));
      }));
    }
  }
}

std::span<const std::uint8_t> OverlayNode::control_suffix_for_sign(const LinkFrame& f) {
  NodeId origin = kInvalidNode;
  std::uint64_t seq = 0;
  std::uint32_t incarnation = 0;
  if (const auto* lsa = std::any_cast<LinkStateAd>(&f.control)) {
    origin = lsa->origin;
    seq = lsa->seq;
    incarnation = lsa->incarnation;
  } else if (const auto* gsa = std::any_cast<GroupStateAd>(&f.control)) {
    origin = gsa->origin;
    seq = gsa->seq;
    incarnation = gsa->incarnation;
  } else {
    return {};  // hellos carry no advertisement body
  }
  // Ad content is immutable per (type, origin, incarnation, seq): origins
  // bump seq on every new advertisement within a life and restart seq in a
  // fresh incarnation, so the triple fully addresses the bytes.
  if (!sign_suffix_valid_ || sign_suffix_type_ != f.type || sign_suffix_origin_ != origin ||
      sign_suffix_seq_ != seq || sign_suffix_incarnation_ != incarnation) {
    control_auth_suffix_into(f, sign_suffix_);
    sign_suffix_type_ = f.type;
    sign_suffix_origin_ = origin;
    sign_suffix_seq_ = seq;
    sign_suffix_incarnation_ = incarnation;
    sign_suffix_valid_ = true;
  }
  return std::span<const std::uint8_t>{sign_suffix_};
}

void OverlayNode::handle_lsa(const LinkFrame& f) {
  const auto* ad = std::any_cast<LinkStateAd>(&f.control);
  if (ad == nullptr) return;
  // Any flood is membership evidence, even a duplicate the db rejects.
  membership_.heard_from(ad->origin, ad->incarnation, sim_.now());
  if (topo_db_.apply(*ad)) {
    flood_control(FrameType::kLsa, f.control, f.link);
  }
}

void OverlayNode::handle_group_state(const LinkFrame& f) {
  const auto* ad = std::any_cast<GroupStateAd>(&f.control);
  if (ad == nullptr) return;
  membership_.heard_from(ad->origin, ad->incarnation, sim_.now());
  if (group_db_.apply(*ad)) {
    flood_control(FrameType::kGroupState, f.control, f.link);
  }
}

void OverlayNode::state_refresh_tick() {
  membership_.heard_from(id_, incarnation_, sim_.now());  // we are our own evidence
  sweep_departed_origins();
  refresh_link_ad(/*force_flood=*/true);
  refresh_group_ad();
  refresh_timer_ = sim_.schedule(cfg_.state_refresh, [this]() { state_refresh_tick(); });
}

// ---- Introspection -------------------------------------------------------------------

LinkProtocolEndpoint* OverlayNode::find_endpoint(LinkBit b, LinkProtocol proto) {
  NeighborLink* nl = link_by_bit(b);
  if (nl == nullptr) return nullptr;
  const auto it = nl->endpoints.find(proto);
  return it == nl->endpoints.end() ? nullptr : it->second.get();
}

std::vector<LinkBit> OverlayNode::link_bits() const {
  std::vector<LinkBit> bits;
  bits.reserve(links_.size());
  for (const auto& nl : links_) bits.push_back(nl.spec.link);
  return bits;
}

OverlayNode::LinkHealth OverlayNode::link_health(LinkBit b) const {
  LinkHealth h;
  for (const auto& nl : links_) {
    if (nl.spec.link != b) continue;
    h.up = nl.up;
    h.active_channel = nl.active_channel;
    const auto& ch = nl.channels[static_cast<std::size_t>(nl.active_channel)];
    h.loss_estimate = channel_loss(ch);
    h.srtt = ch.srtt;
    break;
  }
  return h;
}

crypto::Tag OverlayNode::bench_make_arrival_tag(const Message& msg, LinkBit arrived_on) const {
  if (keys_ == nullptr) return {};
  const auto* nl = const_cast<OverlayNode*>(this)->link_by_bit(arrived_on);
  if (nl == nullptr) return {};
  const auto bytes = auth_bytes(msg);
  return keys_->sign(nl->spec.peer, std::span<const std::uint8_t>{bytes});
}

OverlayNode::ForwardAuthResult OverlayNode::bench_forward_lookup(const Message& msg,
                                                                 LinkBit arrived_on,
                                                                 const crypto::Tag* in_auth,
                                                                 BenchAuthPath path) {
  // The per-message forwarding work of an intermediate node: routing lookup
  // (+ dedup for source-based schemes) and, in IT mode, HMAC verify+re-sign.
  ForwardAuthResult res;
  if (msg.hdr.scheme == RouteScheme::kLinkState) {
    res.egress = router_.next_hop(msg.hdr.dest.node);
  } else {
    volatile bool dup = dedup_.seen_or_insert(msg.hdr.origin_id);
    (void)dup;
    const auto& links = router_.adjacent_mask_links(msg.hdr.mask, arrived_on);
    if (!links.empty()) res.egress = links.front();
  }
  if (!cfg_.authenticate || keys_ == nullptr || links_.empty()) return res;

  // Verify is keyed to the INGRESS link's peer (who signed the arriving
  // frame); the re-sign to the EGRESS link's peer (who will verify it next).
  // These are distinct pairwise keys on any real transit hop.
  NeighborLink* in_nl = link_by_bit(arrived_on);
  if (in_nl == nullptr) in_nl = &links_.front();
  NeighborLink* out_nl = link_by_bit(res.egress);
  if (out_nl == nullptr || out_nl == in_nl) {
    out_nl = in_nl;
    for (auto& nl : links_) {
      if (&nl != in_nl) {
        out_nl = &nl;
        break;
      }
    }
  }

  if (path == BenchAuthPath::kFast && keys_->midstate()) {
    std::array<std::uint8_t, kAuthHeadBytes> head;
    const std::size_t n = auth_head_bytes(msg, std::span{head});
    const std::span<const std::uint8_t> head_sp{head.data(), n};
    const std::span<const std::uint8_t> body =
        msg.payload ? std::span<const std::uint8_t>{msg.payload->data(), msg.payload->size()}
                    : std::span<const std::uint8_t>{};
    if (!in_nl->mac.valid()) in_nl->mac = keys_->context(in_nl->spec.peer);
    if (!out_nl->mac.valid()) out_nl->mac = keys_->context(out_nl->spec.peer);
    res.verified = in_auth == nullptr || in_nl->mac.verify(head_sp, body, *in_auth);
    res.resigned = out_nl->mac.sign(head_sp, body);
  } else {
    // Seed path: heap-serialize the auth input and derive the HMAC key pads
    // from the raw pairwise key on every tag, pinned to the scalar kernel —
    // the seed predates runtime SHA-256 dispatch, so the before/after cells
    // must not let the hardware kernel leak into the baseline.
    const auto bytes = auth_bytes(msg);
    const std::span<const std::uint8_t> sp{bytes};
    constexpr auto kSeedKernel = crypto::Sha256Kernel::kScalar;
    res.verified =
        in_auth == nullptr ||
        crypto::verify_tag(
            crypto::hmac_tag(std::span<const std::uint8_t>{keys_->key_for(in_nl->spec.peer)}, sp,
                             kSeedKernel),
            *in_auth);
    res.resigned = crypto::hmac_tag(
        std::span<const std::uint8_t>{keys_->key_for(out_nl->spec.peer)}, sp, kSeedKernel);
  }
  return res;
}

}  // namespace son::overlay
