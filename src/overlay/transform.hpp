// Compound flows (§V-C): in-network processing and transformation.
//
// "The unlimited programmability enabled through the use of general-purpose
// computers as overlay nodes opens up new possibilities for sophisticated
// in-network processing and transformation of flows... an initial use being
// developed today is for video transcoding in the cloud."
//
// A FlowTransformer is a service client attached to an overlay node: it
// consumes an input flow (a unicast port or a group it joins), applies a
// user-supplied transformation with a configurable processing time, and
// republishes the result as a new flow. Facilities typically join an anycast
// group so sources reach the nearest one, and "network conditions and
// failures may lead to rerouting that can include the selection of a
// transcoding facility at a different location."
#pragma once

#include <functional>

#include "overlay/node.hpp"
#include "sim/timer_guard.hpp"

namespace son::overlay {

class FlowTransformer {
 public:
  /// Transformation applied to every input message's payload. Returning a
  /// null Payload drops the message (filtering).
  using TransformFn = std::function<Payload(const Message&)>;

  struct Options {
    /// Virtual port the facility listens on.
    VirtualPort in_port = 0;
    /// If nonzero, the facility joins this group (anycast/multicast input).
    GroupId in_group = 0;
    /// Where transformed output goes and with which services.
    Destination out;
    ServiceSpec out_spec;
    /// Per-message processing time (e.g. transcoding latency).
    sim::Duration processing = sim::Duration::milliseconds(5);
  };

  FlowTransformer(sim::Simulator& sim, OverlayNode& node, Options opts, TransformFn fn);

  struct Stats {
    std::uint64_t consumed = 0;
    std::uint64_t produced = 0;
    std::uint64_t filtered = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] NodeId node() const { return endpoint_.node(); }

 private:
  void on_input(const Message& m);

  sim::Simulator& sim_;
  Options opts_;
  TransformFn fn_;
  ClientEndpoint& endpoint_;
  Stats stats_;
  // In-flight processing-delay republishes become inert if the transformer
  // is destroyed mid-flow; their EventIds are deliberately not tracked.
  sim::TimerGuard timer_guard_;
};

}  // namespace son::overlay
