// Flow-based duplicate suppression for redundant dissemination (§II,
// "redundant dissemination with corresponding de-duplication in the middle
// of the network"). Bounded memory: oldest entries are evicted FIFO.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_set>

#include "obs/counters.hpp"

namespace son::overlay {

class DedupCache {
 public:
  explicit DedupCache(std::size_t capacity = 1 << 20)
      : capacity_{capacity}, obs_evictions_{obs::counter("overlay.dedup.evictions")} {}

  /// Returns true if `id` was already seen; otherwise records it. One hash
  /// lookup: insert() reports existence through its `second` result, so the
  /// hottest dedup path never probes the table twice.
  bool seen_or_insert(std::uint64_t id) {
    if (!seen_.insert(id).second) return true;
    order_.push_back(id);
    if (order_.size() > capacity_) {
      seen_.erase(order_.front());
      order_.pop_front();
      ++evictions_;
      obs_evictions_.add();
    }
    return false;
  }

  [[nodiscard]] std::size_t size() const { return seen_.size(); }
  /// Entries aged out by the FIFO capacity bound (an evicted id would be
  /// re-admitted as new — a measure of how tight the capacity is).
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

 private:
  std::size_t capacity_;
  std::unordered_set<std::uint64_t> seen_;
  std::deque<std::uint64_t> order_;
  std::uint64_t evictions_ = 0;
  obs::Counter obs_evictions_;
};

}  // namespace son::overlay
