// Flow-based duplicate suppression for redundant dissemination (§II,
// "redundant dissemination with corresponding de-duplication in the middle
// of the network"). Bounded memory: oldest entries are evicted FIFO.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_set>

namespace son::overlay {

class DedupCache {
 public:
  explicit DedupCache(std::size_t capacity = 1 << 20) : capacity_{capacity} {}

  /// Returns true if `id` was already seen; otherwise records it.
  bool seen_or_insert(std::uint64_t id) {
    if (seen_.contains(id)) return true;
    seen_.insert(id);
    order_.push_back(id);
    if (order_.size() > capacity_) {
      seen_.erase(order_.front());
      order_.pop_front();
    }
    return false;
  }

  [[nodiscard]] std::size_t size() const { return seen_.size(); }

 private:
  std::size_t capacity_;
  std::unordered_set<std::uint64_t> seen_;
  std::deque<std::uint64_t> order_;
};

}  // namespace son::overlay
