#include "overlay/message.hpp"

namespace son::overlay {

Payload make_payload(std::vector<std::uint8_t> bytes) {
  return std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
}

Payload make_payload(std::size_t size, std::uint8_t fill) {
  return std::make_shared<const std::vector<std::uint8_t>>(size, fill);
}

namespace {
template <typename T>
void put(std::vector<std::uint8_t>& out, T v) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out.push_back(static_cast<std::uint8_t>(static_cast<std::uint64_t>(v) >> (8 * i)));
  }
}
}  // namespace

std::vector<std::uint8_t> auth_bytes(const Message& m) {
  std::vector<std::uint8_t> out;
  out.reserve(64 + m.payload_size());
  put(out, m.hdr.origin);
  put(out, m.hdr.src_port);
  put(out, static_cast<std::uint8_t>(m.hdr.dest.kind));
  put(out, m.hdr.dest.node);
  put(out, m.hdr.dest.port);
  put(out, m.hdr.dest.group);
  put(out, m.hdr.origin_id);
  put(out, m.hdr.flow_seq);
  put(out, m.hdr.flow_key);
  put(out, static_cast<std::uint8_t>(m.hdr.scheme));
  put(out, static_cast<std::uint8_t>(m.hdr.link_protocol));
  put(out, m.hdr.mask);
  put(out, m.hdr.origin_time.ns());
  put(out, m.hdr.deadline.ns());
  put(out, m.hdr.priority);
  if (m.payload) out.insert(out.end(), m.payload->begin(), m.payload->end());
  return out;
}

std::uint32_t wire_size(const Message& m, bool authenticated) {
  return kMessageHeaderBytes + static_cast<std::uint32_t>(m.payload_size()) +
         (authenticated ? kAuthTagBytes : 0);
}

const char* to_string(RouteScheme s) {
  switch (s) {
    case RouteScheme::kLinkState: return "link-state";
    case RouteScheme::kDisjointPaths: return "disjoint-paths";
    case RouteScheme::kDissemination: return "dissemination-graph";
    case RouteScheme::kFlooding: return "constrained-flooding";
  }
  return "?";
}

const char* to_string(LinkProtocol p) {
  switch (p) {
    case LinkProtocol::kBestEffort: return "best-effort";
    case LinkProtocol::kReliable: return "reliable";
    case LinkProtocol::kRealtimeSimple: return "realtime-simple";
    case LinkProtocol::kRealtimeNM: return "realtime-nm";
    case LinkProtocol::kITPriority: return "it-priority";
    case LinkProtocol::kITReliable: return "it-reliable";
    case LinkProtocol::kFec: return "fec";
  }
  return "?";
}

}  // namespace son::overlay
