#include "overlay/message.hpp"

#include <cassert>

namespace son::overlay {

Payload make_payload(std::vector<std::uint8_t> bytes) {
  return std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
}

Payload make_payload(std::size_t size, std::uint8_t fill) {
  return std::make_shared<const std::vector<std::uint8_t>>(size, fill);
}

namespace {
template <typename T>
void put(std::uint8_t* out, std::size_t& at, T v) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out[at++] = static_cast<std::uint8_t>(static_cast<std::uint64_t>(v) >> (8 * i));
  }
}
}  // namespace

std::size_t auth_head_bytes(const Message& m, std::span<std::uint8_t> out) {
  assert(out.size() >= kAuthHeadBytes);
  std::size_t at = 0;
  std::uint8_t* p = out.data();
  put(p, at, m.hdr.origin);
  put(p, at, m.hdr.src_port);
  put(p, at, static_cast<std::uint8_t>(m.hdr.dest.kind));
  put(p, at, m.hdr.dest.node);
  put(p, at, m.hdr.dest.port);
  put(p, at, m.hdr.dest.group);
  put(p, at, m.hdr.origin_id);
  put(p, at, m.hdr.flow_seq);
  put(p, at, m.hdr.flow_key);
  put(p, at, static_cast<std::uint8_t>(m.hdr.scheme));
  put(p, at, static_cast<std::uint8_t>(m.hdr.link_protocol));
  put(p, at, m.hdr.mask);
  put(p, at, m.hdr.origin_time.ns());
  put(p, at, m.hdr.deadline.ns());
  put(p, at, m.hdr.priority);
  return at;  // == kAuthHeadBytes
}

std::vector<std::uint8_t> auth_bytes(const Message& m) {
  std::vector<std::uint8_t> out(kAuthHeadBytes);
  const std::size_t n = auth_head_bytes(m, std::span{out});
  // son-analyze: allow(hot-path-alloc) "seed-path/ablation reference encoder; the hot fast path streams auth_head_bytes + payload spans and never calls this"
  out.resize(n);
  // son-analyze: allow(hot-path-alloc) "seed-path/ablation reference encoder; the hot fast path streams auth_head_bytes + payload spans and never calls this"
  if (m.payload) out.insert(out.end(), m.payload->begin(), m.payload->end());
  return out;
}

std::uint32_t wire_size(const Message& m, bool authenticated) {
  return kMessageHeaderBytes + static_cast<std::uint32_t>(m.payload_size()) +
         (authenticated ? kAuthTagBytes : 0);
}

const char* to_string(RouteScheme s) {
  switch (s) {
    case RouteScheme::kLinkState: return "link-state";
    case RouteScheme::kDisjointPaths: return "disjoint-paths";
    case RouteScheme::kDissemination: return "dissemination-graph";
    case RouteScheme::kFlooding: return "constrained-flooding";
  }
  return "?";
}

const char* to_string(LinkProtocol p) {
  switch (p) {
    case LinkProtocol::kBestEffort: return "best-effort";
    case LinkProtocol::kReliable: return "reliable";
    case LinkProtocol::kRealtimeSimple: return "realtime-simple";
    case LinkProtocol::kRealtimeNM: return "realtime-nm";
    case LinkProtocol::kITPriority: return "it-priority";
    case LinkProtocol::kITReliable: return "it-reliable";
    case LinkProtocol::kFec: return "fec";
  }
  return "?";
}

}  // namespace son::overlay
