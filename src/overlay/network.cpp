#include "overlay/network.hpp"

#include <algorithm>

#include "overlay/sharded.hpp"
#include "sim/shard.hpp"

namespace son::overlay {

void OverlayNetwork::build_nodes(net::Internet& internet, const std::vector<net::HostId>& hosts,
                                 const NodeConfig& cfg,
                                 const std::function<sim::Simulator&(NodeId)>& sim_of,
                                 const std::function<sim::Rng(NodeId)>& rng_of) {
  const std::size_t n = graph_.num_nodes();
  nodes_.reserve(n);
  for (NodeId id = 0; id < n; ++id) {
    std::vector<OverlayNode::NeighborSpec> neighbors;
    for (const auto& [nbr, edge] : graph_.neighbors(id)) {
      OverlayNode::NeighborSpec spec;
      spec.link = static_cast<LinkBit>(edge);
      spec.peer = static_cast<NodeId>(nbr);
      spec.peer_host = hosts[nbr];
      const std::size_t channels = std::max<std::size_t>(
          1, std::min(internet.attachments(hosts[id]), internet.attachments(hosts[nbr])));
      for (std::size_t c = 0; c < channels; ++c) {
        spec.channels.push_back(OverlayNode::Channel{static_cast<net::AttachIndex>(c),
                                                     static_cast<net::AttachIndex>(c)});
      }
      neighbors.push_back(std::move(spec));
    }
    nodes_.push_back(std::make_unique<OverlayNode>(sim_of(id), internet, hosts[id], id, graph_,
                                                   std::move(neighbors), cfg, rng_of(id)));
  }
}

OverlayNetwork::OverlayNetwork(sim::Simulator& sim, net::Internet& internet,
                               topo::Graph overlay_topology, std::vector<net::HostId> hosts,
                               const NodeConfig& cfg, sim::Rng rng)
    : sim_{sim}, graph_{std::move(overlay_topology)} {
  build_nodes(internet, hosts, cfg, [&sim](NodeId) -> sim::Simulator& { return sim; },
              [&rng](NodeId id) { return rng.fork(0x4000 + id); });
}

OverlayNetwork::OverlayNetwork(sim::ShardedKernel& kernel, net::Internet& internet,
                               topo::Graph overlay_topology, std::vector<net::HostId> hosts,
                               const NodeConfig& cfg, std::uint64_t seed)
    : sim_{kernel.control_sim()}, kernel_{&kernel}, graph_{std::move(overlay_topology)} {
  build_nodes(internet, hosts, cfg,
              [&internet, &hosts](NodeId id) -> sim::Simulator& {
                return internet.host_sim(hosts[id]);
              },
              [&internet, &hosts, seed](NodeId id) {
                return sim::component_stream(seed, internet.host_partition(hosts[id]),
                                             kStreamNode, id);
              });
}

OverlayNetwork::OverlayNetwork(sim::Simulator& sim, net::Internet& internet,
                               const topo::BackboneMap& map,
                               const topo::BuiltUnderlay& underlay, const NodeConfig& cfg,
                               sim::Rng rng)
    : OverlayNetwork{sim, internet, topo::overlay_graph(map), underlay.hosts, cfg, rng} {}

void OverlayNetwork::start() {
  for (auto& n : nodes_) n->start();
}

void OverlayNetwork::settle(sim::Duration how_long) {
  start();
  if (kernel_ != nullptr) {
    kernel_->run_for(how_long);
  } else {
    sim_.run_for(how_long);
  }
}

GraphFixture build_graph_fixture(sim::Simulator& sim, const topo::Graph& g,
                                 const GraphOptions& opts, sim::Rng rng) {
  GraphFixture fx;
  fx.internet = std::make_unique<net::Internet>(sim, rng.fork(0x88));
  auto& inet = *fx.internet;
  const net::IspId isp = inet.add_isp("fixture");
  std::vector<net::RouterId> routers;
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    routers.push_back(inet.add_router(isp, "r" + std::to_string(i)));
    fx.hosts.push_back(inet.add_host("h" + std::to_string(i)));
    net::LinkConfig access;
    access.prop_delay = sim::Duration::microseconds(50);
    access.bandwidth_bps = opts.bandwidth_bps;
    inet.attach_host(fx.hosts.back(), routers.back(), access);
  }
  for (topo::EdgeIndex e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    net::LinkConfig cfg;
    cfg.prop_delay = sim::Duration::from_millis_f(ed.weight);
    cfg.bandwidth_bps = opts.bandwidth_bps;
    fx.fiber.push_back(inet.add_link(routers[ed.u], routers[ed.v], cfg));
  }
  fx.overlay =
      std::make_unique<OverlayNetwork>(sim, inet, g, fx.hosts, opts.node, rng.fork(0x89));
  return fx;
}

topo::Graph circulant_topology(std::size_t n, double ring_latency_ms,
                               double chord_latency_ms) {
  topo::Graph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    g.add_edge(static_cast<topo::NodeIndex>(i), static_cast<topo::NodeIndex>((i + 1) % n),
               ring_latency_ms);
  }
  for (std::size_t i = 0; i < n; ++i) {
    g.add_edge(static_cast<topo::NodeIndex>(i), static_cast<topo::NodeIndex>((i + 2) % n),
               chord_latency_ms);
  }
  return g;
}

ChainFixture build_chain(sim::Simulator& sim, const ChainOptions& opts, sim::Rng rng) {
  ChainFixture fx;
  fx.internet = std::make_unique<net::Internet>(sim, rng.fork(0x77));
  auto& inet = *fx.internet;

  const std::size_t n = opts.n_nodes;
  const net::IspId isp = inet.add_isp("chain");
  std::vector<net::RouterId> routers;
  std::vector<net::HostId> hosts;
  for (std::size_t i = 0; i < n; ++i) {
    routers.push_back(inet.add_router(isp, "r" + std::to_string(i)));
    hosts.push_back(inet.add_host("h" + std::to_string(i)));
    net::LinkConfig access;
    access.prop_delay = sim::Duration::microseconds(10);
    access.bandwidth_bps = opts.bandwidth_bps;
    inet.attach_host(hosts[i], routers[i], access);
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    net::LinkConfig cfg;
    cfg.prop_delay = opts.hop_latency;
    cfg.bandwidth_bps = opts.bandwidth_bps;
    fx.hop_links.push_back(inet.add_link(routers[i], routers[i + 1], cfg));
  }

  topo::Graph g(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    fx.hop_overlay_links.push_back(static_cast<LinkBit>(
        g.add_edge(static_cast<topo::NodeIndex>(i), static_cast<topo::NodeIndex>(i + 1),
                   opts.hop_latency.to_millis_f())));
  }
  if (n > 2) {
    fx.direct_link = static_cast<LinkBit>(
        g.add_edge(0, static_cast<topo::NodeIndex>(n - 1),
                   opts.hop_latency.to_millis_f() * static_cast<double>(n - 1)));
  }

  fx.overlay = std::make_unique<OverlayNetwork>(sim, inet, std::move(g), hosts, opts.node,
                                                rng.fork(0x78));
  return fx;
}

}  // namespace son::overlay
