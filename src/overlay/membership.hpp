// Overlay membership under churn: who is currently part of the overlay, at
// which incarnation, and when we last heard from them.
//
// The paper's overlay is provisioned as a fixed set of "a few tens" of
// nodes, but the nodes themselves come and go: processes crash and recover,
// machines leave and rejoin. Membership is therefore LIVENESS over the
// provisioned set, derived entirely from control-plane evidence (hellos from
// neighbors, LSA/GSA floods from everyone): an origin that goes silent past
// a timeout is declared departed and every per-origin database entry for it
// is evicted; an origin heard at a new incarnation has (re)joined.
//
// Two pieces live here:
//   * LivenessProber — the per-channel hysteresis state machine behind the
//     hello protocol's up/down verdicts (down after N consecutive misses,
//     up after M consecutive successes; M=1 reproduces the original
//     single-reply revival).
//   * MembershipDb — the per-origin incarnation + last-heard table a node
//     sweeps on its state-refresh tick to find departed origins.
//
// Both are pure state machines (no simulator handle): verdicts are a
// function of the evidence sequence alone, which keeps churn runs
// bit-identical across sharded worker counts and makes the hysteresis
// directly unit-testable.
#pragma once

#include <cstdint>
#include <vector>

#include "overlay/types.hpp"
#include "sim/time.hpp"

namespace son::overlay {

/// Hysteresis state machine for one probed channel: a single lost probe
/// never flips the verdict (no LSA flap from one dropped hello), and a
/// configurable success streak is required to declare a dead channel alive
/// again (no flap from one lucky reply through a failing path).
class LivenessProber {
 public:
  struct Config {
    /// Consecutive misses before an up channel is declared down.
    std::uint32_t down_after_misses = 3;
    /// Consecutive successes before a down channel is declared up again.
    /// 1 = a single reply revives (the pre-hysteresis behavior).
    std::uint32_t up_after_successes = 1;
  };

  LivenessProber() = default;
  explicit LivenessProber(Config cfg) : cfg_{cfg} {}

  /// Records a lost probe. Returns true iff the verdict flipped up -> down.
  bool on_miss() {
    successes_ = 0;
    ++misses_;
    if (up_ && misses_ >= cfg_.down_after_misses) {
      up_ = false;
      return true;
    }
    return false;
  }

  /// Records a successful probe. Returns true iff the verdict flipped
  /// down -> up.
  bool on_success() {
    misses_ = 0;
    if (up_) return false;
    ++successes_;
    if (successes_ >= cfg_.up_after_successes) {
      up_ = true;
      successes_ = 0;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool up() const { return up_; }
  [[nodiscard]] std::uint32_t consecutive_misses() const { return misses_; }

  /// Back to the initial optimistic state (fresh channel after a restart).
  void reset() {
    up_ = true;
    misses_ = 0;
    successes_ = 0;
  }

 private:
  Config cfg_{};
  bool up_ = true;
  std::uint32_t misses_ = 0;
  std::uint32_t successes_ = 0;
};

/// Per-origin membership view: highest incarnation heard, when, and whether
/// the origin is currently considered part of the overlay. Fed by every
/// control-plane receipt; swept periodically for silence.
class MembershipDb {
 public:
  struct Entry {
    std::uint32_t incarnation = 0;
    sim::TimePoint last_heard;
    bool alive = false;
    /// Lifetimes observed: 0 until first heard, then 1 + number of
    /// incarnation bumps (a crash-recover cycle counts once).
    std::uint32_t joins = 0;
  };

  explicit MembershipDb(std::size_t num_nodes) : entries_(num_nodes) {}

  /// Records control-plane evidence of `origin` at `incarnation`. Evidence
  /// from an older incarnation is a pre-crash ghost and is ignored. Returns
  /// true iff this (re)admitted the origin — first contact, a new
  /// incarnation, or life after an eviction.
  bool heard_from(NodeId origin, std::uint32_t incarnation, sim::TimePoint now) {
    if (origin >= entries_.size()) return false;
    Entry& e = entries_[origin];
    if (e.joins != 0 && incarnation < e.incarnation) return false;
    const bool joined = e.joins == 0 || !e.alive || incarnation > e.incarnation;
    if (joined) ++e.joins;
    e.incarnation = incarnation;
    e.last_heard = now;
    e.alive = true;
    return joined;
  }

  /// Appends to `out` every alive origin whose last evidence is strictly
  /// older than `cutoff`, marking each departed (ascending NodeId order, so
  /// eviction processing is deterministic).
  void sweep(sim::TimePoint cutoff, std::vector<NodeId>& out) {
    for (NodeId n = 0; n < entries_.size(); ++n) {
      Entry& e = entries_[n];
      if (e.alive && e.last_heard < cutoff) {
        e.alive = false;
        out.push_back(n);
      }
    }
  }

  [[nodiscard]] const Entry& entry(NodeId origin) const { return entries_.at(origin); }
  [[nodiscard]] std::size_t alive_count() const {
    std::size_t n = 0;
    for (const Entry& e : entries_) n += e.alive ? 1 : 0;
    return n;
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::vector<Entry> entries_;
};

}  // namespace son::overlay
