// Sharded deployment fixture: a backbone map run on the ShardedKernel.
//
// One partition per city (topo::partition_by_site), the dual-ISP underlay
// sharded through Internet::enable_sharding, and one overlay node per site
// bound to its partition's simulator. The worker count is a pure wall-clock
// knob: build_sharded_map(map, {.workers = 1}) and {.workers = K} produce
// bit-identical runs (pinned by GoldenRun.ShardedOneWorkerEqualsFour).
#pragma once

#include <cstdint>
#include <memory>

#include "net/internet.hpp"
#include "overlay/network.hpp"
#include "sim/shard.hpp"
#include "topo/backbones.hpp"
#include "topo/partition.hpp"

namespace son::overlay {

/// Component keys for sim::component_stream — the layout-independent RNG
/// derivation shared by every sharded deployment.
inline constexpr std::uint32_t kStreamInternet = 1;
inline constexpr std::uint32_t kStreamNode = 2;
inline constexpr std::uint32_t kStreamFlowEngine = 3;

struct ShardedMapOptions {
  /// Executor threads (clamped to the partition count). Results never depend
  /// on it.
  unsigned workers = 1;
  topo::DualIspOptions underlay;
  net::Internet::Config net;
  NodeConfig node;
};

struct ShardedMapFixture {
  // Destruction runs bottom-up: overlay nodes and the internet go before the
  // kernel that owns every partition simulator they reference.
  std::unique_ptr<sim::ShardedKernel> kernel;
  std::unique_ptr<net::Internet> internet;
  topo::BuiltUnderlay underlay;
  net::Internet::ShardPlan plan;
  std::unique_ptr<OverlayNetwork> overlay;

  /// The partition simulator overlay node `id` runs on — schedule traffic
  /// sources here so sends execute inside the source's own partition.
  [[nodiscard]] sim::Simulator& node_sim(NodeId id) {
    return internet->host_sim(underlay.hosts[id]);
  }
  void settle(sim::Duration how_long = sim::Duration::seconds(3)) { overlay->settle(how_long); }
};

/// Builds the whole stack: kernel (one partition per city), internet over
/// kernel.control_sim(), dual-ISP underlay, site partition plan, worker
/// observability binding, and the sharded overlay. All randomness derives
/// from `seed` via component streams.
[[nodiscard]] ShardedMapFixture build_sharded_map(const topo::BackboneMap& map,
                                                  const ShardedMapOptions& opts,
                                                  std::uint64_t seed);

}  // namespace son::overlay
