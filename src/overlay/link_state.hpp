// Connectivity Graph Maintenance (Fig. 2): the shared global state about
// overlay links that every node maintains.
//
// "The limited number of nodes allows each overlay node to maintain global
// state concerning the condition of all other overlay nodes and the
// connections between them, allowing fast reactions to changes in the
// network, with the ability to route around problems at a sub-second scale."
//
// Each node periodically floods a sequence-numbered advertisement describing
// its adjacent links (up/down, measured latency, measured loss). The
// database combines both endpoints' reports into the current weighted
// connectivity graph used by the routing level.
#pragma once

#include <cstdint>
#include <vector>

#include "overlay/types.hpp"
#include "topo/graph.hpp"

namespace son::overlay {

struct LinkReport {
  LinkBit link = kInvalidLinkBit;
  bool up = true;
  double latency_ms = 0.0;  // measured one-way latency (RTT/2 from hellos)
  double loss_rate = 0.0;   // measured hello loss
};

/// One node's view of its own adjacent links.
struct LinkStateAd {
  NodeId origin = kInvalidNode;
  std::uint64_t seq = 0;
  std::vector<LinkReport> links;
};

class TopologyDb {
 public:
  /// `base` is the designed overlay topology with propagation-latency
  /// weights (milliseconds); link bit b == edge index b of `base`.
  explicit TopologyDb(topo::Graph base);

  /// Integrates an advertisement. Returns true if it was newer than the
  /// stored one for that origin (callers flood it onward exactly then).
  bool apply(const LinkStateAd& ad);

  /// Ablation knob: when false, link_cost ignores measured loss and uses
  /// latency alone (plain shortest-latency routing).
  void set_loss_aware(bool aware) {
    loss_aware_ = aware;
    ++version_;
  }

  [[nodiscard]] std::uint64_t version() const { return version_; }
  [[nodiscard]] std::uint64_t stored_seq(NodeId origin) const;

  /// A link is up iff neither endpoint has reported it down.
  [[nodiscard]] bool link_up(LinkBit b) const;
  /// Expected-latency routing cost of a link in ms: measured latency plus
  /// the expected extra round trips ARQ spends on its loss rate,
  /// lat + rtt * p/(1-p). Down links cost +infinity.
  [[nodiscard]] double link_cost(LinkBit b) const;

  /// The current connectivity graph: base topology with link_cost weights
  /// (down links weighted +infinity, which every routing algorithm treats
  /// as absent). Rebuilt lazily per version.
  [[nodiscard]] const topo::Graph& current_graph() const;
  [[nodiscard]] const topo::Graph& base_graph() const { return base_; }

 private:
  struct PerOrigin {
    std::uint64_t seq = 0;
    std::vector<LinkReport> links;
  };
  [[nodiscard]] const LinkReport* report_from(NodeId origin, LinkBit b) const;

  topo::Graph base_;
  std::vector<PerOrigin> by_origin_;
  bool loss_aware_ = true;
  std::uint64_t version_ = 1;
  mutable topo::Graph current_;
  mutable std::uint64_t current_version_ = 0;
};

}  // namespace son::overlay
