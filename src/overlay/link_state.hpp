// Connectivity Graph Maintenance (Fig. 2): the shared global state about
// overlay links that every node maintains.
//
// "The limited number of nodes allows each overlay node to maintain global
// state concerning the condition of all other overlay nodes and the
// connections between them, allowing fast reactions to changes in the
// network, with the ability to route around problems at a sub-second scale."
//
// Each node periodically floods a sequence-numbered advertisement describing
// its adjacent links (up/down, measured latency, measured loss). The
// database combines both endpoints' reports into the current weighted
// connectivity graph used by the routing level.
//
// Updates are incremental: per-origin reports are indexed by LinkBit (O(1)
// report_from), apply() diffs the new advertisement against the stored one
// and records exactly the edges whose cost inputs changed in a bounded
// change journal, current_graph() recosts only those dirty edges, and
// routing consumers pull the same delta through changed_edges_since() to
// repair their shortest-path trees instead of recomputing them.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "overlay/types.hpp"
#include "topo/graph.hpp"

namespace son::overlay {

struct LinkReport {
  LinkBit link = kInvalidLinkBit;
  bool up = true;
  double latency_ms = 0.0;  // measured one-way latency (RTT/2 from hellos)
  double loss_rate = 0.0;   // measured hello loss
};

/// One node's view of its own adjacent links.
struct LinkStateAd {
  NodeId origin = kInvalidNode;
  std::uint64_t seq = 0;
  std::vector<LinkReport> links;
  /// Origin's incarnation number: bumped when the node restarts after a
  /// crash (its seq counter restarts at 1). Freshness is ordered by
  /// (incarnation, seq) lexicographically, so a rejoining node's first
  /// advertisement beats the high-seq state of its previous life. Last
  /// field so {origin, seq, links} aggregate init keeps meaning life 0.
  std::uint32_t incarnation = 0;
};

class TopologyDb {
 public:
  /// `base` is the designed overlay topology with propagation-latency
  /// weights (milliseconds); link bit b == edge index b of `base`.
  explicit TopologyDb(topo::Graph base);

  /// Integrates an advertisement. Returns true if it was newer than the
  /// stored one for that origin (callers flood it onward exactly then).
  /// Freshness is (incarnation, seq) lexicographic: stale or duplicate
  /// sequence numbers within an incarnation are rejected without a version
  /// bump, and an older incarnation is always stale. An accepted ad bumps
  /// the version even when its content is unchanged (the change journal then
  /// records an empty delta, so incremental consumers do no routing work for
  /// it).
  bool apply(const LinkStateAd& ad);

  /// Membership eviction: drops every link report stored for `origin`
  /// (journaling the affected edges dirty) while keeping its
  /// (incarnation, seq) floor, so stale floods from the departed life cannot
  /// re-install state. Returns true if any report was dropped.
  bool evict_origin(NodeId origin);

  /// Ablation knob: when false, link_cost ignores measured loss and uses
  /// latency alone (plain shortest-latency routing). Journals every edge as
  /// dirty (a mass change: consumers fall back to a full recompute).
  void set_loss_aware(bool aware);

  /// Ablation knob for bench_routing's recorded baseline: when false, the
  /// pre-incremental pipeline is emulated — changed_edges_since() always
  /// reports the journal as unusable (consumers full-recompute) and
  /// current_graph() recosts every edge per version bump.
  void set_incremental(bool incremental) { incremental_ = incremental; }

  [[nodiscard]] std::uint64_t version() const { return version_; }
  [[nodiscard]] std::uint64_t stored_seq(NodeId origin) const;
  [[nodiscard]] std::uint32_t stored_incarnation(NodeId origin) const;

  /// A link is up iff neither endpoint has reported it down.
  [[nodiscard]] bool link_up(LinkBit b) const;
  /// Expected-latency routing cost of a link in ms: measured latency plus
  /// the expected extra round trips ARQ spends on its loss rate,
  /// lat + rtt * p/(1-p). Down links cost +infinity.
  [[nodiscard]] double link_cost(LinkBit b) const;

  /// The current connectivity graph: base topology with link_cost weights
  /// (down links weighted +infinity, which every routing algorithm treats
  /// as absent). Recosted lazily per version — only the dirty edges.
  [[nodiscard]] const topo::Graph& current_graph() const;
  [[nodiscard]] const topo::Graph& base_graph() const { return base_; }

  /// Collects into `out` the edges whose routing cost may have changed
  /// after `since_version` (deduplicated, ascending). Returns false when
  /// `since_version` predates the bounded change journal — the consumer
  /// must then recompute from scratch. An empty `out` with a true return
  /// (e.g. only duplicate-content refresh LSAs arrived) means nothing
  /// changed.
  [[nodiscard]] bool changed_edges_since(std::uint64_t since_version, topo::EdgeSet& out) const;

 private:
  struct PerOrigin {
    std::uint64_t seq = 0;
    std::uint32_t incarnation = 0;
    std::vector<LinkReport> links;
    /// LinkBit -> index into links (-1 absent); sized num_edges once the
    /// origin has reported at least once.
    std::vector<std::int32_t> slot_of;
  };
  [[nodiscard]] const LinkReport* report_from(NodeId origin, LinkBit b) const;
  /// Bumps the version and journals `dirty` as that version's delta.
  void record_change(const topo::EdgeSet& dirty);

  topo::Graph base_;
  std::vector<PerOrigin> by_origin_;
  bool loss_aware_ = true;
  bool incremental_ = true;
  std::uint64_t version_ = 1;

  // Change journal: entry i holds the edges dirtied by version
  // journal_first_ + i. Bounded; consumers older than the window rebuild.
  static constexpr std::size_t kJournalCap = 256;
  std::deque<topo::EdgeSet> journal_;
  std::uint64_t journal_first_ = 2;
  topo::EdgeSet journal_spare_;

  mutable topo::Graph current_;
  mutable std::uint64_t current_version_ = 0;
  mutable topo::EdgeSet dirty_scratch_;
  mutable topo::EdgeSet recost_scratch_;
  std::vector<LinkReport> old_links_scratch_;
};

}  // namespace son::overlay
