// Intrusion-tolerant Priority and Reliable link protocols (§IV-B, [1]).
//
// Both use "fair buffer allocation and round-robin scheduling to ensure that
// a compromised source cannot consume the resources of other sources to
// prevent their messages from being forwarded":
//
//  * Priority messaging "maintains storage per source and treats each active
//    source in a round-robin manner when selecting the next message to
//    forward on a given outgoing link. Sources assign priorities to their
//    messages, and if a node's storage for a particular source fills,
//    additional messages from that source will cause the oldest lowest
//    priority message for that source to be dropped."
//
//  * Reliable messaging "maintains storage per source-destination flow (so a
//    compromised destination cannot block a source) and treats each active
//    flow in a round-robin manner. When a node's storage for a particular
//    flow fills, it stops accepting new messages for that flow, creating
//    backpressure (potentially all the way back to the source)."
//
// In intrusion-tolerant deployments every frame is HMAC-authenticated with
// the pairwise key of the two link endpoints.
#pragma once

#include <deque>
#include <map>
#include <set>

#include "obs/counters.hpp"
#include "overlay/link_protocols.hpp"
#include "sim/hot.hpp"

namespace son::overlay {

/// Shared machinery: keyed bounded queues + round-robin paced egress.
class ItEndpointBase : public LinkProtocolEndpoint {
 public:
  ItEndpointBase(LinkContext& ctx, const LinkProtocolConfig& cfg)
      : LinkProtocolEndpoint(ctx, cfg),
        obs_sign_ops_{obs::counter("crypto.sign_ops")},
        obs_verify_ops_{obs::counter("crypto.verify_ops")} {}
  ~ItEndpointBase() override;

  struct Stats {
    std::uint64_t data_sent = 0;
    std::uint64_t admitted = 0;
    std::uint64_t evicted_low_priority = 0;  // priority mode
    std::uint64_t rejected_full = 0;         // reliable mode (backpressured)
    std::uint64_t auth_failures = 0;
    std::uint64_t retransmissions = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 protected:
  struct Queue {
    std::deque<Message> msgs;
  };

  /// Scheduling key: source node (priority) or flow (reliable).
  [[nodiscard]] virtual std::uint64_t key_of(const Message& m) const = 0;
  /// Admission when the key's queue is full. Returns true if `m` was
  /// admitted (possibly after evicting), false if rejected.
  virtual bool handle_full_queue(Queue& q, Message m) = 0;

  /// Queue `m` for paced round-robin egress to the peer. Returns admission.
  bool enqueue(Message m);
  void arm_pump();
  void pump();  // egress pacer tick
  virtual void transmit(Message m) = 0;
  /// May this key's queue be serviced right now? (IT-Reliable pauses
  /// backpressured flows.)
  [[nodiscard]] virtual bool eligible(std::uint64_t /*key*/) const { return true; }

  /// Per-hop authentication fast path: auth input is streamed as the 64-byte
  /// header encoding (stack buffer) followed by the shared payload buffer —
  /// no serialization vector, no payload copy — through the link's resolved
  /// MacContext (HMAC midstates). With the table's midstate knob off, the
  /// seed path (heap-serialized auth_bytes + from-scratch HMAC) is
  /// reconstructed instead; tags are bit-identical either way.
  SON_HOT void sign_frame(LinkFrame& f);
  SON_HOT [[nodiscard]] bool verify_frame(const LinkFrame& f);
  /// The pairwise signing handle for this link's peer, resolved once.
  [[nodiscard]] const crypto::MacContext& link_mac();
  [[nodiscard]] sim::Duration pump_interval() const;

  std::map<std::uint64_t, Queue> queues_;
  /// Round-robin position: next service starts strictly after this key.
  std::uint64_t rr_last_key_ = ~std::uint64_t{0};
  sim::EventId pump_timer_ = sim::kInvalidEventId;
  Stats stats_;
  crypto::MacContext mac_;  // lazily resolved from the key table, once
  obs::Counter obs_sign_ops_;
  obs::Counter obs_verify_ops_;
};

class ItPriorityEndpoint final : public ItEndpointBase {
 public:
  ItPriorityEndpoint(LinkContext& ctx, const LinkProtocolConfig& cfg)
      : ItEndpointBase(ctx, cfg) {}

  bool send(Message msg) override;
  void on_frame(const LinkFrame& f) override;
  [[nodiscard]] LinkProtocol protocol() const override { return LinkProtocol::kITPriority; }

 private:
  /// Fairness identity is the traffic SOURCE, not just the origin node: an
  /// origin-only key lets one aggressive engine flow monopolize its origin's
  /// round-robin slot and per-source buffer, starving every other flow from
  /// that node. source_tag is 0 for plain sends, so untagged traffic keys to
  /// (origin << 32) and keeps the seed's per-origin behavior.
  std::uint64_t key_of(const Message& m) const override {
    return (std::uint64_t{m.hdr.origin} << 32) | m.hdr.source_tag;
  }
  bool handle_full_queue(Queue& q, Message m) override;
  void transmit(Message m) override;
};

class ItReliableEndpoint final : public ItEndpointBase {
 public:
  ItReliableEndpoint(LinkContext& ctx, const LinkProtocolConfig& cfg)
      : ItEndpointBase(ctx, cfg) {}
  ~ItReliableEndpoint() override;

  bool send(Message msg) override;
  void on_frame(const LinkFrame& f) override;
  [[nodiscard]] LinkProtocol protocol() const override { return LinkProtocol::kITReliable; }

 private:
  std::uint64_t key_of(const Message& m) const override { return m.hdr.flow_key; }
  bool handle_full_queue(Queue& q, Message m) override;
  void transmit(Message m) override;
  [[nodiscard]] bool eligible(std::uint64_t key) const override;

  void arm_retransmit_timer();
  void on_retransmit_timer();

  // Sender-side reliability: in-flight messages awaiting hop ack.
  struct InFlight {
    Message msg;
    sim::TimePoint last_sent;
  };
  std::uint64_t next_seq_ = 1;
  std::map<std::uint64_t, InFlight> in_flight_;
  /// Flows the peer reported full; retried after a backoff.
  std::map<std::uint64_t, sim::TimePoint> paused_flows_;
  sim::EventId retransmit_timer_ = sim::kInvalidEventId;

  // Receiver side.
  std::uint64_t recv_cum_ = 0;
  std::set<std::uint64_t> recv_ooo_;
};

}  // namespace son::overlay
