#include "overlay/routing.hpp"

#include <limits>

namespace son::overlay {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

Router::Router(NodeId self, const TopologyDb& topo_db, const GroupDb& group_db)
    : self_{self}, topo_db_{topo_db}, group_db_{group_db} {}

void Router::refresh_spt() {
  if (spt_version_ == topo_db_.version()) return;
  const topo::Graph& g = topo_db_.current_graph();
  const auto sp = topo::dijkstra(g, self_);
  next_hop_.assign(g.num_nodes(), kInvalidLinkBit);
  dist_ = sp.dist;
  for (topo::NodeIndex dst = 0; dst < g.num_nodes(); ++dst) {
    if (dst == self_ || sp.dist[dst] == kInf) continue;
    // Walk back from dst to the node whose parent is self; its parent_edge
    // is the first hop.
    topo::NodeIndex v = dst;
    while (sp.parent[v] != self_) v = sp.parent[v];
    next_hop_[dst] = static_cast<LinkBit>(sp.parent_edge[v]);
  }
  spt_version_ = topo_db_.version();
}

LinkBit Router::next_hop(NodeId dst) {
  refresh_spt();
  return dst < next_hop_.size() ? next_hop_[dst] : kInvalidLinkBit;
}

double Router::path_cost_to(NodeId dst) {
  refresh_spt();
  return dst < dist_.size() ? dist_[dst] : kInf;
}

std::vector<LinkBit> Router::multicast_links(NodeId tree_src, GroupId group,
                                             LinkBit arrived_on) {
  const auto key = std::make_pair(tree_src, group);
  auto it = tree_cache_.find(key);
  if (it == tree_cache_.end() || it->second.topo_version != topo_db_.version() ||
      it->second.group_version != group_db_.version()) {
    const auto members = group_db_.members_of(group);
    std::vector<topo::NodeIndex> terminals(members.begin(), members.end());
    TreeEntry entry{topo_db_.version(), group_db_.version(),
                    topo::multicast_tree(topo_db_.current_graph(), tree_src, terminals)};
    it = tree_cache_.insert_or_assign(key, std::move(entry)).first;
  }

  std::vector<LinkBit> out;
  const topo::Graph& g = topo_db_.current_graph();
  for (const topo::EdgeIndex e : it->second.edges) {
    const auto& ed = g.edge(e);
    if (ed.u != self_ && ed.v != self_) continue;
    const auto b = static_cast<LinkBit>(e);
    if (b == arrived_on) continue;
    out.push_back(b);
  }
  return out;
}

NodeId Router::anycast_target(GroupId group) {
  refresh_spt();
  NodeId best = kInvalidNode;
  double best_dist = kInf;
  for (const NodeId m : group_db_.members_of(group)) {
    const double d = (m == self_) ? 0.0 : (m < dist_.size() ? dist_[m] : kInf);
    if (d < best_dist) {
      best_dist = d;
      best = m;
    }
  }
  return best;
}

LinkMask Router::source_mask(const ServiceSpec& spec, NodeId dst) {
  std::uint8_t a = 0;
  std::uint8_t b = 0;
  switch (spec.scheme) {
    case RouteScheme::kDisjointPaths:
      a = spec.num_paths;
      break;
    case RouteScheme::kDissemination:
      a = spec.dissem_dst_fanin;
      b = spec.dissem_src_fanout;
      break;
    default:
      break;
  }
  const MaskKey key{spec.scheme, a, b, dst};
  auto it = mask_cache_.find(key);
  if (it != mask_cache_.end() && it->second.topo_version == topo_db_.version()) {
    return it->second.mask;
  }

  const topo::Graph& g = topo_db_.current_graph();
  topo::EdgeSet edges;
  switch (spec.scheme) {
    case RouteScheme::kDisjointPaths:
      edges = topo::k_disjoint_edges(g, self_, dst, spec.num_paths);
      break;
    case RouteScheme::kDissemination: {
      topo::DissemOptions opts;
      opts.dst_fanin = spec.dissem_dst_fanin;
      opts.src_fanout = spec.dissem_src_fanout;
      edges = topo::dissemination_graph(g, self_, dst, opts);
      break;
    }
    case RouteScheme::kFlooding:
      // Constrained flooding uses the full designed topology, including
      // links currently believed down (beliefs can be wrong or stale; the
      // whole point is maximal redundancy).
      edges = topo::all_edges(topo_db_.base_graph());
      break;
    case RouteScheme::kLinkState:
      break;  // no mask
  }

  LinkMask mask = 0;
  for (const topo::EdgeIndex e : edges) mask |= bit_of(static_cast<LinkBit>(e));
  mask_cache_.insert_or_assign(key, MaskEntry{topo_db_.version(), mask});
  return mask;
}

std::vector<LinkBit> Router::adjacent_mask_links(LinkMask mask, LinkBit arrived_on) const {
  std::vector<LinkBit> out;
  const topo::Graph& g = topo_db_.base_graph();
  for (const auto& [nbr, e] : g.neighbors(self_)) {
    const auto b = static_cast<LinkBit>(e);
    if (b != arrived_on && has_bit(mask, b)) out.push_back(b);
  }
  return out;
}

}  // namespace son::overlay
