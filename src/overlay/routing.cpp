#include "overlay/routing.hpp"

#include <limits>

namespace son::overlay {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

Router::Router(NodeId self, const TopologyDb& topo_db, const GroupDb& group_db)
    : self_{self}, topo_db_{topo_db}, group_db_{group_db} {}

void Router::refresh_spt() {
  const std::uint64_t version = topo_db_.version();
  if (spt_version_ == version && spt_.built()) return;
  const bool have_delta =
      !force_full_spt_ && spt_.built() && topo_db_.changed_edges_since(spt_version_, delta_scratch_);
  const topo::Graph& g = topo_db_.current_graph();
  if (next_hop_.size() != g.num_nodes()) {
    next_hop_.assign(g.num_nodes(), kInvalidLinkBit);
    hop_version_.assign(g.num_nodes(), 0);
    chain_scratch_.reserve(g.num_nodes());
  }
  // Incremental repair pays off while the delta is sparse; a mass change
  // (journal aged out, loss-aware toggle, first build) recomputes. An empty
  // delta (duplicate-content re-floods) costs nothing at all.
  if (have_delta && 2 * delta_scratch_.size() < g.num_edges()) {
    if (!delta_scratch_.empty()) spt_.update(g, delta_scratch_);
  } else if (force_full_spt_) {
    // The pre-incremental engine, verbatim: the allocating topo::dijkstra
    // call plus an eager whole-table next-hop rebuild per version bump.
    spt_.adopt(g, self_, topo::dijkstra(g, self_));
    rebuild_next_hop_table(g, version);
  } else {
    spt_.full_compute(g, self_);
  }
  spt_version_ = version;
}

/// The pre-incremental engine's eager pass, kept verbatim as bench_routing's
/// recorded baseline: walk back from every destination on every refresh,
/// with no memoization across destinations.
void Router::rebuild_next_hop_table(const topo::Graph& g, std::uint64_t version) {
  const auto& dist = spt_.dist();
  const auto& parent = spt_.parent();
  const auto& parent_edge = spt_.parent_edge();
  for (topo::NodeIndex dst = 0; dst < g.num_nodes(); ++dst) {
    LinkBit hop = kInvalidLinkBit;
    if (dst != self_ && dist[dst] != kInf) {
      topo::NodeIndex v = dst;
      while (parent[v] != self_) v = parent[v];
      hop = static_cast<LinkBit>(parent_edge[v]);
    }
    next_hop_[dst] = hop;
    hop_version_[dst] = version;
  }
}

LinkBit Router::resolve_next_hop(topo::NodeIndex dst) {
  const auto& parent = spt_.parent();
  const auto& parent_edge = spt_.parent_edge();
  LinkBit hop = kInvalidLinkBit;
  chain_scratch_.clear();
  for (topo::NodeIndex v = dst;;) {
    if (hop_version_[v] == spt_version_) {
      hop = next_hop_[v];
      break;
    }
    if (v == self_) break;  // self has no first hop
    chain_scratch_.push_back(v);
    const topo::NodeIndex p = parent[v];
    if (p == topo::kNoNode) break;  // unreachable
    if (p == self_) {
      hop = static_cast<LinkBit>(parent_edge[v]);
      break;
    }
    v = p;
  }
  // Every node on the walked chain shares the answer.
  for (const topo::NodeIndex v : chain_scratch_) {
    next_hop_[v] = hop;
    hop_version_[v] = spt_version_;
  }
  return hop;
}

LinkBit Router::next_hop(NodeId dst) {
  refresh_spt();
  return dst < next_hop_.size() ? resolve_next_hop(dst) : kInvalidLinkBit;
}

double Router::path_cost_to(NodeId dst) {
  refresh_spt();
  const auto& dist = spt_.dist();
  return dst < dist.size() ? dist[dst] : kInf;
}

void Router::evict_stale_caches() {
  const std::uint64_t tv = topo_db_.version();
  const std::uint64_t gv = group_db_.version();
  if (tv == cache_swept_topo_ && gv == cache_swept_group_) return;
  std::erase_if(tree_cache_, [&](const auto& kv) {
    return kv.second.topo_version != tv || kv.second.group_version != gv;
  });
  std::erase_if(mask_cache_, [&](const auto& kv) { return kv.second.topo_version != tv; });
  cache_swept_topo_ = tv;
  cache_swept_group_ = gv;
}

std::size_t Router::evict_origin(NodeId origin) {
  std::size_t n = std::erase_if(tree_cache_,
                                [&](const auto& kv) { return kv.first.first == origin; });
  n += std::erase_if(mask_cache_, [&](const auto& kv) { return kv.first.dst == origin; });
  return n;
}

const std::vector<LinkBit>& Router::multicast_links(NodeId tree_src, GroupId group,
                                                    LinkBit arrived_on) {
  evict_stale_caches();  // surviving entries are stamped with the live versions
  const auto key = std::make_pair(tree_src, group);
  auto it = tree_cache_.find(key);
  if (it == tree_cache_.end()) {
    // members_of() is ascending, so the terminal order — and with it the
    // tree — is a pure function of the membership set, not of ad arrival.
    const auto members = group_db_.members_of(group);
    std::vector<topo::NodeIndex> terminals(members.begin(), members.end());
    TreeEntry entry{topo_db_.version(), group_db_.version(),
                    topo::multicast_tree(topo_db_.current_graph(), tree_src, terminals)};
    it = tree_cache_.insert_or_assign(key, std::move(entry)).first;
  }

  mcast_links_buf_.clear();
  const topo::Graph& g = topo_db_.current_graph();
  for (const topo::EdgeIndex e : it->second.edges) {  // ascending edge order
    const auto& ed = g.edge(e);
    if (ed.u != self_ && ed.v != self_) continue;
    const auto b = static_cast<LinkBit>(e);
    if (b == arrived_on) continue;
    mcast_links_buf_.push_back(b);
  }
  return mcast_links_buf_;
}

NodeId Router::anycast_target(GroupId group) {
  refresh_spt();
  const auto& dist = spt_.dist();
  NodeId best = kInvalidNode;
  double best_dist = kInf;
  // Ascending member scan + strict < pins ties to the lowest node id.
  for (const NodeId m : group_db_.members_of(group)) {
    const double d = (m == self_) ? 0.0 : (m < dist.size() ? dist[m] : kInf);
    if (d < best_dist) {
      best_dist = d;
      best = m;
    }
  }
  return best;
}

LinkMask Router::source_mask(const ServiceSpec& spec, NodeId dst) {
  evict_stale_caches();
  std::uint8_t a = 0;
  std::uint8_t b = 0;
  switch (spec.scheme) {
    case RouteScheme::kDisjointPaths:
      a = spec.num_paths;
      break;
    case RouteScheme::kDissemination:
      a = spec.dissem_dst_fanin;
      b = spec.dissem_src_fanout;
      break;
    default:
      break;
  }
  const MaskKey key{spec.scheme, a, b, dst};
  auto it = mask_cache_.find(key);
  if (it != mask_cache_.end()) return it->second.mask;

  const topo::Graph& g = topo_db_.current_graph();
  topo::EdgeSet edges;
  switch (spec.scheme) {
    case RouteScheme::kDisjointPaths:
      edges = topo::k_disjoint_edges(g, self_, dst, spec.num_paths);
      break;
    case RouteScheme::kDissemination: {
      topo::DissemOptions opts;
      opts.dst_fanin = spec.dissem_dst_fanin;
      opts.src_fanout = spec.dissem_src_fanout;
      edges = topo::dissemination_graph(g, self_, dst, opts);
      break;
    }
    case RouteScheme::kFlooding:
      // Constrained flooding uses the full designed topology, including
      // links currently believed down (beliefs can be wrong or stale; the
      // whole point is maximal redundancy).
      edges = topo::all_edges(topo_db_.base_graph());
      break;
    case RouteScheme::kLinkState:
      break;  // no mask
  }

  LinkMask mask = 0;
  for (const topo::EdgeIndex e : edges) mask |= bit_of(static_cast<LinkBit>(e));
  mask_cache_.insert_or_assign(key, MaskEntry{topo_db_.version(), mask});
  return mask;
}

const std::vector<LinkBit>& Router::adjacent_mask_links(LinkMask mask, LinkBit arrived_on) {
  mask_links_buf_.clear();
  const topo::Graph& g = topo_db_.base_graph();
  for (const auto& [nbr, e] : g.neighbors(self_)) {
    const auto b = static_cast<LinkBit>(e);
    if (b != arrived_on && has_bit(mask, b)) mask_links_buf_.push_back(b);
  }
  return mask_links_buf_;
}

}  // namespace son::overlay
