// Real-time recovery link protocols.
//
// RealtimeNM implements the NM-Strikes protocol (§IV-A, Fig. 4, patent [5]):
// on detecting a missing packet, the receiver schedules N retransmission
// requests spaced in time to bypass the window of correlated loss; the
// sender, on the FIRST request for a packet, schedules M retransmissions,
// also spaced. Timers are set so that even the M-th response to the N-th
// request can arrive within the deadline. Expected overhead is 1 + M·p.
//
// RealtimeSimple is the predecessor protocol used for VoIP ([6], [7]):
// exactly one request and one retransmission per missing packet.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "overlay/link_protocols.hpp"

namespace son::overlay {

class RealtimeEndpointBase : public LinkProtocolEndpoint {
 public:
  RealtimeEndpointBase(LinkContext& ctx, const LinkProtocolConfig& cfg, bool nm_mode)
      : LinkProtocolEndpoint(ctx, cfg), nm_mode_{nm_mode} {}
  ~RealtimeEndpointBase() override;

  bool send(Message msg) override;
  void on_frame(const LinkFrame& f) override;

  struct Stats {
    std::uint64_t data_sent = 0;
    std::uint64_t requests_sent = 0;
    std::uint64_t retransmissions_sent = 0;
    std::uint64_t recovered = 0;            // missing seqs eventually received
    std::uint64_t expired_unrecovered = 0;  // request schedule exhausted
    std::uint64_t duplicates = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  // --- Sender role ---
  struct Sent {
    Message msg;
    sim::TimePoint sent_at;
  };
  void prune_history();
  void handle_request(const LinkFrame& f);

  std::uint64_t next_seq_ = 1;
  std::map<std::uint64_t, Sent> history_;
  /// Seqs for which an M-burst is already scheduled ("upon receipt of the
  /// first request": later requests for the same packet are ignored).
  std::set<std::uint64_t> burst_scheduled_;
  std::vector<sim::EventId> burst_timers_;

  // --- Receiver role ---
  struct PendingRecovery {
    std::vector<sim::EventId> request_timers;
    std::uint8_t requests_left = 0;
  };
  void handle_data(const LinkFrame& f);
  void note_gap(std::uint64_t missing, const MessageHeader& trigger_hdr);
  void send_request(std::uint64_t missing, sim::Duration responder_budget);
  [[nodiscard]] sim::Duration recovery_budget(const MessageHeader& trigger_hdr) const;

  std::uint64_t recv_max_ = 0;
  std::uint64_t seen_floor_ = 0;  // all seqs <= floor are known-seen or expired
  std::set<std::uint64_t> seen_;
  std::map<std::uint64_t, PendingRecovery> pending_;

  bool nm_mode_;
  Stats stats_;
};

class RealtimeSimpleEndpoint final : public RealtimeEndpointBase {
 public:
  RealtimeSimpleEndpoint(LinkContext& ctx, const LinkProtocolConfig& cfg)
      : RealtimeEndpointBase(ctx, cfg, /*nm_mode=*/false) {}
  [[nodiscard]] LinkProtocol protocol() const override {
    return LinkProtocol::kRealtimeSimple;
  }
};

class RealtimeNMEndpoint final : public RealtimeEndpointBase {
 public:
  RealtimeNMEndpoint(LinkContext& ctx, const LinkProtocolConfig& cfg)
      : RealtimeEndpointBase(ctx, cfg, /*nm_mode=*/true) {}
  [[nodiscard]] LinkProtocol protocol() const override { return LinkProtocol::kRealtimeNM; }
};

}  // namespace son::overlay
