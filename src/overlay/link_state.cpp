#include "overlay/link_state.hpp"

#include <limits>

namespace son::overlay {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

TopologyDb::TopologyDb(topo::Graph base)
    : base_{std::move(base)}, by_origin_(base_.num_nodes()), current_{base_} {}

bool TopologyDb::apply(const LinkStateAd& ad) {
  if (ad.origin >= by_origin_.size()) return false;
  PerOrigin& po = by_origin_[ad.origin];
  if (ad.seq <= po.seq) return false;
  po.seq = ad.seq;
  po.links = ad.links;
  ++version_;
  return true;
}

std::uint64_t TopologyDb::stored_seq(NodeId origin) const {
  return origin < by_origin_.size() ? by_origin_[origin].seq : 0;
}

const LinkReport* TopologyDb::report_from(NodeId origin, LinkBit b) const {
  if (origin >= by_origin_.size()) return nullptr;
  for (const LinkReport& r : by_origin_[origin].links) {
    if (r.link == b) return &r;
  }
  return nullptr;
}

bool TopologyDb::link_up(LinkBit b) const {
  const auto& e = base_.edge(b);
  const LinkReport* ru = report_from(static_cast<NodeId>(e.u), b);
  const LinkReport* rv = report_from(static_cast<NodeId>(e.v), b);
  if (ru != nullptr && !ru->up) return false;
  if (rv != nullptr && !rv->up) return false;
  return true;  // unreported links are assumed up (bootstrap)
}

double TopologyDb::link_cost(LinkBit b) const {
  if (!link_up(b)) return kInf;
  const auto& e = base_.edge(b);
  const LinkReport* ru = report_from(static_cast<NodeId>(e.u), b);
  const LinkReport* rv = report_from(static_cast<NodeId>(e.v), b);
  double cost = 0.0;
  bool reported = false;
  for (const LinkReport* r : {ru, rv}) {
    if (r == nullptr) continue;
    reported = true;
    const double p = loss_aware_ ? std::min(r->loss_rate, 0.99) : 0.0;
    const double c = r->latency_ms + 2.0 * r->latency_ms * p / (1.0 - p);
    cost = std::max(cost, c);
  }
  return reported ? cost : e.weight;  // fall back to designed latency
}

const topo::Graph& TopologyDb::current_graph() const {
  if (current_version_ != version_) {
    for (topo::EdgeIndex e = 0; e < base_.num_edges(); ++e) {
      current_.set_weight(e, link_cost(static_cast<LinkBit>(e)));
    }
    current_version_ = version_;
  }
  return current_;
}

}  // namespace son::overlay
