#include "overlay/link_state.hpp"

#include <algorithm>
#include <limits>

namespace son::overlay {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

bool same_report(const LinkReport* a, const LinkReport* b) {
  if ((a == nullptr) != (b == nullptr)) return false;
  if (a == nullptr) return true;
  return a->up == b->up && a->latency_ms == b->latency_ms && a->loss_rate == b->loss_rate;
}
}  // namespace

TopologyDb::TopologyDb(topo::Graph base)
    : base_{std::move(base)}, by_origin_(base_.num_nodes()), current_{base_} {}

void TopologyDb::record_change(const topo::EdgeSet& dirty) {
  ++version_;
  // Recycle the evicted entry's capacity: in the steady state (journal at
  // cap) an accepted ad allocates nothing here.
  if (journal_.size() == kJournalCap) {
    journal_spare_ = std::move(journal_.front());
    journal_.pop_front();
    ++journal_first_;
  }
  journal_spare_.assign(dirty.begin(), dirty.end());
  journal_.push_back(std::move(journal_spare_));
}

bool TopologyDb::apply(const LinkStateAd& ad) {
  if (ad.origin >= by_origin_.size()) return false;
  PerOrigin& po = by_origin_[ad.origin];
  if (ad.incarnation < po.incarnation) return false;  // a previous life's flood
  if (ad.incarnation == po.incarnation && ad.seq <= po.seq) return false;
  po.incarnation = ad.incarnation;
  po.seq = ad.seq;
  const std::size_t num_edges = base_.num_edges();
  dirty_scratch_.clear();

  // Fast path: the ad re-reports exactly the stored link set in the stored
  // order — every periodic re-flood from a stable origin. Diff the values in
  // place; the LinkBit index is already correct.
  bool same_layout = po.links.size() == ad.links.size() && !po.links.empty();
  for (std::size_t i = 0; same_layout && i < po.links.size(); ++i) {
    same_layout = po.links[i].link == ad.links[i].link;
  }
  if (same_layout) {
    for (std::size_t i = 0; i < po.links.size(); ++i) {
      LinkReport& stored = po.links[i];
      const LinkReport& fresh = ad.links[i];
      if (!same_report(&stored, &fresh)) {
        stored = fresh;
        // Only the first occurrence of a bit is live in the index; a dead
        // duplicate slot must not dirty the edge.
        if (fresh.link < num_edges &&
            po.slot_of[fresh.link] == static_cast<std::int32_t>(i)) {
          dirty_scratch_.push_back(fresh.link);
        }
      }
    }
    std::sort(dirty_scratch_.begin(), dirty_scratch_.end());
    record_change(dirty_scratch_);
    return true;
  }

  // General path: swap the old report set out, install the new one, and
  // rebuild the per-LinkBit index (first occurrence wins, as the linear scan
  // used to).
  old_links_scratch_.swap(po.links);
  po.links = ad.links;
  po.slot_of.assign(num_edges, -1);
  for (std::size_t i = 0; i < po.links.size(); ++i) {
    const LinkBit b = po.links[i].link;
    if (b < num_edges && po.slot_of[b] < 0) po.slot_of[b] = static_cast<std::int32_t>(i);
  }

  // Diff old vs new per reported link: an edge is dirty iff this origin's
  // report for it changed (the cost also depends on the peer's report, but
  // that one did not move).
  const auto old_report = [&](LinkBit b) -> const LinkReport* {
    for (const LinkReport& r : old_links_scratch_) {
      if (r.link == b) return &r;
    }
    return nullptr;
  };
  for (const LinkReport& r : po.links) {
    if (r.link >= num_edges) continue;
    if (!same_report(old_report(r.link), report_from(ad.origin, r.link))) {
      dirty_scratch_.push_back(r.link);
    }
  }
  for (const LinkReport& r : old_links_scratch_) {
    if (r.link >= num_edges) continue;
    if (report_from(ad.origin, r.link) == nullptr) dirty_scratch_.push_back(r.link);
  }
  std::sort(dirty_scratch_.begin(), dirty_scratch_.end());
  dirty_scratch_.erase(std::unique(dirty_scratch_.begin(), dirty_scratch_.end()),
                       dirty_scratch_.end());
  record_change(dirty_scratch_);
  return true;
}

bool TopologyDb::evict_origin(NodeId origin) {
  if (origin >= by_origin_.size()) return false;
  PerOrigin& po = by_origin_[origin];
  if (po.links.empty()) return false;
  dirty_scratch_.clear();
  const std::size_t num_edges = base_.num_edges();
  for (const LinkReport& r : po.links) {
    if (r.link < num_edges) dirty_scratch_.push_back(r.link);
  }
  std::sort(dirty_scratch_.begin(), dirty_scratch_.end());
  dirty_scratch_.erase(std::unique(dirty_scratch_.begin(), dirty_scratch_.end()),
                       dirty_scratch_.end());
  po.links.clear();
  po.slot_of.assign(num_edges, -1);
  // po.seq / po.incarnation stay: they are the floor against stale floods.
  record_change(dirty_scratch_);
  return true;
}

void TopologyDb::set_loss_aware(bool aware) {
  loss_aware_ = aware;
  dirty_scratch_.resize(base_.num_edges());
  for (topo::EdgeIndex e = 0; e < base_.num_edges(); ++e) dirty_scratch_[e] = e;
  record_change(dirty_scratch_);
}

std::uint64_t TopologyDb::stored_seq(NodeId origin) const {
  return origin < by_origin_.size() ? by_origin_[origin].seq : 0;
}

std::uint32_t TopologyDb::stored_incarnation(NodeId origin) const {
  return origin < by_origin_.size() ? by_origin_[origin].incarnation : 0;
}

const LinkReport* TopologyDb::report_from(NodeId origin, LinkBit b) const {
  if (origin >= by_origin_.size()) return nullptr;
  const PerOrigin& po = by_origin_[origin];
  if (b >= po.slot_of.size()) return nullptr;
  const std::int32_t s = po.slot_of[b];
  return s < 0 ? nullptr : &po.links[static_cast<std::size_t>(s)];
}

bool TopologyDb::link_up(LinkBit b) const {
  const auto& e = base_.edge(b);
  const LinkReport* ru = report_from(static_cast<NodeId>(e.u), b);
  const LinkReport* rv = report_from(static_cast<NodeId>(e.v), b);
  if (ru != nullptr && !ru->up) return false;
  if (rv != nullptr && !rv->up) return false;
  return true;  // unreported links are assumed up (bootstrap)
}

double TopologyDb::link_cost(LinkBit b) const {
  if (!link_up(b)) return kInf;
  const auto& e = base_.edge(b);
  const LinkReport* ru = report_from(static_cast<NodeId>(e.u), b);
  const LinkReport* rv = report_from(static_cast<NodeId>(e.v), b);
  double cost = 0.0;
  bool reported = false;
  for (const LinkReport* r : {ru, rv}) {
    if (r == nullptr) continue;
    reported = true;
    const double p = loss_aware_ ? std::min(r->loss_rate, 0.99) : 0.0;
    const double c = r->latency_ms + 2.0 * r->latency_ms * p / (1.0 - p);
    cost = std::max(cost, c);
  }
  return reported ? cost : e.weight;  // fall back to designed latency
}

bool TopologyDb::changed_edges_since(std::uint64_t since_version, topo::EdgeSet& out) const {
  out.clear();
  if (!incremental_) return false;  // ablation: consumers must full-recompute
  if (since_version >= version_) return true;  // nothing newer
  if (since_version + 1 < journal_first_) return false;  // aged out of the journal
  for (std::uint64_t v = since_version + 1; v <= version_; ++v) {
    const topo::EdgeSet& entry = journal_[static_cast<std::size_t>(v - journal_first_)];
    out.insert(out.end(), entry.begin(), entry.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return true;
}

const topo::Graph& TopologyDb::current_graph() const {
  if (current_version_ != version_) {
    if (changed_edges_since(current_version_, recost_scratch_)) {
      for (const topo::EdgeIndex e : recost_scratch_) {
        current_.set_weight(e, link_cost(static_cast<LinkBit>(e)));
      }
    } else {
      for (topo::EdgeIndex e = 0; e < base_.num_edges(); ++e) {
        current_.set_weight(e, link_cost(static_cast<LinkBit>(e)));
      }
    }
    current_version_ = version_;
  }
  return current_;
}

}  // namespace son::overlay
