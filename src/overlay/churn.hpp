// Scripted overlay churn: node join/leave/crash-recover events driven into
// an OverlayNetwork on a deterministic schedule.
//
// The paper's deployment model provisions a fixed set of overlay sites, but
// the daemons on them come and go: processes crash and recover, machines are
// taken down for maintenance and rejoin. ChurnScript is the experiment-side
// driver for that: scenario scripts ("crash node 3 at t=10s, recover it at
// t=40s") and a random-churn generator for rate sweeps.
//
// Determinism contract: the full event list is materialized at SCRIPT time
// from a dedicated sim::Rng, before the simulation runs, so the schedule is
// a pure function of (config, seed) — independent of simulation interleaving
// and of the sharded worker count. On a sharded deployment every event goes
// through ShardedKernel::schedule_global (the control-sim path), which runs
// it at a round barrier with all partitions quiesced at exactly the event
// time; workers=1 and workers=K therefore see bit-identical churn.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string_view>

#include "overlay/network.hpp"
#include "overlay/types.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace son::overlay {

/// Inter-event spacing model for random_churn.
enum class ChurnModel {
  kPoisson,   ///< exponential gaps (memoryless arrivals; the usual model)
  kPeriodic,  ///< fixed 1/rate spacing (worst-case sustained churn)
};

/// Parses the --churn model token; nullopt for anything unknown.
[[nodiscard]] std::optional<ChurnModel> churn_model_from_string(std::string_view s);
[[nodiscard]] const char* to_string(ChurnModel m);

class ChurnScript {
 public:
  explicit ChurnScript(OverlayNetwork& net) : net_{net} {}

  /// Crash-stop at `at`: the node falls silent (neighbors detect and route
  /// around it) but keeps its volatile state, so a later set_crashed(false)
  /// would resume the same life. Pair with recover() for the cold-restart
  /// cycle churn experiments care about.
  void crash(sim::TimePoint at, NodeId node);

  /// Cold recovery at `at`: OverlayNode::restart() — fresh incarnation,
  /// reset counters, immediate re-advertisement. Valid on a crashed node
  /// (crash-recover) or a live one (in-place process restart).
  void recover(sim::TimePoint at, NodeId node);

  /// Graceful departure. The overlay has no goodbye message — a leaving
  /// node simply falls silent and the membership timeout reclaims its state
  /// — so leave is crash-stop by another name; the distinct verb keeps
  /// scenario scripts honest about intent.
  void leave(sim::TimePoint at, NodeId node) { crash(at, node); }

  /// A provisioned node coming online: identical to recover() (the overlay
  /// set is fixed; "join" is a departed member returning at a fresh
  /// incarnation).
  void join(sim::TimePoint at, NodeId node) { recover(at, node); }

  /// The canonical cycle: crash at `at`, recover `down_for` later.
  void crash_recover(sim::TimePoint at, NodeId node, sim::Duration down_for);

  struct RandomChurnConfig {
    sim::TimePoint from;
    sim::TimePoint until;
    /// Crash-recover cycles per second across the whole overlay.
    double events_per_sec = 0.0;
    /// Outage length of each cycle.
    sim::Duration down_for = sim::Duration::seconds(1);
    ChurnModel model = ChurnModel::kPoisson;
    std::uint64_t seed = 1;
    /// Never churn this node (benchmarks keep their observer alive).
    NodeId spare = kInvalidNode;
  };

  /// Schedules crash-recover cycles over [from, until) at the given rate.
  /// Victims are drawn uniformly from nodes not currently down and not
  /// `spare`; an arrival finding no eligible victim is skipped. Returns the
  /// number of cycles actually scheduled.
  std::size_t random_churn(const RandomChurnConfig& cfg);

 private:
  /// Routes through the sharded kernel's control sim when there is one
  /// (round-barrier execution → worker-count invariance), else the plain
  /// simulator. Call only before the run / between runs, never from inside
  /// a partition event.
  void schedule(sim::TimePoint t, std::function<void()> fn);

  OverlayNetwork& net_;
};

}  // namespace son::overlay
