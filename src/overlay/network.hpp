// Deployment builders: instantiate a whole structured overlay network over a
// simulated underlay and wire every node's neighbor links and ISP channels.
#pragma once

#include <memory>
#include <vector>

#include "net/internet.hpp"
#include "overlay/node.hpp"
#include "topo/backbones.hpp"

namespace son::sim {
class ShardedKernel;
}  // namespace son::sim

namespace son::overlay {

class OverlayNetwork {
 public:
  /// Deploys one overlay node per node of `overlay_topology`, node i running
  /// on hosts[i]. Each overlay link gets one underlay channel per ISP
  /// attachment the two hosts share: channel c uses attachment c on both
  /// sides (the builders attach hosts to ISPs in the same order), so with
  /// dual-homed hosts channel 0 is on-net ISP A and channel 1 on-net ISP B —
  /// the resilient network architecture of Fig. 1.
  OverlayNetwork(sim::Simulator& sim, net::Internet& internet, topo::Graph overlay_topology,
                 std::vector<net::HostId> hosts, const NodeConfig& cfg, sim::Rng rng);

  /// Convenience: deploy over a dual-ISP underlay built from a backbone map.
  OverlayNetwork(sim::Simulator& sim, net::Internet& internet, const topo::BackboneMap& map,
                 const topo::BuiltUnderlay& underlay, const NodeConfig& cfg, sim::Rng rng);

  /// Sharded deployment over an internet with enable_sharding() applied:
  /// node i lives on hosts[i]'s partition simulator, and its RNG comes from
  /// sim::component_stream keyed by (partition, node) — NOT from a sequential
  /// fork chain — so node randomness is a pure function of the partition
  /// structure, independent of construction order and worker count.
  OverlayNetwork(sim::ShardedKernel& kernel, net::Internet& internet,
                 topo::Graph overlay_topology, std::vector<net::HostId> hosts,
                 const NodeConfig& cfg, std::uint64_t seed);

  /// Starts every node (hellos, state flooding).
  void start();
  /// Starts (if needed) and runs the simulator long enough for hellos, LSAs
  /// and group state to stabilize.
  void settle(sim::Duration how_long = sim::Duration::seconds(3));

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  OverlayNode& node(NodeId id) { return *nodes_.at(id); }
  [[nodiscard]] const topo::Graph& designed_topology() const { return graph_; }
  sim::Simulator& simulator() { return sim_; }
  /// Non-null iff sharded-deployed. Churn scripts schedule through the
  /// kernel's control-sim path so events land identically for any worker
  /// count.
  [[nodiscard]] sim::ShardedKernel* sharded_kernel() { return kernel_; }

 private:
  /// Shared deployment loop; `sim_of` / `rng_of` pick each node's simulator
  /// and randomness (the only things the monolithic and sharded paths differ
  /// in).
  void build_nodes(net::Internet& internet, const std::vector<net::HostId>& hosts,
                   const NodeConfig& cfg,
                   const std::function<sim::Simulator&(NodeId)>& sim_of,
                   const std::function<sim::Rng(NodeId)>& rng_of);

  sim::Simulator& sim_;
  sim::ShardedKernel* kernel_ = nullptr;  // set iff sharded-deployed
  topo::Graph graph_;
  std::vector<std::unique_ptr<OverlayNode>> nodes_;
};

/// A linear chain fixture for controlled link-recovery experiments (Fig. 3,
/// Fig. 4): n_nodes overlay nodes in a line, consecutive pairs joined by
/// overlay links of `hop_latency` one-way. Overlay link n-1 joins node 0 and
/// node n-1 DIRECTLY, riding the same underlay fiber end-to-end — so "one
/// 50 ms path with end-to-end recovery" and "five 10 ms overlay links with
/// hop-by-hop recovery" run over identical physics.
struct ChainFixture {
  std::unique_ptr<net::Internet> internet;
  std::unique_ptr<OverlayNetwork> overlay;
  std::vector<net::LinkId> hop_links;      // backbone links (loss injection)
  std::vector<LinkBit> hop_overlay_links;  // overlay link i <-> i+1
  LinkBit direct_link = kInvalidLinkBit;   // overlay link 0 <-> n-1

  /// Mask selecting the hop-by-hop chain / the direct link.
  [[nodiscard]] LinkMask chain_mask() const {
    LinkMask m = 0;
    for (const LinkBit b : hop_overlay_links) m |= bit_of(b);
    return m;
  }
  [[nodiscard]] LinkMask direct_mask() const { return bit_of(direct_link); }
};

struct ChainOptions {
  std::size_t n_nodes = 6;
  sim::Duration hop_latency = sim::Duration::milliseconds(10);
  double bandwidth_bps = 1e9;
  NodeConfig node;
};

[[nodiscard]] ChainFixture build_chain(sim::Simulator& sim, const ChainOptions& opts,
                                       sim::Rng rng);

/// Generic fixture: one overlay node per node of an arbitrary weighted graph
/// (weights = one-way fiber latency in ms), one ISP, one fiber per overlay
/// link. For research topologies that are not geographic maps.
struct GraphFixture {
  std::unique_ptr<net::Internet> internet;
  std::unique_ptr<OverlayNetwork> overlay;
  std::vector<net::HostId> hosts;
  /// Backbone link id per overlay edge (for loss/failure injection).
  std::vector<net::LinkId> fiber;
};

struct GraphOptions {
  double bandwidth_bps = 1e9;
  NodeConfig node;
};

[[nodiscard]] GraphFixture build_graph_fixture(sim::Simulator& sim, const topo::Graph& g,
                                               const GraphOptions& opts, sim::Rng rng);

/// Circulant overlay C_n(1,2): node i links to i±1 and i±2 (mod n). Vertex
/// connectivity 4 — every pair admits >= 3 node-disjoint paths. The standard
/// well-connected research topology for the intrusion-tolerance experiments.
[[nodiscard]] topo::Graph circulant_topology(std::size_t n, double ring_latency_ms = 10.0,
                                             double chord_latency_ms = 16.0);

}  // namespace son::overlay
