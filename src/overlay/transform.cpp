#include "overlay/transform.hpp"

namespace son::overlay {

FlowTransformer::FlowTransformer(sim::Simulator& sim, OverlayNode& node, Options opts,
                                 TransformFn fn)
    : sim_{sim}, opts_{opts}, fn_{std::move(fn)}, endpoint_{node.connect(opts.in_port)} {
  if (opts_.in_group != 0) endpoint_.join(opts_.in_group);
  endpoint_.set_handler(
      [this](const Message& m, sim::Duration) { on_input(m); });
}

void FlowTransformer::on_input(const Message& m) {
  ++stats_.consumed;
  // The transformation runs on the node's general-purpose CPU; output is
  // republished as a NEW flow after the processing time. End-to-end
  // guarantees "must be met throughout the entire compound flow, including
  // its transformation" — downstream consumers see the sum of both legs'
  // latency plus the processing time.
  Payload out = fn_(m);
  if (!out) {
    ++stats_.filtered;
    return;
  }
  sim_.schedule(opts_.processing,
                timer_guard_.wrap([this, out = std::move(out),
                                   t0 = m.hdr.origin_time]() {
                  endpoint_.send_with_origin(opts_.out, out, opts_.out_spec, t0);
                  ++stats_.produced;
                }));
}

}  // namespace son::overlay
