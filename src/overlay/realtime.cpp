#include "overlay/realtime.hpp"

#include <algorithm>

namespace son::overlay {

RealtimeEndpointBase::~RealtimeEndpointBase() {
  auto& sim = ctx_.simulator();
  for (const auto id : burst_timers_) sim.cancel(id);
  for (auto& [seq, p] : pending_) {
    for (const auto id : p.request_timers) sim.cancel(id);
  }
}

// ---- Sender role ------------------------------------------------------------

bool RealtimeEndpointBase::send(Message msg) {
  const std::uint64_t seq = next_seq_++;
  history_.emplace(seq, Sent{msg, ctx_.simulator().now()});

  LinkFrame f;
  f.link = ctx_.link();
  f.from = ctx_.self();
  f.to = ctx_.peer();
  f.proto = protocol();
  f.type = FrameType::kData;
  f.seq = seq;
  f.msg = std::move(msg);
  ctx_.send_frame(std::move(f));
  ++stats_.data_sent;
  prune_history();
  return true;
}

void RealtimeEndpointBase::prune_history() {
  const sim::TimePoint cutoff = ctx_.simulator().now() - cfg_.rt_sender_history;
  while (!history_.empty() && history_.begin()->second.sent_at < cutoff) {
    burst_scheduled_.erase(history_.begin()->first);
    history_.erase(history_.begin());
  }
  if (burst_timers_.size() > 65536) burst_timers_.clear();  // all long fired
}

void RealtimeEndpointBase::handle_request(const LinkFrame& f) {
  for (const std::uint64_t seq : f.ids) {
    // "The sender, upon receipt of the first request for a retransmission,
    // will schedule M retransmissions" — subsequent requests are no-ops.
    if (burst_scheduled_.contains(seq)) continue;
    const auto it = history_.find(seq);
    if (it == history_.end()) continue;  // too old; nothing we can do
    burst_scheduled_.insert(seq);

    const std::uint8_t m = std::max<std::uint8_t>(
        1, nm_mode_ ? it->second.msg.hdr.nm_retransmissions : 1);
    // Space the M retransmissions across the responder budget the receiver
    // granted us, minus the one-way trip for the final copy.
    sim::Duration spacing = sim::Duration::zero();
    if (cfg_.nm_spread && m > 1) {
      const sim::Duration usable = f.budget - ctx_.rtt_estimate() / 2;
      if (usable > sim::Duration::zero()) spacing = usable / (m);
    }
    for (std::uint8_t j = 0; j < m; ++j) {
      const sim::Duration at = spacing * static_cast<std::int64_t>(j);
      burst_timers_.push_back(ctx_.simulator().schedule(at, [this, seq]() {
        const auto hit = history_.find(seq);
        if (hit == history_.end()) return;
        LinkFrame rf;
        rf.link = ctx_.link();
        rf.from = ctx_.self();
        rf.to = ctx_.peer();
        rf.proto = protocol();
        rf.type = FrameType::kRetransmission;
        rf.seq = seq;
        rf.msg = hit->second.msg;
        ctx_.send_frame(std::move(rf));
        ++stats_.retransmissions_sent;
      }));
    }
  }
}

// ---- Receiver role -----------------------------------------------------------

sim::Duration RealtimeEndpointBase::recovery_budget(const MessageHeader& h) const {
  if (h.deadline > sim::Duration::zero()) {
    const sim::TimePoint due = h.origin_time + h.deadline;
    const sim::Duration remaining = due - ctx_.simulator().now();
    return remaining > sim::Duration::zero() ? remaining : sim::Duration::zero();
  }
  return cfg_.rt_default_budget;
}

void RealtimeEndpointBase::note_gap(std::uint64_t missing, const MessageHeader& trigger) {
  if (pending_.contains(missing) || seen_.contains(missing) || missing <= seen_floor_) return;

  const std::uint8_t n =
      std::max<std::uint8_t>(1, nm_mode_ ? trigger.nm_requests : 1);
  const sim::Duration budget = recovery_budget(trigger);
  const sim::Duration rtt = ctx_.rtt_estimate();

  // Split the post-RTT slack between request spacing and retransmission
  // spacing: final (M-th) response to the final (N-th) request must still
  // arrive inside the budget.
  const sim::Duration slack =
      std::max(sim::Duration::zero(), budget - rtt);
  sim::Duration req_spacing = sim::Duration::zero();
  sim::Duration responder_budget = slack;
  if (cfg_.nm_spread && n > 1) {
    req_spacing = (slack / 2) / (n - 1);
    responder_budget = slack / 2;
  } else if (!cfg_.nm_spread) {
    responder_budget = sim::Duration::zero();  // back-to-back ablation
  }

  PendingRecovery rec;
  rec.requests_left = n;
  for (std::uint8_t i = 0; i < n; ++i) {
    const sim::Duration at = req_spacing * static_cast<std::int64_t>(i);
    rec.request_timers.push_back(ctx_.simulator().schedule(
        at, [this, missing, responder_budget]() { send_request(missing, responder_budget); }));
  }
  // Expiry: if the packet has not arrived by the end of the budget (plus a
  // final one-way trip), give up and stop tracking it.
  const sim::Duration expiry = std::max(budget, rtt) + rtt;
  rec.request_timers.push_back(ctx_.simulator().schedule(expiry, [this, missing]() {
    const auto it = pending_.find(missing);
    if (it == pending_.end()) return;
    pending_.erase(it);
    ++stats_.expired_unrecovered;
    seen_floor_ = std::max(seen_floor_, missing);  // stop considering it
  }));
  pending_.emplace(missing, std::move(rec));
}

void RealtimeEndpointBase::send_request(std::uint64_t missing, sim::Duration responder_budget) {
  if (!pending_.contains(missing)) return;
  LinkFrame f;
  f.link = ctx_.link();
  f.from = ctx_.self();
  f.to = ctx_.peer();
  f.proto = protocol();
  f.type = FrameType::kRetransRequest;
  f.ids.push_back(missing);
  f.budget = responder_budget;
  ctx_.send_frame(std::move(f));
  ++stats_.requests_sent;
}

void RealtimeEndpointBase::handle_data(const LinkFrame& f) {
  const std::uint64_t seq = f.seq;
  if (seq <= seen_floor_ || seen_.contains(seq)) {
    ++stats_.duplicates;
    return;
  }
  seen_.insert(seq);
  // Compact the seen set from the floor.
  while (seen_.contains(seen_floor_ + 1)) {
    seen_.erase(seen_floor_ + 1);
    ++seen_floor_;
  }

  const auto pit = pending_.find(seq);
  if (pit != pending_.end()) {
    for (const auto id : pit->second.request_timers) ctx_.simulator().cancel(id);
    pending_.erase(pit);
    ++stats_.recovered;
  }

  if (f.msg) ctx_.deliver_up(*f.msg, f.link);

  // Gap detection: anything between the previous max and this seq is missing.
  if (seq > recv_max_ + 1 && f.msg) {
    for (std::uint64_t m = std::max(recv_max_ + 1, seen_floor_ + 1); m < seq; ++m) {
      if (!seen_.contains(m)) note_gap(m, f.msg->hdr);
    }
  }
  recv_max_ = std::max(recv_max_, seq);
}

void RealtimeEndpointBase::on_frame(const LinkFrame& f) {
  switch (f.type) {
    case FrameType::kData:
    case FrameType::kRetransmission:
      handle_data(f);
      break;
    case FrameType::kRetransRequest:
      handle_request(f);
      break;
    default:
      break;
  }
}

}  // namespace son::overlay
