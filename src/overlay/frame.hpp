// Link frames: everything overlay neighbors exchange over one overlay link.
//
// Data and recovery frames belong to a link protocol instance; hello, LSA
// and group-state frames are node-level control traffic handled by the
// overlay node itself.
#pragma once

#include <any>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "crypto/hmac.hpp"
#include "overlay/message.hpp"
#include "overlay/types.hpp"
#include "sim/hot.hpp"

namespace son::overlay {

enum class FrameType : std::uint8_t {
  kData = 0,
  kAck,              // cumulative ack + nack list (reliable link)
  kRetransRequest,   // realtime protocols: request for missing seqs
  kRetransmission,   // recovered data
  kBusy,             // IT-Reliable backpressure: per-flow buffer full
  kWindowOpen,       // IT-Reliable backpressure release
  kParity,           // FEC group parity (extension protocol)
  kHello,
  kHelloReply,
  kLsa,
  kGroupState,
};

[[nodiscard]] const char* to_string(FrameType t);

struct LinkFrame {
  LinkBit link = kInvalidLinkBit;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  LinkProtocol proto = LinkProtocol::kBestEffort;
  FrameType type = FrameType::kData;

  /// Link-level sequence (data frames) or the seq being acked/requested.
  std::uint64_t seq = 0;
  std::uint64_t cum_ack = 0;
  /// Nack / retransmission-request id lists.
  std::vector<std::uint64_t> ids;
  std::optional<Message> msg;

  // Hello fields.
  sim::TimePoint t_sent;
  std::uint64_t hello_seq = 0;
  std::uint8_t channel = 0;

  /// Sender's incarnation number (bumped on crash-recovery restart). A peer
  /// seeing a higher incarnation resets all per-link protocol state for that
  /// neighbor (the pre-crash receive windows and acks are void); frames from
  /// an older incarnation are pre-crash ghosts and are dropped.
  std::uint32_t incarnation = 0;

  /// Remaining recovery-time budget hint (retransmission requests), so the
  /// responder can space its M retransmissions inside the deadline.
  sim::Duration budget = sim::Duration::zero();

  /// Control payload for kLsa / kGroupState (LinkStateAd / GroupStateAd).
  std::any control;

  // Per-hop authentication (intrusion-tolerant deployments).
  crypto::Tag auth{};
  bool authenticated = false;
};

/// Wire size used for underlay bandwidth accounting.
[[nodiscard]] std::uint32_t frame_wire_size(const LinkFrame& f);

/// Canonical byte encoding of a CONTROL frame's authenticated content
/// (hello fields, link-state / group-state advertisements). Used for
/// per-hop HMAC in intrusion-tolerant deployments so outsiders cannot
/// inject hellos or forge topology/membership state.
///
/// The encoding splits into head || suffix, HMAC'd as two spans (identical
/// to HMAC over the concatenation):
///   * head — the fixed per-link fields (type, link, from, to, hello seq,
///     timestamp, channel, incarnation), exactly kControlAuthHeadBytes,
///     encoded into a caller stack buffer.
///   * suffix — the variable advertisement body (LSA / GSA), appended into a
///     caller scratch vector whose capacity grows monotonically, so steady
///     state is allocation-free. The suffix depends only on the ad content
///     (not on which link carries it), which is what lets a K-link flood
///     serialize it once.
inline constexpr std::size_t kControlAuthHeadBytes = 27;

SON_HOT std::size_t control_auth_head_bytes(const LinkFrame& f, std::span<std::uint8_t> out);
SON_HOT void control_auth_suffix_into(const LinkFrame& f, std::vector<std::uint8_t>& out);

/// Single-buffer concatenation (head || suffix): the seed-path
/// reconstruction and the test reference. Allocates; hot paths use the
/// two-span form above.
[[nodiscard]] std::vector<std::uint8_t> control_auth_bytes(const LinkFrame& f);

}  // namespace son::overlay
