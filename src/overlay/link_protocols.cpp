#include "overlay/link_protocols.hpp"

#include "overlay/fec.hpp"
#include "overlay/group_state.hpp"
#include "overlay/it_fair.hpp"
#include "overlay/link_state.hpp"
#include "overlay/realtime.hpp"
#include "overlay/reliable_link.hpp"

namespace son::overlay {

namespace {
template <typename T>
void put_raw(std::vector<std::uint8_t>& out, T v) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    // son-analyze: allow(hot-path-alloc) "appends into caller scratch with monotone capacity (control_auth_suffix_into contract); steady state after the first few control frames is allocation-free"
    out.push_back(static_cast<std::uint8_t>(static_cast<std::uint64_t>(v) >> (8 * i)));
  }
}
template <typename T>
void put_fixed(std::uint8_t* out, std::size_t& at, T v) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out[at++] = static_cast<std::uint8_t>(static_cast<std::uint64_t>(v) >> (8 * i));
  }
}
}  // namespace

std::size_t control_auth_head_bytes(const LinkFrame& f, std::span<std::uint8_t> out) {
  std::size_t at = 0;
  std::uint8_t* p = out.data();
  put_fixed(p, at, static_cast<std::uint8_t>(f.type));
  put_fixed(p, at, f.link);
  put_fixed(p, at, f.from);
  put_fixed(p, at, f.to);
  put_fixed(p, at, f.hello_seq);
  put_fixed(p, at, f.t_sent.ns());
  put_fixed(p, at, f.channel);
  put_fixed(p, at, f.incarnation);
  return at;  // == kControlAuthHeadBytes
}

void control_auth_suffix_into(const LinkFrame& f, std::vector<std::uint8_t>& out) {
  out.clear();
  if (const auto* lsa = std::any_cast<LinkStateAd>(&f.control)) {
    put_raw(out, lsa->origin);
    put_raw(out, lsa->seq);
    put_raw(out, lsa->incarnation);
    for (const LinkReport& r : lsa->links) {
      put_raw(out, r.link);
      put_raw(out, static_cast<std::uint8_t>(r.up));
      put_raw(out, static_cast<std::uint64_t>(r.latency_ms * 1e6));
      put_raw(out, static_cast<std::uint64_t>(r.loss_rate * 1e9));
    }
  } else if (const auto* gsa = std::any_cast<GroupStateAd>(&f.control)) {
    put_raw(out, gsa->origin);
    put_raw(out, gsa->seq);
    put_raw(out, gsa->incarnation);
    for (const GroupId g : gsa->joined) put_raw(out, g);
  }
}

std::vector<std::uint8_t> control_auth_bytes(const LinkFrame& f) {
  std::array<std::uint8_t, kControlAuthHeadBytes> head{};
  const std::size_t n = control_auth_head_bytes(f, std::span{head});
  std::vector<std::uint8_t> suffix;
  control_auth_suffix_into(f, suffix);
  std::vector<std::uint8_t> out;
  out.reserve(n + suffix.size());
  out.insert(out.end(), head.begin(), head.begin() + static_cast<std::ptrdiff_t>(n));
  out.insert(out.end(), suffix.begin(), suffix.end());
  return out;
}

const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::kData: return "data";
    case FrameType::kAck: return "ack";
    case FrameType::kRetransRequest: return "retrans-request";
    case FrameType::kRetransmission: return "retransmission";
    case FrameType::kParity: return "parity";
    case FrameType::kBusy: return "busy";
    case FrameType::kWindowOpen: return "window-open";
    case FrameType::kHello: return "hello";
    case FrameType::kHelloReply: return "hello-reply";
    case FrameType::kLsa: return "lsa";
    case FrameType::kGroupState: return "group-state";
  }
  return "?";
}

std::uint32_t frame_wire_size(const LinkFrame& f) {
  std::uint32_t size = kLinkFrameBytes;
  if (f.msg) size += wire_size(*f.msg, f.authenticated);
  size += static_cast<std::uint32_t>(f.ids.size()) * 8;
  if (f.type == FrameType::kLsa || f.type == FrameType::kGroupState) {
    size += 64;  // control advertisement payload estimate
  }
  if (f.type == FrameType::kParity) {
    if (const auto* block = std::any_cast<ParityBlock>(&f.control)) {
      size += static_cast<std::uint32_t>(block->xor_bytes.size()) +
              static_cast<std::uint32_t>(block->headers.size()) * 24;
    }
  }
  return size;
}

std::unique_ptr<LinkProtocolEndpoint> make_link_endpoint(LinkProtocol proto, LinkContext& ctx,
                                                         const LinkProtocolConfig& cfg) {
  switch (proto) {
    case LinkProtocol::kBestEffort:
      return std::make_unique<BestEffortEndpoint>(ctx, cfg);
    case LinkProtocol::kReliable:
      return std::make_unique<ReliableLinkEndpoint>(ctx, cfg);
    case LinkProtocol::kRealtimeSimple:
      return std::make_unique<RealtimeSimpleEndpoint>(ctx, cfg);
    case LinkProtocol::kRealtimeNM:
      return std::make_unique<RealtimeNMEndpoint>(ctx, cfg);
    case LinkProtocol::kITPriority:
      return std::make_unique<ItPriorityEndpoint>(ctx, cfg);
    case LinkProtocol::kITReliable:
      return std::make_unique<ItReliableEndpoint>(ctx, cfg);
    case LinkProtocol::kFec:
      return std::make_unique<FecEndpoint>(ctx, cfg);
  }
  return nullptr;
}

}  // namespace son::overlay
