// The routing level (Fig. 2): Link-State and Source-Based routing over the
// shared connectivity graph, plus multicast trees and anycast selection.
//
// Link-state forwarding state is maintained incrementally: refresh_spt()
// pulls the dirty-edge delta from the TopologyDb's change journal and
// repairs the shortest-path tree with topo::SptEngine (iSPF), falling back
// to a full Dijkstra only on the first build, after the journal window, or
// on a mass change. Next hops are resolved lazily per destination with a
// version-stamped memo, and the per-packet answers (multicast_links,
// adjacent_mask_links) come from reusable buffers, so steady-state
// forwarding allocates nothing.
#pragma once

#include <map>
#include <vector>

#include "overlay/group_state.hpp"
#include "overlay/link_state.hpp"
#include "overlay/types.hpp"
#include "topo/dissemination.hpp"
#include "topo/graph.hpp"

namespace son::overlay {

class Router {
 public:
  Router(NodeId self, const TopologyDb& topo_db, const GroupDb& group_db);

  // ---- Link-State routing ----------------------------------------------
  /// First overlay link on the min-cost path self -> dst; kInvalidLinkBit if
  /// dst is unreachable (or is self).
  [[nodiscard]] LinkBit next_hop(NodeId dst);

  /// Links (adjacent to self) to forward a multicast message on, given the
  /// tree rooted at `tree_src` spanning the current members of `group`.
  /// `arrived_on` is excluded (kInvalidLinkBit when self originated it).
  /// Returns ascending link bits in a buffer reused by the next call.
  [[nodiscard]] const std::vector<LinkBit>& multicast_links(NodeId tree_src, GroupId group,
                                                            LinkBit arrived_on);

  /// Anycast target: the nearest current member of `group` by routing cost;
  /// kInvalidNode if the group is empty/unreachable. Ties go to the lowest
  /// node id (members are scanned ascending with a strict <), so the choice
  /// is deterministic and independent of advertisement arrival order.
  [[nodiscard]] NodeId anycast_target(GroupId group);

  // ---- Source-Based routing ---------------------------------------------
  /// Computes the link bitmask the origin stamps on a message.
  [[nodiscard]] LinkMask source_mask(const ServiceSpec& spec, NodeId dst);

  /// Links adjacent to `self` that are in `mask`, excluding `arrived_on`.
  /// Returned in a buffer reused by the next call.
  [[nodiscard]] const std::vector<LinkBit>& adjacent_mask_links(LinkMask mask,
                                                                LinkBit arrived_on);

  /// The min-cost path cost to dst (ms), for diagnostics; infinity if
  /// unreachable.
  [[nodiscard]] double path_cost_to(NodeId dst);

  /// Bench/ablation knob: run the pre-incremental engine — a full Dijkstra
  /// plus an eager whole-table next-hop rebuild on every topology change
  /// (the recorded baseline cell in bench_routing; pair it with
  /// TopologyDb::set_incremental(false) for the full pre-change pipeline).
  void set_force_full_spt(bool force) { force_full_spt_ = force; }

  /// Membership eviction: immediately drops every cached answer involving a
  /// departed origin — multicast trees rooted at it and source masks toward
  /// it. The version-stamped sweep would age these out on the next topology
  /// or membership change anyway; the explicit evict bounds memory even when
  /// the departure itself is the last change for a while. Returns the number
  /// of cache entries dropped.
  std::size_t evict_origin(NodeId origin);

  /// Cache occupancy, exposed so tests can pin the eviction policy.
  [[nodiscard]] std::size_t tree_cache_size() const { return tree_cache_.size(); }
  [[nodiscard]] std::size_t mask_cache_size() const { return mask_cache_.size(); }

 private:
  void refresh_spt();
  void rebuild_next_hop_table(const topo::Graph& g, std::uint64_t version);
  /// Drops every cache entry stamped with a stale topology/group version.
  /// Runs at most once per (topo, group) version pair.
  void evict_stale_caches();
  [[nodiscard]] LinkBit resolve_next_hop(topo::NodeIndex dst);

  NodeId self_;
  const TopologyDb& topo_db_;
  const GroupDb& group_db_;

  // Incrementally repaired shortest-path tree from self.
  topo::SptEngine spt_;
  std::uint64_t spt_version_ = 0;
  bool force_full_spt_ = false;

  // Lazy next-hop memo: next_hop_[dst] is valid iff hop_version_[dst] equals
  // the SPT version; resolving one destination stamps its whole parent
  // chain, so a refresh costs only the destinations actually queried.
  std::vector<LinkBit> next_hop_;
  std::vector<std::uint64_t> hop_version_;
  std::vector<topo::NodeIndex> chain_scratch_;

  // Reused result buffers (no per-packet allocation).
  std::vector<LinkBit> mcast_links_buf_;
  std::vector<LinkBit> mask_links_buf_;
  topo::EdgeSet delta_scratch_;

  // Multicast tree cache: (src, group) -> edges, stamped with both versions.
  // Stale-stamped entries are evicted on version change, and evict_origin()
  // drops a departed origin's entries eagerly, so the cache never outgrows
  // live (src, group) pairs across long churn runs.
  struct TreeEntry {
    std::uint64_t topo_version;
    std::uint64_t group_version;
    topo::EdgeSet edges;
  };
  std::map<std::pair<NodeId, GroupId>, TreeEntry> tree_cache_;

  // Source-mask cache: keyed by (scheme, k/fanin/fanout, dst); same
  // version-based eviction as the tree cache.
  struct MaskKey {
    RouteScheme scheme;
    std::uint8_t a;
    std::uint8_t b;
    NodeId dst;
    auto operator<=>(const MaskKey&) const = default;
  };
  struct MaskEntry {
    std::uint64_t topo_version;
    LinkMask mask;
  };
  std::map<MaskKey, MaskEntry> mask_cache_;
  std::uint64_t cache_swept_topo_ = 0;
  std::uint64_t cache_swept_group_ = 0;
};

}  // namespace son::overlay
