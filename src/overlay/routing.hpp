// The routing level (Fig. 2): Link-State and Source-Based routing over the
// shared connectivity graph, plus multicast trees and anycast selection.
#pragma once

#include <map>
#include <vector>

#include "overlay/group_state.hpp"
#include "overlay/link_state.hpp"
#include "overlay/types.hpp"
#include "topo/dissemination.hpp"
#include "topo/graph.hpp"

namespace son::overlay {

class Router {
 public:
  Router(NodeId self, const TopologyDb& topo_db, const GroupDb& group_db);

  // ---- Link-State routing ----------------------------------------------
  /// First overlay link on the min-cost path self -> dst; kInvalidLinkBit if
  /// dst is unreachable (or is self).
  [[nodiscard]] LinkBit next_hop(NodeId dst);

  /// Links (adjacent to self) to forward a multicast message on, given the
  /// tree rooted at `tree_src` spanning the current members of `group`.
  /// `arrived_on` is excluded (kInvalidLinkBit when self originated it).
  [[nodiscard]] std::vector<LinkBit> multicast_links(NodeId tree_src, GroupId group,
                                                     LinkBit arrived_on);

  /// Anycast target: the nearest current member of `group` by routing cost
  /// (lowest id on ties); kInvalidNode if the group is empty/unreachable.
  [[nodiscard]] NodeId anycast_target(GroupId group);

  // ---- Source-Based routing ---------------------------------------------
  /// Computes the link bitmask the origin stamps on a message.
  [[nodiscard]] LinkMask source_mask(const ServiceSpec& spec, NodeId dst);

  /// Links adjacent to `self` that are in `mask`, excluding `arrived_on`.
  [[nodiscard]] std::vector<LinkBit> adjacent_mask_links(LinkMask mask,
                                                         LinkBit arrived_on) const;

  /// The min-cost path cost to dst (ms), for diagnostics; infinity if
  /// unreachable.
  [[nodiscard]] double path_cost_to(NodeId dst);

 private:
  void refresh_spt();

  NodeId self_;
  const TopologyDb& topo_db_;
  const GroupDb& group_db_;

  // Shortest-path-tree cache from self (link-state next hops).
  std::uint64_t spt_version_ = 0;
  std::vector<LinkBit> next_hop_;  // per destination node
  std::vector<double> dist_;

  // Multicast tree cache: (src, group) -> edges, stamped with both versions.
  struct TreeEntry {
    std::uint64_t topo_version;
    std::uint64_t group_version;
    topo::EdgeSet edges;
  };
  std::map<std::pair<NodeId, GroupId>, TreeEntry> tree_cache_;

  // Source-mask cache: keyed by (scheme, k/fanin/fanout, dst).
  struct MaskKey {
    RouteScheme scheme;
    std::uint8_t a;
    std::uint8_t b;
    NodeId dst;
    auto operator<=>(const MaskKey&) const = default;
  };
  struct MaskEntry {
    std::uint64_t topo_version;
    LinkMask mask;
  };
  std::map<MaskKey, MaskEntry> mask_cache_;
};

}  // namespace son::overlay
