#include "overlay/fec.hpp"

#include <algorithm>

namespace son::overlay {

bool FecEndpoint::send(Message msg) {
  const std::uint64_t seq = next_seq_++;

  // Accumulate the group parity before moving the message out.
  group_headers_.push_back(msg.hdr);
  group_sizes_.push_back(static_cast<std::uint32_t>(msg.payload_size()));
  if (msg.payload) {
    if (group_xor_.size() < msg.payload->size()) group_xor_.resize(msg.payload->size(), 0);
    for (std::size_t i = 0; i < msg.payload->size(); ++i) {
      group_xor_[i] = static_cast<std::uint8_t>(group_xor_[i] ^ (*msg.payload)[i]);
    }
  }

  LinkFrame f;
  f.link = ctx_.link();
  f.from = ctx_.self();
  f.to = ctx_.peer();
  f.proto = LinkProtocol::kFec;
  f.type = FrameType::kData;
  f.seq = seq;
  f.msg = std::move(msg);
  ctx_.send_frame(std::move(f));
  ++stats_.data_sent;

  if (group_headers_.size() >= cfg_.fec_group_size) emit_parity();
  return true;
}

void FecEndpoint::emit_parity() {
  ParityBlock block;
  block.first_seq = group_first_;
  block.headers = std::move(group_headers_);
  block.sizes = std::move(group_sizes_);
  block.xor_bytes = std::move(group_xor_);

  LinkFrame f;
  f.link = ctx_.link();
  f.from = ctx_.self();
  f.to = ctx_.peer();
  f.proto = LinkProtocol::kFec;
  f.type = FrameType::kParity;
  f.seq = block.first_seq;
  f.control = std::move(block);
  ctx_.send_frame(std::move(f));
  ++stats_.parity_sent;

  group_first_ = next_seq_;
  group_headers_.clear();
  group_sizes_.clear();
  group_xor_.clear();
}

void FecEndpoint::on_frame(const LinkFrame& f) {
  const std::uint64_t k = cfg_.fec_group_size;
  switch (f.type) {
    case FrameType::kData: {
      if (f.seq <= seen_floor_) {
        ++stats_.duplicates;
        return;
      }
      const std::uint64_t group_first = ((f.seq - 1) / k) * k + 1;
      GroupState& g = groups_[group_first];
      if (g.received.contains(f.seq)) {
        ++stats_.duplicates;
        return;
      }
      if (f.msg) {
        g.received.emplace(f.seq, *f.msg);
        ctx_.deliver_up(*f.msg, f.link);
      }
      try_reconstruct(group_first);
      prune_receiver_state();
      break;
    }
    case FrameType::kParity: {
      const auto* block = std::any_cast<ParityBlock>(&f.control);
      if (block == nullptr || block->first_seq <= seen_floor_) return;
      GroupState& g = groups_[block->first_seq];
      if (!g.parity) g.parity = *block;
      try_reconstruct(block->first_seq);
      prune_receiver_state();
      break;
    }
    default:
      break;
  }
}

void FecEndpoint::try_reconstruct(std::uint64_t group_first) {
  const auto it = groups_.find(group_first);
  if (it == groups_.end()) return;
  GroupState& g = it->second;
  if (g.done || !g.parity) return;
  const std::size_t k = g.parity->headers.size();
  if (g.received.size() >= k) {
    g.done = true;
    return;
  }
  if (g.received.size() != k - 1) return;  // 0 or >1 missing: nothing to do yet

  // Exactly one frame missing: find it and XOR it back into existence.
  std::size_t missing_idx = 0;
  for (std::size_t i = 0; i < k; ++i) {
    if (!g.received.contains(group_first + i)) {
      missing_idx = i;
      break;
    }
  }
  std::vector<std::uint8_t> bytes = g.parity->xor_bytes;
  for (const auto& [seq, msg] : g.received) {
    if (!msg.payload) continue;
    if (bytes.size() < msg.payload->size()) bytes.resize(msg.payload->size(), 0);
    for (std::size_t i = 0; i < msg.payload->size(); ++i) {
      bytes[i] = static_cast<std::uint8_t>(bytes[i] ^ (*msg.payload)[i]);
    }
  }
  bytes.resize(g.parity->sizes[missing_idx]);

  Message rebuilt;
  rebuilt.hdr = g.parity->headers[missing_idx];
  rebuilt.payload = make_payload(std::move(bytes));
  g.received.emplace(group_first + missing_idx, rebuilt);
  g.done = true;
  ++stats_.reconstructed;
  ctx_.deliver_up(std::move(rebuilt), ctx_.link());
}

void FecEndpoint::prune_receiver_state() {
  while (groups_.size() > 64) {
    auto& [first, g] = *groups_.begin();
    if (!g.done && g.parity && g.received.size() + 1 < g.parity->headers.size()) {
      ++stats_.unrecoverable_groups;
    }
    seen_floor_ = std::max(seen_floor_, first + cfg_.fec_group_size - 1);
    groups_.erase(groups_.begin());
  }
}

}  // namespace son::overlay
