// The overlay message: what flows between overlay nodes on behalf of client
// flows. Payload bodies are shared immutable buffers so redundant
// dissemination (multiple copies in flight) stays cheap to simulate.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "crypto/hmac.hpp"
#include "overlay/types.hpp"
#include "sim/hot.hpp"
#include "sim/time.hpp"

namespace son::overlay {

using Payload = std::shared_ptr<const std::vector<std::uint8_t>>;

[[nodiscard]] Payload make_payload(std::vector<std::uint8_t> bytes);
[[nodiscard]] Payload make_payload(std::size_t size, std::uint8_t fill = 0xAB);

struct MessageHeader {
  NodeId origin = kInvalidNode;          // overlay node that introduced the message
  VirtualPort src_port = 0;              // originating client's virtual port
  Destination dest;
  /// Unique message id:
  ///   (origin << 48) | ((incarnation & 0xFF) << 40) | per-origin counter.
  /// Dedup key for redundant dissemination. Folding the origin's incarnation
  /// into the id makes dedup and receive windows implicitly
  /// (origin, incarnation)-keyed, so a recovered node's fresh counter never
  /// collides with its previous life's ids. Incarnation 0 reproduces the
  /// original (origin << 48) | counter layout bit-for-bit.
  std::uint64_t origin_id = 0;
  /// Per-flow sequence number at the origin (gap detection, reordering).
  std::uint64_t flow_seq = 0;
  /// Flow identity at the origin (origin + src_port + dest hash); stable for
  /// per-flow state like IT-Reliable buffers.
  std::uint64_t flow_key = 0;
  RouteScheme scheme = RouteScheme::kLinkState;
  LinkProtocol link_protocol = LinkProtocol::kBestEffort;
  /// Remaining links to traverse, for source-based routing.
  LinkMask mask = 0;
  sim::TimePoint origin_time;
  sim::Duration deadline = sim::Duration::zero();
  std::uint8_t priority = 5;
  std::uint8_t nm_requests = 3;
  std::uint8_t nm_retransmissions = 3;
  bool ordered = false;
  /// Overlay hops already traversed; bounds transient routing loops while
  /// link-state views converge (overlay TTL).
  std::uint8_t hops = 0;
  /// Scheduling identity of the traffic source behind this message (the
  /// FlowEngine flow tag; 0 for plain client sends). Fair queueing keys on
  /// (origin, source_tag) so one aggressive flow cannot starve other flows
  /// from the same origin. Like nm_*/ordered/hops, this is transport
  /// metadata outside the authenticated head.
  std::uint32_t source_tag = 0;
};

struct Message {
  MessageHeader hdr;
  Payload payload;

  [[nodiscard]] std::size_t payload_size() const { return payload ? payload->size() : 0; }
};

/// Exact size of the authenticated header encoding (auth_head_bytes): the
/// fixed-width fields below sum to one SHA-256 block.
inline constexpr std::size_t kAuthHeadBytes = 64;

/// Canonical byte encoding of the authenticated HEADER portion of a message
/// (fields that must not be forged; the payload is the second span of the
/// HMAC input). Encodes exactly kAuthHeadBytes into `out` (which must be at
/// least that large) and returns the size. Zero-allocation: the IT fast path
/// encodes into a stack buffer and streams the shared payload buffer behind
/// it, which is bit-identical to HMAC over auth_bytes() since HMAC input is
/// the concatenation of its spans. The source-routing mask is covered too:
/// it is stamped once by the origin and never rewritten in flight.
SON_HOT std::size_t auth_head_bytes(const Message& m, std::span<std::uint8_t> out);

/// Heap-allocating head+payload concatenation: the seed-path reconstruction
/// (KeyTable midstate ablation) and the equivalence-test reference.
[[nodiscard]] std::vector<std::uint8_t> auth_bytes(const Message& m);

/// Wire size estimate for underlay queueing/bandwidth purposes.
inline constexpr std::uint32_t kMessageHeaderBytes = 64;
inline constexpr std::uint32_t kAuthTagBytes = 16;
inline constexpr std::uint32_t kLinkFrameBytes = 24;

[[nodiscard]] std::uint32_t wire_size(const Message& m, bool authenticated);

}  // namespace son::overlay
