#include "overlay/sharded.hpp"

#include "obs/recorder.hpp"

namespace son::overlay {

ShardedMapFixture build_sharded_map(const topo::BackboneMap& map, const ShardedMapOptions& opts,
                                    std::uint64_t seed) {
  ShardedMapFixture fx;
  fx.kernel = std::make_unique<sim::ShardedKernel>(map.cities.size(), opts.workers);
  fx.internet = std::make_unique<net::Internet>(
      fx.kernel->control_sim(), sim::component_stream(seed, 0, kStreamInternet, 0), opts.net);
  fx.underlay = topo::build_dual_isp(*fx.internet, map, opts.underlay);
  fx.plan = topo::partition_by_site(*fx.internet, fx.underlay);
  fx.internet->enable_sharding(*fx.kernel, fx.plan);
  obs::bind_worker_observability(*fx.kernel);
  fx.overlay = std::make_unique<OverlayNetwork>(
      *fx.kernel, *fx.internet, topo::overlay_graph(map, opts.underlay.route_inflation),
      fx.underlay.hosts, opts.node, seed);
  return fx;
}

}  // namespace son::overlay
