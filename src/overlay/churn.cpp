#include "overlay/churn.hpp"

#include <vector>

#include "sim/shard.hpp"

namespace son::overlay {

std::optional<ChurnModel> churn_model_from_string(std::string_view s) {
  if (s == "poisson") return ChurnModel::kPoisson;
  if (s == "periodic") return ChurnModel::kPeriodic;
  return std::nullopt;
}

const char* to_string(ChurnModel m) {
  return m == ChurnModel::kPoisson ? "poisson" : "periodic";
}

void ChurnScript::schedule(sim::TimePoint t, std::function<void()> fn) {
  if (sim::ShardedKernel* k = net_.sharded_kernel()) {
    // son-analyze: allow(shard-confinement) "script-setup-time only by documented contract (churn.hpp): events are materialized before the kernel runs, never from inside a partition event; the control-sim path is exactly what makes churn worker-count invariant"
    k->schedule_global(t, std::move(fn));
  } else {
    (void)net_.simulator().schedule_at(t, std::move(fn));
  }
}

// The scheduled callbacks capture the NETWORK, not the script: a ChurnScript
// is a transient driver that may go out of scope long before its events
// fire, while the OverlayNetwork owns the simulation and outlives the run.

void ChurnScript::crash(sim::TimePoint at, NodeId node) {
  schedule(at, [net = &net_, node]() { net->node(node).set_crashed(true); });
}

void ChurnScript::recover(sim::TimePoint at, NodeId node) {
  schedule(at, [net = &net_, node]() { net->node(node).restart(); });
}

void ChurnScript::crash_recover(sim::TimePoint at, NodeId node, sim::Duration down_for) {
  crash(at, node);
  recover(at + down_for, node);
}

std::size_t ChurnScript::random_churn(const RandomChurnConfig& cfg) {
  if (cfg.events_per_sec <= 0.0 || cfg.until <= cfg.from) return 0;
  // Dedicated stream: churn draws never perturb node/internet randomness.
  sim::Rng rng{cfg.seed, /*stream=*/0xC402};
  const double mean_gap_s = 1.0 / cfg.events_per_sec;
  // Down-intervals already scheduled, so an arrival never crashes a node
  // that is still down from a previous cycle (restart() on a down node
  // would silently shorten its outage and skew the measured rate).
  std::vector<sim::TimePoint> busy_until(net_.size(), sim::TimePoint::zero());
  std::vector<NodeId> eligible;
  std::size_t scheduled = 0;
  sim::TimePoint t = cfg.from;
  for (;;) {
    const double gap_s =
        cfg.model == ChurnModel::kPoisson ? rng.exponential(mean_gap_s) : mean_gap_s;
    t = t + sim::Duration::from_seconds_f(gap_s);
    if (t >= cfg.until) break;
    eligible.clear();
    for (NodeId n = 0; n < net_.size(); ++n) {  // ascending: deterministic draw
      if (n != cfg.spare && busy_until[n] <= t) eligible.push_back(n);
    }
    if (eligible.empty()) continue;  // whole overlay mid-outage; skip arrival
    const NodeId victim = eligible[rng.index(eligible.size())];
    crash_recover(t, victim, cfg.down_for);
    busy_until[victim] = t + cfg.down_for;
    ++scheduled;
  }
  return scheduled;
}

}  // namespace son::overlay
