// Byzantine behaviours for intrusion-tolerance experiments (§IV-B).
//
// A compromised overlay node holds valid credentials (the attacker owns the
// machine), so authentication does not exclude it. The paper's data-plane
// threat: "compromised overlay nodes cannot prevent messages sent by correct
// overlay nodes from reaching their destination (provided that some correct
// path through the overlay still exists)". The behaviours below disrupt the
// data plane while participating correctly in the control plane (the
// stealthiest variant: routing still trusts the node).
#pragma once

#include "sim/time.hpp"

namespace son::overlay {

struct CompromiseBehavior {
  bool active = false;
  /// Silently drop every transit data message (blackhole).
  bool blackhole_transit = false;
  /// Drop transit data messages with this probability (gray hole).
  double drop_probability = 0.0;
  /// Delay forwarded data messages by this much (timeliness attack).
  sim::Duration added_delay = sim::Duration::zero();
  /// Only attack messages from this origin (kInvalidNode = attack all).
  std::uint16_t target_origin = 0xFFFF;

  [[nodiscard]] static CompromiseBehavior blackhole() {
    CompromiseBehavior b;
    b.active = true;
    b.blackhole_transit = true;
    return b;
  }
  [[nodiscard]] static CompromiseBehavior grayhole(double p) {
    CompromiseBehavior b;
    b.active = true;
    b.drop_probability = p;
    return b;
  }
  [[nodiscard]] static CompromiseBehavior delayer(sim::Duration d) {
    CompromiseBehavior b;
    b.active = true;
    b.added_delay = d;
    return b;
  }
};

}  // namespace son::overlay
