// Proactive XOR-parity FEC link protocol — an EXTENSION protocol written
// against the Fig. 2 plug-in interface, demonstrating the paper's claim that
// the "flexible design ... facilitates adding new protocols at both levels."
// (Related work: OverQoS [10] combined FEC with retransmissions.)
//
// The sender emits every data frame immediately and, after each group of K
// frames, one parity frame: the XOR of the group's (zero-padded) payloads
// plus the group's headers. A receiver missing exactly one frame of a group
// reconstructs it locally — zero feedback round trips, at a fixed 1/K
// bandwidth overhead. FEC recovers independent losses brilliantly and fails
// on bursts that take out two frames of a group — the mirror image of
// NM-Strikes, which is exactly why the catalog carries both.
#pragma once

#include <map>

#include "overlay/link_protocols.hpp"

namespace son::overlay {

/// Parity payload attached to a kParity frame.
struct ParityBlock {
  std::uint64_t first_seq = 0;  // group covers [first_seq, first_seq + K)
  std::vector<MessageHeader> headers;   // per message, in seq order
  std::vector<std::uint32_t> sizes;     // original payload sizes
  std::vector<std::uint8_t> xor_bytes;  // XOR of zero-padded payloads
};

class FecEndpoint final : public LinkProtocolEndpoint {
 public:
  FecEndpoint(LinkContext& ctx, const LinkProtocolConfig& cfg)
      : LinkProtocolEndpoint(ctx, cfg) {}

  bool send(Message msg) override;
  void on_frame(const LinkFrame& f) override;
  [[nodiscard]] LinkProtocol protocol() const override { return LinkProtocol::kFec; }

  struct Stats {
    std::uint64_t data_sent = 0;
    std::uint64_t parity_sent = 0;
    std::uint64_t reconstructed = 0;
    std::uint64_t unrecoverable_groups = 0;  // >1 loss in a group
    std::uint64_t duplicates = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void emit_parity();
  void try_reconstruct(std::uint64_t group_first);
  void prune_receiver_state();

  // --- Sender role ---
  std::uint64_t next_seq_ = 1;
  std::uint64_t group_first_ = 1;
  std::vector<MessageHeader> group_headers_;
  std::vector<std::uint32_t> group_sizes_;
  std::vector<std::uint8_t> group_xor_;

  // --- Receiver role ---
  struct GroupState {
    std::map<std::uint64_t, Message> received;  // by seq
    std::optional<ParityBlock> parity;
    bool done = false;
  };
  std::uint64_t seen_floor_ = 0;
  std::map<std::uint64_t, GroupState> groups_;  // by group first_seq

  Stats stats_;
};

}  // namespace son::overlay
