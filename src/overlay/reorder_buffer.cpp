#include "overlay/reorder_buffer.hpp"

namespace son::overlay {

void ReorderBuffer::push(Message msg) {
  const std::uint64_t seq = msg.hdr.flow_seq;
  if (seq < next_seq_) {
    ++stats_.late_discarded;
    return;
  }
  if (held_.contains(seq)) {
    ++stats_.duplicates;
    return;
  }
  if (seq == next_seq_) {
    deliver_(msg);
    ++stats_.delivered;
    ++next_seq_;
    drain();
    return;
  }
  held_.emplace(seq, Held{std::move(msg), sim_.now()});
  arm_timer();
}

void ReorderBuffer::drain() {
  while (!held_.empty() && held_.begin()->first == next_seq_) {
    deliver_(held_.begin()->second.msg);
    ++stats_.delivered;
    ++next_seq_;
    held_.erase(held_.begin());
  }
  if (held_.empty() && timer_ != sim::kInvalidEventId) {
    sim_.cancel(timer_);
    timer_ = sim::kInvalidEventId;
  }
}

void ReorderBuffer::arm_timer() {
  if (timer_ != sim::kInvalidEventId || held_.empty()) return;
  const sim::TimePoint due = held_.begin()->second.arrived + max_hold_;
  timer_ = sim_.schedule_at(due, [this]() {
    timer_ = sim::kInvalidEventId;
    on_timer();
  });
}

void ReorderBuffer::on_timer() {
  const sim::TimePoint now = sim_.now();
  // Skip past any gap whose oldest held successor has waited out max_hold.
  while (!held_.empty() && now - held_.begin()->second.arrived >= max_hold_) {
    const std::uint64_t gap_end = held_.begin()->first;
    stats_.skipped_missing += gap_end - next_seq_;
    next_seq_ = gap_end;
    drain();
  }
  arm_timer();
}

}  // namespace son::overlay
