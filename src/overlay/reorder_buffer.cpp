#include "overlay/reorder_buffer.hpp"

namespace son::overlay {

void ReorderBuffer::push(Message msg) {
  const std::uint64_t seq = msg.hdr.flow_seq;
  if (seq < next_seq_) {
    ++stats_.late_discarded;
    obs_late_.add();
    return;
  }
  if (held_.contains(seq)) {
    ++stats_.duplicates;
    return;
  }
  if (seq == next_seq_) {
    deliver_(msg);
    ++stats_.delivered;
    ++next_seq_;
    drain();
    return;
  }
  held_.emplace(seq, Held{std::move(msg), sim_.now()});
  arrivals_.emplace_back(seq, sim_.now());
  obs_held_.add();
  arm_timer();
}

void ReorderBuffer::drain() {
  while (!held_.empty() && held_.begin()->first == next_seq_) {
    deliver_(held_.begin()->second.msg);
    ++stats_.delivered;
    ++next_seq_;
    held_.erase(held_.begin());
  }
  if (held_.empty() && timer_ != sim::kInvalidEventId) {
    sim_.cancel(timer_);
    timer_ = sim::kInvalidEventId;
    arrivals_.clear();
  }
}

void ReorderBuffer::prune_arrivals() {
  while (!arrivals_.empty() && !held_.contains(arrivals_.front().first)) {
    arrivals_.pop_front();
  }
}

void ReorderBuffer::arm_timer() {
  if (timer_ != sim::kInvalidEventId) return;
  prune_arrivals();
  if (arrivals_.empty()) return;
  // Deadline of the longest-waiting held message. Arrival times are
  // monotone, so an armed timer can only be early (harmless: on_timer
  // re-arms), never late.
  const sim::TimePoint due = arrivals_.front().second + max_hold_;
  timer_ = sim_.schedule_at(due, [this]() {
    timer_ = sim::kInvalidEventId;
    on_timer();
  });
}

void ReorderBuffer::on_timer() {
  const sim::TimePoint now = sim_.now();
  prune_arrivals();
  while (!arrivals_.empty() && now - arrivals_.front().second >= max_hold_) {
    // The longest-waiting held message has outlived max_hold: give up on
    // every gap below it. Deliver all held entries up to and including its
    // seq, in order, counting the abandoned gaps as skipped.
    const std::uint64_t expired_seq = arrivals_.front().first;
    while (!held_.empty() && held_.begin()->first <= expired_seq) {
      const std::uint64_t gap_end = held_.begin()->first;
      stats_.skipped_missing += gap_end - next_seq_;
      obs_skipped_.add(gap_end - next_seq_);
      next_seq_ = gap_end;
      drain();
    }
    prune_arrivals();
  }
  arm_timer();
}

}  // namespace son::overlay
