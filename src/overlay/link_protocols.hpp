// Link-level protocol plug-in interface (the boxes on the link level of
// Fig. 2). One endpoint instance exists per (overlay node, adjacent link,
// protocol); it plays both the sender and receiver role for that link.
//
// "Another key feature of the software architecture is its flexible design
// that allows many different routing-level and link-level protocols to
// coexist and facilitates adding new protocols at both levels." — adding a
// protocol means implementing LinkProtocolEndpoint and registering it in
// make_link_endpoint().
#pragma once

#include <memory>

#include "crypto/keys.hpp"
#include "overlay/frame.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace son::overlay {

/// What a protocol endpoint may do to the node that hosts it.
class LinkContext {
 public:
  virtual ~LinkContext() = default;

  virtual sim::Simulator& simulator() = 0;
  virtual sim::Rng& rng() = 0;
  /// Transmits a frame to the link's peer over the underlay (the node picks
  /// the healthiest ISP channel). Fire-and-forget; loss is the protocol's
  /// problem — that is the point of link protocols.
  virtual void send_frame(LinkFrame frame) = 0;
  /// Hands a received message up to the routing level of this node. Returns
  /// false if the node could NOT admit the message (next-hop buffer full) —
  /// IT-Reliable uses this to withhold the ack and create backpressure;
  /// other protocols may ignore the result.
  virtual bool deliver_up(Message msg, LinkBit arrived_on) = 0;
  /// Smoothed RTT of this overlay link from the hello protocol.
  [[nodiscard]] virtual sim::Duration rtt_estimate() const = 0;
  [[nodiscard]] virtual NodeId self() const = 0;
  [[nodiscard]] virtual NodeId peer() const = 0;
  [[nodiscard]] virtual LinkBit link() const = 0;
  /// True when this deployment authenticates frames hop-by-hop (IT mode).
  [[nodiscard]] virtual bool authenticate() const = 0;
  [[nodiscard]] virtual const crypto::KeyTable* keys() const = 0;
  /// Protocol-level drop accounting (buffer overflow, deadline exceeded...).
  virtual void count_protocol_drop(LinkProtocol proto) = 0;
};

struct LinkProtocolConfig {
  // Reliable link.
  std::size_t reliable_window = 4096;      // max unacked messages buffered
  double rto_multiplier = 2.0;             // RTO = multiplier * SRTT
  sim::Duration min_rto = sim::Duration::milliseconds(5);
  /// Per-entry exponential-backoff ceiling: an unacked message doubles its
  /// RTO on every timer expiry up to this cap, so a dead peer is probed at a
  /// bounded rate instead of retransmitted at a constant rate forever.
  sim::Duration max_rto = sim::Duration::seconds(2);
  sim::Duration ack_delay = sim::Duration::milliseconds(2);
  /// Cap on explicit nacks carried per ack frame. A large reordering gap
  /// would otherwise enumerate the whole window into one frame; lower seqs
  /// are nacked first, and later acks cover the rest as the gap shrinks.
  std::size_t max_nacks_per_ack = 64;
  /// The paper's design: "intermediate nodes are permitted to forward
  /// packets out of order" (§III-A). false = hold out-of-order arrivals at
  /// every hop until the gap fills (TCP-splice-like); ablation knob showing
  /// how much out-of-order forwarding smooths delivery.
  bool reliable_ooo_forwarding = true;

  // Realtime protocols.
  sim::Duration rt_sender_history = sim::Duration::milliseconds(2000);
  sim::Duration rt_default_budget = sim::Duration::milliseconds(100);
  /// Space the N requests / M retransmissions across the budget (the NM-
  /// Strikes design). false = send them back-to-back; ablation knob showing
  /// why spacing matters under correlated loss.
  bool nm_spread = true;

  // Intrusion-tolerant protocols.
  std::size_t it_buffer_per_source = 64;   // messages
  std::size_t it_buffer_per_flow = 64;
  /// Egress pacing rate for IT scheduling, messages/second per link. This is
  /// the resource the fair scheduler divides among sources.
  double it_egress_msgs_per_sec = 5000;

  // FEC extension protocol: one parity frame per this many data frames.
  std::uint64_t fec_group_size = 4;
};

class LinkProtocolEndpoint {
 public:
  explicit LinkProtocolEndpoint(LinkContext& ctx, const LinkProtocolConfig& cfg)
      : ctx_{ctx}, cfg_{cfg} {}
  virtual ~LinkProtocolEndpoint() = default;
  LinkProtocolEndpoint(const LinkProtocolEndpoint&) = delete;
  LinkProtocolEndpoint& operator=(const LinkProtocolEndpoint&) = delete;

  /// Routing level asks this link to carry `msg` to the peer.
  virtual bool send(Message msg) = 0;
  /// A frame for this protocol arrived from the peer.
  virtual void on_frame(const LinkFrame& f) = 0;
  [[nodiscard]] virtual LinkProtocol protocol() const = 0;

 protected:
  LinkContext& ctx_;
  LinkProtocolConfig cfg_;
};

/// Factory covering every protocol in Fig. 2.
[[nodiscard]] std::unique_ptr<LinkProtocolEndpoint> make_link_endpoint(
    LinkProtocol proto, LinkContext& ctx, const LinkProtocolConfig& cfg);

}  // namespace son::overlay
