// OVHD — §II-D: cost and deployment considerations.
//
// Paper claims to regenerate:
//   * "the computational costs to traverse up and down the network stack at
//     overlay nodes on today's commodity computers amount to less than 1ms
//     additional latency per intermediate overlay node on the path" —
//     measured here as REAL CPU time of the forwarding hot path
//     (google-benchmark), including the intrusion-tolerant variant with
//     HMAC-SHA256 verify + re-sign.
//   * "the latency overhead of using a multi-hop indirect overlay path
//     rather than the direct Internet path is small" — measured on the
//     continental-US map as overlay-path vs direct-fiber propagation.
//
// The CPU section is real-time measurement and inherently machine-dependent;
// it is skipped under --quick and never part of the deterministic report.
// The path-overhead table is pure geometry and runs through son::exp.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "overlay/network.hpp"
#include "topo/backbones.hpp"

namespace {

using namespace son;
using namespace son::sim::literals;

/// A settled US overlay node to run forwarding lookups against.
struct HotPathFixture {
  sim::Simulator sim;
  net::Internet inet{sim, sim::Rng{1}};
  topo::BackboneMap map = topo::continental_us();
  topo::BuiltUnderlay u;
  std::unique_ptr<overlay::OverlayNetwork> net;

  explicit HotPathFixture(bool authenticate) {
    u = topo::build_dual_isp(inet, map, topo::DualIspOptions{});
    overlay::NodeConfig cfg;
    cfg.authenticate = authenticate;
    net = std::make_unique<overlay::OverlayNetwork>(sim, inet, map, u, cfg, sim::Rng{2});
    net->settle(3_s);
  }

  overlay::Message msg(overlay::RouteScheme scheme, std::uint64_t i) {
    overlay::Message m;
    m.hdr.origin = 0;
    m.hdr.dest = overlay::Destination::unicast(9, 50);
    m.hdr.origin_id = i;
    m.hdr.scheme = scheme;
    m.hdr.mask = 0b1111111111;
    m.payload = overlay::make_payload(1200);
    return m;
  }
};

void BM_Forward_LinkState(benchmark::State& state) {
  HotPathFixture f{false};
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.net->node(4).bench_forward_lookup(
        f.msg(overlay::RouteScheme::kLinkState, ++i), overlay::kInvalidLinkBit));
  }
}
BENCHMARK(BM_Forward_LinkState);

void BM_Forward_SourceBased(benchmark::State& state) {
  HotPathFixture f{false};
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.net->node(4).bench_forward_lookup(
        f.msg(overlay::RouteScheme::kFlooding, ++i), overlay::kInvalidLinkBit));
  }
}
BENCHMARK(BM_Forward_SourceBased);

/// IT-mode per-hop cost: verify the arriving tag (keyed to the ingress
/// link's peer) + re-sign toward the routed egress peer. The arrival tag is
/// built once outside the loop, so the loop measures exactly the two HMACs
/// plus the routing lookup.
void forward_hmac_loop(benchmark::State& state, overlay::OverlayNode::BenchAuthPath path) {
  HotPathFixture f{true};
  auto& node = f.net->node(4);
  const overlay::Message m = f.msg(overlay::RouteScheme::kLinkState, 1);
  const overlay::LinkBit ingress = node.link_bits().front();
  const crypto::Tag in_auth = node.bench_make_arrival_tag(m, ingress);
  for (auto _ : state) {
    benchmark::DoNotOptimize(node.bench_forward_lookup(m, ingress, &in_auth, path));
  }
}

void BM_Forward_WithHmacAuth(benchmark::State& state) {
  forward_hmac_loop(state, overlay::OverlayNode::BenchAuthPath::kFast);
}
BENCHMARK(BM_Forward_WithHmacAuth);

void BM_Forward_WithHmacAuth_SeedPath(benchmark::State& state) {
  forward_hmac_loop(state, overlay::OverlayNode::BenchAuthPath::kSeed);
}
BENCHMARK(BM_Forward_WithHmacAuth_SeedPath);

void BM_Sha256_1200B(benchmark::State& state) {
  std::vector<std::uint8_t> buf(1200, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(buf));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1200);
}
BENCHMARK(BM_Sha256_1200B);

void BM_HmacSign_1200B(benchmark::State& state) {
  std::vector<std::uint8_t> buf(1200, 0xAB);
  std::vector<std::uint8_t> key(32, 0x42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_tag(key, buf));
  }
}
BENCHMARK(BM_HmacSign_1200B);

void BM_LinkStateRecompute_12Nodes(benchmark::State& state) {
  // Cost of a full routing-table recomputation after an LSA (the reroute
  // hot path): Dijkstra over the 12-node / 19-link US overlay.
  overlay::TopologyDb db{topo::overlay_graph(topo::continental_us())};
  overlay::GroupDb groups{12};
  overlay::Router router{0, db, groups};
  std::uint64_t seq = 1;
  for (auto _ : state) {
    overlay::LinkStateAd ad;
    ad.origin = 0;
    ad.seq = seq++;
    ad.links = {{0, true, 2.0 + static_cast<double>(seq % 3), 0.0}};
    db.apply(ad);
    benchmark::DoNotOptimize(router.next_hop(9));
  }
}
BENCHMARK(BM_LinkStateRecompute_12Nodes);

void BM_DisjointPathComputation(benchmark::State& state) {
  const topo::Graph g = topo::overlay_graph(topo::continental_us());
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo::k_node_disjoint_paths(g, 0, 9, 2));
  }
}
BENCHMARK(BM_DisjointPathComputation);

void BM_DisseminationGraphComputation(benchmark::State& state) {
  const topo::Graph g = topo::overlay_graph(topo::continental_us());
  topo::DissemOptions opts;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo::dissemination_graph(g, 0, 7, opts));
  }
}
BENCHMARK(BM_DisseminationGraphComputation);

/// Pure-geometry path overhead for one site pair; deterministic (no Rng use,
/// but routed through the runner so it lands in the structured report).
exp::Metrics run_pair(topo::NodeIndex a, topo::NodeIndex b, std::uint64_t /*seed*/) {
  const auto map = topo::continental_us();
  const topo::Graph g = topo::overlay_graph(map);
  const auto direct = topo::fiber_latency(map.cities[a], map.cities[b]);
  const auto path = topo::shortest_path(g, a, b);
  const double overlay_ms = path ? topo::path_cost(g, *path) : 0.0;
  exp::Metrics m;
  m.scalar("direct_ms", direct.to_millis_f());
  m.scalar("overlay_ms", overlay_ms);
  m.scalar("hops", static_cast<double>(path ? path->size() - 1 : 0));
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the runner flags first; google-benchmark sees the remainder.
  const auto opts = exp::Options::parse(argc, argv, "overhead", 1, 1);

  if (!opts.quick) {
    bench::heading("OVHD-A", "Per-node processing cost, real CPU time (§II-D)");
    bench::note("Paper: 'less than 1ms additional latency per intermediate overlay node'.");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }

  bench::heading("OVHD-B", "Overlay path latency vs direct fiber (§II-D)");
  bench::note("One-way propagation: multi-hop overlay route vs a hypothetical direct");
  bench::note("great-circle fiber between the sites (the best the native Internet");
  bench::note("could possibly do).");

  const auto map = topo::continental_us();
  const std::vector<std::pair<topo::NodeIndex, topo::NodeIndex>> pairs{
      {0, 9}, {0, 11}, {3, 11}, {2, 10}, {0, 7}, {4, 3}};
  exp::Experiment ex{opts};
  for (const auto& [a, b] : pairs) {
    const std::string label = map.cities[a].name + "-" + map.cities[b].name;
    exp::Json params = exp::Json::object();
    params["src"] = map.cities[a].name;
    params["dst"] = map.cities[b].name;
    ex.add_cell(label, std::move(params),
                [a, b](std::uint64_t seed) { return run_pair(a, b, seed); },
                /*reps_override=*/1);
  }
  const exp::Report report = ex.run();

  bench::Table t{{"pair", "direct ms", "overlay ms", "overhead", "hops"}, 14};
  t.print_header();
  for (const auto& [a, b] : pairs) {
    const auto& c = report.cell(map.cities[a].name + "-" + map.cities[b].name);
    t.cell(map.cities[a].name + "-" + map.cities[b].name);
    t.cell(c.scalar_mean("direct_ms"));
    t.cell(c.scalar_mean("overlay_ms"));
    t.cell(c.scalar_mean("overlay_ms") / c.scalar_mean("direct_ms"), "%.2fx");
    t.cell(static_cast<std::uint64_t>(c.scalar_mean("hops")));
    t.end_row();
  }
  bench::note("");
  bench::note("Expected shape: overlay paths cost ~1.0-1.3x the direct fiber; with");
  bench::note("<1 ms processing per intermediate node (see BM_Forward_* in OVHD-A,");
  bench::note("which measure the actual hot path in nanoseconds), the end-to-end");
  bench::note("overhead of the structured overlay is a few ms on a ~35-40 ms path.");

  return bench::write_report(report, opts) ? 0 : 1;
}
