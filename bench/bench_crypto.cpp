// CRYPTO — the intrusion-tolerant auth fast path in isolation (§IV-B).
//
// The per-hop cost of IT messaging is dominated by HMAC-SHA256 tags: every
// frame is verified against the ingress key and re-signed with the egress
// key. Two orthogonal optimizations make up the fast path:
//
//   * HMAC midstate caching (crypto::HmacKey / KeyTable::context): the two
//     key-pad block compressions (k^ipad, k^opad) are absorbed once per
//     peer; a short-message tag then costs 2 SHA-256 compressions instead
//     of 4 (theoretical 2.0x on one-block messages, e.g. the 23-byte
//     control-frame head).
//   * Runtime kernel dispatch (crypto::sha256_kernel): on x86-64 with the
//     SHA extensions the hardware compression kernel replaces the portable
//     scalar loop. Digests are bit-identical either way.
//
// Cells reconstruct the seed path as an ablation knob: a from-scratch HMAC
// per tag (fresh key-pad compressions, exactly what the stateless
// hmac_sha256 reference does), kernel-pinned so midstate and dispatch gains
// are measured separately. Throughputs are machine-dependent and recorded
// as timings (outside the deterministic report part); every cell also
// cross-checks digests/tags across paths as deterministic scalars, so the
// JSON asserts bit-equality on any machine.
#include <chrono>
#include <cstring>

#include "bench_common.hpp"
#include "crypto/keys.hpp"
#include "crypto/sha256.hpp"

namespace {

using namespace son;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

crypto::Key bench_key(std::uint64_t seed) {
  crypto::Key k{};
  for (std::size_t i = 0; i < k.size(); ++i) {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    k[i] = static_cast<std::uint8_t>(seed >> 56);
  }
  return k;
}

std::vector<std::uint8_t> bench_bytes(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    v[i] = static_cast<std::uint8_t>(seed >> 56);
  }
  return v;
}

// ---------- SHA-256 bulk throughput: scalar vs dispatched kernel -----------

exp::Metrics run_sha256(crypto::Sha256Kernel kernel, std::size_t buf_bytes,
                        std::size_t iters, std::uint64_t seed) {
  const auto buf = bench_bytes(buf_bytes, seed);
  crypto::Sha256 h{kernel};

  // Deterministic cross-check: this kernel's digest == the scalar reference.
  crypto::Sha256 ref{crypto::Sha256Kernel::kScalar};
  ref.update(std::span{buf});
  h.update(std::span{buf});
  const bool agree = h.finish() == ref.finish();

  h.reset();
  std::uint8_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    h.update(std::span{buf});
    sink ^= h.finish()[0];
    h.reset();
  }
  const double wall = seconds_since(t0);

  exp::Metrics m;
  m.scalar("digest_matches_scalar", agree ? 1.0 : 0.0);
  m.scalar("digest_sink", static_cast<double>(sink));  // defeats dead-code elim
  m.timing("mb_per_s",
           static_cast<double>(buf_bytes) * static_cast<double>(iters) / wall / 1e6);
  return m;
}

// ---------- HMAC tag throughput: seed path vs midstate, per kernel ----------

enum class TagPath {
  kSeed,      // from-scratch HMAC per tag (key-pad compressions every time)
  kMidstate,  // prebuilt HmacKey midstate, 2 compressions per short tag
};

/// Tags/s over a fixed message split as head||body (body may be empty).
/// The seed path is the stateless hmac_sha256 reference — both key-pad
/// compressions recomputed per tag, exactly what KeyTable::set_midstate(false)
/// falls back to — with the kernel pinned so midstate gain is isolated from
/// dispatch gain.
exp::Metrics run_tags(TagPath path, crypto::Sha256Kernel kernel, std::size_t head_bytes,
                      std::size_t body_bytes, std::size_t iters, std::uint64_t seed) {
  const auto key = bench_key(seed);
  const auto head = bench_bytes(head_bytes, seed * 3 + 1);
  const auto body = bench_bytes(body_bytes, seed * 5 + 2);
  const crypto::HmacKey prebuilt{std::span<const std::uint8_t>{key}, kernel};
  const std::span<const std::uint8_t> key_sp{key};

  // Deterministic cross-check: midstate tag == stateless reference tag over
  // the concatenated message, regardless of kernel.
  std::vector<std::uint8_t> concat = head;
  concat.insert(concat.end(), body.begin(), body.end());
  const bool agree =
      prebuilt.tag(std::span{head}, std::span{body}) ==
      crypto::hmac_tag(key_sp, std::span{concat});

  std::uint8_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    if (path == TagPath::kSeed) {
      sink ^= crypto::hmac_sha256(key_sp, std::span{head}, std::span{body}, kernel)[0];
    } else {
      sink ^= prebuilt.tag(std::span{head}, std::span{body})[0];
    }
  }
  const double wall = seconds_since(t0);

  exp::Metrics m;
  m.scalar("tag_matches_reference", agree ? 1.0 : 0.0);
  m.scalar("tag_sink", static_cast<double>(sink));
  m.timing("tags_per_s", static_cast<double>(iters) / wall);
  return m;
}

// ---------- Hash-once fan-out: re-sign one message toward K peers -----------

/// A node re-signing one message toward K peers. Seed path: per peer, build
/// the concatenated auth buffer and run a from-scratch HMAC (what per-peer
/// auth_bytes + stateless hmac did). Fast path: encode the head once into a
/// stack buffer and run K midstate HMACs streaming head||payload.
exp::Metrics run_fanout(bool fast, std::size_t fanout, std::size_t head_bytes,
                        std::size_t body_bytes, std::size_t iters, std::uint64_t seed) {
  const auto master = bench_key(seed);
  const auto n = static_cast<std::uint32_t>(fanout + 1);
  crypto::KeyTable table{master, /*self=*/0, n};
  crypto::KeyTable seed_table{master, /*self=*/0, n};
  seed_table.set_midstate(false);

  std::vector<crypto::MacContext> ctxs;
  for (std::uint32_t p = 1; p < n; ++p) ctxs.push_back(table.context(p));

  const auto head = bench_bytes(head_bytes, seed * 3 + 1);
  const auto body = bench_bytes(body_bytes, seed * 5 + 2);

  // Deterministic cross-check: both paths produce identical tags per peer.
  bool agree = true;
  for (std::uint32_t p = 1; p < n; ++p) {
    std::vector<std::uint8_t> concat = head;
    concat.insert(concat.end(), body.begin(), body.end());
    agree = agree && (ctxs[p - 1].sign(std::span{head}, std::span{body}) ==
                      seed_table.sign(p, std::span{concat}));
  }

  std::uint8_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    if (fast) {
      for (const auto& ctx : ctxs) {
        sink ^= ctx.sign(std::span{head}, std::span{body})[0];
      }
    } else {
      for (std::uint32_t p = 1; p < n; ++p) {
        std::vector<std::uint8_t> concat(head.size() + body.size());
        std::memcpy(concat.data(), head.data(), head.size());
        std::memcpy(concat.data() + head.size(), body.data(), body.size());
        sink ^= seed_table.sign(p, std::span{concat})[0];
      }
    }
  }
  const double wall = seconds_since(t0);

  exp::Metrics m;
  m.scalar("tags_match_seed_path", agree ? 1.0 : 0.0);
  m.scalar("tag_sink", static_cast<double>(sink));
  m.timing("resigns_per_s", static_cast<double>(iters) / wall);
  return m;
}

const char* path_label(TagPath p) { return p == TagPath::kSeed ? "seed" : "midstate"; }

std::string tag_cell_label(const char* msg, TagPath path, crypto::Sha256Kernel k) {
  return std::string{msg} + "/" + path_label(path) + "/" + crypto::to_string(k);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = exp::Options::parse(argc, argv, "crypto", 3, 9000);
  const std::size_t sha_iters = opts.quick ? 64 : 512;        // x 1 MiB hashed
  const std::size_t tag_iters = opts.quick ? 50'000 : 400'000;
  const std::size_t fan_iters = opts.quick ? 5'000 : 50'000;
  constexpr std::size_t kFanout = 8;
  constexpr std::size_t kMiB = 1 << 20;

  const bool shani = crypto::sha256_shani_supported();
  const crypto::Sha256Kernel dispatched = crypto::sha256_kernel();

  // Message shapes from the overlay: the 23-byte control-frame auth head
  // (hello/LSA/GSA frames; one SHA block including HMAC padding — the
  // midstate best case), the 64-byte data auth head alone, and a full
  // 64B + 1200B data frame (payload streamed as the body span).
  struct Shape {
    const char* label;
    std::size_t head, body;
  };
  const std::vector<Shape> shapes{
      {"control-23B", 23, 0}, {"data-head-64B", 64, 0}, {"data-64B+1200B", 64, 1200}};

  std::vector<crypto::Sha256Kernel> kernels{crypto::Sha256Kernel::kScalar};
  if (shani) kernels.push_back(crypto::Sha256Kernel::kShaNi);

  exp::Experiment ex{opts};
  for (const auto k : kernels) {
    exp::Json params = exp::Json::object();
    params["kernel"] = crypto::to_string(k);
    params["buf_bytes"] = static_cast<std::uint64_t>(kMiB);
    ex.add_cell(std::string{"sha256-1MiB/"} + crypto::to_string(k), std::move(params),
                [k, sha_iters](std::uint64_t seed) {
                  return run_sha256(k, kMiB, sha_iters, seed);
                });
  }
  for (const auto& s : shapes) {
    for (const auto path : {TagPath::kSeed, TagPath::kMidstate}) {
      for (const auto k : kernels) {
        exp::Json params = exp::Json::object();
        params["path"] = path_label(path);
        params["kernel"] = crypto::to_string(k);
        params["head_bytes"] = static_cast<std::uint64_t>(s.head);
        params["body_bytes"] = static_cast<std::uint64_t>(s.body);
        ex.add_cell(tag_cell_label(s.label, path, k), std::move(params),
                    [path, k, s, tag_iters](std::uint64_t seed) {
                      return run_tags(path, k, s.head, s.body, tag_iters, seed);
                    });
      }
    }
  }
  for (const bool fast : {false, true}) {
    exp::Json params = exp::Json::object();
    params["path"] = fast ? "serialize-once + midstate" : "per-peer serialize + seed HMAC";
    params["fanout"] = static_cast<std::uint64_t>(kFanout);
    ex.add_cell(std::string{"fanout-K8/"} + (fast ? "fast" : "seed"), std::move(params),
                [fast, fan_iters](std::uint64_t seed) {
                  return run_fanout(fast, kFanout, 64, 400, fan_iters, seed);
                });
  }
  const exp::Report report = ex.run();

  bench::heading("CRYPTO", "IT auth fast path: midstate caching + SHA-256 dispatch");
  bench::note("Dispatched kernel on this machine: %s (SHA-NI %s).",
              crypto::sha256_kernel_name(), shani ? "available" : "unavailable");
  bench::note("'seed' = from-scratch HMAC per tag (key-pad compressions recomputed,");
  bench::note("the seed implementation); 'midstate' = cached k^ipad/k^opad states.");
  bench::note("All paths produce bit-identical tags (asserted per cell below).");

  bench::note("");
  bench::note("SHA-256 bulk throughput (1 MiB messages):");
  bench::Table sha_t{{"kernel", "MB/s", "digest ok"}, 12};
  std::printf("%12s", "");
  sha_t.print_header();
  for (const auto k : kernels) {
    const auto& c = report.cell(std::string{"sha256-1MiB/"} + crypto::to_string(k));
    std::printf("%12s", crypto::to_string(k));
    sha_t.cell(c.timing_mean("mb_per_s"), "%.0f");
    sha_t.cell(c.scalar_mean("digest_matches_scalar") == 1.0 ? "yes" : "NO");
    sha_t.end_row();
  }

  bench::note("");
  bench::note("HMAC tag throughput by message shape (tags/s):");
  bench::Table tag_t{{"shape", "seed", "midstate", "gain", "dispatched", "total", "ok"}, 12};
  std::printf("%16s", "");
  tag_t.print_header();
  double control_midstate_gain = 0.0;
  for (const auto& s : shapes) {
    const double seed_scalar =
        report.cell(tag_cell_label(s.label, TagPath::kSeed, crypto::Sha256Kernel::kScalar))
            .timing_mean("tags_per_s");
    const double mid_scalar =
        report
            .cell(tag_cell_label(s.label, TagPath::kMidstate, crypto::Sha256Kernel::kScalar))
            .timing_mean("tags_per_s");
    const double mid_dispatched =
        report.cell(tag_cell_label(s.label, TagPath::kMidstate, dispatched))
            .timing_mean("tags_per_s");
    bool ok = true;
    for (const auto path : {TagPath::kSeed, TagPath::kMidstate}) {
      for (const auto k : kernels) {
        ok = ok && report.cell(tag_cell_label(s.label, path, k))
                           .scalar_mean("tag_matches_reference") == 1.0;
      }
    }
    if (std::string{s.label} == "control-23B") {
      control_midstate_gain = mid_scalar / seed_scalar;
    }
    std::printf("%16s", s.label);
    tag_t.cell(seed_scalar, "%.2e");
    tag_t.cell(mid_scalar, "%.2e");
    tag_t.cell(mid_scalar / seed_scalar, "%.2fx");
    tag_t.cell(mid_dispatched, "%.2e");
    tag_t.cell(mid_dispatched / seed_scalar, "%.2fx");
    tag_t.cell(ok ? "yes" : "NO");
    tag_t.end_row();
  }
  bench::note("");
  bench::note("'gain' isolates midstate caching (both scalar); 'total' stacks the");
  bench::note("dispatched kernel on top. One-block messages (control-23B) have the");
  bench::note("theoretical midstate ceiling of 2.0x (2 vs 4 compressions); the");
  bench::note("acceptance floor is 1.8x. Measured: %.2fx.", control_midstate_gain);

  bench::note("");
  bench::note("Hash-once fan-out: re-sign one 64B+400B message toward 8 peers.");
  bench::Table fan_t{{"path", "re-signs/s", "gain", "ok"}, 14};
  std::printf("%30s", "");
  fan_t.print_header();
  const double fan_seed = report.cell("fanout-K8/seed").timing_mean("resigns_per_s");
  for (const bool fast : {false, true}) {
    const auto& c = report.cell(std::string{"fanout-K8/"} + (fast ? "fast" : "seed"));
    std::printf("%30s", fast ? "serialize-once + midstate" : "per-peer serialize + seed");
    fan_t.cell(c.timing_mean("resigns_per_s"), "%.2e");
    fan_t.cell(c.timing_mean("resigns_per_s") / fan_seed, "%.2fx");
    fan_t.cell(c.scalar_mean("tags_match_seed_path") == 1.0 ? "yes" : "NO");
    fan_t.end_row();
  }

  return bench::write_report(report, opts) ? 0 : 1;
}
