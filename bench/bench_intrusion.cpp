// ITDISJ + ITFAIR — §IV-B intrusion-tolerant messaging claims.
//
// Part 1 (ITDISJ): "By using k node-disjoint paths, a source can protect
// against up to k-1 compromised nodes anywhere in the network... a source
// can use constrained flooding [which] ensures that messages are
// successfully delivered as long as at least one path of correct nodes
// exists between the source and destination."
//   Sweep f = 0..4 random compromised (blackholing) interior nodes and
//   measure delivery for link-state / 2-disjoint / 3-disjoint / flooding,
//   plus the redundancy cost (copies forwarded per message). Each
//   replication is one random compromise placement (--reps placements).
//
// Part 2 (ITFAIR): "Both Priority and Reliable messaging use fair buffer
// allocation and round-robin scheduling to ensure that a compromised source
// cannot consume the resources of other sources."
//   One attacker floods at 10x the fair rate through a rate-limited overlay
//   link shared with 4 correct sources; compare per-source goodput under a
//   naive shared-FIFO (best effort through a thin underlay pipe) vs the
//   IT-Priority fair scheduler.
//
// Part 3 (ITHOP): per-hop auth cost of IT forwarding — verify the arriving
//   tag against the ingress peer's key + re-sign toward the egress peer —
//   measured before/after the crypto fast path (HMAC midstate caching +
//   dispatched SHA-256 vs the seed from-scratch HMAC). Wall-clock, so the
//   ns/hop numbers are machine-dependent timings; the two paths' re-signed
//   tags are cross-checked bit-identical as a deterministic scalar.
#include <chrono>
#include <map>

#include "bench_common.hpp"
#include "client/traffic.hpp"
#include "crypto/sha256.hpp"
#include "overlay/network.hpp"

namespace {

using namespace son;
using namespace son::sim::literals;
using overlay::NodeId;
using overlay::RouteScheme;
using sim::Duration;

// ---------- Part 1: redundant dissemination vs compromised nodes -----------

struct Scheme {
  const char* label;
  RouteScheme scheme;
  std::uint8_t k;
};

const std::vector<Scheme> kSchemes{
    {"link-state (1 path)", RouteScheme::kLinkState, 1},
    {"2 disjoint paths", RouteScheme::kDisjointPaths, 2},
    {"3 disjoint paths", RouteScheme::kDisjointPaths, 3},
    {"constrained flooding", RouteScheme::kFlooding, 0},
};

/// One random compromise placement: delivery ratio + redundancy cost.
exp::Metrics run_disjoint_trial(RouteScheme scheme, std::uint8_t k, int f,
                                std::uint64_t seed) {
  sim::Simulator sim;
  overlay::GraphOptions gopts;
  auto fx = overlay::build_graph_fixture(sim, overlay::circulant_topology(12), gopts,
                                         sim::Rng{seed});
  auto& net = *fx.overlay;
  net.settle(3_s);

  constexpr NodeId kSrc = 0;
  constexpr NodeId kDst = 6;  // diametrically opposite on the ring
  // Choose f distinct compromised interior nodes.
  sim::Rng pick{seed * 31 + 2000 + static_cast<std::uint64_t>(f)};
  std::vector<NodeId> interior;
  for (NodeId n = 0; n < net.size(); ++n) {
    if (n != kSrc && n != kDst) interior.push_back(n);
  }
  pick.shuffle(interior);
  for (int i = 0; i < f; ++i) {
    net.node(interior[static_cast<std::size_t>(i)])
        .set_compromise(overlay::CompromiseBehavior::blackhole());
  }

  auto& src = net.node(kSrc).connect(49);
  auto& dst = net.node(kDst).connect(50);
  client::MeasuringSink sink{dst};
  overlay::ServiceSpec spec;
  spec.scheme = scheme;
  spec.num_paths = k;
  const int n_msgs = 50;
  std::uint64_t fwd_before = 0;
  for (NodeId n = 0; n < net.size(); ++n) fwd_before += net.node(n).stats().forwarded;
  for (int i = 0; i < n_msgs; ++i) {
    src.send(overlay::Destination::unicast(kDst, 50), overlay::make_payload(400), spec);
  }
  sim.run_for(2_s);
  std::uint64_t fwd_after = 0;
  for (NodeId n = 0; n < net.size(); ++n) fwd_after += net.node(n).stats().forwarded;

  exp::Metrics m;
  m.scalar("delivery_frac", sink.delivery_ratio(n_msgs));
  m.scalar("copies_per_msg", static_cast<double>(fwd_after - fwd_before) / n_msgs);
  return m;
}

std::string disj_label(const Scheme& s, int f) {
  return std::string{s.label} + "/f=" + std::to_string(f);
}

// ---------- Part 2: fair scheduling under a resource-consumption attack ------

/// Star topology: 5 source overlay nodes (0..4; node 4 is the attacker)
/// feed a relay (5) that forwards everything over one bottleneck overlay
/// link to the destination (6). Fairness in §IV-B is per SOURCE overlay
/// node, enforced at the relay's egress to the bottleneck.
exp::Metrics run_fairness(bool fair, Duration traffic_time, std::uint64_t seed) {
  sim::Simulator sim;
  sim::Rng rng{seed};
  net::Internet inet{sim, rng.fork(1)};
  const auto isp = inet.add_isp("one");
  std::vector<net::RouterId> routers;
  std::vector<net::HostId> hosts;
  for (int i = 0; i < 7; ++i) {
    routers.push_back(inet.add_router(isp, "r" + std::to_string(i)));
    hosts.push_back(inet.add_host("h" + std::to_string(i)));
    net::LinkConfig access;
    access.prop_delay = sim::Duration::microseconds(50);
    access.bandwidth_bps = 1e9;
    inet.attach_host(hosts.back(), routers.back(), access);
  }
  net::LinkConfig fat;
  fat.prop_delay = 2_ms;
  fat.bandwidth_bps = 1e9;
  for (int i = 0; i < 5; ++i) inet.add_link(routers[static_cast<std::size_t>(i)], routers[5], fat);
  net::LinkConfig bottleneck = fat;
  bottleneck.prop_delay = 5_ms;
  // FIFO case: the wire itself is the bottleneck (~1000 x 588B msgs/s).
  // Fair case: a fat wire; the IT egress pacer enforces the same 1000/s.
  bottleneck.bandwidth_bps = fair ? 1e9 : 1000.0 * (500 + 88) * 8;
  bottleneck.max_queue_delay = 50_ms;
  inet.add_link(routers[5], routers[6], bottleneck);

  topo::Graph g(7);
  for (topo::NodeIndex i = 0; i < 5; ++i) g.add_edge(i, 5, 2.0);
  g.add_edge(5, 6, 5.0);
  overlay::NodeConfig cfg;
  cfg.authenticate = fair;
  cfg.link_protocols.it_egress_msgs_per_sec = 1000;
  cfg.link_protocols.it_buffer_per_source = 32;
  overlay::OverlayNetwork net{sim, inet, g, hosts, cfg, rng.fork(2)};
  net.settle(2_s);

  overlay::ServiceSpec spec;
  spec.link_protocol =
      fair ? overlay::LinkProtocol::kITPriority : overlay::LinkProtocol::kBestEffort;

  auto& dst = net.node(6).connect(50);
  std::map<overlay::NodeId, std::uint64_t> got;
  dst.set_handler([&](const overlay::Message& m, Duration) { ++got[m.hdr.origin]; });

  std::vector<std::unique_ptr<client::CbrSender>> senders;
  for (overlay::NodeId s = 0; s < 4; ++s) {
    auto& c = net.node(s).connect(10);
    senders.push_back(std::make_unique<client::CbrSender>(
        sim, c,
        client::CbrSender::Options{overlay::Destination::unicast(6, 50), spec, 150, 500,
                                   sim.now(), sim.now() + traffic_time}));
  }
  auto& attacker = net.node(4).connect(10);
  senders.push_back(std::make_unique<client::CbrSender>(
      sim, attacker,
      client::CbrSender::Options{overlay::Destination::unicast(6, 50), spec, 5000, 500,
                                 sim.now(), sim.now() + traffic_time}));
  sim.run_for(traffic_time + 2_s);

  exp::Metrics m;
  std::uint64_t total = 0;
  for (const overlay::NodeId p : {0, 1, 2, 3, 4}) {
    m.scalar("src" + std::to_string(p) + "_msgs", static_cast<double>(got[p]));
    total += got[p];
  }
  m.scalar("total_msgs", static_cast<double>(total));
  return m;
}

// ---------- Part 3: per-hop auth cost, crypto fast path vs seed path --------

/// One settled authenticated transit node; time verify + re-sign per
/// forwarded message via the bench hook. kFast = midstate-cached MacContext
/// handles (the live path); kSeed = from-scratch HMAC with a per-frame key
/// table lookup (the pre-fast-path implementation, kept as the ablation).
exp::Metrics run_perhop(overlay::OverlayNode::BenchAuthPath path,
                        std::size_t payload_bytes, std::size_t iters,
                        std::uint64_t seed) {
  sim::Simulator sim;
  overlay::GraphOptions gopts;
  gopts.node.authenticate = true;
  auto fx = overlay::build_graph_fixture(sim, overlay::circulant_topology(12), gopts,
                                         sim::Rng{seed});
  fx.overlay->settle(3_s);

  auto& node = fx.overlay->node(4);
  overlay::Message m;
  m.hdr.origin = 0;
  m.hdr.dest = overlay::Destination::unicast(9, 50);
  m.hdr.origin_id = seed;
  m.hdr.scheme = overlay::RouteScheme::kLinkState;
  m.hdr.mask = 0b111111111111;
  m.payload = overlay::make_payload(payload_bytes);
  const overlay::LinkBit ingress = node.link_bits().front();
  const crypto::Tag in_auth = node.bench_make_arrival_tag(m, ingress);

  // Deterministic cross-check: both paths verify and produce the same tag.
  const auto fast =
      node.bench_forward_lookup(m, ingress, &in_auth,
                                overlay::OverlayNode::BenchAuthPath::kFast);
  const auto ablation =
      node.bench_forward_lookup(m, ingress, &in_auth,
                                overlay::OverlayNode::BenchAuthPath::kSeed);
  const bool agree = fast.verified && ablation.verified &&
                     fast.resigned == ablation.resigned && fast.egress == ablation.egress;

  std::uint8_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    sink ^= node.bench_forward_lookup(m, ingress, &in_auth, path).resigned[0];
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  exp::Metrics m2;
  m2.scalar("paths_bit_identical", agree ? 1.0 : 0.0);
  m2.scalar("tag_sink", static_cast<double>(sink));
  m2.timing("ns_per_hop", wall * 1e9 / static_cast<double>(iters));
  return m2;
}

std::string perhop_label(overlay::OverlayNode::BenchAuthPath path, std::size_t payload) {
  return std::string{"per-hop/"} +
         (path == overlay::OverlayNode::BenchAuthPath::kFast ? "fast" : "seed") + "/" +
         std::to_string(payload) + "B";
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = exp::Options::parse(argc, argv, "intrusion", 20, 7000);
  const int placements = opts.quick ? std::min(5, opts.effective_reps()) : 0;
  const Duration fair_time = opts.quick ? 4_s : 10_s;

  exp::Experiment ex{opts};
  for (const auto& s : kSchemes) {
    for (int f = 0; f <= 4; ++f) {
      exp::Json params = exp::Json::object();
      params["scheme"] = s.label;
      params["k"] = static_cast<std::uint64_t>(s.k);
      params["f"] = static_cast<std::int64_t>(f);
      ex.add_cell(disj_label(s, f), std::move(params),
                  [s, f](std::uint64_t seed) {
                    return run_disjoint_trial(s.scheme, s.k, f, seed);
                  },
                  placements);
    }
  }
  for (const bool fair : {false, true}) {
    exp::Json params = exp::Json::object();
    params["scheme"] = fair ? "IT-Priority" : "shared FIFO";
    params["fair"] = fair;
    ex.add_cell(fair ? "IT-Priority" : "shared FIFO", std::move(params),
                [fair, fair_time](std::uint64_t seed) {
                  return run_fairness(fair, fair_time, seed);
                },
                /*reps_override=*/1);  // deterministic single scenario
  }
  const std::size_t hop_iters = opts.quick ? 50'000 : 400'000;
  const std::vector<std::size_t> payloads{400, 1200};
  for (const std::size_t payload : payloads) {
    for (const auto path : {overlay::OverlayNode::BenchAuthPath::kSeed,
                            overlay::OverlayNode::BenchAuthPath::kFast}) {
      exp::Json params = exp::Json::object();
      params["path"] =
          path == overlay::OverlayNode::BenchAuthPath::kFast ? "fast" : "seed";
      params["payload_bytes"] = static_cast<std::uint64_t>(payload);
      params["sha256_kernel"] = crypto::sha256_kernel_name();
      ex.add_cell(perhop_label(path, payload), std::move(params),
                  [path, payload, hop_iters](std::uint64_t seed) {
                    return run_perhop(path, payload, hop_iters, seed);
                  },
                  /*reps_override=*/3);
    }
  }
  const exp::Report report = ex.run();

  bench::heading("ITDISJ",
                 "Redundant dissemination vs compromised overlay nodes (§IV-B)");
  bench::note("12-node circulant overlay C12(1,2) (vertex connectivity 4, so 3 node-");
  bench::note("disjoint paths exist between every pair — continental maps are typically");
  bench::note("only 2-connected coast-to-coast). f random interior nodes blackhole all");
  bench::note("transit data while behaving correctly in the control plane (stealthy).");
  bench::note("Node 0 -> node 6, 50 messages, %d random compromise sets per cell.",
              placements > 0 ? placements : opts.effective_reps());
  bench::note("'copies' = overlay transmissions per message (redundancy cost).");

  bench::Table t{{"scheme", "f=0", "f=1", "f=2", "f=3", "f=4", "copies"}, 13};
  std::printf("%22s", "");
  t.print_header();
  for (const auto& s : kSchemes) {
    std::printf("%22s", s.label);
    double copies = 0.0;
    for (int f = 0; f <= 4; ++f) {
      const auto& c = report.cell(disj_label(s, f));
      t.cell(100.0 * c.scalar_mean("delivery_frac"), "%.1f%%");
      copies = std::max(copies, c.scalar_mean("copies_per_msg"));
    }
    t.cell(copies, "%.1f");
    t.end_row();
  }
  bench::note("");
  bench::note("Expected shape: k disjoint paths tolerate f <= k-1 compromises (100%%)");
  bench::note("and degrade only when f >= k; flooding survives everything except");
  bench::note("partition of correct nodes, at the highest redundancy cost.");

  bench::heading("ITFAIR",
                 "Fair round-robin scheduling under a flooding source (§IV-B)");
  bench::note("Two overlay nodes, one overlay link able to carry ~1000 msg/s. 4 correct");
  bench::note("sources send 150 msg/s each; 1 compromised source floods at 5000 msg/s.");
  bench::note("'shared FIFO' = best-effort through a bandwidth-limited pipe;");
  bench::note("'IT-Priority' = per-source buffers + round-robin egress + HMAC auth.");

  bench::Table ft{{"scheme", "src1", "src2", "src3", "src4", "attacker", "total"}, 11};
  std::printf("%14s", "");
  ft.print_header();
  for (const bool fair : {false, true}) {
    const auto& c = report.cell(fair ? "IT-Priority" : "shared FIFO");
    std::printf("%14s", fair ? "IT-Priority" : "shared FIFO");
    for (const int p : {0, 1, 2, 3, 4}) {
      ft.cell(static_cast<std::uint64_t>(c.scalar_mean("src" + std::to_string(p) + "_msgs")));
    }
    ft.cell(static_cast<std::uint64_t>(c.scalar_mean("total_msgs")));
    ft.end_row();
  }
  bench::note("");
  bench::note("Expected shape: under the shared FIFO the attacker (33x each correct");
  bench::note("source's rate) grabs nearly every open queue slot and the correct");
  bench::note("sources starve almost completely; IT-Priority's per-source buffers and");
  bench::note("round-robin egress deliver the correct sources' full 150 msg/s each,");
  bench::note("and only the attacker is clamped to the leftover capacity.");

  bench::heading("ITHOP", "Per-hop IT auth cost: crypto fast path vs seed path");
  bench::note("One authenticated transit hop = verify the arriving tag (ingress peer's");
  bench::note("key) + re-sign toward the egress peer. 'seed' = per-frame key-table");
  bench::note("lookup + from-scratch HMAC (both key-pad compressions recomputed);");
  bench::note("'fast' = per-link MacContext handles resuming cached HMAC midstates on");
  bench::note("the dispatched SHA-256 kernel (%s here). Wall-clock ns, machine-",
              crypto::sha256_kernel_name());
  bench::note("dependent; tags are asserted bit-identical across paths.");

  bench::Table ht{{"payload", "seed ns/hop", "fast ns/hop", "speedup", "ok"}, 13};
  std::printf("%10s", "");
  ht.print_header();
  for (const std::size_t payload : payloads) {
    const auto& seed_c = report.cell(
        perhop_label(overlay::OverlayNode::BenchAuthPath::kSeed, payload));
    const auto& fast_c = report.cell(
        perhop_label(overlay::OverlayNode::BenchAuthPath::kFast, payload));
    const bool ok = seed_c.scalar_mean("paths_bit_identical") == 1.0 &&
                    fast_c.scalar_mean("paths_bit_identical") == 1.0;
    std::printf("%10s", (std::to_string(payload) + "B").c_str());
    ht.cell(seed_c.timing_mean("ns_per_hop"), "%.0f");
    ht.cell(fast_c.timing_mean("ns_per_hop"), "%.0f");
    ht.cell(seed_c.timing_mean("ns_per_hop") / fast_c.timing_mean("ns_per_hop"),
            "%.2fx");
    ht.cell(ok ? "yes" : "NO");
    ht.end_row();
  }
  bench::note("");
  bench::note("Acceptance floor: >= 2x end-to-end on SHA-NI hardware (midstate removes");
  bench::note("half the compressions, the hardware kernel accelerates the rest).");

  return bench::write_report(report, opts) ? 0 : 1;
}
