// FIG4 — Reproduces Figure 4 and the §IV-A claims for the NM-Strikes
// real-time recovery protocol (live broadcast-quality video).
//
// Paper claims to regenerate:
//   * "Timely delivery within about 200ms is critical" and "On the scale of
//     a continent with a 40ms propagation delay, the 200ms latency bound
//     allows about 160ms for the protocol to recover lost packets."
//   * N spaced requests x M spaced retransmissions "reduce the probability
//     that all of the requests are affected by the same correlated loss
//     event"; spacing is the key design choice (ablated below).
//   * "The overall cost of the NM-Strikes protocol is 1 + Mp."
//
// Setup: a 40 ms continental path as 4 overlay hops of 10 ms, with bursty
// (Gilbert-Elliott) loss on every fiber hop. Live video at 1000 pkt/s.
// Deadline: 200 ms one way.
#include "bench_common.hpp"
#include "client/traffic.hpp"
#include "overlay/network.hpp"
#include "overlay/realtime.hpp"

namespace {

using namespace son;
using namespace son::sim::literals;
using overlay::LinkProtocol;
using sim::Duration;

struct Config {
  const char* label;
  LinkProtocol proto;
  std::uint8_t n = 1;
  std::uint8_t m = 1;
  bool spread = true;
};

exp::Metrics run(const Config& cfg, double mean_bad_ms, Duration traffic_time,
                 std::uint64_t seed) {
  sim::Simulator sim;
  overlay::ChainOptions copts;
  copts.n_nodes = 5;  // 4 hops x 10 ms = 40 ms continent
  copts.hop_latency = 10_ms;
  copts.node.link_protocols.nm_spread = cfg.spread;
  auto fx = overlay::build_chain(sim, copts, sim::Rng{seed});

  net::GilbertElliottLoss::Params ge;
  ge.mean_good_time = 2_s;
  ge.mean_bad_time = Duration::from_millis_f(mean_bad_ms);
  ge.loss_good = 0.0005;
  ge.loss_bad = 0.75;
  std::uint64_t k = 0;
  for (const auto link : fx.hop_links) {
    const auto [a, b] = fx.internet->link_endpoints(link);
    fx.internet->link_dir(link, a).set_loss_model(
        net::make_gilbert_elliott(ge, sim::Rng{seed + 100 + k}));
    fx.internet->link_dir(link, b).set_loss_model(
        net::make_gilbert_elliott(ge, sim::Rng{seed + 200 + k}));
    ++k;
  }
  fx.overlay->settle(3_s);

  auto& src = fx.overlay->node(0).connect(100);
  auto& dst = fx.overlay->node(4).connect(200);
  client::MeasuringSink sink{dst};

  overlay::ServiceSpec spec;
  spec.scheme = overlay::RouteScheme::kDissemination;
  spec.custom_mask = fx.chain_mask();
  spec.link_protocol = cfg.proto;
  spec.deadline = 200_ms;
  spec.nm_requests = cfg.n;
  spec.nm_retransmissions = cfg.m;

  client::CbrSender sender{sim, src,
                           {overlay::Destination::unicast(4, 200), spec, 1000, 1200,
                            sim.now(), sim.now() + traffic_time}};
  sim.run_for(traffic_time + 5_s);

  // Cost: data+retransmission frames per hop, averaged over hops, per
  // message (the paper's sender->receiver side cost).
  double data_frames = 0.0;
  std::size_t hops = 0;
  for (std::size_t i = 0; i < fx.hop_overlay_links.size(); ++i) {
    auto* ep = dynamic_cast<overlay::RealtimeEndpointBase*>(
        fx.overlay->node(static_cast<overlay::NodeId>(i))
            .find_endpoint(fx.hop_overlay_links[i], cfg.proto));
    if (ep != nullptr) {
      data_frames +=
          static_cast<double>(ep->stats().data_sent + ep->stats().retransmissions_sent);
      ++hops;
    }
  }

  exp::Metrics m;
  m.scalar("delivered_frac", sink.delivery_ratio(sender.sent()));
  m.scalar("within_deadline_frac", sink.delivered_within(sender.sent(), 200_ms));
  m.samples("latency_ms").merge(sink.latencies_ms());
  m.scalar("cost", hops > 0 && sender.sent() > 0
                       ? data_frames / static_cast<double>(hops) /
                             static_cast<double>(sender.sent())
                       : 1.0);
  return m;
}

std::string cell_label(double bad_ms, const Config& cfg) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "bad=%.0fms/%s", bad_ms, cfg.label);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = exp::Options::parse(argc, argv, "fig4_nmstrikes", 1, 42);
  const Duration traffic_time = opts.quick ? 8_s : 30_s;

  bench::heading("FIG4", "NM-Strikes real-time recovery under bursty loss (Fig. 4, §IV-A)");
  bench::note("Topology: 40 ms continental path as 4 overlay hops of 10 ms.");
  bench::note("Loss: Gilbert-Elliott bursts (75%% loss while bad) on every fiber hop.");
  bench::note("Flow: 1000 pkt/s live video for %.0f s, deadline 200 ms one-way.",
              traffic_time.to_seconds_f());

  const std::vector<Config> configs{
      {"best-effort", LinkProtocol::kBestEffort, 0, 0, true},
      {"simple(1,1)", LinkProtocol::kRealtimeSimple, 1, 1, true},
      {"NM(2,2)", LinkProtocol::kRealtimeNM, 2, 2, true},
      {"NM(3,3)", LinkProtocol::kRealtimeNM, 3, 3, true},
      {"NM(3,3)-b2b", LinkProtocol::kRealtimeNM, 3, 3, false},  // ablation
  };
  const std::vector<double> burst_ms{20.0, 60.0};

  exp::Experiment ex{opts};
  for (const double bad_ms : burst_ms) {
    for (const auto& cfg : configs) {
      exp::Json params = exp::Json::object();
      params["mean_bad_ms"] = bad_ms;
      params["protocol"] = cfg.label;
      params["n"] = static_cast<std::uint64_t>(cfg.n);
      params["m"] = static_cast<std::uint64_t>(cfg.m);
      params["spread"] = cfg.spread;
      ex.add_cell(cell_label(bad_ms, cfg), std::move(params),
                  [cfg, bad_ms, traffic_time](std::uint64_t seed) {
                    return run(cfg, bad_ms, traffic_time, seed);
                  });
    }
  }
  const exp::Report report = ex.run();

  for (const double bad_ms : burst_ms) {
    const double avg_p = (2000.0 * 0.0005 + bad_ms * 0.75) / (2000.0 + bad_ms);
    std::printf("\n  Loss-burst duration: mean %.0f ms (avg loss %.2f%%)\n", bad_ms,
                100.0 * avg_p);
    bench::Table t{{"protocol", "in<=200ms", "delivered", "p99.9 ms", "cost", "1+Mp"}};
    t.print_header();
    for (const auto& cfg : configs) {
      const auto& c = report.cell(cell_label(bad_ms, cfg));
      t.cell(std::string{cfg.label});
      t.cell(100.0 * c.scalar_mean("within_deadline_frac"), "%.3f%%");
      t.cell(100.0 * c.scalar_mean("delivered_frac"), "%.3f%%");
      t.cell(c.samples("latency_ms").quantile(0.999));
      t.cell(c.scalar_mean("cost"), "%.4f");
      t.cell(cfg.proto == LinkProtocol::kRealtimeNM ? 1.0 + cfg.m * avg_p : 1.0 + avg_p,
             "%.4f");
      t.end_row();
    }
  }
  bench::note("");
  bench::note("Expected shape: best-effort loses the burst losses outright; simple(1,1)");
  bench::note("recovers isolated losses but fails inside bursts; NM with spacing pushes");
  bench::note("timely delivery to ~100%%; back-to-back (b2b) ablation shows spacing is");
  bench::note("what defeats correlated loss. Measured cost tracks 1 + Mp (requests only");
  bench::note("fire on actual gaps, so the effective M*p stays below the worst case).");

  return bench::write_report(report, opts) ? 0 : 1;
}
