// CHURN — overlay membership maintenance under node churn.
//
// The paper's overlay is provisioned as a fixed set of sites, but daemons
// crash, recover and rejoin. This bench measures the three things that make
// churn survivable:
//   (a) DETECT+REPAIR: a relay on a live flow's path crash-stops; the
//       delivery gap at the receiver is hello-based detection plus the LSA
//       flood and iSPF repair — compared against the NM-Strikes-style
//       timeliness bound hello_interval * (miss_threshold + 1) + a flood/
//       reroute margin.
//   (b) STABILIZATION vs churn rate: random crash-recover cycles at R
//       cycles/sec for a window; after the last recovery, the time until
//       every node again reaches every other (full pairwise reachability)
//       and every membership table sees the whole overlay alive.
//   (c) PARTITION-THEN-HEAL: crash a vertex cut (splitting the overlay),
//       verify intra-side delivery continues, recover the cut, and measure
//       how long the overlay takes to re-form end-to-end.
//   (d) SHARD DIGEST: the same churned scenario on the sharded kernel at 1
//       worker and at --shards workers must produce the identical delivery
//       digest — churn events ride the control-sim path, so the worker
//       count stays a pure wall-clock knob.
//
// --churn R[,M] overrides the stabilization sweep with a single cell at
// rate R and spacing model M.
#include <algorithm>
#include <cmath>

#include "bench_common.hpp"
#include "client/traffic.hpp"
#include "net/failures.hpp"
#include "overlay/churn.hpp"
#include "overlay/network.hpp"
#include "overlay/sharded.hpp"

namespace {

using namespace son;
using namespace son::sim::literals;
using sim::Duration;
using sim::TimePoint;

/// Membership-enabled node config shared by every cell: origins silent past
/// 2.5 s (evidence normally arrives every <= 1 s via state refresh) are
/// evicted on the sweep.
overlay::NodeConfig churn_node_config() {
  overlay::NodeConfig cfg;
  cfg.dead_origin_timeout = 2500_ms;
  return cfg;
}

/// (a) Crash the relay under a live 0 -> 5 flow on the circulant overlay and
/// measure the receiver-side delivery gap vs the detection bound.
exp::Metrics run_detect(Duration run_for, std::uint64_t seed) {
  sim::Simulator sim;
  overlay::GraphOptions gopts;
  gopts.node = churn_node_config();
  auto fx = overlay::build_graph_fixture(sim, overlay::circulant_topology(10), gopts,
                                         sim::Rng{seed});
  fx.overlay->settle(3_s);

  auto& src = fx.overlay->node(0).connect(40);
  auto& dst = fx.overlay->node(5).connect(41);
  std::vector<double> arrivals;
  client::MeasuringSink sink{dst};
  sink.on_message([&](const overlay::Message&, Duration) {
    arrivals.push_back(sim.now().to_seconds_f());
  });

  overlay::ServiceSpec spec;  // link-state: the rerouting path under test
  const TimePoint t0 = sim.now();
  client::CbrSender sender{sim, src,
                           {overlay::Destination::unicast(5, 41), spec, 500.0, 400,
                            t0, t0 + run_for}};

  // Crash the CURRENT first-hop relay at t0+5s (resolved at crash time, so
  // the victim is on the path in use, whatever the weights made it).
  overlay::ChurnScript churn{*fx.overlay};
  overlay::NodeId victim = overlay::kInvalidNode;
  sim.schedule_at(t0 + 5_s, [&]() {
    const overlay::LinkBit nh = fx.overlay->node(0).router().next_hop(5);
    const auto& e = fx.overlay->designed_topology().edge(nh);
    victim = static_cast<overlay::NodeId>(e.u == 0 ? e.v : e.u);
    fx.overlay->node(victim).set_crashed(true);
  });
  sim.run_until(t0 + run_for);

  double max_gap_ms = 0.0;
  double prev = t0.to_seconds_f();
  for (const double a : arrivals) {
    max_gap_ms = std::max(max_gap_ms, (a - prev) * 1000.0);
    prev = a;
  }
  const auto& cfg = churn_node_config();
  // Detection: the neighbors declare the victim's channels dead after
  // miss_threshold consecutive losses, i.e. within (miss_threshold + 1)
  // hello intervals of the crash; add a flood + iSPF + in-flight margin.
  const double bound_ms =
      cfg.hello_interval.to_millis_f() * (cfg.hello_miss_threshold + 1) + 300.0;
  exp::Metrics m;
  m.scalar("max_gap_ms", max_gap_ms);
  m.scalar("bound_ms", bound_ms);
  m.scalar("within_bound", max_gap_ms <= bound_ms ? 1.0 : 0.0);
  m.scalar("delivered", static_cast<double>(sink.received()));
  return m;
}

/// (b) Random churn at `rate` cycles/sec for `window`, then measure the time
/// to full stabilization (pairwise reachability + complete membership).
exp::Metrics run_stab(double rate, overlay::ChurnModel model, Duration window,
                      std::uint64_t seed) {
  sim::Simulator sim;
  overlay::GraphOptions gopts;
  gopts.node = churn_node_config();
  auto fx = overlay::build_graph_fixture(sim, overlay::circulant_topology(10), gopts,
                                         sim::Rng{seed});
  fx.overlay->settle(3_s);
  const TimePoint t0 = sim.now();
  const Duration down_for = 4_s;  // > dead_origin_timeout: departures are real

  overlay::ChurnScript churn{*fx.overlay};
  overlay::ChurnScript::RandomChurnConfig ccfg;
  ccfg.from = t0;
  ccfg.until = t0 + window;
  ccfg.events_per_sec = rate;
  ccfg.down_for = down_for;
  ccfg.model = model;
  ccfg.seed = seed;
  const std::size_t cycles = churn.random_churn(ccfg);

  // After the last possible recovery, poll until the overlay is whole again:
  // every pair mutually reachable and every membership table full.
  const std::size_t n = fx.overlay->size();
  const TimePoint churn_end = t0 + window + down_for;
  const TimePoint cap = churn_end + 30_s;
  double stab_ms = -1.0;
  std::function<void()> poll = [&]() {
    bool whole = true;
    for (overlay::NodeId i = 0; i < n && whole; ++i) {
      if (fx.overlay->node(i).membership().alive_count() != n) whole = false;
      for (overlay::NodeId j = 0; j < n && whole; ++j) {
        if (i != j && !std::isfinite(fx.overlay->node(i).router().path_cost_to(j))) {
          whole = false;
        }
      }
    }
    if (whole) {
      stab_ms = (sim.now() - churn_end).to_millis_f();
      return;
    }
    if (sim.now() < cap) sim.schedule(50_ms, poll);
  };
  sim.schedule_at(churn_end, poll);
  sim.run_until(cap);

  std::uint64_t evictions = 0;
  std::uint64_t stale_drops = 0;
  std::uint64_t restarts_seen = 0;
  for (overlay::NodeId i = 0; i < n; ++i) {
    const auto& s = fx.overlay->node(i).stats();
    evictions += s.origin_evictions;
    stale_drops += s.stale_incarnation_drops;
    restarts_seen += s.peer_restarts_seen;
  }
  exp::Metrics m;
  m.scalar("stabilization_ms", stab_ms < 0 ? (cap - churn_end).to_millis_f() : stab_ms);
  m.scalar("stabilized", stab_ms >= 0 ? 1.0 : 0.0);
  m.scalar("cycles", static_cast<double>(cycles));
  m.scalar("origin_evictions", static_cast<double>(evictions));
  m.scalar("stale_incarnation_drops", static_cast<double>(stale_drops));
  m.scalar("peer_restarts_seen", static_cast<double>(restarts_seen));
  return m;
}

/// (c) Crash the vertex cut {4, 5, 8, 9} of C_10(1, 2) — splitting {0..3}
/// from {6, 7} — then recover it and measure the end-to-end re-form time.
exp::Metrics run_partition(std::uint64_t seed) {
  sim::Simulator sim;
  overlay::GraphOptions gopts;
  gopts.node = churn_node_config();
  auto fx = overlay::build_graph_fixture(sim, overlay::circulant_topology(10), gopts,
                                         sim::Rng{seed});
  fx.overlay->settle(3_s);
  const TimePoint t0 = sim.now();

  auto& src = fx.overlay->node(0).connect(40);
  overlay::ServiceSpec spec;
  // Cross-side flow 0 -> 7: blackholed for the whole partition.
  auto& cross_dst = fx.overlay->node(7).connect(41);
  std::vector<double> cross_arrivals;
  client::MeasuringSink cross_sink{cross_dst};
  cross_sink.on_message([&](const overlay::Message&, Duration) {
    cross_arrivals.push_back(sim.now().to_seconds_f());
  });
  client::CbrSender cross{sim, src,
                          {overlay::Destination::unicast(7, 41), spec, 200.0, 300,
                           t0, t0 + 30_s}};
  // Intra-side flow 0 -> 3: must keep flowing while partitioned.
  auto& intra_dst = fx.overlay->node(3).connect(42);
  client::MeasuringSink intra_sink{intra_dst};
  client::CbrSender intra{sim, fx.overlay->node(0).connect(43),
                          {overlay::Destination::unicast(3, 42), spec, 200.0, 300,
                           t0, t0 + 30_s}};

  overlay::ChurnScript churn{*fx.overlay};
  const TimePoint cut_at = t0 + 5_s;
  const TimePoint heal_at = t0 + 12_s;  // > dead_origin_timeout: real eviction
  for (const overlay::NodeId v : {4, 5, 8, 9}) {
    churn.crash(cut_at, static_cast<overlay::NodeId>(v));
    churn.recover(heal_at, static_cast<overlay::NodeId>(v));
  }
  sim.run_until(t0 + 30_s);

  // Re-form time: first cross-side delivery after the heal.
  const double heal_s = heal_at.to_seconds_f();
  double reform_ms = -1.0;
  for (const double a : cross_arrivals) {
    if (a >= heal_s) {
      reform_ms = (a - heal_s) * 1000.0;
      break;
    }
  }
  const double intra_expected = 200.0 * 30.0;
  exp::Metrics m;
  m.scalar("reform_ms", reform_ms < 0 ? 30'000.0 : reform_ms);
  m.scalar("reformed", reform_ms >= 0 ? 1.0 : 0.0);
  m.scalar("intra_delivery_ratio",
           static_cast<double>(intra_sink.received()) / intra_expected);
  m.scalar("cross_delivered", static_cast<double>(cross_sink.received()));
  return m;
}

/// (d) The churned sharded scenario: continental map, IT flows, random churn
/// through the control-sim path. Returns the per-node delivery digest folded
/// in node order — must be identical for every worker count.
exp::Metrics run_sharded_churn(unsigned workers, Duration window, std::uint64_t seed) {
  overlay::ShardedMapOptions opts;
  opts.workers = workers;
  opts.underlay.backbone_loss = 0.01;
  opts.net.convergence_delay = 1_s;
  opts.node = churn_node_config();
  auto fx = overlay::build_sharded_map(topo::continental_us(), opts, seed);

  const std::size_t n = fx.underlay.hosts.size();
  std::vector<std::uint64_t> hash(n, 1469598103934665603ULL);
  const auto mix = [](std::uint64_t& h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  for (std::size_t i = 0; i < n; ++i) {
    auto& ep = fx.overlay->node(static_cast<overlay::NodeId>(i)).connect(200);
    ep.set_handler([&hash, &mix, i](const overlay::Message& msg, Duration lat) {
      mix(hash[i], msg.hdr.origin_id);
      mix(hash[i], static_cast<std::uint64_t>(lat.ns()));
    });
  }

  fx.settle(3_s);
  const TimePoint t0 = fx.kernel->now();

  struct Flow {
    overlay::ClientEndpoint& src;
    sim::Simulator& sim;
    overlay::Destination dest;
    overlay::ServiceSpec spec;
    TimePoint stop;
    void tick() {
      if (sim.now() >= stop) return;
      src.send(dest, overlay::make_payload(300), spec);
      sim.schedule(5_ms, [this]() { tick(); });
    }
  };
  std::vector<std::unique_ptr<Flow>> flows;
  for (std::size_t i = 0; i < 6; ++i) {
    auto& fsim = fx.node_sim(static_cast<overlay::NodeId>(i));
    overlay::ServiceSpec spec;
    spec.link_protocol = (i % 2 == 0) ? overlay::LinkProtocol::kITPriority
                                      : overlay::LinkProtocol::kBestEffort;
    flows.push_back(std::make_unique<Flow>(
        Flow{fx.overlay->node(static_cast<overlay::NodeId>(i)).connect(100), fsim,
             overlay::Destination::unicast(static_cast<overlay::NodeId>((i + n / 2) % n),
                                           200),
             spec, t0 + window}));
    fsim.schedule_at(t0 + sim::Duration::microseconds(173 * (i + 1)),
                     [f = flows.back().get()]() { f->tick(); });
  }

  // Churn through the control-sim path (round barriers), so workers=1 and
  // workers=K replay the identical event sequence. Node 0 is spared: a flow
  // source that restarts would stop ticking (its endpoint state resets).
  overlay::ChurnScript churn{*fx.overlay};
  overlay::ChurnScript::RandomChurnConfig ccfg;
  ccfg.from = t0 + 500_ms;
  ccfg.until = t0 + window;
  ccfg.events_per_sec = 1.0;
  ccfg.down_for = 3_s;
  ccfg.seed = seed;
  ccfg.spare = 0;
  const std::size_t cycles = churn.random_churn(ccfg);

  fx.kernel->run_until(t0 + window + 5_s);

  std::uint64_t folded = 1469598103934665603ULL;
  for (std::size_t i = 0; i < n; ++i) mix(folded, hash[i]);
  std::uint64_t evictions = 0;
  for (std::size_t i = 0; i < n; ++i) {
    evictions += fx.overlay->node(static_cast<overlay::NodeId>(i)).stats().origin_evictions;
  }
  exp::Metrics m;
  m.scalar("digest32", static_cast<double>((folded >> 32) ^ (folded & 0xFFFFFFFFu)));
  m.scalar("cycles", static_cast<double>(cycles));
  m.scalar("origin_evictions", static_cast<double>(evictions));
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = exp::Options::parse(argc, argv, "churn", 1, 1);
  const Duration detect_run = opts.quick ? 12_s : 20_s;
  const Duration stab_window = opts.quick ? 6_s : 15_s;
  const Duration shard_window = opts.quick ? 4_s : 8_s;

  bench::heading("CHURN", "Membership maintenance under node churn (join/leave/crash-recover)");
  bench::note("Overlay: C_10(1,2) circulant (vertex connectivity 4); hellos 100 ms,");
  bench::note("3 misses to declare a channel dead; dead-origin timeout 2.5 s.");

  std::vector<double> rates{0.5, 1.0, 2.0};
  overlay::ChurnModel model = overlay::ChurnModel::kPoisson;
  if (opts.churn_rate > 0.0) {
    rates = {opts.churn_rate};
    model = *overlay::churn_model_from_string(opts.churn_model);
  }

  exp::Experiment ex{opts};
  {
    exp::Json params = exp::Json::object();
    params["scenario"] = "detect_repair";
    ex.add_cell("detect+repair", std::move(params),
                [detect_run](std::uint64_t seed) { return run_detect(detect_run, seed); });
  }
  for (const double rate : rates) {
    exp::Json params = exp::Json::object();
    params["scenario"] = "stabilization";
    params["rate"] = rate;
    params["model"] = overlay::to_string(model);
    char label[48];
    std::snprintf(label, sizeof label, "stabilize @%.2g/s", rate);
    ex.add_cell(label, std::move(params), [rate, model, stab_window](std::uint64_t seed) {
      return run_stab(rate, model, stab_window, seed);
    });
  }
  {
    exp::Json params = exp::Json::object();
    params["scenario"] = "partition_heal";
    ex.add_cell("partition+heal", std::move(params),
                [](std::uint64_t seed) { return run_partition(seed); });
  }
  const unsigned shard_workers = std::max(2u, opts.resolved_shards());
  for (const unsigned w : {1u, shard_workers}) {
    exp::Json params = exp::Json::object();
    params["scenario"] = "shard_digest";
    params["workers"] = static_cast<double>(w);
    char label[48];
    std::snprintf(label, sizeof label, "shard digest w%u", w);
    ex.add_cell(label, std::move(params), [w, shard_window](std::uint64_t seed) {
      return run_sharded_churn(w, shard_window, seed);
    });
  }
  const exp::Report report = ex.run();

  {
    const auto& c = report.cell("detect+repair");
    bench::Table t{{"scenario", "max gap ms", "bound ms", "within", "delivered"}, 14};
    t.print_header();
    t.cell(std::string{"detect+repair"});
    t.cell(c.scalar_mean("max_gap_ms"), "%.0f");
    t.cell(c.scalar_mean("bound_ms"), "%.0f");
    t.cell(std::string{c.scalar_mean("within_bound") >= 1.0 ? "yes" : "NO"});
    t.cell(static_cast<std::uint64_t>(c.scalar_mean("delivered")));
    t.end_row();
  }
  bench::note("");
  {
    bench::Table t{{"churn rate", "stabilize ms", "cycles", "evictions", "restarts seen"},
                   14};
    t.print_header();
    for (const double rate : rates) {
      char label[48];
      std::snprintf(label, sizeof label, "stabilize @%.2g/s", rate);
      const auto& c = report.cell(label);
      t.cell(std::string{label + 10});
      t.cell(c.scalar_mean("stabilization_ms"), "%.0f");
      t.cell(static_cast<std::uint64_t>(c.scalar_mean("cycles")));
      t.cell(static_cast<std::uint64_t>(c.scalar_mean("origin_evictions")));
      t.cell(static_cast<std::uint64_t>(c.scalar_mean("peer_restarts_seen")));
      t.end_row();
    }
  }
  bench::note("");
  {
    const auto& c = report.cell("partition+heal");
    bench::Table t{{"scenario", "reform ms", "intra ratio", "cross delivered"}, 16};
    t.print_header();
    t.cell(std::string{"partition+heal"});
    t.cell(c.scalar_mean("reform_ms"), "%.0f");
    t.cell(c.scalar_mean("intra_delivery_ratio"), "%.3f");
    t.cell(static_cast<std::uint64_t>(c.scalar_mean("cross_delivered")));
    t.end_row();
  }
  bench::note("");
  {
    char l1[48], lk[48];
    std::snprintf(l1, sizeof l1, "shard digest w%u", 1u);
    std::snprintf(lk, sizeof lk, "shard digest w%u", shard_workers);
    const double d1 = report.cell(l1).scalar_mean("digest32");
    const double dk = report.cell(lk).scalar_mean("digest32");
    bench::Table t{{"workers", "digest32", "cycles", "evictions"}, 14};
    t.print_header();
    for (const char* l : {l1, lk}) {
      const auto& c = report.cell(l);
      t.cell(std::string{l + 13});
      t.cell(static_cast<std::uint64_t>(c.scalar_mean("digest32")));
      t.cell(static_cast<std::uint64_t>(c.scalar_mean("cycles")));
      t.cell(static_cast<std::uint64_t>(c.scalar_mean("origin_evictions")));
      t.end_row();
    }
    bench::note("shard digests equal across worker counts: %s",
                d1 == dk ? "yes" : "NO — DETERMINISM VIOLATION");
  }

  bench::note("");
  bench::note("Expected shape: detection+repair inside the hello bound; stabilization");
  bench::note("grows with churn rate but stays seconds-scale (state refresh re-floods);");
  bench::note("intra-side delivery rides through the partition; shard digests match.");

  return bench::write_report(report, opts) ? 0 : 1;
}
