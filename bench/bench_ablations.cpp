// ABLATIONS — the design choices DESIGN.md calls out (✦), each isolated:
//
//   A. Loss-aware routing cost (lat + rtt*p/(1-p)) vs raw-latency routing:
//      does the overlay route AROUND a lossy-but-short link?
//   B. Out-of-order forwarding in the Reliable Data Link vs holding for
//      order at every hop (§III-A's smoothness argument).
//   C. Hello interval: failure-detection (and thus rerouting) time vs
//      control-plane overhead.
//
// (The NM-Strikes spacing ablation lives in bench_fig4_nmstrikes; the
// fairness-scheduling ablation in bench_intrusion.)
#include <algorithm>

#include "bench_common.hpp"
#include "client/traffic.hpp"
#include "overlay/network.hpp"

namespace {

using namespace son;
using namespace son::sim::literals;
using overlay::LinkProtocol;
using overlay::RouteScheme;
using sim::Duration;
using sim::TimePoint;

// ---- A: loss-aware routing metric ------------------------------------------

void ablation_cost_metric() {
  bench::heading("ABL-COST", "Loss-aware routing metric vs raw latency");
  bench::note("Triangle: direct 0->1 link of 10 ms that turns 30%% lossy at t=5 s;");
  bench::note("detour 0->2->1 of 7+7 ms stays clean. Best-effort flow 0->1.");
  bench::note("Metric ablated: expected latency lat + rtt*p/(1-p) vs latency only.");

  bench::Table t{{"metric", "delivered", "del. after t=5s", "routed via"}, 18};
  t.print_header();
  for (const bool loss_aware : {true, false}) {
    sim::Simulator sim;
    topo::Graph g(3);
    g.add_edge(0, 1, 10.0);  // bit 0: direct
    g.add_edge(0, 2, 7.0);   // bit 1
    g.add_edge(2, 1, 7.0);   // bit 2
    overlay::GraphOptions gopts;
    gopts.node.loss_aware_routing = loss_aware;
    auto fx = overlay::build_graph_fixture(sim, g, gopts, sim::Rng{42});
    fx.overlay->settle(3_s);

    // Make the direct fiber 30% lossy from t=5 s on.
    const auto [a, b] = fx.internet->link_endpoints(fx.fiber[0]);
    fx.internet->link_dir(fx.fiber[0], a)
        .add_forced_loss_window(TimePoint::zero() + 5_s, TimePoint::max(), 0.3);
    fx.internet->link_dir(fx.fiber[0], b)
        .add_forced_loss_window(TimePoint::zero() + 5_s, TimePoint::max(), 0.3);

    auto& src = fx.overlay->node(0).connect(1);
    auto& dst = fx.overlay->node(1).connect(2);
    client::MeasuringSink sink{dst};
    std::uint64_t after_cut_recv = 0;
    sink.on_message([&](const overlay::Message& m, Duration) {
      if (m.hdr.origin_time >= TimePoint::zero() + 7_s) ++after_cut_recv;
    });
    client::CbrSender sender{sim, src,
                             {overlay::Destination::unicast(1, 2), overlay::ServiceSpec{},
                              500, 300, sim.now(), sim.now() + 17_s}};
    sim.run_for(20_s);
    const std::uint64_t after_cut_sent = 500 * 13;  // t in [7s, 20s)

    const overlay::LinkBit nh = fx.overlay->node(0).router().next_hop(1);
    t.cell(std::string{loss_aware ? "loss-aware" : "latency-only"});
    t.cell(100.0 * sink.delivery_ratio(sender.sent()), "%.2f%%");
    t.cell(100.0 * static_cast<double>(after_cut_recv) /
               static_cast<double>(after_cut_sent),
           "%.2f%%");
    t.cell(std::string{nh == 0 ? "direct (lossy)" : "detour (clean)"});
    t.end_row();
  }
  bench::note("");
  bench::note("Expected shape: the loss-aware metric reroutes onto the clean detour");
  bench::note("(~100%% delivery after the onset); latency-only keeps ~70%%.");
}

// ---- B: out-of-order forwarding ---------------------------------------------

void ablation_ooo_forwarding() {
  bench::heading("ABL-OOO", "Out-of-order forwarding vs hold-for-order at every hop");
  bench::note("5-hop 10 ms chain, 2%% loss per hop, Reliable Data Link, 1000 pkt/s,");
  bench::note("ordered delivery at the destination in both cases. The design forwards");
  bench::note("out of order and reorders ONLY at the destination (§III-A).");

  bench::Table t{{"forwarding", "p50 ms", "p90 ms", "p99 ms", "max ms", "jitter"}, 14};
  t.print_header();
  for (const bool ooo : {true, false}) {
    sim::Simulator sim;
    overlay::ChainOptions opts;
    opts.n_nodes = 6;
    opts.hop_latency = 10_ms;
    opts.node.link_protocols.reliable_ooo_forwarding = ooo;
    auto fx = overlay::build_chain(sim, opts, sim::Rng{77});
    for (const auto link : fx.hop_links) {
      const auto [a, b] = fx.internet->link_endpoints(link);
      fx.internet->link_dir(link, a).set_loss_model(net::make_bernoulli(0.02));
      fx.internet->link_dir(link, b).set_loss_model(net::make_bernoulli(0.02));
    }
    fx.overlay->settle(3_s);

    auto& src = fx.overlay->node(0).connect(1);
    auto& dst = fx.overlay->node(5).connect(2);
    client::MeasuringSink sink{dst};
    overlay::ServiceSpec spec;
    spec.scheme = RouteScheme::kDissemination;
    spec.custom_mask = fx.chain_mask();
    spec.link_protocol = LinkProtocol::kReliable;
    spec.ordered = true;
    client::CbrSender sender{sim, src,
                             {overlay::Destination::unicast(5, 2), spec, 1000, 1200,
                              sim.now(), sim.now() + 15_s}};
    sim.run_for(25_s);

    sim::OnlineStats on;
    for (const double v : sink.latencies_ms().sorted_values()) on.add(v);
    t.cell(std::string{ooo ? "out-of-order" : "hold-for-order"});
    t.cell(sink.latencies_ms().quantile(0.5));
    t.cell(sink.latencies_ms().quantile(0.9));
    t.cell(sink.latencies_ms().quantile(0.99));
    t.cell(sink.latencies_ms().max());
    t.cell(on.stddev(), "%.3f");
    t.end_row();
  }
  bench::note("");
  bench::note("Expected shape: holding for order at every hop stacks head-of-line");
  bench::note("blocking hop after hop — the tail and jitter inflate well beyond the");
  bench::note("out-of-order design's.");
}

// ---- C: hello interval ---------------------------------------------------------

void ablation_hello_interval() {
  bench::heading("ABL-HELLO", "Failure detection time vs monitoring overhead");
  bench::note("US overlay, NYC->LAX at 500 pkt/s; both ISPs' fiber under the in-use");
  bench::note("link cut mid-run. Detection = miss_threshold x interval, so the outage");
  bench::note("scales with the hello interval; so does hello traffic per link.");

  bench::Table t{{"hello ms", "max gap ms", "lost msgs", "ctl frames/s/node"}, 18};
  t.print_header();
  for (const std::int64_t hello_ms : {50, 100, 200, 500}) {
    sim::Simulator sim;
    net::Internet inet{sim, sim::Rng{2}};
    const auto map = topo::continental_us();
    const auto u = topo::build_dual_isp(inet, map, topo::DualIspOptions{});
    overlay::NodeConfig cfg;
    cfg.hello_interval = Duration::milliseconds(hello_ms);
    overlay::OverlayNetwork net{sim, inet, map, u, cfg, sim::Rng{3}};
    net.settle(3_s);

    auto& src = net.node(0).connect(49);
    auto& dst = net.node(9).connect(50);
    std::vector<double> arrivals;
    client::MeasuringSink sink{dst};
    sink.on_message([&](const overlay::Message&, Duration) {
      arrivals.push_back(sim.now().to_seconds_f());
    });
    overlay::ServiceSpec spec;
    client::CbrSender sender{sim, src,
                             {overlay::Destination::unicast(9, 50), spec, 500, 400,
                              sim.now(), sim.now() + 20_s}};
    const std::uint64_t frames_before = net.node(0).stats().frames_sent;
    sim.schedule(5_s, [&]() {
      const overlay::LinkBit nh = net.node(0).router().next_hop(9);
      inet.set_link_up(u.links_a[nh], false);
      inet.set_link_up(u.links_b[nh], false);
    });
    sim.run_for(22_s);

    double max_gap = 0.0, prev = 3.0;
    for (const double a : arrivals) {
      max_gap = std::max(max_gap, a - prev);
      prev = a;
    }
    const double ctl_rate =
        static_cast<double>(net.node(0).stats().frames_sent - frames_before) / 22.0;
    t.cell(static_cast<std::uint64_t>(hello_ms));
    t.cell(max_gap * 1000.0, "%.0f");
    t.cell(sender.sent() - sink.received());
    t.cell(ctl_rate, "%.0f");
    t.end_row();
  }
  bench::note("");
  bench::note("Expected shape: outage ~= 5 x hello interval (3 expiries, each armed an");
  bench::note("interval apart) + flood + reroute; overhead scales inversely. 100 ms is");
  bench::note("the sweet spot the deployments use: sub-second recovery at trivial cost.");
}

// ---- D: proactive FEC (extension protocol) vs reactive recovery ----------------

void ablation_fec_vs_reactive() {
  bench::heading("EXT-FEC",
                 "Proactive XOR FEC (plug-in extension) vs reactive NM recovery");
  bench::note("The Fig. 2 architecture 'facilitates adding new protocols'; the FEC");
  bench::note("endpoint was added against the same plug-in interface. 4-hop 10 ms");
  bench::note("chain, 1000 pkt/s, 100 ms deadline. FEC: K=4 (25%% fixed overhead).");
  bench::note("Independent loss favors FEC (zero feedback delay); correlated bursts");
  bench::note("kill whole FEC groups but are exactly what NM spacing survives.");

  struct Cfg {
    const char* label;
    LinkProtocol proto;
  };
  const std::vector<Cfg> protos{{"best-effort", LinkProtocol::kBestEffort},
                                {"FEC(4+1)", LinkProtocol::kFec},
                                {"NM(3,3)", LinkProtocol::kRealtimeNM}};

  for (const bool bursty : {false, true}) {
    std::printf("\n  Loss: %s (~2%% average)\n",
                bursty ? "Gilbert-Elliott bursts (60 ms bad, 75% loss)"
                       : "independent 2% per hop");
    bench::Table t{{"protocol", "in<=100ms", "p99 ms", "wire overhead"}, 15};
    t.print_header();
    for (const auto& cfg : protos) {
      sim::Simulator sim;
      overlay::ChainOptions copts;
      copts.n_nodes = 5;
      copts.hop_latency = 10_ms;
      auto fx = overlay::build_chain(sim, copts, sim::Rng{314});
      std::uint64_t k = 0;
      for (const auto link : fx.hop_links) {
        const auto [a, b] = fx.internet->link_endpoints(link);
        if (bursty) {
          net::GilbertElliottLoss::Params ge;
          ge.mean_good_time = 2200_ms;
          ge.mean_bad_time = 60_ms;
          ge.loss_bad = 0.75;
          fx.internet->link_dir(link, a).set_loss_model(
              net::make_gilbert_elliott(ge, sim::Rng{400 + k}));
        } else {
          fx.internet->link_dir(link, a).set_loss_model(net::make_bernoulli(0.02));
        }
        ++k;
      }
      fx.overlay->settle(3_s);

      auto& src = fx.overlay->node(0).connect(1);
      auto& dst = fx.overlay->node(4).connect(2);
      client::MeasuringSink sink{dst};
      overlay::ServiceSpec spec;
      spec.scheme = RouteScheme::kDissemination;
      spec.custom_mask = fx.chain_mask();
      spec.link_protocol = cfg.proto;
      spec.deadline = 100_ms;
      client::CbrSender sender{sim, src,
                               {overlay::Destination::unicast(4, 2), spec, 1000, 1200,
                                sim.now(), sim.now() + 20_s}};
      const std::uint64_t bytes0 = fx.internet->backbone_bytes_carried();
      sim.run_for(23_s);
      const double bytes =
          static_cast<double>(fx.internet->backbone_bytes_carried() - bytes0);
      const double baseline =
          static_cast<double>(sender.sent()) * 4.0 * (1200.0 + 88.0);  // 4 hops

      t.cell(std::string{cfg.label});
      t.cell(100.0 * sink.delivered_within(sender.sent(), 100_ms), "%.3f%%");
      t.cell(sink.latencies_ms().quantile(0.99));
      t.cell(bytes / baseline, "%.3fx");
      t.end_row();
    }
  }
  bench::note("");
  bench::note("Expected shape: under independent loss FEC recovers nearly everything");
  bench::note("with no added tail latency at a flat 1/K overhead; under bursts FEC's");
  bench::note("groups die together while NM's time-spaced strikes still get through.");
}

}  // namespace

int main() {
  ablation_cost_metric();
  ablation_ooo_forwarding();
  ablation_hello_interval();
  ablation_fec_vs_reactive();
  return 0;
}
