// ABLATIONS — the design choices DESIGN.md calls out (✦), each isolated:
//
//   A. Loss-aware routing cost (lat + rtt*p/(1-p)) vs raw-latency routing:
//      does the overlay route AROUND a lossy-but-short link?
//   B. Out-of-order forwarding in the Reliable Data Link vs holding for
//      order at every hop (§III-A's smoothness argument).
//   C. Hello interval: failure-detection (and thus rerouting) time vs
//      control-plane overhead.
//   D. Proactive FEC (extension protocol) vs reactive recovery.
//
// (The NM-Strikes spacing ablation lives in bench_fig4_nmstrikes; the
// fairness-scheduling ablation in bench_intrusion.)
#include <algorithm>

#include "bench_common.hpp"
#include "client/traffic.hpp"
#include "overlay/network.hpp"

namespace {

using namespace son;
using namespace son::sim::literals;
using overlay::LinkProtocol;
using overlay::RouteScheme;
using sim::Duration;
using sim::TimePoint;

// ---- A: loss-aware routing metric ------------------------------------------

exp::Metrics run_cost_metric(bool loss_aware, Duration traffic_time, std::uint64_t seed) {
  sim::Simulator sim;
  topo::Graph g(3);
  g.add_edge(0, 1, 10.0);  // bit 0: direct
  g.add_edge(0, 2, 7.0);   // bit 1
  g.add_edge(2, 1, 7.0);   // bit 2
  overlay::GraphOptions gopts;
  gopts.node.loss_aware_routing = loss_aware;
  auto fx = overlay::build_graph_fixture(sim, g, gopts, sim::Rng{seed});
  fx.overlay->settle(3_s);

  // Make the direct fiber 30% lossy from t=5 s on.
  const auto [a, b] = fx.internet->link_endpoints(fx.fiber[0]);
  fx.internet->link_dir(fx.fiber[0], a)
      .add_forced_loss_window(TimePoint::zero() + 5_s, TimePoint::max(), 0.3);
  fx.internet->link_dir(fx.fiber[0], b)
      .add_forced_loss_window(TimePoint::zero() + 5_s, TimePoint::max(), 0.3);

  auto& src = fx.overlay->node(0).connect(1);
  auto& dst = fx.overlay->node(1).connect(2);
  client::MeasuringSink sink{dst};
  std::uint64_t after_cut_recv = 0;
  sink.on_message([&](const overlay::Message& m, Duration) {
    if (m.hdr.origin_time >= TimePoint::zero() + 7_s) ++after_cut_recv;
  });
  client::CbrSender sender{sim, src,
                           {overlay::Destination::unicast(1, 2), overlay::ServiceSpec{},
                            500, 300, sim.now(), sim.now() + traffic_time}};
  sim.run_for(traffic_time + 3_s);
  // Messages originated in [7s, 3s + traffic_time) — after the routing had a
  // chance to react to the loss onset at t=5s.
  const auto after_cut_sent =
      static_cast<std::uint64_t>(500.0 * (3.0 + traffic_time.to_seconds_f() - 7.0));

  const overlay::LinkBit nh = fx.overlay->node(0).router().next_hop(1);
  exp::Metrics m;
  m.scalar("delivered_frac", sink.delivery_ratio(sender.sent()));
  m.scalar("after_onset_frac",
           static_cast<double>(after_cut_recv) / static_cast<double>(after_cut_sent));
  m.scalar("routed_direct", nh == 0 ? 1.0 : 0.0);
  return m;
}

// ---- B: out-of-order forwarding ---------------------------------------------

exp::Metrics run_ooo(bool ooo, Duration traffic_time, std::uint64_t seed) {
  sim::Simulator sim;
  overlay::ChainOptions opts;
  opts.n_nodes = 6;
  opts.hop_latency = 10_ms;
  opts.node.link_protocols.reliable_ooo_forwarding = ooo;
  auto fx = overlay::build_chain(sim, opts, sim::Rng{seed});
  for (const auto link : fx.hop_links) {
    const auto [a, b] = fx.internet->link_endpoints(link);
    fx.internet->link_dir(link, a).set_loss_model(net::make_bernoulli(0.02));
    fx.internet->link_dir(link, b).set_loss_model(net::make_bernoulli(0.02));
  }
  fx.overlay->settle(3_s);

  auto& src = fx.overlay->node(0).connect(1);
  auto& dst = fx.overlay->node(5).connect(2);
  client::MeasuringSink sink{dst};
  overlay::ServiceSpec spec;
  spec.scheme = RouteScheme::kDissemination;
  spec.custom_mask = fx.chain_mask();
  spec.link_protocol = LinkProtocol::kReliable;
  spec.ordered = true;
  client::CbrSender sender{sim, src,
                           {overlay::Destination::unicast(5, 2), spec, 1000, 1200,
                            sim.now(), sim.now() + traffic_time}};
  sim.run_for(traffic_time + 10_s);

  exp::Metrics m;
  sim::OnlineStats on;
  for (const double v : sink.latencies_ms().sorted_values()) on.add(v);
  m.samples("latency_ms").merge(sink.latencies_ms());
  m.scalar("jitter_ms", on.stddev());
  return m;
}

// ---- C: hello interval ---------------------------------------------------------

exp::Metrics run_hello(std::int64_t hello_ms, Duration traffic_time, std::uint64_t seed) {
  sim::Simulator sim;
  net::Internet inet{sim, sim::Rng{seed}};
  const auto map = topo::continental_us();
  const auto u = topo::build_dual_isp(inet, map, topo::DualIspOptions{});
  overlay::NodeConfig cfg;
  cfg.hello_interval = Duration::milliseconds(hello_ms);
  overlay::OverlayNetwork net{sim, inet, map, u, cfg, sim::Rng{seed + 1}};
  net.settle(3_s);

  auto& src = net.node(0).connect(49);
  auto& dst = net.node(9).connect(50);
  std::vector<double> arrivals;
  client::MeasuringSink sink{dst};
  sink.on_message([&](const overlay::Message&, Duration) {
    arrivals.push_back(sim.now().to_seconds_f());
  });
  overlay::ServiceSpec spec;
  client::CbrSender sender{sim, src,
                           {overlay::Destination::unicast(9, 50), spec, 500, 400,
                            sim.now(), sim.now() + traffic_time}};
  const std::uint64_t frames_before = net.node(0).stats().frames_sent;
  sim.schedule(5_s, [&]() {
    const overlay::LinkBit nh = net.node(0).router().next_hop(9);
    inet.set_link_up(u.links_a[nh], false);
    inet.set_link_up(u.links_b[nh], false);
  });
  const Duration measured = traffic_time + 2_s;
  sim.run_for(measured);

  double max_gap = 0.0, prev = 3.0;
  for (const double a : arrivals) {
    max_gap = std::max(max_gap, a - prev);
    prev = a;
  }
  exp::Metrics m;
  m.scalar("max_gap_ms", max_gap * 1000.0);
  m.scalar("lost_msgs", static_cast<double>(sender.sent() - sink.received()));
  m.scalar("ctl_frames_per_s",
           static_cast<double>(net.node(0).stats().frames_sent - frames_before) /
               measured.to_seconds_f());
  return m;
}

// ---- D: proactive FEC (extension protocol) vs reactive recovery ----------------

struct ProtoCfg {
  const char* label;
  LinkProtocol proto;
};

const std::vector<ProtoCfg> kProtos{{"best-effort", LinkProtocol::kBestEffort},
                                    {"FEC(4+1)", LinkProtocol::kFec},
                                    {"NM(3,3)", LinkProtocol::kRealtimeNM}};

exp::Metrics run_fec(LinkProtocol proto, bool bursty, Duration traffic_time,
                     std::uint64_t seed) {
  sim::Simulator sim;
  overlay::ChainOptions copts;
  copts.n_nodes = 5;
  copts.hop_latency = 10_ms;
  auto fx = overlay::build_chain(sim, copts, sim::Rng{seed});
  std::uint64_t k = 0;
  for (const auto link : fx.hop_links) {
    const auto [a, b] = fx.internet->link_endpoints(link);
    if (bursty) {
      net::GilbertElliottLoss::Params ge;
      ge.mean_good_time = 2200_ms;
      ge.mean_bad_time = 60_ms;
      ge.loss_bad = 0.75;
      fx.internet->link_dir(link, a).set_loss_model(
          net::make_gilbert_elliott(ge, sim::Rng{seed + 86 + k}));
    } else {
      fx.internet->link_dir(link, a).set_loss_model(net::make_bernoulli(0.02));
    }
    ++k;
  }
  fx.overlay->settle(3_s);

  auto& src = fx.overlay->node(0).connect(1);
  auto& dst = fx.overlay->node(4).connect(2);
  client::MeasuringSink sink{dst};
  overlay::ServiceSpec spec;
  spec.scheme = RouteScheme::kDissemination;
  spec.custom_mask = fx.chain_mask();
  spec.link_protocol = proto;
  spec.deadline = 100_ms;
  client::CbrSender sender{sim, src,
                           {overlay::Destination::unicast(4, 2), spec, 1000, 1200,
                            sim.now(), sim.now() + traffic_time}};
  const std::uint64_t bytes0 = fx.internet->backbone_bytes_carried();
  sim.run_for(traffic_time + 3_s);
  const double bytes =
      static_cast<double>(fx.internet->backbone_bytes_carried() - bytes0);
  const double baseline =
      static_cast<double>(sender.sent()) * 4.0 * (1200.0 + 88.0);  // 4 hops

  exp::Metrics m;
  m.scalar("within_100ms_frac", sink.delivered_within(sender.sent(), 100_ms));
  m.samples("latency_ms").merge(sink.latencies_ms());
  m.scalar("wire_overhead", bytes / baseline);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = exp::Options::parse(argc, argv, "ablations", 1, 42);
  const Duration cost_time = opts.quick ? 10_s : 17_s;    // cut at 5 s, window from 7 s
  const Duration ooo_time = opts.quick ? 6_s : 15_s;
  const Duration hello_time = opts.quick ? 12_s : 20_s;   // cut at 5 s; 500 ms hello needs slack
  const Duration fec_time = opts.quick ? 8_s : 20_s;

  exp::Experiment ex{opts};
  for (const bool loss_aware : {true, false}) {
    exp::Json params = exp::Json::object();
    params["section"] = "cost-metric";
    params["loss_aware"] = loss_aware;
    ex.add_cell(std::string{"cost/"} + (loss_aware ? "loss-aware" : "latency-only"),
                std::move(params), [loss_aware, cost_time](std::uint64_t seed) {
                  return run_cost_metric(loss_aware, cost_time, seed);
                });
  }
  for (const bool ooo : {true, false}) {
    exp::Json params = exp::Json::object();
    params["section"] = "ooo-forwarding";
    params["out_of_order"] = ooo;
    ex.add_cell(std::string{"ooo/"} + (ooo ? "out-of-order" : "hold-for-order"),
                std::move(params), [ooo, ooo_time](std::uint64_t seed) {
                  return run_ooo(ooo, ooo_time, seed + 35);  // legacy stream 77
                });
  }
  const std::vector<std::int64_t> hello_intervals{50, 100, 200, 500};
  for (const std::int64_t hello_ms : hello_intervals) {
    exp::Json params = exp::Json::object();
    params["section"] = "hello-interval";
    params["hello_ms"] = hello_ms;
    ex.add_cell("hello/" + std::to_string(hello_ms) + "ms", std::move(params),
                [hello_ms, hello_time](std::uint64_t seed) {
                  return run_hello(hello_ms, hello_time, seed - 40);  // legacy stream 2
                });
  }
  for (const bool bursty : {false, true}) {
    for (const auto& cfg : kProtos) {
      exp::Json params = exp::Json::object();
      params["section"] = "fec-vs-reactive";
      params["loss"] = bursty ? "bursty" : "independent";
      params["protocol"] = cfg.label;
      ex.add_cell(std::string{"fec/"} + (bursty ? "bursty/" : "independent/") + cfg.label,
                  std::move(params), [cfg, bursty, fec_time](std::uint64_t seed) {
                    return run_fec(cfg.proto, bursty, fec_time, seed + 272);  // legacy 314
                  });
    }
  }
  const exp::Report report = ex.run();

  // ---- A ----
  bench::heading("ABL-COST", "Loss-aware routing metric vs raw latency");
  bench::note("Triangle: direct 0->1 link of 10 ms that turns 30%% lossy at t=5 s;");
  bench::note("detour 0->2->1 of 7+7 ms stays clean. Best-effort flow 0->1.");
  bench::note("Metric ablated: expected latency lat + rtt*p/(1-p) vs latency only.");
  {
    bench::Table t{{"metric", "delivered", "del. after t=5s", "routed via"}, 18};
    t.print_header();
    for (const bool loss_aware : {true, false}) {
      const auto& c =
          report.cell(std::string{"cost/"} + (loss_aware ? "loss-aware" : "latency-only"));
      t.cell(std::string{loss_aware ? "loss-aware" : "latency-only"});
      t.cell(100.0 * c.scalar_mean("delivered_frac"), "%.2f%%");
      t.cell(100.0 * c.scalar_mean("after_onset_frac"), "%.2f%%");
      t.cell(std::string{c.scalar_mean("routed_direct") > 0.5 ? "direct (lossy)"
                                                              : "detour (clean)"});
      t.end_row();
    }
    bench::note("");
    bench::note("Expected shape: the loss-aware metric reroutes onto the clean detour");
    bench::note("(~100%% delivery after the onset); latency-only keeps ~70%%.");
  }

  // ---- B ----
  bench::heading("ABL-OOO", "Out-of-order forwarding vs hold-for-order at every hop");
  bench::note("5-hop 10 ms chain, 2%% loss per hop, Reliable Data Link, 1000 pkt/s,");
  bench::note("ordered delivery at the destination in both cases. The design forwards");
  bench::note("out of order and reorders ONLY at the destination (§III-A).");
  {
    bench::Table t{{"forwarding", "p50 ms", "p90 ms", "p99 ms", "max ms", "jitter"}, 14};
    t.print_header();
    for (const bool ooo : {true, false}) {
      const auto& c =
          report.cell(std::string{"ooo/"} + (ooo ? "out-of-order" : "hold-for-order"));
      const auto& lat = c.samples("latency_ms");
      t.cell(std::string{ooo ? "out-of-order" : "hold-for-order"});
      t.cell(lat.quantile(0.5));
      t.cell(lat.quantile(0.9));
      t.cell(lat.quantile(0.99));
      t.cell(lat.max());
      t.cell(c.scalar_mean("jitter_ms"), "%.3f");
      t.end_row();
    }
    bench::note("");
    bench::note("Expected shape: holding for order at every hop stacks head-of-line");
    bench::note("blocking hop after hop — the tail and jitter inflate well beyond the");
    bench::note("out-of-order design's.");
  }

  // ---- C ----
  bench::heading("ABL-HELLO", "Failure detection time vs monitoring overhead");
  bench::note("US overlay, NYC->LAX at 500 pkt/s; both ISPs' fiber under the in-use");
  bench::note("link cut mid-run. Detection = miss_threshold x interval, so the outage");
  bench::note("scales with the hello interval; so does hello traffic per link.");
  {
    bench::Table t{{"hello ms", "max gap ms", "lost msgs", "ctl frames/s/node"}, 18};
    t.print_header();
    for (const std::int64_t hello_ms : hello_intervals) {
      const auto& c = report.cell("hello/" + std::to_string(hello_ms) + "ms");
      t.cell(static_cast<std::uint64_t>(hello_ms));
      t.cell(c.scalar_mean("max_gap_ms"), "%.0f");
      t.cell(static_cast<std::uint64_t>(c.scalar_mean("lost_msgs")));
      t.cell(c.scalar_mean("ctl_frames_per_s"), "%.0f");
      t.end_row();
    }
    bench::note("");
    bench::note("Expected shape: outage ~= 5 x hello interval (3 expiries, each armed an");
    bench::note("interval apart) + flood + reroute; overhead scales inversely. 100 ms is");
    bench::note("the sweet spot the deployments use: sub-second recovery at trivial cost.");
  }

  // ---- D ----
  bench::heading("EXT-FEC",
                 "Proactive XOR FEC (plug-in extension) vs reactive NM recovery");
  bench::note("The Fig. 2 architecture 'facilitates adding new protocols'; the FEC");
  bench::note("endpoint was added against the same plug-in interface. 4-hop 10 ms");
  bench::note("chain, 1000 pkt/s, 100 ms deadline. FEC: K=4 (25%% fixed overhead).");
  bench::note("Independent loss favors FEC (zero feedback delay); correlated bursts");
  bench::note("kill whole FEC groups but are exactly what NM spacing survives.");
  for (const bool bursty : {false, true}) {
    std::printf("\n  Loss: %s (~2%% average)\n",
                bursty ? "Gilbert-Elliott bursts (60 ms bad, 75% loss)"
                       : "independent 2% per hop");
    bench::Table t{{"protocol", "in<=100ms", "p99 ms", "wire overhead"}, 15};
    t.print_header();
    for (const auto& cfg : kProtos) {
      const auto& c = report.cell(std::string{"fec/"} + (bursty ? "bursty/" : "independent/") +
                                  cfg.label);
      t.cell(std::string{cfg.label});
      t.cell(100.0 * c.scalar_mean("within_100ms_frac"), "%.3f%%");
      t.cell(c.samples("latency_ms").quantile(0.99));
      t.cell(c.scalar_mean("wire_overhead"), "%.3fx");
      t.end_row();
    }
  }
  bench::note("");
  bench::note("Expected shape: under independent loss FEC recovers nearly everything");
  bench::note("with no added tail latency at a flat 1/K overhead; under bursts FEC's");
  bench::note("groups die together while NM's time-spaced strikes still get through.");

  return bench::write_report(report, opts) ? 0 : 1;
}
