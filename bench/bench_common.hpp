// Shared helpers for the benchmark harnesses that regenerate the paper's
// figures and quantitative claims (see DESIGN.md §5 and EXPERIMENTS.md).
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace son::bench {

inline void heading(const std::string& id, const std::string& title) {
  std::printf("\n================================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================================\n");
}

inline void note(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::printf("  ");
  std::vprintf(fmt, args);
  std::printf("\n");
  va_end(args);
}

/// Fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> columns, int width = 14)
      : columns_{std::move(columns)}, width_{width} {}

  void print_header() const {
    for (const auto& c : columns_) std::printf("%*s", width_, c.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      for (int j = 0; j < width_; ++j) std::printf("-");
    }
    std::printf("\n");
  }

  void cell(const std::string& s) const { std::printf("%*s", width_, s.c_str()); }
  void cell(double v, const char* fmt = "%.2f") const {
    char buf[64];
    std::snprintf(buf, sizeof buf, fmt, v);
    cell(std::string{buf});
  }
  void cell(std::uint64_t v) const { cell(std::to_string(v)); }
  void end_row() const { std::printf("\n"); }

 private:
  std::vector<std::string> columns_;
  int width_;
};

}  // namespace son::bench
