// Shared helpers for the benchmark harnesses that regenerate the paper's
// figures and quantitative claims (see DESIGN.md §5 and EXPERIMENTS.md).
//
// The heavy lifting (trial fan-out, aggregation, JSON reports) lives in
// son::exp; this header keeps only the human-facing printing utilities.
#pragma once

#include <cstdarg>
#include <cstdint>
#include <string>
#include <vector>

#include "exp/experiment.hpp"

namespace son::bench {

void heading(const std::string& id, const std::string& title);
void note(const char* fmt, ...);

/// Fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> columns, int width = 14)
      : columns_{std::move(columns)}, width_{width} {}

  /// Prints the column titles and a per-column underline (one dash run under
  /// each title, not one unbroken line across the table).
  void print_header() const;

  void cell(const std::string& s) const;
  void cell(double v, const char* fmt = "%.2f") const;
  void cell(std::uint64_t v) const;
  void end_row() const;

 private:
  std::vector<std::string> columns_;
  int width_;
};

/// Standard footer for every bench: writes BENCH_<name>.json (unless
/// --no-json) and prints where it went plus trial count / wall clock / jobs.
bool write_report(const exp::Report& report, const exp::Options& opts);

}  // namespace son::bench
