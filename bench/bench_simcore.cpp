// SIMCORE — simulator-core throughput: the events/sec ceiling under every
// quantitative claim in the reproduction. Every figure regenerates by driving
// packets through the son::sim event loop and the son::net underlay, so this
// bench records the raw cost of the three hot paths as the repo's perf
// baseline (BENCH_simcore.json, archived by CI):
//   * churn    — schedule/fire of self-rescheduling timers (pure queue cost),
//   * cancel   — RTO-style timer workloads where most timers never fire,
//   * forward  — end-to-end datagram forwarding across a 4-ISP backbone
//                (route lookup, per-hop events, payload hand-off).
// Wall-clock rates land under run.timings (machine-dependent); event and
// delivery counters are deterministic scalars checked across --jobs values.
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "net/internet.hpp"
#include "obs/recorder.hpp"
#include "sim/random.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"
#include "topo/backbones.hpp"
#include "topo/geo.hpp"

namespace {

using namespace son;
using namespace son::sim::literals;
using sim::Duration;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// ---- Cell 1: schedule/fire churn -------------------------------------------

struct ChurnTimer {
  sim::Simulator& sim;
  sim::Rng rng;
  std::uint64_t* fired;
  std::uint64_t budget;

  void arm() {
    if (*fired >= budget) return;
    sim.schedule(Duration::microseconds(1 + rng.next_u32() % 997), [this]() {
      ++*fired;
      arm();
    });
  }
};

exp::Metrics churn(std::uint64_t budget, std::uint64_t seed) {
  sim::Simulator sim;
  sim::Rng rng{seed};
  constexpr int kTimers = 256;
  std::uint64_t fired = 0;

  std::vector<std::unique_ptr<ChurnTimer>> timers;
  timers.reserve(kTimers);
  for (int i = 0; i < kTimers; ++i) {
    timers.push_back(std::make_unique<ChurnTimer>(
        ChurnTimer{sim, rng.fork(static_cast<std::uint64_t>(i)), &fired, budget}));
    timers.back()->arm();
  }
  const auto t0 = std::chrono::steady_clock::now();
  sim.run();
  const double wall = seconds_since(t0);

  exp::Metrics m;
  m.scalar("events", static_cast<double>(fired));
  m.timing("events_per_sec", static_cast<double>(fired) / wall);
  return m;
}

// ---- Cell 2: cancel-heavy timer workload -----------------------------------

// Each flow behaves like a reliable link's retransmission machinery: every
// "packet" arms an RTO ~200 ms out, and the "ack" (the next tick) cancels it
// long before it fires, so the queue is dominated by cancelled entries.
struct RtoFlow {
  sim::Simulator& sim;
  sim::Rng rng;
  std::uint64_t* ops;
  std::uint64_t budget;
  sim::EventId rto = sim::kInvalidEventId;

  void tick() {
    sim.cancel(rto);
    if (*ops >= budget) return;
    ++*ops;
    rto = sim.schedule(200_ms, [this]() { rto = sim::kInvalidEventId; });
    sim.schedule(Duration::microseconds(100 + rng.next_u32() % 400), [this]() { tick(); });
  }
};

exp::Metrics cancel_heavy(std::uint64_t budget, std::uint64_t seed) {
  sim::Simulator sim;
  sim::Rng rng{seed};
  constexpr int kFlows = 64;
  std::uint64_t ops = 0;

  std::vector<std::unique_ptr<RtoFlow>> flows;
  flows.reserve(kFlows);
  for (int i = 0; i < kFlows; ++i) {
    flows.push_back(std::make_unique<RtoFlow>(
        RtoFlow{sim, rng.fork(0x1000u + static_cast<std::uint64_t>(i)), &ops, budget}));
    flows.back()->tick();
  }
  const auto t0 = std::chrono::steady_clock::now();
  sim.run();
  const double wall = seconds_since(t0);

  exp::Metrics m;
  // Each op is one cancel + two schedules.
  m.scalar("timer_ops", static_cast<double>(ops));
  m.timing("timer_ops_per_sec", static_cast<double>(ops) / wall);
  return m;
}

// ---- Cell 3: end-to-end forwarding on a 4-ISP backbone ---------------------

// Four parallel ISP backbones over the continental-US map, peering at three
// cities; each city hosts one machine multihomed to two of the four ISPs.
struct QuadIsp {
  std::vector<net::HostId> hosts;
};

QuadIsp build_quad_isp(net::Internet& net) {
  const auto map = topo::continental_us();
  const std::size_t cities = map.cities.size();
  constexpr int kIsps = 4;

  std::vector<net::IspId> isps;
  std::vector<std::vector<net::RouterId>> routers(kIsps);
  for (int i = 0; i < kIsps; ++i) {
    isps.push_back(net.add_isp("isp-" + std::to_string(i)));
    for (const auto& city : map.cities) {
      routers[static_cast<std::size_t>(i)].push_back(
          net.add_router(isps.back(), city.name + "/" + std::to_string(i)));
    }
  }
  for (int i = 0; i < kIsps; ++i) {
    for (const auto& [u, v] : map.edges) {
      net::LinkConfig cfg;
      cfg.prop_delay = topo::fiber_latency(map.cities[u], map.cities[v]);
      cfg.bandwidth_bps = 10e9;
      net.add_link(routers[static_cast<std::size_t>(i)][u],
                   routers[static_cast<std::size_t>(i)][v], cfg);
    }
  }
  // Peering between every ISP pair at NYC, DFW and SFO.
  for (const std::size_t city : {std::size_t{0}, std::size_t{5}, std::size_t{10}}) {
    for (int a = 0; a < kIsps; ++a) {
      for (int b = a + 1; b < kIsps; ++b) {
        net::LinkConfig cfg;
        cfg.prop_delay = sim::Duration::microseconds(200);
        cfg.bandwidth_bps = 10e9;
        net.add_link(routers[static_cast<std::size_t>(a)][city],
                     routers[static_cast<std::size_t>(b)][city], cfg);
      }
    }
  }

  QuadIsp out;
  net::LinkConfig access;
  access.prop_delay = sim::Duration::microseconds(250);
  access.bandwidth_bps = 1e9;
  for (std::size_t c = 0; c < cities; ++c) {
    const auto h = net.add_host(map.cities[c].name);
    net.attach_host(h, routers[c % kIsps][c], access);
    net.attach_host(h, routers[(c + 1) % kIsps][c], access);
    out.hosts.push_back(h);
  }
  return out;
}

struct CbrSource {
  net::Internet& net;
  net::HostId src;
  net::HostId dst;
  Duration gap;
  sim::TimePoint stop;
  std::vector<std::uint8_t> body;

  void tick() {
    if (net.simulator().now() >= stop) return;
    net::Datagram d;
    d.src = src;
    d.dst = dst;
    d.src_port = 9000;
    d.dst_port = 9000;
    d.size_bytes = 1200;
    d.payload = body;
    const std::uint64_t id = net.send(std::move(d));
    SON_OBS(obs::kSystemNode, obs::Category::kMark, 0, id, src);
    net.simulator().schedule(gap, [this]() { tick(); });
  }
};

exp::Metrics forward_4isp(Duration traffic_time, int pps, std::uint64_t seed,
                          const std::string& record_out) {
  // Optional flight recording (--record). Deterministic scalars must stay
  // identical with or without it — GoldenRun.TracingIsInert pins the same
  // property on the full scenario.
  std::unique_ptr<obs::Recorder> rec;
  std::optional<obs::ScopedRecorder> rec_scope;
  if (!record_out.empty()) {
    rec = std::make_unique<obs::Recorder>(0, std::size_t{1} << 17);
    rec_scope.emplace(*rec);
  }
  sim::Simulator sim;
  if (rec) rec->attach(sim);
  net::Internet net{sim, sim::Rng{seed}};
  const QuadIsp q = build_quad_isp(net);

  std::uint64_t delivered = 0;
  for (const auto h : q.hosts) {
    net.bind(h, [&delivered](const net::Datagram&) { ++delivered; });
  }

  const std::size_t n = q.hosts.size();
  std::vector<std::unique_ptr<CbrSource>> sources;
  for (std::size_t c = 0; c < n; ++c) {
    sources.push_back(std::make_unique<CbrSource>(
        CbrSource{net, q.hosts[c], q.hosts[(c + n / 2) % n],
                  Duration::from_seconds_f(1.0 / pps), sim::TimePoint::zero() + traffic_time,
                  std::vector<std::uint8_t>(256, static_cast<std::uint8_t>(c))}));
    sources.back()->tick();
  }
  const auto t0 = std::chrono::steady_clock::now();
  sim.run();
  const double wall = seconds_since(t0);

  const auto& ctr = net.counters();
  exp::Metrics m;
  m.scalar("sent", static_cast<double>(ctr.sent));
  m.scalar("delivered", static_cast<double>(delivered));
  m.scalar("events", static_cast<double>(sim.events_fired()));
  m.timing("pkts_per_sec", static_cast<double>(ctr.sent) / wall);
  m.timing("events_per_sec", static_cast<double>(sim.events_fired()) / wall);
  if (rec != nullptr && !rec->write(record_out)) {
    std::fprintf(stderr, "simcore: failed to write trace to %s\n", record_out.c_str());
  }
  return m;
}

}  // namespace

// ---- Cell 4: sharded-kernel round overhead ---------------------------------
//
// A raw 8-partition ring (no underlay): each partition self-schedules every
// 10 us and pushes a cross-shard event roughly every millisecond, so the
// 1 ms-lookahead rounds stay busy. Measures kernel events/sec — the barrier +
// flush overhead on top of the plain simulator's queue cost — at the --shards
// worker count.
exp::Metrics shard_ring(unsigned workers, Duration dur, std::uint64_t seed) {
  constexpr std::uint32_t kParts = 8;
  sim::ShardedKernel k{kParts, workers};
  std::vector<sim::ShardChannel*> next(kParts);
  for (std::uint32_t p = 0; p < kParts; ++p) {
    next[p] = &k.add_channel(p, (p + 1) % kParts, Duration::milliseconds(1));
  }

  const sim::TimePoint stop = sim::TimePoint::zero() + dur;
  struct Spinner {
    sim::ShardedKernel& k;
    sim::ShardChannel& out;
    sim::Rng rng;
    std::uint32_t p;
    sim::TimePoint stop;
    std::uint64_t ticks = 0;
    void tick() {
      sim::Simulator& sim = k.shard_sim(p);
      if (sim.now() >= stop) return;
      ++ticks;
      if (ticks % 100 == 0) {
        out.push(sim.now() + Duration::milliseconds(1) +
                     Duration::microseconds(static_cast<std::int64_t>(rng.next_u64() % 300)),
                 []() {});
      }
      sim.schedule(Duration::microseconds(10), [this]() { tick(); });
    }
  };
  std::vector<std::unique_ptr<Spinner>> spinners;
  for (std::uint32_t p = 0; p < kParts; ++p) {
    spinners.push_back(std::make_unique<Spinner>(
        Spinner{k, *next[p], sim::component_stream(seed, p, /*component=*/1, 0), p, stop}));
    // son-lint: allow(cross-shard) "coordinator seeding each partition's own queue before the run"
    k.shard_sim(p).schedule_at(sim::TimePoint::zero(),
                               [s = spinners.back().get()]() { s->tick(); });
  }

  const auto w0 = std::chrono::steady_clock::now();
  k.run_until(stop);
  const double wall = seconds_since(w0);

  std::uint64_t pushes = 0;
  for (std::uint32_t p = 0; p < kParts; ++p) pushes += next[p]->total_pushed();
  exp::Metrics m;
  m.scalar("events", static_cast<double>(k.events_fired()));
  m.scalar("cross_pushes", static_cast<double>(pushes));
  m.scalar("rounds", static_cast<double>(k.rounds()));
  m.timing("events_per_sec", static_cast<double>(k.events_fired()) / wall);
  return m;
}

int main(int argc, char** argv) {
  const auto opts = exp::Options::parse(argc, argv, "simcore", 3, 7100);
  const std::uint64_t churn_budget = opts.quick ? 300'000 : 3'000'000;
  const std::uint64_t cancel_budget = opts.quick ? 150'000 : 1'500'000;
  const Duration traffic_time = opts.quick ? 4_s : 20_s;
  const int pps = 400;

  bench::heading("SIMCORE", "Simulator-core throughput (events/sec ceiling)");
  bench::note("churn: 256 self-rescheduling timers; cancel: 64 RTO flows where");
  bench::note("~every timer is cancelled before firing; forward: 12 multihomed");
  bench::note("hosts blasting CBR across 4 peered ISP backbones.");

  exp::Experiment ex{opts};
  {
    exp::Json p = exp::Json::object();
    p["timers"] = std::uint64_t{256};
    p["events"] = churn_budget;
    ex.add_cell("churn", std::move(p),
                [churn_budget](std::uint64_t seed) { return churn(churn_budget, seed); });
  }
  {
    exp::Json p = exp::Json::object();
    p["flows"] = std::uint64_t{64};
    p["timer_ops"] = cancel_budget;
    ex.add_cell("cancel", std::move(p), [cancel_budget](std::uint64_t seed) {
      return cancel_heavy(cancel_budget, seed);
    });
  }
  {
    exp::Json p = exp::Json::object();
    p["isps"] = std::uint64_t{4};
    p["hosts"] = std::uint64_t{12};
    p["pps_per_host"] = static_cast<std::uint64_t>(pps);
    p["traffic_s"] = traffic_time.to_seconds_f();
    // Only the first replication records (one trace file, deterministic
    // choice); the rest run exactly the same workload without a recorder.
    ex.add_cell("forward", std::move(p),
                [traffic_time, pps, record = opts.record_out,
                 rec_seed = opts.seed_for(0)](std::uint64_t seed) {
                  return forward_4isp(traffic_time, pps, seed,
                                      seed == rec_seed ? record : std::string{});
                });
  }
  {
    exp::Json p = exp::Json::object();
    p["partitions"] = std::uint64_t{8};
    p["workers"] = static_cast<std::uint64_t>(opts.resolved_shards());
    ex.add_cell("shard_ring", std::move(p),
                [workers = opts.resolved_shards(),
                 dur = opts.quick ? 1_s : 4_s](std::uint64_t seed) {
                  return shard_ring(workers, dur, seed);
                });
  }
  const exp::Report report = ex.run();

  bench::Table t{{"cell", "work/trial", "rate (wall)", "unit"}, 18};
  t.print_header();
  {
    const auto& c = report.cell("churn");
    t.cell(std::string{"churn"});
    t.cell(c.scalar_mean("events"), "%.0f");
    t.cell(c.timing_mean("events_per_sec"), "%.0f");
    t.cell(std::string{"events/s"});
    t.end_row();
  }
  {
    const auto& c = report.cell("cancel");
    t.cell(std::string{"cancel"});
    t.cell(c.scalar_mean("timer_ops"), "%.0f");
    t.cell(c.timing_mean("timer_ops_per_sec"), "%.0f");
    t.cell(std::string{"timer ops/s"});
    t.end_row();
  }
  {
    const auto& c = report.cell("forward");
    t.cell(std::string{"forward"});
    t.cell(c.scalar_mean("sent"), "%.0f");
    t.cell(c.timing_mean("pkts_per_sec"), "%.0f");
    t.cell(std::string{"pkts/s"});
    t.end_row();
  }
  {
    const auto& c = report.cell("shard_ring");
    t.cell(std::string{"shard_ring"});
    t.cell(c.scalar_mean("events"), "%.0f");
    t.cell(c.timing_mean("events_per_sec"), "%.0f");
    t.cell(std::string{"events/s"});
    t.end_row();
  }
  bench::note("");
  bench::note("events/s (forward cell): see run.timings; delivered/sent scalars are");
  bench::note("deterministic and must not change when the core is optimized.");

  return bench::write_report(report, opts) ? 0 : 1;
}
