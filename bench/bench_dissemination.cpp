// DISSEM — §V-A: real-time remote manipulation with dissemination graphs.
//
// Paper claims to regenerate:
//   * "the roundtrip latency must be no more than about 130ms, translating
//     to a one-way latency requirement of 65ms. On the scale of a continent,
//     where propagation delay may be around 40ms, this leaves only 20-25ms
//     of flexibility" — too tight for NM-Strikes, so the approach combines a
//     single-shot recovery protocol [6,7] with targeted redundancy.
//   * "In contrast to disjoint paths, which add redundancy uniformly
//     throughout the network, dissemination graphs can be tailored based on
//     current network conditions to add targeted redundancy in problematic
//     areas of the network" [2].
//
// Setup: 12-node circulant overlay, 10 ms ring hops; flow from node 0 to
// node 6 (40 ms best path: 4 ring hops or 2 chords + ...). Loss problems are
// concentrated AROUND THE DESTINATION (reference [2]'s dominant real-world
// pattern): recurring loss bursts on the destination's incident links.
// Schemes: single path / 2 disjoint paths / destination-problem
// dissemination graph / constrained flooding, all with the RealtimeSimple
// one-shot recovery protocol and a 65 ms one-way deadline.
#include "bench_common.hpp"
#include "client/traffic.hpp"
#include "overlay/network.hpp"

namespace {

using namespace son;
using namespace son::sim::literals;
using overlay::NodeId;
using overlay::RouteScheme;
using sim::Duration;
using sim::TimePoint;

exp::Metrics run(RouteScheme scheme, std::uint8_t k, std::uint8_t fanin,
                 Duration traffic_time, std::uint64_t seed) {
  sim::Simulator sim;
  overlay::GraphOptions gopts;
  auto fx = overlay::build_graph_fixture(sim, overlay::circulant_topology(12), gopts,
                                         sim::Rng{seed});
  auto& net = *fx.overlay;
  constexpr NodeId kSrc = 0;
  constexpr NodeId kDst = 6;

  // Destination-problem loss (reference [2]'s dominant pattern): every
  // 800 ms a 120 ms problem hits the destination's area, degrading TWO of
  // its four incident fibers at 90% loss simultaneously; the afflicted pair
  // rotates. Redundancy that happens to enter via the two bad fibers dies;
  // targeted fan-in over all incident links survives.
  const auto& g = net.designed_topology();
  std::vector<net::LinkId> dst_fibers;
  for (const auto& [nbr, e] : g.neighbors(kDst)) dst_fibers.push_back(fx.fiber[e]);
  const std::size_t nf = dst_fibers.size();
  const int n_bursts = static_cast<int>((traffic_time + 2_s).to_seconds_f() / 0.8) + 1;
  for (int burst = 0; burst < n_bursts; ++burst) {
    const auto from = TimePoint::zero() + 3_s + Duration::milliseconds(burst * 800);
    const auto until = from + 120_ms;
    const auto i = static_cast<std::size_t>(burst) % nf;
    const auto j = (i + 1 + static_cast<std::size_t>(burst) / nf % (nf - 1)) % nf;
    for (const auto fiber : {dst_fibers[i], dst_fibers[j]}) {
      const auto [a, b] = fx.internet->link_endpoints(fiber);
      fx.internet->link_dir(fiber, a).add_forced_loss_window(from, until, 0.9);
      fx.internet->link_dir(fiber, b).add_forced_loss_window(from, until, 0.9);
    }
  }
  net.settle(3_s);

  auto& src = net.node(kSrc).connect(49);
  auto& dst = net.node(kDst).connect(50);
  client::MeasuringSink sink{dst};

  overlay::ServiceSpec spec;
  spec.scheme = scheme;
  spec.num_paths = k;
  spec.dissem_dst_fanin = fanin;
  spec.link_protocol = overlay::LinkProtocol::kRealtimeSimple;
  spec.deadline = 65_ms;

  client::CbrSender sender{sim, src,
                           {overlay::Destination::unicast(kDst, 50), spec, 1000, 400,
                            sim.now(), sim.now() + traffic_time}};
  std::uint64_t fwd_before = 0;
  for (NodeId n = 0; n < net.size(); ++n) fwd_before += net.node(n).stats().forwarded;
  sim.run_for(traffic_time + 2_s);
  std::uint64_t fwd_after = 0;
  for (NodeId n = 0; n < net.size(); ++n) fwd_after += net.node(n).stats().forwarded;

  exp::Metrics m;
  m.scalar("delivered_frac", sink.delivery_ratio(sender.sent()));
  m.scalar("within_65ms_frac", sink.delivered_within(sender.sent(), 65_ms));
  m.scalar("copies_per_msg",
           static_cast<double>(fwd_after - fwd_before) / static_cast<double>(sender.sent()));
  return m;
}

struct S {
  const char* label;
  RouteScheme scheme;
  std::uint8_t k;
  std::uint8_t fanin;
};

const std::vector<S> kSchemes{
    {"single path", RouteScheme::kDisjointPaths, 1, 0},
    {"2 disjoint paths", RouteScheme::kDisjointPaths, 2, 0},
    {"dissem graph (fanin 2)", RouteScheme::kDissemination, 2, 2},
    {"constrained flooding", RouteScheme::kFlooding, 0, 0},
};

}  // namespace

int main(int argc, char** argv) {
  const auto opts = exp::Options::parse(argc, argv, "dissemination", 1, 505);
  const Duration traffic_time = opts.quick ? 12_s : 60_s;

  bench::heading("DISSEM",
                 "Dissemination graphs for 65 ms remote manipulation (§V-A, ref [2])");
  bench::note("12-node circulant overlay, 10 ms hops; node 0 -> node 6 (~40 ms path).");
  bench::note("Recurring 120 ms bursts of 80%% loss rotate across the destination's");
  bench::note("incident fibers (destination-problem pattern). 1000 pkt/s for %.0f s,",
              traffic_time.to_seconds_f());
  bench::note("one-shot recovery (RealtimeSimple), deadline 65 ms one-way.");

  exp::Experiment ex{opts};
  for (const auto& s : kSchemes) {
    exp::Json params = exp::Json::object();
    params["scheme"] = s.label;
    params["k"] = static_cast<std::uint64_t>(s.k);
    params["dst_fanin"] = static_cast<std::uint64_t>(s.fanin);
    ex.add_cell(s.label, std::move(params), [s, traffic_time](std::uint64_t seed) {
      return run(s.scheme, s.k, s.fanin, traffic_time, seed);
    });
  }
  const exp::Report report = ex.run();

  bench::Table t{{"scheme", "in<=65ms", "delivered", "copies/msg"}, 22};
  t.print_header();
  for (const auto& s : kSchemes) {
    const auto& c = report.cell(s.label);
    t.cell(std::string{s.label});
    t.cell(100.0 * c.scalar_mean("within_65ms_frac"), "%.3f%%");
    t.cell(100.0 * c.scalar_mean("delivered_frac"), "%.3f%%");
    t.cell(c.scalar_mean("copies_per_msg"), "%.1f");
    t.end_row();
  }
  bench::note("");
  bench::note("Expected shape: a single path dies whenever its last hop is inside a");
  bench::note("burst; 2 disjoint paths still lose packets when a burst covers their");
  bench::note("shared last-hop region; the destination-problem dissemination graph");
  bench::note("adds targeted fan-in at the destination and approaches flooding's");
  bench::note("timeliness at a fraction of flooding's cost.");

  return bench::write_report(report, opts) ? 0 : 1;
}
