#include "bench_common.hpp"

#include <algorithm>
#include <cstdio>

namespace son::bench {

void heading(const std::string& id, const std::string& title) {
  std::printf("\n================================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================================\n");
}

void note(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::printf("  ");
  std::vprintf(fmt, args);
  std::printf("\n");
  va_end(args);
}

void Table::print_header() const {
  for (const auto& c : columns_) std::printf("%*s", width_, c.c_str());
  std::printf("\n");
  for (const auto& c : columns_) {
    const auto dashes = std::min(c.size(), static_cast<std::size_t>(width_ > 1 ? width_ - 1 : 1));
    std::printf("%*s", width_, std::string(dashes, '-').c_str());
  }
  std::printf("\n");
}

void Table::cell(const std::string& s) const { std::printf("%*s", width_, s.c_str()); }

void Table::cell(double v, const char* fmt) const {
  char buf[64];
  std::snprintf(buf, sizeof buf, fmt, v);
  cell(std::string{buf});
}

void Table::cell(std::uint64_t v) const { cell(std::to_string(v)); }

void Table::end_row() const { std::printf("\n"); }

bool write_report(const exp::Report& report, const exp::Options& opts) {
  std::printf("\n  [%zu trials, %.2f s wall clock, %u jobs]\n", report.total_trials(),
              report.wall_clock_s(), report.jobs());
  if (!opts.write_json) return true;
  const std::string path = opts.json_path();
  if (report.write(path)) {
    std::printf("  [report: %s]\n", path.c_str());
    return true;
  }
  std::fprintf(stderr, "failed to write report to %s\n", path.c_str());
  return false;
}

}  // namespace son::bench
