// FIG3 — Reproduces Figure 3 (§III-A): "50ms network path vs. five 10ms
// overlay links".
//
// Paper claims to regenerate:
//   * End-to-end ARQ over a 50 ms path: a recovered packet needs >= 1 extra
//     RTT, so >= 150 ms total (50 + 100).
//   * Five 10 ms overlay links with hop-by-hop recovery: a recovered packet
//     needs only >= 20 ms extra, so >= 70 ms total.
//   * Hop-by-hop recovery + out-of-order forwarding "significantly reduce
//     the latency and jitter of reliable communication".
//
// Both configurations run over IDENTICAL underlay fiber (the direct overlay
// link rides the same five physical hops); only where the ARQ runs differs.
#include "bench_common.hpp"
#include "client/traffic.hpp"
#include "overlay/network.hpp"

namespace {

using namespace son;
using namespace son::sim::literals;
using overlay::LinkProtocol;
using overlay::RouteScheme;
using sim::Duration;

exp::Metrics run(double per_hop_loss, bool hop_by_hop, Duration traffic_time,
                 std::uint64_t seed) {
  sim::Simulator sim;
  overlay::ChainOptions opts;
  opts.n_nodes = 6;
  opts.hop_latency = 10_ms;
  auto fx = overlay::build_chain(sim, opts, sim::Rng{seed});
  for (const auto link : fx.hop_links) {
    const auto [a, b] = fx.internet->link_endpoints(link);
    fx.internet->link_dir(link, a).set_loss_model(net::make_bernoulli(per_hop_loss));
    fx.internet->link_dir(link, b).set_loss_model(net::make_bernoulli(per_hop_loss));
  }
  fx.overlay->settle(3_s);

  auto& src = fx.overlay->node(0).connect(100);
  auto& dst = fx.overlay->node(5).connect(200);
  client::MeasuringSink sink{dst};

  overlay::ServiceSpec spec;
  spec.scheme = RouteScheme::kDissemination;  // explicit mask
  spec.custom_mask = hop_by_hop ? fx.chain_mask() : fx.direct_mask();
  spec.link_protocol = LinkProtocol::kReliable;

  client::CbrSender sender{sim, src,
                           {overlay::Destination::unicast(5, 200), spec, 1000, 1200,
                            sim.now(), sim.now() + traffic_time}};
  sim.run_for(traffic_time + 10_s);

  exp::Metrics m;
  m.scalar("sent", static_cast<double>(sender.sent()));
  m.scalar("received", static_cast<double>(sink.received()));
  m.scalar("delivered_pct",
           100.0 * static_cast<double>(sink.received()) / static_cast<double>(sender.sent()));
  auto& latency = m.samples("latency_ms");
  auto& recovered = m.samples("recovered_ms");
  auto& hist = m.hist("latency_hist", 40.0, 200.0, 16);
  sim::OnlineStats on;
  // "Recovered" = needed at least one retransmission. No-loss delivery is
  // ~50.6 ms (5x10 ms fiber + per-node processing) in both configurations;
  // anything above 62 ms clearly went through recovery.
  for (const double v : sink.latencies_ms().sorted_values()) {
    latency.add(v);
    hist.add(v);
    on.add(v);
    if (v > 62.0) recovered.add(v);
  }
  m.scalar("jitter_ms", on.stddev());
  return m;
}

std::string cell_label(double loss, bool hop) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "loss=%.1f%%/%s", loss * 100.0, hop ? "hop" : "e2e");
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = exp::Options::parse(argc, argv, "fig3_hopbyhop", 1, 1000);
  const Duration traffic_time = opts.quick ? 5_s : 20_s;

  bench::heading("FIG3", "Hop-by-hop recovery vs end-to-end recovery (Fig. 3, §III-A)");
  bench::note("Topology: 6 overlay nodes in a chain, 5 fiber hops of 10 ms each (50 ms e2e).");
  bench::note("Flow: 1000 pkt/s CBR, 1200 B, Reliable Data Link, %.0f s of traffic.",
              traffic_time.to_seconds_f());
  bench::note("'e2e' runs the ARQ on one direct 50 ms overlay link over the same fiber;");
  bench::note("'hop' runs the ARQ independently on each 10 ms overlay link.");
  bench::note("Paper: recovered packet needs >=150 ms e2e, but only >=70 ms hop-by-hop.");

  const std::vector<double> losses{0.001, 0.005, 0.01, 0.02, 0.05};
  exp::Experiment ex{opts};
  for (const double loss : losses) {
    for (const bool hop : {false, true}) {
      exp::Json params = exp::Json::object();
      params["loss_per_hop"] = loss;
      params["scheme"] = hop ? "hop-by-hop" : "e2e";
      ex.add_cell(cell_label(loss, hop), std::move(params),
                  [loss, hop, traffic_time](std::uint64_t seed) {
                    // Per-cell salt keeps the legacy behaviour of distinct
                    // streams per loss point.
                    return run(loss, hop, traffic_time,
                               seed + static_cast<std::uint64_t>(loss * 10000));
                  });
    }
  }
  const exp::Report report = ex.run();

  bench::Table t{{"loss/hop", "scheme", "delivered", "p50 ms", "p99 ms", "max ms",
                  "jitter ms", "rec p50", "rec min"}};
  t.print_header();
  for (const double loss : losses) {
    for (const bool hop : {false, true}) {
      const auto& c = report.cell(cell_label(loss, hop));
      const auto& lat = c.samples("latency_ms");
      const auto& rec = c.samples("recovered_ms");
      t.cell(loss * 100.0, "%.1f%%");
      t.cell(std::string{hop ? "hop-by-hop" : "e2e"});
      t.cell(100.0 * c.scalar("received").sum() / c.scalar("sent").sum(), "%.3f%%");
      t.cell(lat.quantile(0.5));
      t.cell(lat.quantile(0.99));
      t.cell(lat.max());
      t.cell(c.scalar_mean("jitter_ms"), "%.3f");
      t.cell(rec.empty() ? 0.0 : rec.quantile(0.5));
      t.cell(rec.empty() ? 0.0 : rec.min());
      t.end_row();
    }
  }
  bench::note("Expected shape: e2e recovered-packet minimum ~150 ms; hop-by-hop ~70 ms;");
  bench::note("hop-by-hop p99 and jitter stay far lower as loss grows.");

  // The figure itself: delivery-latency distributions at 1% per-hop loss.
  std::printf("\n  Latency distribution at 1%% loss/hop (ms buckets, log-ish view):\n");
  for (const bool hop : {false, true}) {
    const auto* h = report.cell(cell_label(0.01, hop)).hist("latency_hist");
    std::printf("\n  %s:\n%s", hop ? "five 10 ms overlay links (hop-by-hop recovery)"
                                   : "one 50 ms path (end-to-end recovery)",
                h != nullptr ? h->render(48).c_str() : "  (no data)\n");
  }
  bench::note("");
  bench::note("The e2e distribution has its recovery mass at ~150-160 ms; hop-by-hop");
  bench::note("concentrates it at ~70-75 ms — Figure 3 in histogram form.");

  return bench::write_report(report, opts) ? 0 : 1;
}
