// FIG3 — Reproduces Figure 3 (§III-A): "50ms network path vs. five 10ms
// overlay links".
//
// Paper claims to regenerate:
//   * End-to-end ARQ over a 50 ms path: a recovered packet needs >= 1 extra
//     RTT, so >= 150 ms total (50 + 100).
//   * Five 10 ms overlay links with hop-by-hop recovery: a recovered packet
//     needs only >= 20 ms extra, so >= 70 ms total.
//   * Hop-by-hop recovery + out-of-order forwarding "significantly reduce
//     the latency and jitter of reliable communication".
//
// Both configurations run over IDENTICAL underlay fiber (the direct overlay
// link rides the same five physical hops); only where the ARQ runs differs.
#include "bench_common.hpp"
#include "client/traffic.hpp"
#include "overlay/network.hpp"

namespace {

using namespace son;
using namespace son::sim::literals;
using overlay::LinkProtocol;
using overlay::RouteScheme;
using sim::Duration;

struct RunResult {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  sim::SampleSet latency;       // all delivered packets, ms
  sim::SampleSet recovered;     // packets that clearly needed recovery, ms
  double jitter_ms = 0.0;       // stddev of latency
};

RunResult run(double per_hop_loss, bool hop_by_hop, std::uint64_t seed) {
  sim::Simulator sim;
  overlay::ChainOptions opts;
  opts.n_nodes = 6;
  opts.hop_latency = 10_ms;
  auto fx = overlay::build_chain(sim, opts, sim::Rng{seed});
  for (const auto link : fx.hop_links) {
    const auto [a, b] = fx.internet->link_endpoints(link);
    fx.internet->link_dir(link, a).set_loss_model(net::make_bernoulli(per_hop_loss));
    fx.internet->link_dir(link, b).set_loss_model(net::make_bernoulli(per_hop_loss));
  }
  fx.overlay->settle(3_s);

  auto& src = fx.overlay->node(0).connect(100);
  auto& dst = fx.overlay->node(5).connect(200);
  client::MeasuringSink sink{dst};

  overlay::ServiceSpec spec;
  spec.scheme = RouteScheme::kDissemination;  // explicit mask
  spec.custom_mask = hop_by_hop ? fx.chain_mask() : fx.direct_mask();
  spec.link_protocol = LinkProtocol::kReliable;

  client::CbrSender sender{sim, src,
                           {overlay::Destination::unicast(5, 200), spec, 1000, 1200,
                            sim.now(), sim.now() + 20_s}};
  sim.run_for(30_s);

  RunResult r;
  r.sent = sender.sent();
  r.received = sink.received();
  sim::OnlineStats on;
  // "Recovered" = needed at least one retransmission. No-loss delivery is
  // ~50.6 ms (5x10 ms fiber + per-node processing) in both configurations;
  // anything above 62 ms clearly went through recovery.
  for (const double v : sink.latencies_ms().sorted_values()) {
    r.latency.add(v);
    on.add(v);
    if (v > 62.0) r.recovered.add(v);
  }
  r.jitter_ms = on.stddev();
  return r;
}

}  // namespace

int main() {
  bench::heading("FIG3", "Hop-by-hop recovery vs end-to-end recovery (Fig. 3, §III-A)");
  bench::note("Topology: 6 overlay nodes in a chain, 5 fiber hops of 10 ms each (50 ms e2e).");
  bench::note("Flow: 1000 pkt/s CBR, 1200 B, Reliable Data Link, 20 s of traffic.");
  bench::note("'e2e' runs the ARQ on one direct 50 ms overlay link over the same fiber;");
  bench::note("'hop' runs the ARQ independently on each 10 ms overlay link.");
  bench::note("Paper: recovered packet needs >=150 ms e2e, but only >=70 ms hop-by-hop.");

  bench::Table t{{"loss/hop", "scheme", "delivered", "p50 ms", "p99 ms", "max ms",
                  "jitter ms", "rec p50", "rec min"}};
  t.print_header();
  for (const double loss : {0.001, 0.005, 0.01, 0.02, 0.05}) {
    for (const bool hop : {false, true}) {
      const RunResult r = run(loss, hop, 1000 + static_cast<std::uint64_t>(loss * 10000));
      t.cell(loss * 100.0, "%.1f%%");
      t.cell(std::string{hop ? "hop-by-hop" : "e2e"});
      t.cell(100.0 * static_cast<double>(r.received) / static_cast<double>(r.sent), "%.3f%%");
      t.cell(r.latency.quantile(0.5));
      t.cell(r.latency.quantile(0.99));
      t.cell(r.latency.max());
      t.cell(r.jitter_ms, "%.3f");
      t.cell(r.recovered.empty() ? 0.0 : r.recovered.quantile(0.5));
      t.cell(r.recovered.empty() ? 0.0 : r.recovered.min());
      t.end_row();
    }
  }
  bench::note("Expected shape: e2e recovered-packet minimum ~150 ms; hop-by-hop ~70 ms;");
  bench::note("hop-by-hop p99 and jitter stay far lower as loss grows.");

  // The figure itself: delivery-latency distributions at 1% per-hop loss.
  std::printf("\n  Latency distribution at 1%% loss/hop (ms buckets, log-ish view):\n");
  for (const bool hop : {false, true}) {
    const RunResult r = run(0.01, hop, 1010);
    sim::Histogram h{40.0, 200.0, 16};
    for (const double v : r.latency.sorted_values()) h.add(v);
    std::printf("\n  %s:\n%s", hop ? "five 10 ms overlay links (hop-by-hop recovery)"
                                   : "one 50 ms path (end-to-end recovery)",
                h.render(48).c_str());
  }
  bench::note("");
  bench::note("The e2e distribution has its recovery mass at ~150-160 ms; hop-by-hop");
  bench::note("concentrates it at ~70-75 ms — Figure 3 in histogram form.");
  return 0;
}
