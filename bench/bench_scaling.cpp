// SCALE — §II-A: "a few tens of well situated overlay nodes... The limited
// number of nodes allows each overlay node to maintain global state
// concerning the condition of all other overlay nodes and the connections
// between them, allowing fast reactions to changes in the network."
//
// Sweeps the overlay size (circulant topologies, 2n links; the 64-bit source
// routing mask caps deployments at 64 links, i.e. n = 32 here) and measures
// what the global-state design costs and buys at each size:
//   * control-plane traffic per node (hellos + state floods),
//   * full route-recompute CPU time (the work done on every LSA change),
//   * end-to-end rerouting time after a fiber cut (what the state buys).
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "client/flow_engine.hpp"
#include "client/traffic.hpp"
#include "overlay/network.hpp"
#include "overlay/sharded.hpp"

namespace {

using namespace son;
using namespace son::sim::literals;
using sim::Duration;
using sim::TimePoint;

double route_recompute_us(std::size_t n, int iters) {
  overlay::TopologyDb db{overlay::circulant_topology(n)};
  overlay::GroupDb groups{n};
  overlay::Router router{0, db, groups};
  // Warm up, then time LSA-apply + full next-hop recompute.
  std::uint64_t seq = 1;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    overlay::LinkStateAd ad;
    ad.origin = 0;
    ad.seq = seq++;
    ad.links = {{0, true, 10.0 + static_cast<double>(i % 3), 0.0}};
    db.apply(ad);
    volatile auto nh = router.next_hop(static_cast<overlay::NodeId>(n / 2));
    (void)nh;
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count() / iters;
}

exp::Metrics run(std::size_t n, Duration traffic_time, int recompute_iters,
                 std::uint64_t seed) {
  sim::Simulator sim;
  overlay::GraphOptions gopts;
  auto fx = overlay::build_graph_fixture(sim, overlay::circulant_topology(n), gopts,
                                         sim::Rng{seed});
  fx.overlay->settle(3_s);

  auto& src = fx.overlay->node(0).connect(1);
  const auto dst_id = static_cast<overlay::NodeId>(n / 2);
  auto& dst = fx.overlay->node(dst_id).connect(2);
  std::vector<double> arrivals;
  client::MeasuringSink sink{dst};
  sink.on_message([&](const overlay::Message&, Duration) {
    arrivals.push_back(sim.now().to_seconds_f());
  });
  client::CbrSender sender{sim, src,
                           {overlay::Destination::unicast(dst_id, 2),
                            overlay::ServiceSpec{}, 500, 200, sim.now(),
                            sim.now() + traffic_time}};

  std::uint64_t frames0 = 0;
  for (overlay::NodeId i = 0; i < n; ++i) frames0 += fx.overlay->node(i).stats().frames_sent;

  sim.schedule(5_s, [&]() {
    // Cut the fiber under the first hop of the route in use.
    const overlay::LinkBit nh = fx.overlay->node(0).router().next_hop(dst_id);
    fx.internet->set_link_up(fx.fiber[nh], false);
  });
  const Duration measured = traffic_time + 2_s;
  sim.run_for(measured);

  std::uint64_t frames1 = 0;
  for (overlay::NodeId i = 0; i < n; ++i) frames1 += fx.overlay->node(i).stats().frames_sent;

  double max_gap = 0.0, prev = 3.0;
  for (const double a : arrivals) {
    max_gap = std::max(max_gap, a - prev);
    prev = a;
  }

  exp::Metrics m;
  m.scalar("ctl_frames_per_node_s",
           static_cast<double>(frames1 - frames0) / static_cast<double>(n) /
                   measured.to_seconds_f() -
               500.0 / static_cast<double>(n));  // subtract the data flow's share
  m.scalar("reroute_gap_ms", max_gap * 1000.0);
  // CPU time is machine-dependent: report it under run.timings, not results.
  m.timing("recompute_us", route_recompute_us(n, recompute_iters));
  return m;
}

// ---- Sharded-kernel scaling -------------------------------------------------
//
// The 12-site continental map, one partition per city, driven hard: the full
// overlay protocol plus 24 CBR flows criss-crossing the map. Identical work
// at every worker count — the deterministic digest column proves it — so the
// wall-clock column isolates what the conservative-parallel kernel buys.
exp::Metrics run_sharded(unsigned workers, Duration dur, std::uint64_t seed) {
  overlay::ShardedMapOptions sopts;
  sopts.workers = workers;
  auto fx = overlay::build_sharded_map(topo::continental_us(), sopts, seed);
  const std::size_t n = fx.underlay.hosts.size();

  std::vector<std::uint64_t> hash(n, 1469598103934665603ULL);
  const auto mix = [](std::uint64_t& h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  for (std::size_t i = 0; i < n; ++i) {
    fx.internet->bind(fx.underlay.hosts[i], 7, [&hash, &fx, mix, i](const net::Datagram& d) {
      mix(hash[i], d.id);
      mix(hash[i],
          static_cast<std::uint64_t>(fx.node_sim(static_cast<overlay::NodeId>(i)).now().ns()));
    });
  }

  fx.settle(1_s);
  const TimePoint t0 = fx.kernel->now();

  struct Flow {
    net::Internet& net;
    sim::Simulator& sim;
    net::HostId src, dst;
    TimePoint stop;
    void tick() {
      if (sim.now() >= stop) return;
      net::Datagram d;
      d.src = src;
      d.dst = dst;
      d.dst_port = 7;
      d.size_bytes = 1400;
      net.send(std::move(d));
      sim.schedule(1_ms, [this]() { tick(); });
    }
  };
  std::vector<std::unique_ptr<Flow>> flows;
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::size_t hop : {std::size_t{3}, std::size_t{6}}) {
      auto& sim = fx.node_sim(static_cast<overlay::NodeId>(i));
      flows.push_back(std::make_unique<Flow>(Flow{*fx.internet, sim, fx.underlay.hosts[i],
                                                  fx.underlay.hosts[(i + hop) % n], t0 + dur}));
      sim.schedule_at(t0 + Duration::microseconds(41 * (flows.size())),
                      [f = flows.back().get()]() { f->tick(); });
    }
  }

  const std::uint64_t fired0 = fx.kernel->events_fired();
  const auto w0 = std::chrono::steady_clock::now();
  fx.kernel->run_until(t0 + dur + 500_ms);
  const auto w1 = std::chrono::steady_clock::now();
  const double wall_s = std::chrono::duration<double>(w1 - w0).count();

  std::uint64_t digest = 1469598103934665603ULL;
  for (std::size_t i = 0; i < n; ++i) mix(digest, hash[i]);

  exp::Metrics m;
  // Deterministic columns: identical at every worker count (the runtime leg
  // of the kernel's 1 == K contract, visible right in the report).
  m.scalar("delivered", static_cast<double>(fx.internet->counters().delivered));
  m.scalar("digest32", static_cast<double>((digest >> 32) ^ (digest & 0xFFFFFFFFULL)));
  // Machine-dependent columns live under timings.
  m.timing("wall_s", wall_s);
  m.timing("events_per_wall_s",
           static_cast<double>(fx.kernel->events_fired() - fired0) / wall_s);
  m.timing("flows_per_wall_s",
           static_cast<double>(fx.internet->counters().delivered) / wall_s);
  return m;
}

// ---- FLOWS: flyweight flow engine at 10^5..10^6 concurrent flows ------------
//
// One client::FlowEngine per continental site carries the whole user
// population of that edge in SoA flow tables — no per-flow objects, no
// per-flow timers. Three service classes share each engine (timely realtime
// with a 150 ms deadline, hop-by-hop reliable, best-effort bulk), and the
// report prices the aggregate model (flows per wall-second, bytes per flow)
// next to per-class delivery percentiles. The digest column makes the cell
// reproducible: identical at every worker count and across reruns.
exp::Metrics run_flows(std::size_t total_flows, const client::LoadCurve& curve,
                       unsigned workers, Duration dur, std::uint64_t seed) {
  overlay::ShardedMapOptions sopts;
  sopts.workers = workers;
  // 10^6 tagged flow keys must not grow per-flow session maps at the nodes.
  sopts.node.session_flow_accounting = false;
  auto fx = overlay::build_sharded_map(topo::continental_us(), sopts, seed);
  const std::size_t n = fx.underlay.hosts.size();

  client::FlowClass timely;
  timely.name = "timely";
  timely.spec.link_protocol = overlay::LinkProtocol::kRealtimeSimple;
  timely.spec.deadline = 150_ms;
  timely.payload_bytes = 200;
  timely.rate_pps = 0.3;
  timely.weight = 0.25;
  client::FlowClass reliable;
  reliable.name = "reliable";
  reliable.spec.link_protocol = overlay::LinkProtocol::kReliable;
  reliable.payload_bytes = 400;
  reliable.rate_pps = 0.2;
  reliable.weight = 0.25;
  client::FlowClass bulk;
  bulk.name = "bulk";
  bulk.payload_bytes = 150;
  bulk.rate_pps = 0.3;
  bulk.poisson = true;
  bulk.weight = 0.5;

  // Partition-local delivery stats: every handler runs on the worker that
  // owns its site, so the slots are never shared.
  const auto mix = [](std::uint64_t& h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  std::vector<std::array<sim::SampleSet, 3>> lat(n);
  std::vector<std::uint64_t> hash(n, 1469598103934665603ULL);
  for (std::size_t i = 0; i < n; ++i) {
    auto& sink = fx.overlay->node(static_cast<overlay::NodeId>(i)).connect(9);
    sink.set_handler([&lat, &hash, mix, i](const overlay::Message& m, Duration l) {
      const std::size_t c =
          m.hdr.link_protocol == overlay::LinkProtocol::kRealtimeSimple ? 0
          : m.hdr.link_protocol == overlay::LinkProtocol::kReliable     ? 1
                                                                        : 2;
      lat[i][c].add(l.to_millis_f());
      mix(hash[i], m.hdr.flow_key);
      mix(hash[i], m.hdr.flow_seq);
    });
  }

  fx.settle(3_s);
  const TimePoint t0 = fx.kernel->now();

  std::vector<std::unique_ptr<client::FlowEngine>> engines;
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<overlay::NodeId>(i);
    client::FlowEngineOptions eo;
    eo.classes = {timely, reliable, bulk};
    eo.dests = {overlay::Destination::unicast(static_cast<overlay::NodeId>((i + 3) % n), 9),
                overlay::Destination::unicast(static_cast<overlay::NodeId>((i + 6) % n), 9)};
    eo.flows = total_flows / n + (i == 0 ? total_flows % n : 0);
    eo.curve = curve;
    // A constant curve holds the full population statically for the whole
    // window — the "sustain 10^6 concurrent flows" configuration. The shaped
    // curves need churn for the batched arrival process to matter.
    if (curve.kind != client::LoadCurve::Kind::kConstant) eo.mean_lifetime = dur / 2;
    eo.start = t0 + Duration::microseconds(113 * (static_cast<std::int64_t>(i) + 1));
    eo.stop = t0 + dur;
    engines.push_back(std::make_unique<client::FlowEngine>(
        fx.node_sim(id), fx.overlay->node(id).connect(3), eo,
        sim::component_stream(seed, static_cast<std::uint32_t>(i),
                              overlay::kStreamFlowEngine, i)));
    engines.back()->start();
  }

  const std::uint64_t fired0 = fx.kernel->events_fired();
  const auto w0 = std::chrono::steady_clock::now();
  fx.kernel->run_until(t0 + dur + 500_ms);
  const auto w1 = std::chrono::steady_clock::now();
  const double wall_s = std::chrono::duration<double>(w1 - w0).count();

  std::uint64_t activated = 0, sent = 0, blocked = 0, peak = 0;
  std::size_t mem = 0;
  for (const auto& e : engines) {
    activated += e->totals().activated;
    sent += e->totals().sent;
    blocked += e->totals().blocked;
    peak += e->peak_active_flows();
    mem += e->memory_bytes();
  }
  std::uint64_t digest = 1469598103934665603ULL;
  std::uint64_t delivered = 0;
  exp::Metrics m;
  for (std::size_t i = 0; i < n; ++i) {
    mix(digest, hash[i]);
    for (std::size_t c = 0; c < 3; ++c) delivered += lat[i][c].size();
    m.samples("lat_timely_ms").merge(lat[i][0]);
    m.samples("lat_reliable_ms").merge(lat[i][1]);
    m.samples("lat_bulk_ms").merge(lat[i][2]);
  }

  // Deterministic columns.
  m.scalar("flows_peak", static_cast<double>(peak));
  m.scalar("activated", static_cast<double>(activated));
  m.scalar("sent", static_cast<double>(sent));
  m.scalar("blocked", static_cast<double>(blocked));
  m.scalar("delivered", static_cast<double>(delivered));
  m.scalar("delivery_ratio",
           sent == 0 ? 0.0 : static_cast<double>(delivered) / static_cast<double>(sent));
  m.scalar("mem_per_flow_bytes",
           peak == 0 ? 0.0 : static_cast<double>(mem) / static_cast<double>(peak));
  m.scalar("digest32", static_cast<double>((digest >> 32) ^ (digest & 0xFFFFFFFFULL)));
  // Machine-dependent columns.
  m.timing("wall_s", wall_s);
  m.timing("flows_per_wall_s", static_cast<double>(activated) / wall_s);
  m.timing("pkts_per_wall_s", static_cast<double>(sent) / wall_s);
  m.timing("events_per_wall_s",
           static_cast<double>(fx.kernel->events_fired() - fired0) / wall_s);
  return m;
}

// ---- Open scenarios on the flow engine --------------------------------------
//
// Overload at the access node: a static population at node 0 offers L times
// the bottleneck fiber's capacity toward node 4. Past L = 1 the delivery
// ratio falls and tail latency explodes — classic congestion collapse, here
// produced by 500 flyweight flows sharing one engine.
exp::Metrics run_overload(double load_factor, Duration dur, std::uint64_t seed) {
  sim::Simulator sim;
  overlay::GraphOptions gopts;
  gopts.bandwidth_bps = 20e6;  // slim fibers: overload is reachable cheaply
  auto fx = overlay::build_graph_fixture(sim, overlay::circulant_topology(8), gopts,
                                         sim::Rng{seed});
  fx.overlay->settle(3_s);

  constexpr std::size_t kFlows = 500;
  constexpr std::size_t kPayload = 1200;
  const double wire_bits = 8.0 * (kPayload + overlay::kMessageHeaderBytes +
                                  overlay::kLinkFrameBytes);
  const double capacity_pps = gopts.bandwidth_bps / wire_bits;

  auto& dst = fx.overlay->node(4).connect(2);
  client::MeasuringSink sink{dst};

  client::FlowClass c;
  c.name = "cbr";
  c.payload_bytes = kPayload;
  c.rate_pps = load_factor * capacity_pps / static_cast<double>(kFlows);
  client::FlowEngineOptions eo;
  eo.classes = {c};
  eo.dests = {overlay::Destination::unicast(4, 2)};
  eo.flows = kFlows;
  eo.start = sim.now();
  eo.stop = sim.now() + dur;
  client::FlowEngine engine{sim, fx.overlay->node(0).connect(3), eo, sim::Rng{seed ^ 0xA11}};
  engine.start();
  sim.run_for(dur + 1_s);

  exp::Metrics m;
  m.scalar("offered_pps", load_factor * capacity_pps);
  m.scalar("sent", static_cast<double>(engine.totals().sent));
  m.scalar("blocked", static_cast<double>(engine.totals().blocked));
  m.scalar("delivery_ratio", sink.delivery_ratio(engine.totals().sent));
  m.scalar("p50_ms", sink.latencies_ms().quantile(0.5));
  m.scalar("p99_ms", sink.latencies_ms().p99());
  return m;
}

// Flash crowd on the multicast tree: nodes 1..7 join group 40; the engine at
// node 0 runs a churning population shaped by the flash-crowd curve — the
// arrival rate jumps 8x for half a second mid-run, and the population (and
// the load on every branch of the tree) spikes with it.
exp::Metrics run_flash_crowd(Duration dur, std::uint64_t seed) {
  sim::Simulator sim;
  overlay::GraphOptions gopts;
  auto fx = overlay::build_graph_fixture(sim, overlay::circulant_topology(8), gopts,
                                         sim::Rng{seed});
  constexpr overlay::GroupId kGroup = 40;
  constexpr std::size_t kMembers = 7;
  std::vector<std::unique_ptr<client::MeasuringSink>> sinks;
  for (overlay::NodeId i = 1; i <= kMembers; ++i) {
    auto& ep = fx.overlay->node(i).connect(5);
    ep.join(kGroup);
    sinks.push_back(std::make_unique<client::MeasuringSink>(ep));
  }
  fx.overlay->settle(3_s);  // memberships flood with the link state

  client::FlowClass c;
  c.name = "event";
  c.payload_bytes = 300;
  c.rate_pps = 4.0;
  c.poisson = true;
  client::LoadCurve curve;
  curve.kind = client::LoadCurve::Kind::kFlashCrowd;
  curve.spike_after = 1_s;
  curve.spike_width = 500_ms;
  curve.spike_factor = 8.0;
  client::FlowEngineOptions eo;
  eo.classes = {c};
  eo.dests = {overlay::Destination::multicast(kGroup)};
  eo.flows = 150;  // steady population; the spike multiplies arrivals by 8
  eo.curve = curve;
  eo.mean_lifetime = 400_ms;
  eo.start = sim.now();
  eo.stop = sim.now() + dur;
  client::FlowEngine engine{sim, fx.overlay->node(0).connect(3), eo, sim::Rng{seed ^ 0xF1A}};
  engine.start();
  sim.run_for(dur + 1_s);

  std::uint64_t received = 0;
  sim::SampleSet lat;
  for (const auto& s : sinks) {
    received += s->received();
    lat.merge(s->latencies_ms());
  }
  const double expected =
      static_cast<double>(engine.totals().sent) * static_cast<double>(kMembers);

  exp::Metrics m;
  m.scalar("steady_flows", static_cast<double>(eo.flows));
  m.scalar("peak_flows", static_cast<double>(engine.peak_active_flows()));
  m.scalar("sent", static_cast<double>(engine.totals().sent));
  m.scalar("delivery_ratio", expected == 0.0 ? 0.0 : static_cast<double>(received) / expected);
  m.scalar("p99_ms", lat.p99());
  return m;
}

// Priority across service classes: a small timely class (IT-priority 200) and
// a bulk class (IT-priority 1) share the 0 -> 4 path, with the IT egress
// pacer (the resource the scheduler divides) set below the bulk offer so the
// priority queue is the bottleneck. Run the timely class alone, then
// contended: the priority queue should hold its tail latency near the
// uncontended baseline while bulk absorbs the loss.
exp::Metrics run_priority_mix(bool contended, Duration dur, std::uint64_t seed) {
  sim::Simulator sim;
  overlay::GraphOptions gopts;
  gopts.node.link_protocols.it_egress_msgs_per_sec = 1500;  // the contended resource
  auto fx = overlay::build_graph_fixture(sim, overlay::circulant_topology(8), gopts,
                                         sim::Rng{seed});
  fx.overlay->settle(3_s);

  auto& hi_dst = fx.overlay->node(4).connect(2);
  client::MeasuringSink hi_sink{hi_dst};
  auto& lo_dst = fx.overlay->node(4).connect(3);
  client::MeasuringSink lo_sink{lo_dst};

  client::FlowClass hi;
  hi.name = "timely";
  hi.spec.link_protocol = overlay::LinkProtocol::kITPriority;
  hi.spec.priority = 200;
  hi.payload_bytes = 300;
  hi.rate_pps = 10.0;
  client::FlowEngineOptions hi_eo;
  hi_eo.classes = {hi};
  hi_eo.dests = {overlay::Destination::unicast(4, 2)};
  hi_eo.flows = 10;
  hi_eo.start = sim.now();
  hi_eo.stop = sim.now() + dur;
  client::FlowEngine hi_engine{sim, fx.overlay->node(0).connect(6), hi_eo,
                               sim::Rng{seed ^ 0xB0B}};
  hi_engine.start();

  std::unique_ptr<client::FlowEngine> lo_engine;
  if (contended) {
    client::FlowClass lo;
    lo.name = "bulk";
    lo.spec.link_protocol = overlay::LinkProtocol::kITPriority;
    lo.spec.priority = 1;
    lo.payload_bytes = 1200;
    lo.rate_pps = 20.0;
    client::FlowEngineOptions lo_eo;
    lo_eo.classes = {lo};
    lo_eo.dests = {overlay::Destination::unicast(4, 3)};
    lo_eo.flows = 100;  // ~2000 msg/s offered against the 1500 msg/s IT pacer
    lo_eo.start = sim.now();
    lo_eo.stop = sim.now() + dur;
    lo_engine = std::make_unique<client::FlowEngine>(sim, fx.overlay->node(0).connect(7),
                                                     lo_eo, sim::Rng{seed ^ 0xB31C});
    lo_engine->start();
  }
  sim.run_for(dur + 1_s);

  exp::Metrics m;
  m.scalar("hi_sent", static_cast<double>(hi_engine.totals().sent));
  m.scalar("hi_delivery_ratio", hi_sink.delivery_ratio(hi_engine.totals().sent));
  m.scalar("hi_p99_ms", hi_sink.latencies_ms().p99());
  m.scalar("lo_sent", lo_engine ? static_cast<double>(lo_engine->totals().sent) : 0.0);
  m.scalar("lo_delivery_ratio",
           lo_engine ? lo_sink.delivery_ratio(lo_engine->totals().sent) : 0.0);
  m.scalar("lo_p99_ms", lo_engine ? lo_sink.latencies_ms().p99() : 0.0);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = exp::Options::parse(argc, argv, "scaling", 1, 900);
  const Duration traffic_time = opts.quick ? 8_s : 15_s;
  const int recompute_iters = opts.quick ? 500 : 2000;

  bench::heading("SCALE", "Global-state costs and benefits vs overlay size (§II-A)");
  bench::note("Circulant overlays C_n(1,2); 64-bit link masks cap n at 32 (64 links) —");
  bench::note("matching the paper's 'a few tens of well situated overlay nodes'.");
  bench::note("Flow at 500 pkt/s, node 0 -> n/2; in-use fiber cut at t=5 s.");

  const std::vector<std::size_t> sizes{8, 16, 24, 32};
  exp::Experiment ex{opts};
  for (const std::size_t n : sizes) {
    exp::Json params = exp::Json::object();
    params["nodes"] = static_cast<std::uint64_t>(n);
    params["links"] = static_cast<std::uint64_t>(2 * n);
    ex.add_cell("n=" + std::to_string(n), std::move(params),
                [n, traffic_time, recompute_iters](std::uint64_t seed) {
                  return run(n, traffic_time, recompute_iters, seed + n);  // legacy 900+n
                });
  }

  // Sharded-kernel cells: worker counts 1, 2, 4, ... up to --shards (resolved;
  // default 1 keeps the default run single-threaded). Same seed for every
  // cell — the digest column must be identical across worker counts.
  std::vector<unsigned> shard_counts{1};
  for (unsigned k = 2; k <= opts.resolved_shards(); k *= 2) shard_counts.push_back(k);
  const Duration shard_dur = opts.quick ? 2_s : 8_s;
  for (const unsigned k : shard_counts) {
    exp::Json params = exp::Json::object();
    params["workers"] = static_cast<std::uint64_t>(k);
    params["partitions"] = static_cast<std::uint64_t>(12);
    ex.add_cell("shards=" + std::to_string(k), std::move(params),
                [k, shard_dur](std::uint64_t seed) { return run_sharded(k, shard_dur, seed); });
  }

  // Flow-engine cells: 10^5 (and, in full runs, 10^6) concurrent flows on the
  // continental map. --flows overrides the count, --load-curve shapes the
  // arrival process, --shards picks the kernel's worker count. One rep: the
  // cell is deterministic (digest32) and the 10^6 trial is the expensive one.
  std::vector<std::size_t> flow_counts;
  if (opts.flows > 0) {
    flow_counts.push_back(static_cast<std::size_t>(opts.flows));
  } else {
    flow_counts.push_back(100'000);
    if (!opts.quick) flow_counts.push_back(1'000'000);
  }
  const client::LoadCurve flow_curve =
      *client::LoadCurve::from_name(opts.load_curve);  // parse() validated the name
  const Duration flow_dur = opts.quick ? 2_s : 3_s;
  const unsigned flow_workers = opts.resolved_shards();
  for (const std::size_t f : flow_counts) {
    exp::Json params = exp::Json::object();
    params["flows"] = static_cast<std::uint64_t>(f);
    params["curve"] = opts.load_curve;
    params["workers"] = static_cast<std::uint64_t>(flow_workers);
    ex.add_cell("flows=" + std::to_string(f), std::move(params),
                [f, flow_curve, flow_workers, flow_dur](std::uint64_t seed) {
                  return run_flows(f, flow_curve, flow_workers, flow_dur, seed);
                },
                1);
  }

  // Open scenarios on the flow engine.
  const Duration scen_dur = opts.quick ? 2_s : 4_s;
  const std::vector<double> load_factors{0.5, 1.5, 3.0};
  for (const double lf : load_factors) {
    char label[32];
    std::snprintf(label, sizeof label, "overload=%.1f", lf);
    exp::Json params = exp::Json::object();
    params["load_factor"] = lf;
    ex.add_cell(label, std::move(params),
                [lf, scen_dur](std::uint64_t seed) { return run_overload(lf, scen_dur, seed); });
  }
  ex.add_cell("flash_crowd", exp::Json::object(),
              [scen_dur](std::uint64_t seed) { return run_flash_crowd(scen_dur, seed); });
  for (const bool contended : {false, true}) {
    exp::Json params = exp::Json::object();
    params["contended"] = contended;
    ex.add_cell(contended ? "prio=contended" : "prio=alone", std::move(params),
                [contended, scen_dur](std::uint64_t seed) {
                  return run_priority_mix(contended, scen_dur, seed);
                });
  }

  const exp::Report report = ex.run();

  bench::Table t{{"nodes", "links", "ctl frames/s/node", "recompute us", "reroute ms"}, 18};
  t.print_header();
  for (const std::size_t n : sizes) {
    const auto& c = report.cell("n=" + std::to_string(n));
    t.cell(static_cast<std::uint64_t>(n));
    t.cell(static_cast<std::uint64_t>(2 * n));
    t.cell(c.scalar_mean("ctl_frames_per_node_s"), "%.0f");
    t.cell(c.timing_mean("recompute_us"), "%.2f");
    t.cell(c.scalar_mean("reroute_gap_ms"), "%.0f");
    t.end_row();
  }
  bench::note("");
  bench::note("Sharded kernel on the 12-site continental map (one partition per city,");
  bench::note("overlay protocol + 24 CBR flows). digest32 must match across rows — the");
  bench::note("worker count is a pure wall-clock knob. Speedup is wall(1) / wall(K).");
  bench::Table st{{"workers", "wall s", "events/s", "flows/s", "digest32", "speedup"}, 14};
  st.print_header();
  const double wall1 = report.cell("shards=1").timing_mean("wall_s");
  for (const unsigned k : shard_counts) {
    const auto& c = report.cell("shards=" + std::to_string(k));
    st.cell(static_cast<std::uint64_t>(k));
    st.cell(c.timing_mean("wall_s"), "%.3f");
    st.cell(c.timing_mean("events_per_wall_s"), "%.0f");
    st.cell(c.timing_mean("flows_per_wall_s"), "%.0f");
    st.cell(static_cast<std::uint64_t>(c.scalar_mean("digest32")));
    st.cell(wall1 / c.timing_mean("wall_s"), "%.2fx");
    st.end_row();
  }
  bench::note("");
  bench::note("Flyweight flow engine, one per continental site: the whole population in");
  bench::note("SoA tables, three service classes (timely/reliable/bulk), batched");
  bench::note("arrivals per --load-curve. mem B/flow is the engine's real table");
  bench::note("footprint at peak population; flows/s and pkts/s are wall-clock rates.");
  bench::Table ft{{"flows", "curve", "wall s", "flows/s", "pkts/s", "mem B/flow", "dlvr",
                   "timely p99 ms", "digest32"},
                  14};
  ft.print_header();
  for (const std::size_t f : flow_counts) {
    const auto& c = report.cell("flows=" + std::to_string(f));
    ft.cell(static_cast<std::uint64_t>(c.scalar_mean("flows_peak")));
    ft.cell(opts.load_curve);
    ft.cell(c.timing_mean("wall_s"), "%.3f");
    ft.cell(c.timing_mean("flows_per_wall_s"), "%.0f");
    ft.cell(c.timing_mean("pkts_per_wall_s"), "%.0f");
    ft.cell(c.scalar_mean("mem_per_flow_bytes"), "%.1f");
    ft.cell(c.scalar_mean("delivery_ratio"), "%.4f");
    ft.cell(c.samples("lat_timely_ms").p99(), "%.2f");
    ft.cell(static_cast<std::uint64_t>(c.scalar_mean("digest32")));
    ft.end_row();
  }

  bench::note("");
  bench::note("Overload at the access node: 500 flows at node 0 offer L x the bottleneck");
  bench::note("fiber's capacity toward node 4 (20 Mb/s fibers). Past L = 1 delivery");
  bench::note("collapses and the tail explodes — congestion collapse in one engine.");
  bench::Table ot{{"offered xC", "offered pps", "sent", "delivery", "p50 ms", "p99 ms"}, 14};
  ot.print_header();
  for (const double lf : load_factors) {
    char label[32];
    std::snprintf(label, sizeof label, "overload=%.1f", lf);
    const auto& c = report.cell(label);
    ot.cell(lf, "%.1f");
    ot.cell(c.scalar_mean("offered_pps"), "%.0f");
    ot.cell(static_cast<std::uint64_t>(c.scalar_mean("sent")));
    ot.cell(c.scalar_mean("delivery_ratio"), "%.4f");
    ot.cell(c.scalar_mean("p50_ms"), "%.2f");
    ot.cell(c.scalar_mean("p99_ms"), "%.2f");
    ot.end_row();
  }

  bench::note("");
  bench::note("Flash crowd on the multicast tree (arrivals x8 for 500 ms mid-run) and");
  bench::note("IT-priority under contention (timely prio 200 vs bulk prio 1 overloading");
  bench::note("the paced IT egress; the timely tail should hold near its uncontended run).");
  {
    const auto& fc = report.cell("flash_crowd");
    bench::Table fct{{"scenario", "steady flows", "peak flows", "sent", "delivery", "p99 ms"},
                     14};
    fct.print_header();
    fct.cell(std::string{"flash_crowd"});
    fct.cell(static_cast<std::uint64_t>(fc.scalar_mean("steady_flows")));
    fct.cell(static_cast<std::uint64_t>(fc.scalar_mean("peak_flows")));
    fct.cell(static_cast<std::uint64_t>(fc.scalar_mean("sent")));
    fct.cell(fc.scalar_mean("delivery_ratio"), "%.4f");
    fct.cell(fc.scalar_mean("p99_ms"), "%.2f");
    fct.end_row();
  }
  {
    bench::Table pt{{"scenario", "timely dlvr", "timely p99 ms", "bulk dlvr", "bulk p99 ms"},
                    15};
    pt.print_header();
    for (const bool contended : {false, true}) {
      const auto& c = report.cell(contended ? "prio=contended" : "prio=alone");
      pt.cell(std::string{contended ? "prio=contended" : "prio=alone"});
      pt.cell(c.scalar_mean("hi_delivery_ratio"), "%.4f");
      pt.cell(c.scalar_mean("hi_p99_ms"), "%.2f");
      pt.cell(c.scalar_mean("lo_delivery_ratio"), "%.4f");
      pt.cell(c.scalar_mean("lo_p99_ms"), "%.2f");
      pt.end_row();
    }
  }

  bench::note("");
  bench::note("Expected shape: at 'a few tens of nodes' scale, per-node control traffic");
  bench::note("grows only with node degree + flood fan-out, full route recomputation");
  bench::note("stays in microseconds, and sub-second rerouting holds at every size —");
  bench::note("the global-state design the paper argues is practical at this scale.");

  return bench::write_report(report, opts) ? 0 : 1;
}
