// SCALE — §II-A: "a few tens of well situated overlay nodes... The limited
// number of nodes allows each overlay node to maintain global state
// concerning the condition of all other overlay nodes and the connections
// between them, allowing fast reactions to changes in the network."
//
// Sweeps the overlay size (circulant topologies, 2n links; the 64-bit source
// routing mask caps deployments at 64 links, i.e. n = 32 here) and measures
// what the global-state design costs and buys at each size:
//   * control-plane traffic per node (hellos + state floods),
//   * full route-recompute CPU time (the work done on every LSA change),
//   * end-to-end rerouting time after a fiber cut (what the state buys).
#include <chrono>

#include "bench_common.hpp"
#include "client/traffic.hpp"
#include "overlay/network.hpp"

namespace {

using namespace son;
using namespace son::sim::literals;
using sim::Duration;
using sim::TimePoint;

double route_recompute_us(std::size_t n) {
  overlay::TopologyDb db{overlay::circulant_topology(n)};
  overlay::GroupDb groups{n};
  overlay::Router router{0, db, groups};
  // Warm up, then time LSA-apply + full next-hop recompute.
  std::uint64_t seq = 1;
  const auto t0 = std::chrono::steady_clock::now();
  constexpr int kIters = 2000;
  for (int i = 0; i < kIters; ++i) {
    overlay::LinkStateAd ad;
    ad.origin = 0;
    ad.seq = seq++;
    ad.links = {{0, true, 10.0 + static_cast<double>(i % 3), 0.0}};
    db.apply(ad);
    volatile auto nh = router.next_hop(static_cast<overlay::NodeId>(n / 2));
    (void)nh;
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count() / kIters;
}

struct ScaleRow {
  double ctl_frames_per_node_s = 0.0;
  double reroute_gap_ms = 0.0;
  double recompute_us = 0.0;
};

ScaleRow run(std::size_t n) {
  ScaleRow row;
  row.recompute_us = route_recompute_us(n);

  sim::Simulator sim;
  overlay::GraphOptions gopts;
  auto fx = overlay::build_graph_fixture(sim, overlay::circulant_topology(n), gopts,
                                         sim::Rng{900 + n});
  fx.overlay->settle(3_s);

  auto& src = fx.overlay->node(0).connect(1);
  const auto dst_id = static_cast<overlay::NodeId>(n / 2);
  auto& dst = fx.overlay->node(dst_id).connect(2);
  std::vector<double> arrivals;
  client::MeasuringSink sink{dst};
  sink.on_message([&](const overlay::Message&, Duration) {
    arrivals.push_back(sim.now().to_seconds_f());
  });
  client::CbrSender sender{sim, src,
                           {overlay::Destination::unicast(dst_id, 2),
                            overlay::ServiceSpec{}, 500, 200, sim.now(), sim.now() + 15_s}};

  std::uint64_t frames0 = 0;
  for (overlay::NodeId i = 0; i < n; ++i) frames0 += fx.overlay->node(i).stats().frames_sent;

  sim.schedule(5_s, [&]() {
    // Cut the fiber under the first hop of the route in use.
    const overlay::LinkBit nh = fx.overlay->node(0).router().next_hop(dst_id);
    fx.internet->set_link_up(fx.fiber[nh], false);
  });
  sim.run_for(17_s);

  std::uint64_t frames1 = 0;
  for (overlay::NodeId i = 0; i < n; ++i) frames1 += fx.overlay->node(i).stats().frames_sent;
  row.ctl_frames_per_node_s =
      static_cast<double>(frames1 - frames0) / static_cast<double>(n) / 17.0 -
      500.0 / static_cast<double>(n);  // subtract the data flow's share

  double max_gap = 0.0, prev = 3.0;
  for (const double a : arrivals) {
    max_gap = std::max(max_gap, a - prev);
    prev = a;
  }
  row.reroute_gap_ms = max_gap * 1000.0;
  return row;
}

}  // namespace

int main() {
  bench::heading("SCALE", "Global-state costs and benefits vs overlay size (§II-A)");
  bench::note("Circulant overlays C_n(1,2); 64-bit link masks cap n at 32 (64 links) —");
  bench::note("matching the paper's 'a few tens of well situated overlay nodes'.");
  bench::note("Flow at 500 pkt/s, node 0 -> n/2; in-use fiber cut at t=5 s.");

  bench::Table t{{"nodes", "links", "ctl frames/s/node", "recompute us", "reroute ms"}, 18};
  t.print_header();
  for (const std::size_t n : {8u, 16u, 24u, 32u}) {
    const ScaleRow row = run(n);
    t.cell(static_cast<std::uint64_t>(n));
    t.cell(static_cast<std::uint64_t>(2 * n));
    t.cell(row.ctl_frames_per_node_s, "%.0f");
    t.cell(row.recompute_us, "%.2f");
    t.cell(row.reroute_gap_ms, "%.0f");
    t.end_row();
  }
  bench::note("");
  bench::note("Expected shape: at 'a few tens of nodes' scale, per-node control traffic");
  bench::note("grows only with node degree + flood fan-out, full route recomputation");
  bench::note("stays in microseconds, and sub-second rerouting holds at every size —");
  bench::note("the global-state design the paper argues is practical at this scale.");
  return 0;
}
