// SCALE — §II-A: "a few tens of well situated overlay nodes... The limited
// number of nodes allows each overlay node to maintain global state
// concerning the condition of all other overlay nodes and the connections
// between them, allowing fast reactions to changes in the network."
//
// Sweeps the overlay size (circulant topologies, 2n links; the 64-bit source
// routing mask caps deployments at 64 links, i.e. n = 32 here) and measures
// what the global-state design costs and buys at each size:
//   * control-plane traffic per node (hellos + state floods),
//   * full route-recompute CPU time (the work done on every LSA change),
//   * end-to-end rerouting time after a fiber cut (what the state buys).
#include <algorithm>
#include <chrono>

#include "bench_common.hpp"
#include "client/traffic.hpp"
#include "overlay/network.hpp"
#include "overlay/sharded.hpp"

namespace {

using namespace son;
using namespace son::sim::literals;
using sim::Duration;
using sim::TimePoint;

double route_recompute_us(std::size_t n, int iters) {
  overlay::TopologyDb db{overlay::circulant_topology(n)};
  overlay::GroupDb groups{n};
  overlay::Router router{0, db, groups};
  // Warm up, then time LSA-apply + full next-hop recompute.
  std::uint64_t seq = 1;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    overlay::LinkStateAd ad;
    ad.origin = 0;
    ad.seq = seq++;
    ad.links = {{0, true, 10.0 + static_cast<double>(i % 3), 0.0}};
    db.apply(ad);
    volatile auto nh = router.next_hop(static_cast<overlay::NodeId>(n / 2));
    (void)nh;
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count() / iters;
}

exp::Metrics run(std::size_t n, Duration traffic_time, int recompute_iters,
                 std::uint64_t seed) {
  sim::Simulator sim;
  overlay::GraphOptions gopts;
  auto fx = overlay::build_graph_fixture(sim, overlay::circulant_topology(n), gopts,
                                         sim::Rng{seed});
  fx.overlay->settle(3_s);

  auto& src = fx.overlay->node(0).connect(1);
  const auto dst_id = static_cast<overlay::NodeId>(n / 2);
  auto& dst = fx.overlay->node(dst_id).connect(2);
  std::vector<double> arrivals;
  client::MeasuringSink sink{dst};
  sink.on_message([&](const overlay::Message&, Duration) {
    arrivals.push_back(sim.now().to_seconds_f());
  });
  client::CbrSender sender{sim, src,
                           {overlay::Destination::unicast(dst_id, 2),
                            overlay::ServiceSpec{}, 500, 200, sim.now(),
                            sim.now() + traffic_time}};

  std::uint64_t frames0 = 0;
  for (overlay::NodeId i = 0; i < n; ++i) frames0 += fx.overlay->node(i).stats().frames_sent;

  sim.schedule(5_s, [&]() {
    // Cut the fiber under the first hop of the route in use.
    const overlay::LinkBit nh = fx.overlay->node(0).router().next_hop(dst_id);
    fx.internet->set_link_up(fx.fiber[nh], false);
  });
  const Duration measured = traffic_time + 2_s;
  sim.run_for(measured);

  std::uint64_t frames1 = 0;
  for (overlay::NodeId i = 0; i < n; ++i) frames1 += fx.overlay->node(i).stats().frames_sent;

  double max_gap = 0.0, prev = 3.0;
  for (const double a : arrivals) {
    max_gap = std::max(max_gap, a - prev);
    prev = a;
  }

  exp::Metrics m;
  m.scalar("ctl_frames_per_node_s",
           static_cast<double>(frames1 - frames0) / static_cast<double>(n) /
                   measured.to_seconds_f() -
               500.0 / static_cast<double>(n));  // subtract the data flow's share
  m.scalar("reroute_gap_ms", max_gap * 1000.0);
  // CPU time is machine-dependent: report it under run.timings, not results.
  m.timing("recompute_us", route_recompute_us(n, recompute_iters));
  return m;
}

// ---- Sharded-kernel scaling -------------------------------------------------
//
// The 12-site continental map, one partition per city, driven hard: the full
// overlay protocol plus 24 CBR flows criss-crossing the map. Identical work
// at every worker count — the deterministic digest column proves it — so the
// wall-clock column isolates what the conservative-parallel kernel buys.
exp::Metrics run_sharded(unsigned workers, Duration dur, std::uint64_t seed) {
  overlay::ShardedMapOptions sopts;
  sopts.workers = workers;
  auto fx = overlay::build_sharded_map(topo::continental_us(), sopts, seed);
  const std::size_t n = fx.underlay.hosts.size();

  std::vector<std::uint64_t> hash(n, 1469598103934665603ULL);
  const auto mix = [](std::uint64_t& h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  for (std::size_t i = 0; i < n; ++i) {
    fx.internet->bind(fx.underlay.hosts[i], 7, [&hash, &fx, mix, i](const net::Datagram& d) {
      mix(hash[i], d.id);
      mix(hash[i],
          static_cast<std::uint64_t>(fx.node_sim(static_cast<overlay::NodeId>(i)).now().ns()));
    });
  }

  fx.settle(1_s);
  const TimePoint t0 = fx.kernel->now();

  struct Flow {
    net::Internet& net;
    sim::Simulator& sim;
    net::HostId src, dst;
    TimePoint stop;
    void tick() {
      if (sim.now() >= stop) return;
      net::Datagram d;
      d.src = src;
      d.dst = dst;
      d.dst_port = 7;
      d.size_bytes = 1400;
      net.send(std::move(d));
      sim.schedule(1_ms, [this]() { tick(); });
    }
  };
  std::vector<std::unique_ptr<Flow>> flows;
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::size_t hop : {std::size_t{3}, std::size_t{6}}) {
      auto& sim = fx.node_sim(static_cast<overlay::NodeId>(i));
      flows.push_back(std::make_unique<Flow>(Flow{*fx.internet, sim, fx.underlay.hosts[i],
                                                  fx.underlay.hosts[(i + hop) % n], t0 + dur}));
      sim.schedule_at(t0 + Duration::microseconds(41 * (flows.size())),
                      [f = flows.back().get()]() { f->tick(); });
    }
  }

  const std::uint64_t fired0 = fx.kernel->events_fired();
  const auto w0 = std::chrono::steady_clock::now();
  fx.kernel->run_until(t0 + dur + 500_ms);
  const auto w1 = std::chrono::steady_clock::now();
  const double wall_s = std::chrono::duration<double>(w1 - w0).count();

  std::uint64_t digest = 1469598103934665603ULL;
  for (std::size_t i = 0; i < n; ++i) mix(digest, hash[i]);

  exp::Metrics m;
  // Deterministic columns: identical at every worker count (the runtime leg
  // of the kernel's 1 == K contract, visible right in the report).
  m.scalar("delivered", static_cast<double>(fx.internet->counters().delivered));
  m.scalar("digest32", static_cast<double>((digest >> 32) ^ (digest & 0xFFFFFFFFULL)));
  // Machine-dependent columns live under timings.
  m.timing("wall_s", wall_s);
  m.timing("events_per_wall_s",
           static_cast<double>(fx.kernel->events_fired() - fired0) / wall_s);
  m.timing("flows_per_wall_s",
           static_cast<double>(fx.internet->counters().delivered) / wall_s);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = exp::Options::parse(argc, argv, "scaling", 1, 900);
  const Duration traffic_time = opts.quick ? 8_s : 15_s;
  const int recompute_iters = opts.quick ? 500 : 2000;

  bench::heading("SCALE", "Global-state costs and benefits vs overlay size (§II-A)");
  bench::note("Circulant overlays C_n(1,2); 64-bit link masks cap n at 32 (64 links) —");
  bench::note("matching the paper's 'a few tens of well situated overlay nodes'.");
  bench::note("Flow at 500 pkt/s, node 0 -> n/2; in-use fiber cut at t=5 s.");

  const std::vector<std::size_t> sizes{8, 16, 24, 32};
  exp::Experiment ex{opts};
  for (const std::size_t n : sizes) {
    exp::Json params = exp::Json::object();
    params["nodes"] = static_cast<std::uint64_t>(n);
    params["links"] = static_cast<std::uint64_t>(2 * n);
    ex.add_cell("n=" + std::to_string(n), std::move(params),
                [n, traffic_time, recompute_iters](std::uint64_t seed) {
                  return run(n, traffic_time, recompute_iters, seed + n);  // legacy 900+n
                });
  }

  // Sharded-kernel cells: worker counts 1, 2, 4, ... up to --shards (resolved;
  // default 1 keeps the default run single-threaded). Same seed for every
  // cell — the digest column must be identical across worker counts.
  std::vector<unsigned> shard_counts{1};
  for (unsigned k = 2; k <= opts.resolved_shards(); k *= 2) shard_counts.push_back(k);
  const Duration shard_dur = opts.quick ? 2_s : 8_s;
  for (const unsigned k : shard_counts) {
    exp::Json params = exp::Json::object();
    params["workers"] = static_cast<std::uint64_t>(k);
    params["partitions"] = static_cast<std::uint64_t>(12);
    ex.add_cell("shards=" + std::to_string(k), std::move(params),
                [k, shard_dur](std::uint64_t seed) { return run_sharded(k, shard_dur, seed); });
  }

  const exp::Report report = ex.run();

  bench::Table t{{"nodes", "links", "ctl frames/s/node", "recompute us", "reroute ms"}, 18};
  t.print_header();
  for (const std::size_t n : sizes) {
    const auto& c = report.cell("n=" + std::to_string(n));
    t.cell(static_cast<std::uint64_t>(n));
    t.cell(static_cast<std::uint64_t>(2 * n));
    t.cell(c.scalar_mean("ctl_frames_per_node_s"), "%.0f");
    t.cell(c.timing_mean("recompute_us"), "%.2f");
    t.cell(c.scalar_mean("reroute_gap_ms"), "%.0f");
    t.end_row();
  }
  bench::note("");
  bench::note("Sharded kernel on the 12-site continental map (one partition per city,");
  bench::note("overlay protocol + 24 CBR flows). digest32 must match across rows — the");
  bench::note("worker count is a pure wall-clock knob. Speedup is wall(1) / wall(K).");
  bench::Table st{{"workers", "wall s", "events/s", "flows/s", "digest32", "speedup"}, 14};
  st.print_header();
  const double wall1 = report.cell("shards=1").timing_mean("wall_s");
  for (const unsigned k : shard_counts) {
    const auto& c = report.cell("shards=" + std::to_string(k));
    st.cell(static_cast<std::uint64_t>(k));
    st.cell(c.timing_mean("wall_s"), "%.3f");
    st.cell(c.timing_mean("events_per_wall_s"), "%.0f");
    st.cell(c.timing_mean("flows_per_wall_s"), "%.0f");
    st.cell(static_cast<std::uint64_t>(c.scalar_mean("digest32")));
    st.cell(wall1 / c.timing_mean("wall_s"), "%.2fx");
    st.end_row();
  }
  bench::note("");
  bench::note("Expected shape: at 'a few tens of nodes' scale, per-node control traffic");
  bench::note("grows only with node degree + flood fan-out, full route recomputation");
  bench::note("stays in microseconds, and sub-second rerouting holds at every size —");
  bench::note("the global-state design the paper argues is practical at this scale.");

  return bench::write_report(report, opts) ? 0 : 1;
}
