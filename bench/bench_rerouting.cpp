// REROUTE — §II-A: "allowing fast reactions to changes in the network, with
// the ability to route around problems at a sub-second scale. This is in
// contrast to the 40 seconds to minutes that BGP may take to converge during
// some network faults."
//
// Scenario: a continuous NYC->LAX flow at 500 pkt/s over the continental-US
// dual-ISP deployment. At t=10 s a fiber on the in-use route is cut. Three
// configurations:
//   (a) native IP (no overlay): the flow rides raw datagrams; the cut
//       blackholes it for the BGP convergence delay (40 s).
//   (b) overlay, one ISP's fiber cut: the overlay link stays up by failing
//       over to the second ISP's channel (multihoming, Fig. 1) — outage is
//       just the hello-based detection time.
//   (c) overlay, BOTH ISPs' fiber cut: the overlay link goes down; the
//       connectivity graph maintenance floods the change and traffic
//       reroutes around it at the overlay level — still sub-second.
//
// Metric: the longest gap in delivery at the receiver, plus messages lost.
#include <algorithm>

#include "bench_common.hpp"
#include "client/traffic.hpp"
#include "overlay/network.hpp"

namespace {

using namespace son;
using namespace son::sim::literals;
using sim::Duration;
using sim::TimePoint;

struct GapResult {
  double max_gap_ms = 0.0;
  std::uint64_t lost = 0;
  std::uint64_t sent = 0;
};

GapResult analyze(const std::vector<double>& arrivals_s, std::uint64_t sent,
                  std::uint64_t received, double start_s, double end_s) {
  GapResult g;
  g.sent = sent;
  g.lost = sent - received;
  double prev = start_s;
  for (const double a : arrivals_s) {
    g.max_gap_ms = std::max(g.max_gap_ms, (a - prev) * 1000.0);
    prev = a;
  }
  g.max_gap_ms = std::max(g.max_gap_ms, (end_s - prev) * 1000.0);
  return g;
}

constexpr double kRate = 500.0;
const Duration kRunFor = 60_s;
const TimePoint kCutAt = TimePoint::zero() + 10_s;

/// (a) Native IP: raw datagrams NYC host -> LAX host, no overlay.
GapResult run_native() {
  sim::Simulator sim;
  net::Internet inet{sim, sim::Rng{1}};
  const auto map = topo::continental_us();
  const auto u = topo::build_dual_isp(inet, map, topo::DualIspOptions{});

  std::vector<double> arrivals;
  std::uint64_t received = 0;
  inet.bind(u.hosts[9], [&](const net::Datagram&) {
    ++received;
    arrivals.push_back(sim.now().to_seconds_f());
  });
  std::uint64_t sent = 0;
  std::function<void()> tick = [&]() {
    if (sim.now() >= TimePoint::zero() + kRunFor) return;
    net::Datagram d;
    d.src = u.hosts[0];
    d.dst = u.hosts[9];
    // Pin to ISP A (single-provider customer), the provider whose fiber is cut.
    net::Internet::SendOptions opts;
    opts.src_attach = 0;
    opts.dst_attach = 0;
    inet.send(std::move(d), opts);
    ++sent;
    sim.schedule(Duration::from_seconds_f(1.0 / kRate), tick);
  };
  sim.schedule(Duration::zero(), tick);

  // Cut the ISP A fiber on the believed route NYC->LAX. The designed route
  // goes through CHI/DEN or the south; cut whatever link the route uses
  // first: find it from the router path.
  sim.schedule_at(kCutAt, [&]() {
    const auto path = inet.path_routers(u.hosts[0], 0, u.hosts[9], 0);
    if (path && path->size() >= 2) {
      const auto link = inet.find_link((*path)[0], (*path)[1]);
      inet.set_link_up(link, false);
    }
  });
  sim.run_until(TimePoint::zero() + kRunFor);
  return analyze(arrivals, sent, received, 0.0, kRunFor.to_seconds_f());
}

/// (b)/(c) Overlay flow; cut one or both ISPs' fiber under the first overlay
/// link of the route in use.
GapResult run_overlay(bool cut_both_isps) {
  sim::Simulator sim;
  net::Internet inet{sim, sim::Rng{2}};
  const auto map = topo::continental_us();
  const auto u = topo::build_dual_isp(inet, map, topo::DualIspOptions{});
  overlay::NodeConfig cfg;
  overlay::OverlayNetwork net{sim, inet, map, u, cfg, sim::Rng{3}};
  net.settle(3_s);

  auto& src = net.node(0).connect(49);   // NYC
  auto& dst = net.node(9).connect(50);   // LAX
  std::vector<double> arrivals;
  client::MeasuringSink sink{dst};
  sink.on_message([&](const overlay::Message&, Duration) {
    arrivals.push_back(sim.now().to_seconds_f());
  });

  overlay::ServiceSpec spec;  // link-state + best effort: pure rerouting test
  client::CbrSender sender{sim, src,
                           {overlay::Destination::unicast(9, 50), spec, kRate, 800,
                            sim.now(), TimePoint::zero() + 3_s + kRunFor}};

  sim.schedule_at(TimePoint::zero() + 3_s + (kCutAt - TimePoint::zero()), [&]() {
    // Cut the fiber (both ISPs' copies if requested) under the first overlay
    // link of the current route.
    const overlay::LinkBit nh = net.node(0).router().next_hop(9);
    inet.set_link_up(u.links_a[nh], false);
    if (cut_both_isps) inet.set_link_up(u.links_b[nh], false);
  });
  sim.run_until(TimePoint::zero() + 3_s + kRunFor);
  return analyze(arrivals, sender.sent(), sink.received(), 3.0,
                 3.0 + kRunFor.to_seconds_f());
}

}  // namespace

int main() {
  bench::heading("REROUTE",
                 "Sub-second overlay rerouting vs BGP convergence (§II-A, Fig. 1)");
  bench::note("Flow: NYC -> LAX, 500 pkt/s for 60 s; fiber cut at t=10 s on the route");
  bench::note("in use. Internet BGP-style convergence delay: 40 s. Overlay hellos:");
  bench::note("100 ms, 3 misses to declare a channel dead.");

  bench::Table t{{"configuration", "max gap ms", "lost", "sent", "downtime"}, 16};
  t.print_header();

  const GapResult native = run_native();
  t.cell(std::string{"native IP"});
  t.cell(native.max_gap_ms, "%.0f");
  t.cell(native.lost);
  t.cell(native.sent);
  t.cell(std::string{"BGP (~40s)"});
  t.end_row();

  const GapResult one = run_overlay(false);
  t.cell(std::string{"overlay, 1 ISP cut"});
  t.cell(one.max_gap_ms, "%.0f");
  t.cell(one.lost);
  t.cell(one.sent);
  t.cell(std::string{"ISP failover"});
  t.end_row();

  const GapResult both = run_overlay(true);
  t.cell(std::string{"overlay, 2 ISPs cut"});
  t.cell(both.max_gap_ms, "%.0f");
  t.cell(both.lost);
  t.cell(both.sent);
  t.cell(std::string{"overlay reroute"});
  t.end_row();

  bench::note("");
  bench::note("Expected shape: native IP goes dark for ~40,000 ms (BGP); the overlay");
  bench::note("restores the flow in hundreds of ms — via multihoming when one provider");
  bench::note("fails, via overlay-level rerouting when the link is fully severed.");
  return 0;
}
