// REROUTE — §II-A: "allowing fast reactions to changes in the network, with
// the ability to route around problems at a sub-second scale. This is in
// contrast to the 40 seconds to minutes that BGP may take to converge during
// some network faults."
//
// Scenario: a continuous NYC->LAX flow at 500 pkt/s over the continental-US
// dual-ISP deployment. At t=10 s a fiber on the in-use route is cut. Three
// configurations:
//   (a) native IP (no overlay): the flow rides raw datagrams; the cut
//       blackholes it for the BGP convergence delay (40 s).
//   (b) overlay, one ISP's fiber cut: the overlay link stays up by failing
//       over to the second ISP's channel (multihoming, Fig. 1) — outage is
//       just the hello-based detection time.
//   (c) overlay, BOTH ISPs' fiber cut: the overlay link goes down; the
//       connectivity graph maintenance floods the change and traffic
//       reroutes around it at the overlay level — still sub-second.
//
// Metric: the longest gap in delivery at the receiver, plus messages lost.
#include <algorithm>

#include "bench_common.hpp"
#include "client/traffic.hpp"
#include "overlay/network.hpp"

namespace {

using namespace son;
using namespace son::sim::literals;
using sim::Duration;
using sim::TimePoint;

exp::Metrics gap_metrics(const std::vector<double>& arrivals_s, std::uint64_t sent,
                         std::uint64_t received, double start_s, double end_s) {
  double max_gap_ms = 0.0;
  double prev = start_s;
  for (const double a : arrivals_s) {
    max_gap_ms = std::max(max_gap_ms, (a - prev) * 1000.0);
    prev = a;
  }
  max_gap_ms = std::max(max_gap_ms, (end_s - prev) * 1000.0);
  exp::Metrics m;
  m.scalar("max_gap_ms", max_gap_ms);
  m.scalar("lost", static_cast<double>(sent - received));
  m.scalar("sent", static_cast<double>(sent));
  return m;
}

constexpr double kRate = 500.0;
const TimePoint kCutAt = TimePoint::zero() + 10_s;

/// (a) Native IP: raw datagrams NYC host -> LAX host, no overlay.
exp::Metrics run_native(Duration run_for, std::uint64_t seed) {
  sim::Simulator sim;
  net::Internet inet{sim, sim::Rng{seed}};
  const auto map = topo::continental_us();
  const auto u = topo::build_dual_isp(inet, map, topo::DualIspOptions{});

  std::vector<double> arrivals;
  std::uint64_t received = 0;
  inet.bind(u.hosts[9], [&](const net::Datagram&) {
    ++received;
    arrivals.push_back(sim.now().to_seconds_f());
  });
  std::uint64_t sent = 0;
  std::function<void()> tick = [&]() {
    if (sim.now() >= TimePoint::zero() + run_for) return;
    net::Datagram d;
    d.src = u.hosts[0];
    d.dst = u.hosts[9];
    // Pin to ISP A (single-provider customer), the provider whose fiber is cut.
    net::Internet::SendOptions opts;
    opts.src_attach = 0;
    opts.dst_attach = 0;
    inet.send(std::move(d), opts);
    ++sent;
    sim.schedule(Duration::from_seconds_f(1.0 / kRate), tick);
  };
  sim.schedule(Duration::zero(), tick);

  // Cut the ISP A fiber on the believed route NYC->LAX. The designed route
  // goes through CHI/DEN or the south; cut whatever link the route uses
  // first: find it from the router path.
  sim.schedule_at(kCutAt, [&]() {
    const auto path = inet.path_routers(u.hosts[0], 0, u.hosts[9], 0);
    if (path && path->size() >= 2) {
      const auto link = inet.find_link((*path)[0], (*path)[1]);
      inet.set_link_up(link, false);
    }
  });
  sim.run_until(TimePoint::zero() + run_for);
  return gap_metrics(arrivals, sent, received, 0.0, run_for.to_seconds_f());
}

/// (b)/(c) Overlay flow; cut one or both ISPs' fiber under the first overlay
/// link of the route in use.
exp::Metrics run_overlay(bool cut_both_isps, Duration run_for, std::uint64_t seed) {
  sim::Simulator sim;
  net::Internet inet{sim, sim::Rng{seed}};
  const auto map = topo::continental_us();
  const auto u = topo::build_dual_isp(inet, map, topo::DualIspOptions{});
  overlay::NodeConfig cfg;
  overlay::OverlayNetwork net{sim, inet, map, u, cfg, sim::Rng{seed + 1}};
  net.settle(3_s);

  auto& src = net.node(0).connect(49);   // NYC
  auto& dst = net.node(9).connect(50);   // LAX
  std::vector<double> arrivals;
  client::MeasuringSink sink{dst};
  sink.on_message([&](const overlay::Message&, Duration) {
    arrivals.push_back(sim.now().to_seconds_f());
  });

  overlay::ServiceSpec spec;  // link-state + best effort: pure rerouting test
  client::CbrSender sender{sim, src,
                           {overlay::Destination::unicast(9, 50), spec, kRate, 800,
                            sim.now(), TimePoint::zero() + 3_s + run_for}};

  sim.schedule_at(TimePoint::zero() + 3_s + (kCutAt - TimePoint::zero()), [&]() {
    // Cut the fiber (both ISPs' copies if requested) under the first overlay
    // link of the current route.
    const overlay::LinkBit nh = net.node(0).router().next_hop(9);
    inet.set_link_up(u.links_a[nh], false);
    if (cut_both_isps) inet.set_link_up(u.links_b[nh], false);
  });
  sim.run_until(TimePoint::zero() + 3_s + run_for);
  return gap_metrics(arrivals, sender.sent(), sink.received(), 3.0,
                     3.0 + run_for.to_seconds_f());
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = exp::Options::parse(argc, argv, "rerouting", 1, 1);
  // The native-IP cell must outlive the 40 s BGP convergence delay to
  // measure it; the quick mode keeps 15 s past the cut instead of 50 s.
  const Duration run_for = opts.quick ? 25_s : 60_s;

  bench::heading("REROUTE",
                 "Sub-second overlay rerouting vs BGP convergence (§II-A, Fig. 1)");
  bench::note("Flow: NYC -> LAX, 500 pkt/s for %.0f s; fiber cut at t=10 s on the route",
              run_for.to_seconds_f());
  bench::note("in use. Internet BGP-style convergence delay: 40 s. Overlay hellos:");
  bench::note("100 ms, 3 misses to declare a channel dead.");

  struct Row {
    const char* label;
    const char* downtime;
  };
  const std::vector<Row> rows{{"native IP", "BGP (~40s)"},
                              {"overlay, 1 ISP cut", "ISP failover"},
                              {"overlay, 2 ISPs cut", "overlay reroute"}};

  exp::Experiment ex{opts};
  {
    exp::Json params = exp::Json::object();
    params["configuration"] = "native";
    ex.add_cell("native IP", std::move(params),
                [run_for](std::uint64_t seed) { return run_native(run_for, seed); });
  }
  for (const bool both : {false, true}) {
    exp::Json params = exp::Json::object();
    params["configuration"] = both ? "overlay_2isp_cut" : "overlay_1isp_cut";
    ex.add_cell(both ? "overlay, 2 ISPs cut" : "overlay, 1 ISP cut", std::move(params),
                [both, run_for](std::uint64_t seed) {
                  return run_overlay(both, run_for, seed + 1);
                });
  }
  const exp::Report report = ex.run();

  bench::Table t{{"configuration", "max gap ms", "lost", "sent", "downtime"}, 16};
  t.print_header();
  for (const auto& row : rows) {
    const auto& c = report.cell(row.label);
    t.cell(std::string{row.label});
    t.cell(c.scalar_mean("max_gap_ms"), "%.0f");
    t.cell(static_cast<std::uint64_t>(c.scalar_mean("lost")));
    t.cell(static_cast<std::uint64_t>(c.scalar_mean("sent")));
    t.cell(std::string{row.downtime});
    t.end_row();
  }

  bench::note("");
  bench::note("Expected shape: native IP goes dark for ~40,000 ms (BGP); the overlay");
  bench::note("restores the flow in hundreds of ms — via multihoming when one provider");
  bench::note("fails, via overlay-level rerouting when the link is fully severed.");

  return bench::write_report(report, opts) ? 0 : 1;
}
