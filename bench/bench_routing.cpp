// ROUTING — incremental link-state engine throughput (BENCH_routing.json).
//
// The tentpole claim of the iSPF work: an LSA should cost work proportional
// to what it changed, not to the size of the overlay. Four cells:
//   * update_incremental — LSA churn on a 32-node / 64-link circulant; each
//     accepted ad is followed by a next-hop query, so the measured loop is
//     exactly the production path: apply -> dirty-edge journal -> iSPF
//     repair -> lazy next-hop resolve.
//   * update_full        — the identical workload with the router pinned to
//     full-Dijkstra rebuilds (set_force_full_spt), i.e. the pre-iSPF
//     engine. Kept in the report as the recorded baseline; the speedup
//     ratio is printed below.
//   * nexthop_query      — steady-state next-hop latency on a warm memo.
//   * multicast_refresh  — multicast tree rebuild + cache eviction under
//     topology churn.
// Both update cells fold every routing answer (next hop + path cost bits)
// into a deterministic route_digest scalar; main() cross-checks that the
// incremental and full engines produced identical digests, so the speedup
// is measured over provably identical routing behavior. Wall-clock rates
// land under run.timings (machine-dependent).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_common.hpp"
#include "overlay/group_state.hpp"
#include "overlay/link_state.hpp"
#include "overlay/network.hpp"
#include "overlay/routing.hpp"
#include "sim/random.hpp"

namespace {

using namespace son;
using overlay::GroupDb;
using overlay::LinkBit;
using overlay::LinkReport;
using overlay::LinkStateAd;
using overlay::NodeId;
using overlay::Router;
using overlay::TopologyDb;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t bits_of(double d) {
  std::uint64_t u = 0;
  static_assert(sizeof(u) == sizeof(d));
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

constexpr std::size_t kNodes = 32;  // circulant C_32(1,2): 64 links

/// Realistic LSA churn: each step one origin re-floods its advertisement.
/// Most per-link reports are unchanged from the previous flood (periodic
/// re-advertisement); each link's measurement moves with probability 1/4,
/// and links flap down/up occasionally. This is the link-state steady state
/// the paper's sub-second rerouting lives in: frequent ads, sparse change.
struct ChurnDriver {
  const topo::Graph& g;
  sim::Rng rng;
  std::vector<std::uint64_t> seq;
  std::vector<LinkStateAd> last;  // previous ad per origin

  ChurnDriver(const topo::Graph& graph, std::uint64_t rng_seed)
      : g{graph}, rng{rng_seed}, seq(g.num_nodes(), 0), last(g.num_nodes()) {
    for (topo::NodeIndex n = 0; n < g.num_nodes(); ++n) {
      LinkStateAd& ad = last[n];
      ad.origin = static_cast<NodeId>(n);
      for (const auto& nbr_edge : g.neighbors(n)) {
        LinkReport r;
        r.link = static_cast<LinkBit>(nbr_edge.second);
        r.latency_ms = g.edge(nbr_edge.second).weight;
        ad.links.push_back(r);
      }
    }
  }

  const LinkStateAd& next_ad() {
    const auto origin = static_cast<NodeId>(rng.index(g.num_nodes()));
    LinkStateAd& ad = last[origin];
    ad.seq = ++seq[origin];
    for (LinkReport& r : ad.links) {
      if (rng.bernoulli(0.25)) {
        r.latency_ms = 5.0 + 10.0 * rng.uniform();
        r.loss_rate = rng.bernoulli(0.2) ? 0.3 * rng.uniform() : 0.0;
        r.up = !rng.bernoulli(0.05);
      }
    }
    return ad;
  }
};

// ---- Cells 1+2: LSA-churn update throughput --------------------------------

exp::Metrics update_churn(std::uint64_t updates, bool force_full, std::uint64_t seed) {
  const topo::Graph g = overlay::circulant_topology(kNodes);
  TopologyDb db{g};
  GroupDb groups{g.num_nodes()};
  Router router{0, db, groups};
  // The baseline runs the whole pre-incremental pipeline: full recost of
  // every edge per version bump, full Dijkstra, eager next-hop table.
  db.set_incremental(!force_full);
  router.set_force_full_spt(force_full);
  ChurnDriver churn{g, seed};
  sim::Rng query_rng{seed ^ 0x9e3779b97f4a7c15ULL};

  std::uint64_t digest = 1469598103934665603ULL;  // FNV offset basis
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < updates; ++i) {
    if (!db.apply(churn.next_ad())) std::abort();  // seqs are always fresh
    const auto dst = static_cast<NodeId>(query_rng.index(kNodes));
    digest = fnv1a(digest, router.next_hop(dst));
    digest = fnv1a(digest, bits_of(router.path_cost_to(dst)));
  }
  const double wall = seconds_since(t0);

  exp::Metrics m;
  m.scalar("updates", static_cast<double>(updates));
  // Folded to 32 bits so the digest is exact in the report's doubles.
  m.scalar("route_digest", static_cast<double>((digest ^ (digest >> 32)) & 0xFFFFFFFFULL));
  m.timing("updates_per_sec", static_cast<double>(updates) / wall);
  return m;
}

// ---- Cell 3: steady-state next-hop query latency ---------------------------

exp::Metrics nexthop_query(std::uint64_t queries, std::uint64_t seed) {
  const topo::Graph g = overlay::circulant_topology(kNodes);
  TopologyDb db{g};
  GroupDb groups{g.num_nodes()};
  Router router{0, db, groups};
  ChurnDriver churn{g, seed};
  for (int i = 0; i < 200; ++i) (void)db.apply(churn.next_ad());  // settle

  sim::Rng query_rng{seed ^ 0xda942042e4dd58b5ULL};
  std::uint64_t digest = 1469598103934665603ULL;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < queries; ++i) {
    digest = fnv1a(digest, router.next_hop(static_cast<NodeId>(query_rng.index(kNodes))));
  }
  const double wall = seconds_since(t0);

  exp::Metrics m;
  m.scalar("queries", static_cast<double>(queries));
  m.scalar("route_digest", static_cast<double>((digest ^ (digest >> 32)) & 0xFFFFFFFFULL));
  m.timing("queries_per_sec", static_cast<double>(queries) / wall);
  return m;
}

// ---- Cell 4: multicast tree refresh under churn ----------------------------

exp::Metrics multicast_refresh(std::uint64_t refreshes, std::uint64_t seed) {
  const topo::Graph g = overlay::circulant_topology(kNodes);
  TopologyDb db{g};
  GroupDb groups{g.num_nodes()};
  Router router{0, db, groups};
  constexpr overlay::GroupId kGroup = 100;
  sim::Rng member_rng{seed ^ 0xa5a5a5a5ULL};
  for (NodeId n = 1; n < kNodes; ++n) {
    if (member_rng.bernoulli(0.3)) groups.apply({n, 1, {kGroup}});
  }
  ChurnDriver churn{g, seed};

  std::uint64_t digest = 1469598103934665603ULL;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < refreshes; ++i) {
    // Every refresh sees a new topology version: worst case for the tree
    // cache (a fresh tree each call; stale entry evicted, not accumulated).
    if (!db.apply(churn.next_ad())) std::abort();
    for (const LinkBit b : router.multicast_links(0, kGroup, overlay::kInvalidLinkBit)) {
      digest = fnv1a(digest, b);
    }
  }
  const double wall = seconds_since(t0);

  exp::Metrics m;
  m.scalar("refreshes", static_cast<double>(refreshes));
  m.scalar("route_digest", static_cast<double>((digest ^ (digest >> 32)) & 0xFFFFFFFFULL));
  m.timing("refreshes_per_sec", static_cast<double>(refreshes) / wall);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = exp::Options::parse(argc, argv, "routing", 3, 7400);
  const std::uint64_t updates = opts.quick ? 50'000 : 500'000;
  const std::uint64_t queries = opts.quick ? 2'000'000 : 20'000'000;
  const std::uint64_t refreshes = opts.quick ? 20'000 : 200'000;

  bench::heading("ROUTING", "Incremental link-state engine (iSPF) throughput");
  bench::note("32-node / 64-link circulant under LSA churn (sparse change per ad).");
  bench::note("update_full is the recorded pre-iSPF baseline: identical workload,");
  bench::note("full Dijkstra per topology version. route_digest must match.");

  exp::Experiment ex{opts};
  {
    exp::Json p = exp::Json::object();
    p["nodes"] = std::uint64_t{kNodes};
    p["links"] = std::uint64_t{2 * kNodes};
    p["updates"] = updates;
    p["engine"] = std::string{"ispf"};
    ex.add_cell("update_incremental", std::move(p),
                [updates](std::uint64_t seed) { return update_churn(updates, false, seed); });
  }
  {
    exp::Json p = exp::Json::object();
    p["nodes"] = std::uint64_t{kNodes};
    p["links"] = std::uint64_t{2 * kNodes};
    p["updates"] = updates;
    p["engine"] = std::string{"full_dijkstra"};
    ex.add_cell("update_full", std::move(p),
                [updates](std::uint64_t seed) { return update_churn(updates, true, seed); });
  }
  {
    exp::Json p = exp::Json::object();
    p["nodes"] = std::uint64_t{kNodes};
    p["queries"] = queries;
    ex.add_cell("nexthop_query", std::move(p),
                [queries](std::uint64_t seed) { return nexthop_query(queries, seed); });
  }
  {
    exp::Json p = exp::Json::object();
    p["nodes"] = std::uint64_t{kNodes};
    p["refreshes"] = refreshes;
    ex.add_cell("multicast_refresh", std::move(p), [refreshes](std::uint64_t seed) {
      return multicast_refresh(refreshes, seed);
    });
  }
  const exp::Report report = ex.run();

  const auto& inc = report.cell("update_incremental");
  const auto& full = report.cell("update_full");
  const double speedup =
      inc.timing_mean("updates_per_sec") / full.timing_mean("updates_per_sec");

  bench::Table t{{"cell", "work/trial", "rate (wall)", "unit"}, 20};
  t.print_header();
  t.cell(std::string{"update_incremental"});
  t.cell(inc.scalar_mean("updates"), "%.0f");
  t.cell(inc.timing_mean("updates_per_sec"), "%.0f");
  t.cell(std::string{"updates/s"});
  t.end_row();
  t.cell(std::string{"update_full"});
  t.cell(full.scalar_mean("updates"), "%.0f");
  t.cell(full.timing_mean("updates_per_sec"), "%.0f");
  t.cell(std::string{"updates/s"});
  t.end_row();
  {
    const auto& c = report.cell("nexthop_query");
    t.cell(std::string{"nexthop_query"});
    t.cell(c.scalar_mean("queries"), "%.0f");
    t.cell(c.timing_mean("queries_per_sec"), "%.0f");
    t.cell(std::string{"queries/s"});
    t.end_row();
  }
  {
    const auto& c = report.cell("multicast_refresh");
    t.cell(std::string{"multicast_refresh"});
    t.cell(c.scalar_mean("refreshes"), "%.0f");
    t.cell(c.timing_mean("refreshes_per_sec"), "%.0f");
    t.cell(std::string{"refreshes/s"});
    t.end_row();
  }
  bench::note("");
  std::printf("  iSPF speedup over full recompute: %.1fx\n", speedup);

  // The speedup is only meaningful if both engines routed identically: the
  // per-seed digests fold every next hop and every path-cost bit pattern.
  const auto& di = inc.scalar("route_digest");
  const auto& df = full.scalar("route_digest");
  if (di.mean() != df.mean() || di.min() != df.min() || di.max() != df.max()) {
    std::fprintf(stderr, "FATAL: incremental/full route_digest mismatch (%.0f vs %.0f)\n",
                 di.mean(), df.mean());
    return 1;
  }
  bench::note("route_digest cross-check: incremental == full (bit-identical routing).");

  return bench::write_report(report, opts) ? 0 : 1;
}
