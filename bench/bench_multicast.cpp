// MCAST — §III-B: overlay multicast efficiency for monitoring/video fan-out.
//
// Paper claims to regenerate:
//   * "Delivering the streams to multiple endpoints efficiently requires a
//     multicast capability that is not practically available on the
//     Internet, but is possible at the overlay level."
//   * "the overlay is able to construct the most efficient multicast tree to
//     route messages to all overlay nodes that have clients in the group";
//     "Only receivers need to join the multicast group".
//   * Anycast: "delivered to exactly one member of the relevant group."
//
// Setup: continental-US overlay; one video source at NYC; r receiver clients
// spread round-robin over the other 11 sites. Compare backbone bytes carried
// per delivered message: overlay multicast tree vs unicast mesh (the source
// sends one copy per receiver — what an application must do without
// multicast).
#include "bench_common.hpp"
#include "client/traffic.hpp"
#include "overlay/network.hpp"

namespace {

using namespace son;
using namespace son::sim::literals;
using overlay::GroupId;
using overlay::NodeId;
using sim::Duration;

constexpr GroupId kGroup = 1000;
constexpr std::size_t kPayload = 1200;

exp::Metrics run(int receivers, bool use_multicast, int messages, std::uint64_t seed) {
  sim::Simulator sim;
  net::Internet inet{sim, sim::Rng{seed}};
  const auto map = topo::continental_us();
  const auto u = topo::build_dual_isp(inet, map, topo::DualIspOptions{});
  overlay::NodeConfig cfg;
  overlay::OverlayNetwork net{sim, inet, map, u, cfg, sim::Rng{seed + 1}};

  // Receiver clients round-robin over the 11 non-source sites; several
  // clients may share a site (the two-level hierarchy absorbs them: the
  // tree's cost depends on member NODES, not client count).
  std::vector<overlay::ClientEndpoint*> receivers_eps;
  std::uint64_t delivered = 0;
  for (int r = 0; r < receivers; ++r) {
    const NodeId node = static_cast<NodeId>(1 + (r % 11));
    auto& ep = net.node(node).connect(static_cast<overlay::VirtualPort>(300 + r / 11));
    ep.join(kGroup);
    ep.set_handler([&delivered](const overlay::Message&, Duration) { ++delivered; });
    receivers_eps.push_back(&ep);
  }
  net.settle(3_s);

  const std::uint64_t base_bytes = inet.backbone_bytes_carried();
  auto& src = net.node(0).connect(99);
  overlay::ServiceSpec spec;
  for (int i = 0; i < messages; ++i) {
    if (use_multicast) {
      src.send(overlay::Destination::multicast(kGroup), overlay::make_payload(kPayload),
               spec);
    } else {
      // Unicast mesh: one copy per receiver node+port, as an application
      // without multicast must.
      for (int r = 0; r < receivers; ++r) {
        const NodeId node = static_cast<NodeId>(1 + (r % 11));
        src.send(overlay::Destination::unicast(
                     node, static_cast<overlay::VirtualPort>(300 + r / 11)),
                 overlay::make_payload(kPayload), spec);
      }
    }
  }
  sim.run_for(2_s);

  // Subtract control-plane chatter measured on an idle twin interval.
  const std::uint64_t traffic_bytes = inet.backbone_bytes_carried() - base_bytes;
  exp::Metrics m;
  m.scalar("backbone_bytes_per_msg", static_cast<double>(traffic_bytes) / messages);
  m.scalar("deliveries_per_msg", static_cast<double>(delivered) / messages);
  return m;
}

/// Anycast spot check: "delivered to exactly one member" (the nearest).
exp::Metrics run_anycast(std::uint64_t seed) {
  sim::Simulator sim;
  net::Internet inet{sim, sim::Rng{seed}};
  const auto map = topo::continental_us();
  const auto u = topo::build_dual_isp(inet, map, topo::DualIspOptions{});
  overlay::NodeConfig cfg;
  overlay::OverlayNetwork net{sim, inet, map, u, cfg, sim::Rng{seed + 1}};
  std::uint64_t wdc = 0, lax = 0;
  auto& near_ep = net.node(1).connect(40);  // WDC, near NYC
  near_ep.join(2000);
  near_ep.set_handler([&](const overlay::Message&, Duration) { ++wdc; });
  auto& far_ep = net.node(9).connect(40);  // LAX
  far_ep.join(2000);
  far_ep.set_handler([&](const overlay::Message&, Duration) { ++lax; });
  net.settle(3_s);
  auto& src = net.node(0).connect(41);
  for (int i = 0; i < 100; ++i) {
    src.send(overlay::Destination::anycast(2000), overlay::make_payload(100),
             overlay::ServiceSpec{});
  }
  sim.run_for(1_s);
  exp::Metrics m;
  m.scalar("near_received", static_cast<double>(wdc));
  m.scalar("far_received", static_cast<double>(lax));
  return m;
}

std::string cell_label(int r, bool mc) {
  return "r=" + std::to_string(r) + (mc ? "/multicast" : "/unicast");
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = exp::Options::parse(argc, argv, "multicast", 1, 600);
  const int messages = opts.quick ? 100 : 500;

  bench::heading("MCAST", "Overlay multicast vs unicast mesh (§III-B)");
  bench::note("US overlay; video source at NYC, %d x 1200 B messages; r receiver", messages);
  bench::note("clients spread over the 11 other sites. Backbone bytes per message");
  bench::note("include control chatter (hellos, LSAs) during the measurement window.");

  const std::vector<int> receiver_counts{2, 4, 8, 16, 32};
  exp::Experiment ex{opts};
  for (const int r : receiver_counts) {
    for (const bool mc : {true, false}) {
      exp::Json params = exp::Json::object();
      params["receivers"] = static_cast<std::int64_t>(r);
      params["mode"] = mc ? "multicast" : "unicast mesh";
      ex.add_cell(cell_label(r, mc), std::move(params),
                  [r, mc, messages](std::uint64_t seed) {
                    // Distinct streams per (mode, receiver count), as before.
                    return run(r, mc, messages,
                               seed + static_cast<std::uint64_t>(r) + (mc ? 0 : 100));
                  });
    }
  }
  {
    exp::Json params = exp::Json::object();
    params["mode"] = "anycast";
    ex.add_cell("anycast", std::move(params),
                [](std::uint64_t seed) { return run_anycast(seed + 1000); },
                /*reps_override=*/1);
  }
  const exp::Report report = ex.run();

  bench::Table t{{"receivers", "mode", "backbone B/msg", "deliveries/msg", "ratio"}, 16};
  t.print_header();
  for (const int r : receiver_counts) {
    const auto& mc = report.cell(cell_label(r, true));
    const auto& uc = report.cell(cell_label(r, false));
    t.cell(static_cast<std::uint64_t>(r));
    t.cell(std::string{"multicast"});
    t.cell(mc.scalar_mean("backbone_bytes_per_msg"), "%.0f");
    t.cell(mc.scalar_mean("deliveries_per_msg"), "%.1f");
    t.cell(std::string{"1.0x"});
    t.end_row();
    t.cell(static_cast<std::uint64_t>(r));
    t.cell(std::string{"unicast mesh"});
    t.cell(uc.scalar_mean("backbone_bytes_per_msg"), "%.0f");
    t.cell(uc.scalar_mean("deliveries_per_msg"), "%.1f");
    t.cell(uc.scalar_mean("backbone_bytes_per_msg") / mc.scalar_mean("backbone_bytes_per_msg"),
           "%.1fx");
    t.end_row();
  }
  bench::note("");
  bench::note("Expected shape: the multicast tree's cost saturates once every site has");
  bench::note("a member (the two-level hierarchy makes extra clients per site free),");
  bench::note("while the unicast mesh grows linearly in the number of clients.");

  const auto& any = report.cell("anycast");
  bench::note("");
  bench::note("Anycast: 100 sends from NYC to a group with members at WDC and LAX ->");
  bench::note("WDC (nearest) received %.0f, LAX received %.0f (expected 100 / 0).",
              any.scalar_mean("near_received"), any.scalar_mean("far_received"));

  return bench::write_report(report, opts) ? 0 : 1;
}
