file(REMOVE_RECURSE
  "CMakeFiles/cloud_monitoring.dir/cloud_monitoring.cpp.o"
  "CMakeFiles/cloud_monitoring.dir/cloud_monitoring.cpp.o.d"
  "cloud_monitoring"
  "cloud_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
