# Empty dependencies file for cloud_monitoring.
# This may be replaced when dependencies are built.
