# Empty dependencies file for compound_flows.
# This may be replaced when dependencies are built.
