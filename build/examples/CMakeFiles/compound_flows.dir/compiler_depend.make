# Empty compiler generated dependencies file for compound_flows.
# This may be replaced when dependencies are built.
