file(REMOVE_RECURSE
  "CMakeFiles/compound_flows.dir/compound_flows.cpp.o"
  "CMakeFiles/compound_flows.dir/compound_flows.cpp.o.d"
  "compound_flows"
  "compound_flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compound_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
