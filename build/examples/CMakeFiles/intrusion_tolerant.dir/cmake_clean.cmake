file(REMOVE_RECURSE
  "CMakeFiles/intrusion_tolerant.dir/intrusion_tolerant.cpp.o"
  "CMakeFiles/intrusion_tolerant.dir/intrusion_tolerant.cpp.o.d"
  "intrusion_tolerant"
  "intrusion_tolerant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intrusion_tolerant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
