# Empty compiler generated dependencies file for intrusion_tolerant.
# This may be replaced when dependencies are built.
