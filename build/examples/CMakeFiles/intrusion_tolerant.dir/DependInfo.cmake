
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/intrusion_tolerant.cpp" "examples/CMakeFiles/intrusion_tolerant.dir/intrusion_tolerant.cpp.o" "gcc" "examples/CMakeFiles/intrusion_tolerant.dir/intrusion_tolerant.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/son_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/son_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/son_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/son_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/son_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/son_client.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
