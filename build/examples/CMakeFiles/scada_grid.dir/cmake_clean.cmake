file(REMOVE_RECURSE
  "CMakeFiles/scada_grid.dir/scada_grid.cpp.o"
  "CMakeFiles/scada_grid.dir/scada_grid.cpp.o.d"
  "scada_grid"
  "scada_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scada_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
