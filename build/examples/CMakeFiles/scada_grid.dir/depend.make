# Empty dependencies file for scada_grid.
# This may be replaced when dependencies are built.
