file(REMOVE_RECURSE
  "CMakeFiles/live_tv.dir/live_tv.cpp.o"
  "CMakeFiles/live_tv.dir/live_tv.cpp.o.d"
  "live_tv"
  "live_tv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_tv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
