# Empty dependencies file for live_tv.
# This may be replaced when dependencies are built.
