# Empty compiler generated dependencies file for son_tests.
# This may be replaced when dependencies are built.
