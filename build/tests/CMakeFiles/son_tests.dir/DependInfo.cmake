
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_client_tunnel.cpp" "tests/CMakeFiles/son_tests.dir/test_client_tunnel.cpp.o" "gcc" "tests/CMakeFiles/son_tests.dir/test_client_tunnel.cpp.o.d"
  "/root/repo/tests/test_congestion_reroute.cpp" "tests/CMakeFiles/son_tests.dir/test_congestion_reroute.cpp.o" "gcc" "tests/CMakeFiles/son_tests.dir/test_congestion_reroute.cpp.o.d"
  "/root/repo/tests/test_crypto.cpp" "tests/CMakeFiles/son_tests.dir/test_crypto.cpp.o" "gcc" "tests/CMakeFiles/son_tests.dir/test_crypto.cpp.o.d"
  "/root/repo/tests/test_net_edge.cpp" "tests/CMakeFiles/son_tests.dir/test_net_edge.cpp.o" "gcc" "tests/CMakeFiles/son_tests.dir/test_net_edge.cpp.o.d"
  "/root/repo/tests/test_net_internet.cpp" "tests/CMakeFiles/son_tests.dir/test_net_internet.cpp.o" "gcc" "tests/CMakeFiles/son_tests.dir/test_net_internet.cpp.o.d"
  "/root/repo/tests/test_net_link.cpp" "tests/CMakeFiles/son_tests.dir/test_net_link.cpp.o" "gcc" "tests/CMakeFiles/son_tests.dir/test_net_link.cpp.o.d"
  "/root/repo/tests/test_net_loss.cpp" "tests/CMakeFiles/son_tests.dir/test_net_loss.cpp.o" "gcc" "tests/CMakeFiles/son_tests.dir/test_net_loss.cpp.o.d"
  "/root/repo/tests/test_overlay_components.cpp" "tests/CMakeFiles/son_tests.dir/test_overlay_components.cpp.o" "gcc" "tests/CMakeFiles/son_tests.dir/test_overlay_components.cpp.o.d"
  "/root/repo/tests/test_overlay_dynamics.cpp" "tests/CMakeFiles/son_tests.dir/test_overlay_dynamics.cpp.o" "gcc" "tests/CMakeFiles/son_tests.dir/test_overlay_dynamics.cpp.o.d"
  "/root/repo/tests/test_overlay_features.cpp" "tests/CMakeFiles/son_tests.dir/test_overlay_features.cpp.o" "gcc" "tests/CMakeFiles/son_tests.dir/test_overlay_features.cpp.o.d"
  "/root/repo/tests/test_overlay_fec.cpp" "tests/CMakeFiles/son_tests.dir/test_overlay_fec.cpp.o" "gcc" "tests/CMakeFiles/son_tests.dir/test_overlay_fec.cpp.o.d"
  "/root/repo/tests/test_overlay_flowstats.cpp" "tests/CMakeFiles/son_tests.dir/test_overlay_flowstats.cpp.o" "gcc" "tests/CMakeFiles/son_tests.dir/test_overlay_flowstats.cpp.o.d"
  "/root/repo/tests/test_overlay_node.cpp" "tests/CMakeFiles/son_tests.dir/test_overlay_node.cpp.o" "gcc" "tests/CMakeFiles/son_tests.dir/test_overlay_node.cpp.o.d"
  "/root/repo/tests/test_overlay_protocols.cpp" "tests/CMakeFiles/son_tests.dir/test_overlay_protocols.cpp.o" "gcc" "tests/CMakeFiles/son_tests.dir/test_overlay_protocols.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/son_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/son_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_protocol_edge.cpp" "tests/CMakeFiles/son_tests.dir/test_protocol_edge.cpp.o" "gcc" "tests/CMakeFiles/son_tests.dir/test_protocol_edge.cpp.o.d"
  "/root/repo/tests/test_robustness.cpp" "tests/CMakeFiles/son_tests.dir/test_robustness.cpp.o" "gcc" "tests/CMakeFiles/son_tests.dir/test_robustness.cpp.o.d"
  "/root/repo/tests/test_sim_event_queue.cpp" "tests/CMakeFiles/son_tests.dir/test_sim_event_queue.cpp.o" "gcc" "tests/CMakeFiles/son_tests.dir/test_sim_event_queue.cpp.o.d"
  "/root/repo/tests/test_sim_fuzz.cpp" "tests/CMakeFiles/son_tests.dir/test_sim_fuzz.cpp.o" "gcc" "tests/CMakeFiles/son_tests.dir/test_sim_fuzz.cpp.o.d"
  "/root/repo/tests/test_sim_random.cpp" "tests/CMakeFiles/son_tests.dir/test_sim_random.cpp.o" "gcc" "tests/CMakeFiles/son_tests.dir/test_sim_random.cpp.o.d"
  "/root/repo/tests/test_sim_simulator.cpp" "tests/CMakeFiles/son_tests.dir/test_sim_simulator.cpp.o" "gcc" "tests/CMakeFiles/son_tests.dir/test_sim_simulator.cpp.o.d"
  "/root/repo/tests/test_sim_stats.cpp" "tests/CMakeFiles/son_tests.dir/test_sim_stats.cpp.o" "gcc" "tests/CMakeFiles/son_tests.dir/test_sim_stats.cpp.o.d"
  "/root/repo/tests/test_sim_time.cpp" "tests/CMakeFiles/son_tests.dir/test_sim_time.cpp.o" "gcc" "tests/CMakeFiles/son_tests.dir/test_sim_time.cpp.o.d"
  "/root/repo/tests/test_topo_designer.cpp" "tests/CMakeFiles/son_tests.dir/test_topo_designer.cpp.o" "gcc" "tests/CMakeFiles/son_tests.dir/test_topo_designer.cpp.o.d"
  "/root/repo/tests/test_topo_geo_backbones.cpp" "tests/CMakeFiles/son_tests.dir/test_topo_geo_backbones.cpp.o" "gcc" "tests/CMakeFiles/son_tests.dir/test_topo_geo_backbones.cpp.o.d"
  "/root/repo/tests/test_topo_graph.cpp" "tests/CMakeFiles/son_tests.dir/test_topo_graph.cpp.o" "gcc" "tests/CMakeFiles/son_tests.dir/test_topo_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/son_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/son_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/son_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/son_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/son_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/son_client.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
