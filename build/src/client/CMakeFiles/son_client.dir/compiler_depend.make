# Empty compiler generated dependencies file for son_client.
# This may be replaced when dependencies are built.
