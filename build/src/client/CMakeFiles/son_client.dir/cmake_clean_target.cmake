file(REMOVE_RECURSE
  "libson_client.a"
)
