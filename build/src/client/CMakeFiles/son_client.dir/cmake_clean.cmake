file(REMOVE_RECURSE
  "CMakeFiles/son_client.dir/socket.cpp.o"
  "CMakeFiles/son_client.dir/socket.cpp.o.d"
  "CMakeFiles/son_client.dir/traffic.cpp.o"
  "CMakeFiles/son_client.dir/traffic.cpp.o.d"
  "CMakeFiles/son_client.dir/tunnel.cpp.o"
  "CMakeFiles/son_client.dir/tunnel.cpp.o.d"
  "libson_client.a"
  "libson_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/son_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
