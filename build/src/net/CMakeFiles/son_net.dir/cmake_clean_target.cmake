file(REMOVE_RECURSE
  "libson_net.a"
)
