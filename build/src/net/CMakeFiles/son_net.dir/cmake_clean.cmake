file(REMOVE_RECURSE
  "CMakeFiles/son_net.dir/cross_traffic.cpp.o"
  "CMakeFiles/son_net.dir/cross_traffic.cpp.o.d"
  "CMakeFiles/son_net.dir/failures.cpp.o"
  "CMakeFiles/son_net.dir/failures.cpp.o.d"
  "CMakeFiles/son_net.dir/internet.cpp.o"
  "CMakeFiles/son_net.dir/internet.cpp.o.d"
  "CMakeFiles/son_net.dir/link.cpp.o"
  "CMakeFiles/son_net.dir/link.cpp.o.d"
  "CMakeFiles/son_net.dir/loss_model.cpp.o"
  "CMakeFiles/son_net.dir/loss_model.cpp.o.d"
  "libson_net.a"
  "libson_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/son_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
