
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/cross_traffic.cpp" "src/net/CMakeFiles/son_net.dir/cross_traffic.cpp.o" "gcc" "src/net/CMakeFiles/son_net.dir/cross_traffic.cpp.o.d"
  "/root/repo/src/net/failures.cpp" "src/net/CMakeFiles/son_net.dir/failures.cpp.o" "gcc" "src/net/CMakeFiles/son_net.dir/failures.cpp.o.d"
  "/root/repo/src/net/internet.cpp" "src/net/CMakeFiles/son_net.dir/internet.cpp.o" "gcc" "src/net/CMakeFiles/son_net.dir/internet.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/net/CMakeFiles/son_net.dir/link.cpp.o" "gcc" "src/net/CMakeFiles/son_net.dir/link.cpp.o.d"
  "/root/repo/src/net/loss_model.cpp" "src/net/CMakeFiles/son_net.dir/loss_model.cpp.o" "gcc" "src/net/CMakeFiles/son_net.dir/loss_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/son_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
