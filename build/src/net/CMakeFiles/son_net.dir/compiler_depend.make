# Empty compiler generated dependencies file for son_net.
# This may be replaced when dependencies are built.
