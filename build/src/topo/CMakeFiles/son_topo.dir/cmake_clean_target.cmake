file(REMOVE_RECURSE
  "libson_topo.a"
)
