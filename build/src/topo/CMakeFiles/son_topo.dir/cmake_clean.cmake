file(REMOVE_RECURSE
  "CMakeFiles/son_topo.dir/backbones.cpp.o"
  "CMakeFiles/son_topo.dir/backbones.cpp.o.d"
  "CMakeFiles/son_topo.dir/designer.cpp.o"
  "CMakeFiles/son_topo.dir/designer.cpp.o.d"
  "CMakeFiles/son_topo.dir/dissemination.cpp.o"
  "CMakeFiles/son_topo.dir/dissemination.cpp.o.d"
  "CMakeFiles/son_topo.dir/geo.cpp.o"
  "CMakeFiles/son_topo.dir/geo.cpp.o.d"
  "CMakeFiles/son_topo.dir/graph.cpp.o"
  "CMakeFiles/son_topo.dir/graph.cpp.o.d"
  "libson_topo.a"
  "libson_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/son_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
