# Empty dependencies file for son_topo.
# This may be replaced when dependencies are built.
