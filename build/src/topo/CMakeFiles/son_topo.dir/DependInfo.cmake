
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/backbones.cpp" "src/topo/CMakeFiles/son_topo.dir/backbones.cpp.o" "gcc" "src/topo/CMakeFiles/son_topo.dir/backbones.cpp.o.d"
  "/root/repo/src/topo/designer.cpp" "src/topo/CMakeFiles/son_topo.dir/designer.cpp.o" "gcc" "src/topo/CMakeFiles/son_topo.dir/designer.cpp.o.d"
  "/root/repo/src/topo/dissemination.cpp" "src/topo/CMakeFiles/son_topo.dir/dissemination.cpp.o" "gcc" "src/topo/CMakeFiles/son_topo.dir/dissemination.cpp.o.d"
  "/root/repo/src/topo/geo.cpp" "src/topo/CMakeFiles/son_topo.dir/geo.cpp.o" "gcc" "src/topo/CMakeFiles/son_topo.dir/geo.cpp.o.d"
  "/root/repo/src/topo/graph.cpp" "src/topo/CMakeFiles/son_topo.dir/graph.cpp.o" "gcc" "src/topo/CMakeFiles/son_topo.dir/graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/son_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/son_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
