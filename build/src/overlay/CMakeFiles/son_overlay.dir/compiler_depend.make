# Empty compiler generated dependencies file for son_overlay.
# This may be replaced when dependencies are built.
