
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/overlay/fec.cpp" "src/overlay/CMakeFiles/son_overlay.dir/fec.cpp.o" "gcc" "src/overlay/CMakeFiles/son_overlay.dir/fec.cpp.o.d"
  "/root/repo/src/overlay/group_state.cpp" "src/overlay/CMakeFiles/son_overlay.dir/group_state.cpp.o" "gcc" "src/overlay/CMakeFiles/son_overlay.dir/group_state.cpp.o.d"
  "/root/repo/src/overlay/it_fair.cpp" "src/overlay/CMakeFiles/son_overlay.dir/it_fair.cpp.o" "gcc" "src/overlay/CMakeFiles/son_overlay.dir/it_fair.cpp.o.d"
  "/root/repo/src/overlay/link_protocols.cpp" "src/overlay/CMakeFiles/son_overlay.dir/link_protocols.cpp.o" "gcc" "src/overlay/CMakeFiles/son_overlay.dir/link_protocols.cpp.o.d"
  "/root/repo/src/overlay/link_state.cpp" "src/overlay/CMakeFiles/son_overlay.dir/link_state.cpp.o" "gcc" "src/overlay/CMakeFiles/son_overlay.dir/link_state.cpp.o.d"
  "/root/repo/src/overlay/message.cpp" "src/overlay/CMakeFiles/son_overlay.dir/message.cpp.o" "gcc" "src/overlay/CMakeFiles/son_overlay.dir/message.cpp.o.d"
  "/root/repo/src/overlay/network.cpp" "src/overlay/CMakeFiles/son_overlay.dir/network.cpp.o" "gcc" "src/overlay/CMakeFiles/son_overlay.dir/network.cpp.o.d"
  "/root/repo/src/overlay/node.cpp" "src/overlay/CMakeFiles/son_overlay.dir/node.cpp.o" "gcc" "src/overlay/CMakeFiles/son_overlay.dir/node.cpp.o.d"
  "/root/repo/src/overlay/realtime.cpp" "src/overlay/CMakeFiles/son_overlay.dir/realtime.cpp.o" "gcc" "src/overlay/CMakeFiles/son_overlay.dir/realtime.cpp.o.d"
  "/root/repo/src/overlay/reliable_link.cpp" "src/overlay/CMakeFiles/son_overlay.dir/reliable_link.cpp.o" "gcc" "src/overlay/CMakeFiles/son_overlay.dir/reliable_link.cpp.o.d"
  "/root/repo/src/overlay/reorder_buffer.cpp" "src/overlay/CMakeFiles/son_overlay.dir/reorder_buffer.cpp.o" "gcc" "src/overlay/CMakeFiles/son_overlay.dir/reorder_buffer.cpp.o.d"
  "/root/repo/src/overlay/routing.cpp" "src/overlay/CMakeFiles/son_overlay.dir/routing.cpp.o" "gcc" "src/overlay/CMakeFiles/son_overlay.dir/routing.cpp.o.d"
  "/root/repo/src/overlay/transform.cpp" "src/overlay/CMakeFiles/son_overlay.dir/transform.cpp.o" "gcc" "src/overlay/CMakeFiles/son_overlay.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/son_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/son_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/son_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/son_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
