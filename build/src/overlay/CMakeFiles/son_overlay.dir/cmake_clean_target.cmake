file(REMOVE_RECURSE
  "libson_overlay.a"
)
