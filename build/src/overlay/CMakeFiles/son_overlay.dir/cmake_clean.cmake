file(REMOVE_RECURSE
  "CMakeFiles/son_overlay.dir/fec.cpp.o"
  "CMakeFiles/son_overlay.dir/fec.cpp.o.d"
  "CMakeFiles/son_overlay.dir/group_state.cpp.o"
  "CMakeFiles/son_overlay.dir/group_state.cpp.o.d"
  "CMakeFiles/son_overlay.dir/it_fair.cpp.o"
  "CMakeFiles/son_overlay.dir/it_fair.cpp.o.d"
  "CMakeFiles/son_overlay.dir/link_protocols.cpp.o"
  "CMakeFiles/son_overlay.dir/link_protocols.cpp.o.d"
  "CMakeFiles/son_overlay.dir/link_state.cpp.o"
  "CMakeFiles/son_overlay.dir/link_state.cpp.o.d"
  "CMakeFiles/son_overlay.dir/message.cpp.o"
  "CMakeFiles/son_overlay.dir/message.cpp.o.d"
  "CMakeFiles/son_overlay.dir/network.cpp.o"
  "CMakeFiles/son_overlay.dir/network.cpp.o.d"
  "CMakeFiles/son_overlay.dir/node.cpp.o"
  "CMakeFiles/son_overlay.dir/node.cpp.o.d"
  "CMakeFiles/son_overlay.dir/realtime.cpp.o"
  "CMakeFiles/son_overlay.dir/realtime.cpp.o.d"
  "CMakeFiles/son_overlay.dir/reliable_link.cpp.o"
  "CMakeFiles/son_overlay.dir/reliable_link.cpp.o.d"
  "CMakeFiles/son_overlay.dir/reorder_buffer.cpp.o"
  "CMakeFiles/son_overlay.dir/reorder_buffer.cpp.o.d"
  "CMakeFiles/son_overlay.dir/routing.cpp.o"
  "CMakeFiles/son_overlay.dir/routing.cpp.o.d"
  "CMakeFiles/son_overlay.dir/transform.cpp.o"
  "CMakeFiles/son_overlay.dir/transform.cpp.o.d"
  "libson_overlay.a"
  "libson_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/son_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
