file(REMOVE_RECURSE
  "libson_sim.a"
)
