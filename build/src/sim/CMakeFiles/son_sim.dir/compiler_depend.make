# Empty compiler generated dependencies file for son_sim.
# This may be replaced when dependencies are built.
