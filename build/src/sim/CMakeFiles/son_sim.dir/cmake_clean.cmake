file(REMOVE_RECURSE
  "CMakeFiles/son_sim.dir/event_queue.cpp.o"
  "CMakeFiles/son_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/son_sim.dir/simulator.cpp.o"
  "CMakeFiles/son_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/son_sim.dir/stats.cpp.o"
  "CMakeFiles/son_sim.dir/stats.cpp.o.d"
  "CMakeFiles/son_sim.dir/time.cpp.o"
  "CMakeFiles/son_sim.dir/time.cpp.o.d"
  "CMakeFiles/son_sim.dir/trace.cpp.o"
  "CMakeFiles/son_sim.dir/trace.cpp.o.d"
  "libson_sim.a"
  "libson_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/son_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
