# Empty compiler generated dependencies file for son_crypto.
# This may be replaced when dependencies are built.
