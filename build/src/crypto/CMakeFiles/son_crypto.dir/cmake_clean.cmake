file(REMOVE_RECURSE
  "CMakeFiles/son_crypto.dir/hmac.cpp.o"
  "CMakeFiles/son_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/son_crypto.dir/keys.cpp.o"
  "CMakeFiles/son_crypto.dir/keys.cpp.o.d"
  "CMakeFiles/son_crypto.dir/sha256.cpp.o"
  "CMakeFiles/son_crypto.dir/sha256.cpp.o.d"
  "libson_crypto.a"
  "libson_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/son_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
