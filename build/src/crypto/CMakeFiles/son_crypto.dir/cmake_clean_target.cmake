file(REMOVE_RECURSE
  "libson_crypto.a"
)
