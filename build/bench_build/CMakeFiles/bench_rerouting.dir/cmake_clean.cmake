file(REMOVE_RECURSE
  "../bench/bench_rerouting"
  "../bench/bench_rerouting.pdb"
  "CMakeFiles/bench_rerouting.dir/bench_rerouting.cpp.o"
  "CMakeFiles/bench_rerouting.dir/bench_rerouting.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rerouting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
