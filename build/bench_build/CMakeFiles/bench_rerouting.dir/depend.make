# Empty dependencies file for bench_rerouting.
# This may be replaced when dependencies are built.
