# Empty compiler generated dependencies file for bench_fig3_hopbyhop.
# This may be replaced when dependencies are built.
