file(REMOVE_RECURSE
  "../bench/bench_fig3_hopbyhop"
  "../bench/bench_fig3_hopbyhop.pdb"
  "CMakeFiles/bench_fig3_hopbyhop.dir/bench_fig3_hopbyhop.cpp.o"
  "CMakeFiles/bench_fig3_hopbyhop.dir/bench_fig3_hopbyhop.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_hopbyhop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
