file(REMOVE_RECURSE
  "../bench/bench_fig4_nmstrikes"
  "../bench/bench_fig4_nmstrikes.pdb"
  "CMakeFiles/bench_fig4_nmstrikes.dir/bench_fig4_nmstrikes.cpp.o"
  "CMakeFiles/bench_fig4_nmstrikes.dir/bench_fig4_nmstrikes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_nmstrikes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
