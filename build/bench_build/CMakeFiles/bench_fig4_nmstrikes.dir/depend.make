# Empty dependencies file for bench_fig4_nmstrikes.
# This may be replaced when dependencies are built.
