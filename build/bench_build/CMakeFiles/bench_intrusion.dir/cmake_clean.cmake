file(REMOVE_RECURSE
  "../bench/bench_intrusion"
  "../bench/bench_intrusion.pdb"
  "CMakeFiles/bench_intrusion.dir/bench_intrusion.cpp.o"
  "CMakeFiles/bench_intrusion.dir/bench_intrusion.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intrusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
