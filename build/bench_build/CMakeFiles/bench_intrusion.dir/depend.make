# Empty dependencies file for bench_intrusion.
# This may be replaced when dependencies are built.
