file(REMOVE_RECURSE
  "../bench/bench_dissemination"
  "../bench/bench_dissemination.pdb"
  "CMakeFiles/bench_dissemination.dir/bench_dissemination.cpp.o"
  "CMakeFiles/bench_dissemination.dir/bench_dissemination.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dissemination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
