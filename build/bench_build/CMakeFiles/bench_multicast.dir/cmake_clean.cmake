file(REMOVE_RECURSE
  "../bench/bench_multicast"
  "../bench/bench_multicast.pdb"
  "CMakeFiles/bench_multicast.dir/bench_multicast.cpp.o"
  "CMakeFiles/bench_multicast.dir/bench_multicast.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
