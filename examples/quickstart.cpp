// Quickstart: bring up a structured overlay on the continental-US map, send
// reliable unicast and multicast traffic, and watch it survive a fiber cut.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "overlay/network.hpp"

using namespace son;
using namespace son::sim::literals;

int main() {
  // 1. A deterministic simulated internet: two ISP backbones following the
  //    same 12-city US geography, every data center dual-homed (Fig. 1).
  sim::Simulator sim;
  net::Internet internet{sim, sim::Rng{/*seed=*/2024}};
  const topo::BackboneMap map = topo::continental_us();
  const topo::BuiltUnderlay underlay =
      topo::build_dual_isp(internet, map, topo::DualIspOptions{});

  // 2. One overlay node per city; hellos, link-state and group state start
  //    flowing on start()/settle().
  overlay::NodeConfig cfg;  // defaults: 100 ms hellos, 3 misses -> down
  overlay::OverlayNetwork net{sim, internet, map, underlay, cfg, sim::Rng{7}};
  net.settle(3_s);
  std::printf("overlay up: %zu nodes, %zu links\n", net.size(),
              net.designed_topology().num_edges());

  // 3. Clients connect to their nearest overlay node on a virtual port —
  //    "a client simply connects to an overlay node" (§II-B).
  auto& nyc_client = net.node(0).connect(/*port=*/5001);
  auto& lax_client = net.node(9).connect(/*port=*/5002);

  lax_client.set_handler([&](const overlay::Message& m, sim::Duration latency) {
    std::printf("  LAX got seq %llu from node %u in %.2f ms\n",
                static_cast<unsigned long long>(m.hdr.flow_seq), m.hdr.origin,
                latency.to_millis_f());
  });

  // 4. Reliable, ordered unicast NYC -> LAX. Each flow picks its own
  //    services (routing scheme + link protocol).
  overlay::ServiceSpec reliable;
  reliable.link_protocol = overlay::LinkProtocol::kReliable;
  reliable.ordered = true;
  for (int i = 0; i < 3; ++i) {
    nyc_client.send(overlay::Destination::unicast(9, 5002),
                    overlay::make_payload(1200), reliable);
  }
  sim.run_for(500_ms);

  // 5. Multicast: receivers join a group; any client can send to it.
  constexpr overlay::GroupId kVideoFeed = 42;
  auto& chi = net.node(4).connect(6000);
  auto& sea = net.node(11).connect(6000);
  chi.join(kVideoFeed);
  sea.join(kVideoFeed);
  chi.set_handler([](const overlay::Message&, sim::Duration lat) {
    std::printf("  CHI got multicast in %.2f ms\n", lat.to_millis_f());
  });
  sea.set_handler([](const overlay::Message&, sim::Duration lat) {
    std::printf("  SEA got multicast in %.2f ms\n", lat.to_millis_f());
  });
  sim.run_for(2_s);  // group state floods
  nyc_client.send(overlay::Destination::multicast(kVideoFeed),
                  overlay::make_payload(1200), overlay::ServiceSpec{});
  sim.run_for(500_ms);

  // 6. Resilience: cut the fiber under the first hop of the NYC->LAX route
  //    in BOTH providers; the overlay reroutes in well under a second, while
  //    the underlying internet would take its 40 s convergence delay.
  const overlay::LinkBit hop = net.node(0).router().next_hop(9);
  internet.set_link_up(underlay.links_a[hop], false);
  internet.set_link_up(underlay.links_b[hop], false);
  std::printf("cut both ISPs' fiber under overlay link %u...\n", hop);
  sim.run_for(1_s);
  nyc_client.send(overlay::Destination::unicast(9, 5002), overlay::make_payload(1200),
                  reliable);
  sim.run_for(500_ms);
  std::printf("done: NYC stats: originated=%llu forwarded=%llu failovers=%llu\n",
              static_cast<unsigned long long>(net.node(0).stats().originated),
              static_cast<unsigned long long>(net.node(0).stats().forwarded),
              static_cast<unsigned long long>(net.node(0).stats().link_failovers));
  return 0;
}
