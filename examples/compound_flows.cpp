// §V-C Compound flows: in-network video transcoding in the cloud.
//
// "A video stream of a live sports event is sent from the stadium as a
// broadcast-quality MPEG transport stream on the overlay and delivered to
// several sports network destinations... One of the destinations of the
// transport stream can be a transcoding facility in the cloud that
// transcodes the signal to different formats and quality levels and
// transports it to CDNs and social media sites... Network conditions and
// failures may lead to rerouting that can include the selection of a
// transcoding facility at a different location."
#include <cstdio>

#include "client/traffic.hpp"
#include "overlay/network.hpp"
#include "overlay/transform.hpp"

using namespace son;
using namespace son::sim::literals;

int main() {
  sim::Simulator sim;
  net::Internet internet{sim, sim::Rng{61}};
  const auto map = topo::continental_us();
  const auto underlay = topo::build_dual_isp(internet, map, topo::DualIspOptions{});
  overlay::NodeConfig cfg;
  overlay::OverlayNetwork net{sim, internet, map, underlay, cfg, sim::Rng{62}};

  constexpr overlay::GroupId kMpegFeed = 500;    // broadcast-quality stream
  constexpr overlay::GroupId kTranscode = 501;   // anycast: transcoding facilities
  constexpr overlay::GroupId kCdnFeed = 502;     // transcoded mobile stream

  // Three sports networks take the broadcast feed directly.
  struct Net {
    const char* name;
    std::uint64_t frames = 0;
  };
  Net sports[3] = {{.name = "ATL-net"}, {.name = "CHI-net"}, {.name = "LAX-net"}};
  const overlay::NodeId sports_nodes[3] = {2, 4, 9};
  for (int i = 0; i < 3; ++i) {
    auto& ep = net.node(sports_nodes[i]).connect(2000);
    ep.join(kMpegFeed);
    ep.set_handler([&n = sports[i]](const overlay::Message&, sim::Duration) { ++n.frames; });
  }

  // Two transcoding facilities (DFW and DEN) each subscribe to the MPEG feed
  // and republish a transcoded stream into the CDN group. To model "exactly
  // one facility transcodes", the stadium ALSO sends each frame to the
  // kTranscode ANYCAST group — the overlay picks the nearest live facility.
  const auto transcode_720p = [](const overlay::Message& m) {
    // 8 Mbps MPEG-TS -> 2 Mbps mobile rendition: quarter-size payload.
    return overlay::make_payload(m.payload_size() / 4, 0x72);
  };
  overlay::ServiceSpec cdn_spec;
  cdn_spec.link_protocol = overlay::LinkProtocol::kReliable;
  overlay::FlowTransformer::Options topts;
  topts.in_port = 2100;
  topts.in_group = kTranscode;
  topts.out = overlay::Destination::multicast(kCdnFeed);
  topts.out_spec = cdn_spec;
  topts.processing = 8_ms;  // transcoding latency
  overlay::FlowTransformer dfw_facility{sim, net.node(5), topts, transcode_720p};
  overlay::FlowTransformer den_facility{sim, net.node(7), topts, transcode_720p};

  // CDN ingest points (MIA and SEA) consume the transcoded rendition.
  struct Cdn {
    const char* name;
    std::uint64_t segments = 0;
    sim::SampleSet e2e_ms;  // stadium-to-CDN including transcoding
  };
  Cdn cdns[2] = {{"MIA-cdn", 0, {}}, {"SEA-cdn", 0, {}}};
  const overlay::NodeId cdn_nodes[2] = {3, 11};
  for (int i = 0; i < 2; ++i) {
    auto& ep = net.node(cdn_nodes[i]).connect(2200);
    ep.join(kCdnFeed);
    ep.set_handler([&c = cdns[i]](const overlay::Message&, sim::Duration lat) {
      ++c.segments;
      c.e2e_ms.add(lat.to_millis_f());
    });
  }
  net.settle(3_s);

  // The stadium (HOU) pushes 30 s of video: each frame goes to the sports
  // networks (multicast) and to the nearest transcoding facility (anycast).
  auto& stadium_mc = net.node(6).connect(2001);
  auto& stadium_any = net.node(6).connect(2002);
  overlay::ServiceSpec feed_spec;
  feed_spec.link_protocol = overlay::LinkProtocol::kReliable;
  client::CbrSender camera{sim, stadium_mc,
                           {overlay::Destination::multicast(kMpegFeed), feed_spec, 416,
                            1200, sim.now(), sim.now() + 30_s}};
  client::CbrSender to_transcoder{sim, stadium_any,
                                  {overlay::Destination::anycast(kTranscode), feed_spec,
                                   416, 1200, sim.now(), sim.now() + 30_s}};

  // At t=+12 s the DFW facility's machine crashes; anycast shifts the
  // compound flow to the DEN facility.
  sim.schedule(12_s, [&]() {
    std::printf("t=%.1fs  *** DFW transcoding facility crashes ***\n",
                sim.now().to_seconds_f());
    net.node(5).set_crashed(true);
  });

  sim.run_for(35_s);

  std::printf("\ncompound flow: stadium (HOU) -> sports nets + cloud transcoding -> CDNs\n\n");
  for (const auto& s : sports) {
    std::printf("  %-8s broadcast frames %llu/%llu\n", s.name,
                static_cast<unsigned long long>(s.frames),
                static_cast<unsigned long long>(camera.sent()));
  }
  std::printf("  transcoders: DFW consumed %llu (crashed mid-run), DEN consumed %llu\n",
              static_cast<unsigned long long>(dfw_facility.stats().consumed),
              static_cast<unsigned long long>(den_facility.stats().consumed));
  for (const auto& c : cdns) {
    std::printf("  %-8s transcoded segments %llu, end-to-end p99 %.1f ms "
                "(incl. 8 ms transcode)\n",
                c.name, static_cast<unsigned long long>(c.segments),
                c.e2e_ms.quantile(0.99));
  }
  std::printf("\nThe facility failure rerouted the compound flow to the other site;\n");
  std::printf("latency accounting spans the whole flow, transformation included.\n");
  return 0;
}
