// §III-B Resilient monitoring and control of global clouds.
//
// Ten "cloud region" endpoints publish telemetry into a multicast group
// consumed by two operations centers (display + analysis engine); the
// operations center issues control commands back over the fully reliable
// service. Mid-run, an entire ISP has an outage — the overlay's multihoming
// keeps both the telemetry fan-in and the command channel alive.
#include <cstdio>

#include "client/traffic.hpp"
#include "overlay/network.hpp"

using namespace son;
using namespace son::sim::literals;

int main() {
  sim::Simulator sim;
  net::Internet internet{sim, sim::Rng{21}};
  const auto map = topo::continental_us();
  const auto underlay = topo::build_dual_isp(internet, map, topo::DualIspOptions{});
  overlay::NodeConfig cfg;
  overlay::OverlayNetwork net{sim, internet, map, underlay, cfg, sim::Rng{22}};

  constexpr overlay::GroupId kTelemetry = 100;
  constexpr overlay::GroupId kCommands = 101;

  // Operations centers at WDC and SFO join the telemetry group ("only
  // receivers need to join"; senders just send).
  struct Ops {
    const char* name;
    std::uint64_t telemetry = 0;
    sim::SampleSet lat_ms;
  };
  Ops ops[2] = {{"WDC-ops", 0, {}}, {"SFO-ops", 0, {}}};
  auto& wdc_ops = net.node(1).connect(9000);
  auto& sfo_ops = net.node(10).connect(9000);
  wdc_ops.join(kTelemetry);
  sfo_ops.join(kTelemetry);
  wdc_ops.set_handler([&](const overlay::Message&, sim::Duration lat) {
    ++ops[0].telemetry;
    ops[0].lat_ms.add(lat.to_millis_f());
  });
  sfo_ops.set_handler([&](const overlay::Message&, sim::Duration lat) {
    ++ops[1].telemetry;
    ops[1].lat_ms.add(lat.to_millis_f());
  });

  // Every region hosts a telemetry publisher and a command receiver.
  std::uint64_t commands_received = 0;
  std::vector<overlay::ClientEndpoint*> agents;
  for (overlay::NodeId n = 0; n < net.size(); ++n) {
    auto& agent = net.node(n).connect(9100);
    agent.join(kCommands);
    agent.set_handler(
        [&commands_received](const overlay::Message&, sim::Duration) { ++commands_received; });
    agents.push_back(&agent);
  }
  net.settle(3_s);

  // Telemetry: timeliness over completeness — best effort is appropriate
  // (the latest reading supersedes lost ones).
  overlay::ServiceSpec telemetry_spec;  // link-state multicast, best effort
  std::vector<std::unique_ptr<client::PoissonSender>> publishers;
  sim::Rng rng{23};
  for (overlay::NodeId n = 0; n < net.size(); ++n) {
    publishers.push_back(std::make_unique<client::PoissonSender>(
        sim, *agents[n],
        client::PoissonSender::Options{overlay::Destination::multicast(kTelemetry),
                                       telemetry_spec, 50, 300, sim.now(),
                                       sim.now() + 30_s},
        rng.fork(n)));
  }

  // Control: complete reliability — Reliable Data Link + ordered delivery.
  overlay::ServiceSpec command_spec;
  command_spec.link_protocol = overlay::LinkProtocol::kReliable;
  command_spec.ordered = true;
  client::CbrSender commander{sim, wdc_ops,
                              {overlay::Destination::multicast(kCommands), command_spec, 10,
                               200, sim.now() + 1_s, sim.now() + 30_s}};

  // Disaster: ISP A suffers a total outage for 10 s in the middle of the run.
  sim.schedule(12_s, [&]() {
    std::printf("t=%.1fs  *** ISP A total outage ***\n", sim.now().to_seconds_f());
    internet.set_isp_up(0, false);
  });
  sim.schedule(22_s, [&]() {
    std::printf("t=%.1fs  *** ISP A restored ***\n", sim.now().to_seconds_f());
    internet.set_isp_up(0, true);
  });

  sim.run_for(35_s);

  std::uint64_t published = 0;
  for (const auto& p : publishers) published += p->sent();
  std::printf("\ncloud monitoring & control, 30 s, 12 regions, 10 s total ISP-A outage mid-run:\n");
  for (const auto& o : ops) {
    std::printf("  %-8s telemetry received %llu/%llu (%.2f%%), p99 latency %.2f ms\n",
                o.name, static_cast<unsigned long long>(o.telemetry),
                static_cast<unsigned long long>(published),
                100.0 * static_cast<double>(o.telemetry) / static_cast<double>(published),
                o.lat_ms.quantile(0.99));
  }
  std::printf("  commands: %llu sent x 12 regions = %llu expected, %llu delivered\n",
              static_cast<unsigned long long>(commander.sent()),
              static_cast<unsigned long long>(commander.sent() * 12),
              static_cast<unsigned long long>(commands_received));
  std::printf("\nThe ISP-wide outage is absorbed by multihoming: overlay links fail\n");
  std::printf("over to the second provider within a few hello intervals, so both\n");
  std::printf("the timely telemetry and the reliable command channel keep working.\n");
  return 0;
}
