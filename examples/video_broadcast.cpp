// §III-A Broadcast-quality video transport.
//
// A broadcaster in NYC feeds a continuous 4 Mbps video stream to five
// affiliate sites. The flow uses overlay multicast + hop-by-hop Reliable
// Data Link with ordered delivery at each destination — the paper's recipe
// for smooth, reliable, efficient distribution. Midway, a loss episode
// degrades one backbone fiber; the hop-by-hop ARQ absorbs it.
#include <cstdio>

#include "client/traffic.hpp"
#include "overlay/network.hpp"

using namespace son;
using namespace son::sim::literals;

int main() {
  sim::Simulator sim;
  net::Internet internet{sim, sim::Rng{11}};
  const auto map = topo::continental_us();
  const auto underlay = topo::build_dual_isp(internet, map, topo::DualIspOptions{});
  overlay::NodeConfig cfg;
  overlay::OverlayNetwork net{sim, internet, map, underlay, cfg, sim::Rng{12}};

  constexpr overlay::GroupId kChannel = 7;
  const std::vector<std::pair<overlay::NodeId, const char*>> affiliates{
      {2, "ATL"}, {4, "CHI"}, {5, "DFW"}, {9, "LAX"}, {11, "SEA"}};

  struct Sink {
    std::string name;
    std::uint64_t frames = 0;
    sim::SampleSet latency_ms;
  };
  std::vector<Sink> sinks(affiliates.size());
  for (std::size_t i = 0; i < affiliates.size(); ++i) {
    sinks[i].name = affiliates[i].second;
    auto& ep = net.node(affiliates[i].first).connect(8000);
    ep.join(kChannel);
    ep.set_handler([&s = sinks[i]](const overlay::Message&, sim::Duration lat) {
      ++s.frames;
      s.latency_ms.add(lat.to_millis_f());
    });
  }
  net.settle(3_s);

  // 4 Mbps = ~416 pkt/s of 1200 B. Reliable + ordered, smooth delivery.
  overlay::ServiceSpec spec;
  spec.link_protocol = overlay::LinkProtocol::kReliable;
  spec.ordered = true;
  auto& studio = net.node(0).connect(8001);
  client::CbrSender camera{sim, studio,
                           {overlay::Destination::multicast(kChannel), spec, 416, 1200,
                            sim.now(), sim.now() + 30_s}};

  // A 5-second 10% loss episode on the NYC-CHI fiber (both ISPs) at t=10 s.
  const auto edge = net.designed_topology().find_edge(0, 4);
  for (const auto links : {&underlay.links_a, &underlay.links_b}) {
    const net::LinkId l = (*links)[edge];
    if (l == net::kInvalidLink) continue;
    const auto [a, b] = internet.link_endpoints(l);
    internet.link_dir(l, a).add_forced_loss_window(sim.now() + 10_s, sim.now() + 15_s, 0.10);
    internet.link_dir(l, b).add_forced_loss_window(sim.now() + 10_s, sim.now() + 15_s, 0.10);
  }

  sim.run_for(32_s);

  std::printf("broadcast-quality video: 30 s at 416 pkt/s (4 Mbps), 5 affiliates,\n");
  std::printf("10%% loss episode on the NYC-CHI fiber during t=[10s,15s):\n\n");
  std::printf("%6s %10s %12s %10s %10s %10s\n", "site", "frames", "complete", "p50 ms",
              "p99 ms", "max ms");
  for (const auto& s : sinks) {
    std::printf("%6s %10llu %11.3f%% %10.2f %10.2f %10.2f\n", s.name.c_str(),
                static_cast<unsigned long long>(s.frames),
                100.0 * static_cast<double>(s.frames) / static_cast<double>(camera.sent()),
                s.latency_ms.quantile(0.5), s.latency_ms.quantile(0.99),
                s.latency_ms.max());
  }
  std::printf("\nEvery affiliate receives every frame; the loss episode shows up only\n");
  std::printf("as a slightly longer tail (hop-by-hop recovery, §III-A).\n");
  return 0;
}
