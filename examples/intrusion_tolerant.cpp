// §IV-B Intrusion-tolerant monitoring and control.
//
// Monitoring and control of high-value infrastructure must "withstand
// attacks on the overlay itself, including compromises of overlay nodes."
// This example runs both IT services at once over a compromised overlay:
//   * Priority messaging (timely monitoring) over constrained flooding,
//   * Reliable messaging (control commands) over 2 node-disjoint paths,
// while one overlay node blackholes transit data and another floods the
// network trying to consume forwarding resources.
#include <cstdio>

#include "client/traffic.hpp"
#include "overlay/network.hpp"

using namespace son;
using namespace son::sim::literals;

int main() {
  sim::Simulator sim;
  overlay::GraphOptions gopts;
  gopts.node.authenticate = true;  // hop-by-hop HMAC on IT protocols
  gopts.node.master_key[0] = 0x5A;
  gopts.node.link_protocols.it_egress_msgs_per_sec = 2000;
  auto fx = overlay::build_graph_fixture(sim, overlay::circulant_topology(12), gopts,
                                         sim::Rng{51});
  auto& net = *fx.overlay;

  constexpr overlay::NodeId kField = 0;    // field site (sensors)
  constexpr overlay::NodeId kControl = 6;  // control center
  constexpr overlay::NodeId kByzantine = 3;
  constexpr overlay::NodeId kFlooder = 9;

  // Node 3 blackholes everything it is asked to forward; node 9 originates
  // a resource-consumption flood toward the control center.
  net.node(kByzantine).set_compromise(overlay::CompromiseBehavior::blackhole());

  auto& sensors = net.node(kField).connect(3000);
  auto& control = net.node(kControl).connect(3001);
  auto& actuators = net.node(kField).connect(3002);

  std::uint64_t monitoring_got = 0, commands_got = 0, junk_got = 0;
  sim::SampleSet mon_lat;
  control.set_handler([&](const overlay::Message& m, sim::Duration lat) {
    if (m.hdr.origin == kFlooder) {
      ++junk_got;
    } else {
      ++monitoring_got;
      mon_lat.add(lat.to_millis_f());
    }
  });
  actuators.set_handler([&](const overlay::Message&, sim::Duration) { ++commands_got; });
  net.settle(3_s);

  // Monitoring: IT-Priority over constrained flooding — timely and immune
  // to both the blackhole (flooding survives any single compromise) and the
  // flooder (per-source fair queues).
  overlay::ServiceSpec monitoring;
  monitoring.scheme = overlay::RouteScheme::kFlooding;
  monitoring.link_protocol = overlay::LinkProtocol::kITPriority;
  monitoring.priority = 7;
  client::CbrSender sensor_stream{sim, sensors,
                                  {overlay::Destination::unicast(kControl, 3001),
                                   monitoring, 200, 400, sim.now(), sim.now() + 20_s}};

  // Control: IT-Reliable over 2 node-disjoint paths (tolerates the single
  // blackholing node wherever it sits).
  overlay::ServiceSpec command;
  command.scheme = overlay::RouteScheme::kDisjointPaths;
  command.num_paths = 2;
  command.link_protocol = overlay::LinkProtocol::kITReliable;
  client::CbrSender commander{sim, control,
                              {overlay::Destination::unicast(kField, 3002), command, 20,
                               200, sim.now(), sim.now() + 20_s}};

  // The flooder hammers the control center at 20x the sensors' rate with
  // max priority, trying to crowd them out.
  auto& flooder = net.node(kFlooder).connect(3999);
  overlay::ServiceSpec junk = monitoring;
  junk.priority = 9;
  client::CbrSender flood{sim, flooder,
                          {overlay::Destination::unicast(kControl, 3001), junk, 4000, 400,
                           sim.now(), sim.now() + 20_s}};

  sim.run_for(25_s);

  std::printf("intrusion-tolerant monitoring & control, 20 s, 12-node overlay with a\n");
  std::printf("blackholing node (3) and a 4000 msg/s flooding source (9):\n\n");
  std::printf("  monitoring : %llu/%llu delivered (%.2f%%), p99 %.1f ms\n",
              static_cast<unsigned long long>(monitoring_got),
              static_cast<unsigned long long>(sensor_stream.sent()),
              100.0 * static_cast<double>(monitoring_got) /
                  static_cast<double>(sensor_stream.sent()),
              mon_lat.quantile(0.99));
  std::printf("  commands   : %llu/%llu delivered (%.2f%%) via IT-Reliable\n",
              static_cast<unsigned long long>(commands_got),
              static_cast<unsigned long long>(commander.sent()),
              100.0 * static_cast<double>(commands_got) /
                  static_cast<double>(commander.sent()));
  std::printf("  flood junk : %llu/%llu admitted at the control center\n",
              static_cast<unsigned long long>(junk_got),
              static_cast<unsigned long long>(flood.sent()));
  std::printf("  auth       : every data frame carried a per-hop HMAC-SHA256 tag\n");
  std::printf("\nThe fair per-source round-robin keeps the sensors' full stream flowing\n");
  std::printf("despite the 20x flood; redundant dissemination routes around the\n");
  std::printf("blackhole (§IV-B).\n");
  return 0;
}
