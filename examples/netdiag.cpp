// netdiag: the operator's view of a structured overlay deployment.
//
// Designs an overlay topology for the 12 US data-center cities from scratch
// (§II-A, topo::design_overlay), deploys it over the dual-ISP underlay,
// then prints what an operations console would show: link health as measured
// by hellos, the routing table, and the reaction to a live fiber cut.
#include <cstdio>

#include "overlay/network.hpp"
#include "topo/designer.hpp"

using namespace son;
using namespace son::sim::literals;

int main() {
  const auto map = topo::continental_us();

  // 1. Design the topology from the city list alone.
  topo::DesignOptions dopts;
  const auto design = topo::design_overlay(map.cities, dopts);
  if (!design) {
    std::printf("no feasible overlay design for these sites\n");
    return 1;
  }
  std::printf("designed overlay: %zu sites, %zu links (stretch %.2fx, all <= %.1f ms)\n\n",
              map.cities.size(), design->edges.size(), design->achieved_stretch,
              dopts.max_link_ms);
  std::printf("  %-4s %-4s %8s\n", "a", "b", "one-way");
  for (std::size_t e = 0; e < design->edges.size(); ++e) {
    const auto [a, b] = design->edges[e];
    std::printf("  %-4s %-4s %7.2fms\n", map.cities[a].name.c_str(),
                map.cities[b].name.c_str(),
                design->graph.edge(static_cast<topo::EdgeIndex>(e)).weight);
  }

  // 2. Deploy it: one host per city, dual-homed; overlay on top.
  sim::Simulator sim;
  net::Internet internet{sim, sim::Rng{77}};
  topo::BackboneMap designed_map;
  designed_map.cities = map.cities;
  designed_map.edges = design->edges;
  const auto underlay = topo::build_dual_isp(internet, designed_map, topo::DualIspOptions{});
  overlay::NodeConfig cfg;
  overlay::OverlayNetwork net{sim, internet, designed_map, underlay, cfg, sim::Rng{78}};
  net.settle(5_s);

  // 3. Link health as the NYC node measures it.
  std::printf("\nlink health at NYC (hello-measured):\n");
  std::printf("  %-10s %5s %8s %8s %8s\n", "link", "up", "channel", "srtt", "loss");
  const auto& g = net.designed_topology();
  for (const auto& [nbr, e] : g.neighbors(0)) {
    const auto h = net.node(0).link_health(static_cast<overlay::LinkBit>(e));
    std::printf("  NYC-%-6s %5s %8d %6.2fms %7.3f%%\n", map.cities[nbr].name.c_str(),
                h.up ? "yes" : "NO", h.active_channel, h.srtt.to_millis_f(),
                100.0 * h.loss_estimate);
  }

  // 4. NYC's routing table.
  std::printf("\nrouting table at NYC (link-state):\n");
  std::printf("  %-6s %-10s %10s\n", "dest", "next hop", "path cost");
  for (overlay::NodeId d = 1; d < net.size(); ++d) {
    const overlay::LinkBit nh = net.node(0).router().next_hop(d);
    const auto via = nh == overlay::kInvalidLinkBit
                         ? std::string{"-"}
                         : map.cities[g.other_end(nh, 0)].name;
    std::printf("  %-6s %-10s %8.2fms\n", map.cities[d].name.c_str(), via.c_str(),
                net.node(0).router().path_cost_to(d));
  }

  // 5. Cut a fiber pair live and show the overlay noticing.
  const overlay::LinkBit victim = net.node(0).router().next_hop(9);  // toward LAX
  std::printf("\n*** cutting both ISPs' fiber under overlay link NYC-%s ***\n",
              map.cities[g.other_end(victim, 0)].name.c_str());
  internet.set_link_up(underlay.links_a[victim], false);
  internet.set_link_up(underlay.links_b[victim], false);
  sim.run_for(1_s);

  const auto h = net.node(0).link_health(victim);
  std::printf("after 1 s: link %s; LAX now routed via %s (cost %.2f ms)\n",
              h.up ? "still up?!" : "declared DOWN",
              map.cities[g.other_end(net.node(0).router().next_hop(9), 0)].name.c_str(),
              net.node(0).router().path_cost_to(9));
  std::printf("node stats: floods=%llu failovers=%llu frames tx/rx=%llu/%llu\n",
              static_cast<unsigned long long>(net.node(0).stats().lsa_floods),
              static_cast<unsigned long long>(net.node(0).stats().link_failovers),
              static_cast<unsigned long long>(net.node(0).stats().frames_sent),
              static_cast<unsigned long long>(net.node(0).stats().frames_received));
  return 0;
}
