// §IV-A Live broadcast-quality video: a two-way interview between studios in
// New York and Los Angeles. "Timely delivery within about 200ms is critical
// to support natural interaction"; the NM-Strikes protocol recovers from
// bursty loss while guaranteeing timeliness.
#include <cstdio>

#include "client/traffic.hpp"
#include "overlay/network.hpp"

using namespace son;
using namespace son::sim::literals;

namespace {

struct Leg {
  const char* name;
  std::uint64_t sent = 0;
  std::uint64_t on_time = 0;
  std::uint64_t late = 0;
  sim::SampleSet lat_ms;
};

}  // namespace

int main() {
  sim::Simulator sim;
  net::Internet internet{sim, sim::Rng{31}};
  const auto map = topo::continental_us();
  const auto underlay = topo::build_dual_isp(internet, map, topo::DualIspOptions{});
  overlay::NodeConfig cfg;
  overlay::OverlayNetwork net{sim, internet, map, underlay, cfg, sim::Rng{32}};

  // Bursty loss on every backbone fiber: short windows of heavy loss, the
  // regime NM-Strikes was designed for.
  net::GilbertElliottLoss::Params ge;
  ge.mean_good_time = 1500_ms;
  ge.mean_bad_time = 40_ms;
  ge.loss_good = 0.0005;
  ge.loss_bad = 0.7;
  sim::Rng lossrng{33};
  for (std::size_t e = 0; e < map.edges.size(); ++e) {
    for (const auto* links : {&underlay.links_a, &underlay.links_b}) {
      const net::LinkId l = (*links)[e];
      if (l == net::kInvalidLink) continue;
      const auto [a, b] = internet.link_endpoints(l);
      internet.link_dir(l, a).set_loss_model(
          net::make_gilbert_elliott(ge, lossrng.fork(l * 2)));
      internet.link_dir(l, b).set_loss_model(
          net::make_gilbert_elliott(ge, lossrng.fork(l * 2 + 1)));
    }
  }
  net.settle(3_s);

  Leg legs[2] = {{"NYC->LAX", 0, 0, 0, {}}, {"LAX->NYC", 0, 0, 0, {}}};
  auto& nyc = net.node(0).connect(7000);
  auto& lax = net.node(9).connect(7000);
  const auto wire = [&](overlay::ClientEndpoint& ep, Leg& leg) {
    ep.set_handler([&leg](const overlay::Message&, sim::Duration lat) {
      leg.lat_ms.add(lat.to_millis_f());
      (lat <= 200_ms ? leg.on_time : leg.late)++;
    });
  };
  wire(lax, legs[0]);
  wire(nyc, legs[1]);

  overlay::ServiceSpec live;
  live.link_protocol = overlay::LinkProtocol::kRealtimeNM;
  live.deadline = 200_ms;  // the live-TV interactivity bound
  live.nm_requests = 3;
  live.nm_retransmissions = 3;

  // 60 s of 1.5 Mbps video each way.
  client::CbrSender cam_nyc{sim, nyc,
                            {overlay::Destination::unicast(9, 7000), live, 156, 1200,
                             sim.now(), sim.now() + 60_s}};
  client::CbrSender cam_lax{sim, lax,
                            {overlay::Destination::unicast(0, 7000), live, 156, 1200,
                             sim.now(), sim.now() + 60_s}};
  sim.run_for(62_s);
  legs[0].sent = cam_nyc.sent();
  legs[1].sent = cam_lax.sent();

  std::printf("live interview, 60 s each way, NM-Strikes(3,3), 200 ms deadline,\n");
  std::printf("bursty loss on every fiber (avg %.2f%%):\n\n",
              100.0 * (1500.0 * 0.0005 + 40.0 * 0.7) / 1540.0);
  for (const auto& leg : legs) {
    std::printf("  %-9s sent %llu, on time %llu (%.3f%%), late %llu, p99 %.1f ms\n",
                leg.name, static_cast<unsigned long long>(leg.sent),
                static_cast<unsigned long long>(leg.on_time),
                100.0 * static_cast<double>(leg.on_time) / static_cast<double>(leg.sent),
                static_cast<unsigned long long>(leg.late), leg.lat_ms.quantile(0.99));
  }
  std::printf("\nOn a ~26 ms continental path the 200 ms bound leaves ~170 ms of\n");
  std::printf("recovery budget; the spaced N requests x M retransmissions bypass the\n");
  std::printf("window of correlated loss, so the interview stays natural (§IV-A).\n");
  return 0;
}
