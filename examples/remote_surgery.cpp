// §V-A Real-time remote manipulation (remote robotic surgery/ultrasound).
//
// "The roundtrip latency must be no more than about 130ms, translating to a
// one-way latency requirement of 65ms" — far too tight for multi-round
// recovery, so the flow combines the single-shot recovery protocol [6,7]
// with a destination-problem dissemination graph [2]: targeted redundancy
// where the problems are.
#include <cstdio>

#include "client/traffic.hpp"
#include "overlay/network.hpp"

using namespace son;
using namespace son::sim::literals;

int main() {
  sim::Simulator sim;
  overlay::GraphOptions gopts;
  auto fx = overlay::build_graph_fixture(sim, overlay::circulant_topology(12), gopts,
                                         sim::Rng{41});
  auto& net = *fx.overlay;
  constexpr overlay::NodeId kSurgeon = 0;
  constexpr overlay::NodeId kRobot = 6;  // ~40 ms away: a continent apart

  // The hospital's metro area has recurring trouble: every 700 ms, two of
  // the robot-side fibers degrade to 85% loss for 100 ms.
  const auto& g = net.designed_topology();
  std::vector<net::LinkId> robot_fibers;
  for (const auto& [nbr, e] : g.neighbors(kRobot)) robot_fibers.push_back(fx.fiber[e]);
  for (int burst = 0; burst < 90; ++burst) {
    const auto from = sim::TimePoint::zero() + 3_s + sim::Duration::milliseconds(burst * 700);
    const auto until = from + 100_ms;
    for (const std::size_t idx :
         {static_cast<std::size_t>(burst) % robot_fibers.size(),
          static_cast<std::size_t>(burst + 1) % robot_fibers.size()}) {
      const auto [a, b] = fx.internet->link_endpoints(robot_fibers[idx]);
      fx.internet->link_dir(robot_fibers[idx], a).add_forced_loss_window(from, until, 0.85);
      fx.internet->link_dir(robot_fibers[idx], b).add_forced_loss_window(from, until, 0.85);
    }
  }
  net.settle(3_s);

  // Haptic command stream: 500 Hz, 65 ms one-way deadline, dissemination
  // graph + one-shot recovery.
  auto& surgeon = net.node(kSurgeon).connect(4000);
  auto& robot = net.node(kRobot).connect(4001);

  std::uint64_t on_time = 0, late = 0;
  sim::SampleSet lat_ms;
  robot.set_handler([&](const overlay::Message&, sim::Duration lat) {
    lat_ms.add(lat.to_millis_f());
    (lat <= 65_ms ? on_time : late)++;
  });

  overlay::ServiceSpec haptic;
  haptic.scheme = overlay::RouteScheme::kDissemination;
  haptic.dissem_dst_fanin = 2;
  haptic.link_protocol = overlay::LinkProtocol::kRealtimeSimple;
  haptic.deadline = 65_ms;

  client::CbrSender hand{sim, surgeon,
                         {overlay::Destination::unicast(kRobot, 4001), haptic, 500, 200,
                          sim.now(), sim.now() + 60_s}};

  // Video/haptic feedback the other way: same service.
  std::uint64_t fb_on_time = 0;
  std::uint64_t fb_total = 0;
  surgeon.set_handler([&](const overlay::Message&, sim::Duration lat) {
    ++fb_total;
    if (lat <= 65_ms) ++fb_on_time;
  });
  client::CbrSender feedback{sim, robot,
                             {overlay::Destination::unicast(kSurgeon, 4000), haptic, 500,
                              400, sim.now(), sim.now() + 60_s}};

  sim.run_for(62_s);

  std::printf("remote surgery: 60 s of 500 Hz haptics across a continent (~40 ms),\n");
  std::printf("recurring 2-fiber loss bursts at the hospital side:\n\n");
  std::printf("  commands : %llu sent, %llu within 65 ms (%.4f%%), %llu late/lost\n",
              static_cast<unsigned long long>(hand.sent()),
              static_cast<unsigned long long>(on_time),
              100.0 * static_cast<double>(on_time) / static_cast<double>(hand.sent()),
              static_cast<unsigned long long>(hand.sent() - on_time));
  std::printf("  feedback : %llu sent, %llu delivered within 65 ms (%.4f%%)\n",
              static_cast<unsigned long long>(feedback.sent()),
              static_cast<unsigned long long>(fb_on_time),
              100.0 * static_cast<double>(fb_on_time) /
                  static_cast<double>(feedback.sent()));
  std::printf("  command latency: p50 %.2f ms, p99 %.2f ms, max %.2f ms\n",
              lat_ms.quantile(0.5), lat_ms.quantile(0.99), lat_ms.max());
  std::printf("\nWithin the 20-25 ms of slack the deadline allows, the dissemination\n");
  std::printf("graph's targeted fan-in rides out the bursts that would kill a single\n");
  std::printf("path or uniform disjoint paths (§V-A, reference [2]).\n");
  return 0;
}
