// §II-D Cost and deployment: scaling out with clusters and parallel overlays.
//
// "Depending on the traffic load, a single computer may not be able to
// provide the necessary processing at line speed. To deal with this issue,
// additional processing resources can be deployed as clusters of computers
// running in the data centers. Each computer in a cluster can act as a node
// in one or several overlays, serving a subset of the total traffic."
//
// Three data centers in a line; each hosts a cluster of two machines. Two
// 12 Mbps video feeds must cross from site 0 to site 2, but one machine's
// NIC only handles ~20 Mbps. A single overlay funnels both feeds through
// one machine per site and saturates; running a SECOND parallel overlay on
// the clusters' other machines (same fiber, different daemon port) and
// sharding the feeds across the two overlays restores line-rate service.
#include <cstdio>

#include "client/traffic.hpp"
#include "overlay/network.hpp"

using namespace son;
using namespace son::sim::literals;

namespace {

struct Deployment {
  sim::Simulator sim;
  std::unique_ptr<net::Internet> inet;
  std::vector<net::HostId> machine_a;  // one per site
  std::vector<net::HostId> machine_b;
  std::unique_ptr<overlay::OverlayNetwork> overlay_a;
  std::unique_ptr<overlay::OverlayNetwork> overlay_b;  // only in cluster mode

  explicit Deployment(bool cluster) {
    inet = std::make_unique<net::Internet>(sim, sim::Rng{81});
    const auto isp = inet->add_isp("one");
    std::vector<net::RouterId> routers;
    net::LinkConfig access;
    access.prop_delay = sim::Duration::microseconds(100);
    access.bandwidth_bps = 20e6;  // the per-machine bottleneck
    access.max_queue_delay = 30_ms;
    for (int site = 0; site < 3; ++site) {
      routers.push_back(inet->add_router(isp, "r" + std::to_string(site)));
      machine_a.push_back(inet->add_host("site" + std::to_string(site) + "/a"));
      machine_b.push_back(inet->add_host("site" + std::to_string(site) + "/b"));
      inet->attach_host(machine_a.back(), routers.back(), access);
      inet->attach_host(machine_b.back(), routers.back(), access);
    }
    net::LinkConfig fiber;
    fiber.prop_delay = 10_ms;
    fiber.bandwidth_bps = 10e9;  // the backbone is NOT the bottleneck
    inet->add_link(routers[0], routers[1], fiber);
    inet->add_link(routers[1], routers[2], fiber);

    topo::Graph chain(3);
    chain.add_edge(0, 1, 10.0);
    chain.add_edge(1, 2, 10.0);
    overlay::NodeConfig cfg_a;
    overlay_a = std::make_unique<overlay::OverlayNetwork>(sim, *inet, chain, machine_a,
                                                          cfg_a, sim::Rng{82});
    overlay_a->start();
    if (cluster) {
      overlay::NodeConfig cfg_b;
      cfg_b.daemon_port = 8200;  // second overlay, second machine, same fiber
      overlay_b = std::make_unique<overlay::OverlayNetwork>(sim, *inet, chain, machine_b,
                                                            cfg_b, sim::Rng{83});
      overlay_b->start();
    }
    sim.run_for(3_s);
  }
};

}  // namespace

int main() {
  std::printf("cluster scale-out (§II-D): two 12 Mbps feeds across 20 Mbps machines\n\n");
  std::printf("%22s %12s %12s %12s %12s\n", "deployment", "feed1", "feed1 p99", "feed2",
              "feed2 p99");

  for (const bool cluster : {false, true}) {
    Deployment d{cluster};
    // Feed i: 1250 pkt/s x 1200 B = 12 Mbps, site 0 -> site 2.
    overlay::OverlayNetwork* nets[2] = {
        d.overlay_a.get(), cluster ? d.overlay_b.get() : d.overlay_a.get()};
    std::vector<std::unique_ptr<client::CbrSender>> senders;
    std::vector<std::unique_ptr<client::MeasuringSink>> sinks;
    for (int feed = 0; feed < 2; ++feed) {
      auto& src = nets[feed]->node(0).connect(static_cast<overlay::VirtualPort>(100 + feed));
      auto& dst = nets[feed]->node(2).connect(static_cast<overlay::VirtualPort>(200 + feed));
      sinks.push_back(std::make_unique<client::MeasuringSink>(dst));
      overlay::ServiceSpec spec;  // best effort: shows raw capacity
      senders.push_back(std::make_unique<client::CbrSender>(
          d.sim, src,
          client::CbrSender::Options{
              overlay::Destination::unicast(2, static_cast<overlay::VirtualPort>(200 + feed)),
              spec, 1250, 1200, d.sim.now(), d.sim.now() + 10_s}));
    }
    d.sim.run_for(12_s);
    std::printf("%22s", cluster ? "cluster (2 overlays)" : "single machine");
    for (int feed = 0; feed < 2; ++feed) {
      std::printf(" %11.2f%% %10.1fms",
                  100.0 * sinks[static_cast<std::size_t>(feed)]->delivery_ratio(
                              senders[static_cast<std::size_t>(feed)]->sent()),
                  sinks[static_cast<std::size_t>(feed)]->latencies_ms().quantile(0.99));
    }
    std::printf("\n");
  }

  std::printf("\nOne machine per site cannot carry 24 Mbps of overlay traffic through a\n");
  std::printf("20 Mbps NIC: both feeds shed and queueing inflates the tail. Sharding\n");
  std::printf("the feeds across two parallel overlays on the cluster's machines uses\n");
  std::printf("the same fiber but twice the processing, restoring clean line-rate\n");
  std::printf("delivery — no coordination between the overlays required.\n");
  return 0;
}
