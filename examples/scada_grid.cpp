// §V-B Monitoring and control of critical infrastructure (SCADA).
//
// "Certain critical infrastructure control systems, such as SCADA for the
// power grid, require strict timeliness, on the order of 100-200ms for a
// control command to be delivered and executed in response to received
// monitoring data. For the control system to withstand compromises, this
// 100-200ms can include the time to execute an intrusion-tolerant agreement
// protocol."
//
// This example exercises the transport side of that loop over a compromised
// overlay: field sensors multicast readings to two replicated control
// centers (IT-Priority: timely), each replica independently issues the
// control command back over IT-Reliable on disjoint paths, and the actuator
// "executes" when it has commands from BOTH replicas (a minimal 2-of-2
// agreement echo). The measured number is the full sensor-to-actuation round
// trip, with a blackholing compromised node in the overlay throughout.
#include <cstdio>
#include <map>

#include "client/traffic.hpp"
#include "overlay/network.hpp"

using namespace son;
using namespace son::sim::literals;

namespace {

struct Actuation {
  sim::TimePoint event_time;
  int commands_seen = 0;
};

}  // namespace

int main() {
  sim::Simulator sim;
  overlay::GraphOptions gopts;
  gopts.node.authenticate = true;
  gopts.node.master_key[7] = 0xC4;
  auto fx = overlay::build_graph_fixture(sim, overlay::circulant_topology(12), gopts,
                                         sim::Rng{71});
  auto& net = *fx.overlay;

  constexpr overlay::NodeId kSubstation = 0;   // field site
  constexpr overlay::NodeId kControlA = 5;
  constexpr overlay::NodeId kControlB = 7;
  constexpr overlay::GroupId kReadings = 600;

  // A compromised node sits between the field and the control centers.
  net.node(3).set_compromise(overlay::CompromiseBehavior::blackhole());

  // Sensor readings: flooding + IT-Priority (timely, survives the blackhole).
  overlay::ServiceSpec reading_spec;
  reading_spec.scheme = overlay::RouteScheme::kFlooding;
  reading_spec.link_protocol = overlay::LinkProtocol::kITPriority;
  reading_spec.priority = 8;

  // Commands: 2 disjoint paths + IT-Reliable.
  overlay::ServiceSpec command_spec;
  command_spec.scheme = overlay::RouteScheme::kDisjointPaths;
  command_spec.num_paths = 2;
  command_spec.link_protocol = overlay::LinkProtocol::kITReliable;

  // The actuator executes a command once both replicas concur.
  auto& actuator = net.node(kSubstation).connect(700);
  std::map<std::uint64_t, Actuation> pending;  // event id -> state
  sim::SampleSet round_trip_ms;
  std::uint64_t actuations = 0;
  actuator.set_handler([&](const overlay::Message& m, sim::Duration) {
    // Command payload carries the 8-byte event id + event timestamp.
    if (m.payload_size() < 16) return;
    std::uint64_t event_id = 0;
    std::int64_t t0 = 0;
    for (int i = 0; i < 8; ++i) {
      event_id |= std::uint64_t{(*m.payload)[static_cast<std::size_t>(i)]} << (8 * i);
      t0 |= std::int64_t{(*m.payload)[static_cast<std::size_t>(8 + i)]} << (8 * i);
    }
    Actuation& a = pending[event_id];
    a.event_time = sim::TimePoint::from_ns(t0);
    if (++a.commands_seen == 2) {  // both replicas concurred: execute
      ++actuations;
      round_trip_ms.add((sim.now() - a.event_time).to_millis_f());
    }
  });

  // Each control center reacts to every reading by issuing a command tagged
  // with the reading's event id and origin timestamp.
  const auto make_center = [&](overlay::NodeId node) {
    auto& center = net.node(node).connect(701);
    center.join(kReadings);
    center.set_handler([&, node](const overlay::Message& m, sim::Duration) {
      auto cmd = std::vector<std::uint8_t>(16);
      for (int i = 0; i < 8; ++i) {
        cmd[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(m.hdr.origin_id >> (8 * i));
        cmd[static_cast<std::size_t>(8 + i)] =
            static_cast<std::uint8_t>(static_cast<std::uint64_t>(m.hdr.origin_time.ns()) >>
                                      (8 * i));
      }
      net.node(node).connect(702).send(
          overlay::Destination::unicast(kSubstation, 700),
          overlay::make_payload(std::move(cmd)), command_spec);
    });
  };
  make_center(kControlA);
  make_center(kControlB);
  net.settle(3_s);

  // 20 s of grid telemetry at 10 readings/s from the substation.
  auto& sensor = net.node(kSubstation).connect(703);
  client::CbrSender telemetry{sim, sensor,
                              {overlay::Destination::multicast(kReadings), reading_spec,
                               10, 200, sim.now(), sim.now() + 20_s}};
  sim.run_for(25_s);

  std::printf("SCADA loop over a compromised 12-node overlay (node 3 blackholes):\n\n");
  std::printf("  readings sent        : %llu\n",
              static_cast<unsigned long long>(telemetry.sent()));
  std::printf("  actuations (2-of-2)  : %llu (%.1f%%)\n",
              static_cast<unsigned long long>(actuations),
              100.0 * static_cast<double>(actuations) /
                  static_cast<double>(telemetry.sent()));
  std::printf("  sensor->actuation RTT: p50 %.1f ms, p99 %.1f ms, max %.1f ms\n",
              round_trip_ms.quantile(0.5), round_trip_ms.quantile(0.99),
              round_trip_ms.max());
  std::printf("\nEvery reading triggered commands from BOTH replicated control centers\n");
  std::printf("and the full loop closed well inside the 100-200 ms budget (§V-B),\n");
  std::printf("leaving the remainder for an intrusion-tolerant agreement protocol.\n");
  return 0;
}
